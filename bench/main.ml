(* The experiment harness: regenerates every table and figure of the paper's
   evaluation (Table II, Figs. 4, 5, 6, 8, 9 / §V.C) plus the extension
   experiments enabled by the simulated substrate (reconstruction accuracy
   vs. log loss, baseline comparison), and — under `perf` — bechamel
   microbenchmarks of the reconstruction engine.

   Usage:
     main.exe                 run every experiment
     main.exe table2 fig4 ... run selected experiments
     main.exe perf            run the bechamel microbenchmarks
*)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* List/array wrappers over the sink-parameterized pipeline entry points —
   the experiments below compare and fold flows, so they materialize. *)
let reconstruct_flows ?(use_intra = true) ?(use_inter = true)
    ?(provenance = false) collected ~sink =
  let acc = ref [] in
  Refill.Reconstruct.run
    ~config:{ Refill.Config.default with use_intra; use_inter; provenance }
    collected ~sink
    ~emit:(fun f -> acc := f :: !acc);
  List.rev !acc

let reconstruct_flows_array collected ~sink =
  Array.of_list (reconstruct_flows collected ~sink)

let merge_flows collected ~flows =
  let acc = ref [] in
  let stats =
    Refill.Global_flow.merge collected ~flows:(Array.of_list flows)
      ~emit:(fun it -> acc := it :: !acc)
  in
  (List.rev !acc, stats)

(* Scenario runs are shared across experiments. *)
let two_day_pipeline =
  lazy
    (let t0 = Unix.gettimeofday () in
     let scenario = Scenario.Citysee.run Scenario.Citysee.two_day in
     let p = Analysis.Pipeline.make scenario in
     Printf.printf "[setup] two-day CitySee run: %.1fs, %d packets, %d records\n"
       (Unix.gettimeofday () -. t0)
       (Node.Network.packets_generated scenario.network)
       (Logsys.Collected.total (Scenario.Citysee.collected scenario));
     p)

let month_pipeline =
  lazy
    (let t0 = Unix.gettimeofday () in
     let scenario = Scenario.Citysee.run Scenario.Citysee.default in
     let p = Analysis.Pipeline.make scenario in
     Printf.printf
       "[setup] 30-day CitySee run: %.1fs, %d packets, %d records, %d lost\n"
       (Unix.gettimeofday () -. t0)
       (Node.Network.packets_generated scenario.network)
       (Logsys.Collected.total (Scenario.Citysee.collected scenario))
       (List.length p.loss_times);
     p)

(* -- Table II ------------------------------------------------------------- *)

let run_table2 () =
  section "Table II / §IV.C — event-flow reconstruction on the paper's cases";
  print_string (Analysis.Figures.table2 ());
  print_string
    "paper: case1 flow = 1-2 trans, [1-2 recv], [2-3 trans], 2-3 recv\n\
     paper: case2 flow = 1-2 trans, [1-2 recv], 1-2 ack recvd (lost after \
     reaching node 2)\n\
     paper: case3 flow = [1-2 trans], [1-2 recv], 1-2 ack, 1-2 trans (lost \
     1→2 in the air)\n\
     paper: case4 = loop revealed; packet lost at node 2 transmitting to \
     node 3\n"

(* -- Fig. 4 ----------------------------------------------------------------- *)

let run_fig4 () =
  let p = Lazy.force two_day_pipeline in
  section "Fig. 4 — sink view: lost packets by source node over two days";
  print_string (Analysis.Figures.fig4 p);
  let src = Analysis.Temporal.source_view p in
  Printf.printf
    "paper: sources of lost packets are spread over essentially ALL nodes\n\
     measured: %d of %d nodes appear as sources of lost packets\n"
    (Analysis.Temporal.distinct_nodes src)
    p.scenario.params.n_nodes

(* -- Fig. 5 ----------------------------------------------------------------- *)

let run_fig5 () =
  let p = Lazy.force two_day_pipeline in
  section "Fig. 5 — REFILL view: loss positions and causes over two days";
  print_string (Analysis.Figures.fig5 p);
  let pos = Analysis.Temporal.position_view p in
  let src = Analysis.Temporal.source_view p in
  Printf.printf
    "paper: loss positions concentrate on a small portion of nodes, the \
     sink's band dominates,\n\
    \       and timeout/duplicate losses cluster in time (the ellipses)\n\
     measured: positions on %d nodes vs %d source nodes; top-3 positions \
     hold %.0f%% of losses\n"
    (Analysis.Temporal.distinct_nodes pos)
    (Analysis.Temporal.distinct_nodes src)
    (100. *. Analysis.Temporal.node_concentration pos ~top:3)

(* -- Fig. 6 ----------------------------------------------------------------- *)

let run_fig6 () =
  let p = Lazy.force month_pipeline in
  section "Fig. 6 — loss-cause composition per day over the month";
  print_string (Analysis.Figures.fig6 p);
  let counts = Analysis.Composition.losses_per_day p in
  let snow_mean =
    (float_of_int counts.(9) +. float_of_int counts.(10)) /. 2.
  in
  (* Median of the non-snow days: robust to the occasional server-outage
     day, which legitimately dwarfs everything else. *)
  let clear_median =
    let others =
      Array.to_list counts
      |> List.filteri (fun d _ -> d <> 9 && d <> 10)
      |> List.map float_of_int
    in
    Prelude.Stats.median (Array.of_list others)
  in
  let clear_mean = clear_median in
  let before_fix =
    Array.to_list (Array.sub counts 12 10)
    |> List.map float_of_int |> Array.of_list |> Prelude.Stats.mean
  in
  let after_fix =
    Array.to_list (Array.sub counts 24 6)
    |> List.map float_of_int |> Array.of_list |> Prelude.Stats.mean
  in
  Printf.printf
    "paper: losses spike on the snow days (9-10); after the day-23 sink fix \
     losses drop sharply\n\
     measured: snow-day mean %.0f vs clear-day mean %.0f losses/day \
     (x%.1f); pre-fix (d12-21) %.0f vs post-fix (d24-29) %.0f losses/day \
     (x%.1f)\n"
    snow_mean clear_mean
    (snow_mean /. Float.max 1. clear_mean)
    before_fix after_fix
    (before_fix /. Float.max 1. after_fix)

(* -- Fig. 8 ----------------------------------------------------------------- *)

let run_fig8 () =
  let p = Lazy.force month_pipeline in
  section "Fig. 8 — spatial distribution of received losses";
  print_string (Analysis.Figures.fig8 p);
  let losses = Analysis.Spatial.received_losses p in
  Printf.printf
    "paper: the sink carries by far the largest received-loss circle\n\
     measured: sink holds %.0f%% of received losses\n"
    (100. *. Analysis.Spatial.sink_share losses ~sink:p.scenario.sink)

(* -- Fig. 9 / §V.C ----------------------------------------------------------- *)

let run_fig9 () =
  let p = Lazy.force month_pipeline in
  section "Fig. 9 / §V.C — overall loss-cause breakdown";
  print_string (Analysis.Figures.fig9 p)

(* -- Extension A1: accuracy vs log loss -------------------------------------- *)

let run_accuracy () =
  section
    "A1 — reconstruction accuracy vs log-loss rate (REFILL vs baselines; \
     only possible on the simulated substrate)";
  let scenario = Scenario.Citysee.run Scenario.Citysee.tiny in
  let truth = Node.Network.truth scenario.network in
  let collected = Scenario.Citysee.collected scenario in
  let gt = Logsys.Logger.ground_truth (Node.Network.logger scenario.network) in
  Printf.printf "%-6s  %-8s  %-8s  %-8s  %-8s  %-8s  %-8s\n" "loss%" "refill"
    "naive" "wit-ok%" "recall" "path%" "inferred";
  List.iter
    (fun p ->
      let rng = Prelude.Rng.create ~seed:4242L in
      let lossy =
        Logsys.Collected.lossify (Logsys.Loss_model.uniform p) rng collected
      in
      let flows = reconstruct_flows lossy ~sink:scenario.sink in
      let refill_acc =
        Analysis.Metrics.accuracy
          (Analysis.Metrics.confusion ~truth
             ~verdicts:
               (List.map
                  (fun (f : Refill.Flow.t) ->
                    ( (f.origin, f.seq),
                      (Refill.Classify.classify f).cause ))
                  flows))
      in
      let naive_acc =
        Analysis.Metrics.accuracy
          (Analysis.Metrics.confusion ~truth
             ~verdicts:
               (Baseline.Naive.classify_all lossy ~sink:scenario.sink
               |> List.map (fun (k, (v : Baseline.Naive.verdict)) ->
                      (k, v.cause))))
      in
      let wit =
        Baseline.Wit_merge.mergeable_fraction
          (Baseline.Wit_merge.merge_all lossy ~sink:scenario.sink)
      in
      let quality = Analysis.Metrics.flow_quality ~ground_truth:gt ~flows in
      let paths = Analysis.Metrics.path_quality ~truth ~flows in
      let summary = Refill.Reconstruct.summarize flows in
      Printf.printf "%-6.0f  %-8.3f  %-8.3f  %-8.1f  %-8.3f  %-8.1f  %-8d\n"
        (100. *. p) refill_acc naive_acc (100. *. wit) quality.event_recall
        (100. *. paths.exact) summary.inferred_events)
    [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.7; 0.9 ];
  (* Path recovery versus PathZip (§VI): PathZip needs per-packet header
     hashes and a-priori topology, and only ever sees DELIVERED packets. *)
  let pz =
    Baseline.Pathzip.recover_delivered
      (Node.Network.topology scenario.network)
      ~truth ~sink:scenario.sink ~max_hops:12 ~budget:200_000
  in
  Printf.printf
    "path recovery vs PathZip: PathZip recovers %d/%d DELIVERED paths \
     (mean %.0f search states, needs in-packet hashes + topology);\n\
     REFILL recovers paths of lost packets too, from logs alone (path%% \
     column above covers ALL packets).\n"
    pz.recovered pz.packets pz.mean_expanded;
  print_string
    "expected shape: REFILL degrades gracefully and dominates the naive \
     walker at every loss rate;\n\
     Wit-style merging collapses quickly because a single missing record \
     removes the common event.\n"

(* -- Extension A3: mechanism ablation ------------------------------------------ *)

let run_ablation () =
  section
    "A3 — ablation: what do intra-node and inter-node transitions each \
     contribute? (design-choice ablation from DESIGN.md)";
  let scenario = Scenario.Citysee.run Scenario.Citysee.tiny in
  let truth = Node.Network.truth scenario.network in
  let collected = Scenario.Citysee.collected scenario in
  let rng = Prelude.Rng.create ~seed:777L in
  let lossy =
    Logsys.Collected.lossify (Logsys.Loss_model.uniform 0.25) rng collected
  in
  let gt = Logsys.Logger.ground_truth (Node.Network.logger scenario.network) in
  Printf.printf "%-26s  %-9s  %-8s  %-9s  %-9s\n" "configuration" "accuracy"
    "recall" "inferred" "skipped";
  List.iter
    (fun (name, use_intra, use_inter) ->
      let flows =
        reconstruct_flows ~use_intra ~use_inter lossy
          ~sink:scenario.sink
      in
      let acc =
        Analysis.Metrics.accuracy
          (Analysis.Metrics.confusion ~truth
             ~verdicts:
               (List.map
                  (fun (f : Refill.Flow.t) ->
                    ((f.origin, f.seq), (Refill.Classify.classify f).cause))
                  flows))
      in
      let s = Refill.Reconstruct.summarize flows in
      let q = Analysis.Metrics.flow_quality ~ground_truth:gt ~flows in
      Printf.printf "%-26s  %-9.3f  %-8.3f  %-9d  %-9d\n" name acc
        q.event_recall s.inferred_events s.skipped_events)
    [
      ("full REFILL", true, true);
      ("no inter-node transitions", true, false);
      ("no intra-node transitions", false, true);
      ("neither (plain FSM replay)", false, false);
    ];
  print_string
    "expected shape: both mechanisms contribute; dropping either loses \
     accuracy, and the bare FSM\n\
     replay skips every event whose predecessor records were lost.\n"

(* Raw accuracy from WSN logs alone, and accuracy after reconciling with the
   server's database of arrived packets (the paper's §V.C methodology). *)
let scored_accuracies ~truth flows =
  let raw =
    List.map
      (fun (f : Refill.Flow.t) ->
        ((f.origin, f.seq), Refill.Classify.classify f))
      flows
  in
  let delivered_db =
    Logsys.Truth.fold truth ~init:[] ~f:(fun acc key fate ->
        if Logsys.Cause.equal fate.cause Logsys.Cause.Delivered then
          (key, fate.resolved_at) :: acc
        else acc)
  in
  let refined = Analysis.Pipeline.refine_with_server ~delivered_db raw in
  let accuracy verdicts =
    Analysis.Metrics.accuracy
      (Analysis.Metrics.confusion ~truth
         ~verdicts:
           (List.map
              (fun (k, (v : Refill.Classify.verdict)) -> (k, v.cause))
              verdicts))
  in
  (accuracy raw, accuracy refined)

(* -- Extension A4: in-band log collection --------------------------------------- *)

let run_inband () =
  section
    "A4 — in-band log collection (the paper's §V setup): logs ride the \
     same lossy CTP network";
  let params =
    { Scenario.Citysee.two_day with in_band_logs = true; n_nodes = 49 }
  in
  let scenario = Scenario.Citysee.run params in
  let truth = Node.Network.truth scenario.network in
  (match Node.Network.in_band_stats scenario.network with
  | Some (written, spool_dropped, collected) ->
      Printf.printf
        "records written %d, spool-dropped %d, collected at base station %d \
         (yield %.1f%%)\n"
        written spool_dropped collected
        (100. *. float_of_int collected /. float_of_int written)
  | None -> ());
  (* Energy cost of shipping the logs: compare against the identical run
     without the transport. *)
  let mean_duty sc =
    let net = (sc : Scenario.Citysee.t).network in
    let n = Net.Topology.n_nodes (Node.Network.topology net) in
    let duration = sc.params.warmup +. sc.duration +. 600. in
    let sum = ref 0. in
    for i = 0 to n - 1 do
      sum :=
        !sum
        +. Net.Energy.duty_cycle (Node.Network.energy_of net i) ~duration
    done;
    !sum /. float_of_int n
  in
  let baseline =
    Scenario.Citysee.run { params with in_band_logs = false }
  in
  let duty_with = mean_duty scenario and duty_without = mean_duty baseline in
  Printf.printf
    "radio duty cycle: %.2f%% with in-band logs vs %.2f%% without (+%.0f%% \
     energy overhead for full observability)\n"
    (100. *. duty_with) (100. *. duty_without)
    (100. *. ((duty_with /. duty_without) -. 1.));
  let score label collected =
    let flows = reconstruct_flows collected ~sink:scenario.sink in
    let raw_acc, refined_acc = scored_accuracies ~truth flows in
    let gt =
      Logsys.Logger.ground_truth (Node.Network.logger scenario.network)
    in
    let q = Analysis.Metrics.flow_quality ~ground_truth:gt ~flows in
    Printf.printf
      "%-34s  accuracy %.3f (%.3f w/ server DB)  event recall %.3f\n" label
      raw_acc refined_acc q.event_recall
  in
  (match Scenario.Citysee.collected_in_band scenario with
  | Some collected -> score "in-band collected logs" collected
  | None -> ());
  score "lossless out-of-band readout" (Scenario.Citysee.collected scenario);
  let rng = Prelude.Rng.create ~seed:808L in
  score "synthetic default loss model"
    (Logsys.Collected.lossify Logsys.Loss_model.default rng
       (Scenario.Citysee.collected scenario));
  print_string
    "expected shape: in-band losses are structured (relay hotspots and \
     late-run records suffer most),\n\
     so accuracy sits below a lossless readout but the reconstruction \
     remains useful — the paper's\n\
     operating point.\n"

(* -- Extension A5: logging-policy ablation --------------------------------------- *)

let run_logging_policy () =
  section
    "A5 — which log statements matter? (logging-policy study; the paper's \
     'more effective logging' future work)";
  let scenario = Scenario.Citysee.run Scenario.Citysee.tiny in
  let truth = Node.Network.truth scenario.network in
  let collected = Scenario.Citysee.collected scenario in
  let policies =
    (("all events", Logsys.Logging_policy.all)
    :: List.map
         (fun kind ->
           ("without " ^ kind, Logsys.Logging_policy.without [ kind ]))
         [ "recv"; "ack"; "trans"; "timeout"; "deliver"; "gen" ])
    @ [
        ( "sender-side only (trans/ack/timeout/gen)",
          Logsys.Logging_policy.only [ "trans"; "ack"; "timeout"; "gen" ] );
        ( "receiver-side only (recv/dup/overflow/deliver)",
          Logsys.Logging_policy.only [ "recv"; "dup"; "overflow"; "deliver" ]
        );
      ]
  in
  Printf.printf "%-46s  %-8s  %-9s  %-9s  %-8s\n" "policy" "raw-acc"
    "serverDB" "records" "inferred";
  List.iter
    (fun (label, policy) ->
      let filtered = Logsys.Logging_policy.apply policy collected in
      let flows = reconstruct_flows filtered ~sink:scenario.sink in
      let raw_acc, refined_acc = scored_accuracies ~truth flows in
      let summary = Refill.Reconstruct.summarize flows in
      Printf.printf "%-46s  %-8.3f  %-9.3f  %-9d  %-8d\n" label raw_acc
        refined_acc
        (Logsys.Collected.total filtered)
        summary.inferred_events)
    policies;
  print_string
    "expected shape: any single statement can be dropped cheaply because \
     the other side of each link\n\
     operation implies it (watch the inferred column grow); the deliver \
     statement is special in that the\n\
     server database substitutes for it entirely; dropping a whole SIDE is \
     survivable only for the\n\
     receiver side — sender-side-only logging cannot place losses without \
     the server DB.\n"

(* -- Extension A6: hardware vs software ACKs (§V.D.5's what-if) ----------------- *)

let run_ack_mode () =
  section
    "A6 — §V.D.5 what-if: hardware ACKs (the deployment) vs software ACKs \
     (ACK only after the packet survives to the upper layers)";
  let run mode =
    let params =
      {
        Scenario.Citysee.two_day with
        n_nodes = 49;
        ack_mode = mode;
      }
    in
    let scenario = Scenario.Citysee.run params in
    let truth = Node.Network.truth scenario.network in
    let counts = Logsys.Truth.cause_counts truth in
    let total = Logsys.Truth.count truth in
    let get c = Option.value ~default:0 (List.assoc_opt c counts) in
    let exchanges, attempts = Node.Network.exchange_stats scenario.network in
    let duration = scenario.params.warmup +. scenario.duration +. 600. in
    let n = Net.Topology.n_nodes (Node.Network.topology scenario.network) in
    let duty = ref 0. in
    for i = 0 to n - 1 do
      duty :=
        !duty
        +. Net.Energy.duty_cycle
             (Node.Network.energy_of scenario.network i)
             ~duration
    done;
    (total, get Logsys.Cause.Delivered, get Logsys.Cause.Acked_loss,
     get Logsys.Cause.Received_loss, get Logsys.Cause.Timeout_loss,
     float_of_int attempts /. float_of_int (max 1 exchanges),
     100. *. !duty /. float_of_int n)
  in
  Printf.printf "%-10s  %-8s  %-10s  %-7s  %-9s  %-8s  %-8s  %-6s\n" "ack mode"
    "packets" "delivered" "acked" "received" "timeout" "att/exch" "duty%";
  List.iter
    (fun (name, mode) ->
      let total, delivered, acked, received, timeout, ape, duty = run mode in
      Printf.printf "%-10s  %-8d  %-10d  %-7d  %-9d  %-8d  %-8.2f  %-6.2f\n"
        name total delivered acked received timeout ape duty)
    [ ("hardware", Node.Network.Hardware); ("software", Node.Network.Software) ];
  print_string
    "expected shape: software ACKs eliminate acked losses and convert most \
     sink serial losses into\n\
     successful retransmissions (delivery jumps), at the price of more \
     attempts per exchange — the\n\
     latency/efficiency tradeoff §V.D.5 predicts.\n"

(* -- Extension A7: failure injection (node reboots) ------------------------------ *)

let run_reboots () =
  section
    "A7 — failure injection: node reboots (volatile state loss) vs \
     reconstruction quality";
  Printf.printf "%-10s  %-8s  %-10s  %-9s  %-9s  %-9s\n" "MTBF(s)" "reboots"
    "delivery%" "raw-acc" "serverDB" "recall";
  List.iter
    (fun mtbf ->
      let params =
        {
          Scenario.Citysee.tiny with
          days = 2;
          reboot_mtbf = (if mtbf = 0. then None else Some mtbf);
          in_band_logs = true;
        }
      in
      let scenario = Scenario.Citysee.run params in
      let truth = Node.Network.truth scenario.network in
      let n = Net.Topology.n_nodes (Node.Network.topology scenario.network) in
      let reboots = ref 0 in
      for i = 0 to n - 1 do
        reboots := !reboots + Node.Network.reboots_of scenario.network i
      done;
      let delivered =
        Logsys.Truth.fold truth ~init:0 ~f:(fun acc _ fate ->
            if Logsys.Cause.equal fate.cause Logsys.Cause.Delivered then
              acc + 1
            else acc)
      in
      let collected =
        match Scenario.Citysee.collected_in_band scenario with
        | Some c -> c
        | None -> Scenario.Citysee.collected scenario
      in
      let flows = reconstruct_flows collected ~sink:scenario.sink in
      let raw_acc, refined_acc = scored_accuracies ~truth flows in
      let gt =
        Logsys.Logger.ground_truth (Node.Network.logger scenario.network)
      in
      let q = Analysis.Metrics.flow_quality ~ground_truth:gt ~flows in
      Printf.printf "%-10.0f  %-8d  %-10.1f  %-9.3f  %-9.3f  %-9.3f\n" mtbf
        !reboots
        (100. *. Prelude.Stats.ratio delivered (Logsys.Truth.count truth))
        raw_acc refined_acc q.event_recall)
    [ 0.; 600.; 200.; 60. ];
  print_string
    "expected shape: reboots wipe queues, routing state and unshipped log \
     spools — delivery and raw\n\
     accuracy fall together, while the server-DB-reconciled verdicts stay \
     robust until reboots are\n\
     near-continuous.\n"

(* -- Extension A8: the network-wide event flow (§II Eq. 1) ----------------------- *)

let run_global_flow () =
  section
    "A8 — network-wide event flow: global ordering from unsynchronized \
     logs (§II Eq. 1)";
  let scenario = Scenario.Citysee.run Scenario.Citysee.tiny in
  let gt = Logsys.Logger.ground_truth (Node.Network.logger scenario.network) in
  let agreement items =
    let pos = Hashtbl.create 4096 in
    List.iteri (fun i (r : Logsys.Record.t) -> Hashtbl.replace pos r.gseq i) gt;
    let seq =
      List.filter_map
        (fun (i : Refill.Flow.item) ->
          if i.inferred then None
          else
            Option.bind i.payload (fun (r : Logsys.Record.t) ->
                Hashtbl.find_opt pos r.gseq))
        items
      |> Array.of_list
    in
    let rng = Prelude.Rng.create ~seed:3L in
    let total = ref 0 and good = ref 0 in
    for _ = 1 to 100_000 do
      let a = Prelude.Rng.int rng (Array.length seq) in
      let b = Prelude.Rng.int rng (Array.length seq) in
      if a < b then begin
        incr total;
        if seq.(a) < seq.(b) then incr good
      end
    done;
    Prelude.Stats.ratio !good !total
  in
  Printf.printf "%-10s  %-8s  %-9s  %-9s  %-9s  %-11s\n" "loss%" "events"
    "logged" "inferred" "relaxed" "agreement";
  List.iter
    (fun p ->
      let rng = Prelude.Rng.create ~seed:99L in
      let collected =
        if p = 0. then Scenario.Citysee.collected scenario
        else
          Logsys.Collected.lossify (Logsys.Loss_model.uniform p) rng
            (Scenario.Citysee.collected scenario)
      in
      let flows = reconstruct_flows collected ~sink:scenario.sink in
      let items, stats = merge_flows collected ~flows in
      Printf.printf "%-10.0f  %-8d  %-9d  %-9d  %-9d  %-11.3f\n" (100. *. p)
        stats.events stats.logged stats.inferred stats.relaxed
        (agreement items))
    [ 0.0; 0.2; 0.5 ];
  print_string
    "expected shape: with NO timestamps anywhere, the merged global flow \
     orders logged event pairs\n\
     in wall-clock agreement well above 0.9 on complete logs, degrading \
     gently as records vanish.\n"

(* -- Extension A9: full CitySee scale --------------------------------------------- *)

let run_scale () =
  section
    "A9 — full deployment scale: 1225 nodes, CitySee's real 10-minute \
     reporting period";
  let t0 = Unix.gettimeofday () in
  let scenario = Scenario.Citysee.run Scenario.Citysee.full_scale in
  let t1 = Unix.gettimeofday () in
  let truth = Node.Network.truth scenario.network in
  let collected =
    Scenario.Citysee.collected_lossy scenario Logsys.Loss_model.default
  in
  let t2 = Unix.gettimeofday () in
  let flows = reconstruct_flows collected ~sink:scenario.sink in
  let t3 = Unix.gettimeofday () in
  let raw_acc, refined_acc = scored_accuracies ~truth flows in
  Printf.printf
    "simulated %d nodes, %d packets, %d log records in %.1fs (routing \
     converged: %b)\n"
    (Net.Topology.n_nodes (Node.Network.topology scenario.network))
    (Node.Network.packets_generated scenario.network)
    (Logsys.Logger.total (Node.Network.logger scenario.network))
    (t1 -. t0)
    (Node.Network.routing_converged scenario.network);
  Printf.printf
    "reconstructed %d flows from %d surviving records in %.1fs; cause \
     accuracy %.3f raw, %.3f with the server DB\n"
    (List.length flows)
    (Logsys.Collected.total collected)
    (t3 -. t2) raw_acc refined_acc;
  print_string
    "expected shape: the pipeline handles the paper's full 1200-node scale \
     in seconds on one core.\n"

(* -- Extension A10: reconstruction scaling ------------------------------------- *)

(* Events-vs-wall-time ladder for the reconstruction hot path alone: the
   scenario is simulated once (setup, excluded from the measurement), its
   logs lossified with the default model (losses are what exercise the
   inference machinery), then timed through the batch pipeline.  Results are
   persisted into BENCH_refill.json so the perf trajectory accumulates
   across PRs. *)

type scaling_point = {
  rung : string;
  records : int;
  flow_events : int;
  reconstruct_seconds : float;
  global_flow_seconds : float;
  analysis_seconds : float;
  stream_seconds : float;
  stream_shards : int;
  stream_sharded_seconds : float option;
      (* wall time of the same trace through Stream.Sharded; [None] on
         single-shard rungs *)
  peak_frontier_events : int;
  gc_minor_collections : int;
  gc_major_words : float;
  peak_heap_words : int;
  decode_seconds : float;
      (* arena bulk decode ({!Logsys.Arena.decode_log_into}) over every
         node's encoded log, best-of interleaved samples *)
  decode_baseline_seconds : float;
      (* the record-path decode ({!Logsys.Codec.decode_log}) over the
         same bytes *)
  decode_speedup : float;
      (* median interleaved ratio baseline/arena — the ingest-throughput
         multiple the flat-column path buys *)
  records_per_second : float;  (* records / decode_seconds *)
  decode_gc_minor_collections : int;  (* one arena pass, warm *)
  decode_baseline_gc_minor_collections : int;  (* one record pass *)
}

let scaling_results : scaling_point list ref = ref []

(* Provenance cost on the default rung: best-of-3 minimum wall time of the
   batch reconstruction with the side-car provenance on vs off.  The ISSUE
   budget is < 10% overhead; CI gates on the persisted ratio. *)
let provenance_overhead : float option ref = ref None

(* Interleaved A/B timing for sub-millisecond workloads.  Timing [f] and
   [g] in adjacent samples cancels machine-level drift (frequency scaling,
   GC pacing, cache state) that makes separate best-of-N runs
   incomparable; alternating which side goes first cancels order bias; and
   the *median* of the per-round ratios shrugs off rounds where the
   scheduler landed on one side.  Each sample times [iters] consecutive
   calls so clock granularity stays far below the measured interval, and
   starts from a freshly-emptied minor heap so allocation pacing is the
   workload's own.  Returns (time_f, time_g, median ratio g/f). *)
let interleaved_ratio ?(rounds = 15) ?(iters = 50) f g =
  let time h =
    Gc.minor ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      h ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters
  in
  let ratios = Array.make rounds 0. in
  let best_f = ref infinity and best_g = ref infinity in
  for round = 0 to rounds - 1 do
    let tf, tg =
      if round land 1 = 0 then begin
        let tf = time f in
        let tg = time g in
        (tf, tg)
      end
      else begin
        let tg = time g in
        let tf = time f in
        (tf, tg)
      end
    in
    best_f := Float.min !best_f tf;
    best_g := Float.min !best_g tg;
    ratios.(round) <- tg /. Float.max 1e-9 tf
  done;
  Array.sort compare ratios;
  (!best_f, !best_g, ratios.(rounds / 2))

let scaling_rung ?(shards = 1) name params =
  let t0 = Unix.gettimeofday () in
  let scenario = Scenario.Citysee.run params in
  let setup = Unix.gettimeofday () -. t0 in
  let collected =
    Scenario.Citysee.collected_lossy scenario Logsys.Loss_model.default
  in
  let records = Logsys.Collected.total collected in
  (* Ingest-throughput probe: every node's log encoded once (excluded from
     the timing), then the record-path decoder raced against the arena bulk
     decoder over the same bytes.  Interleaved sampling (see
     [interleaved_ratio]) keeps the speedup honest on a noisy machine; the
     GC deltas show the point of the column store — the record path
     allocates one block per record, the warm arena path allocates
     nothing. *)
  let n_nodes = Logsys.Collected.n_nodes collected in
  let encoded =
    Array.init n_nodes (fun node ->
        Logsys.Codec.encode_log (Logsys.Collected.node_log collected node))
  in
  let sinkhole = ref 0 in
  let decode_records () =
    for node = 0 to n_nodes - 1 do
      sinkhole :=
        !sinkhole + Array.length (Logsys.Codec.decode_log ~node encoded.(node))
    done
  in
  let arena = Logsys.Arena.create ~capacity:(max 1 records) () in
  let decode_arena () =
    Logsys.Arena.clear arena;
    for node = 0 to n_nodes - 1 do
      sinkhole :=
        !sinkhole + Logsys.Arena.decode_log_into arena ~node encoded.(node)
    done
  in
  decode_arena ();
  (* One measured pass each, after warm-up, for the GC story. *)
  let (), gc_arena = Refill_obs.Profile.measure decode_arena in
  let (), gc_recdec = Refill_obs.Profile.measure decode_records in
  let decode_iters = max 1 (100_000 / max 1 records) in
  let dt_decode, dt_decode_base, decode_speedup =
    interleaved_ratio ~rounds:9 ~iters:decode_iters decode_arena
      decode_records
  in
  ignore !sinkhole;
  let records_per_second = float_of_int records /. Float.max 1e-9 dt_decode in
  let gc0 = Refill_obs.Profile.sample () in
  let t1 = Unix.gettimeofday () in
  let flows = reconstruct_flows_array collected ~sink:scenario.sink in
  let dt_rec = Unix.gettimeofday () -. t1 in
  let t2 = Unix.gettimeofday () in
  let gstats = Refill.Global_flow.merge collected ~flows ~emit:ignore in
  let dt_gf = Unix.gettimeofday () -. t2 in
  let t3 = Unix.gettimeofday () in
  let verdicts = Array.map Refill.Classify.classify flows in
  let dt_an = Unix.gettimeofday () -. t3 in
  let delivered =
    Array.fold_left
      (fun acc (v : Refill.Classify.verdict) ->
        if v.cause = Logsys.Cause.Delivered then acc + 1 else acc)
      0 verdicts
  in
  let flow_events = gstats.Refill.Global_flow.events in
  (* Streaming rung: same trace in arrival order, fed chunk by chunk with
     the watermark at 5% of the trace.  Input prep (the time-ordered merge)
     is excluded from the measurement, like the simulation is. *)
  let ordered = Logsys.Collected.merged_by_time collected in
  let config =
    { Refill.Config.default with watermark = max 1 (records / 20) }
  in
  let t4 = Unix.gettimeofday () in
  let stream_flows = ref 0 in
  let stream =
    Refill.Stream.create ~config ~sink:scenario.sink
      ~emit:(fun _ -> incr stream_flows)
      ()
  in
  let n = Array.length ordered in
  let i = ref 0 in
  while !i < n do
    let len = min config.chunk_events (n - !i) in
    Refill.Stream.feed stream (Array.sub ordered !i len);
    i := !i + len
  done;
  let ssum = Refill.Stream.finish stream in
  let dt_stream = Unix.gettimeofday () -. t4 in
  (* Sharded rung: identical trace through Stream.Sharded.  Output is
     byte-identical by construction (qcheck-pinned in the test suite), so
     only the wall time and flow count are recorded.  Speedup needs one
     core per shard; on fewer cores the queue hand-offs make this an
     honest slowdown, which the JSON reports as-is. *)
  let dt_sharded =
    if shards <= 1 then None
    else begin
      let config = { config with shards } in
      let t5 = Unix.gettimeofday () in
      let sharded_flows = ref 0 in
      let st =
        Refill.Stream.Sharded.create ~config ~sink:scenario.sink
          ~emit:(fun _ -> incr sharded_flows)
          ()
      in
      let i = ref 0 in
      while !i < n do
        let len = min config.chunk_events (n - !i) in
        Refill.Stream.Sharded.feed st (Array.sub ordered !i len);
        i := !i + len
      done;
      let shsum = Refill.Stream.Sharded.finish st in
      let dt = Unix.gettimeofday () -. t5 in
      if shsum.flows <> ssum.flows then
        Printf.printf
          "%14sWARNING: sharded flow count %d <> single-domain %d\n" ""
          shsum.flows ssum.flows;
      Some dt
    end
  in
  let gc = Refill_obs.Profile.(delta ~before:gc0 ~after:(sample ())) in
  Printf.printf
    "%-12s  %9d records  %9d flow events  %7d delivered  sim %6.1fs\n\
     %14sreconstruct %8.3fs (%.0f events/s)  global_flow %8.3fs  analysis \
     %8.3fs\n\
     %14sstream      %8.3fs  %d flows  peak frontier %d events (%.1f%% of \
     trace)\n\
     %!"
    name records flow_events delivered setup ""
    dt_rec
    (float_of_int flow_events /. Float.max 1e-9 dt_rec)
    dt_gf dt_an ""
    dt_stream !stream_flows ssum.peak_frontier_events
    (100.
    *. float_of_int ssum.peak_frontier_events
    /. float_of_int (max 1 records));
  (match dt_sharded with
  | Some dt ->
      Printf.printf
        "%14sstream x%-4d %8.3fs  speedup x%.2f (needs %d cores to win)\n" ""
        shards dt
        (dt_stream /. Float.max 1e-9 dt)
        shards
  | None -> ());
  Printf.printf
    "%14sgc          %d minor / %d major collections, %.1fM major words, \
     peak heap %.1fM words\n"
    "" gc.Refill_obs.Profile.minor_collections gc.major_collections
    (gc.major_words /. 1e6)
    (float_of_int gc.top_heap_words /. 1e6);
  Printf.printf
    "%14sdecode      %8.4fs arena (%.2fM records/s) vs %8.4fs records: \
     x%.1f ingest speedup  (gc minor %d vs %d)\n"
    "" dt_decode (records_per_second /. 1e6) dt_decode_base decode_speedup
    gc_arena.Refill_obs.Profile.minor_collections
    gc_recdec.Refill_obs.Profile.minor_collections;
  (* The default (smallest) rung doubles as the provenance-overhead probe:
     re-run the batch reconstruction alone, side-car off vs on. *)
  scaling_results :=
    {
      rung = name;
      records;
      flow_events;
      reconstruct_seconds = dt_rec;
      global_flow_seconds = dt_gf;
      analysis_seconds = dt_an;
      stream_seconds = dt_stream;
      stream_shards = shards;
      stream_sharded_seconds = dt_sharded;
      peak_frontier_events = ssum.peak_frontier_events;
      gc_minor_collections = gc.minor_collections;
      gc_major_words = gc.major_words;
      peak_heap_words = gc.top_heap_words;
      decode_seconds = dt_decode;
      decode_baseline_seconds = dt_decode_base;
      decode_speedup;
      records_per_second;
      decode_gc_minor_collections =
        gc_arena.Refill_obs.Profile.minor_collections;
      decode_baseline_gc_minor_collections =
        gc_recdec.Refill_obs.Profile.minor_collections;
    }
    :: !scaling_results

(* Per-rung shard counts: the tiny rung stays single-domain (the trace is
   too small to amortize worker hand-off), the mid rungs use 4 shards, and
   the 1200-node rung 8 — matching the deployment-scale sink fan-in. *)
let scaling_ladder =
  [
    ("tiny-1d", Scenario.Citysee.tiny, 1);
    ("citysee-2d", Scenario.Citysee.two_day, 4);
    ("citysee-1200", Scenario.Citysee.full_scale, 8);
    ("citysee-30d", Scenario.Citysee.default, 4);
  ]

(* Provenance-on vs provenance-off batch reconstruction, on the two-day
   trace: the tiny rung's packets are so small that the ratio there is
   dominated by GC-phase alignment, not by the side-car (observed swings
   of ±5% between identical runs); at ~87k records one reconstruction is
   ~20ms and the median interleaved ratio is stable to ~1%.  Serial jobs
   keep domain-spawn jitter out of the measurement.  Flows are consumed as
   they are emitted — retaining the whole flow list would measure the
   caller's GC retention, not the side-car. *)
let provenance_probe () =
  let scenario = Scenario.Citysee.run Scenario.Citysee.two_day in
  let collected =
    Scenario.Citysee.collected_lossy scenario Logsys.Loss_model.default
  in
  let consumed = ref 0 in
  let run prov =
    Refill.Reconstruct.run
      ~config:
        { Refill.Config.default with provenance = prov; jobs = Some 1 }
      collected ~sink:scenario.sink
      ~emit:(fun f ->
        consumed := !consumed + f.Refill.Flow.stats.emitted_logged)
  in
  let off, on_, ratio =
    interleaved_ratio ~rounds:11 ~iters:1
      (fun () -> run false)
      (fun () -> run true)
  in
  ignore !consumed;
  provenance_overhead := Some ratio;
  Printf.printf
    "%-12s  provenance-on %.4fs vs off %.4fs: x%.3f overhead (median of 11 \
     interleaved rounds)\n"
    "prov-probe" on_ off ratio

let run_scaling () =
  section
    "A10 — reconstruction scaling: events vs wall time (small → 1200-node \
     CitySee)";
  List.iter
    (fun (name, params, shards) -> scaling_rung ~shards name params)
    scaling_ladder;
  provenance_probe ()

(* The smoke variant runs the smallest rung with 2 shards even though the
   full ladder keeps tiny-1d single-domain: CI gates on the sharded fields
   being present and sane, so the cheap rung has to produce them. *)
let run_scaling_smoke () =
  section "A10 (smoke) — reconstruction scaling, smallest rung only";
  (match scaling_ladder with
  | (name, params, _) :: _ -> scaling_rung ~shards:2 name params
  | [] -> ());
  provenance_probe ()

(* The two-day rung alone: what CI runs to gate the arena ingest speedup
   (the ISSUE's >= 5x target is pinned on this rung, where one decode pass
   is far above clock granularity but the simulation stays affordable). *)
let run_scaling_2d_smoke () =
  section "A10 (2d smoke) — two-day rung only (ingest-speedup gate)";
  scaling_rung ~shards:4 "citysee-2d" Scenario.Citysee.two_day

(* Reduced-duration 1200-node smoke: full_scale's node count and reporting
   structure at half the day length, so CI can exercise the deployment-
   scale rung (and its 8-way sharding) without the full simulation bill. *)
let run_scaling_1200_smoke () =
  section "A10 (1200 smoke) — 1200-node rung, reduced duration";
  scaling_rung ~shards:8 "citysee-1200-smoke"
    {
      Scenario.Citysee.full_scale with
      day_length = 600.;
      data_interval = 300.;
    }

(* -- Server-mode ingestion throughput ----------------------------------------- *)

let serve_records_per_second : float option ref = ref None
let serve_p99_frame_latency : float option ref = ref None

(* The two-day trace pushed through a real `refill serve` over loopback: an
   in-process server (sharded stream, null emit), one lockstep client, so
   every frame pays the full wire cost — encode, TCP, decode into the
   connection arena, queue, feed, ack.  Records/s is end-to-end wall time;
   the p99 is the lockstep ack round-trip, i.e. per-frame ingest latency
   including the reconstruction work that frame triggered. *)
let run_serve_2d_smoke () =
  section "serve (2d smoke) — live ingestion over loopback";
  let scenario = Scenario.Citysee.run Scenario.Citysee.two_day in
  let collected =
    Scenario.Citysee.collected_lossy scenario Logsys.Loss_model.default
  in
  let ordered = Logsys.Collected.merged_by_time collected in
  let config =
    { Refill.Config.default with watermark = 20_000; shards = 2 }
  in
  let srv =
    match
      Refill_serve.Server.start
        {
          Refill_serve.Server.default_config with
          stream = config;
          sink = scenario.sink;
        }
    with
    | Ok s -> s
    | Error e -> failwith (Refill.Error.message e)
  in
  let client =
    Refill_serve.Client.connect ~port:(Refill_serve.Server.port srv) ()
  in
  let chunk = 512 in
  let total = Array.length ordered in
  let t0 = Unix.gettimeofday () in
  let i = ref 0 in
  while !i < total do
    let len = min chunk (total - !i) in
    ignore (Refill_serve.Client.send client (Array.sub ordered !i len));
    i := !i + len
  done;
  ignore (Refill_serve.Client.finish client);
  let dt = Unix.gettimeofday () -. t0 in
  let summary = Refill_serve.Server.stop srv in
  let st = Refill_serve.Client.stats client in
  let rps = float_of_int st.records /. Float.max 1e-9 dt in
  serve_records_per_second := Some rps;
  serve_p99_frame_latency := Some st.Refill_serve.Client.rtt_p99;
  Printf.printf
    "served %d records in %d frames over loopback in %.2fs (%.0f records/s)\n"
    st.records st.frames dt rps;
  Printf.printf
    "ack rtt p50 %.6fs p99 %.6fs; %d flows emitted (%d complete)\n"
    st.rtt_p50 st.rtt_p99 summary.Refill.Stream.flows
    summary.Refill.Stream.complete

(* -- Extension A2: bechamel microbenchmarks ----------------------------------- *)

let perf () =
  section "A2 — microbenchmarks (bechamel)";
  let scenario = Scenario.Citysee.run Scenario.Citysee.tiny in
  let collected = Scenario.Citysee.collected scenario in
  let rng = Prelude.Rng.create ~seed:5L in
  let lossy =
    Logsys.Collected.lossify (Logsys.Loss_model.uniform 0.2) rng collected
  in
  let keys = Logsys.Collected.packet_keys collected in
  let total_records = Logsys.Collected.total collected in
  let open Bechamel in
  let test_reconstruct_lossless =
    Test.make ~name:"reconstruct-all/lossless" (Staged.stage (fun () ->
        ignore (reconstruct_flows collected ~sink:scenario.sink)))
  in
  let test_reconstruct_lossy =
    Test.make ~name:"reconstruct-all/20%-loss" (Staged.stage (fun () ->
        ignore (reconstruct_flows lossy ~sink:scenario.sink)))
  in
  let test_single_packet =
    let origin, seq = List.nth keys (List.length keys / 2) in
    Test.make ~name:"reconstruct-one-packet" (Staged.stage (fun () ->
        ignore
          (Refill.Reconstruct.packet collected ~origin ~seq
             ~sink:scenario.sink)))
  in
  let test_naive =
    Test.make ~name:"baseline-naive/lossless" (Staged.stage (fun () ->
        ignore (Baseline.Naive.classify_all collected ~sink:scenario.sink)))
  in
  let test_loss_model =
    Test.make ~name:"loss-model/default" (Staged.stage (fun () ->
        let rng = Prelude.Rng.create ~seed:6L in
        ignore
          (Logsys.Collected.lossify Logsys.Loss_model.default rng collected)))
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
    in
    let raw = Benchmark.all cfg instances test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ per_run_ns ] ->
            Printf.printf "  %-28s %12.0f ns/run  (%.2f runs/s)\n" name
              per_run_ns
              (1e9 /. per_run_ns)
        | _ -> Printf.printf "  %-28s (no estimate)\n" name)
      results
  in
  Printf.printf "workload: %d packets, %d records\n" (List.length keys)
    total_records;
  List.iter
    (fun t -> benchmark t)
    [
      test_reconstruct_lossless;
      test_reconstruct_lossy;
      test_single_packet;
      test_naive;
      test_loss_model;
    ]

(* -- Driver -------------------------------------------------------------------- *)

let experiments =
  [
    ("table2", run_table2);
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("fig8", run_fig8);
    ("fig9", run_fig9);
    ("accuracy", run_accuracy);
    ("ablation", run_ablation);
    ("inband", run_inband);
    ("policy", run_logging_policy);
    ("ackmode", run_ack_mode);
    ("reboots", run_reboots);
    ("globalflow", run_global_flow);
    ("scale", run_scale);
    ("scaling", run_scaling);
    ("scaling-smoke", run_scaling_smoke);
    ("scaling-2d-smoke", run_scaling_2d_smoke);
    ("scaling-1200-smoke", run_scaling_1200_smoke);
    ("serve-2d-smoke", run_serve_2d_smoke);
    ("perf", perf);
  ]

(* Persist the run machine-readably so the perf trajectory accumulates:
   per-experiment wall time plus a full metrics snapshot (event counts,
   inference counters, latency histograms). *)
let rec find_repo_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_repo_root parent

let write_bench_json timings =
  let module J = Refill_obs.Json in
  let root =
    Option.value ~default:(Sys.getcwd ()) (find_repo_root (Sys.getcwd ()))
  in
  let path = Filename.concat root "BENCH_refill.json" in
  let doc =
    J.Obj
      [
        ("schema", J.Str "refill-bench-v1");
        ("unix_time", J.Num (Unix.gettimeofday ()));
        ( "experiments",
          J.Arr
            (List.map
               (fun (name, seconds) ->
                 J.Obj [ ("name", J.Str name); ("seconds", J.Num seconds) ])
               timings) );
        ( "scaling",
          J.Arr
            (List.rev_map
               (fun p ->
                 J.Obj
                   ([
                     ("rung", J.Str p.rung);
                     ("records", J.Num (float_of_int p.records));
                     ("flow_events", J.Num (float_of_int p.flow_events));
                     ("reconstruct_seconds", J.Num p.reconstruct_seconds);
                     ("global_flow_seconds", J.Num p.global_flow_seconds);
                     ("analysis_seconds", J.Num p.analysis_seconds);
                     ("stream_seconds", J.Num p.stream_seconds);
                     ("stream_shards", J.Num (float_of_int p.stream_shards));
                   ]
                   @ (match p.stream_sharded_seconds with
                     | Some dt ->
                         [
                           ("stream_sharded_seconds", J.Num dt);
                           ( "stream_speedup",
                             J.Num (p.stream_seconds /. Float.max 1e-9 dt) );
                         ]
                     | None -> [])
                   @ [
                     ( "peak_frontier_events",
                       J.Num (float_of_int p.peak_frontier_events) );
                     ( "gc_minor_collections",
                       J.Num (float_of_int p.gc_minor_collections) );
                     ("gc_major_words", J.Num p.gc_major_words);
                     ( "peak_heap_words",
                       J.Num (float_of_int p.peak_heap_words) );
                     ("decode_seconds", J.Num p.decode_seconds);
                     ( "decode_baseline_seconds",
                       J.Num p.decode_baseline_seconds );
                     ("decode_speedup", J.Num p.decode_speedup);
                     ("records_per_second", J.Num p.records_per_second);
                     ( "decode_gc_minor_collections",
                       J.Num (float_of_int p.decode_gc_minor_collections) );
                     ( "decode_baseline_gc_minor_collections",
                       J.Num
                         (float_of_int p.decode_baseline_gc_minor_collections)
                     );
                   ]))
               !scaling_results) );
        ("metrics", Refill_obs.Metrics.to_json ());
      ]
  in
  let doc =
    match (!provenance_overhead, doc) with
    | Some r, J.Obj fields ->
        J.Obj (fields @ [ ("provenance_overhead_ratio", J.Num r) ])
    | _ -> doc
  in
  let doc =
    match (!serve_records_per_second, !serve_p99_frame_latency, doc) with
    | Some rps, Some p99, J.Obj fields ->
        J.Obj
          (fields
          @ [
              ("serve_records_per_second", J.Num rps);
              ("serve_p99_frame_latency_seconds", J.Num p99);
            ])
    | _ -> doc
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string doc ^ "\n"));
  Printf.printf "\nwrote %s (%d experiments)\n" path (List.length timings)

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  let timings = ref [] in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          let t0 = Unix.gettimeofday () in
          f ();
          timings := (name, Unix.gettimeofday () -. t0) :: !timings
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested;
  write_bench_json (List.rev !timings)

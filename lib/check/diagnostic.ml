type severity = Error | Warning | Info

type location = {
  model : string;
  role : string option;
  state : string option;
  label : string option;
}

type t = {
  code : string;
  severity : severity;
  message : string;
  loc : location;
  data : (string * int) list;
}

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let loc ?role ?state ?label model = { model; role; state; label }

let make ?(data = []) ~code ~severity ~loc message =
  { code; severity; message; loc; data }

let loc_to_string l =
  let parts =
    (match l.role with Some r -> [ l.model ^ "/" ^ r ] | None -> [ l.model ])
    @ (match l.state with Some s -> [ s ] | None -> [])
    @ match l.label with Some lb -> [ "'" ^ lb ^ "'" ] | None -> []
  in
  String.concat " " parts

let to_string d =
  Printf.sprintf "%-7s %s [%s]: %s"
    (severity_name d.severity)
    d.code (loc_to_string d.loc) d.message

let to_json d =
  let module J = Refill_obs.Json in
  let opt key = function Some v -> [ (key, J.Str v) ] | None -> [] in
  J.Obj
    ([
       ("code", J.Str d.code);
       ("severity", J.Str (severity_name d.severity));
       ("message", J.Str d.message);
       ("model", J.Str d.loc.model);
     ]
    @ opt "role" d.loc.role
    @ opt "state" d.loc.state
    @ opt "label" d.loc.label
    @ List.map (fun (k, v) -> (k, J.Num (float_of_int v))) d.data)

let compare_diag a b =
  let c = compare a.code b.code in
  if c <> 0 then c
  else
    let l = a.loc and m = b.loc in
    let c = compare l.model m.model in
    if c <> 0 then c
    else
      let c = compare l.role m.role in
      if c <> 0 then c
      else
        let c = compare l.state m.state in
        if c <> 0 then c
        else
          let c = compare l.label m.label in
          if c <> 0 then c else compare a.message b.message

let count sev diags = List.length (List.filter (fun d -> d.severity = sev) diags)

let by_code code diags = List.filter (fun d -> d.code = code) diags

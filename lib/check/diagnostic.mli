(** Checker diagnostics: a finding about a protocol model, with a stable
    code, a severity, and a location inside the model.

    Codes are part of the tool's contract — tests, CI greps, and suppression
    lists key on them — so existing codes must never be renumbered or
    reused.  The current table:

    {v
    FSM001  warning  state unreachable from the initial state
    FSM002  warning  reachable dead-end state with no loss cause
    FSM003  warning  label can never fire (every source unreachable)
    FSM004  warning  nondeterministic (src, label) pair
    INT000  info     per-role intra-inference audit summary
    INT001  warning  intra shortcut blocked: multiple reachable targets
    INT002  info     inference blind spot: event would be skipped
    PRE001  error    prerequisite target state unreachable on remote role
    PRE002  error    prerequisite names an unknown role
    PRE003  error    prerequisite state out of range on remote role
    PRE004  info     cycle in the role-level prerequisite digraph
    CLS000  info     per-role classification totality summary
    CLS001  error    reachable frontier state with no classification
    LOSS000 info     per-role loss-radius summary
    LOSS001 error    shortcut site ambiguous after a single lost record
    LOSS002 warning  shortcut site ambiguous after k >= 2 lost records
    AMB000  info     per-role confusable-pair summary
    AMB001  warning  confusable state pair with a distinguishing observation
    AMB002  warning  observationally confusable paths (no distinguisher)
    AMB003  warning  prerequisite satisfiable by several alternatives
    v} *)

type severity = Error | Warning | Info

type location = {
  model : string;
  role : string option;
  state : string option;
  label : string option;
}

type t = {
  code : string;
  severity : severity;
  message : string;
  loc : location;
  data : (string * int) list;
      (** Structured numeric payload (e.g. [("k", 3)] on LOSS002), emitted
          as extra JSON fields so tools need not parse messages. *)
}

val severity_name : severity -> string

val loc :
  ?role:string -> ?state:string -> ?label:string -> string -> location
(** [loc model] with optional narrowing. *)

val make :
  ?data:(string * int) list ->
  code:string ->
  severity:severity ->
  loc:location ->
  string ->
  t
(** [data] defaults to []. *)

val compare_diag : t -> t -> int
(** Total order for deterministic reports: code, then location
    (model, role, state, label), then message.  [Check.run] sorts with
    this so CI diffs are stable. *)

val to_string : t -> string
(** One line: [severity CODE \[model/role state label\]: message]. *)

val to_json : t -> Refill_obs.Json.t
(** Object with [code], [severity], [message], [model], and the optional
    [role]/[state]/[label] fields when present. *)

val count : severity -> t list -> int

val by_code : string -> t list -> t list

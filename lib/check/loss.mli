(** Loss-radius analysis for the intra shortcut (§IV.B under lossy
    observation).

    At a shortcut site [(x, l)] — no normal [l]-edge from [x], but the
    intra derivation is defined — the engine reconstructs the shortest
    lost path.  This module asks how robust that guess is: with at most
    [k] consecutive lost records, the model-consistent completions are
    the paths of length [<= k] from [x] ending in an [l]-edge, and the
    {e loss radius} of the site is the least [k] admitting two or more.
    An infinite radius ([None]) is a proof: no loss burst of any length
    can make the site ambiguous. *)

type 'label completion =
  (Refill.Fsm_state.t * Refill.Fsm_state.t * 'label) list
(** A model-consistent completion: the lost path followed by the final
    observed [label]-edge (always nonempty; the last element carries the
    observed label). *)

type 'label site = {
  state : Refill.Fsm_state.t;
  label : 'label;
  target : Refill.Fsm_state.t;  (** the unique shortcut target [jc] *)
  radius : int option;  (** [Some k] finite, [None] infinite (safe) *)
  witnesses : 'label completion list;
      (** the shortest completions, capped at two: two distinct
          witnesses when the radius is finite (both within [radius]
          losses), the unique completion when it is infinite *)
}

val radius : 'label Refill.Fsm.t -> from:Refill.Fsm_state.t -> 'label -> int option
(** [radius fsm ~from l] is the least [k] such that at least two
    completions of [(from, l)] use [<= k] lost records each, or [None]
    if no such [k] exists.  [Some 0] only at sites with two or more
    normal [l]-edges (nondeterminism, FSM004's territory).  Runs the
    capped {0,1,2} path-count recurrence with cycle detection, so it
    terminates on every FSM. *)

val completions :
  'label Refill.Fsm.t ->
  from:Refill.Fsm_state.t ->
  'label ->
  max_losses:int ->
  max_count:int ->
  'label completion list
(** Enumerate completions with at most [max_losses] lost records,
    shortest first (BFS, edges in insertion order), stopping after
    [max_count].  Deterministic; also the brute-force oracle the
    cross-validation harness checks {!radius} against. *)

val shortcut_sites :
  'label Refill.Fsm.t ->
  (Refill.Fsm_state.t * 'label * Refill.Fsm_state.t) list
(** Every reachable [(state, label, target)] where the engine would take
    the intra shortcut: no normal [label]-edge and [Fsm.infer_intra]
    defined.  Ordered by state, then label insertion order. *)

val analyze : 'label Refill.Fsm.t -> 'label site list
(** {!shortcut_sites} with radii and witnesses filled in. *)

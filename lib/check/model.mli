(** Static description of a protocol instantiation — the analyzer's input.

    {!Refill.Engine.config} is deliberately dynamic (FSMs are chosen per
    node, prerequisites read payloads), which is what makes it impossible to
    audit before a run.  A [Model.t] is the *static projection* the checker
    works on: the finite set of roles a node can play, each role's FSM, and
    the role-level prerequisite relation.  The built-in projections of the
    CTP and dissemination protocols live in {!Builtin}; new protocol
    instantiations should ship one alongside their [Engine.config]. *)

type 'label role = {
  role : string;
  fsm : 'label Refill.Fsm.t;
  state_name : Refill.Fsm_state.t -> string;
  entry_states : Refill.Fsm_state.t list;
      (** Frontier anchors: the states a packet's final holder is identified
          by (CTP: [holding]).  Classification totality is checked over
          every state reachable from one of these.  An empty list skips the
          totality pass for the role (with an info diagnostic). *)
  frontier_cause : Refill.Fsm_state.t -> string option;
      (** The loss cause (or outcome) the classifier assigns when the
          frontier ends at this state; [None] marks a classification gap. *)
}

type 'label t = {
  name : string;
  label_name : 'label -> string;
  roles : 'label role list;
  prerequisites : role:string -> 'label -> (string * Refill.Fsm_state.t) list;
      (** Role-level projection of [Engine.config.prerequisites]: for an
          event [label] firing on a node playing [role], the remote
          [(role, state)] pairs that may be required.  Alternatives (the
          sender could be an origin *or* a forwarder) are all listed; each
          must be statically satisfiable, because the engine gives up
          silently on an unreachable prerequisite target. *)
}

val find_role : 'label t -> string -> 'label role option

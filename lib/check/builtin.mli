(** Static checker models of the two protocol instantiations that ship with
    the repo.  These are the projections [refill check] runs over by
    default; {!test/test_check.ml} cross-checks them against the live
    {!Refill.Classify} / {!Refill.Protocol} behavior so they cannot drift
    silently. *)

val ctp : Refill.Protocol.label Model.t
(** The per-packet CTP collection model: roles origin / forwarder / sink
    over {!Refill.Protocol.fsm_of_role}, the recv-requires-sent and
    ack-requires-holding prerequisites, frontier anchored at
    {!Refill.Protocol.holding}, causes mirroring {!Refill.Classify}. *)

val dissem : Refill.Dissem.label Model.t
(** The dissemination/negotiation model: roles broadcaster / receiver,
    reception-implies-transmission prerequisites, progress-style
    classification (every state is an outcome, so totality is by
    construction). *)

val broken : string Model.t
(** A deliberately broken fixture, one violation per pass family (FSM001,
    FSM004, PRE001, CLS001), kept as a CLI-reachable demo ([refill check
    broken-demo]) and as the pinned negative case for the test suite.  Not
    part of {!default_names}. *)

val default_names : string list
(** The models [refill check] analyzes when none are named:
    [\["ctp"; "dissem"\]]. *)

val names : string list
(** Every model name {!run_model} accepts (includes ["broken-demo"]). *)

val run_model : string -> Diagnostic.t list option
(** Run {!Check.run} over the named built-in model; [None] for unknown
    names. *)

val dots : string -> (string * string) list
(** [dots name] renders each role FSM of the named built-in model to
    Graphviz with derived intra edges dashed: [(filename, dot source)]
    pairs, e.g. [("ctp-origin.dot", "digraph ...")].  Unknown names give
    []. *)

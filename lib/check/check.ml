module Fsm = Refill.Fsm
module D = Diagnostic

(* -- Graph helpers --------------------------------------------------------- *)

let reachable_set fsm ~from =
  let n = Fsm.n_states fsm in
  let seen = Array.make n false in
  if from >= 0 && from < n then begin
    seen.(from) <- true;
    let queue = Queue.create () in
    Queue.add from queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun (v, _) ->
          if not seen.(v) then begin
            seen.(v) <- true;
            Queue.add v queue
          end)
        (Fsm.edges_from fsm u)
    done
  end;
  seen

(* States that take part in at least one transition; the rest are unused
   slots in a shared state numbering (CTP roles share ids) and are not
   findings. *)
let participating fsm =
  let p = Array.make (Fsm.n_states fsm) false in
  List.iter
    (fun (src, dst, _) ->
      p.(src) <- true;
      p.(dst) <- true)
    (Fsm.transitions fsm);
  p

(* -- Pass 1: FSM well-formedness ------------------------------------------- *)

let well_formedness_role model (r : _ Model.role) =
  let fsm = r.fsm in
  let reach = reachable_set fsm ~from:(Fsm.initial fsm) in
  let part = participating fsm in
  let diags = ref [] in
  let emit ?state ?label code severity message =
    diags :=
      D.make ~code ~severity
        ~loc:(D.loc ~role:r.role ?state ?label model.Model.name)
        message
      :: !diags
  in
  (* FSM001: a state wired into the graph but unreachable from initial. *)
  for s = 0 to Fsm.n_states fsm - 1 do
    if part.(s) && not reach.(s) then
      emit ~state:(r.state_name s) "FSM001" D.Warning
        "state has transitions but is unreachable from the initial state"
  done;
  (* FSM002: a reachable dead end that no loss cause explains — packets that
     end there vanish from the diagnosis. *)
  for s = 0 to Fsm.n_states fsm - 1 do
    if
      reach.(s)
      && Fsm.edges_from fsm s = []
      && r.frontier_cause s = None
    then
      emit ~state:(r.state_name s) "FSM002" D.Warning
        "reachable dead-end state traps packets without a loss cause"
  done;
  (* FSM003: a label whose every source state is unreachable can never fire
     on a normal edge (and never anchors an intra shortcut either). *)
  List.iter
    (fun label ->
      let sources =
        List.filter_map
          (fun (src, _, l) -> if l = label then Some src else None)
          (Fsm.transitions fsm)
      in
      if sources <> [] && List.for_all (fun s -> not reach.(s)) sources then
        emit ~label:(model.Model.label_name label) "FSM003" D.Warning
          "label can never fire: every edge carrying it starts at an \
           unreachable state")
    (Fsm.labels fsm);
  (* FSM004: nondeterministic (src, label) — normal_next silently takes the
     first-added edge; report what is shadowed. *)
  for s = 0 to Fsm.n_states fsm - 1 do
    if reach.(s) then
      List.iter
        (fun label ->
          match Fsm.normal_next_all fsm ~from:s label with
          | [] | [ _ ] -> ()
          | winner :: shadowed ->
              emit ~state:(r.state_name s)
                ~label:(model.Model.label_name label)
                "FSM004" D.Warning
                (Printf.sprintf
                   "nondeterministic (src, label): normal_next takes the \
                    first-added edge to %s, shadowing %s"
                   (r.state_name winner)
                   (String.concat ", "
                      (List.map r.state_name
                         (List.sort_uniq compare shadowed)))))
        (Fsm.labels fsm)
  done;
  List.rev !diags

let well_formedness model =
  List.concat_map (well_formedness_role model) model.Model.roles

(* -- Pass 2: intra-inference audit ----------------------------------------- *)

let intra_audit_role model (r : _ Model.role) =
  let fsm = r.fsm in
  let reach = reachable_set fsm ~from:(Fsm.initial fsm) in
  let diags = ref [] in
  let emit ?state ?label code severity message =
    diags :=
      D.make ~code ~severity
        ~loc:(D.loc ~role:r.role ?state ?label model.Model.name)
        message
      :: !diags
  in
  let normal = ref 0 and shortcut = ref 0 in
  let ambiguous = ref 0 and blind = ref 0 in
  for s = 0 to Fsm.n_states fsm - 1 do
    if reach.(s) then
      List.iter
        (fun label ->
          match Fsm.normal_next fsm ~from:s label with
          | Some _ -> incr normal
          | None -> (
              let targets =
                Fsm.targets_of_label fsm label
                |> List.filter (fun jc -> Fsm.reachable fsm ~from:s jc)
              in
              (* A unique reachable target is not enough: infer_intra also
                 needs a reachable *source* of a [label]-edge into it, or
                 the engine still skips (cf. Fsm.infer_intra). *)
              let takeable jc =
                List.exists
                  (fun (src, dst, l) ->
                    l = label && dst = jc && Fsm.reachable fsm ~from:s src)
                  (Fsm.transitions fsm)
              in
              match targets with
              | [ jc ] when takeable jc -> incr shortcut
              | [] | [ _ ] ->
                  incr blind;
                  emit ~state:(r.state_name s)
                    ~label:(model.Model.label_name label)
                    "INT002" D.Info
                    "inference blind spot: no normal edge and no reachable \
                     intra target — the event would be skipped here"
              | _ :: _ :: _ ->
                  incr ambiguous;
                  emit ~state:(r.state_name s)
                    ~label:(model.Model.label_name label)
                    "INT001" D.Warning
                    (Printf.sprintf
                       "intra shortcut blocked: %d targets reachable (%s) — \
                        §IV.B requires a unique one, so the event would be \
                        skipped here"
                       (List.length targets)
                       (String.concat ", " (List.map r.state_name targets)))))
        (Fsm.labels fsm)
  done;
  let total = !normal + !shortcut + !ambiguous + !blind in
  emit "INT000" D.Info
    (Printf.sprintf
       "intra audit: %d reachable (state, label) pairs — %d on normal \
        edges, %d via the intra shortcut, %d ambiguous, %d blind"
       total !normal !shortcut !ambiguous !blind);
  List.rev !diags

let intra_audit model =
  List.concat_map (intra_audit_role model) model.Model.roles

(* -- Pass 3: prerequisite-graph analysis ----------------------------------- *)

let prereq_graph model =
  let diags = ref [] in
  let emit ?role ?state ?label code severity message =
    diags :=
      D.make ~code ~severity
        ~loc:(D.loc ?role ?state ?label model.Model.name)
        message
      :: !diags
  in
  (* Collect the role-level digraph: (from role, label, to role, state). *)
  let edges = ref [] in
  List.iter
    (fun (r : _ Model.role) ->
      List.iter
        (fun label ->
          List.iter
            (fun (rname, rstate) ->
              edges := (r.Model.role, label, rname, rstate) :: !edges)
            (model.Model.prerequisites ~role:r.Model.role label))
        (Fsm.labels r.Model.fsm))
    model.Model.roles;
  let edges = List.rev !edges in
  (* Each listed (role, state) alternative must be statically satisfiable:
     the engine's drive gives up silently when the target is unreachable. *)
  List.iter
    (fun (from_role, label, rname, rstate) ->
      let label_n = model.Model.label_name label in
      match Model.find_role model rname with
      | None ->
          emit ~role:from_role ~label:label_n "PRE002" D.Error
            (Printf.sprintf "prerequisite names unknown role %S" rname)
      | Some remote ->
          if rstate < 0 || rstate >= Fsm.n_states remote.Model.fsm then
            emit ~role:from_role ~label:label_n "PRE003" D.Error
              (Printf.sprintf
                 "prerequisite state %d is out of range on role %s" rstate
                 rname)
          else if
            not
              (Fsm.reachable remote.Model.fsm
                 ~from:(Fsm.initial remote.Model.fsm)
                 rstate)
          then
            emit ~role:from_role ~label:label_n "PRE001" D.Error
              (Printf.sprintf
                 "prerequisite %s.%s is unreachable on the remote role's \
                  FSM: the inter transition is statically unsatisfiable \
                  and drive would give up silently"
                 rname
                 (remote.Model.state_name rstate)))
    edges;
  (* Cycles: transitive closure over role names; a role that requires itself
     (possibly via others) makes drive's termination rest on the runtime
     driving-set guard rather than on the graph. *)
  let roles = List.map (fun (r : _ Model.role) -> r.Model.role) model.roles in
  let indexed = List.mapi (fun i name -> (name, i)) roles in
  let idx name = List.assoc_opt name indexed in
  let n = List.length roles in
  let adj = Array.make_matrix n n false in
  List.iter
    (fun (a, _, b, _) ->
      match (idx a, idx b) with
      | Some i, Some j -> adj.(i).(j) <- true
      | _ -> ())
    edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if adj.(i).(k) && adj.(k).(j) then adj.(i).(j) <- true
      done
    done
  done;
  let cyclic =
    List.filteri (fun i _ -> adj.(i).(i)) roles
  in
  if cyclic <> [] then
    emit "PRE004" D.Info
      (Printf.sprintf
         "prerequisite cycle through role(s) %s: drive recursion is bounded \
          only by the engine's (node, target) driving-set guard, not by the \
          graph"
         (String.concat ", " cyclic));
  List.rev !diags

(* -- Pass 4: classification totality --------------------------------------- *)

let classification_role model (r : _ Model.role) =
  let fsm = r.fsm in
  let diags = ref [] in
  let emit ?state code severity message =
    diags :=
      D.make ~code ~severity
        ~loc:(D.loc ~role:r.role ?state model.Model.name)
        message
      :: !diags
  in
  (match r.entry_states with
  | [] ->
      emit "CLS000" D.Info
        "no frontier anchors declared; classification totality not checked"
  | entries ->
      let n = Fsm.n_states fsm in
      let frontier = Array.make n false in
      List.iter
        (fun e ->
          if e >= 0 && e < n then begin
            let reach = reachable_set fsm ~from:e in
            for s = 0 to n - 1 do
              if reach.(s) then frontier.(s) <- true
            done
          end)
        entries;
      let total = ref 0 and gaps = ref 0 in
      for s = 0 to n - 1 do
        if frontier.(s) then begin
          incr total;
          if r.frontier_cause s = None then begin
            incr gaps;
            emit ~state:(r.state_name s) "CLS001" D.Error
              "frontier can end at this state but no loss cause is \
               assigned: flows ending here are unclassifiable"
          end
        end
      done;
      emit "CLS000" D.Info
        (Printf.sprintf
           "classification totality: %d/%d frontier-reachable states \
            classified"
           (!total - !gaps) !total));
  List.rev !diags

let classification model =
  List.concat_map (classification_role model) model.Model.roles

(* -- Pass 5: loss radius ----------------------------------------------------- *)

let loss_radius_role model (r : _ Model.role) =
  let diags = ref [] in
  let emit ?data ?state ?label code severity message =
    diags :=
      D.make ?data ~code ~severity
        ~loc:(D.loc ~role:r.role ?state ?label model.Model.name)
        message
      :: !diags
  in
  let sites = Loss.analyze r.fsm in
  let safe = ref 0 and finite = ref 0 and single = ref 0 in
  let min_finite = ref max_int in
  List.iter
    (fun (site : _ Loss.site) ->
      let state = r.state_name site.state in
      let label = model.Model.label_name site.label in
      match site.radius with
      | None -> incr safe
      | Some k when k <= 1 ->
          incr single;
          emit ~data:[ ("k", k) ] ~state ~label "LOSS001" D.Error
            (Printf.sprintf
               "loss radius 1: a single lost record already admits %d \
                model-consistent completions of the intra shortcut to %s — \
                any drop here is ambiguous"
               (List.length site.witnesses)
               (r.state_name site.target))
      | Some k ->
          incr finite;
          if k < !min_finite then min_finite := k;
          emit ~data:[ ("k", k) ] ~state ~label "LOSS002" D.Warning
            (Printf.sprintf
               "loss radius %d: a burst of %d lost records admits a second \
                model-consistent completion of the intra shortcut to %s"
               k k
               (r.state_name site.target)))
    sites;
  let min_txt =
    if !min_finite = max_int then ""
    else Printf.sprintf " (min finite radius %d)" !min_finite
  in
  emit "LOSS000" D.Info
    (Printf.sprintf
       "loss radius: %d shortcut sites — %d safe at any loss (k=inf), %d \
        finite%s, %d single-drop ambiguous"
       (List.length sites) !safe !finite min_txt !single);
  List.rev !diags

let loss_radius model =
  List.concat_map (loss_radius_role model) model.Model.roles

(* -- Pass 6: product-automaton ambiguity ------------------------------------- *)

let product_ambiguity_role model (r : _ Model.role) =
  let diags = ref [] in
  let emit ?data ?state ?label code severity message =
    diags :=
      D.make ?data ~code ~severity
        ~loc:(D.loc ~role:r.role ?state ?label model.Model.name)
        message
      :: !diags
  in
  let pairs = Product.confusable_pairs r.fsm in
  let distinguishable = ref 0 and equivalent = ref 0 in
  List.iter
    (fun (p : _ Product.pair) ->
      let state =
        Printf.sprintf "%s|%s" (r.state_name p.left) (r.state_name p.right)
      in
      let seed =
        Printf.sprintf "seeded at %s on '%s'"
          (r.state_name p.seed_state)
          (model.Model.label_name p.seed_label)
      in
      match p.distinguisher with
      | Some obs ->
          incr distinguishable;
          emit ~state ~label:(model.Model.label_name p.seed_label) "AMB001"
            D.Warning
            (Printf.sprintf
               "confusable states (%s): distinct paths project to the same \
                lossy log; the observations '%s' would distinguish them"
               seed
               (String.concat " "
                  (List.map model.Model.label_name obs)))
      | None ->
          incr equivalent;
          emit ~state ~label:(model.Model.label_name p.seed_label) "AMB002"
            D.Warning
            (Printf.sprintf
               "observationally equivalent states (%s): no surviving record \
                set can ever tell the two reconstructions apart"
               seed))
    pairs;
  let diamonds = Product.diamonds r.fsm in
  List.iter
    (fun (d : _ Product.diamond) ->
      emit
        ~data:[ ("k", d.d_radius) ]
        ~state:(r.state_name d.d_state)
        ~label:(model.Model.label_name d.d_label)
        "AMB002" D.Warning
        (Printf.sprintf
           "confusable paths through the normal edge: a burst of %d lost \
            records admits a second completion with the same surviving \
            projection — the engine silently prefers the normal edge"
           d.d_radius))
    diamonds;
  emit "AMB000" D.Info
    (Printf.sprintf
       "product automaton: %d confusable pairs (%d distinguishable, %d \
        observationally equivalent), %d normal-edge diamond sites"
       (List.length pairs) !distinguishable !equivalent
       (List.length diamonds));
  List.rev !diags

(* Cross-role extension: a prerequisite listing several statically
   satisfiable alternatives cannot be uniquely discharged from any
   surviving record set — the engine's drive picks the first satisfiable
   one, which is a guess. *)
let product_ambiguity_prereqs model =
  let diags = ref [] in
  List.iter
    (fun (r : _ Model.role) ->
      List.iter
        (fun label ->
          let alts = model.Model.prerequisites ~role:r.Model.role label in
          let satisfiable =
            List.filter
              (fun (rname, rstate) ->
                match Model.find_role model rname with
                | None -> false
                | Some remote ->
                    rstate >= 0
                    && rstate < Fsm.n_states remote.Model.fsm
                    && Fsm.reachable remote.Model.fsm
                         ~from:(Fsm.initial remote.Model.fsm)
                         rstate)
              alts
          in
          match satisfiable with
          | _ :: _ :: _ ->
              diags :=
                D.make
                  ~data:[ ("alternatives", List.length satisfiable) ]
                  ~code:"AMB003" ~severity:D.Warning
                  ~loc:
                    (D.loc ~role:r.Model.role
                       ~label:(model.Model.label_name label)
                       model.Model.name)
                  (Printf.sprintf
                     "prerequisite satisfiable by %d alternatives (%s): its \
                      satisfaction cannot be uniquely inferred from any \
                      surviving record set"
                     (List.length satisfiable)
                     (String.concat ", "
                        (List.map
                           (fun (rname, rstate) ->
                             match Model.find_role model rname with
                             | Some remote ->
                                 rname ^ "."
                                 ^ remote.Model.state_name rstate
                             | None -> rname)
                           satisfiable)))
                :: !diags
          | _ -> ())
        (Fsm.labels r.Model.fsm))
    model.Model.roles;
  List.rev !diags

let product_ambiguity model =
  List.concat_map (product_ambiguity_role model) model.Model.roles
  @ product_ambiguity_prereqs model

(* -- Driver and reports ----------------------------------------------------- *)

let run model =
  List.stable_sort D.compare_diag
    (well_formedness model @ intra_audit model @ prereq_graph model
    @ classification model @ loss_radius model @ product_ambiguity model)

let error_count diags = D.count D.Error diags

let to_text results =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, diags) ->
      Buffer.add_string buf (Printf.sprintf "model %s:\n" name);
      List.iter
        (fun d -> Buffer.add_string buf ("  " ^ D.to_string d ^ "\n"))
        diags)
    results;
  let all = List.concat_map snd results in
  Buffer.add_string buf
    (Printf.sprintf "%d error(s), %d warning(s), %d info\n"
       (D.count D.Error all) (D.count D.Warning all) (D.count D.Info all));
  Buffer.contents buf

let to_json results =
  let module J = Refill_obs.Json in
  let num n = J.Num (float_of_int n) in
  let model_json (name, diags) =
    J.Obj
      [
        ("name", J.Str name);
        ("errors", num (D.count D.Error diags));
        ("warnings", num (D.count D.Warning diags));
        ("infos", num (D.count D.Info diags));
        ("diagnostics", J.Arr (List.map D.to_json diags));
      ]
  in
  J.Obj
    [
      ("format", J.Str "refill-check-v1");
      ("models", J.Arr (List.map model_json results));
      ("errors", num (error_count (List.concat_map snd results)));
    ]

(* Self-product automaton under the lossy-observation projection.

   A pair (u, v), u <> v, is *confusable* when two distinct ground-truth
   paths with identical surviving projections can leave the observer
   believing the node is in u or in v.  Pairs are seeded on the diagonal —
   a reachable state w and label l with two or more observation targets
   (Fsm.obs_targets) — and propagated by synchronized observation steps:
   from (u, v), observing l moves to any (u', v') with u' an obs target of
   u and v' of v.  Losses never split a pair by themselves; they are
   absorbed into the reachability inside obs_targets.

   For each confusable pair we search for a minimal distinguishing
   observation: a label sequence possible under exactly one hypothesis.
   The search runs on subset pairs (BFS, so the first hit is minimal);
   exhausting the subset-pair space without a hit proves the two states
   observationally equivalent — no future log can ever tell them apart. *)

module Fsm = Refill.Fsm

type 'label pair = {
  left : Refill.Fsm_state.t;
  right : Refill.Fsm_state.t;
  seed_state : Refill.Fsm_state.t;
  seed_label : 'label;
  distinguisher : 'label list option;
}

type 'label diamond = {
  d_state : Refill.Fsm_state.t;
  d_label : 'label;
  d_radius : int;
  d_witnesses : 'label Loss.completion list;
}

let norm u v = if u <= v then (u, v) else (v, u)

(* Subsets as bitmasks; protocol FSMs are small.  Oversized FSMs get no
   distinguisher search (reported as equivalent-unknown is wrong, so we
   conservatively return None only when the search space is real; see
   [distinguisher]). *)
let max_bitmask_states = 60

let distinguisher fsm u v =
  let n = Fsm.n_states fsm in
  if n > max_bitmask_states then None
  else begin
    let step mask l =
      let acc = ref 0 in
      for s = 0 to n - 1 do
        if mask land (1 lsl s) <> 0 then
          List.iter
            (fun t -> acc := !acc lor (1 lsl t))
            (Fsm.obs_targets fsm ~from:s l)
      done;
      !acc
    in
    let seen = Hashtbl.create 64 in
    let q = Queue.create () in
    let start = (1 lsl u, 1 lsl v) in
    Hashtbl.replace seen start ();
    Queue.add (start, []) q;
    let result = ref None in
    while !result = None && not (Queue.is_empty q) do
      let (a, b), rlabels = Queue.pop q in
      List.iter
        (fun l ->
          if !result = None then begin
            let a' = step a l and b' = step b l in
            if a' = 0 && b' = 0 then () (* impossible under both *)
            else if a' = 0 || b' = 0 then
              result := Some (List.rev (l :: rlabels))
            else if not (Hashtbl.mem seen (a', b')) then begin
              Hashtbl.replace seen (a', b') ();
              Queue.add ((a', b'), l :: rlabels) q
            end
          end)
        (Fsm.labels fsm)
    done;
    !result
  end

let confusable_pairs fsm =
  let initial = Fsm.initial fsm in
  let labels = Fsm.labels fsm in
  let seen = Hashtbl.create 32 in
  let order = ref [] in
  let q = Queue.create () in
  let add u v seed =
    let p = norm u v in
    if not (Hashtbl.mem seen p) then begin
      Hashtbl.replace seen p seed;
      order := p :: !order;
      Queue.add p q
    end
  in
  for w = 0 to Fsm.n_states fsm - 1 do
    if Fsm.reachable fsm ~from:initial w then
      List.iter
        (fun l ->
          let ts = Fsm.obs_targets fsm ~from:w l in
          List.iteri
            (fun i u ->
              List.iteri
                (fun j v -> if j > i && u <> v then add u v (w, l))
                ts)
            ts)
        labels
  done;
  while not (Queue.is_empty q) do
    let ((u, v) as p) = Queue.pop q in
    let seed = Hashtbl.find seen p in
    List.iter
      (fun l ->
        let tu = Fsm.obs_targets fsm ~from:u l in
        let tv = Fsm.obs_targets fsm ~from:v l in
        List.iter
          (fun u' ->
            List.iter (fun v' -> if u' <> v' then add u' v' seed) tv)
          tu)
      labels
  done;
  List.rev_map
    (fun ((u, v) as p) ->
      let seed_state, seed_label = Hashtbl.find seen p in
      {
        left = u;
        right = v;
        seed_state;
        seed_label;
        distinguisher = distinguisher fsm u v;
      })
    !order

(* Diamond sites: a reachable (state, label) served by a single normal
   edge, where a finite loss burst opens a second model-consistent
   completion.  The engine silently prefers the normal edge; these are
   exactly where Table-II accuracy must degrade under loss.  Sites with
   two or more normal edges are FSM004's, shortcut sites are Loss's. *)
let diamonds fsm =
  let initial = Fsm.initial fsm in
  let out = ref [] in
  for s = 0 to Fsm.n_states fsm - 1 do
    if Fsm.reachable fsm ~from:initial s then
      List.iter
        (fun label ->
          match Fsm.normal_next_all fsm ~from:s label with
          | [ _ ] -> (
              match Loss.radius fsm ~from:s label with
              | Some k when k >= 1 ->
                  out :=
                    {
                      d_state = s;
                      d_label = label;
                      d_radius = k;
                      d_witnesses =
                        Loss.completions fsm ~from:s label ~max_losses:k
                          ~max_count:2;
                    }
                    :: !out
              | Some _ | None -> ())
          | _ -> ())
        (Fsm.labels fsm)
  done;
  List.rev !out

let to_dot ?(name = "product") ~label_name ~state_name fsm =
  let pairs = confusable_pairs fsm in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph %s {\n  rankdir=LR;\n  node [fontsize=11];\n" name;
  let pair_id u v = Printf.sprintf "p%d_%d" u v in
  let diag_id w = Printf.sprintf "d%d" w in
  let diag_nodes = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if not (Hashtbl.mem diag_nodes p.seed_state) then begin
        Hashtbl.replace diag_nodes p.seed_state ();
        pr "  %s [label=\"%s\", shape=box];\n" (diag_id p.seed_state)
          (state_name p.seed_state)
      end)
    pairs;
  List.iter
    (fun p ->
      let color, note =
        match p.distinguisher with
        | Some obs ->
            ( "lightsalmon",
              Printf.sprintf "\\ndistinguish: %s"
                (String.concat " " (List.map label_name obs)) )
        | None -> ("red", "\\nobservationally equivalent")
      in
      pr "  %s [label=\"%s | %s%s\", style=filled, fillcolor=%s];\n"
        (pair_id p.left p.right) (state_name p.left) (state_name p.right)
        note color;
      pr "  %s -> %s [label=\"%s\", style=dashed];\n" (diag_id p.seed_state)
        (pair_id p.left p.right)
        (label_name p.seed_label))
    pairs;
  (* Synchronized observation steps between confusable pairs. *)
  let is_pair u v = List.exists (fun p -> (p.left, p.right) = norm u v) pairs in
  List.iter
    (fun p ->
      List.iter
        (fun l ->
          let tu = Fsm.obs_targets fsm ~from:p.left l in
          let tv = Fsm.obs_targets fsm ~from:p.right l in
          let drawn = Hashtbl.create 4 in
          List.iter
            (fun u' ->
              List.iter
                (fun v' ->
                  let u', v' = norm u' v' in
                  if u' <> v' && is_pair u' v' && not (Hashtbl.mem drawn (u', v'))
                  then begin
                    Hashtbl.replace drawn (u', v') ();
                    pr "  %s -> %s [label=\"%s\"];\n"
                      (pair_id p.left p.right) (pair_id u' v') (label_name l)
                  end)
                tv)
            tu)
        (Fsm.labels fsm))
    pairs;
  pr "}\n";
  Buffer.contents buf

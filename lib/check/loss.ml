(* Loss-radius analysis: how many consecutive lost records does it take
   before the §IV.B intra shortcut admits two model-consistent completions?

   A completion at a site [(x, l)] is a ground-truth behavior consistent
   with observing label [l] while believing the node is in state [x]: a
   (possibly empty) path of lost transitions from [x] to some state [ic],
   followed by the observed [l]-edge [ic -> jc].  With at most [k] lost
   records, the completions are exactly the paths of length <= k ending in
   an [l]-edge.  The loss radius of the site is the least [k] for which two
   or more completions exist — the least loss burst after which the
   deterministic shortcut is guessing.  Sites with a single completion at
   every horizon are safe at any loss rate (infinite radius).

   Path counts are computed in the capped semiring {0, 1, 2} (2 = "two or
   more"), so the per-step transfer is a deterministic map on a finite set
   of count vectors: revisiting a vector with an unchanged cumulative
   total proves the total can never grow again, which is the infinite-
   radius certificate. *)

module Fsm = Refill.Fsm

type 'label completion =
  (Refill.Fsm_state.t * Refill.Fsm_state.t * 'label) list

type 'label site = {
  state : Refill.Fsm_state.t;
  label : 'label;
  target : Refill.Fsm_state.t;
  radius : int option;
  witnesses : 'label completion list;
}

let cap v = if v > 2 then 2 else v

let radius fsm ~from label =
  let n = Fsm.n_states fsm in
  if from < 0 || from >= n then None
  else begin
    (* One entry per [l]-edge: distinct edges sharing a source are distinct
       completions. *)
    let ledge_sources = List.map fst (Fsm.edges_of_label fsm label) in
    let total cnt =
      List.fold_left (fun acc s -> acc + cnt.(s)) 0 ledge_sources
    in
    let cnt = ref (Array.make n 0) in
    !cnt.(from) <- 1;
    let cum = ref (cap (total !cnt)) in
    if !cum >= 2 then Some 0
    else begin
      let seen = Hashtbl.create 16 in
      let result = ref None in
      let finished = ref false in
      let k = ref 0 in
      while not !finished do
        incr k;
        let next = Array.make n 0 in
        for s = 0 to n - 1 do
          if !cnt.(s) > 0 then
            List.iter
              (fun (dst, _) -> next.(dst) <- cap (next.(dst) + !cnt.(s)))
              (Fsm.edges_from fsm s)
        done;
        cnt := next;
        cum := cap (!cum + total next);
        if !cum >= 2 then begin
          result := Some !k;
          finished := true
        end
        else begin
          let key = Array.to_list next in
          match Hashtbl.find_opt seen key with
          | Some c when c = !cum -> finished := true (* cycle, no growth *)
          | _ -> Hashtbl.replace seen key !cum
        end
      done;
      !result
    end
  end

let completions fsm ~from label ~max_losses ~max_count =
  let n = Fsm.n_states fsm in
  if from < 0 || from >= n || max_count <= 0 then []
  else begin
    (* BFS over lost paths: shortest completions first, insertion order
       within a length — deterministic witnesses. *)
    let out = ref [] in
    let found = ref 0 in
    let q = Queue.create () in
    Queue.add (from, [], 0) q;
    while !found < max_count && not (Queue.is_empty q) do
      let s, rpath, len = Queue.pop q in
      List.iter
        (fun (dst, l) ->
          if l = label && !found < max_count then begin
            out := List.rev ((s, dst, label) :: rpath) :: !out;
            incr found
          end)
        (Fsm.edges_from fsm s);
      if len < max_losses then
        List.iter
          (fun (dst, l) -> Queue.add (dst, (s, dst, l) :: rpath, len + 1) q)
          (Fsm.edges_from fsm s)
    done;
    List.rev !out
  end

let shortcut_sites fsm =
  let initial = Fsm.initial fsm in
  let sites = ref [] in
  for s = 0 to Fsm.n_states fsm - 1 do
    if Fsm.reachable fsm ~from:initial s then
      List.iter
        (fun label ->
          if Fsm.normal_next fsm ~from:s label = None then
            match Fsm.infer_intra fsm ~from:s label with
            | Some (_, jc) -> sites := (s, label, jc) :: !sites
            | None -> ())
        (Fsm.labels fsm)
  done;
  List.rev !sites

let analyze fsm =
  List.map
    (fun (state, label, target) ->
      let radius = radius fsm ~from:state label in
      let max_losses =
        match radius with Some k -> k | None -> Fsm.n_states fsm
      in
      let witnesses =
        completions fsm ~from:state label ~max_losses ~max_count:2
      in
      { state; label; target; radius; witnesses })
    (shortcut_sites fsm)

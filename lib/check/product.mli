(** Self-product automaton of a role FSM under the lossy-observation
    projection: which belief states can two distinct ground truths with
    identical surviving logs leave the observer in, and can any future
    observation tell them apart?

    Construction: pairs are seeded on the diagonal wherever a single
    observed label has two or more observation targets
    ({!Refill.Fsm.obs_targets}), and closed under synchronized
    observation steps.  Record losses never split a pair by themselves —
    they are already absorbed into the reachability inside
    [obs_targets]. *)

type 'label pair = {
  left : Refill.Fsm_state.t;  (** [left <= right] *)
  right : Refill.Fsm_state.t;
  seed_state : Refill.Fsm_state.t;
      (** diagonal state whose observation step first split the pair *)
  seed_label : 'label;  (** the observed label at the seed *)
  distinguisher : 'label list option;
      (** a minimal observation sequence possible under exactly one of
          the two hypotheses, or [None] when the pair is observationally
          equivalent — no surviving log can ever tell them apart *)
}

type 'label diamond = {
  d_state : Refill.Fsm_state.t;
  d_label : 'label;
  d_radius : int;
      (** least loss burst opening a second completion ([>= 1]) *)
  d_witnesses : 'label Loss.completion list;
      (** two shortest completions, the first being the normal edge *)
}

val confusable_pairs : 'label Refill.Fsm.t -> 'label pair list
(** All reachable confusable pairs, in discovery order (diagonal seeds by
    state then label, then BFS propagation). *)

val distinguisher :
  'label Refill.Fsm.t ->
  Refill.Fsm_state.t ->
  Refill.Fsm_state.t ->
  'label list option
(** Minimal distinguishing observation for two belief states (BFS over
    subset pairs, so the first hit is shortest; deterministic). [None]
    when observationally equivalent. *)

val diamonds : 'label Refill.Fsm.t -> 'label diamond list
(** Reachable [(state, label)] sites served by exactly one normal edge
    where a finite loss burst opens a second model-consistent completion
    — the engine silently prefers the normal edge there.  Sites with two
    or more normal edges are FSM004 findings; shortcut sites belong to
    {!Loss}. *)

val to_dot :
  ?name:string ->
  label_name:('label -> string) ->
  state_name:(Refill.Fsm_state.t -> string) ->
  'label Refill.Fsm.t ->
  string
(** Graphviz rendering of the confusable part of the product automaton:
    seed states (boxes), confusable pairs (filled — salmon when a
    distinguishing observation exists, red when observationally
    equivalent), dashed seed edges and synchronized observation steps. *)

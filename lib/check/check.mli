(** The static analyzer: six pass families over a protocol {!Model}.

    The passes machine-check the preconditions the inference pipeline
    quietly assumes:

    - {!well_formedness} — each role FSM, as a graph: unreachable states
      (FSM001), reachable dead ends with no loss cause (FSM002), labels that
      can never fire (FSM003), and nondeterministic [(src, label)] pairs
      where {!Refill.Fsm.normal_next}'s first-added-wins rule silently picks
      one edge (FSM004);
    - {!intra_audit} — for every reachable [(state, label)] pair, whether
      the §IV.B intra shortcut is defined, covered by a normal edge, blocked
      by multiple reachable targets (INT001), or a blind spot where the
      event would be skipped (INT002); totals per role in INT000;
    - {!prereq_graph} — the role×role prerequisite digraph: prerequisites
      whose target is statically unsatisfiable, i.e. the remote role can
      never reach the required state so the engine's [drive] would give up
      silently (PRE001–PRE003), and cycles that make [drive]'s termination
      depend on its runtime driving-set guard (PRE004);
    - {!classification} — totality: every frontier state reachable from a
      role's entry states must map to a loss cause (CLS001), so the
      classifier can never meet a flow it has no verdict for;
    - {!loss_radius} — for every intra-shortcut site, the least loss burst
      [k] after which the shortcut admits two model-consistent completions
      ({!Loss}): [k = 1] sites are errors (LOSS001 — any single drop is
      already ambiguous), finite [k >= 2] sites warn carrying [k]
      (LOSS002), infinite-radius sites are provably safe and only counted
      in the per-role summary (LOSS000);
    - {!product_ambiguity} — confusable state pairs on the self-product
      automaton under the lossy-observation projection ({!Product}):
      pairs with a minimal distinguishing observation (AMB001), pairs or
      normal-edge diamonds that are observationally equivalent (AMB002),
      and — across roles — prerequisites satisfiable by several
      alternatives, whose discharge can never be uniquely inferred
      (AMB003); totals per role in AMB000.

    {!run} runs all six and sorts the result with
    {!Diagnostic.compare_diag} (code, then location) so reports and CI
    diffs are deterministic. *)

val well_formedness : 'label Model.t -> Diagnostic.t list

val intra_audit : 'label Model.t -> Diagnostic.t list

val prereq_graph : 'label Model.t -> Diagnostic.t list

val classification : 'label Model.t -> Diagnostic.t list

val loss_radius : 'label Model.t -> Diagnostic.t list

val product_ambiguity : 'label Model.t -> Diagnostic.t list

val run : 'label Model.t -> Diagnostic.t list

val error_count : Diagnostic.t list -> int

val to_text : (string * Diagnostic.t list) list -> string
(** Human-readable report over named results (one section per model),
    ending with a one-line tally. *)

val to_json : (string * Diagnostic.t list) list -> Refill_obs.Json.t
(** [{"format": "refill-check-v1",
    "models": [{"name", "errors", "warnings", "infos", "diagnostics"}...],
    "errors": total}] — machine-readable report for CI.  The [format]
    field versions the schema, matching the [refill-quality-v1] /
    [refill-explain-v1] conventions. *)

(** The static analyzer: four pass families over a protocol {!Model}.

    The passes machine-check the preconditions the inference pipeline
    quietly assumes:

    - {!well_formedness} — each role FSM, as a graph: unreachable states
      (FSM001), reachable dead ends with no loss cause (FSM002), labels that
      can never fire (FSM003), and nondeterministic [(src, label)] pairs
      where {!Refill.Fsm.normal_next}'s first-added-wins rule silently picks
      one edge (FSM004);
    - {!intra_audit} — for every reachable [(state, label)] pair, whether
      the §IV.B intra shortcut is defined, covered by a normal edge, blocked
      by multiple reachable targets (INT001), or a blind spot where the
      event would be skipped (INT002); totals per role in INT000;
    - {!prereq_graph} — the role×role prerequisite digraph: prerequisites
      whose target is statically unsatisfiable, i.e. the remote role can
      never reach the required state so the engine's [drive] would give up
      silently (PRE001–PRE003), and cycles that make [drive]'s termination
      depend on its runtime driving-set guard (PRE004);
    - {!classification} — totality: every frontier state reachable from a
      role's entry states must map to a loss cause (CLS001), so the
      classifier can never meet a flow it has no verdict for.

    {!run} runs all four in the order above. *)

val well_formedness : 'label Model.t -> Diagnostic.t list

val intra_audit : 'label Model.t -> Diagnostic.t list

val prereq_graph : 'label Model.t -> Diagnostic.t list

val classification : 'label Model.t -> Diagnostic.t list

val run : 'label Model.t -> Diagnostic.t list

val error_count : Diagnostic.t list -> int

val to_text : (string * Diagnostic.t list) list -> string
(** Human-readable report over named results (one section per model),
    ending with a one-line tally. *)

val to_json : (string * Diagnostic.t list) list -> Refill_obs.Json.t
(** [{"models": [{"name", "errors", "warnings", "infos", "diagnostics"}...],
    "errors": total}] — machine-readable report for CI. *)

module P = Refill.Protocol
module Ds = Refill.Dissem
module Fsm = Refill.Fsm

(* -- CTP ------------------------------------------------------------------- *)

(* Mirror of Classify's frontier case analysis (see test_check's agreement
   test): every state a frontier can end at must map to a cause here. *)
let ctp_cause s =
  if s = P.delivered then Some "delivered"
  else if s = P.dup_dropped then Some "duplicate loss"
  else if s = P.overflow_dropped then Some "overflow loss"
  else if s = P.holding then Some "received or acked loss"
  else if s = P.sent || s = P.timed_out then Some "timeout loss"
  else if s = P.acked then Some "acked loss"
  else None

let ctp_role role fsm : P.label Model.role =
  {
    Model.role;
    fsm;
    state_name = P.state_name;
    entry_states = [ P.holding ];
    frontier_cause = ctp_cause;
  }

(* Role-level projection of Protocol.prerequisites: a reception's sender is
   any transmitting role, an ACK's receiver any accepting role. *)
let ctp_prereqs ~role:_ label =
  match (label : P.label) with
  | P.L_recv | P.L_dup | P.L_overflow ->
      [ ("origin", P.sent); ("forwarder", P.sent) ]
  | P.L_ack -> [ ("forwarder", P.holding); ("sink", P.holding) ]
  | P.L_gen | P.L_trans | P.L_timeout | P.L_deliver -> []

let ctp : P.label Model.t =
  {
    Model.name = "ctp";
    label_name = P.label_name;
    roles =
      [
        ctp_role "origin" (P.fsm_of_role P.Origin);
        ctp_role "forwarder" (P.fsm_of_role P.Forwarder);
        ctp_role "sink" (P.fsm_of_role P.Sink);
      ];
    prerequisites = ctp_prereqs;
  }

(* -- Dissemination --------------------------------------------------------- *)

(* Progress-style classification: the outcome *is* the furthest state, so
   every state names its own verdict (cf. Dissem.receiver_progress). *)
let dissem_receiver_cause s = Some ("progress: " ^ Ds.receiver_state_name s)

let dissem_broadcaster_cause s =
  Some ("progress: " ^ Ds.broadcaster_state_name s)

let dissem_prereqs ~role:_ label =
  match (label : Ds.label) with
  | Ds.L_rx_adv -> [ ("broadcaster", Ds.b_advertised) ]
  | Ds.L_rx_req -> [ ("receiver", Ds.r_requested) ]
  | Ds.L_rx_data -> [ ("broadcaster", Ds.b_data_sent) ]
  | Ds.L_adv | Ds.L_req | Ds.L_data | Ds.L_done -> []

let dissem : Ds.label Model.t =
  {
    Model.name = "dissem";
    label_name = Ds.label_name;
    roles =
      [
        {
          Model.role = "broadcaster";
          fsm = Ds.broadcaster_fsm;
          state_name = Ds.broadcaster_state_name;
          entry_states = [ Ds.b_init ];
          frontier_cause = dissem_broadcaster_cause;
        };
        {
          Model.role = "receiver";
          fsm = Ds.receiver_fsm;
          state_name = Ds.receiver_state_name;
          entry_states = [ Ds.r_init ];
          frontier_cause = dissem_receiver_cause;
        };
      ];
    prerequisites = dissem_prereqs;
  }

(* -- Broken demo ----------------------------------------------------------- *)

(* A fixture violating one invariant per pass family, so `refill check
   broken-demo` demonstrates every diagnostic class and the nonzero exit. *)
let broken : string Model.t =
  let fsm_a = Fsm.create ~n_states:4 ~initial:0 in
  Fsm.add_transition fsm_a ~src:0 ~dst:1 "go";
  (* FSM004: second (src, label) edge — normal_next silently prefers 0→1. *)
  Fsm.add_transition fsm_a ~src:0 ~dst:2 "go";
  Fsm.add_transition fsm_a ~src:1 ~dst:2 "stop";
  (* FSM001: state 3 is wired in but unreachable. *)
  Fsm.add_transition fsm_a ~src:3 ~dst:1 "go";
  let fsm_b = Fsm.create ~n_states:3 ~initial:0 in
  Fsm.add_transition fsm_b ~src:0 ~dst:1 "ping";
  (* A shortcutable diamond for the loss-radius pass: "w" is reachable from
     0 only through the lost branch "u" or "v", so one drop already leaves
     two completions (LOSS001, k=1); "z" from 0 needs the full two-hop
     burst (LOSS002, k=2); "z" from 1 or 2 has a unique completion at any
     loss (infinite radius, summary only). *)
  let fsm_c = Fsm.create ~n_states:5 ~initial:0 in
  Fsm.add_transition fsm_c ~src:0 ~dst:1 "u";
  Fsm.add_transition fsm_c ~src:0 ~dst:2 "v";
  Fsm.add_transition fsm_c ~src:1 ~dst:3 "w";
  Fsm.add_transition fsm_c ~src:2 ~dst:3 "w";
  Fsm.add_transition fsm_c ~src:3 ~dst:4 "z";
  (* INT001 lives on fsm_a too: from 0, "go" has two reachable targets, but
     the normal edge masks it; "stop" from 3... state 3 is unreachable so the
     audit skips it. The ambiguity below is the real one: *)
  let state_name s = "s" ^ string_of_int s in
  {
    Model.name = "broken-demo";
    label_name = Fun.id;
    roles =
      [
        {
          Model.role = "a";
          fsm = fsm_a;
          state_name;
          entry_states = [ 1 ];
          (* CLS001: state 2 is frontier-reachable but unclassified. *)
          frontier_cause = (fun s -> if s = 1 then Some "stalled" else None);
        };
        {
          Model.role = "b";
          fsm = fsm_b;
          state_name;
          entry_states = [ 0 ];
          frontier_cause = (fun s -> Some (state_name s));
        };
        {
          Model.role = "c";
          fsm = fsm_c;
          state_name;
          entry_states = [ 0 ];
          frontier_cause = (fun s -> Some (state_name s));
        };
      ];
    prerequisites =
      (fun ~role label ->
        (* PRE001: b can never reach state 2. *)
        if role = "a" && label = "go" then [ ("b", 2) ] else []);
  }

(* -- Registry -------------------------------------------------------------- *)

let default_names = [ "ctp"; "dissem" ]

let names = default_names @ [ "broken-demo" ]

let run_model = function
  | "ctp" -> Some (Check.run ctp)
  | "dissem" -> Some (Check.run dissem)
  | "broken-demo" -> Some (Check.run broken)
  | _ -> None

let dots_of_model (m : _ Model.t) =
  List.concat_map
    (fun (r : _ Model.role) ->
      let base =
        ( Printf.sprintf "%s-%s.dot" m.Model.name r.Model.role,
          Fsm.to_dot
            ~name:(Printf.sprintf "%s_%s" m.Model.name r.Model.role)
            ~intra:true ~label_name:m.Model.label_name
            ~state_name:r.Model.state_name r.Model.fsm )
      in
      (* The product automaton is only worth a file when the role actually
         has confusable pairs to highlight. *)
      if Product.confusable_pairs r.Model.fsm = [] then [ base ]
      else
        [
          base;
          ( Printf.sprintf "%s-%s-product.dot" m.Model.name r.Model.role,
            Product.to_dot
              ~name:(Printf.sprintf "%s_%s_product" m.Model.name r.Model.role)
              ~label_name:m.Model.label_name ~state_name:r.Model.state_name
              r.Model.fsm );
        ])
    m.Model.roles

let dots = function
  | "ctp" -> dots_of_model ctp
  | "dissem" -> dots_of_model dissem
  | "broken-demo" -> dots_of_model broken
  | _ -> []

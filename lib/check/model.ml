type 'label role = {
  role : string;
  fsm : 'label Refill.Fsm.t;
  state_name : Refill.Fsm_state.t -> string;
  entry_states : Refill.Fsm_state.t list;
  frontier_cause : Refill.Fsm_state.t -> string option;
}

type 'label t = {
  name : string;
  label_name : 'label -> string;
  roles : 'label role list;
  prerequisites : role:string -> 'label -> (string * Refill.Fsm_state.t) list;
}

let find_role t name = List.find_opt (fun r -> r.role = name) t.roles

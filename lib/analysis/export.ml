let buffer_csv header rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (String.concat "," header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let points_csv points =
  buffer_csv
    [ "time"; "node"; "cause" ]
    (List.map
       (fun (p : Temporal.point) ->
         [
           Printf.sprintf "%.3f" p.time;
           string_of_int p.node;
           Logsys.Cause.name p.cause;
         ])
       points)

let fig4_csv pipeline = points_csv (Temporal.source_view pipeline)

let fig5_csv pipeline = points_csv (Temporal.position_view pipeline)

let fig6_csv pipeline =
  let rows = Composition.per_day pipeline in
  let cause_cols = List.map Logsys.Cause.name Composition.tracked_causes in
  buffer_csv
    ([ "day"; "total" ] @ cause_cols)
    (List.map
       (fun (r : Composition.day_row) ->
         string_of_int r.day
         :: string_of_int r.total_losses
         :: List.map (fun (_, s) -> Printf.sprintf "%.4f" s) r.shares)
       rows)

let fig8_csv pipeline =
  let losses = Spatial.received_losses pipeline in
  buffer_csv
    [ "node"; "x"; "y"; "received_losses" ]
    (List.map
       (fun (l : Spatial.node_losses) ->
         let x, y = l.position in
         [
           string_of_int l.node;
           Printf.sprintf "%.2f" x;
           Printf.sprintf "%.2f" y;
           string_of_int l.count;
         ])
       losses)

let fig9_csv pipeline =
  let measured = Breakdown.of_pipeline pipeline in
  let truth = Breakdown.of_truth pipeline.truth ~sink:pipeline.scenario.sink in
  let rows =
    List.map2
      (fun (name, p) ((_, t), (_, m)) ->
        [
          name;
          Printf.sprintf "%.1f" p;
          Printf.sprintf "%.1f" t;
          Printf.sprintf "%.1f" m;
        ])
      (Breakdown.rows Breakdown.paper)
      (List.combine (Breakdown.rows truth) (Breakdown.rows measured))
  in
  buffer_csv [ "cause"; "paper_pct"; "truth_pct"; "refill_pct" ] rows

let write_all pipeline ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name content =
    let path = Filename.concat dir name in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc content);
    Refill_obs.Log.debug "export: wrote %s (%d bytes)" path
      (String.length content);
    path
  in
  [
    write "fig4.csv" (fig4_csv pipeline);
    write "fig5.csv" (fig5_csv pipeline);
    write "fig6.csv" (fig6_csv pipeline);
    write "fig8.csv" (fig8_csv pipeline);
    write "fig9.csv" (fig9_csv pipeline);
  ]

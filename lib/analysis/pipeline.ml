module Obs = Refill_obs

type verdicts = ((int * int) * Refill.Classify.verdict) list

type t = {
  scenario : Scenario.Citysee.t;
  collected : Logsys.Collected.t;
  flows : Refill.Flow.t list;
  refill : verdicts;
  refill_index : (int * int, Refill.Classify.verdict) Hashtbl.t;
  truth : Logsys.Truth.t;
  delivered_db : ((int * int) * float) list;
  loss_times : ((int * int) * float) list;
}

let refine_with_server ~delivered_db verdicts =
  let db = Hashtbl.create 1024 in
  List.iter (fun (key, _) -> Hashtbl.replace db key ()) delivered_db;
  List.map
    (fun ((key, v) : (int * int) * Refill.Classify.verdict) ->
      let in_db = Hashtbl.mem db key in
      let delivered_predicted =
        Logsys.Cause.equal v.cause Logsys.Cause.Delivered
      in
      if in_db && not delivered_predicted then
        (* The server has the packet: whatever the lossy logs suggested, it
           arrived. *)
        ( key,
          {
            Refill.Classify.cause = Logsys.Cause.Delivered;
            loss_node = None;
            next_hop = None;
          } )
      else if delivered_predicted && not in_db then
        (* Sink pushed it to the backbone but the server never stored it:
           lost upstream of the WSN during an outage. *)
        ( key,
          {
            Refill.Classify.cause = Logsys.Cause.Server_outage_loss;
            loss_node = v.loss_node;
            next_hop = None;
          } )
      else (key, v))
    verdicts

let make ?(log_loss = Logsys.Loss_model.default) (scenario : Scenario.Citysee.t)
    =
  Obs.Span.with_ ~cat:"pipeline" ~name:"pipeline.make" @@ fun () ->
  let stage name f = Obs.Span.with_ ~cat:"pipeline" ~name f in
  let truth = Node.Network.truth scenario.network in
  let collected =
    stage "pipeline.lossify" (fun () ->
        Scenario.Citysee.collected_lossy scenario log_loss)
  in
  let flows =
    stage "pipeline.reconstruct" (fun () ->
        let acc = ref [] in
        Refill.Reconstruct.run collected ~sink:scenario.sink ~emit:(fun f ->
            acc := f :: !acc);
        List.rev !acc)
  in
  let delivered_db =
    Logsys.Truth.fold truth ~init:[] ~f:(fun acc key fate ->
        if Logsys.Cause.equal fate.cause Logsys.Cause.Delivered then
          (key, fate.resolved_at) :: acc
        else acc)
    |> List.sort compare
  in
  let raw_verdicts =
    stage "pipeline.classify" (fun () ->
        List.map
          (fun (f : Refill.Flow.t) ->
            ((f.origin, f.seq), Refill.Classify.classify f))
          flows)
  in
  let refill =
    stage "pipeline.refine_with_server" (fun () ->
        refine_with_server ~delivered_db raw_verdicts)
  in
  let expected =
    Logsys.Truth.fold truth ~init:[] ~f:(fun acc key _ -> key :: acc)
    |> List.sort compare
  in
  let lost =
    stage "pipeline.sink_view" (fun () ->
        Baseline.Sink_view.analyze
          ~delivered:(List.map (fun ((o, s), t) -> (o, s, t)) delivered_db)
          ~expected
          ~data_interval:scenario.params.data_interval)
  in
  let loss_times =
    List.map
      (fun (l : Baseline.Sink_view.lost_packet) ->
        ((l.origin, l.seq), l.estimated_time))
      lost
  in
  let refill_index = Hashtbl.create (List.length refill) in
  List.iter (fun (key, v) -> Hashtbl.replace refill_index key v) refill;
  {
    scenario;
    collected;
    flows;
    refill;
    refill_index;
    truth;
    delivered_db;
    loss_times;
  }

let verdict_of t key = Hashtbl.find_opt t.refill_index key

let refill_cause t ~origin ~seq =
  verdict_of t (origin, seq)
  |> Option.map (fun (v : Refill.Classify.verdict) -> v.cause)

let estimated_loss_time t ~origin ~seq =
  List.assoc_opt (origin, seq) t.loss_times

let lost_keys t = List.map fst t.loss_times

(** Per-packet delay and retransmission analytics (§II: with event flows,
    "packet related information, e.g. per-packet delay, packet
    retransmission, packet loss, can also be revealed").

    Delays come from ground truth (logs are unsynchronized, so wall-clock
    delay is a simulator-side measurement); hop counts and retransmission
    pressure are log/flow-derived. *)

val delivery_delays : Logsys.Truth.t -> float array
(** Generation-to-server delay of every delivered packet. *)

val delay_summary : Logsys.Truth.t -> Prelude.Stats.summary option
(** [None] when nothing was delivered. *)

val delay_by_hops : Logsys.Truth.t -> (int * Prelude.Stats.summary) list
(** Delay summaries grouped by true path length (hop count), ascending;
    groups need at least one delivered packet. *)

val hop_histogram_of_flows : Refill.Flow.t list -> (int * int) list
(** [(hops, packets)] from the reconstructed paths, ascending — the
    log-derived view of network depth. *)

val retransmission_factor : Node.Network.t -> float
(** Mean MAC attempts per exchange across the run (1.0 = every frame
    accepted first try). *)

(** Temporal distributions of packet losses (Figs. 4 and 5).

    Fig. 4 plots lost packets by *source node* over time (the sink's view:
    who lost packets, when) — it shows losses spread evenly across sources.
    Fig. 5 plots the same losses by *loss position* from REFILL's event
    flows — it shows losses concentrated on few nodes (dominated by the
    sink) and bursty timeout/duplicate clusters. *)

type point = {
  time : float;  (** Estimated loss time (sequence-gap method). *)
  node : int;
  cause : Logsys.Cause.t;
}

val source_view : Pipeline.t -> point list
(** One point per lost packet at its *origin* (Fig. 4); causes come from
    REFILL (the paper's markers). Packets without a cause verdict are
    [Unknown]. *)

val position_view : Pipeline.t -> point list
(** One point per lost packet at REFILL's *loss position* (Fig. 5); packets
    whose position is unknown are dropped. *)

val distinct_nodes : point list -> int
(** Number of distinct nodes carrying at least one point — the paper's
    contrast: sources ≈ all nodes, positions ≈ few nodes. *)

val node_concentration : point list -> top:int -> float
(** Share of points on the [top] most-affected nodes. *)

val by_cause : point list -> (Logsys.Cause.t * point list) list
(** Group points per cause, [Cause.all] order, empty causes omitted. *)

(** Cause composition over the study period (Fig. 6).

    Per-day shares of each loss cause among that day's lost packets.  The
    paper's storyline: acked and received losses dominate (the sink's
    serial link) until the day-23 fix; days 9–10 spike from snow; server
    outages appear as their own band. *)

val tracked_causes : Logsys.Cause.t list
(** The causes a day's shares are reported over: every loss cause plus
    [Unknown], in display order. *)

type day_row = {
  day : int;
  total_losses : int;
  shares : (Logsys.Cause.t * float) list;
      (** Per loss cause (plus [Unknown]), summing to 1 for nonempty days. *)
}

val per_day : Pipeline.t -> day_row list
(** One row per scenario day; losses are dated by their estimated loss
    time. *)

val losses_per_day : Pipeline.t -> int array
(** Daily loss counts (for the snow-spike and post-fix-drop checks). *)

val share : day_row -> Logsys.Cause.t -> float

let cause_marker : Logsys.Cause.t -> char = function
  | Delivered -> '.'
  | Timeout_loss -> 't'
  | Duplicate_loss -> 'd'
  | Overflow_loss -> 'o'
  | Received_loss -> 'r'
  | Acked_loss -> 'a'
  | Server_outage_loss -> 's'
  | Unknown -> '?'

(* -- Table II ------------------------------------------------------------ *)

let table2_record node kind : Logsys.Record.t =
  { node; kind; origin = 1; pkt_seq = 0; true_time = 0.; gseq = 0 }

let table2_cases : (string * Logsys.Record.t list) list =
  let r = table2_record in
  [
    ( "case 1 (node 2's log lost)",
      [ r 1 (Trans { to_ = 2 }); r 3 (Recv { from = 2 }) ] );
    ( "case 2 (only node 1's log)",
      [ r 1 (Trans { to_ = 2 }); r 1 (Ack_recvd { to_ = 2 }) ] );
    ( "case 3 (ack precedes trans)",
      [ r 1 (Ack_recvd { to_ = 2 }); r 1 (Trans { to_ = 2 }) ] );
    ( "case 4 (complete logs, routing loop)",
      [
        r 1 (Trans { to_ = 2 });
        r 1 (Ack_recvd { to_ = 2 });
        r 1 (Recv { from = 3 });
        r 1 (Trans { to_ = 2 });
        r 1 (Ack_recvd { to_ = 2 });
        r 2 (Recv { from = 1 });
        r 2 (Trans { to_ = 3 });
        r 2 (Ack_recvd { to_ = 3 });
        r 2 (Trans { to_ = 3 });
        r 3 (Recv { from = 2 });
        r 3 (Trans { to_ = 1 });
        r 3 (Ack_recvd { to_ = 1 });
      ] );
  ]

let run_table2_case records =
  let config = Refill.Protocol.make_config ~records ~origin:1 ~seq:0 ~sink:99 in
  let events = Refill.Protocol.events_of_records records in
  let acc = ref [] in
  let stats =
    Refill.Engine.process config
      (Refill.Engine.Events (Array.of_list events))
      ~emit:(fun it -> acc := it :: !acc)
  in
  { Refill.Flow.origin = 1; seq = 0; items = List.rev !acc; stats; prov = [||] }

let table2 () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "== Table II / §IV.C: reconstructed event flows ==\n";
  List.iter
    (fun (name, records) ->
      let flow = run_table2_case records in
      let v = Refill.Classify.classify flow in
      Buffer.add_string buf (Printf.sprintf "%s\n" name);
      Buffer.add_string buf
        (Printf.sprintf "  input : %s\n"
           (String.concat ", " (List.map Logsys.Record.to_string records)));
      Buffer.add_string buf
        (Printf.sprintf "  flow  : %s\n" (Refill.Flow.to_string flow));
      Buffer.add_string buf
        (Printf.sprintf "  verdict: %s%s\n" (Logsys.Cause.name v.cause)
           (match v.loss_node with
           | Some n -> Printf.sprintf " at node %d" n
           | None -> "")))
    table2_cases;
  Buffer.contents buf

(* -- Scatter figures ------------------------------------------------------ *)

let scatter_of_points ~title points =
  let series =
    Temporal.by_cause points
    |> List.map (fun (cause, pts) ->
           {
             Prelude.Ascii_chart.label = Logsys.Cause.name cause;
             marker = cause_marker cause;
             points =
               List.map
                 (fun (p : Temporal.point) -> (p.time, float_of_int p.node))
                 pts;
           })
  in
  Prelude.Ascii_chart.scatter ~title ~x_label:"time (s)" ~y_label:"node id"
    series

let fig4 pipeline =
  let points = Temporal.source_view pipeline in
  let chart = scatter_of_points ~title:"Fig. 4: sink view of lost packets (time x SOURCE node)" points in
  Printf.sprintf "%slost packets: %d  distinct source nodes: %d\n" chart
    (List.length points)
    (Temporal.distinct_nodes points)

let fig5 pipeline =
  let src = Temporal.source_view pipeline in
  let pos = Temporal.position_view pipeline in
  let chart =
    scatter_of_points ~title:"Fig. 5: REFILL view of lost packets (time x LOSS POSITION)" pos
  in
  Printf.sprintf
    "%slost packets: %d  distinct loss positions: %d (vs %d distinct \
     sources)\n\
     top-3 position concentration: %.0f%% of losses (sources: %.0f%%)\n"
    chart (List.length pos)
    (Temporal.distinct_nodes pos)
    (Temporal.distinct_nodes src)
    (100. *. Temporal.node_concentration pos ~top:3)
    (100. *. Temporal.node_concentration src ~top:3)

(* -- Fig. 6 ---------------------------------------------------------------- *)

let fig6 pipeline =
  let rows = Composition.per_day pipeline in
  let series_labels =
    List.map Logsys.Cause.name Composition.tracked_causes
  in
  let bars =
    List.map
      (fun (r : Composition.day_row) ->
        ( Printf.sprintf "day %02d (%4d)" r.day r.total_losses,
          List.map snd r.shares ))
      rows
  in
  let chart =
    Prelude.Ascii_chart.stacked_bars
      ~title:"Fig. 6: loss-cause composition per day (bar label = day, loss count)"
      ~series_labels bars
  in
  let counts =
    Array.map float_of_int (Composition.losses_per_day pipeline)
  in
  Printf.sprintf "%sdaily losses: %s\n" chart
    (Prelude.Ascii_chart.sparkline counts)

(* -- Fig. 8 ---------------------------------------------------------------- *)

let magnitude_glyph count max_count =
  if count = 0 then '.'
  else begin
    let glyphs = [| 'o'; 'O'; '@'; '#' |] in
    let idx =
      if max_count <= 1 then 0
      else
        int_of_float
          (float_of_int (Array.length glyphs - 1)
          *. log (float_of_int (count + 1))
          /. log (float_of_int (max_count + 1)))
    in
    glyphs.(max 0 (min (Array.length glyphs - 1) idx))
  end

let fig8 (pipeline : Pipeline.t) =
  let losses = Spatial.received_losses pipeline in
  let sink = pipeline.scenario.sink in
  let max_count =
    List.fold_left (fun acc (l : Spatial.node_losses) -> max acc l.count) 0
      losses
  in
  let width = 56 and height = 22 in
  let xs = List.map (fun (l : Spatial.node_losses) -> fst l.position) losses in
  let ys = List.map (fun (l : Spatial.node_losses) -> snd l.position) losses in
  let x_lo = List.fold_left min infinity xs
  and x_hi = List.fold_left max neg_infinity xs in
  let y_lo = List.fold_left min infinity ys
  and y_hi = List.fold_left max neg_infinity ys in
  let canvas = Array.make_matrix height width ' ' in
  let place (l : Spatial.node_losses) glyph =
    let x, y = l.position in
    let cx =
      int_of_float
        ((x -. x_lo) /. (Float.max 1e-9 (x_hi -. x_lo)) *. float_of_int (width - 1))
    in
    let cy =
      int_of_float
        ((y -. y_lo) /. (Float.max 1e-9 (y_hi -. y_lo)) *. float_of_int (height - 1))
    in
    canvas.(height - 1 - cy).(cx) <- glyph
  in
  List.iter (fun l -> place l (magnitude_glyph l.count max_count)) losses;
  (match List.find_opt (fun (l : Spatial.node_losses) -> l.node = sink) losses with
  | Some l -> place l 'X'
  | None -> ());
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "== Fig. 8: spatial distribution of received losses (X = sink) ==\n";
  Buffer.add_string buf "glyphs: . none, o few, O some, @ many, # most\n";
  Array.iter
    (fun row ->
      Buffer.add_char buf '|';
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_string buf "|\n")
    canvas;
  Buffer.add_string buf
    (Printf.sprintf "sink share of received losses: %.0f%%\n"
       (100. *. Spatial.sink_share losses ~sink));
  let top = Spatial.top_k losses ~k:5 in
  Buffer.add_string buf "top nodes: ";
  List.iter
    (fun (l : Spatial.node_losses) ->
      if l.count > 0 then
        Buffer.add_string buf (Printf.sprintf "n%d:%d " l.node l.count))
    top;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* -- Fig. 9 ---------------------------------------------------------------- *)

let fig9 (pipeline : Pipeline.t) =
  let measured = Breakdown.of_pipeline pipeline in
  let truth = Breakdown.of_truth pipeline.truth ~sink:pipeline.scenario.sink in
  let paper = Breakdown.paper in
  let header = [ "cause"; "paper %"; "truth %"; "REFILL %" ] in
  let rows =
    List.map2
      (fun (name, p) ((_, t), (_, m)) ->
        [
          name;
          Printf.sprintf "%.1f" p;
          Printf.sprintf "%.1f" t;
          Printf.sprintf "%.1f" m;
        ])
      (Breakdown.rows paper)
      (List.combine (Breakdown.rows truth) (Breakdown.rows measured))
  in
  Printf.sprintf
    "== Fig. 9 / §V.C: loss-cause breakdown (shares of lost packets) ==\n%s\
     total losses: truth=%d REFILL-analyzed=%d\n"
    (Prelude.Text_table.render ~header rows)
    truth.total_losses measured.total_losses

(** CSV export of every figure's underlying data, for external plotting.

    Each function returns the CSV text (header row included, RFC-4180
    simple form: no quoting is ever needed for these numeric tables). *)

val fig4_csv : Pipeline.t -> string
(** Columns: [time,node,cause] — one row per lost packet at its source. *)

val fig5_csv : Pipeline.t -> string
(** Columns: [time,node,cause] — one row per lost packet at its REFILL
    loss position. *)

val fig6_csv : Pipeline.t -> string
(** Columns: [day,total,<one column per tracked cause share>]. *)

val fig8_csv : Pipeline.t -> string
(** Columns: [node,x,y,received_losses]. *)

val fig9_csv : Pipeline.t -> string
(** Columns: [cause,paper_pct,truth_pct,refill_pct]. *)

val write_all : Pipeline.t -> dir:string -> string list
(** Write [fig4.csv .. fig9.csv] into [dir] (created if missing) and return
    the paths written. *)

type node_losses = { node : int; position : float * float; count : int }

let losses_by_position (pipeline : Pipeline.t) ~cause =
  let topo = Node.Network.topology pipeline.scenario.network in
  let n = Net.Topology.n_nodes topo in
  let counts = Array.make n 0 in
  List.iter
    (fun ((_, v) : (int * int) * Refill.Classify.verdict) ->
      let counted =
        match cause with
        | None -> Logsys.Cause.is_loss v.cause
        | Some c -> Logsys.Cause.equal v.cause c
      in
      match v.loss_node with
      | Some node when counted && node >= 0 && node < n ->
          counts.(node) <- counts.(node) + 1
      | Some _ | None -> ())
    pipeline.refill;
  List.init n (fun node ->
      { node; position = Net.Topology.position topo node; count = counts.(node) })

let received_losses pipeline =
  losses_by_position pipeline ~cause:(Some Logsys.Cause.Received_loss)

let sink_share losses ~sink =
  let total = List.fold_left (fun acc l -> acc + l.count) 0 losses in
  let at_sink =
    List.fold_left
      (fun acc l -> if l.node = sink then acc + l.count else acc)
      0 losses
  in
  Prelude.Stats.ratio at_sink total

let top_k losses ~k =
  List.sort (fun a b -> Int.compare b.count a.count) losses
  |> List.filteri (fun i _ -> i < k)

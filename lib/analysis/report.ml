type t = {
  packets : int;
  delivery_rate : float;
  retransmission_factor : float;
  delay : Prelude.Stats.summary option;
  distinct_sources : int;
  distinct_positions : int;
  top3_position_share : float;
  sink_received_share : float;
  breakdown : Breakdown.t;
  daily_losses : int array;
}

let build (pipeline : Pipeline.t) =
  let packets = Logsys.Truth.count pipeline.truth in
  let sources = Temporal.source_view pipeline in
  let positions = Temporal.position_view pipeline in
  let received = Spatial.received_losses pipeline in
  {
    packets;
    delivery_rate =
      Prelude.Stats.ratio (List.length pipeline.delivered_db) packets;
    retransmission_factor =
      Latency.retransmission_factor pipeline.scenario.network;
    delay = Latency.delay_summary pipeline.truth;
    distinct_sources = Temporal.distinct_nodes sources;
    distinct_positions = Temporal.distinct_nodes positions;
    top3_position_share = Temporal.node_concentration positions ~top:3;
    sink_received_share =
      Spatial.sink_share received ~sink:pipeline.scenario.sink;
    breakdown = Breakdown.of_pipeline pipeline;
    daily_losses = Composition.losses_per_day pipeline;
  }

let to_string t =
  let buf = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  p "== REFILL diagnosis report ==";
  p "packets %d, delivered to server %.1f%%, mean MAC attempts/exchange %.2f"
    t.packets (100. *. t.delivery_rate) t.retransmission_factor;
  (match t.delay with
  | Some d ->
      p "delivery delay: mean %.2fs, p50 %.2fs, p95 %.2fs, max %.2fs" d.mean
        d.p50 d.p95 d.max
  | None -> p "delivery delay: (nothing delivered)");
  p "losses originate at %d nodes but DIE at %d positions; top-3 positions \
     hold %.0f%% of losses"
    t.distinct_sources t.distinct_positions
    (100. *. t.top3_position_share);
  p "the sink holds %.0f%% of received losses"
    (100. *. t.sink_received_share);
  p "cause breakdown (of %d lost packets):" t.breakdown.total_losses;
  List.iter
    (fun (name, pct) ->
      if pct > 0.05 then p "  %-18s %5.1f%%" name pct)
    (Breakdown.rows t.breakdown);
  p "daily losses: %s"
    (Prelude.Ascii_chart.sparkline (Array.map float_of_int t.daily_losses));
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

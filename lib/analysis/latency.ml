let delivery_delays truth =
  Logsys.Truth.fold truth ~init:[] ~f:(fun acc _ (fate : Logsys.Truth.fate) ->
      if Logsys.Cause.equal fate.cause Logsys.Cause.Delivered then
        (fate.resolved_at -. fate.generated_at) :: acc
      else acc)
  |> Array.of_list

let delay_summary truth =
  match delivery_delays truth with
  | [||] -> None
  | delays -> Some (Prelude.Stats.summarize delays)

let delay_by_hops truth =
  let groups = Hashtbl.create 16 in
  Logsys.Truth.iter truth (fun _ (fate : Logsys.Truth.fate) ->
      if Logsys.Cause.equal fate.cause Logsys.Cause.Delivered then begin
        let hops = max 0 (List.length fate.path - 1) in
        let l = Option.value ~default:[] (Hashtbl.find_opt groups hops) in
        Hashtbl.replace groups hops
          ((fate.resolved_at -. fate.generated_at) :: l)
      end);
  Hashtbl.fold
    (fun hops delays acc ->
      (hops, Prelude.Stats.summarize (Array.of_list delays)) :: acc)
    groups []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let hop_histogram_of_flows flows =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (f : Refill.Flow.t) ->
      let hops = max 0 (List.length (Refill.Flow.nodes_visited f) - 1) in
      Hashtbl.replace counts hops
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts hops)))
    flows;
  Hashtbl.fold (fun hops c acc -> (hops, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let retransmission_factor network =
  let exchanges, attempts = Node.Network.exchange_stats network in
  if exchanges = 0 then 0.
  else float_of_int attempts /. float_of_int exchanges

(** The overall loss-cause breakdown (Fig. 9 / §V.C).

    Shares of each cause among all lost packets, with the received and
    acked buckets split into sink vs other nodes.  The paper reports:
    server outage 22.6 %, received 32.2 % (20.0 sink / 12.2 other),
    acked 38.6 % (38.0 sink / 0.6 other), duplicate 0.3 %, timeout 0.8 %,
    overflow 1.1 %. *)

type t = {
  total_losses : int;
  server_outage : float;
  received_total : float;
  received_sink : float;
  received_other : float;
  acked_total : float;
  acked_sink : float;
  acked_other : float;
  duplicate : float;
  timeout : float;
  overflow : float;
  unknown : float;
}

val of_pipeline : Pipeline.t -> t
(** Shares over the packets missing from the server DB, as fractions in
    [\[0,1\]]. *)

val of_truth : Logsys.Truth.t -> sink:int -> t
(** Ground-truth shares, for the paper-vs-measured comparison. *)

val paper : t
(** The published §V.C numbers ([total_losses = 0] — unknown). *)

val rows : t -> (string * float) list
(** Percentage rows in display order, values in [\[0,100\]]. *)

val pp : Format.formatter -> t -> unit

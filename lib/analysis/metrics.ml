type confusion = {
  labels : Logsys.Cause.t list;
  matrix : int array array;
  total : int;
  agree : int;
}

let cause_index =
  let tbl = Hashtbl.create 8 in
  List.iteri (fun i c -> Hashtbl.add tbl c i) Logsys.Cause.all;
  fun c -> Hashtbl.find tbl c

let confusion ~truth ~verdicts =
  let n = List.length Logsys.Cause.all in
  let matrix = Array.make_matrix n n 0 in
  let total = ref 0 and agree = ref 0 in
  List.iter
    (fun ((origin, seq), predicted) ->
      match Logsys.Truth.find truth ~origin ~seq with
      | None -> ()
      | Some fate ->
          incr total;
          if Logsys.Cause.equal fate.cause predicted then incr agree;
          let i = cause_index fate.cause and j = cause_index predicted in
          matrix.(i).(j) <- matrix.(i).(j) + 1)
    verdicts;
  { labels = Logsys.Cause.all; matrix; total = !total; agree = !agree }

let accuracy c = Prelude.Stats.ratio c.agree c.total

let per_cause c =
  List.mapi
    (fun i cause ->
      let support = Array.fold_left ( + ) 0 c.matrix.(i) in
      let predicted =
        List.fold_left (fun acc row -> acc + row.(i)) 0
          (Array.to_list c.matrix)
      in
      let tp = c.matrix.(i).(i) in
      (cause, Prelude.Stats.ratio tp predicted, Prelude.Stats.ratio tp support,
       support))
    c.labels
  |> List.filter (fun (cause, _, _, support) ->
         support > 0
         ||
         let j = cause_index cause in
         List.exists (fun row -> row.(j) > 0) (Array.to_list c.matrix))

let pp_confusion ppf c =
  let header =
    "truth\\pred" :: List.map Logsys.Cause.name c.labels
  in
  let rows =
    List.mapi
      (fun i cause ->
        Logsys.Cause.name cause
        :: Array.to_list (Array.map string_of_int c.matrix.(i)))
      c.labels
  in
  Format.fprintf ppf "%s" (Prelude.Text_table.render ~header rows)

let position_accuracy ~truth ~positions =
  let lost = ref 0 and correct = ref 0 in
  List.iter
    (fun ((origin, seq), predicted) ->
      match Logsys.Truth.find truth ~origin ~seq with
      | Some fate when Logsys.Cause.is_loss fate.cause ->
          incr lost;
          if predicted = fate.loss_node && predicted <> None then incr correct
      | Some _ | None -> ())
    positions;
  Prelude.Stats.ratio !correct !lost

type flow_quality = {
  event_recall : float;
  event_precision : float;
  order_agreement : float;
}

(* Match key: node, kind name, peer (None = wildcard). *)
let key_of_record (r : Logsys.Record.t) =
  (r.node, Logsys.Record.kind_name r.kind, Logsys.Record.peer r)

let matches (n1, k1, p1) (n2, k2, p2) =
  n1 = n2 && String.equal k1 k2
  && (match (p1, p2) with
     | Some a, Some b -> a = b || a = -1 || b = -1
     | _ -> true)

(* Greedy bipartite matching of reconstructed events to true events,
   preserving order on both sides (events are sequences, not sets). *)
let match_sequences recon_keys true_keys =
  let used = Array.make (List.length true_keys) false in
  let true_arr = Array.of_list true_keys in
  let pairs = ref [] in
  List.iteri
    (fun ri rk ->
      let found = ref false in
      Array.iteri
        (fun ti tk ->
          if (not !found) && (not used.(ti)) && matches rk tk then begin
            used.(ti) <- true;
            found := true;
            pairs := (ri, ti) :: !pairs
          end)
        true_arr;
      ignore ri)
    recon_keys;
  List.rev !pairs

type path_quality = { exact : float; prefix_similarity : float }

let path_quality ~truth ~flows =
  let exact = ref 0 and n = ref 0 and sims = ref [] in
  List.iter
    (fun (f : Refill.Flow.t) ->
      match Logsys.Truth.find truth ~origin:f.origin ~seq:f.seq with
      | None -> ()
      | Some fate ->
          incr n;
          let reconstructed = Refill.Flow.nodes_visited f in
          let rec common_prefix a b =
            match (a, b) with
            | x :: xs, y :: ys when x = y -> 1 + common_prefix xs ys
            | _ -> 0
          in
          let cp = common_prefix reconstructed fate.path in
          let len_r = List.length reconstructed
          and len_t = List.length fate.path in
          (* An extra reconstructed final hop proven only by the sender's
             ACK (the receiver logged nothing) extends the true path by
             one: still a faithful reconstruction. *)
          let is_exact =
            reconstructed = fate.path || (cp = len_t && len_r = len_t + 1)
          in
          if is_exact then incr exact;
          sims :=
            (if is_exact then 1.
             else Prelude.Stats.ratio cp (max len_r len_t))
            :: !sims)
    flows;
  {
    exact = Prelude.Stats.ratio !exact !n;
    prefix_similarity =
      (match !sims with
      | [] -> 0.
      | l -> Prelude.Stats.mean (Array.of_list l));
  }

let flow_quality ~ground_truth ~flows =
  (* Per-packet true record sequences (chronological). *)
  let truth_by_packet = Hashtbl.create 1024 in
  List.iter
    (fun (r : Logsys.Record.t) ->
      let key = Logsys.Record.packet_key r in
      let l = Option.value ~default:[] (Hashtbl.find_opt truth_by_packet key) in
      Hashtbl.replace truth_by_packet key (r :: l))
    (List.rev ground_truth);
  let recalls = ref [] and precisions = ref [] and orders = ref [] in
  List.iter
    (fun (f : Refill.Flow.t) ->
      match Hashtbl.find_opt truth_by_packet (f.origin, f.seq) with
      | None -> ()
      | Some true_records ->
          let true_keys = List.map key_of_record true_records in
          let recon_keys =
            List.filter_map
              (fun (i : Refill.Flow.item) ->
                Option.map key_of_record i.payload)
              f.items
          in
          let pairs = match_sequences recon_keys true_keys in
          let matched = List.length pairs in
          recalls :=
            Prelude.Stats.ratio matched (List.length true_keys) :: !recalls;
          precisions :=
            Prelude.Stats.ratio matched (List.length recon_keys)
            :: !precisions;
          if matched >= 2 then begin
            (* Pair order agreement: for matched events, does reconstructed
               order match true order? *)
            let arr = Array.of_list pairs in
            let total = ref 0 and good = ref 0 in
            Array.iteri
              (fun a (ra, ta) ->
                Array.iteri
                  (fun b (rb, tb) ->
                    if a < b then begin
                      incr total;
                      if compare (ra < rb) (ta < tb) = 0 then incr good
                    end)
                  arr)
              arr;
            orders := Prelude.Stats.ratio !good !total :: !orders
          end)
    flows;
  let avg l =
    match l with [] -> 0. | _ -> Prelude.Stats.mean (Array.of_list l)
  in
  {
    event_recall = avg !recalls;
    event_precision = avg !precisions;
    order_agreement = avg !orders;
  }

type t = {
  total_losses : int;
  server_outage : float;
  received_total : float;
  received_sink : float;
  received_other : float;
  acked_total : float;
  acked_sink : float;
  acked_other : float;
  duplicate : float;
  timeout : float;
  overflow : float;
  unknown : float;
}

type counts = {
  mutable n : int;
  mutable server : int;
  mutable recv_sink : int;
  mutable recv_other : int;
  mutable ack_sink : int;
  mutable ack_other : int;
  mutable dup : int;
  mutable tmo : int;
  mutable ovf : int;
  mutable unk : int;
}

let fresh () =
  {
    n = 0;
    server = 0;
    recv_sink = 0;
    recv_other = 0;
    ack_sink = 0;
    ack_other = 0;
    dup = 0;
    tmo = 0;
    ovf = 0;
    unk = 0;
  }

let tally c ~sink (cause : Logsys.Cause.t) (loss_node : int option) =
  c.n <- c.n + 1;
  let at_sink = loss_node = Some sink in
  match cause with
  | Server_outage_loss -> c.server <- c.server + 1
  | Received_loss ->
      if at_sink then c.recv_sink <- c.recv_sink + 1
      else c.recv_other <- c.recv_other + 1
  | Acked_loss ->
      if at_sink then c.ack_sink <- c.ack_sink + 1
      else c.ack_other <- c.ack_other + 1
  | Duplicate_loss -> c.dup <- c.dup + 1
  | Timeout_loss -> c.tmo <- c.tmo + 1
  | Overflow_loss -> c.ovf <- c.ovf + 1
  | Delivered | Unknown -> c.unk <- c.unk + 1

let finish c =
  let r x = Prelude.Stats.ratio x c.n in
  {
    total_losses = c.n;
    server_outage = r c.server;
    received_total = r (c.recv_sink + c.recv_other);
    received_sink = r c.recv_sink;
    received_other = r c.recv_other;
    acked_total = r (c.ack_sink + c.ack_other);
    acked_sink = r c.ack_sink;
    acked_other = r c.ack_other;
    duplicate = r c.dup;
    timeout = r c.tmo;
    overflow = r c.ovf;
    unknown = r c.unk;
  }

let of_pipeline (pipeline : Pipeline.t) =
  let sink = pipeline.scenario.sink in
  let c = fresh () in
  List.iter
    (fun (key, _) ->
      match Pipeline.verdict_of pipeline key with
      | Some (v : Refill.Classify.verdict) ->
          tally c ~sink v.cause v.loss_node
      | None -> tally c ~sink Logsys.Cause.Unknown None)
    pipeline.loss_times;
  finish c

let of_truth truth ~sink =
  let c = fresh () in
  Logsys.Truth.iter truth (fun _ fate ->
      if not (Logsys.Cause.equal fate.cause Logsys.Cause.Delivered) then
        tally c ~sink fate.cause fate.loss_node);
  finish c

let paper =
  {
    total_losses = 0;
    server_outage = 0.226;
    received_total = 0.322;
    received_sink = 0.200;
    received_other = 0.122;
    acked_total = 0.386;
    acked_sink = 0.380;
    acked_other = 0.006;
    duplicate = 0.003;
    timeout = 0.008;
    overflow = 0.011;
    unknown = 0.044;
  }

let rows t =
  [
    ("server-outage", 100. *. t.server_outage);
    ("received (total)", 100. *. t.received_total);
    ("received @sink", 100. *. t.received_sink);
    ("received @other", 100. *. t.received_other);
    ("acked (total)", 100. *. t.acked_total);
    ("acked @sink", 100. *. t.acked_sink);
    ("acked @other", 100. *. t.acked_other);
    ("duplicate", 100. *. t.duplicate);
    ("timeout", 100. *. t.timeout);
    ("overflow", 100. *. t.overflow);
    ("unknown", 100. *. t.unknown);
  ]

let pp ppf t =
  Format.fprintf ppf "losses=%d" t.total_losses;
  List.iter
    (fun (name, v) -> Format.fprintf ppf " %s=%.1f%%" name v)
    (rows t)

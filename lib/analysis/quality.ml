module Obs = Refill_obs
module P = Refill.Provenance

let c_flows =
  Obs.Metrics.Counter.v "refill_flow_quality_flows_total"
    ~help:"Flows folded into quality reports."

let c_complete =
  Obs.Metrics.Counter.v "refill_flow_quality_complete_total"
    ~help:"Quality-scored flows whose classifier reached a verdict."

let c_incomplete =
  Obs.Metrics.Counter.v "refill_flow_quality_incomplete_total"
    ~help:"Quality-scored flows with no classifier verdict."

let g_fraction_inferred =
  Obs.Metrics.Gauge.v "refill_flow_quality_fraction_inferred"
    ~help:"Inferred share of events in the last finished quality report."

type flow_score = {
  f_origin : int;
  f_seq : int;
  f_events : int;
  f_inferred : int;
  f_complete : bool;
  f_min_confidence : P.confidence;
}

type node_score = { n_node : int; n_events : int; n_inferred : int }

type link_score = { l_src : int; l_dst : int; l_events : int; l_inferred : int }

type t = {
  packets : int;
  events : int;
  inferred : int;
  complete : int;
  incomplete : int;
  mechanism_totals : (P.mechanism * int) list;
  confidence_totals : (P.confidence * int) list;
  flows : flow_score list;
  nodes : node_score list;
  links : link_score list;
}

let mechanisms =
  [ P.Logged; P.Intra_inference; P.Inter_inference; P.Stall_recovery;
    P.Anchor_carry ]

let confidences = [ P.Certain; P.High; P.Medium; P.Low ]

let mech_rank = function
  | P.Logged -> 0
  | P.Intra_inference -> 1
  | P.Inter_inference -> 2
  | P.Stall_recovery -> 3
  | P.Anchor_carry -> 4

let conf_rank = function
  | P.Certain -> 0
  | P.High -> 1
  | P.Medium -> 2
  | P.Low -> 3

let weaker a b = if conf_rank b > conf_rank a then b else a

type acc = {
  mutable a_packets : int;
  mutable a_events : int;
  mutable a_inferred : int;
  mutable a_complete : int;
  mech_counts : int array;  (* indexed by mech_rank *)
  conf_counts : int array;  (* indexed by conf_rank *)
  mutable flows_rev : flow_score list;
  node_tbl : (int, node_score) Hashtbl.t;
  link_tbl : (int * int, link_score) Hashtbl.t;
}

let create () =
  {
    a_packets = 0;
    a_events = 0;
    a_inferred = 0;
    a_complete = 0;
    mech_counts = Array.make (List.length mechanisms) 0;
    conf_counts = Array.make (List.length confidences) 0;
    flows_rev = [];
    node_tbl = Hashtbl.create 64;
    link_tbl = Hashtbl.create 64;
  }

(* Flows reconstructed without provenance still score: the [inferred] flag
   distinguishes logged from inferred, and an inferred event without a
   recorded mechanism is attributed to intra-inference (the engine's
   default local bridge). *)
let item_prov (it : Refill.Flow.item) =
  if it.inferred then P.make P.Intra_inference ~src:it.entered ~dst:it.entered ~evidence:[||]
  else P.make P.Logged ~src:it.entered ~dst:it.entered ~evidence:[||]

let add acc (f : Refill.Flow.t) =
  let n_prov = Array.length f.prov in
  let events = ref 0 and inferred = ref 0 in
  let min_conf = ref P.Certain in
  List.iteri
    (fun pos (it : Refill.Flow.item) ->
      let pv = if pos < n_prov then f.prov.(pos) else item_prov it in
      incr events;
      if it.inferred then incr inferred;
      acc.mech_counts.(mech_rank (P.mechanism pv)) <-
        acc.mech_counts.(mech_rank (P.mechanism pv)) + 1;
      acc.conf_counts.(conf_rank (P.confidence pv)) <-
        acc.conf_counts.(conf_rank (P.confidence pv)) + 1;
      min_conf := weaker !min_conf (P.confidence pv);
      (* Per-node scorecard. *)
      if it.node >= 0 then begin
        let ns =
          match Hashtbl.find_opt acc.node_tbl it.node with
          | Some ns -> ns
          | None -> { n_node = it.node; n_events = 0; n_inferred = 0 }
        in
        Hashtbl.replace acc.node_tbl it.node
          {
            ns with
            n_events = ns.n_events + 1;
            n_inferred = (ns.n_inferred + if it.inferred then 1 else 0);
          }
      end;
      (* Per-link gap evidence. *)
      match Option.bind it.payload Logsys.Record.link with
      | Some (src, dst) when src >= 0 && dst >= 0 && src <> dst ->
          let key = (src, dst) in
          let ls =
            match Hashtbl.find_opt acc.link_tbl key with
            | Some ls -> ls
            | None -> { l_src = src; l_dst = dst; l_events = 0; l_inferred = 0 }
          in
          Hashtbl.replace acc.link_tbl key
            {
              ls with
              l_events = ls.l_events + 1;
              l_inferred = (ls.l_inferred + if it.inferred then 1 else 0);
            }
      | Some _ | None -> ())
    f.items;
  let complete =
    (Refill.Classify.classify f).cause <> Logsys.Cause.Unknown
  in
  acc.a_packets <- acc.a_packets + 1;
  acc.a_events <- acc.a_events + !events;
  acc.a_inferred <- acc.a_inferred + !inferred;
  if complete then acc.a_complete <- acc.a_complete + 1;
  acc.flows_rev <-
    {
      f_origin = f.origin;
      f_seq = f.seq;
      f_events = !events;
      f_inferred = !inferred;
      f_complete = complete;
      f_min_confidence = !min_conf;
    }
    :: acc.flows_rev

let fraction_inferred t =
  if t.events = 0 then 0.
  else float_of_int t.inferred /. float_of_int t.events

let link_loss_rate (l : link_score) =
  if l.l_events = 0 then 0.
  else float_of_int l.l_inferred /. float_of_int l.l_events

let finish acc =
  let nodes =
    Hashtbl.fold (fun _ ns l -> ns :: l) acc.node_tbl []
    |> List.sort (fun a b -> Int.compare a.n_node b.n_node)
  in
  let links =
    Hashtbl.fold (fun _ ls l -> ls :: l) acc.link_tbl []
    |> List.sort (fun a b ->
           compare (a.l_src, a.l_dst) (b.l_src, b.l_dst))
  in
  let t =
    {
      packets = acc.a_packets;
      events = acc.a_events;
      inferred = acc.a_inferred;
      complete = acc.a_complete;
      incomplete = acc.a_packets - acc.a_complete;
      mechanism_totals =
        List.map (fun m -> (m, acc.mech_counts.(mech_rank m))) mechanisms;
      confidence_totals =
        List.map (fun c -> (c, acc.conf_counts.(conf_rank c))) confidences;
      flows = List.rev acc.flows_rev;
      nodes;
      links;
    }
  in
  Refill.Par.with_obs_lock (fun () ->
      Obs.Metrics.Counter.inc ~by:t.packets c_flows;
      Obs.Metrics.Counter.inc ~by:t.complete c_complete;
      Obs.Metrics.Counter.inc ~by:t.incomplete c_incomplete;
      Obs.Metrics.Gauge.set g_fraction_inferred (fraction_inferred t));
  t

let of_flows flows =
  let acc = create () in
  List.iter (add acc) flows;
  finish acc

let to_json t =
  let module J = Obs.Json in
  let num i = J.Num (float_of_int i) in
  J.Obj
    [
      ("schema", J.Str "refill-quality-v1");
      ("packets", num t.packets);
      ("events", num t.events);
      ("inferred", num t.inferred);
      ("fraction_inferred", J.Num (fraction_inferred t));
      ("complete", num t.complete);
      ("incomplete", num t.incomplete);
      ( "mechanisms",
        J.Obj
          (List.map
             (fun (m, n) -> (P.mechanism_name m, num n))
             t.mechanism_totals) );
      ( "confidences",
        J.Obj
          (List.map
             (fun (c, n) -> (P.confidence_name c, num n))
             t.confidence_totals) );
      ( "nodes",
        J.Arr
          (List.map
             (fun ns ->
               J.Obj
                 [
                   ("node", num ns.n_node);
                   ("events", num ns.n_events);
                   ("inferred", num ns.n_inferred);
                 ])
             t.nodes) );
      ( "links",
        J.Arr
          (List.map
             (fun ls ->
               J.Obj
                 [
                   ("src", num ls.l_src);
                   ("dst", num ls.l_dst);
                   ("events", num ls.l_events);
                   ("inferred", num ls.l_inferred);
                   ("loss_rate", J.Num (link_loss_rate ls));
                 ])
             t.links) );
      ( "flows",
        J.Arr
          (List.map
             (fun fs ->
               J.Obj
                 [
                   ("origin", num fs.f_origin);
                   ("seq", num fs.f_seq);
                   ("events", num fs.f_events);
                   ("inferred", num fs.f_inferred);
                   ("complete", J.Bool fs.f_complete);
                   ( "min_confidence",
                     J.Str (P.confidence_name fs.f_min_confidence) );
                 ])
             t.flows) );
    ]

let to_string t =
  let b = Buffer.create 1024 in
  let pct n d =
    if d = 0 then 0. else 100. *. float_of_int n /. float_of_int d
  in
  Printf.bprintf b "flow quality: %d packets, %d events (%.1f%% inferred)\n"
    t.packets t.events (pct t.inferred t.events);
  Printf.bprintf b "  complete %d / incomplete %d\n" t.complete t.incomplete;
  Printf.bprintf b "  mechanisms:";
  List.iter
    (fun (m, n) ->
      if n > 0 then Printf.bprintf b " %s=%d" (P.mechanism_name m) n)
    t.mechanism_totals;
  Buffer.add_char b '\n';
  Printf.bprintf b "  confidence:";
  List.iter
    (fun (c, n) ->
      if n > 0 then Printf.bprintf b " %s=%d" (P.confidence_name c) n)
    t.confidence_totals;
  Buffer.add_char b '\n';
  (* The handful of most-inferred nodes and lossiest links, the operator's
     "where should I look first" view. *)
  let top k cmp l = List.filteri (fun i _ -> i < k) (List.sort cmp l) in
  let worst_nodes =
    top 5
      (fun a b ->
        compare
          (pct b.n_inferred b.n_events, b.n_events)
          (pct a.n_inferred a.n_events, a.n_events))
      (List.filter (fun ns -> ns.n_inferred > 0) t.nodes)
  in
  if worst_nodes <> [] then begin
    Printf.bprintf b "  most-inferred nodes:";
    List.iter
      (fun ns ->
        Printf.bprintf b " n%d=%.0f%%(%d/%d)" ns.n_node
          (pct ns.n_inferred ns.n_events)
          ns.n_inferred ns.n_events)
      worst_nodes;
    Buffer.add_char b '\n'
  end;
  let worst_links =
    top 5
      (fun a b ->
        compare
          (link_loss_rate b, b.l_events)
          (link_loss_rate a, a.l_events))
      (List.filter (fun ls -> ls.l_inferred > 0) t.links)
  in
  if worst_links <> [] then begin
    Printf.bprintf b "  lossiest links:";
    List.iter
      (fun ls ->
        Printf.bprintf b " %d->%d=%.0f%%(%d/%d)" ls.l_src ls.l_dst
          (100. *. link_loss_rate ls)
          ls.l_inferred ls.l_events)
      worst_links;
    Buffer.add_char b '\n'
  end;
  Buffer.contents b

(** Flow-quality accounting: aggregate per-event provenance
    ({!Refill.Provenance}) into per-flow, per-node, and per-link
    scorecards.

    This is the operator-facing answer to "how much of the reconstruction
    is measurement and how much is inference, and where?".  Feed it flows
    from a provenance-enabled run ({!Refill.Config.t.provenance}); flows
    without a provenance side-car are still accepted — their events are
    attributed from the [inferred] flag alone (logged / intra-inference),
    which loses the inter/intra distinction but keeps the totals right.

    The accumulator API mirrors {!Refill.Reconstruct.summary_add} so
    streaming consumers can score flows as they are emitted without
    materializing them. *)

(** One flow's scorecard. *)
type flow_score = {
  f_origin : int;
  f_seq : int;
  f_events : int;
  f_inferred : int;
  f_complete : bool;
      (** The classifier reached a verdict ({!Refill.Classify}): the flow
          tells a complete story even if parts of it are inferred. *)
  f_min_confidence : Refill.Provenance.confidence;
      (** The flow's weakest event — the chain is only as trustworthy as
          its least-evidenced link.  [Certain] for all-logged flows. *)
}

(** One node's scorecard: how much of what we claim about this node was
    actually in its log. *)
type node_score = { n_node : int; n_events : int; n_inferred : int }

(** One directed link's gap evidence: every inferred link event is a
    record REFILL proved was lost, so [l_inferred / l_events] estimates
    the link's log-loss rate (§V's per-link view). *)
type link_score = { l_src : int; l_dst : int; l_events : int; l_inferred : int }

type t = {
  packets : int;
  events : int;
  inferred : int;
  complete : int;
  incomplete : int;
  mechanism_totals : (Refill.Provenance.mechanism * int) list;
      (** Events per mechanism, every mechanism listed (possibly 0). *)
  confidence_totals : (Refill.Provenance.confidence * int) list;
  flows : flow_score list;  (** Flow order of [add] calls. *)
  nodes : node_score list;  (** Ascending node id. *)
  links : link_score list;  (** Ascending (src, dst). *)
}

val fraction_inferred : t -> float
(** [inferred / events]; [0.] when empty. *)

val link_loss_rate : link_score -> float

type acc

val create : unit -> acc

val add : acc -> Refill.Flow.t -> unit

val finish : acc -> t
(** Also publishes the [refill_flow_quality_*] metrics (flows scored,
    complete/incomplete totals, fraction-inferred gauge).  The accumulator
    may keep being fed and finished again; metrics count each [finish]'s
    totals once per call. *)

val of_flows : Refill.Flow.t list -> t

val to_json : t -> Refill_obs.Json.t
(** Stable shape: [{schema: "refill-quality-v1", packets, events,
    inferred, fraction_inferred, complete, incomplete, mechanisms: {...},
    confidences: {...}, nodes: [...], links: [...], flows: [...]}]. *)

val to_string : t -> string
(** Multi-line operator summary (totals, mechanism mix, worst nodes and
    links). *)

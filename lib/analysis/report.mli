(** The full §V diagnosis narrative as one reusable report.

    Aggregates everything an operator would ask of REFILL's output: network
    health, the who-vs-where contrast (Figs. 4/5), the sink story (Fig. 8),
    the cause breakdown (Fig. 9), latency/retransmission profiles, and the
    per-day trend (Fig. 6).  Consumed by the CLI and the examples. *)

type t = {
  packets : int;
  delivery_rate : float;  (** Fraction of packets that reached the server. *)
  retransmission_factor : float;
  delay : Prelude.Stats.summary option;
  distinct_sources : int;
  distinct_positions : int;
  top3_position_share : float;
  sink_received_share : float;
  breakdown : Breakdown.t;
  daily_losses : int array;
}

val build : Pipeline.t -> t

val to_string : t -> string
(** Multi-line operator-facing report. *)

val pp : Format.formatter -> t -> unit

(** Spatial distribution of losses (Fig. 8).

    Per-node loss counts placed at node coordinates; the paper's Fig. 8
    shows received losses concentrated at the sink (the serial-link
    problem) with a scatter of small circles elsewhere. *)

type node_losses = {
  node : int;
  position : float * float;
  count : int;
}

val losses_by_position :
  Pipeline.t -> cause:Logsys.Cause.t option -> node_losses list
(** Count REFILL-diagnosed losses per loss-position node, filtered to one
    cause ([None] = all losses); nodes with zero losses are included so the
    deployment outline is visible. Sorted by node id. *)

val received_losses : Pipeline.t -> node_losses list
(** Fig. 8: [losses_by_position ~cause:(Some Received_loss)]. *)

val sink_share : node_losses list -> sink:int -> float
(** Share of counted losses sitting on the sink node. *)

val top_k : node_losses list -> k:int -> node_losses list
(** The [k] nodes with most losses, descending. *)

(** The standard experiment pipeline: simulate → collect (lossy) logs →
    reconstruct with REFILL → classify → refine with the server's database.

    The server-database refinement mirrors the paper's §V.C methodology:
    packets the sink delivered to the backbone but the server never stored
    are attributed to server outages (the operators knew the outage windows
    from the operations log). *)

type verdicts = ((int * int) * Refill.Classify.verdict) list

type t = {
  scenario : Scenario.Citysee.t;
  collected : Logsys.Collected.t;  (** What the analyzers see (post-loss). *)
  flows : Refill.Flow.t list;
  refill : verdicts;  (** Server-refined REFILL verdicts, sorted by key. *)
  refill_index : (int * int, Refill.Classify.verdict) Hashtbl.t;
      (** Same verdicts, keyed for O(1) lookup. *)
  truth : Logsys.Truth.t;
  delivered_db : ((int * int) * float) list;
      (** The server's database: packets that actually arrived, with
          arrival times. *)
  loss_times : ((int * int) * float) list;
      (** Estimated send times of packets missing from the server DB
          (the sink-view sequence-gap method, used as the time axis of
          Figs. 4–6). *)
}

val make : ?log_loss:Logsys.Loss_model.config -> Scenario.Citysee.t -> t
(** [log_loss] defaults to {!Logsys.Loss_model.default}. The scenario must
    already have been run. *)

val refine_with_server :
  delivered_db:((int * int) * float) list ->
  ((int * int) * Refill.Classify.verdict) list ->
  verdicts
(** Reconcile log-based verdicts with the server's database, as the paper's
    operators did: packets present in the DB are Delivered whatever the
    (lossy) logs suggested; predicted-Delivered packets missing from the DB
    are server-outage losses at the backbone. Exposed for testing. *)

val verdict_of : t -> int * int -> Refill.Classify.verdict option

val refill_cause : t -> origin:int -> seq:int -> Logsys.Cause.t option

val estimated_loss_time : t -> origin:int -> seq:int -> float option

val lost_keys : t -> (int * int) list
(** Packets missing from the server DB (the operator's loss list). *)

(** Text renderings of every table and figure in the paper's evaluation.

    Each function returns a complete multi-line string: the chart plus the
    quantitative rows the paper's figure conveys, so the bench harness can
    print paper-vs-measured side by side. *)

val cause_marker : Logsys.Cause.t -> char
(** Stable one-character marker per cause used across the scatter plots. *)

val table2 : unit -> string
(** Table II / §IV.C: the four 3-node cases, their inputs and REFILL's
    reconstructed flows with inferred events bracketed. *)

val fig4 : Pipeline.t -> string
(** Sink view of lost packets: estimated time × source node, marker =
    cause. *)

val fig5 : Pipeline.t -> string
(** REFILL view: estimated time × loss position, marker = cause; includes
    the concentration contrast with Fig. 4. *)

val fig6 : Pipeline.t -> string
(** Per-day cause composition as stacked bars plus the daily loss-count
    sparkline. *)

val fig8 : Pipeline.t -> string
(** Spatial distribution of received losses: deployment map with loss
    magnitude glyphs, sink marked [X]. *)

val fig9 : Pipeline.t -> string
(** Cause breakdown: measured (REFILL), ground truth, and the paper's
    published percentages side by side. *)

type point = { time : float; node : int; cause : Logsys.Cause.t }

let cause_of (pipeline : Pipeline.t) key =
  match Pipeline.verdict_of pipeline key with
  | Some (v : Refill.Classify.verdict) -> v.cause
  | None -> Logsys.Cause.Unknown

let source_view (pipeline : Pipeline.t) =
  List.map
    (fun (((origin, _seq) as key), time) ->
      { time; node = origin; cause = cause_of pipeline key })
    pipeline.loss_times

let position_view (pipeline : Pipeline.t) =
  List.filter_map
    (fun (key, time) ->
      match Pipeline.verdict_of pipeline key with
      | Some ({ loss_node = Some node; cause; _ } : Refill.Classify.verdict)
        ->
          Some { time; node; cause }
      | Some _ | None -> None)
    pipeline.loss_times

let distinct_nodes points =
  List.sort_uniq Int.compare (List.map (fun p -> p.node) points)
  |> List.length

let node_concentration points ~top =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun p ->
      Hashtbl.replace counts p.node
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts p.node)))
    points;
  let sorted =
    Hashtbl.fold (fun _ c acc -> c :: acc) counts []
    |> List.sort (fun a b -> Int.compare b a)
  in
  let rec take k = function
    | [] -> 0
    | _ when k = 0 -> 0
    | c :: rest -> c + take (k - 1) rest
  in
  Prelude.Stats.ratio (take top sorted) (List.length points)

let by_cause points =
  List.filter_map
    (fun cause ->
      match
        List.filter (fun p -> Logsys.Cause.equal p.cause cause) points
      with
      | [] -> None
      | l -> Some (cause, l))
    Logsys.Cause.all

type day_row = {
  day : int;
  total_losses : int;
  shares : (Logsys.Cause.t * float) list;
}

let tracked_causes = Logsys.Cause.loss_causes @ [ Logsys.Cause.Unknown ]

let per_day (pipeline : Pipeline.t) =
  let days = pipeline.scenario.params.days in
  let counts =
    Array.init days (fun _ -> Hashtbl.create 8)
  in
  let totals = Array.make days 0 in
  List.iter
    (fun (key, time) ->
      let day = Scenario.Citysee.day_of pipeline.scenario time in
      let cause =
        match Pipeline.verdict_of pipeline key with
        | Some (v : Refill.Classify.verdict) when v.cause <> Logsys.Cause.Delivered ->
            v.cause
        | Some _ | None -> Logsys.Cause.Unknown
      in
      totals.(day) <- totals.(day) + 1;
      let tbl = counts.(day) in
      Hashtbl.replace tbl cause
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl cause)))
    pipeline.loss_times;
  List.init days (fun day ->
      let total = totals.(day) in
      let shares =
        List.map
          (fun cause ->
            let c =
              Option.value ~default:0 (Hashtbl.find_opt counts.(day) cause)
            in
            (cause, Prelude.Stats.ratio c total))
          tracked_causes
      in
      { day; total_losses = total; shares })

let losses_per_day pipeline =
  let rows = per_day pipeline in
  Array.of_list (List.map (fun r -> r.total_losses) rows)

let share row cause =
  Option.value ~default:0. (List.assoc_opt cause row.shares)

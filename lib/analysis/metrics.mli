(** Reconstruction-quality metrics against simulator ground truth.

    The live CitySee deployment could only sanity-check REFILL's output;
    with the simulated substrate we can *score* it: per-packet cause
    agreement, loss-position agreement, and how much of the true event
    flow the reconstruction recovers. *)

type confusion = {
  labels : Logsys.Cause.t list;
  matrix : int array array;  (** [matrix.(truth).(predicted)] counts. *)
  total : int;
  agree : int;
}

val confusion :
  truth:Logsys.Truth.t ->
  verdicts:((int * int) * Logsys.Cause.t) list ->
  confusion
(** Build the cause confusion matrix over packets present in both inputs. *)

val accuracy : confusion -> float

val per_cause : confusion -> (Logsys.Cause.t * float * float * int) list
(** [(cause, precision, recall, support)] per cause with nonzero support or
    predictions. *)

val pp_confusion : Format.formatter -> confusion -> unit

val position_accuracy :
  truth:Logsys.Truth.t ->
  positions:((int * int) * int option) list ->
  float
(** Fraction of *lost* packets (per ground truth) whose predicted loss node
    matches the true loss node; predictions of [None] count as wrong. *)

type flow_quality = {
  event_recall : float;
      (** Share of true events recovered (logged or inferred), averaged
          over packets. *)
  event_precision : float;
      (** Share of reconstructed events that really happened. *)
  order_agreement : float;
      (** Share of same-packet event pairs whose relative order matches
          ground truth, averaged over packets with ≥ 2 matched events. *)
}

val flow_quality :
  ground_truth:Logsys.Record.t list -> flows:Refill.Flow.t list -> flow_quality
(** Events are matched per packet by (node, kind-name, peer) with
    multiplicity; an inferred event with an unknown peer matches any peer. *)

type path_quality = {
  exact : float;
      (** Share of packets whose reconstructed hop path equals the true
          path exactly (an inferred final hop beyond the true path — the
          acked-loss case, where only the sender's ACK proves the hop — is
          also counted as exact). *)
  prefix_similarity : float;
      (** Mean over packets of |longest common prefix| / |longer path|. *)
}

val path_quality :
  truth:Logsys.Truth.t -> flows:Refill.Flow.t list -> path_quality
(** Score {!Refill.Flow.nodes_visited} against the ground-truth hop paths
    (packets without a truth entry are skipped). *)

(** Time-domain correlation-based cause inference (§V.D.2).

    The class of prior work the paper critiques: correlate each packet loss
    with the network events observed in the same time window and attribute
    the loss to the dominant event type of the window.  We even hand this
    baseline synchronized timestamps (which real deployments lack); it
    still fails in exactly the ways the paper predicts — coexisting causes
    in one window are indistinguishable, and rare-but-important causes are
    drowned out by frequent ones. *)

type window_profile = {
  window : int;  (** Window index = floor(time / window_size). *)
  timeouts : int;
  duplicates : int;
  overflows : int;
}

val profile_windows :
  records:Logsys.Record.t list -> window_size:float -> window_profile list
(** Count symptom events per window from the surviving records (using the
    ground-truth timestamps, a favourable concession). *)

val classify :
  profiles:window_profile list ->
  window_size:float ->
  loss_time:float ->
  Logsys.Cause.t
(** Attribute a loss at [loss_time] to the dominant symptom of its window:
    more timeout events than anything else → timeout loss, etc.; a window
    with no symptoms → received loss (the catch-all "it vanished inside the
    network"). *)

val classify_all :
  records:Logsys.Record.t list ->
  window_size:float ->
  losses:((int * int) * float) list ->
  ((int * int) * Logsys.Cause.t) list
(** Verdict per lost packet given its (estimated) loss time. *)

(** The straightforward per-node protocol-semantics analyzer of §III.

    "If a node records a trans event and does not have an ack event for a
    packet, this packet is considered lost on that node" — no event
    correlation, no tolerance of lost log records, each node read in
    isolation.  The paper uses this as the strawman REFILL improves on: it
    misdiagnoses ACK-lost retransmissions, cannot see losses inside nodes,
    and collapses whenever a record is missing. *)

type verdict = {
  cause : Logsys.Cause.t;
  loss_node : int option;
}

val classify :
  Logsys.Collected.t -> origin:int -> seq:int -> sink:int -> verdict
(** Walk the packet hop by hop from its origin using only per-node logs:
    a [deliver] at the sink → delivered; a logged [dup]/[overflow] → that
    cause; [trans] without [ack] → timeout loss at the sender; a node
    holding the packet with no [trans] → received loss there; any gap in
    the chain → unknown. *)

val classify_all :
  Logsys.Collected.t -> sink:int -> ((int * int) * verdict) list
(** Verdict per packet key found in the logs, sorted by key. *)

type merge_result = {
  chain : (int * int) list;
  complete : bool;
  broken_at : int option;
}

let records_at collected ~origin ~seq node =
  if node < 0 || node >= Logsys.Collected.n_nodes collected then []
  else
    Logsys.Collected.node_log collected node
    |> Array.to_list
    |> List.filter (fun (r : Logsys.Record.t) ->
           Logsys.Record.packet_key r = (origin, seq))

let merge collected ~origin ~seq ~sink =
  let records_at = records_at collected ~origin ~seq in
  let rec walk node chain ~hops =
    if hops > Logsys.Collected.n_nodes collected + 4 then
      { chain = List.rev chain; complete = false; broken_at = Some node }
    else begin
      let records = records_at node in
      let terminal =
        List.exists
          (fun (r : Logsys.Record.t) ->
            match r.kind with
            | Deliver -> node = sink
            | Dup _ | Overflow _ | Retx_timeout _ -> true
            | Gen | Recv _ | Trans _ | Ack_recvd _ -> false)
          records
      in
      if terminal then
        { chain = List.rev chain; complete = true; broken_at = None }
      else begin
        (* A joinable hop needs the sender's trans AND the receiver's recv
           for the same packet: that pair is the "common event". *)
        let next =
          List.find_map
            (fun (r : Logsys.Record.t) ->
              match r.kind with
              | Trans { to_ } ->
                  let receiver_saw =
                    List.exists
                      (fun (r' : Logsys.Record.t) ->
                        match r'.kind with
                        | Recv { from } -> from = node
                        | _ -> false)
                      (records_at to_)
                  in
                  if receiver_saw && not (List.mem (node, to_) chain) then
                    Some to_
                  else None
              | _ -> None)
            records
        in
        match next with
        | Some to_ -> walk to_ ((node, to_) :: chain) ~hops:(hops + 1)
        | None ->
            { chain = List.rev chain; complete = false; broken_at = Some node }
      end
    end
  in
  walk origin [] ~hops:0

let merge_all collected ~sink =
  Logsys.Collected.packet_keys collected
  |> List.map (fun (origin, seq) ->
         ((origin, seq), merge collected ~origin ~seq ~sink))

let mergeable_fraction results =
  let complete =
    List.length (List.filter (fun (_, r) -> r.complete) results)
  in
  Prelude.Stats.ratio complete (List.length results)

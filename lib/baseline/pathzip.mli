(** PathZip-style packet path recovery (Li et al., MASS 2012 — §VI).

    PathZip has each data packet carry a small hash of the nodes it
    traversed; the base station, knowing every node's neighbor set in
    advance, searches the neighbor graph hop by hop for a path whose hash
    matches.  Contrast with REFILL: PathZip needs per-packet header space
    and a priori topology, works only for packets that *arrive*, and pays
    a combinatorial search — REFILL recovers paths (including of lost
    packets) from logs alone.  This implementation reproduces the method
    faithfully enough to compare those trade-offs. *)

val hash_path : int list -> int
(** The order-sensitive path hash a packet would accumulate hop by hop
    (63-bit, deterministic). *)

type recovery = {
  path : int list option;  (** The matching path, origin first. *)
  expanded : int;  (** Search states expanded. *)
}

val recover :
  Net.Topology.t ->
  origin:int ->
  sink:int ->
  hash:int ->
  max_hops:int ->
  budget:int ->
  recovery
(** Depth-first search over simple neighbor paths from [origin] to [sink]
    whose accumulated hash equals [hash]; gives up after [budget] expanded
    states. *)

type stats = {
  packets : int;  (** Delivered packets attempted. *)
  recovered : int;  (** Exact path found. *)
  gave_up : int;  (** Search budget exhausted. *)
  mean_expanded : float;
}

val recover_delivered :
  Net.Topology.t ->
  truth:Logsys.Truth.t ->
  sink:int ->
  max_hops:int ->
  budget:int ->
  stats
(** Run PathZip over every *delivered* packet in the ground truth (the
    only packets whose hash ever reaches the base station), scoring the
    recovered path against the true one. *)

(** The sink's-eye view of packet losses (Fig. 4's method).

    Before applying REFILL, the paper first looks at losses the only way
    the collected *data* allows: a packet is lost iff it never reached the
    base station, its origin is known from the sequence numbering, and its
    loss time is approximated from the arrival time of the preceding
    received packet plus the sequence gap (§V.B.1).  The method can say
    *whose* packets were lost and roughly *when* — but not where or why. *)

type lost_packet = {
  origin : int;
  seq : int;
  estimated_time : float;
      (** Approximated send time of the lost packet (the paper's
          sequence-gap interpolation). *)
}

val analyze :
  delivered:(int * int * float) list ->
  expected:(int * int) list ->
  data_interval:float ->
  lost_packet list
(** [analyze ~delivered ~expected ~data_interval] — [delivered] is the
    base station's record: [(origin, seq, arrival_time)] per received
    packet; [expected] lists every [(origin, seq)] the sources generated
    (known because generation is periodic).  A lost packet's time estimate
    is the arrival of the closest preceding delivered packet of the same
    origin plus [gap × data_interval]; with no preceding delivery the
    estimate counts forward from the first following one, or from 0. *)

val loss_count_by_origin : lost_packet list -> (int * int) list
(** [(origin, losses)] sorted by origin. *)

(* FNV-style order-sensitive fold, masked to 63 bits so it is identical on
   every platform. *)
let mask = (1 lsl 62) - 1

let step h node = (h * 1_099_511_628_211) lxor (node + 0x9E37) land mask

let hash_path path = List.fold_left step 0x811C9DC5 path

type recovery = { path : int list option; expanded : int }

let recover topo ~origin ~sink ~hash ~max_hops ~budget =
  let expanded = ref 0 in
  (* DFS over simple paths; [h] is the hash accumulated over the path so
     far (origin included). *)
  let exception Found of int list in
  let rec dfs node h depth visited acc =
    if !expanded >= budget then ()
    else begin
      incr expanded;
      if node = sink then begin
        if h = hash then raise (Found (List.rev acc))
      end
      else if depth < max_hops then
        List.iter
          (fun next ->
            if not (List.mem next visited) then
              dfs next (step h next) (depth + 1) (next :: visited)
                (next :: acc))
          (Net.Topology.neighbors topo node)
    end
  in
  match dfs origin (step 0x811C9DC5 origin) 0 [ origin ] [ origin ] with
  | () -> { path = None; expanded = !expanded }
  | exception Found path -> { path = Some path; expanded = !expanded }

type stats = {
  packets : int;
  recovered : int;
  gave_up : int;
  mean_expanded : float;
}

let recover_delivered topo ~truth ~sink ~max_hops ~budget =
  let packets = ref 0
  and recovered = ref 0
  and gave_up = ref 0
  and expanded_total = ref 0 in
  Logsys.Truth.iter truth (fun (origin, _) (fate : Logsys.Truth.fate) ->
      if Logsys.Cause.equal fate.cause Logsys.Cause.Delivered then begin
        incr packets;
        let r =
          recover topo ~origin ~sink ~hash:(hash_path fate.path) ~max_hops
            ~budget
        in
        expanded_total := !expanded_total + r.expanded;
        match r.path with
        | Some path when path = fate.path -> incr recovered
        | Some _ -> () (* hash collision: wrong path accepted *)
        | None -> if r.expanded >= budget then incr gave_up
      end);
  {
    packets = !packets;
    recovered = !recovered;
    gave_up = !gave_up;
    mean_expanded =
      Prelude.Stats.ratio !expanded_total (max 1 !packets);
  }

type window_profile = {
  window : int;
  timeouts : int;
  duplicates : int;
  overflows : int;
}

let profile_windows ~records ~window_size =
  let table = Hashtbl.create 64 in
  let bump window f =
    let p =
      Option.value
        ~default:{ window; timeouts = 0; duplicates = 0; overflows = 0 }
        (Hashtbl.find_opt table window)
    in
    Hashtbl.replace table window (f p)
  in
  List.iter
    (fun (r : Logsys.Record.t) ->
      let window = int_of_float (r.true_time /. window_size) in
      match r.kind with
      | Retx_timeout _ -> bump window (fun p -> { p with timeouts = p.timeouts + 1 })
      | Dup _ -> bump window (fun p -> { p with duplicates = p.duplicates + 1 })
      | Overflow _ -> bump window (fun p -> { p with overflows = p.overflows + 1 })
      | Gen | Recv _ | Trans _ | Ack_recvd _ | Deliver -> ())
    records;
  Hashtbl.fold (fun _ p acc -> p :: acc) table []
  |> List.sort (fun a b -> Int.compare a.window b.window)

let classify ~profiles ~window_size ~loss_time =
  let window = int_of_float (loss_time /. window_size) in
  match List.find_opt (fun p -> p.window = window) profiles with
  | None -> Logsys.Cause.Received_loss
  | Some p ->
      if p.timeouts = 0 && p.duplicates = 0 && p.overflows = 0 then
        Logsys.Cause.Received_loss
      else if p.timeouts >= p.duplicates && p.timeouts >= p.overflows then
        Logsys.Cause.Timeout_loss
      else if p.duplicates >= p.overflows then Logsys.Cause.Duplicate_loss
      else Logsys.Cause.Overflow_loss

let classify_all ~records ~window_size ~losses =
  let profiles = profile_windows ~records ~window_size in
  List.map
    (fun (key, loss_time) -> (key, classify ~profiles ~window_size ~loss_time))
    losses

type lost_packet = { origin : int; seq : int; estimated_time : float }

let analyze ~delivered ~expected ~data_interval =
  (* Per-origin sorted arrays of delivered (seq, time). *)
  let by_origin = Hashtbl.create 64 in
  List.iter
    (fun (origin, seq, time) ->
      let l = Option.value ~default:[] (Hashtbl.find_opt by_origin origin) in
      Hashtbl.replace by_origin origin ((seq, time) :: l))
    delivered;
  let sorted_of origin =
    Option.value ~default:[] (Hashtbl.find_opt by_origin origin)
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let sorted_cache = Hashtbl.create 64 in
  let deliveries origin =
    match Hashtbl.find_opt sorted_cache origin with
    | Some l -> l
    | None ->
        let l = sorted_of origin in
        Hashtbl.add sorted_cache origin l;
        l
  in
  let estimate origin seq =
    let dels = deliveries origin in
    let preceding =
      List.fold_left
        (fun best (s, t) -> if s < seq then Some (s, t) else best)
        None dels
    in
    match preceding with
    | Some (s, t) -> t +. (float_of_int (seq - s) *. data_interval)
    | None -> (
        let following =
          List.find_opt (fun (s, _) -> s > seq) dels
        in
        match following with
        | Some (s, t) -> t -. (float_of_int (s - seq) *. data_interval)
        | None -> float_of_int seq *. data_interval)
  in
  let delivered_set = Hashtbl.create 1024 in
  List.iter
    (fun (origin, seq, _) -> Hashtbl.replace delivered_set (origin, seq) ())
    delivered;
  expected
  |> List.filter (fun key -> not (Hashtbl.mem delivered_set key))
  |> List.map (fun (origin, seq) ->
         { origin; seq; estimated_time = estimate origin seq })

let loss_count_by_origin lost =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun l ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts l.origin) in
      Hashtbl.replace counts l.origin (c + 1))
    lost;
  Hashtbl.fold (fun origin c acc -> (origin, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(** Wit-style common-event log merging (Mahajan et al., SIGCOMM 2006).

    Wit combines sniffer logs through events *recorded at multiple
    observers*.  In individual-node logs the nearest analogue is a link
    operation observed from both ends: a sender's [trans]/[ack] paired with
    the receiver's [recv] for the same packet.  The merge walks these
    common observations hop by hop; the moment either side's record is
    missing there is no common event left to join on and the chain breaks —
    the paper's argument for why Wit's approach cannot handle individual
    lossy logs (§I, §VI). *)

type merge_result = {
  chain : (int * int) list;
      (** Joined hops [(sender, receiver)] from the origin onward. *)
  complete : bool;
      (** True iff the chain reaches a terminal record (sink [deliver] or a
          logged drop) with every hop joined on both sides. *)
  broken_at : int option;
      (** The node after which no common event could be found. *)
}

val merge :
  Logsys.Collected.t -> origin:int -> seq:int -> sink:int -> merge_result

val merge_all :
  Logsys.Collected.t -> sink:int -> ((int * int) * merge_result) list

val mergeable_fraction : ((int * int) * merge_result) list -> float
(** Share of packets whose chain is complete. *)

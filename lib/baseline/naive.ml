type verdict = { cause : Logsys.Cause.t; loss_node : int option }

let verdict cause loss_node = { cause; loss_node }

(* One node's records for the packet, in local log order. *)
let records_at collected ~origin ~seq node =
  if node < 0 || node >= Logsys.Collected.n_nodes collected then []
  else
    Logsys.Collected.node_log collected node
    |> Array.to_list
    |> List.filter (fun (r : Logsys.Record.t) ->
           Logsys.Record.packet_key r = (origin, seq))

let has_kind records p = List.exists (fun (r : Logsys.Record.t) -> p r.kind) records

let classify collected ~origin ~seq ~sink =
  let records_at = records_at collected ~origin ~seq in
  let rec walk node ~hops =
    (* Cycle/chain-length guard: real paths are short; a walk this long is
       garbage input. *)
    if hops > Logsys.Collected.n_nodes collected + 4 then
      verdict Logsys.Cause.Unknown None
    else begin
      let records = records_at node in
      if node = sink then
        if has_kind records (function Logsys.Record.Deliver -> true | _ -> false)
        then verdict Logsys.Cause.Delivered None
        else if
          has_kind records (function Logsys.Record.Recv _ -> true | _ -> false)
        then verdict Logsys.Cause.Received_loss (Some node)
        else
          (* ACKed into the sink but nothing logged there: the naive view
             assumes the transfer completed. *)
          verdict Logsys.Cause.Delivered None
      else if records = [] then verdict Logsys.Cause.Unknown None
      else if
        has_kind records (function Logsys.Record.Dup _ -> true | _ -> false)
      then verdict Logsys.Cause.Duplicate_loss (Some node)
      else if
        has_kind records (function Logsys.Record.Overflow _ -> true | _ -> false)
      then verdict Logsys.Cause.Overflow_loss (Some node)
      else begin
        (* §III rule: judge the node's own transmission by trans/ack counts,
           ignoring event ordering. *)
        let trans_to =
          List.filter_map
            (fun (r : Logsys.Record.t) ->
              match r.kind with Trans { to_ } -> Some to_ | _ -> None)
            records
        in
        let acked =
          has_kind records (function
            | Logsys.Record.Ack_recvd _ -> true
            | _ -> false)
        in
        match List.rev trans_to with
        | [] ->
            if
              has_kind records (function
                | Logsys.Record.Recv _ | Logsys.Record.Gen -> true
                | _ -> false)
            then verdict Logsys.Cause.Received_loss (Some node)
            else verdict Logsys.Cause.Unknown None
        | last_to :: _ ->
            if acked then walk last_to ~hops:(hops + 1)
            else verdict Logsys.Cause.Timeout_loss (Some node)
      end
    end
  in
  walk origin ~hops:0

let classify_all collected ~sink =
  Logsys.Collected.packet_keys collected
  |> List.map (fun (origin, seq) ->
         ((origin, seq), classify collected ~origin ~seq ~sink))

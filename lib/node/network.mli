(** The complete simulated collection network.

    Composes topology, link model, LPL MAC, CTP routing, node OS model,
    sink serial link and backbone server into one discrete-event simulation
    that (a) moves packets from sensor nodes to the server and (b) writes
    the same local event logs the CitySee nodes wrote, while recording
    ground-truth packet fates for evaluation.

    Per-hop pipeline at a receiver, in order (matching §IV/§V semantics):
    MAC DSN filtering of same-exchange retransmissions (silent) →
    pre-logging up-stack drop (silent: acked loss) → duplicate cache
    ([dup] logged: duplicate loss) → queue admission ([overflow] logged:
    overflow loss) → [recv] logged → post-logging up-stack drop (received
    loss) → forwarding.  The sink replaces up-stack/queue with the serial
    link; [deliver] is logged on a successful serial push and the server's
    outage schedule decides final delivery.

    {2 In-band log collection}

    When [log_transport] is configured, nodes also ship their event logs to
    the base station the way CitySee did (§V): records are spooled locally
    (bounded spool — old records fall off under pressure), periodically
    packed into sequenced log chunks, and forwarded over the very same CTP
    data path — sharing queues, duplicate caches, the MAC, the sink serial
    link.  Chunks generate no event records themselves (no meta-logging)
    and can be lost anywhere a data packet can; whatever reaches the base
    station is the *collected* log.  This makes log lossiness an emergent
    property of the network instead of a synthetic model. *)

type log_transport = {
  flush_interval : float;  (** Seconds between spool flushes per node. *)
  flush_jitter : float;
  chunk_records : int;  (** Records packed into one log chunk. *)
  spool_capacity : int;
      (** Spooled records per node; the oldest fall off when full. *)
}

val default_log_transport : log_transport
(** Flush every 30 s ± 10, 24 records per chunk, spool of 512. *)

type ack_mode =
  | Hardware
      (** CC2420 hardware ACK at the PHY (the deployment's mode): the
          sender's retransmission loop stops as soon as the radio accepted
          the frame — packets can then still die up-stack (acked losses,
          §V.D.5). *)
  | Software
      (** The §V.D.5 alternative: the ACK is sent only after the packet
          survived to the routing layer (or was recognized as a duplicate,
          or — at the sink — crossed the serial link).  In-node deaths now
          trigger retransmissions instead of silent losses, trading
          latency/energy for reliability. *)

type config = {
  seed : int64;
  ack_mode : ack_mode;
  mac : Net.Mac.config;
  queue_capacity : int;
  dup_cache_capacity : int;
  beacon_interval : float;
  beacon_jitter : float;
  data_interval : float;  (** Mean seconds between packets per source. *)
  data_jitter : float;
  upstack : Upstack.t;  (** In-node drop model for ordinary nodes. *)
  serial : Serial_link.t;  (** The sink's serial connection. *)
  server : Server.t;
  route_retry_interval : float;
      (** Delay before retrying a send when no route is known. *)
  log_transport : log_transport option;
      (** [None] (default) = logs are read out-of-band (use
          {!Logsys.Loss_model} for synthetic lossiness); [Some _] = ship
          logs in-band as described above. *)
  reboot_mtbf : float option;
      (** When [Some m], every non-sink node reboots at exponentially
          distributed intervals of mean [m] seconds.  A reboot loses all
          volatile state: queued packets die inside the node (ground-truth
          received losses), routing and duplicate caches reset, and the
          unshipped log spool is wiped (emergent log loss). *)
}

val default_config : config
(** Reasonable defaults: seed 42, hardware ACKs, default MAC, queue 12,
    dup cache 32, beacons every 30 s ± 5, data every 60 s ± 10, reliable
    up-stack, stable serial, always-up server, 15 s route retry, no in-band
    transport. *)

type t

val create : config -> Net.Topology.t -> sink:Net.Packet.node_id -> t
(** Build all per-node state. No events are scheduled yet.
    @raise Invalid_argument if [sink] is out of range. *)

val engine : t -> Sim.Engine.t

val link_model : t -> Net.Link_model.t
(** For installing weather functions and interference bursts before
    running. *)

val logger : t -> Logsys.Logger.t
(** The ground-truth log store: every record each node *wrote*, complete. *)

val truth : t -> Logsys.Truth.t

val sink : t -> Net.Packet.node_id

val server : t -> Server.t
(** The backbone server installed in the configuration. *)

val topology : t -> Net.Topology.t

val start : t -> warmup:float -> duration:float -> unit
(** Schedule beaconing immediately and data generation from [warmup]
    onwards, then run the simulation until [warmup +. duration] plus a
    drain margin; finally resolve still-in-flight packets as ground-truth
    [Unknown] so every generated packet has a fate. *)

val collected_in_band : t -> Logsys.Collected.t option
(** The logs that actually reached the base station over the in-band
    transport (chunks reassembled per node in sequence order); [None] when
    no transport is configured. *)

val in_band_stats : t -> (int * int * int) option
(** [(records_written, records_spool_dropped, records_collected)] for the
    in-band transport. *)

val parent_of : t -> Net.Packet.node_id -> Net.Packet.node_id option
(** Current CTP parent (diagnostics/tests). *)

val path_etx_of : t -> Net.Packet.node_id -> float

val routing_converged : t -> bool
(** Every non-sink node currently has a route. *)

val packets_generated : t -> int

val energy_of : t -> Net.Packet.node_id -> Net.Energy.t
(** Per-node radio accounting: frame/ACK costs per MAC attempt, beacon
    tx/rx, and the LPL channel-sampling baseline (charged when [start]
    finishes). *)

val energy_params : t -> Net.Energy.params

val reboots_of : t -> Net.Packet.node_id -> int
(** How many times a node rebooted during the run. *)

val exchange_stats : t -> int * int
(** [(exchanges, attempts)]: unicast MAC exchanges started and individual
    transmission attempts made — attempts/exchanges is the network's mean
    retransmission factor. *)

(** The sink's RS232 serial connection to the backbone mesh node.

    §V.B.1: the sink was wired to the mesh node over a long RS232 cable with
    the pins soldered directly to the chip; outdoors the signal was unstable
    and many packets died on this hop — the dominant received/acked losses
    of Figs. 5, 6, 8 — until the connection was replaced on day 23.

    The model: a time-varying drop probability, and a split of drops into
    pre-logging (the sink never wrote its [recv] record — an *acked loss*
    from the network's perspective) and post-logging (the [recv] record
    exists but no [deliver] — a *received loss* at the sink). *)

type outcome =
  | Pushed  (** Packet made it to the mesh node. *)
  | Dropped_before_log
      (** Died at interrupt level before the sink logged [recv]. *)
  | Dropped_after_log  (** [recv] logged, serial push failed. *)

type t

val create :
  drop_probability:(float -> float) -> prelog_fraction:float -> t
(** [drop_probability now] is the instantaneous serial drop rate;
    [prelog_fraction] is the share of drops happening before the logging
    statement.
    @raise Invalid_argument if [prelog_fraction] outside [\[0,1\]]. *)

val stable : t
(** Never drops (the post-day-23 replacement connection). *)

val unstable_until :
  fix_time:float -> bad_rate:float -> good_rate:float ->
  prelog_fraction:float -> t
(** Drop rate [bad_rate] before [fix_time], [good_rate] after — the paper's
    day-23 repair as a step function. *)

val sample : t -> Prelude.Rng.t -> now:float -> outcome

val drop_probability : t -> float -> float

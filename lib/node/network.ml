type log_transport = {
  flush_interval : float;
  flush_jitter : float;
  chunk_records : int;
  spool_capacity : int;
}

let default_log_transport =
  {
    flush_interval = 30.;
    flush_jitter = 10.;
    chunk_records = 24;
    spool_capacity = 512;
  }

type ack_mode = Hardware | Software

type config = {
  seed : int64;
  ack_mode : ack_mode;
  mac : Net.Mac.config;
  queue_capacity : int;
  dup_cache_capacity : int;
  beacon_interval : float;
  beacon_jitter : float;
  data_interval : float;
  data_jitter : float;
  upstack : Upstack.t;
  serial : Serial_link.t;
  server : Server.t;
  route_retry_interval : float;
  log_transport : log_transport option;
  reboot_mtbf : float option;
}

let default_config =
  {
    seed = 42L;
    ack_mode = Hardware;
    mac = Net.Mac.default_config;
    queue_capacity = 12;
    dup_cache_capacity = 32;
    beacon_interval = 30.;
    beacon_jitter = 5.;
    data_interval = 60.;
    data_jitter = 10.;
    upstack = Upstack.reliable;
    serial = Serial_link.stable;
    server = Server.always_up;
    route_retry_interval = 15.;
    log_transport = None;
    reboot_mtbf = None;
  }

(* What moves through the forwarding path: application data, or a sequenced
   batch of one node's log records (in-band collection). *)
type chunk = {
  chunk_src : Net.Packet.node_id;
  chunk_seq : int;
  chunk_records : Logsys.Record.t list;
}

type traffic = Data of Net.Packet.t | Chunk of chunk

type node_state = {
  id : Net.Packet.node_id;
  router : Ctp.Router.t;
  queue : traffic Ctp.Forward_queue.t;
  dup_cache : Ctp.Dup_cache.t;  (* data packets, keyed (origin, seq) *)
  chunk_dup_cache : Ctp.Dup_cache.t;  (* log chunks, keyed (src, chunk_seq) *)
  rng : Prelude.Rng.t;
  spool : Logsys.Record.t Queue.t;  (* records awaiting in-band shipping *)
  mutable spool_dropped : int;
  mutable next_chunk_seq : int;
  mutable busy : bool;  (* a MAC exchange is in progress *)
  mutable retry_pending : bool;  (* a no-route retry is scheduled *)
  mutable epoch : int;  (* bumped on reboot; stale callbacks abandon *)
  mutable in_flight : Net.Packet.t option;
      (* data packet of the running exchange, cleared once the receiver
         takes it or the exchange ends *)
  mutable reboots : int;
}

type packet_state = {
  packet : Net.Packet.t;
  mutable path_rev : Net.Packet.node_id list;
  mutable resolved : bool;
}

type t = {
  config : config;
  engine : Sim.Engine.t;
  link : Net.Link_model.t;
  topo : Net.Topology.t;
  logger : Logsys.Logger.t;
  truth : Logsys.Truth.t;
  sink_id : Net.Packet.node_id;
  nodes : node_state array;
  alloc : Net.Packet.allocator;
  packets : (int * int, packet_state) Hashtbl.t;
  (* Chunks that reached the base station: per source, chunk_seq -> records. *)
  arrived_chunks : (int, (int, Logsys.Record.t list) Hashtbl.t) Hashtbl.t;
  energy : Net.Energy.t array;
  energy_params : Net.Energy.params;
  mutable records_collected : int;
  mutable attempts_total : int;
  mutable exchanges_total : int;
  mutable gseq : int;
  mutable data_stop : float;  (* no packets generated at or after this time *)
}

let create config topo ~sink =
  let n = Net.Topology.n_nodes topo in
  if sink < 0 || sink >= n then invalid_arg "Network.create: sink out of range";
  let master = Prelude.Rng.create ~seed:config.seed in
  let link_seed = Prelude.Rng.int64 master in
  let nodes =
    Array.init n (fun id ->
        {
          id;
          router = Ctp.Router.create ~self:id ~is_sink:(id = sink) ();
          queue = Ctp.Forward_queue.create ~capacity:config.queue_capacity;
          dup_cache =
            Ctp.Dup_cache.create ~capacity:config.dup_cache_capacity;
          chunk_dup_cache =
            Ctp.Dup_cache.create ~capacity:config.dup_cache_capacity;
          rng = Prelude.Rng.split master;
          spool = Queue.create ();
          spool_dropped = 0;
          next_chunk_seq = 0;
          busy = false;
          retry_pending = false;
          epoch = 0;
          in_flight = None;
          reboots = 0;
        })
  in
  {
    config;
    engine = Sim.Engine.create ();
    link = Net.Link_model.create ~seed:link_seed ~topology:topo ();
    topo;
    logger = Logsys.Logger.create ~n_nodes:n;
    truth = Logsys.Truth.create ();
    sink_id = sink;
    nodes;
    alloc = Net.Packet.allocator ();
    packets = Hashtbl.create 4096;
    arrived_chunks = Hashtbl.create 64;
    energy = Array.init n (fun _ -> Net.Energy.create ());
    energy_params = Net.Energy.default_params;
    records_collected = 0;
    attempts_total = 0;
    exchanges_total = 0;
    gseq = 0;
    data_stop = infinity;
  }

let engine t = t.engine

let link_model t = t.link

let logger t = t.logger

let truth t = t.truth

let sink t = t.sink_id

let server t = t.config.server

let topology t = t.topo

let parent_of t id = Ctp.Router.parent t.nodes.(id).router

let path_etx_of t id = Ctp.Router.path_etx t.nodes.(id).router

let routing_converged t =
  Array.for_all (fun node -> Ctp.Router.has_route node.router) t.nodes

let packets_generated t = Net.Packet.count t.alloc

let energy_of t node = t.energy.(node)

let energy_params t = t.energy_params

let exchange_stats t = (t.exchanges_total, t.attempts_total)

(* Write a record: always into the ground-truth log store, and — when the
   in-band transport is on — into the node's bounded spool. *)
let log t node kind (pkt : Net.Packet.t) =
  let record : Logsys.Record.t =
    {
      node;
      kind;
      origin = pkt.origin;
      pkt_seq = pkt.seq;
      true_time = Sim.Engine.now t.engine;
      gseq = t.gseq;
    }
  in
  t.gseq <- t.gseq + 1;
  Logsys.Logger.log t.logger record;
  match t.config.log_transport with
  | None -> ()
  | Some transport ->
      let state = t.nodes.(node) in
      if Queue.length state.spool >= transport.spool_capacity then begin
        ignore (Queue.pop state.spool : Logsys.Record.t);
        state.spool_dropped <- state.spool_dropped + 1
      end;
      Queue.add record state.spool

let packet_state t (pkt : Net.Packet.t) =
  let key = (pkt.origin, pkt.seq) in
  match Hashtbl.find_opt t.packets key with
  | Some st -> st
  | None ->
      let st = { packet = pkt; path_rev = []; resolved = false } in
      Hashtbl.add t.packets key st;
      st

let resolve t (pkt : Net.Packet.t) cause ~loss_node =
  let st = packet_state t pkt in
  assert (not st.resolved);
  st.resolved <- true;
  Logsys.Truth.record t.truth ~origin:pkt.origin ~seq:pkt.seq
    {
      cause;
      loss_node;
      path = List.rev st.path_rev;
      generated_at = pkt.created_at;
      resolved_at = Sim.Engine.now t.engine;
    }

let collect_chunk t chunk =
  let per_src =
    match Hashtbl.find_opt t.arrived_chunks chunk.chunk_src with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 64 in
        Hashtbl.add t.arrived_chunks chunk.chunk_src h;
        h
  in
  if not (Hashtbl.mem per_src chunk.chunk_seq) then begin
    Hashtbl.add per_src chunk.chunk_seq chunk.chunk_records;
    t.records_collected <-
      t.records_collected + List.length chunk.chunk_records
  end

(* -- Forwarding: one MAC exchange at a time per node. ------------------- *)

let rec try_start_exchange t node =
  if (not node.busy) && not (Ctp.Forward_queue.is_empty node.queue) then begin
    match Ctp.Router.parent node.router with
    | None ->
        if not node.retry_pending then begin
          node.retry_pending <- true;
          ignore
            (Sim.Engine.schedule t.engine
               ~delay:t.config.route_retry_interval (fun _ ->
                 node.retry_pending <- false;
                 try_start_exchange t node)
              : Sim.Engine.handle)
        end
    | Some parent -> (
        match Ctp.Forward_queue.pop node.queue with
        | None -> ()
        | Some item ->
            node.busy <- true;
            (match item with
            | Data pkt ->
                node.in_flight <- Some pkt;
                log t node.id (Trans { to_ = parent }) pkt
            | Chunk _ -> ());
            run_exchange t node item parent ~attempt:0 ~receiver_done:false
              ~epoch:node.epoch)
  end

and run_exchange t node item parent ~attempt ~receiver_done ~epoch =
  if node.epoch <> epoch then ()  (* the node rebooted mid-exchange *)
  else begin
  let now = Sim.Engine.now t.engine in
  let outcome =
    Net.Mac.attempt t.config.mac t.link node.rng ~now ~src:node.id ~dst:parent
  in
  (* Radio accounting: the sender transmits the frame and listens for the
     ACK; on reception the receiver pays the frame and the ACK strobe. *)
  let ep = t.energy_params in
  t.attempts_total <- t.attempts_total + 1;
  if attempt = 0 then t.exchanges_total <- t.exchanges_total + 1;
  Net.Energy.charge_tx t.energy.(node.id) ep.frame_time;
  Net.Energy.charge_rx t.energy.(node.id) ep.ack_time;
  (match outcome with
  | Received_acked | Received_ack_lost ->
      Net.Energy.charge_rx t.energy.(parent) ep.frame_time;
      Net.Energy.charge_tx t.energy.(parent) ep.ack_time
  | Frame_lost -> ());
  (* [receiver_done] means the exchange no longer needs to deliver the
     frame up the receiver's stack: under hardware ACKs that is the first
     radio acceptance (later attempts are DSN-filtered); under software
     ACKs (§V.D.5) it requires the receiver to have *processed* the packet
     — failed processing leaves it false so retransmissions re-deliver. *)
  let receiver_done =
    match outcome with
    | (Received_acked | Received_ack_lost) when not receiver_done -> (
        let processed = accept_at_receiver t ~from:node.id ~receiver:parent item in
        match t.config.ack_mode with
        | Hardware -> true
        | Software -> processed)
    | Received_acked | Received_ack_lost | Frame_lost -> receiver_done
  in
  (* Once the receiver owns the packet, a reboot of the sender can no
     longer kill it. *)
  if receiver_done then node.in_flight <- None;
  (* Under software ACKs, an ACK frame only exists if the receiver
     actually acknowledged. *)
  let ack_heard =
    match (outcome, t.config.ack_mode) with
    | Net.Mac.Received_acked, Hardware -> true
    | Net.Mac.Received_acked, Software -> receiver_done
    | (Net.Mac.Received_ack_lost | Net.Mac.Frame_lost), _ -> false
  in
  if ack_heard then begin
    (match item with
    | Data pkt -> log t node.id (Ack_recvd { to_ = parent }) pkt
    | Chunk _ -> ());
    Ctp.Router.on_data_tx_outcome node.router ~to_:parent ~acked:true;
    node.busy <- false;
    node.in_flight <- None;
    try_start_exchange t node
  end
  else if attempt >= t.config.mac.max_retx then begin
    (match item with
    | Data pkt ->
        log t node.id (Retx_timeout { to_ = parent }) pkt;
        if not receiver_done then
          resolve t pkt Logsys.Cause.Timeout_loss ~loss_node:(Some node.id)
    | Chunk _ -> ());
    (* A whole exchange timing out is a much stronger signal than one
       missed beacon (CTP weighs data-plane failures heavily); the
       resulting ETX jump is what lets nodes reroute — and what creates
       the transient loops behind duplicate losses. *)
    for _ = 1 to 3 do
      Ctp.Router.on_data_tx_outcome node.router ~to_:parent ~acked:false
    done;
    node.busy <- false;
    node.in_flight <- None;
    try_start_exchange t node
  end
  else begin
    let delay = Net.Mac.attempt_delay t.config.mac node.rng in
    ignore
      (Sim.Engine.schedule t.engine ~delay (fun _ ->
           run_exchange t node item parent ~attempt:(attempt + 1)
             ~receiver_done ~epoch)
        : Sim.Engine.handle)
  end
  end

(* Deliver one frame up the receiver's stack. Returns whether the receiver
   fully took responsibility for it (enqueued / terminal-dropped / sink
   push) — the software-ACK gate. Under hardware ACKs in-node deaths
   resolve packet fates immediately; under software ACKs they do not (the
   sender will retransmit), so only terminal outcomes resolve. *)
and accept_at_receiver t ~from ~receiver item =
  match item with
  | Data pkt ->
      if receiver = t.sink_id then accept_data_at_sink t ~from pkt
      else accept_data_at_node t ~from ~receiver pkt
  | Chunk chunk ->
      if receiver = t.sink_id then accept_chunk_at_sink t chunk
      else accept_chunk_at_node t ~receiver chunk

and accept_data_at_node t ~from ~receiver pkt =
  let node = t.nodes.(receiver) in
  let st = packet_state t pkt in
  let hardware = t.config.ack_mode = Hardware in
  let upstack_outcome = Upstack.sample t.config.upstack node.rng in
  match upstack_outcome with
  | Upstack.Drop_before_log ->
      (* Died at interrupt level; nothing logged on the receiver. *)
      if hardware then
        resolve t pkt Logsys.Cause.Acked_loss ~loss_node:(Some receiver);
      false
  | Upstack.Survive | Upstack.Drop_after_log ->
      if Ctp.Dup_cache.seen node.dup_cache ~origin:pkt.origin ~seq:pkt.seq
      then begin
        (* A looped-back copy: drop it (and, under software ACKs,
           acknowledge so the loop sender stops). *)
        log t receiver (Dup { from }) pkt;
        resolve t pkt Logsys.Cause.Duplicate_loss ~loss_node:(Some receiver);
        true
      end
      else if Ctp.Forward_queue.is_full node.queue then begin
        log t receiver (Overflow { from }) pkt;
        if hardware then
          resolve t pkt Logsys.Cause.Overflow_loss ~loss_node:(Some receiver);
        false
      end
      else begin
        st.path_rev <- receiver :: st.path_rev;
        log t receiver (Recv { from }) pkt;
        match upstack_outcome with
        | Upstack.Drop_after_log ->
            (* Task-post failure after the logging statement (§V.D.3). *)
            if hardware then
              resolve t pkt Logsys.Cause.Received_loss
                ~loss_node:(Some receiver);
            false
        | Upstack.Survive ->
            Ctp.Dup_cache.remember node.dup_cache ~origin:pkt.origin
              ~seq:pkt.seq;
            ignore
              (Ctp.Forward_queue.push node.queue (Data pkt)
                : [ `Enqueued | `Overflow ]);
            try_start_exchange t node;
            true
        | Upstack.Drop_before_log -> assert false
      end

and accept_data_at_sink t ~from pkt =
  let node = t.nodes.(t.sink_id) in
  let st = packet_state t pkt in
  let hardware = t.config.ack_mode = Hardware in
  let now = Sim.Engine.now t.engine in
  if Ctp.Dup_cache.seen node.dup_cache ~origin:pkt.origin ~seq:pkt.seq then begin
    log t t.sink_id (Dup { from }) pkt;
    resolve t pkt Logsys.Cause.Duplicate_loss ~loss_node:(Some t.sink_id);
    true
  end
  else begin
    let serial_outcome = Serial_link.sample t.config.serial node.rng ~now in
    match serial_outcome with
    | Serial_link.Dropped_before_log ->
        if hardware then
          resolve t pkt Logsys.Cause.Acked_loss ~loss_node:(Some t.sink_id);
        false
    | Serial_link.Dropped_after_log ->
        st.path_rev <- t.sink_id :: st.path_rev;
        log t t.sink_id (Recv { from }) pkt;
        if hardware then
          resolve t pkt Logsys.Cause.Received_loss ~loss_node:(Some t.sink_id);
        false
    | Serial_link.Pushed ->
        Ctp.Dup_cache.remember node.dup_cache ~origin:pkt.origin ~seq:pkt.seq;
        st.path_rev <- t.sink_id :: st.path_rev;
        log t t.sink_id (Recv { from }) pkt;
        log t t.sink_id Deliver pkt;
        if Server.is_up t.config.server now then
          resolve t pkt Logsys.Cause.Delivered ~loss_node:None
        else
          resolve t pkt Logsys.Cause.Server_outage_loss
            ~loss_node:(Some t.sink_id);
        true
  end

(* Log chunks traverse the same hazards but write no records and carry no
   ground-truth fate: a lost chunk simply never reaches the base station. *)
and accept_chunk_at_node t ~receiver chunk =
  let node = t.nodes.(receiver) in
  match Upstack.sample t.config.upstack node.rng with
  | Upstack.Drop_before_log | Upstack.Drop_after_log -> false
  | Upstack.Survive ->
      if
        Ctp.Dup_cache.seen node.chunk_dup_cache ~origin:chunk.chunk_src
          ~seq:chunk.chunk_seq
      then true
      else if Ctp.Forward_queue.is_full node.queue then false
      else begin
        Ctp.Dup_cache.remember node.chunk_dup_cache ~origin:chunk.chunk_src
          ~seq:chunk.chunk_seq;
        ignore
          (Ctp.Forward_queue.push node.queue (Chunk chunk)
            : [ `Enqueued | `Overflow ]);
        try_start_exchange t node;
        true
      end

and accept_chunk_at_sink t chunk =
  let node = t.nodes.(t.sink_id) in
  let now = Sim.Engine.now t.engine in
  if
    Ctp.Dup_cache.seen node.chunk_dup_cache ~origin:chunk.chunk_src
      ~seq:chunk.chunk_seq
  then true
  else begin
    match Serial_link.sample t.config.serial node.rng ~now with
    | Serial_link.Dropped_before_log | Serial_link.Dropped_after_log -> false
    | Serial_link.Pushed ->
        Ctp.Dup_cache.remember node.chunk_dup_cache ~origin:chunk.chunk_src
          ~seq:chunk.chunk_seq;
        collect_chunk t chunk;
        true
  end

(* -- In-band log flushing. ----------------------------------------------- *)

let flush_spool t node_id =
  match t.config.log_transport with
  | None -> ()
  | Some transport ->
      let node = t.nodes.(node_id) in
      if not (Queue.is_empty node.spool) then begin
        let records = ref [] in
        let count = min transport.chunk_records (Queue.length node.spool) in
        for _ = 1 to count do
          records := Queue.pop node.spool :: !records
        done;
        let chunk =
          {
            chunk_src = node_id;
            chunk_seq = node.next_chunk_seq;
            chunk_records = List.rev !records;
          }
        in
        node.next_chunk_seq <- node.next_chunk_seq + 1;
        if node_id = t.sink_id then begin
          (* The sink's own log leaves over its serial connection. *)
          let now = Sim.Engine.now t.engine in
          match Serial_link.sample t.config.serial node.rng ~now with
          | Serial_link.Pushed -> collect_chunk t chunk
          | Serial_link.Dropped_before_log | Serial_link.Dropped_after_log ->
              ()
        end
        else begin
          Ctp.Dup_cache.remember node.chunk_dup_cache ~origin:node_id
            ~seq:chunk.chunk_seq;
          match Ctp.Forward_queue.push node.queue (Chunk chunk) with
          | `Overflow -> ()  (* chunk lost to local congestion *)
          | `Enqueued -> try_start_exchange t node
        end
      end

let rec schedule_flush t node_id ~stop transport =
  let node = t.nodes.(node_id) in
  let delay =
    transport.flush_interval
    +. Prelude.Rng.float node.rng transport.flush_jitter
  in
  ignore
    (Sim.Engine.schedule t.engine ~delay (fun engine ->
         if Sim.Engine.now engine < stop then begin
           flush_spool t node_id;
           schedule_flush t node_id ~stop transport
         end)
      : Sim.Engine.handle)

let collected_in_band t =
  match t.config.log_transport with
  | None -> None
  | Some _ ->
      let n = Array.length t.nodes in
      let node_logs =
        Array.init n (fun node ->
            match Hashtbl.find_opt t.arrived_chunks node with
            | None -> [||]
            | Some per_src ->
                Hashtbl.fold
                  (fun seq records acc -> (seq, records) :: acc)
                  per_src []
                |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
                |> List.concat_map snd |> Array.of_list)
      in
      Some (Logsys.Collected.of_node_logs node_logs)

let in_band_stats t =
  match t.config.log_transport with
  | None -> None
  | Some _ ->
      let dropped =
        Array.fold_left (fun acc n -> acc + n.spool_dropped) 0 t.nodes
      in
      Some (Logsys.Logger.total t.logger, dropped, t.records_collected)

(* -- Application layer: periodic data generation. ----------------------- *)

let generate_packet t node_id =
  let now = Sim.Engine.now t.engine in
  let pkt = Net.Packet.fresh t.alloc ~origin:node_id ~now in
  let st = packet_state t pkt in
  st.path_rev <- [ node_id ];
  log t node_id Gen pkt;
  let node = t.nodes.(node_id) in
  Ctp.Dup_cache.remember node.dup_cache ~origin:pkt.origin ~seq:pkt.seq;
  match Ctp.Forward_queue.push node.queue (Data pkt) with
  | `Overflow ->
      log t node_id (Overflow { from = node_id }) pkt;
      resolve t pkt Logsys.Cause.Overflow_loss ~loss_node:(Some node_id)
  | `Enqueued -> try_start_exchange t node

let rec schedule_data t node_id =
  let node = t.nodes.(node_id) in
  let delay =
    t.config.data_interval +. Prelude.Rng.float node.rng t.config.data_jitter
  in
  ignore
    (Sim.Engine.schedule t.engine ~delay (fun engine ->
         if Sim.Engine.now engine < t.data_stop then begin
           generate_packet t node_id;
           schedule_data t node_id
         end)
      : Sim.Engine.handle)

(* -- Control plane: periodic routing beacons. --------------------------- *)

let broadcast_beacon t node_id =
  let node = t.nodes.(node_id) in
  let advertised_etx = Ctp.Router.path_etx node.router in
  let now = Sim.Engine.now t.engine in
  Net.Energy.charge_tx t.energy.(node_id) t.energy_params.frame_time;
  List.iter
    (fun nb ->
      let prr = Net.Link_model.prr t.link ~now ~src:node_id ~dst:nb in
      let peer = t.nodes.(nb) in
      if Prelude.Rng.bernoulli peer.rng ~p:prr then begin
        Net.Energy.charge_rx t.energy.(nb) t.energy_params.frame_time;
        Ctp.Router.on_beacon_received peer.router ~from:node_id
          ~advertised_etx
      end
      else Ctp.Router.on_beacon_missed peer.router ~from:node_id;
      (* A fresh route may unblock packets parked for lack of one. *)
      try_start_exchange t peer)
    (Net.Topology.neighbors t.topo node_id)

let rec schedule_beacon t node_id ~stop =
  let node = t.nodes.(node_id) in
  let delay =
    t.config.beacon_interval
    +. Prelude.Rng.float node.rng t.config.beacon_jitter
  in
  ignore
    (Sim.Engine.schedule t.engine ~delay (fun engine ->
         if Sim.Engine.now engine < stop then begin
           broadcast_beacon t node_id;
           schedule_beacon t node_id ~stop
         end)
      : Sim.Engine.handle)

(* -- Failure injection: node reboots. ------------------------------------ *)

(* A reboot loses everything in RAM: the forwarding queue (queued data
   packets die inside the node), the in-flight exchange, routing state,
   duplicate caches, and the unshipped log spool. The flash log already
   written (the Logger) survives — only volatile state is lost. *)
let reboot t node_id =
  let node = t.nodes.(node_id) in
  node.reboots <- node.reboots + 1;
  node.epoch <- node.epoch + 1;
  (* The packet of the running exchange dies unless the receiver took it. *)
  (match node.in_flight with
  | Some pkt ->
      resolve t pkt Logsys.Cause.Received_loss ~loss_node:(Some node_id)
  | None -> ());
  node.in_flight <- None;
  node.busy <- false;
  (* Everything queued dies inside the node. *)
  let rec drain () =
    match Ctp.Forward_queue.pop node.queue with
    | None -> ()
    | Some (Data pkt) ->
        resolve t pkt Logsys.Cause.Received_loss ~loss_node:(Some node_id);
        drain ()
    | Some (Chunk _) -> drain ()
  in
  drain ();
  Ctp.Router.reset node.router;
  Ctp.Dup_cache.clear node.dup_cache;
  Ctp.Dup_cache.clear node.chunk_dup_cache;
  let dropped = Queue.length node.spool in
  node.spool_dropped <- node.spool_dropped + dropped;
  Queue.clear node.spool

let rec schedule_reboot t node_id ~stop ~mtbf =
  let node = t.nodes.(node_id) in
  let delay = Prelude.Rng.exponential node.rng ~mean:mtbf in
  ignore
    (Sim.Engine.schedule t.engine ~delay (fun engine ->
         if Sim.Engine.now engine < stop then begin
           reboot t node_id;
           schedule_reboot t node_id ~stop ~mtbf
         end)
      : Sim.Engine.handle)

let reboots_of t node = t.nodes.(node).reboots

(* -- Top level. ---------------------------------------------------------- *)

let drain_margin config =
  (* Enough virtual time for queued packets to finish a few full MAC
     exchanges after data generation stops. *)
  let exchange =
    float_of_int (config.mac.max_retx + 1)
    *. (config.mac.attempt_interval +. config.mac.attempt_jitter)
  in
  Float.max 120. (4. *. exchange)

let start t ~warmup ~duration =
  let stop = warmup +. duration in
  let drain = drain_margin t.config in
  t.data_stop <- stop;
  Array.iter
    (fun node -> schedule_beacon t node.id ~stop:(stop +. drain))
    t.nodes;
  (match t.config.log_transport with
  | None -> ()
  | Some transport ->
      Array.iter
        (fun node -> schedule_flush t node.id ~stop:(stop +. drain) transport)
        t.nodes);
  (match t.config.reboot_mtbf with
  | None -> ()
  | Some mtbf ->
      (* The sink is mains-powered and exempt (its problem is the serial
         cable, not resets). *)
      Array.iter
        (fun node ->
          if node.id <> t.sink_id then
            schedule_reboot t node.id ~stop:(stop +. drain) ~mtbf)
        t.nodes);
  Array.iter
    (fun node ->
      if node.id <> t.sink_id then begin
        (* First packet lands uniformly inside one data interval after
           warmup so sources are not phase-locked. *)
        let first =
          warmup +. Prelude.Rng.float node.rng t.config.data_interval
        in
        ignore
          (Sim.Engine.schedule_at t.engine ~time:first (fun engine ->
               if Sim.Engine.now engine < t.data_stop then begin
                 generate_packet t node.id;
                 schedule_data t node.id
               end)
            : Sim.Engine.handle)
      end)
    t.nodes;
  Sim.Engine.run ~until:(stop +. drain) t.engine;
  (* LPL baseline: every node samples the channel once per wakeup interval
     for the whole run. *)
  let total_time = stop +. drain in
  let samples = total_time /. t.config.mac.attempt_interval in
  Array.iter
    (fun e -> Net.Energy.charge_rx e (samples *. t.energy_params.cca_time))
    t.energy;
  (* Anything still in flight at the horizon has no terminal event. *)
  Hashtbl.iter
    (fun _ st ->
      if not st.resolved then begin
        st.resolved <- true;
        Logsys.Truth.record t.truth ~origin:st.packet.origin
          ~seq:st.packet.seq
          {
            cause = Logsys.Cause.Unknown;
            loss_node = None;
            path = List.rev st.path_rev;
            generated_at = st.packet.created_at;
            resolved_at = Sim.Engine.now t.engine;
          }
      end)
    t.packets

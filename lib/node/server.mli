(** Base-station backbone server with outage windows.

    CitySee's sink forwards packets over a mesh backbone to a server; over
    the 30-day study, server outages caused 22.6 % of all packet losses
    (§V.C).  The server is modelled as an availability schedule: packets
    delivered by the sink during an outage are lost upstream of the WSN. *)

type t

val create : outages:(float * float) list -> t
(** [outages] is a list of [(start, duration)] windows, any order; windows
    may overlap.
    @raise Invalid_argument on a negative duration. *)

val always_up : t

val is_up : t -> float -> bool
(** Whether the server is reachable at the given time (outage windows are
    half-open: [start <= t < start + duration] means down). *)

val outages : t -> (float * float) list
(** The windows, sorted by start time. *)

val downtime : t -> until:float -> float
(** Total seconds of downtime in [\[0, until)], overlaps counted once. *)

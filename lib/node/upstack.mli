(** In-node packet death between the radio and the routing layer.

    §V.D.3 and §V.D.5: packets that were hardware-ACKed can still die inside
    the receiving node — the task queue refuses a duplicate task, memory is
    full, the MCU is busy while interrupts are disabled.  Depending on
    whether the death happens before or after the [recv] logging statement
    the network sees an *acked loss* or a *received loss*. *)

type outcome =
  | Survive  (** Passed up to the routing layer. *)
  | Drop_before_log  (** Silent death: acked loss. *)
  | Drop_after_log  (** [recv] logged, then death: received loss. *)

type t

val create : drop_probability:float -> prelog_fraction:float -> t
(** @raise Invalid_argument if either argument is outside [\[0,1\]]. *)

val reliable : t
(** Never drops. *)

val sample : t -> Prelude.Rng.t -> outcome

val drop_probability : t -> float

type t = { outages : (float * float) list }

let create ~outages =
  List.iter
    (fun (_, d) ->
      if d < 0. then invalid_arg "Server.create: negative outage duration")
    outages;
  let sorted =
    List.sort (fun (a, _) (b, _) -> Float.compare a b) outages
  in
  { outages = sorted }

let always_up = { outages = [] }

let is_up t time =
  not
    (List.exists
       (fun (start, duration) -> time >= start && time < start +. duration)
       t.outages)

let outages t = t.outages

let downtime t ~until =
  (* Merge overlapping windows clipped to [0, until). *)
  let clipped =
    List.filter_map
      (fun (s, d) ->
        let lo = Float.max 0. s and hi = Float.min until (s +. d) in
        if hi > lo then Some (lo, hi) else None)
      t.outages
  in
  let rec merge acc = function
    | [] -> acc
    | (lo, hi) :: rest -> (
        match acc with
        | (alo, ahi) :: acc_rest when lo <= ahi ->
            merge ((alo, Float.max ahi hi) :: acc_rest) rest
        | _ -> merge ((lo, hi) :: acc) rest)
  in
  merge [] clipped
  |> List.fold_left (fun total (lo, hi) -> total +. (hi -. lo)) 0.

type outcome = Pushed | Dropped_before_log | Dropped_after_log

type t = { drop_probability : float -> float; prelog_fraction : float }

let create ~drop_probability ~prelog_fraction =
  if prelog_fraction < 0. || prelog_fraction > 1. then
    invalid_arg "Serial_link.create: prelog_fraction";
  { drop_probability; prelog_fraction }

let stable = { drop_probability = (fun _ -> 0.); prelog_fraction = 0. }

let unstable_until ~fix_time ~bad_rate ~good_rate ~prelog_fraction =
  create
    ~drop_probability:(fun now -> if now < fix_time then bad_rate else good_rate)
    ~prelog_fraction

let sample t rng ~now =
  let p = t.drop_probability now in
  if Prelude.Rng.bernoulli rng ~p then
    if Prelude.Rng.bernoulli rng ~p:t.prelog_fraction then Dropped_before_log
    else Dropped_after_log
  else Pushed

let drop_probability t now = t.drop_probability now

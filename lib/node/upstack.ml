type outcome = Survive | Drop_before_log | Drop_after_log

type t = { drop_probability : float; prelog_fraction : float }

let create ~drop_probability ~prelog_fraction =
  if drop_probability < 0. || drop_probability > 1. then
    invalid_arg "Upstack.create: drop_probability";
  if prelog_fraction < 0. || prelog_fraction > 1. then
    invalid_arg "Upstack.create: prelog_fraction";
  { drop_probability; prelog_fraction }

let reliable = { drop_probability = 0.; prelog_fraction = 0. }

let sample t rng =
  if Prelude.Rng.bernoulli rng ~p:t.drop_probability then
    if Prelude.Rng.bernoulli rng ~p:t.prelog_fraction then Drop_before_log
    else Drop_after_log
  else Survive

let drop_probability t = t.drop_probability

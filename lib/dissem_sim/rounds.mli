(** A Deluge/Trickle-style dissemination simulator.

    Backs the {!Refill.Dissem} protocol model with a real substrate: one
    broadcaster periodically advertises a data item over the shared lossy
    radio ({!Net.Link_model}); in-range receivers that heard an
    advertisement request the item after a random backoff, retry on
    timeout, and the broadcaster serves queued requests one unicast at a
    time.  Every protocol step writes the corresponding
    {!Refill.Dissem.event} into the acting node's local log — giving the
    dissemination domain the same simulate → log → reconstruct → score
    pipeline the collection domain has.

    Only the broadcaster's one-hop neighborhood participates (single-hop
    dissemination, as in the paper's Fig. 3(b) negotiation sketch). *)

type config = {
  adv_interval : float;  (** Seconds between re-advertisements. *)
  req_backoff_max : float;
      (** Receivers wait Uniform[0, this) before requesting. *)
  req_timeout : float;  (** Re-request if the data has not arrived. *)
  service_interval : float;
      (** Broadcaster delay between serving queued requests. *)
  duration : float;  (** Total simulated time. *)
}

val default_config : config
(** Advertise every 20 s, backoff ≤ 2 s, retry after 8 s, serve every
    0.2 s, run 120 s. *)

type result = {
  logs : (int * Refill.Dissem.event list) list;
      (** Per participating node (broadcaster first), the events it wrote,
          in write order. *)
  completed : (int * bool) list;
      (** Ground truth per receiver, sorted by id. *)
  advertisements : int;  (** Rounds the broadcaster ran. *)
}

val run :
  Prelude.Rng.t ->
  topology:Net.Topology.t ->
  link:Net.Link_model.t ->
  broadcaster:Net.Packet.node_id ->
  config ->
  result

val merged_events : result -> Refill.Dissem.event list
(** All logs concatenated (per-node order preserved) — the reconstruction
    input. *)

val run_epidemic :
  Prelude.Rng.t ->
  topology:Net.Topology.t ->
  link:Net.Link_model.t ->
  seed:Net.Packet.node_id ->
  config ->
  result
(** Multi-hop dissemination: every node that completes becomes a holder
    and starts advertising to its own neighborhood, flooding the data
    across the network hop by hop (Deluge's propagation pattern).
    [result.completed] covers every non-seed node; [advertisements] counts
    all advertisements network-wide. *)

type config = {
  adv_interval : float;
  req_backoff_max : float;
  req_timeout : float;
  service_interval : float;
  duration : float;
}

let default_config =
  {
    adv_interval = 20.;
    req_backoff_max = 2.;
    req_timeout = 8.;
    service_interval = 0.2;
    duration = 120.;
  }

type receiver_state = Idle | Heard | Requested | Done

type result = {
  logs : (int * Refill.Dissem.event list) list;
  completed : (int * bool) list;
  advertisements : int;
}

let run rng ~topology ~link ~broadcaster config =
  let engine = Sim.Engine.create () in
  let receivers = Net.Topology.neighbors topology broadcaster in
  let state = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace state r Idle) receivers;
  let logs : (int, Refill.Dissem.event list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let log node label peer =
    let cell =
      match Hashtbl.find_opt logs node with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add logs node c;
          c
    in
    cell := { Refill.Dissem.node; label; peer } :: !cell
  in
  let advertisements = ref 0 in
  (* The broadcaster's pending-request queue (dedup'd). *)
  let service_queue = Queue.create () in
  let queued = Hashtbl.create 16 in
  let frame_arrives ~src ~dst =
    let prr = Net.Link_model.prr link ~now:(Sim.Engine.now engine) ~src ~dst in
    Prelude.Rng.bernoulli rng ~p:prr
  in
  let rec send_request r =
    if Hashtbl.find_opt state r = Some Heard
       || Hashtbl.find_opt state r = Some Requested
    then begin
      Hashtbl.replace state r Requested;
      log r Refill.Dissem.L_req (Some broadcaster);
      if frame_arrives ~src:r ~dst:broadcaster then begin
        log broadcaster Refill.Dissem.L_rx_req (Some r);
        if not (Hashtbl.mem queued r) then begin
          Hashtbl.replace queued r ();
          Queue.add r service_queue
        end
      end;
      (* Retry until the data arrives. *)
      ignore
        (Sim.Engine.schedule engine ~delay:config.req_timeout (fun _ ->
             if Hashtbl.find_opt state r = Some Requested then send_request r)
          : Sim.Engine.handle)
    end
  in
  let on_adv_received r =
    log r Refill.Dissem.L_rx_adv (Some broadcaster);
    if Hashtbl.find_opt state r = Some Idle then begin
      Hashtbl.replace state r Heard;
      let backoff = Prelude.Rng.float rng config.req_backoff_max in
      ignore
        (Sim.Engine.schedule engine ~delay:backoff (fun _ -> send_request r)
          : Sim.Engine.handle)
    end
  in
  let rec advertise _ =
    if Sim.Engine.now engine < config.duration then begin
      incr advertisements;
      log broadcaster Refill.Dissem.L_adv None;
      List.iter
        (fun r ->
          if frame_arrives ~src:broadcaster ~dst:r then on_adv_received r)
        receivers;
      ignore
        (Sim.Engine.schedule engine ~delay:config.adv_interval advertise
          : Sim.Engine.handle)
    end
  in
  let rec serve _ =
    if Sim.Engine.now engine < config.duration then begin
      (match Queue.take_opt service_queue with
      | None -> ()
      | Some r ->
          Hashtbl.remove queued r;
          if Hashtbl.find_opt state r <> Some Done then begin
            log broadcaster Refill.Dissem.L_data (Some r);
            if frame_arrives ~src:broadcaster ~dst:r then begin
              log r Refill.Dissem.L_rx_data (Some broadcaster);
              Hashtbl.replace state r Done;
              log r Refill.Dissem.L_done None
            end
          end);
      ignore
        (Sim.Engine.schedule engine ~delay:config.service_interval serve
          : Sim.Engine.handle)
    end
  in
  ignore (Sim.Engine.schedule engine ~delay:0. advertise : Sim.Engine.handle);
  ignore
    (Sim.Engine.schedule engine ~delay:config.service_interval serve
      : Sim.Engine.handle);
  Sim.Engine.run ~until:config.duration engine;
  let node_log node =
    match Hashtbl.find_opt logs node with
    | Some cell -> List.rev !cell
    | None -> []
  in
  {
    logs =
      (broadcaster, node_log broadcaster)
      :: List.map (fun r -> (r, node_log r)) (List.sort Int.compare receivers);
    completed =
      List.map
        (fun r -> (r, Hashtbl.find_opt state r = Some Done))
        (List.sort Int.compare receivers);
    advertisements = !advertisements;
  }

let merged_events result = List.concat_map snd result.logs

let run_epidemic rng ~topology ~link ~seed config =
  let engine = Sim.Engine.create () in
  let n = Net.Topology.n_nodes topology in
  let state = Hashtbl.create 16 in
  for r = 0 to n - 1 do
    if r <> seed then Hashtbl.replace state r Idle
  done;
  let logs : (int, Refill.Dissem.event list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let log node label peer =
    let cell =
      match Hashtbl.find_opt logs node with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add logs node c;
          c
    in
    cell := { Refill.Dissem.node; label; peer } :: !cell
  in
  let advertisements = ref 0 in
  (* Per-holder service queue. *)
  let service_queues : (int, int Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let queued = Hashtbl.create 64 in
  let service_queue holder =
    match Hashtbl.find_opt service_queues holder with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add service_queues holder q;
        q
  in
  let is_holder node = node = seed || Hashtbl.find_opt state node = Some Done in
  let frame_arrives ~src ~dst =
    let prr = Net.Link_model.prr link ~now:(Sim.Engine.now engine) ~src ~dst in
    Prelude.Rng.bernoulli rng ~p:prr
  in
  let completed_hook = ref (fun (_ : int) -> ()) in
  let rec send_request r holder =
    match Hashtbl.find_opt state r with
    | Some (Heard | Requested) ->
        Hashtbl.replace state r Requested;
        log r Refill.Dissem.L_req (Some holder);
        if frame_arrives ~src:r ~dst:holder then begin
          log holder Refill.Dissem.L_rx_req (Some r);
          if not (Hashtbl.mem queued (holder, r)) then begin
            Hashtbl.replace queued (holder, r) ();
            Queue.add r (service_queue holder)
          end
        end;
        ignore
          (Sim.Engine.schedule engine ~delay:config.req_timeout (fun _ ->
               if Hashtbl.find_opt state r = Some Requested then
                 send_request r holder)
            : Sim.Engine.handle)
    | _ -> ()
  in
  let on_adv_received r holder =
    log r Refill.Dissem.L_rx_adv (Some holder);
    if Hashtbl.find_opt state r = Some Idle then begin
      Hashtbl.replace state r Heard;
      let backoff = Prelude.Rng.float rng config.req_backoff_max in
      ignore
        (Sim.Engine.schedule engine ~delay:backoff (fun _ ->
             send_request r holder)
          : Sim.Engine.handle)
    end
  in
  let rec advertise holder _ =
    if Sim.Engine.now engine < config.duration then begin
      (* Suppress once every neighbor holds the data (Trickle-style). *)
      let needy =
        List.exists
          (fun nb -> not (is_holder nb))
          (Net.Topology.neighbors topology holder)
      in
      if needy then begin
        incr advertisements;
        log holder Refill.Dissem.L_adv None;
        List.iter
          (fun r ->
            if (not (is_holder r)) && frame_arrives ~src:holder ~dst:r then
              on_adv_received r holder)
          (Net.Topology.neighbors topology holder)
      end;
      ignore
        (Sim.Engine.schedule engine ~delay:config.adv_interval
           (advertise holder)
          : Sim.Engine.handle)
    end
  in
  let rec serve holder _ =
    if Sim.Engine.now engine < config.duration then begin
      (match Queue.take_opt (service_queue holder) with
      | None -> ()
      | Some r ->
          Hashtbl.remove queued (holder, r);
          if not (is_holder r) then begin
            log holder Refill.Dissem.L_data (Some r);
            if frame_arrives ~src:holder ~dst:r then begin
              log r Refill.Dissem.L_rx_data (Some holder);
              Hashtbl.replace state r Done;
              log r Refill.Dissem.L_done None;
              !completed_hook r
            end
          end);
      ignore
        (Sim.Engine.schedule engine ~delay:config.service_interval
           (serve holder)
          : Sim.Engine.handle)
    end
  in
  let start_holder holder =
    ignore
      (Sim.Engine.schedule engine
         ~delay:(Prelude.Rng.float rng config.req_backoff_max)
         (advertise holder)
        : Sim.Engine.handle);
    ignore
      (Sim.Engine.schedule engine ~delay:config.service_interval
         (serve holder)
        : Sim.Engine.handle)
  in
  completed_hook := (fun r -> start_holder r);
  start_holder seed;
  Sim.Engine.run ~until:config.duration engine;
  let node_log node =
    match Hashtbl.find_opt logs node with
    | Some cell -> List.rev !cell
    | None -> []
  in
  let participants =
    List.init n Fun.id
    |> List.filter (fun node -> node = seed || node_log node <> [])
  in
  {
    logs = List.map (fun node -> (node, node_log node)) participants;
    completed =
      List.init n Fun.id
      |> List.filter_map (fun r ->
             if r = seed then None
             else Some (r, Hashtbl.find_opt state r = Some Done));
    advertisements = !advertisements;
  }

(** Per-link packet reception ratio (PRR) model.

    Each directed link gets a deterministic base PRR from a distance sigmoid
    with per-link random midpoint (log-normal-shadowing-like spread), plus a
    slow per-link sinusoidal fluctuation.  Two global multipliers reproduce
    the paper's environment: a weather function of time (snow on days 9–10
    degrades all links) and localized interference bursts (temporary deep
    fades that make timeout losses bursty and temporally correlated, as in
    Fig. 5).  All per-link randomness is derived by hashing the master seed
    with the link endpoints, so the model is deterministic and O(1) memory
    until a link is first used. *)

type t

val create :
  seed:int64 ->
  topology:Topology.t ->
  ?d50_lo_frac:float ->
  ?d50_hi_frac:float ->
  ?steepness_frac:float ->
  ?max_fluctuation:float ->
  unit ->
  t
(** [d50_lo_frac]/[d50_hi_frac] (defaults 0.55/0.85) bound the per-link
    half-PRR distance as a fraction of radio range; [steepness_frac]
    (default 0.08) is the sigmoid width as a fraction of range;
    [max_fluctuation] (default 0.25) bounds the sinusoidal amplitude. *)

val topology : t -> Topology.t

val set_weather : t -> (float -> float) -> unit
(** [set_weather t f] installs a quality multiplier [f now] in [\[0,1\]]
    applied to every link (1 = clear weather). Default: [fun _ -> 1.]. *)

type burst = {
  start : float;
  duration : float;
  severity : float;  (** PRR multiplier is [1 - severity] inside the burst. *)
  center : float * float;
  radius : float;
}

val add_burst : t -> burst -> unit
(** Register a localized interference burst affecting links whose midpoint
    lies within [radius] of [center] during [\[start, start+duration)]. *)

val bursts : t -> burst list

val prr : t -> now:float -> src:Packet.node_id -> dst:Packet.node_id -> float
(** Current PRR of the directed link, in [\[0,1\]]; 0 when out of range. *)

val base_prr : t -> src:Packet.node_id -> dst:Packet.node_id -> float
(** Distance-only PRR, no fluctuation/weather/bursts (for tests and for
    seeding ETX estimates). *)

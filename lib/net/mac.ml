type config = {
  max_retx : int;
  attempt_interval : float;
  attempt_jitter : float;
  ack_loss_factor : float;
}

let default_config =
  {
    max_retx = 30;
    attempt_interval = 0.5;
    attempt_jitter = 0.1;
    ack_loss_factor = 0.3;
  }

type attempt_result = Frame_lost | Received_ack_lost | Received_acked

let attempt config link rng ~now ~src ~dst =
  let prr = Link_model.prr link ~now ~src ~dst in
  if not (Prelude.Rng.bernoulli rng ~p:prr) then Frame_lost
  else begin
    let p_ack_loss = config.ack_loss_factor *. (1. -. prr) in
    if Prelude.Rng.bernoulli rng ~p:p_ack_loss then Received_ack_lost
    else Received_acked
  end

let attempt_delay config rng =
  config.attempt_interval +. Prelude.Rng.float rng config.attempt_jitter

type params = {
  tx_mw : float;
  rx_mw : float;
  sleep_mw : float;
  frame_time : float;
  ack_time : float;
  cca_time : float;
}

let default_params =
  {
    tx_mw = 52.2;  (* 17.4 mA * 3 V *)
    rx_mw = 56.4;  (* 18.8 mA * 3 V *)
    sleep_mw = 0.063;
    frame_time = 0.004;
    ack_time = 0.0005;
    cca_time = 0.005;
  }

type t = { mutable tx : float; mutable rx : float }

let create () = { tx = 0.; rx = 0. }

let charge_tx t s = t.tx <- t.tx +. s

let charge_rx t s = t.rx <- t.rx +. s

let tx_time t = t.tx

let rx_time t = t.rx

let active_time t = t.tx +. t.rx

let energy_mj params t ~duration =
  let active = active_time t in
  if duration < active -. 1e-9 then
    invalid_arg "Energy.energy_mj: duration shorter than active time";
  let sleep = Float.max 0. (duration -. active) in
  (t.tx *. params.tx_mw) +. (t.rx *. params.rx_mw)
  +. (sleep *. params.sleep_mw)

let duty_cycle t ~duration =
  if duration <= 0. then 0. else active_time t /. duration

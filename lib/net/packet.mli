(** Data packets flowing through the simulated collection network.

    A packet is identified globally by [id] and carries its origin node and
    per-origin sequence number — the information CitySee packets carry and
    the information REFILL's event records key on. *)

type node_id = int
(** Nodes are dense integer ids [0 .. n-1]; the sink is one of them. *)

type t = {
  id : int;  (** Globally unique packet id. *)
  origin : node_id;  (** Node whose application layer generated the packet. *)
  seq : int;  (** Per-origin sequence number, starting at 0. *)
  created_at : float;  (** Simulated generation time. *)
}

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
(** Orders by [id]. *)

val equal : t -> t -> bool

type allocator
(** Hands out unique packet ids and per-origin sequence numbers. *)

val allocator : unit -> allocator

val fresh : allocator -> origin:node_id -> now:float -> t

val count : allocator -> int
(** Total packets allocated so far. *)

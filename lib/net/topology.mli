(** Node placement and radio neighborhoods.

    CitySee deployed ~1200 nodes over an urban area with one sink wired to a
    backbone.  We reproduce the geometry with either a jittered grid (street
    blocks) or a random-geometric layout, both with a configurable radio
    range that defines the neighbor relation used by the link model and CTP. *)

type t

val create : positions:(float * float) array -> range:float -> t
(** Explicit placement. [range] is the maximum distance at which two nodes
    can communicate at all.
    @raise Invalid_argument if [range <= 0.] or fewer than one node. *)

val random_geometric :
  Prelude.Rng.t -> n:int -> side:float -> range:float -> t
(** [n] nodes uniform in a [side × side] square. *)

val jittered_grid :
  Prelude.Rng.t ->
  nx:int ->
  ny:int ->
  spacing:float ->
  jitter:float ->
  range:float ->
  t
(** [nx × ny] nodes on a grid with per-node uniform jitter in
    [±jitter/2] on both axes — an urban street-canyon-like layout. *)

val n_nodes : t -> int

val position : t -> Packet.node_id -> float * float

val distance : t -> Packet.node_id -> Packet.node_id -> float

val range : t -> float

val neighbors : t -> Packet.node_id -> Packet.node_id list
(** Nodes strictly within radio range, excluding the node itself. Computed
    once at construction. *)

val in_range : t -> Packet.node_id -> Packet.node_id -> bool

val nearest_to : t -> float * float -> Packet.node_id
(** Node closest to a point (used to pick the sink at a corner). *)

val is_connected : t -> from:Packet.node_id -> bool
(** Whether every node can reach [from] through the neighbor graph —
    deployments are regenerated until connected so every node has a route to
    the sink. *)

type t = {
  positions : (float * float) array;
  range : float;
  neighbors : Packet.node_id list array;
}

let distance_between (x1, y1) (x2, y2) =
  let dx = x1 -. x2 and dy = y1 -. y2 in
  sqrt ((dx *. dx) +. (dy *. dy))

let create ~positions ~range =
  if range <= 0. then invalid_arg "Topology.create: range must be positive";
  let n = Array.length positions in
  if n = 0 then invalid_arg "Topology.create: no nodes";
  let neighbors =
    Array.init n (fun i ->
        let acc = ref [] in
        for j = n - 1 downto 0 do
          if j <> i && distance_between positions.(i) positions.(j) < range
          then acc := j :: !acc
        done;
        !acc)
  in
  { positions; range; neighbors }

let random_geometric rng ~n ~side ~range =
  let positions =
    Array.init n (fun _ ->
        (Prelude.Rng.float rng side, Prelude.Rng.float rng side))
  in
  create ~positions ~range

let jittered_grid rng ~nx ~ny ~spacing ~jitter ~range =
  let positions =
    Array.init (nx * ny) (fun k ->
        let ix = k mod nx and iy = k / nx in
        let jx = Prelude.Rng.float rng jitter -. (jitter /. 2.) in
        let jy = Prelude.Rng.float rng jitter -. (jitter /. 2.) in
        ((float_of_int ix *. spacing) +. jx, (float_of_int iy *. spacing) +. jy))
  in
  create ~positions ~range

let n_nodes t = Array.length t.positions

let position t i = t.positions.(i)

let distance t i j = distance_between t.positions.(i) t.positions.(j)

let range t = t.range

let neighbors t i = t.neighbors.(i)

let in_range t i j = i <> j && distance t i j < t.range

let nearest_to t point =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun i pos ->
      let d = distance_between pos point in
      if d < !best_d then begin
        best := i;
        best_d := d
      end)
    t.positions;
  !best

let is_connected t ~from =
  let n = n_nodes t in
  let seen = Array.make n false in
  let queue = Queue.create () in
  Queue.add from queue;
  seen.(from) <- true;
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr count;
    List.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w queue
        end)
      t.neighbors.(v)
  done;
  !count = n

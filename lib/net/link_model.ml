type link_params = {
  d50 : float;  (* distance at which base PRR crosses 0.5 *)
  steepness : float;
  fluct_amplitude : float;
  fluct_period : float;
  fluct_phase : float;
}

type burst = {
  start : float;
  duration : float;
  severity : float;
  center : float * float;
  radius : float;
}

type t = {
  seed : int64;
  topology : Topology.t;
  d50_lo_frac : float;
  d50_hi_frac : float;
  steepness_frac : float;
  max_fluctuation : float;
  cache : (int, link_params) Hashtbl.t;
  mutable weather : float -> float;
  mutable bursts : burst list;
}

let create ~seed ~topology ?(d50_lo_frac = 0.55) ?(d50_hi_frac = 0.85)
    ?(steepness_frac = 0.08) ?(max_fluctuation = 0.25) () =
  {
    seed;
    topology;
    d50_lo_frac;
    d50_hi_frac;
    steepness_frac;
    max_fluctuation;
    cache = Hashtbl.create 1024;
    weather = (fun _ -> 1.);
    bursts = [];
  }

let topology t = t.topology

let set_weather t f = t.weather <- f

let add_burst t b = t.bursts <- b :: t.bursts

let bursts t = t.bursts

(* Links are undirected for parameter purposes (radio symmetry of the
   environment); direction-specific effects come from the fluctuation phase
   offset below. The key packs the unordered pair. *)
let link_key src dst =
  let a = min src dst and b = max src dst in
  (a * 1_000_003) + b

let params t ~src ~dst =
  let key = link_key src dst in
  match Hashtbl.find_opt t.cache key with
  | Some p -> p
  | None ->
      let rng =
        Prelude.Rng.create
          ~seed:(Int64.add t.seed (Int64.of_int ((key * 2654435761) lxor 0x5bf03635)))
      in
      let range = Topology.range t.topology in
      let u = Prelude.Rng.unit_float rng in
      let p =
        {
          d50 = range *. (t.d50_lo_frac +. ((t.d50_hi_frac -. t.d50_lo_frac) *. u));
          steepness = range *. t.steepness_frac;
          fluct_amplitude = Prelude.Rng.float rng t.max_fluctuation;
          fluct_period = 600. +. Prelude.Rng.float rng 3000.;
          fluct_phase = Prelude.Rng.float rng (2. *. Float.pi);
        }
      in
      Hashtbl.add t.cache key p;
      p

let base_prr t ~src ~dst =
  if not (Topology.in_range t.topology src dst) then 0.
  else begin
    let p = params t ~src ~dst in
    let d = Topology.distance t.topology src dst in
    1. /. (1. +. exp ((d -. p.d50) /. p.steepness))
  end

let midpoint t src dst =
  let x1, y1 = Topology.position t.topology src in
  let x2, y2 = Topology.position t.topology dst in
  ((x1 +. x2) /. 2., (y1 +. y2) /. 2.)

let burst_multiplier t ~now ~src ~dst =
  List.fold_left
    (fun acc b ->
      if now >= b.start && now < b.start +. b.duration then begin
        let mx, my = midpoint t src dst in
        let cx, cy = b.center in
        let dx = mx -. cx and dy = my -. cy in
        if (dx *. dx) +. (dy *. dy) <= b.radius *. b.radius then
          acc *. (1. -. b.severity)
        else acc
      end
      else acc)
    1. t.bursts

let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

let prr t ~now ~src ~dst =
  let base = base_prr t ~src ~dst in
  if base <= 0. then 0.
  else begin
    let p = params t ~src ~dst in
    (* Direction-dependent phase offset keeps forward/reverse PRR correlated
       but not identical. *)
    let phase = p.fluct_phase +. if src < dst then 0. else 0.9 in
    let wave =
      0.5 +. (0.5 *. sin (((2. *. Float.pi *. now) /. p.fluct_period) +. phase))
    in
    let fluct = 1. -. (p.fluct_amplitude *. wave) in
    let q =
      base *. fluct *. clamp01 (t.weather now)
      *. burst_multiplier t ~now ~src ~dst
    in
    clamp01 q
  end

(** Radio energy accounting (CC2420-class, LPL).

    CitySee nodes are battery powered; LPL exists to keep the radio off
    (§V.A.2).  This module is a per-node accumulator of radio-active time,
    charged by the simulator: LPL senders strobe for up to a wakeup
    interval per transmission attempt, receivers pay reception plus the
    short ACK transmission, and every node pays a periodic clear-channel
    sample.  Energy is radio-active time times CC2420-class power draws —
    coarse, but faithful enough to compare protocol variants (e.g. the
    cost of shipping logs in-band). *)

type params = {
  tx_mw : float;  (** Transmit power draw, milliwatts. *)
  rx_mw : float;  (** Receive/listen power draw. *)
  sleep_mw : float;  (** Radio-off draw. *)
  frame_time : float;  (** Seconds to transmit one data frame. *)
  ack_time : float;  (** Seconds to transmit a hardware ACK. *)
  cca_time : float;  (** Seconds per LPL clear-channel sample. *)
}

val default_params : params
(** CC2420 at 3 V: tx ≈ 52 mW, rx ≈ 56 mW, sleep ≈ 0.06 mW; 4 ms frames,
    0.5 ms ACKs, 5 ms channel samples. *)

type t
(** Mutable per-node accumulator. *)

val create : unit -> t

val charge_tx : t -> float -> unit
(** Add seconds of transmit-active time. *)

val charge_rx : t -> float -> unit
(** Add seconds of receive-active time. *)

val tx_time : t -> float

val rx_time : t -> float

val active_time : t -> float

val energy_mj : params -> t -> duration:float -> float
(** Total millijoules over a run of [duration] seconds: accumulated
    tx/rx at their draws plus the remaining time asleep.
    @raise Invalid_argument if [duration] is less than the active time. *)

val duty_cycle : t -> duration:float -> float
(** Fraction of [duration] the radio was active. *)

type node_id = int

type t = { id : int; origin : node_id; seq : int; created_at : float }

let pp ppf p =
  Format.fprintf ppf "pkt#%d(origin=%d,seq=%d,t=%.2f)" p.id p.origin p.seq
    p.created_at

let compare a b = Int.compare a.id b.id

let equal a b = a.id = b.id

type allocator = {
  mutable next_id : int;
  per_origin : (node_id, int) Hashtbl.t;
}

let allocator () = { next_id = 0; per_origin = Hashtbl.create 64 }

let fresh alloc ~origin ~now =
  let seq = Option.value ~default:0 (Hashtbl.find_opt alloc.per_origin origin) in
  Hashtbl.replace alloc.per_origin origin (seq + 1);
  let id = alloc.next_id in
  alloc.next_id <- id + 1;
  { id; origin; seq; created_at = now }

let count alloc = alloc.next_id

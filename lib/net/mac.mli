(** Low-Power-Listening MAC model (CC2420-style, hardware ACK).

    CitySee's MAC repeatedly transmits a unicast frame until an ACK arrives
    or the retransmission budget is exhausted (up to 30 retransmissions,
    §V.D.3).  We model each attempt as an independent Bernoulli experiment
    against the current link PRR, with the hardware ACK subject to its own
    (shorter-frame, hence better) reception probability.  The retransmission
    loop itself lives in the node stack; this module samples single attempts
    and provides the timing constants. *)

type config = {
  max_retx : int;  (** Maximum retransmissions after the first attempt. *)
  attempt_interval : float;
      (** Mean seconds between successive attempts (LPL wakeup interval). *)
  attempt_jitter : float;  (** Uniform jitter added to the interval. *)
  ack_loss_factor : float;
      (** ACK frame loss probability relative to data frame loss:
          [p_ack_loss = ack_loss_factor *. (1 -. prr)]. ACKs are short, so
          this is well below 1. *)
}

val default_config : config
(** 30 retransmissions, 0.5 s wakeup interval, 0.1 s jitter, 0.3 ACK loss
    factor. *)

type attempt_result =
  | Frame_lost  (** Data frame lost in the air or CRC-rejected. *)
  | Received_ack_lost
      (** Receiver accepted the frame and hardware-ACKed, but the ACK was
          lost: the sender will retransmit, the receiver sees a link-layer
          duplicate (suppressed by DSN, not a routing duplicate). *)
  | Received_acked  (** Clean exchange. *)

val attempt :
  config ->
  Link_model.t ->
  Prelude.Rng.t ->
  now:float ->
  src:Packet.node_id ->
  dst:Packet.node_id ->
  attempt_result
(** Sample one transmission attempt at the current link quality. *)

val attempt_delay : config -> Prelude.Rng.t -> float
(** Delay before the next attempt (interval plus jitter). *)

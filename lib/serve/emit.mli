(** Flow-outcome emission: the stable one-line-per-flow text format and
    the sinks (file, publish socket) that carry it.

    Lines contain no timestamps or other run-local material, so the
    stream a live server emits is byte-comparable with an offline
    [reconstruct --stream --emit-file] over the same record sequence. *)

val line : Refill.Stream.emitted -> string
(** ["C 3 17 delivered | 3-2 trans, [3-2 recv], ..."] — outcome letter
    ([C]omplete / [I]ncomplete), origin, seq, classified cause, then the
    flow rendered by {!Refill.Flow.to_string}.  No trailing newline. *)

val prov_line : Refill.Flow.t -> string option
(** Provenance side-car line ["p <int> <int> ..."] — the packed
    {!Refill.Provenance.t} ints in item order.  [None] when the run did
    not collect provenance. *)

type sink = { write : string -> unit; close : unit -> unit }
(** [write] takes one line without its newline; [close] is idempotent in
    effect (callers invoke it once). *)

val null : sink

val to_file : string -> sink
(** Truncate-and-write; lines are flushed on [close]. *)

val publish : port:int -> sink
(** Listen on loopback [port]; every connected subscriber receives each
    subsequent line.  Best-effort tap, not a queue: lines written with no
    subscriber are dropped, and a subscriber whose socket errors is
    dropped silently.  A momentarily full subscriber socket is not an
    error — the undelivered tail is buffered (bounded) and retried on the
    next write, so a live subscriber never sees a torn line; only a peer
    stalled past the backlog bound is dropped.  [close] disconnects
    subscribers and stops the accept thread. *)

val tee : sink -> sink -> sink

val emit_to : sink -> Refill.Stream.emitted -> unit
(** Write {!line} and, when present, {!prov_line}. *)

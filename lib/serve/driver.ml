(* One face over the single-domain and sharded streams, so the server,
   the CLI, and the bench write their feed / checkpoint / finish plumbing
   once.  [config.shards] picks the implementation. *)

type t = {
  shards : int;
  feed : Logsys.Record.t array -> unit;
  feed_arena : Logsys.Arena.slice -> unit;
  finish : unit -> Refill.Stream.summary;
  summary : unit -> Refill.Stream.summary;
  processed : unit -> int;
  checkpoint_file : string -> (unit, Refill.Error.t) result;
}

let of_single s =
  {
    shards = 1;
    feed = Refill.Stream.feed s;
    feed_arena = Refill.Stream.feed_arena s;
    finish = (fun () -> Refill.Stream.finish s);
    summary = (fun () -> Refill.Stream.summary s);
    processed = (fun () -> Refill.Stream.processed s);
    checkpoint_file = Refill.Stream.checkpoint_file s;
  }

let of_sharded ~shards s =
  {
    shards;
    feed = Refill.Stream.Sharded.feed s;
    (* The shard router takes records; materialize the slice.  Output is
       unchanged (the router skips negative nodes itself). *)
    feed_arena =
      (fun sl ->
        Refill.Stream.Sharded.feed s (Logsys.Arena.slice_records sl));
    finish = (fun () -> Refill.Stream.Sharded.finish s);
    summary = (fun () -> Refill.Stream.Sharded.summary s);
    processed = (fun () -> Refill.Stream.Sharded.processed s);
    checkpoint_file = Refill.Stream.Sharded.checkpoint_file s;
  }

let create ?(config = Refill.Config.default) ~sink ~emit () =
  if config.shards > 1 then
    of_sharded ~shards:config.shards
      (Refill.Stream.Sharded.create ~config ~sink ~emit ())
  else of_single (Refill.Stream.create ~config ~sink ~emit ())

let resume_file ?(config = Refill.Config.default) path ~sink ~emit =
  if config.shards > 1 then
    Result.map
      (of_sharded ~shards:config.shards)
      (Refill.Stream.Sharded.resume_file ~config path ~sink ~emit)
  else
    Result.map of_single (Refill.Stream.resume_file ~config path ~sink ~emit)

(** The bounded FIFO between connection threads and the single ingest
    thread that owns the reconstruction stream.

    Queue order is global stream order — every record reaches the stream
    through this FIFO, so the position a segment takes here is the
    position its records get.  Capacity bounds [Segment] items only:
    {!push_segment} blocks while the queue is full (that blocking is the
    server's backpressure — the caller stops reading its socket) and
    counts one {!Telemetry.backpressure_stalls_total} per stall episode.
    [Tick] / [Stop] control items bypass the bound so shutdown and timers
    cannot be wedged behind a full queue. *)

type segment = {
  sg_slice : Logsys.Arena.slice;
  sg_conn : int;  (** Connection id, for logging. *)
  sg_consumed : unit -> unit;
      (** Invoked by the consumer after the slice is fed to the stream;
          releases the producing connection's arena slot. *)
}

type item = Segment of segment | Tick | Stop

type t

val create : capacity:int -> t
(** [capacity] ≥ 1, in segments.  Bounded in-flight bytes follow as
    [capacity × max_frame]. *)

val push_segment : t -> segment -> unit
(** Blocks while [capacity] segments are queued. *)

val push_ctrl : t -> item -> unit
(** [Tick] or [Stop] only; never blocks. *)

val pop : t -> item
(** Blocks while the queue is empty. *)

val pop_opt : t -> item option
(** Non-blocking pop (drain loops). *)

val queued_segments : t -> int

module Obs = Refill_obs

(* The `refill serve` daemon: a TCP listener feeding one reconstruction
   stream.

   Threading model — one stream, many sockets:

   - one accept thread per listener (wire + optional /metrics HTTP);
   - one thread per wire connection (handshake, frame decode, ack);
   - ONE ingest thread that owns the {!Driver} and pops the shared
     bounded queue: all feeding, emission, checkpointing, and the final
     finish happen here, so the stream itself never needs a lock and
     global record order is exactly queue order;
   - one timer thread that turns wall-clock into queue [Tick]s (periodic
     checkpoints) and polls the stop flag (OCaml has no timed condition
     wait, and signal handlers must not take locks — {!request_stop} only
     flips an atomic; the timer does the teardown).

   Shutdown (signal or {!stop}) is checkpoint-and-exit: close the
   listener, shut down every live connection socket, then drain — every
   segment already acked is in the queue and is fed before the final
   checkpoint, so an acked record is never lost.  With a checkpoint path
   configured the frontier is left open for a byte-identical resume;
   without one the frontier is flushed ([finish]) so the emit stream
   terminates like an offline run. *)

type config = {
  port : int;  (** 0 picks an ephemeral port (tests). *)
  http_port : int option;  (** [/metrics] endpoint; [Some 0] ephemeral. *)
  checkpoint : string option;
  checkpoint_interval : float;  (** Seconds between periodic checkpoints. *)
  read_timeout : float;
  max_frame : int;
  queue_capacity : int;
  arena_slots : int;
  stream : Refill.Config.t;
  sink : int;
  emit : Emit.sink;
  on_segment : (unit -> unit) option;
}

let default_config =
  {
    port = 0;
    http_port = None;
    checkpoint = None;
    checkpoint_interval = 30.0;
    read_timeout = 30.0;
    max_frame = Wire.default_max_frame;
    queue_capacity = 64;
    arena_slots = 4;
    stream = Refill.Config.default;
    sink = 0;
    emit = Emit.null;
    on_segment = None;
  }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  lport : int;
  http : Http.t option;
  queue : Ingest.t;
  stop_flag : bool Atomic.t;
  stopping : bool Atomic.t;  (** Teardown already initiated. *)
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable live_conns : int;
  conns_mu : Mutex.t;
  mutable next_conn_id : int;
  mutable final_summary : Refill.Stream.summary option;
  mutable ingest_error : exn option;
  (* Filled right after construction (the threads need [t]); dummies
     until then. *)
  mutable ingest_thread : Thread.t;
  mutable timer_thread : Thread.t;
  mutable accept_thread : Thread.t;
}

let port t = t.lport
let http_port t = Option.map Http.port t.http

(* -- connection registry ----------------------------------------------------- *)

let conn_register t fd =
  Mutex.protect t.conns_mu (fun () ->
      let id = t.next_conn_id in
      t.next_conn_id <- id + 1;
      Hashtbl.replace t.conns id fd;
      t.live_conns <- t.live_conns + 1;
      id)

let conn_forget t id =
  Mutex.protect t.conns_mu (fun () ->
      Hashtbl.remove t.conns id;
      t.live_conns <- t.live_conns - 1);
  (* During shutdown the ingest drain loop may be blocked waiting for
     this connection's last push; wake it so it re-checks liveness.
     (Never posted while running — a Tick there means "checkpoint".) *)
  if Atomic.get t.stopping then Ingest.push_ctrl t.queue Ingest.Tick

let shutdown_conns t =
  Mutex.protect t.conns_mu (fun () ->
      Hashtbl.iter
        (fun _ fd ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
        t.conns)

(* -- threads ----------------------------------------------------------------- *)

let accept_loop t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        if Atomic.get t.stop_flag then begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          continue := false
        end
        else begin
          let id = conn_register t fd in
          let (_ : Thread.t) =
            Thread.create
              (fun () ->
                Fun.protect
                  ~finally:(fun () -> conn_forget t id)
                  (fun () ->
                    let (_ : Conn.outcome) =
                      Conn.handle ~id ~fd ~queue:t.queue
                        ~max_frame:t.cfg.max_frame
                        ~read_timeout:t.cfg.read_timeout
                        ~arena_slots:t.cfg.arena_slots
                    in
                    ()))
              ()
          in
          ()
        end
    | exception Unix.Unix_error _ -> continue := false
  done

(* Closing an fd does not wake a thread already blocked in accept(2);
   shutdown usually does on Linux, and the self-connect covers platforms
   where it does not.  The accept loop sees stop_flag set and exits
   either way. *)
let wake_listener t =
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ -> ());
  (match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, t.lport))
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ()));
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

(* The timer thread is the only place wall-clock enters the server: it
   converts elapsed time into queue ticks and executes the stop request
   the signal handler could only flag. *)
let timer_loop t =
  let last_tick = ref (Unix.gettimeofday ()) in
  while not (Atomic.get t.stopping) do
    Thread.delay 0.05;
    if Atomic.get t.stop_flag && not (Atomic.exchange t.stopping true) then begin
      wake_listener t;
      shutdown_conns t;
      Ingest.push_ctrl t.queue Ingest.Stop
    end
    else if
      t.cfg.checkpoint <> None
      && Unix.gettimeofday () -. !last_tick >= t.cfg.checkpoint_interval
    then begin
      last_tick := Unix.gettimeofday ();
      Ingest.push_ctrl t.queue Ingest.Tick
    end
  done

let write_checkpoint (driver : Driver.t) path =
  let t0 = Unix.gettimeofday () in
  (match driver.checkpoint_file path with
  | Ok () -> Obs.Log.info "serve: checkpoint written to %s" path
  | Error e ->
      Obs.Log.info "serve: checkpoint failed: %s" (Refill.Error.message e));
  Obs.Metrics.Histogram.observe Telemetry.checkpoint_seconds
    (Unix.gettimeofday () -. t0)

let feed_segment t (driver : Driver.t) (sg : Ingest.segment) =
  Option.iter (fun f -> f ()) t.cfg.on_segment;
  driver.feed_arena sg.sg_slice;
  sg.sg_consumed ()

let ingest_loop t (driver : Driver.t) =
  let running = ref true in
  while !running do
    match Ingest.pop t.queue with
    | Ingest.Segment sg -> feed_segment t driver sg
    | Ingest.Tick ->
        Option.iter (fun p -> write_checkpoint driver p) t.cfg.checkpoint
    | Ingest.Stop -> running := false
  done;
  (* Drain: connections may still be completing their final push.  Every
     conn exit posts a Tick, so a blocking pop here always wakes; loop
     until no connection is live and the queue is empty.

     Liveness MUST be read before the queue is checked: a connection only
     leaves the registry after its final push (and ack), so observing
     live = 0 and then an empty queue proves no acked segment is still in
     flight.  The reverse order races — between an empty pop and the
     liveness read, a connection could push its last segment, ack it, and
     exit, and the acked segment would be dropped from the final
     checkpoint. *)
  let drained = ref false in
  while not !drained do
    let live = Mutex.protect t.conns_mu (fun () -> t.live_conns) in
    match Ingest.pop_opt t.queue with
    | Some (Ingest.Segment sg) -> feed_segment t driver sg
    | Some (Ingest.Tick | Ingest.Stop) -> ()
    | None ->
        if live = 0 then drained := true
        else begin
          match Ingest.pop t.queue with
          | Ingest.Segment sg -> feed_segment t driver sg
          | Ingest.Tick | Ingest.Stop -> ()
        end
  done;
  match t.cfg.checkpoint with
  | Some path ->
      write_checkpoint driver path;
      t.final_summary <- Some (driver.summary ())
  | None -> t.final_summary <- Some (driver.finish ())

(* -- lifecycle ---------------------------------------------------------------- *)

let listen_on port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> assert false
    in
    (fd, bound)
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let start cfg =
  (* A peer vanishing mid-write — a feeder gone before its ack, an emit
     subscriber that hung up, a curl that abandoned /metrics, or our own
     shutdown_conns racing a conn thread's last ack — must surface as
     EPIPE on that write (handled per connection / per subscriber), not
     as a SIGPIPE that kills the whole daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let emit e = Emit.emit_to cfg.emit e in
  let driver_r =
    match cfg.checkpoint with
    | Some path when Sys.file_exists path ->
        Result.map
          (fun d ->
            Obs.Log.info "serve: resumed from %s at record %d" path
              (d.Driver.processed ());
            d)
          (Driver.resume_file ~config:cfg.stream path ~sink:cfg.sink ~emit)
    | _ -> Ok (Driver.create ~config:cfg.stream ~sink:cfg.sink ~emit ())
  in
  match driver_r with
  | Error e -> Error e
  | Ok driver -> (
      match listen_on cfg.port with
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Refill.Error.Io
               {
                 path = Printf.sprintf "tcp://127.0.0.1:%d" cfg.port;
                 message = Unix.error_message e;
               })
      | listen_fd, lport -> (
          (* A busy --http-port must fail like a busy wire port: an
             [Error], with the already-bound wire listener closed, not an
             exception leaking the fd. *)
          let http_r =
            match cfg.http_port with
            | None -> Ok None
            | Some p -> (
                match Http.start ~port:p ~routes:(Http.metrics_routes ()) with
                | h -> Ok (Some h)
                | exception Unix.Unix_error (e, _, _) ->
                    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
                    Error
                      (Refill.Error.Io
                         {
                           path = Printf.sprintf "http://127.0.0.1:%d" p;
                           message = Unix.error_message e;
                         }))
          in
          match http_r with
          | Error e -> Error e
          | Ok http ->
          let queue = Ingest.create ~capacity:cfg.queue_capacity in
          let t =
            {
              cfg;
              listen_fd;
              lport;
              http;
              queue;
              stop_flag = Atomic.make false;
              stopping = Atomic.make false;
              conns = Hashtbl.create 16;
              live_conns = 0;
              conns_mu = Mutex.create ();
              next_conn_id = 0;
              final_summary = None;
              ingest_error = None;
              ingest_thread = Thread.self ();
              timer_thread = Thread.self ();
              accept_thread = Thread.self ();
            }
          in
          t.ingest_thread <-
            Thread.create
              (fun () ->
                try ingest_loop t driver
                with e ->
                  t.ingest_error <- Some e;
                  (* Let the timer tear down the listener and sockets so
                     [wait] can join the other threads and re-raise. *)
                  Atomic.set t.stop_flag true)
              ();
          t.timer_thread <- Thread.create (fun () -> timer_loop t) ();
          t.accept_thread <- Thread.create (fun () -> accept_loop t) ();
          Obs.Log.info "serve: listening on 127.0.0.1:%d (%d shard%s)" lport
            driver.Driver.shards
            (if driver.Driver.shards = 1 then "" else "s");
          Ok t))

let request_stop t = Atomic.set t.stop_flag true

let wait t =
  Thread.join t.ingest_thread;
  Thread.join t.timer_thread;
  Thread.join t.accept_thread;
  Option.iter Http.stop t.http;
  t.cfg.emit.Emit.close ();
  match (t.ingest_error, t.final_summary) with
  | Some e, _ -> raise e
  | None, Some s -> s
  | None, None -> assert false

let stop t =
  request_stop t;
  wait t

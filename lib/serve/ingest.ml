module Obs = Refill_obs

(* The bounded hand-off between connection threads and the single ingest
   thread that owns the stream.

   Everything that reaches the reconstruction stream flows through this
   one FIFO, so queue order *is* global stream order: a connection's ack
   (sent right after its push returns) certifies that its records have
   their global position, which is what lets lockstep clients impose a
   deterministic total order across connections.

   Capacity bounds segments, not control items: [Segment] pushes block
   when [capacity] segments are in flight (the caller stops reading its
   socket — that is the backpressure), while [Tick] and [Stop] always
   land immediately so timers and shutdown can never be wedged behind a
   full queue. *)

type segment = {
  sg_slice : Logsys.Arena.slice;
  sg_conn : int;  (** Connection id, for logging. *)
  sg_consumed : unit -> unit;
      (** Called by the ingest thread once the slice has been fed —
          releases the connection's arena slot for reuse. *)
}

type item = Segment of segment | Tick | Stop

type t = {
  capacity : int;
  q : item Queue.t;
  mutable segments : int;  (** [Segment] items currently queued. *)
  mu : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ingest.create: capacity < 1";
  {
    capacity;
    q = Queue.create ();
    segments = 0;
    mu = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
  }

let push_segment t sg =
  Mutex.protect t.mu (fun () ->
      if t.segments >= t.capacity then begin
        (* One stall per episode, not per wakeup. *)
        Obs.Metrics.Counter.inc Telemetry.backpressure_stalls_total;
        while t.segments >= t.capacity do
          Condition.wait t.not_full t.mu
        done
      end;
      Queue.push (Segment sg) t.q;
      t.segments <- t.segments + 1;
      Condition.signal t.not_empty)

let push_ctrl t item =
  (match item with
  | Segment _ -> invalid_arg "Ingest.push_ctrl: use push_segment"
  | Tick | Stop -> ());
  Mutex.protect t.mu (fun () ->
      Queue.push item t.q;
      Condition.signal t.not_empty)

let pop t =
  Mutex.protect t.mu (fun () ->
      while Queue.is_empty t.q do
        Condition.wait t.not_empty t.mu
      done;
      let item = Queue.pop t.q in
      (match item with
      | Segment _ ->
          t.segments <- t.segments - 1;
          Condition.signal t.not_full
      | Tick | Stop -> ());
      item)

let pop_opt t =
  Mutex.protect t.mu (fun () ->
      match Queue.pop t.q with
      | exception Queue.Empty -> None
      | item ->
          (match item with
          | Segment _ ->
              t.segments <- t.segments - 1;
              Condition.signal t.not_full
          | Tick | Stop -> ());
          Some item)

let queued_segments t = Mutex.protect t.mu (fun () -> t.segments)

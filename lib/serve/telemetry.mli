(** The server's metric instruments ([refill_serve_*]), declared once in
    the process-wide registry ({!Refill_obs.Metrics.default_registry}) so the
    [/metrics] endpoint and the end-of-run metrics dump both see them. *)

val conns_handshaking : Refill_obs.Metrics.Gauge.t
val conns_streaming : Refill_obs.Metrics.Gauge.t
val conns_closed : Refill_obs.Metrics.Gauge.t
val conns_rejected : Refill_obs.Metrics.Gauge.t
val frames_total : Refill_obs.Metrics.Counter.t
val records_total : Refill_obs.Metrics.Counter.t
val bytes_total : Refill_obs.Metrics.Counter.t
val backpressure_stalls_total : Refill_obs.Metrics.Counter.t
val checkpoint_seconds : Refill_obs.Metrics.Histogram.t

val enter_handshaking : unit -> unit

val handshake_ok : unit -> unit
(** Handshaking → streaming. *)

val finish : rejected:bool -> was_streaming:bool -> unit
(** Terminal transition: the connection leaves its live state gauge and
    lands on [closed] (orderly) or [rejected] (protocol violation or
    timeout). *)

module Obs = Refill_obs

(* The server's observability surface, declared once.  Instruments are
   interned by (name, labels) in the process-wide registry, so these are
   plain top-level values; the /metrics endpoint serves the same
   registry the reconstruction pipeline already populates.

   Threading note: with [threads.posix] every OCaml thread shares the
   domain's runtime lock and a counter bump is a single non-allocating
   mutable update, so connection threads can hit these without extra
   locking. *)

let conn_gauge state =
  Obs.Metrics.Gauge.v
    ~help:"Server connections by lifecycle state"
    ~labels:[ ("state", state) ]
    "refill_serve_connections"

let conns_handshaking = conn_gauge "handshaking"
let conns_streaming = conn_gauge "streaming"
let conns_closed = conn_gauge "closed"
let conns_rejected = conn_gauge "rejected"

let frames_total =
  Obs.Metrics.Counter.v ~help:"Data frames accepted over refill-wire"
    "refill_serve_frames_total"

let records_total =
  Obs.Metrics.Counter.v ~help:"Records accepted over refill-wire"
    "refill_serve_records_total"

let bytes_total =
  Obs.Metrics.Counter.v ~help:"Frame payload bytes accepted over refill-wire"
    "refill_serve_bytes_total"

let backpressure_stalls_total =
  Obs.Metrics.Counter.v
    ~help:
      "Times a connection blocked on a full ingest queue (socket reads \
       paused until the stream drained)"
    "refill_serve_backpressure_stalls_total"

let checkpoint_seconds =
  Obs.Metrics.Histogram.v ~help:"Wall time of periodic server checkpoints"
    "refill_serve_checkpoint_seconds"

(* Lifecycle transitions: each connection occupies exactly one state
   gauge at a time, ending in closed or rejected (both terminal counts
   only ever grow). *)
let enter_handshaking () = Obs.Metrics.Gauge.add conns_handshaking 1.0

let handshake_ok () =
  Obs.Metrics.Gauge.add conns_handshaking (-1.0);
  Obs.Metrics.Gauge.add conns_streaming 1.0

let finish ~rejected ~was_streaming =
  Obs.Metrics.Gauge.add
    (if was_streaming then conns_streaming else conns_handshaking)
    (-1.0);
  Obs.Metrics.Gauge.add (if rejected then conns_rejected else conns_closed) 1.0

(** One face over {!Refill.Stream} and {!Refill.Stream.Sharded}, chosen
    by [config.shards] — the feed / summary / checkpoint plumbing the
    server, the CLI, and the bench share.  Emission order is
    byte-identical across the two implementations for any shard count
    (pinned by the stream test suite), so consumers never care which one
    they hold. *)

type t = {
  shards : int;
  feed : Logsys.Record.t array -> unit;
  feed_arena : Logsys.Arena.slice -> unit;
  finish : unit -> Refill.Stream.summary;
  summary : unit -> Refill.Stream.summary;
  processed : unit -> int;
  checkpoint_file : string -> (unit, Refill.Error.t) result;
}

val create :
  ?config:Refill.Config.t ->
  sink:int ->
  emit:(Refill.Stream.emitted -> unit) ->
  unit ->
  t

val resume_file :
  ?config:Refill.Config.t ->
  string ->
  sink:int ->
  emit:(Refill.Stream.emitted -> unit) ->
  (t, Refill.Error.t) result
(** Resume from a v1/v2 checkpoint into [config.shards] workers; same
    validation and flag-conflict rules as {!Refill.Stream.resume}. *)

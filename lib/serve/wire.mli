(** refill-wire v1: the framed record-batch protocol `refill serve`
    speaks.

    Prologue: the client sends ["refill-wire v1\n"]; the server answers
    ["refill-wire v1 ok max-frame=<N>\n"] (negotiating the maximum frame
    payload).  Then both directions carry length-prefixed frames: a
    4-byte big-endian payload length, one type byte, and the payload.

    Client frame types: ['D'] — a record batch
    ({!Logsys.Codec.encode_segment} bytes); ['E'] — end of stream (empty
    payload).  Server frames: ['A'] — an {!ack}.  Every accepted ['D']
    (and the final ['E']) is acked; the ack means the records have been
    assigned their global stream position, so clients that need a total
    cross-connection order can serialize on acks.

    All protocol violations raise {!Protocol_error}; receive timeouts and
    socket failures surface as [Unix.Unix_error]. *)

exception Protocol_error of string

val proto_fail : ('a, unit, string, 'b) format4 -> 'a
(** [Printf.ksprintf]-style formatter raising {!Protocol_error}. *)

val magic : string
(** ["refill-wire v1"]. *)

val frame_data : char
val frame_end : char
val frame_ack : char

val default_max_frame : int
(** 1 MiB. *)

val header_size : int
(** Frame header bytes (4 length + 1 type). *)

val write_all : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** Write exactly [len] bytes (loops over short writes). *)

val write_string : Unix.file_descr -> string -> unit

val client_greeting : string

val server_greeting : max_frame:int -> string

val send_client_greeting : Unix.file_descr -> unit

val expect_client_greeting : Unix.file_descr -> unit
(** @raise Protocol_error on a bad magic line. *)

val send_server_greeting : Unix.file_descr -> max_frame:int -> unit

val expect_server_greeting : Unix.file_descr -> int
(** Returns the server's negotiated max frame payload size. *)

val write_frame : Unix.file_descr -> typ:char -> Bytes.t -> unit

val read_frame : Unix.file_descr -> max_payload:int -> char * Bytes.t
(** The length is validated against [max_payload] {e before} any payload
    byte is read or allocated.
    @raise Protocol_error on EOF mid-frame or an out-of-range length. *)

type ack = {
  frames : int;  (** Data frames accepted on this connection so far. *)
  records : int;  (** Records accepted on this connection so far. *)
}

val write_ack : Unix.file_descr -> ack -> unit

val read_ack : Unix.file_descr -> ack
(** @raise Protocol_error when the next frame is not an ack. *)

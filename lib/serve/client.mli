(** The feeding side of refill-wire — what `refill feed`, the tests,
    and the serve bench use to push records into a live server.

    {!send} is lockstep (frame out, ack in): once it returns, the
    records hold their global stream position, so clients taking turns
    impose an exact cross-connection order.  {!send_nowait} pipelines
    frames and collects acks later — the throughput mode, and the one
    that exercises server backpressure.  Batches whose encoding exceeds
    the negotiated frame size are split transparently. *)

type t

exception Record_too_large of { encoded : int; max_frame : int }
(** A single record's encoding exceeds the negotiated frame limit, so no
    amount of batch splitting can make it sendable.  Raised by {!send} /
    {!send_nowait} {e before} anything hits the wire — the server would
    be guaranteed to reject the frame and kill the connection. *)

type stats = {
  frames : int;
  records : int;
  bytes : int;  (** Frame payload bytes sent. *)
  rtt_p50 : float;
  rtt_p99 : float;  (** Lockstep ack round-trip, seconds; 0. if none. *)
}

val connect : ?host:Unix.inet_addr -> port:int -> unit -> t
(** TCP connect + refill-wire handshake.
    @raise Wire.Protocol_error when the server refuses the handshake. *)

val max_frame : t -> int
(** The server's negotiated frame-payload limit. *)

val send : t -> Logsys.Record.t array -> Wire.ack
(** Lockstep send; returns the server's cumulative ack.
    @raise Record_too_large before sending anything when one record
    cannot fit the negotiated frame. *)

val send_nowait : t -> Logsys.Record.t array -> unit
(** @raise Record_too_large as {!send}. *)

val drain_acks : t -> Wire.ack option
(** Collect every outstanding pipelined ack; [None] if none were
    pending. *)

val finish : t -> Wire.ack
(** Drain pending acks, send end-of-stream, await the final ack, and
    close the socket. *)

val close : t -> unit
(** Abandon the connection without end-of-stream (tests). *)

val stats : t -> stats

val feed_file : ?chunk:int -> ?lockstep:bool -> t -> string -> unit
(** Send a simulator dump's records in file order, [chunk] (default 512)
    records per batch; [lockstep] (default true) picks {!send} vs
    {!send_nowait}. *)

(** A minimal HTTP/1.0 responder for the server's [/metrics] endpoint —
    a scrape target for curl and Prometheus, not a web server.  Each
    request gets a short-lived thread and the connection is closed after
    one response; unknown paths get 404, non-GET methods 405. *)

type t

val start : port:int -> routes:(string * (unit -> string * string)) list -> t
(** Listen on loopback [port] ([0] picks an ephemeral port — read it
    back with {!port}).  Each route maps an exact path to a thunk
    returning [(content_type, body)], evaluated per request. *)

val port : t -> int

val stop : t -> unit
(** Close the listener; in-flight request threads finish on their own. *)

val metrics_routes :
  ?registry:Refill_obs.Metrics.registry -> unit -> (string * (unit -> string * string)) list
(** The standard route table: [/metrics] serving
    {!Refill_obs.Metrics.dump_prometheus}. *)

(** One ingesting server connection: Handshaking → Streaming →
    Closed/Rejected.

    Runs in the connection's own thread.  Accepted data frames are
    decoded into a private ring of [arena_slots] arenas and pushed onto
    the shared ingest queue; the ack is sent when the push returns (the
    records have their global stream position).  Protocol violations and
    socket failures — including a receive timeout — terminate only this
    connection. *)

type outcome = Drained  (** Client sent end-of-stream. *) | Rejected

val handle :
  id:int ->
  fd:Unix.file_descr ->
  queue:Ingest.t ->
  max_frame:int ->
  read_timeout:float ->
  arena_slots:int ->
  outcome
(** Drive the connection to completion; closes [fd], maintains the
    {!Telemetry} connection gauges and frame/record/byte counters.
    [read_timeout] ≤ 0 disables the receive timeout. *)

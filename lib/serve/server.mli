(** The `refill serve` daemon: a TCP listener accepting refill-wire
    connections and feeding one reconstruction stream
    (single or sharded per [stream.shards], via {!Driver}).

    One ingest thread owns the stream; connection threads hand decoded
    segments over a bounded queue (queue order = global record order),
    and an ack on the wire certifies the records' stream position.
    Shutdown — {!stop}, or {!request_stop} from a signal handler — is
    checkpoint-and-exit: acked segments are always drained into the
    stream before the final checkpoint, so resume is byte-identical. *)

type config = {
  port : int;  (** 0 picks an ephemeral port (tests). *)
  http_port : int option;
      (** Start a [/metrics] HTTP endpoint; [Some 0] ephemeral. *)
  checkpoint : string option;
      (** Checkpoint path: resumed from when present at startup, written
          periodically and at shutdown (frontier left open).  [None]
          means shutdown flushes the frontier like an offline run. *)
  checkpoint_interval : float;  (** Seconds between periodic checkpoints. *)
  read_timeout : float;
      (** Per-connection receive timeout in seconds; ≤ 0 disables. *)
  max_frame : int;  (** Negotiated maximum frame payload bytes. *)
  queue_capacity : int;
      (** Ingest queue bound, in segments; in-flight wire bytes are
          bounded by [queue_capacity × max_frame] plus per-connection
          arena rings. *)
  arena_slots : int;  (** Decoded-segment ring size per connection. *)
  stream : Refill.Config.t;
  sink : int;  (** The topology's backbone sink node. *)
  emit : Emit.sink;  (** Flow outcomes, written from the ingest thread. *)
  on_segment : (unit -> unit) option;
      (** Test hook: runs in the ingest thread before each segment is
          fed (throttling it exercises backpressure). *)
}

val default_config : config
(** Ephemeral port, no HTTP, no checkpoint, 30 s timeout/interval, 1 MiB
    frames, 64-segment queue, 4 arena slots, [Refill.Config.default],
    sink 0, null emit. *)

type t

val start : config -> (t, Refill.Error.t) result
(** Bind, resume from [checkpoint] if the file exists, and spin up the
    accept / ingest / timer threads.  [Error] on a bind failure of either
    listener ([Io]) or an unusable checkpoint ([Bad_checkpoint]).

    Sets the process SIGPIPE disposition to ignore: a peer that vanishes
    mid-write must surface as [EPIPE] on that connection, not kill the
    daemon. *)

val port : t -> int
(** The bound wire port (useful with [port = 0]). *)

val http_port : t -> int option

val request_stop : t -> unit
(** Flag the server to stop; safe to call from a signal handler (only
    flips an atomic — the timer thread performs the teardown). *)

val wait : t -> Refill.Stream.summary
(** Block until the server has fully stopped; joins every thread, closes
    the emit sink, and returns the final stream summary.  Re-raises an
    ingest-thread failure. *)

val stop : t -> Refill.Stream.summary
(** [request_stop] + [wait]. *)

(* The feeding side of refill-wire: what `refill feed`, the integration
   tests, and the serve bench use to push a record stream into a live
   server.

   Two sending modes with different guarantees:

   - [send] is lockstep: frame out, ack in, ack returned.  After it
     returns, the records hold their global stream position — a group of
     clients that take turns calling [send] imposes an exact total order
     across connections (what the byte-identity test does).
   - [send_nowait] pipelines: frames are written back to back and acks
     collected later ([drain_acks] / [finish]).  Order within the
     connection still holds; order across connections does not.  This is
     the throughput mode, and the one that exercises the server's
     backpressure. *)

type t = {
  fd : Unix.file_descr;
  max_frame : int;
  mutable frames_sent : int;
  mutable records_sent : int;
  mutable bytes_sent : int;
  mutable acks_pending : int;
  mutable rtts : float array;  (** Lockstep round-trips, seconds. *)
  mutable n_rtts : int;
}

type stats = {
  frames : int;
  records : int;
  bytes : int;
  rtt_p50 : float;
  rtt_p99 : float;  (** 0. when no lockstep sends were timed. *)
}

let connect ?(host = Unix.inet_addr_loopback) ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  Wire.send_client_greeting fd;
  let max_frame = Wire.expect_server_greeting fd in
  {
    fd;
    max_frame;
    frames_sent = 0;
    records_sent = 0;
    bytes_sent = 0;
    acks_pending = 0;
    rtts = Array.make 256 0.0;
    n_rtts = 0;
  }

let max_frame t = t.max_frame

let push_rtt t dt =
  if t.n_rtts = Array.length t.rtts then begin
    let bigger = Array.make (2 * t.n_rtts) 0.0 in
    Array.blit t.rtts 0 bigger 0 t.n_rtts;
    t.rtts <- bigger
  end;
  t.rtts.(t.n_rtts) <- dt;
  t.n_rtts <- t.n_rtts + 1

let account t ~payload_len ~records =
  t.frames_sent <- t.frames_sent + 1;
  t.records_sent <- t.records_sent + records;
  t.bytes_sent <- t.bytes_sent + payload_len

exception Record_too_large of { encoded : int; max_frame : int }

let () =
  Printexc.register_printer (function
    | Record_too_large { encoded; max_frame } ->
        Some
          (Printf.sprintf
             "Refill_serve.Client.Record_too_large: a single record encodes \
              to %d bytes, above the negotiated max-frame of %d"
             encoded max_frame)
    | _ -> None)

(* Split batches whose encoding exceeds the negotiated frame size; the
   server sees the same record sequence either way.  A single record that
   cannot fit is a client-side error: sending it would only make the
   server kill the connection, surfacing as a baffling EOF on the next
   ack read. *)
let rec each_frame t records k =
  let payload = Logsys.Codec.encode_segment records in
  if Bytes.length payload <= t.max_frame then
    k ~payload ~records:(Array.length records)
  else if Array.length records <= 1 then
    raise
      (Record_too_large
         { encoded = Bytes.length payload; max_frame = t.max_frame })
  else begin
    let half = Array.length records / 2 in
    each_frame t (Array.sub records 0 half) k;
    each_frame t (Array.sub records half (Array.length records - half)) k
  end

let send t records =
  let last = ref { Wire.frames = t.frames_sent; records = t.records_sent } in
  each_frame t records (fun ~payload ~records ->
      let t0 = Unix.gettimeofday () in
      Wire.write_frame t.fd ~typ:Wire.frame_data payload;
      last := Wire.read_ack t.fd;
      push_rtt t (Unix.gettimeofday () -. t0);
      account t ~payload_len:(Bytes.length payload) ~records);
  !last

let send_nowait t records =
  each_frame t records (fun ~payload ~records ->
      Wire.write_frame t.fd ~typ:Wire.frame_data payload;
      t.acks_pending <- t.acks_pending + 1;
      account t ~payload_len:(Bytes.length payload) ~records)

let drain_acks t =
  let last = ref None in
  while t.acks_pending > 0 do
    last := Some (Wire.read_ack t.fd);
    t.acks_pending <- t.acks_pending - 1
  done;
  !last

let finish t =
  ignore (drain_acks t);
  Wire.write_frame t.fd ~typ:Wire.frame_end (Bytes.create 0);
  let ack = Wire.read_ack t.fd in
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  ack

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let stats t =
  let rtts = Array.sub t.rtts 0 t.n_rtts in
  Array.sort compare rtts;
  {
    frames = t.frames_sent;
    records = t.records_sent;
    bytes = t.bytes_sent;
    rtt_p50 = percentile rtts 0.50;
    rtt_p99 = percentile rtts 0.99;
  }

(* Feed a simulator dump in file order, [chunk] records per send.  The
   dump's own sink/n_nodes header is the feeder's concern only as far as
   skipping it — topology parameters live server-side. *)
let feed_file ?(chunk = 512) ?(lockstep = true) t path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let reader = Logsys.Log_io.Seg.of_channel ic in
  let rec loop () =
    match Logsys.Log_io.Seg.next reader ~max_records:chunk with
    | None -> ()
    | Some seg ->
        if lockstep then ignore (send t seg) else send_nowait t seg;
        loop ()
  in
  loop ()

(* refill-wire v1: the framing both ends of a `refill serve` connection
   speak.

   Connection prologue (both lines ASCII, newline-terminated):

     client -> server   "refill-wire v1\n"
     server -> client   "refill-wire v1 ok max-frame=<N>\n"

   then length-prefixed frames in both directions:

     u32 big-endian payload length | u8 frame type | payload bytes

   Client frames: 'D' (payload = Codec.encode_segment bytes), 'E'
   (end-of-stream, empty payload).  Server frames: 'A' (ack: u64be frames
   accepted so far on this connection, u64be records accepted).  Every
   accepted 'D' and the final 'E' is acked; an ack means the records have
   been assigned their global stream position (enqueued for the shard
   router), so a client that wants a total cross-connection order can
   wait for the ack before the next sender proceeds.

   Anything that violates the protocol — bad magic, an unknown frame
   type, a length above the negotiated maximum, a payload that fails to
   decode — raises [Protocol_error]; the server kills that connection
   and keeps serving the rest. *)

let magic = "refill-wire v1"
let frame_data = 'D'
let frame_end = 'E'
let frame_ack = 'A'
let default_max_frame = 1 lsl 20
let header_size = 5

exception Protocol_error of string

let proto_fail fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

(* -- blocking fd helpers ---------------------------------------------------- *)

(* EOF mid-structure is a protocol violation (frames are atomic);
   [Unix_error] (including EAGAIN from a receive timeout) propagates to the
   connection driver, which maps it to a close reason. *)
let read_exact fd buf off len =
  let pos = ref off in
  let remaining = ref len in
  while !remaining > 0 do
    let n = Unix.read fd buf !pos !remaining in
    if n = 0 then proto_fail "unexpected EOF (%d bytes short)" !remaining;
    pos := !pos + n;
    remaining := !remaining - n
  done

let write_all fd buf off len =
  let pos = ref off in
  let remaining = ref len in
  while !remaining > 0 do
    let n = Unix.write fd buf !pos !remaining in
    pos := !pos + n;
    remaining := !remaining - n
  done

let write_string fd s = write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

(* One byte at a time is fine here: greetings are exchanged once per
   connection and must not read past their own newline (the first frame
   follows immediately). *)
let read_line_crude fd ~max =
  let buf = Buffer.create 32 in
  let one = Bytes.create 1 in
  let rec go () =
    read_exact fd one 0 1;
    match Bytes.get one 0 with
    | '\n' -> Buffer.contents buf
    | c ->
        if Buffer.length buf >= max then proto_fail "greeting line too long";
        Buffer.add_char buf c;
        go ()
  in
  go ()

(* -- prologue --------------------------------------------------------------- *)

let client_greeting = magic ^ "\n"

let server_greeting ~max_frame =
  Printf.sprintf "%s ok max-frame=%d\n" magic max_frame

let send_client_greeting fd = write_string fd client_greeting

let expect_client_greeting fd =
  let line = read_line_crude fd ~max:64 in
  if line <> magic then proto_fail "bad magic %S (want %S)" line magic

let send_server_greeting fd ~max_frame =
  write_string fd (server_greeting ~max_frame)

(* "refill-wire v1 ok max-frame=<N>" *)
let expect_server_greeting fd =
  let line = read_line_crude fd ~max:128 in
  match String.split_on_char ' ' line with
  | [ w1; w2; "ok"; kv ] when w1 ^ " " ^ w2 = magic -> (
      match String.split_on_char '=' kv with
      | [ "max-frame"; n ] -> (
          match int_of_string_opt n with
          | Some m when m > 0 -> m
          | _ -> proto_fail "bad max-frame in %S" line)
      | _ -> proto_fail "bad server greeting %S" line)
  | _ -> proto_fail "server refused: %S" line

(* -- frames ----------------------------------------------------------------- *)

let write_frame fd ~typ payload =
  let len = Bytes.length payload in
  let hdr = Bytes.create header_size in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  Bytes.set hdr 4 typ;
  write_all fd hdr 0 header_size;
  if len > 0 then write_all fd payload 0 len

(* Returns the frame type and payload.  The length is validated against
   [max_payload] before any payload byte is read, so an absurd header
   cannot make the server allocate or buffer unboundedly. *)
let read_frame fd ~max_payload =
  let hdr = Bytes.create header_size in
  read_exact fd hdr 0 header_size;
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  let typ = Bytes.get hdr 4 in
  if len < 0 || len > max_payload then
    proto_fail "frame length %d outside [0, %d]" len max_payload;
  let payload = Bytes.create len in
  if len > 0 then read_exact fd payload 0 len;
  (typ, payload)

(* -- acks ------------------------------------------------------------------- *)

type ack = { frames : int; records : int }

let write_ack fd a =
  let payload = Bytes.create 16 in
  Bytes.set_int64_be payload 0 (Int64.of_int a.frames);
  Bytes.set_int64_be payload 8 (Int64.of_int a.records);
  write_frame fd ~typ:frame_ack payload

let read_ack fd =
  match read_frame fd ~max_payload:16 with
  | t, payload when t = frame_ack && Bytes.length payload = 16 ->
      {
        frames = Int64.to_int (Bytes.get_int64_be payload 0);
        records = Int64.to_int (Bytes.get_int64_be payload 8);
      }
  | t, _ -> proto_fail "expected ack, got frame type %C" t

module Obs = Refill_obs

(* One ingesting connection: Handshaking → Streaming → Closed/Rejected.

   The connection thread owns the socket and a small ring of arenas.
   Each accepted data frame is decoded straight into a free arena slot
   ([Arena.decode_segment_into] — no per-record allocation), the slice is
   pushed onto the shared ingest queue, and the ack goes out as soon as
   the push returns: the ack certifies the records' global stream
   position (queue order), not that reconstruction has consumed them.
   Slot reuse waits for the ingest thread's consumed callback, so at most
   [arena_slots] decoded segments per connection are in flight beyond the
   queue bound.

   Failure containment: every protocol violation (bad magic, unknown
   frame type, oversized length, a payload [Codec] cannot decode) and
   every socket-level failure (EOF mid-frame, receive timeout) terminates
   *this* connection — logged, counted, fd closed — and nothing else. *)

type slot = { arena : Logsys.Arena.t; mutable in_flight : bool }

type ring = {
  slots : slot array;
  mutable next : int;
  mu : Mutex.t;
  freed : Condition.t;
}

let ring_create n =
  {
    slots =
      Array.init n (fun _ ->
          { arena = Logsys.Arena.create (); in_flight = false });
    next = 0;
    mu = Mutex.create ();
    freed = Condition.create ();
  }

(* Slots are claimed round-robin: waiting for [next] (rather than any
   free slot) keeps claim order = push order, which keeps this
   connection's segments in send order on the queue. *)
let ring_claim r =
  let s = r.slots.(r.next) in
  r.next <- (r.next + 1) mod Array.length r.slots;
  Mutex.protect r.mu (fun () ->
      while s.in_flight do
        Condition.wait r.freed r.mu
      done;
      s.in_flight <- true);
  Logsys.Arena.clear s.arena;
  s

let ring_release r s =
  Mutex.protect r.mu (fun () ->
      s.in_flight <- false;
      Condition.broadcast r.freed)

type outcome = Drained  (** Client sent end-of-stream. *) | Rejected

let reject_reason = function
  | Wire.Protocol_error m -> Some m
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Some "read timeout"
  | Unix.Unix_error (e, _, _) -> Some (Unix.error_message e)
  | Failure m -> Some ("undecodable segment: " ^ m)
  | _ -> None

let streaming_loop ~id ~fd ~queue ~max_frame ring =
  let frames = ref 0 in
  let records = ref 0 in
  let rec loop () =
    let typ, payload = Wire.read_frame fd ~max_payload:max_frame in
    if typ = Wire.frame_end then begin
      Wire.write_ack fd { Wire.frames = !frames; records = !records };
      Drained
    end
    else if typ = Wire.frame_data then begin
      let slot = ring_claim ring in
      let n =
        match Logsys.Arena.decode_segment_into slot.arena payload with
        | n -> n
        | exception e ->
            ring_release ring slot;
            raise e
      in
      Ingest.push_segment queue
        {
          Ingest.sg_slice = Logsys.Arena.slice_all slot.arena;
          sg_conn = id;
          sg_consumed = (fun () -> ring_release ring slot);
        };
      incr frames;
      records := !records + n;
      Obs.Metrics.Counter.inc Telemetry.frames_total;
      Obs.Metrics.Counter.add Telemetry.records_total n;
      Obs.Metrics.Counter.add Telemetry.bytes_total (Bytes.length payload);
      Wire.write_ack fd { Wire.frames = !frames; records = !records };
      loop ()
    end
    else Wire.proto_fail "unexpected frame type %C" typ
  in
  loop ()

let handle ~id ~fd ~queue ~max_frame ~read_timeout ~arena_slots =
  Telemetry.enter_handshaking ();
  let streaming = ref false in
  let outcome =
    match
      (* Acks are tiny; without NODELAY each one waits out the peer's
         delayed-ACK timer and lockstep clients crawl. *)
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      if read_timeout > 0.0 then
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_timeout;
      Wire.expect_client_greeting fd;
      Wire.send_server_greeting fd ~max_frame;
      Telemetry.handshake_ok ();
      streaming := true;
      streaming_loop ~id ~fd ~queue ~max_frame (ring_create arena_slots)
    with
    | outcome -> outcome
    | exception e -> (
        match reject_reason e with
        | Some reason ->
            Obs.Log.info "serve: conn %d rejected: %s" id reason;
            Rejected
        | None -> raise e)
  in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Telemetry.finish ~rejected:(outcome = Rejected) ~was_streaming:!streaming;
  outcome

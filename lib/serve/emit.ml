(* Flow-outcome emission: one stable text line per emitted flow, and the
   sinks that carry those lines (a file, or a publish socket that streams
   them to any number of subscribers).

   The line format deliberately contains no wall-clock material — only
   the outcome, the packet key, the classified cause, and the flow's own
   event rendering — so the byte stream produced by a live `refill
   serve` is comparable (diff-able) with an offline
   `reconstruct --stream --emit-file` over the same record sequence. *)

let outcome_char = function
  | Refill.Stream.Complete -> 'C'
  | Refill.Stream.Incomplete -> 'I'

let line (e : Refill.Stream.emitted) =
  let f = e.flow in
  let v = Refill.Classify.classify f in
  Printf.sprintf "%c %d %d %s | %s" (outcome_char e.outcome) f.origin f.seq
    (Logsys.Cause.name v.cause)
    (Refill.Flow.to_string f)

(* Provenance side-car: the packed ints, space-separated, in item order.
   Raw ints rather than the pretty rendering keep the line cheap and
   exactly invertible (Provenance.t is an immediate int). *)
let prov_line (f : Refill.Flow.t) =
  if Array.length f.prov = 0 then None
  else begin
    let b = Buffer.create (8 * Array.length f.prov) in
    Buffer.add_char b 'p';
    Array.iter
      (fun pv ->
        Buffer.add_char b ' ';
        Buffer.add_string b (string_of_int (pv : Refill.Provenance.t :> int)))
      f.prov;
    Some (Buffer.contents b)
  end

type sink = { write : string -> unit; close : unit -> unit }

let null = { write = ignore; close = ignore }

let to_file path =
  let oc = open_out path in
  {
    write =
      (fun l ->
        output_string oc l;
        output_char oc '\n');
    close = (fun () -> close_out oc);
  }

(* -- publish socket ---------------------------------------------------------

   A listener on [port]; every connected subscriber receives each line as
   it is written.  Subscribers are best-effort: a write failure (closed
   or stalled peer) drops that subscriber without disturbing the others
   or the server.  Lines written while nobody is connected are dropped —
   this is a tap, not a queue; durable capture is [to_file]. *)

type publisher = {
  listen_fd : Unix.file_descr;
  mutable subs : Unix.file_descr list;
  mutable stopped : bool;
  mu : Mutex.t;
}

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let publisher_accept_loop p =
  let continue = ref true in
  while !continue do
    match Unix.accept p.listen_fd with
    | fd, _ ->
        locked p.mu (fun () ->
            if p.stopped then begin
              (try Unix.close fd with Unix.Unix_error _ -> ());
              continue := false
            end
            else begin
              (* Non-blocking so a stalled subscriber surfaces as EAGAIN
                 on write (and is dropped) instead of wedging emission. *)
              Unix.set_nonblock fd;
              p.subs <- fd :: p.subs
            end)
    | exception Unix.Unix_error _ -> continue := false
  done

let publish ~port =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen listen_fd 16;
  let p = { listen_fd; subs = []; stopped = false; mu = Mutex.create () } in
  let _accepter : Thread.t = Thread.create publisher_accept_loop p in
  let write l =
    let payload = Bytes.unsafe_of_string (l ^ "\n") in
    locked p.mu (fun () ->
        p.subs <-
          List.filter
            (fun fd ->
              match Wire.write_all fd payload 0 (Bytes.length payload) with
              | () -> true
              | exception Unix.Unix_error _ ->
                  (try Unix.close fd with Unix.Unix_error _ -> ());
                  false)
            p.subs)
  in
  let close () =
    locked p.mu (fun () ->
        p.stopped <- true;
        List.iter
          (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          p.subs;
        p.subs <- []);
    (* Closing the listener wakes the accept loop with EBADF. *)
    try Unix.close p.listen_fd with Unix.Unix_error _ -> ()
  in
  { write; close }

let tee a b =
  {
    write =
      (fun l ->
        a.write l;
        b.write l);
    close =
      (fun () ->
        a.close ();
        b.close ());
  }

let emit_to sink (e : Refill.Stream.emitted) =
  sink.write (line e);
  Option.iter sink.write (prov_line e.flow)

(* Flow-outcome emission: one stable text line per emitted flow, and the
   sinks that carry those lines (a file, or a publish socket that streams
   them to any number of subscribers).

   The line format deliberately contains no wall-clock material — only
   the outcome, the packet key, the classified cause, and the flow's own
   event rendering — so the byte stream produced by a live `refill
   serve` is comparable (diff-able) with an offline
   `reconstruct --stream --emit-file` over the same record sequence. *)

let outcome_char = function
  | Refill.Stream.Complete -> 'C'
  | Refill.Stream.Incomplete -> 'I'

let line (e : Refill.Stream.emitted) =
  let f = e.flow in
  let v = Refill.Classify.classify f in
  Printf.sprintf "%c %d %d %s | %s" (outcome_char e.outcome) f.origin f.seq
    (Logsys.Cause.name v.cause)
    (Refill.Flow.to_string f)

(* Provenance side-car: the packed ints, space-separated, in item order.
   Raw ints rather than the pretty rendering keep the line cheap and
   exactly invertible (Provenance.t is an immediate int). *)
let prov_line (f : Refill.Flow.t) =
  if Array.length f.prov = 0 then None
  else begin
    let b = Buffer.create (8 * Array.length f.prov) in
    Buffer.add_char b 'p';
    Array.iter
      (fun pv ->
        Buffer.add_char b ' ';
        Buffer.add_string b (string_of_int (pv : Refill.Provenance.t :> int)))
      f.prov;
    Some (Buffer.contents b)
  end

type sink = { write : string -> unit; close : unit -> unit }

let null = { write = ignore; close = ignore }

let to_file path =
  let oc = open_out path in
  {
    write =
      (fun l ->
        output_string oc l;
        output_char oc '\n');
    close = (fun () -> close_out oc);
  }

(* -- publish socket ---------------------------------------------------------

   A listener on [port]; every connected subscriber receives each line as
   it is written.  Subscribers are best-effort: a hard write failure
   (closed peer) drops that subscriber without disturbing the others or
   the server.  A subscriber whose socket buffer is momentarily full is
   NOT dropped — the undelivered tail is kept in a bounded per-subscriber
   backlog and retried on the next write, so delivered lines are never
   torn.  Only a peer that stays stalled past [max_backlog] bytes is
   dropped (its stream ends mid-line at the close, which is the only
   option short of unbounded buffering).  Lines written while nobody is
   connected are dropped — this is a tap, not a queue; durable capture is
   [to_file]. *)

let max_backlog = 1 lsl 18

type subscriber = {
  sfd : Unix.file_descr;
  mutable pending : Bytes.t;  (** Accepted but not yet written bytes. *)
  mutable off : int;  (** Next byte of [pending] to write. *)
}

type publisher = {
  listen_fd : Unix.file_descr;
  mutable subs : subscriber list;
  mutable stopped : bool;
  mu : Mutex.t;
}

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let publisher_accept_loop p =
  let continue = ref true in
  while !continue do
    match Unix.accept p.listen_fd with
    | fd, _ ->
        locked p.mu (fun () ->
            if p.stopped then begin
              (try Unix.close fd with Unix.Unix_error _ -> ());
              continue := false
            end
            else begin
              (* Non-blocking so a stalled subscriber surfaces as EAGAIN
                 on write (and is buffered, then dropped if it stays
                 stalled) instead of wedging emission. *)
              Unix.set_nonblock fd;
              p.subs <- { sfd = fd; pending = Bytes.create 0; off = 0 } :: p.subs
            end)
    | exception Unix.Unix_error _ -> continue := false
  done

(* Queue [payload] behind whatever is still undelivered, then push as
   much as the socket accepts.  Returns [false] (subscriber must be
   dropped, fd closed) on a hard write error or a backlog past
   [max_backlog]; EAGAIN with a tolerable backlog keeps the subscriber
   and the tail. *)
let subscriber_write s payload =
  let backlog = Bytes.length s.pending - s.off in
  if backlog = 0 then begin
    s.pending <- payload;
    s.off <- 0
  end
  else begin
    let merged = Bytes.create (backlog + Bytes.length payload) in
    Bytes.blit s.pending s.off merged 0 backlog;
    Bytes.blit payload 0 merged backlog (Bytes.length payload);
    s.pending <- merged;
    s.off <- 0
  end;
  let len = Bytes.length s.pending in
  let rec flush () =
    if s.off >= len then true
    else
      match Unix.write s.sfd s.pending s.off (len - s.off) with
      | n ->
          s.off <- s.off + n;
          flush ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          len - s.off <= max_backlog
  in
  match flush () with
  | keep ->
      if not keep then (try Unix.close s.sfd with Unix.Unix_error _ -> ());
      keep
  | exception Unix.Unix_error _ ->
      (try Unix.close s.sfd with Unix.Unix_error _ -> ());
      false

let publish ~port =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen listen_fd 16
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let p = { listen_fd; subs = []; stopped = false; mu = Mutex.create () } in
  let _accepter : Thread.t = Thread.create publisher_accept_loop p in
  let write l =
    let payload = Bytes.unsafe_of_string (l ^ "\n") in
    locked p.mu (fun () ->
        p.subs <- List.filter (fun s -> subscriber_write s payload) p.subs)
  in
  let close () =
    locked p.mu (fun () ->
        p.stopped <- true;
        List.iter
          (fun s -> try Unix.close s.sfd with Unix.Unix_error _ -> ())
          p.subs;
        p.subs <- []);
    (* Closing the listener wakes the accept loop with EBADF. *)
    try Unix.close p.listen_fd with Unix.Unix_error _ -> ()
  in
  { write; close }

let tee a b =
  {
    write =
      (fun l ->
        a.write l;
        b.write l);
    close =
      (fun () ->
        a.close ();
        b.close ());
  }

let emit_to sink (e : Refill.Stream.emitted) =
  sink.write (line e);
  Option.iter sink.write (prov_line e.flow)

module Obs = Refill_obs

(* A deliberately tiny HTTP/1.0 responder for the server's /metrics
   endpoint: one accept thread, one short-lived thread per request,
   close after the response.  This is a scrape target for curl and
   Prometheus, not a web server — no keep-alive, no chunking, request
   bodies ignored. *)

type t = {
  listen_fd : Unix.file_descr;
  mutable stopped : bool;
  mu : Mutex.t;
}

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status content_type (String.length body) body

(* Read up to the end of the request line; the rest of the request (headers)
   is irrelevant and left unread — we respond and close. *)
let read_request_line fd =
  let buf = Buffer.create 64 in
  let one = Bytes.create 1 in
  let rec go () =
    if Buffer.length buf > 1024 then Buffer.contents buf
    else
      match Unix.read fd one 0 1 with
      | 0 -> Buffer.contents buf
      | _ -> (
          match Bytes.get one 0 with
          | '\n' -> Buffer.contents buf
          | '\r' -> go ()
          | c ->
              Buffer.add_char buf c;
              go ())
  in
  go ()

let handle_request ~routes fd =
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* Bound how long a dawdling scraper can hold the request thread. *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
  match String.split_on_char ' ' (read_request_line fd) with
  | [ "GET"; path; _ ] | [ "GET"; path ] ->
      let response =
        match List.assoc_opt path routes with
        | Some body_fn ->
            let content_type, body = body_fn () in
            http_response ~status:"200 OK" ~content_type body
        | None -> http_response ~status:"404 Not Found" ~content_type:"text/plain" "not found\n"
      in
      Wire.write_string fd response
  | _ ->
      Wire.write_string fd
        (http_response ~status:"405 Method Not Allowed"
           ~content_type:"text/plain" "GET only\n")

let accept_loop t ~routes =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        if Mutex.protect t.mu (fun () -> t.stopped) then begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          continue := false
        end
        else
          let (_ : Thread.t) =
            Thread.create
              (fun () ->
                try handle_request ~routes fd
                with Unix.Unix_error _ | Sys_error _ -> ())
              ()
          in
          ()
    | exception Unix.Unix_error _ -> continue := false
  done

let start ~port ~routes =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen listen_fd 16
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let t = { listen_fd; stopped = false; mu = Mutex.create () } in
  let (_ : Thread.t) = Thread.create (fun () -> accept_loop t ~routes) () in
  t

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> invalid_arg "Http.port: unix socket"

let stop t =
  Mutex.protect t.mu (fun () -> t.stopped <- true);
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let metrics_routes ?registry () =
  [
    ( "/metrics",
      fun () ->
        ( Obs.Metrics.prometheus_content_type,
          Obs.Metrics.dump_prometheus ?registry () ) );
  ]

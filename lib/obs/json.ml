type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec write buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s -> Buffer.add_string buf (quote s)
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (quote k);
          Buffer.add_char buf ':';
          write buf item)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* -- Parser ---------------------------------------------------------------- *)

exception Bad of string

let parse s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if
      !pos + String.length word <= len
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= len then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
               advance ();
               if !pos + 4 > len then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* UTF-8 encode the code point (surrogates kept as-is: good
                  enough for validation). *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
           | c -> fail (Printf.sprintf "bad escape %C" c));
          go ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while
        !pos < len && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

type counter = { mutable c_value : int }

type gauge = { mutable g_value : float }

type histogram = {
  bounds : float array;  (* strictly increasing upper bounds *)
  bucket : int array;  (* length = Array.length bounds + 1; last = +Inf *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric =
  | Counter_m of counter
  | Gauge_m of gauge
  | Histogram_m of histogram

type registered = {
  name : string;
  labels : (string * string) list;  (* sorted by key *)
  help : string;
  metric : metric;
}

type registry = {
  tbl : (string * (string * string) list, registered) Hashtbl.t;
}

let create_registry () = { tbl = Hashtbl.create 64 }

let default_registry = create_registry ()

let reset registry =
  Hashtbl.iter
    (fun _ r ->
      match r.metric with
      | Counter_m c -> c.c_value <- 0
      | Gauge_m g -> g.g_value <- 0.
      | Histogram_m h ->
          Array.fill h.bucket 0 (Array.length h.bucket) 0;
          h.h_sum <- 0.;
          h.h_count <- 0)
    registry.tbl

let valid_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | _ -> false)
       name

let kind_name = function
  | Counter_m _ -> "counter"
  | Gauge_m _ -> "gauge"
  | Histogram_m _ -> "histogram"

let register ~registry ~help ~labels name make =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  let labels = List.sort compare labels in
  let key = (name, labels) in
  match Hashtbl.find_opt registry.tbl key with
  | Some r -> r
  | None ->
      let metric = make () in
      (* A name must keep one kind across all label sets. *)
      Hashtbl.iter
        (fun (n, _) (r : registered) ->
          if n = name && kind_name r.metric <> kind_name metric then
            invalid_arg
              (Printf.sprintf "Metrics: %S already registered as a %s" name
                 (kind_name r.metric)))
        registry.tbl;
      let r = { name; labels; help; metric } in
      Hashtbl.replace registry.tbl key r;
      r

module Counter = struct
  type t = counter

  let v ?(registry = default_registry) ?(help = "") ?(labels = []) name =
    match
      (register ~registry ~help ~labels name (fun () ->
           Counter_m { c_value = 0 }))
        .metric
    with
    | Counter_m c -> c
    | m ->
        invalid_arg
          (Printf.sprintf "Metrics: %S is a %s, not a counter" name
             (kind_name m))

  let inc ?(by = 1) t =
    if by < 0 then invalid_arg "Metrics.Counter.inc: negative increment";
    t.c_value <- t.c_value + by

  let add t by =
    if by < 0 then invalid_arg "Metrics.Counter.add: negative increment";
    t.c_value <- t.c_value + by

  let value t = t.c_value
end

module Gauge = struct
  type t = gauge

  let v ?(registry = default_registry) ?(help = "") ?(labels = []) name =
    match
      (register ~registry ~help ~labels name (fun () ->
           Gauge_m { g_value = 0. }))
        .metric
    with
    | Gauge_m g -> g
    | m ->
        invalid_arg
          (Printf.sprintf "Metrics: %S is a %s, not a gauge" name
             (kind_name m))

  let set t x = t.g_value <- x

  let add t x = t.g_value <- t.g_value +. x

  let value t = t.g_value
end

module Histogram = struct
  type t = histogram

  let log_buckets ~lo ~hi ~factor =
    if lo <= 0. || hi < lo || factor <= 1. then
      invalid_arg "Metrics.Histogram.log_buckets";
    let rec go acc b =
      if b >= hi then List.rev (b :: acc) else go (b :: acc) (b *. factor)
    in
    Array.of_list (go [] lo)

  let default_buckets = log_buckets ~lo:1e-6 ~hi:16384. ~factor:2.

  let check_bounds bounds =
    if Array.length bounds = 0 then
      invalid_arg "Metrics.Histogram: empty buckets";
    for i = 1 to Array.length bounds - 1 do
      if bounds.(i) <= bounds.(i - 1) then
        invalid_arg "Metrics.Histogram: buckets not strictly increasing"
    done

  let v ?(registry = default_registry) ?(help = "") ?(labels = [])
      ?(buckets = default_buckets) name =
    match
      (register ~registry ~help ~labels name (fun () ->
           check_bounds buckets;
           Histogram_m
             {
               bounds = Array.copy buckets;
               bucket = Array.make (Array.length buckets + 1) 0;
               h_sum = 0.;
               h_count = 0;
             }))
        .metric
    with
    | Histogram_m h -> h
    | m ->
        invalid_arg
          (Printf.sprintf "Metrics: %S is a %s, not a histogram" name
             (kind_name m))

  let observe_n t x times =
    if times > 0 then begin
      let n = Array.length t.bounds in
      (* First index with x <= bounds.(i); n means the +Inf bucket. *)
      let rec bs lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if x <= t.bounds.(mid) then bs lo mid else bs (mid + 1) hi
      in
      let i = bs 0 n in
      t.bucket.(i) <- t.bucket.(i) + times;
      t.h_sum <- t.h_sum +. (x *. float_of_int times);
      t.h_count <- t.h_count + times
    end

  let observe t x = observe_n t x 1

  let observe_int t x = observe t (float_of_int x)

  let observe_int_n t x times = observe_n t (float_of_int x) times

  let count t = t.h_count

  let sum t = t.h_sum

  let bucket_counts t =
    let acc = ref 0 in
    let cumulative =
      Array.to_list
        (Array.mapi
           (fun i bound ->
             acc := !acc + t.bucket.(i);
             (bound, !acc))
           t.bounds)
    in
    cumulative @ [ (infinity, t.h_count) ]
end

(* -- Dumps ------------------------------------------------------------------ *)

let sorted_entries registry =
  Hashtbl.fold (fun _ r acc -> r :: acc) registry.tbl []
  |> List.sort (fun a b ->
         match String.compare a.name b.name with
         | 0 -> compare a.labels b.labels
         | c -> c)

let float_str f = Printf.sprintf "%.12g" f

let bound_str b = if b = infinity then "+Inf" else float_str b

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

(* The exposition-format content type HTTP scrapers (Prometheus itself,
   `promtool check metrics`) expect alongside the text body. *)
let prometheus_content_type = "text/plain; version=0.0.4; charset=utf-8"

let dump_prometheus ?(registry = default_registry) () =
  let buf = Buffer.create 4096 in
  let last_family = ref "" in
  List.iter
    (fun r ->
      if r.name <> !last_family then begin
        last_family := r.name;
        if r.help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" r.name r.help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" r.name (kind_name r.metric))
      end;
      match r.metric with
      | Counter_m c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" r.name (render_labels r.labels)
               c.c_value)
      | Gauge_m g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" r.name (render_labels r.labels)
               (float_str g.g_value))
      | Histogram_m h ->
          List.iter
            (fun (bound, cum) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" r.name
                   (render_labels (r.labels @ [ ("le", bound_str bound) ]))
                   cum))
            (Histogram.bucket_counts h);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" r.name (render_labels r.labels)
               (float_str h.h_sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" r.name (render_labels r.labels)
               h.h_count))
    (sorted_entries registry);
  Buffer.contents buf

let to_json ?(registry = default_registry) () =
  let entry r =
    let base =
      [
        ("name", Json.Str r.name);
        ("type", Json.Str (kind_name r.metric));
        ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) r.labels));
      ]
    in
    let values =
      match r.metric with
      | Counter_m c -> [ ("value", Json.Num (float_of_int c.c_value)) ]
      | Gauge_m g -> [ ("value", Json.Num g.g_value) ]
      | Histogram_m h ->
          [
            ("count", Json.Num (float_of_int h.h_count));
            ("sum", Json.Num h.h_sum);
            ( "buckets",
              Json.Arr
                (List.map
                   (fun (bound, cum) ->
                     Json.Obj
                       [
                         ("le", Json.Str (bound_str bound));
                         ("count", Json.Num (float_of_int cum));
                       ])
                   (Histogram.bucket_counts h)) );
          ]
    in
    Json.Obj (base @ values)
  in
  Json.Obj
    [ ("metrics", Json.Arr (List.map entry (sorted_entries registry))) ]

let dump_json ?registry () = Json.to_string (to_json ?registry ())

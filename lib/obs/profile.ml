type sample = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  heap_words : int;
  top_heap_words : int;
}

let sample () =
  let s = Gc.quick_stat () in
  {
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    heap_words = s.Gc.heap_words;
    top_heap_words = s.Gc.top_heap_words;
  }

let delta ~before ~after =
  {
    minor_words = after.minor_words -. before.minor_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    major_words = after.major_words -. before.major_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
    heap_words = after.heap_words;
    top_heap_words = after.top_heap_words;
  }

let attrs s =
  [
    ("gc_minor_words", Printf.sprintf "%.0f" s.minor_words);
    ("gc_promoted_words", Printf.sprintf "%.0f" s.promoted_words);
    ("gc_major_words", Printf.sprintf "%.0f" s.major_words);
    ("gc_minor_collections", string_of_int s.minor_collections);
    ("gc_major_collections", string_of_int s.major_collections);
    ("gc_heap_words", string_of_int s.heap_words);
    ("gc_top_heap_words", string_of_int s.top_heap_words);
  ]

let measure f =
  let before = sample () in
  let x = f () in
  let after = sample () in
  (x, delta ~before ~after)

let with_stage ?(cat = "refill") ~name f =
  let s = Span.sink () in
  if Sink.is_null s then f ()
  else begin
    let t0 = Span.now_us () in
    let before = sample () in
    Fun.protect
      ~finally:(fun () ->
        let after = sample () in
        let t1 = Span.now_us () in
        Sink.emit s
          {
            Sink.name;
            cat;
            ph = 'X';
            ts_us = t0;
            dur_us = t1 -. t0;
            tid = 1;
            args = attrs (delta ~before ~after);
          })
      f
  end

(** A tiny process-wide metrics registry: counters, gauges, and fixed
    log-scale-bucket histograms, dumpable as Prometheus-style text or JSON.

    Metrics are interned by [(name, labels)]: calling [v] twice with the same
    identity returns the same instrument, so libraries can declare their
    instruments at module initialization and hot paths pay one mutable-field
    update per event.  The registry is single-threaded, like the rest of the
    pipeline. *)

type registry

val default_registry : registry
(** Where library-level instruments live. *)

val create_registry : unit -> registry
(** A private registry (tests). *)

val reset : registry -> unit
(** Zero every registered instrument; registrations are kept. *)

module Counter : sig
  type t

  val v :
    ?registry:registry ->
    ?help:string ->
    ?labels:(string * string) list ->
    string ->
    t
  (** Find-or-create.  Raises [Invalid_argument] on a malformed name or if
      the name is already registered as a different instrument kind. *)

  val inc : ?by:int -> t -> unit
  (** [by] defaults to 1; negative [by] raises [Invalid_argument]. *)

  val add : t -> int -> unit
  (** [inc ~by] without the optional-argument allocation — for flush paths
      that publish per-run tallies once per packet.  Negative amounts
      raise [Invalid_argument]. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val v :
    ?registry:registry ->
    ?help:string ->
    ?labels:(string * string) list ->
    string ->
    t

  val set : t -> float -> unit

  val add : t -> float -> unit

  val value : t -> float
end

module Histogram : sig
  type t

  val log_buckets : lo:float -> hi:float -> factor:float -> float array
  (** Geometric upper bounds [lo, lo*factor, ...] up to and including the
      first bound >= [hi]. *)

  val default_buckets : float array
  (** Factor-2 bounds from 1e-6 to ~1.6e4 — wide enough for both seconds
      and small integer quantities (depths, counts). *)

  val v :
    ?registry:registry ->
    ?help:string ->
    ?labels:(string * string) list ->
    ?buckets:float array ->
    string ->
    t
  (** [buckets] (default [default_buckets]) must be strictly increasing; it
      is only consulted on first registration. *)

  val observe : t -> float -> unit

  val observe_int : t -> int -> unit

  val observe_n : t -> float -> int -> unit
  (** [observe_n h x times] records [times] observations of [x] in one
      bucket update — what batched flushes (e.g. the engine's run-local
      tallies) use instead of a per-observation loop. No-op when
      [times <= 0]. *)

  val observe_int_n : t -> int -> int -> unit

  val count : t -> int

  val sum : t -> float

  val bucket_counts : t -> (float * int) list
  (** Cumulative counts per upper bound, Prometheus-style; the final entry
      is [(infinity, count t)]. *)
end

val prometheus_content_type : string
(** The [Content-Type] an HTTP endpoint must send with
    {!dump_prometheus} output
    ([text/plain; version=0.0.4; charset=utf-8]). *)

val dump_prometheus : ?registry:registry -> unit -> string
(** Deterministic (name-sorted) Prometheus text exposition. *)

val to_json : ?registry:registry -> unit -> Json.t

val dump_json : ?registry:registry -> unit -> string

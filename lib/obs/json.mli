(** Minimal dependency-free JSON: enough to build and check the
    observability dumps (Chrome traces, metric snapshots) without pulling a
    third-party library into every layer of the pipeline. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val quote : string -> string
(** [quote s] is [s] as a double-quoted JSON string literal, with the
    mandatory escapes applied. *)

val to_string : t -> string
(** Compact (single-line) rendering. *)

val parse : string -> (t, string) result
(** Strict parse of one complete JSON document; anything but trailing
    whitespace after the value is an error. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

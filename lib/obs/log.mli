(** One leveled logging facility for the whole pipeline, so progress
    chatter is consistent, suppressible ([--quiet]), and capturable in
    tests.  Messages go to a redirectable formatter (stderr by default),
    keeping stdout for actual command output. *)

type level = Quiet | Info | Debug

val set_level : level -> unit

val level : unit -> level

val set_formatter : Format.formatter -> unit
(** Redirect [info]/[debug] output (tests). *)

val set_error_formatter : Format.formatter -> unit

val info : ('a, Format.formatter, unit) format -> 'a
(** Progress messages; shown at [Info] and [Debug]. *)

val debug : ('a, Format.formatter, unit) format -> 'a
(** Detail messages; shown at [Debug] only, prefixed ["debug: "]. *)

val error : ('a, Format.formatter, unit) format -> 'a
(** Always shown (even under [Quiet]), prefixed ["refill: "], on the error
    formatter. *)

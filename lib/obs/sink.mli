(** Trace-event sinks.  A sink receives the timed span events produced by
    {!Span} and either discards them (null), buffers them (memory), or
    streams them to a Chrome [trace_event]-format JSON file viewable in
    [chrome://tracing] / Perfetto. *)

type event = {
  name : string;
  cat : string;
  ph : char;  (** ['X'] complete span, ['i'] instant event. *)
  ts_us : float;  (** Start timestamp, microseconds. *)
  dur_us : float;  (** Duration, microseconds; 0 for instants. *)
  tid : int;
  args : (string * string) list;
}

type t

val null : t
(** Swallows everything; the zero-cost default. *)

val is_null : t -> bool

val memory : unit -> t
(** Buffers events in memory; read them back with {!events}. *)

val file : string -> t
(** Streams events to [path] as they arrive; {!close} finalizes the JSON
    document.  Raises [Sys_error] if the file cannot be opened. *)

val emit : t -> event -> unit

val events : t -> event list
(** Buffered events in emission order (memory sinks; [[]] otherwise). *)

val close : t -> unit
(** Flush and close a file sink (idempotent); no-op for null/memory. *)

val event_to_json : event -> Json.t

val trace_json : event list -> Json.t
(** A complete [{"traceEvents": [...]}] document. *)

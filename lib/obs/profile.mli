(** Pipeline self-profiling: GC and allocation accounting per stage.

    Wraps {!Gc.quick_stat} (cheap: no heap traversal) into before/after
    samples so pipeline stages can report what they cost — minor/major
    collections, words allocated and promoted, and the heap high-water
    mark — as span attributes ({!with_stage}) and as BENCH fields. *)

type sample = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  heap_words : int;  (** Current major heap size. *)
  top_heap_words : int;  (** Process-lifetime heap high-water mark. *)
}

val sample : unit -> sample

val delta : before:sample -> after:sample -> sample
(** Field-wise [after - before], except [heap_words] and [top_heap_words]
    which keep [after]'s values (sizes, not rates). *)

val attrs : sample -> (string * string) list
(** Span-attribute rendering of a (delta) sample: [gc_minor_words],
    [gc_promoted_words], [gc_major_words], [gc_minor_collections],
    [gc_major_collections], [gc_heap_words], [gc_top_heap_words]. *)

val measure : (unit -> 'a) -> 'a * sample
(** Run a thunk and return its result with the GC delta it incurred. *)

val with_stage : ?cat:string -> name:string -> (unit -> 'a) -> 'a
(** {!Span.with_}-like stage timing that also attaches the stage's GC
    delta ({!attrs}) to the emitted span event.  Emits its own complete
    ('X') event because span attributes are fixed at entry in
    {!Span.with_}, and the GC delta only exists at exit.  Free when
    tracing is off. *)

type level = Quiet | Info | Debug

let current = ref Info

let set_level l = current := l

let level () = !current

let ppf = ref Format.err_formatter

let set_formatter f = ppf := f

let err_ppf = ref Format.err_formatter

let set_error_formatter f = err_ppf := f

let info fmt =
  match !current with
  | Info | Debug -> Format.fprintf !ppf (fmt ^^ "@.")
  | Quiet -> Format.ifprintf !ppf (fmt ^^ "@.")

let debug fmt =
  match !current with
  | Debug -> Format.fprintf !ppf ("debug: " ^^ fmt ^^ "@.")
  | Info | Quiet -> Format.ifprintf !ppf ("debug: " ^^ fmt ^^ "@.")

let error fmt = Format.fprintf !err_ppf ("refill: " ^^ fmt ^^ "@.")

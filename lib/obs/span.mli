(** Nested timed spans over the process-wide trace sink.

    With the default {!Sink.null} installed, [with_] is one branch and a
    closure call — instrumented hot paths cost nothing when tracing is off.
    With a memory or file sink, each span is emitted as a Chrome
    [trace_event] complete ('X') event at exit, so nesting is recovered by
    timestamp containment. *)

val set_sink : Sink.t -> unit
(** Install the sink spans report to (replacing the previous one, which is
    NOT closed — use {!swap_sink} when the previous sink must be
    finalized). *)

val swap_sink : Sink.t -> Sink.t
(** Install a sink and return the one it replaced, so the caller can
    {!Sink.close} it — the leak-free replacement for {!set_sink}. *)

val sink : unit -> Sink.t

val enabled : unit -> bool
(** [false] iff the null sink is installed. *)

val depth : unit -> int
(** Current span nesting depth (0 outside any span). *)

val with_ :
  ?cat:string -> ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f], timing it as a span.  The span is emitted
    even if [f] raises (the exception is re-raised). *)

val instant : ?cat:string -> ?attrs:(string * string) list -> string -> unit
(** A zero-duration marker event. *)

val now_us : unit -> float
(** The trace clock: wall microseconds since process start. *)

type event = {
  name : string;
  cat : string;
  ph : char;
  ts_us : float;
  dur_us : float;
  tid : int;
  args : (string * string) list;
}

type file_state = { oc : out_channel; mutable first : bool; mutable closed : bool }

type t = Null | Memory of event list ref | File of file_state

let null = Null

let is_null = function Null -> true | Memory _ | File _ -> false

let memory () = Memory (ref [])

let event_to_json e =
  let base =
    [
      ("name", Json.Str e.name);
      ("cat", Json.Str e.cat);
      ("ph", Json.Str (String.make 1 e.ph));
      ("ts", Json.Num e.ts_us);
      ("dur", Json.Num e.dur_us);
      ("pid", Json.Num 1.);
      ("tid", Json.Num (float_of_int e.tid));
    ]
  in
  let args =
    match e.args with
    | [] -> []
    | args ->
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)) ]
  in
  Json.Obj (base @ args)

let trace_json events =
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map event_to_json events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let file path =
  let oc = open_out path in
  output_string oc "{\"traceEvents\":[";
  File { oc; first = true; closed = false }

let emit t e =
  match t with
  | Null -> ()
  | Memory buf -> buf := e :: !buf
  | File f ->
      if not f.closed then begin
        if f.first then f.first <- false else output_char f.oc ',';
        output_string f.oc (Json.to_string (event_to_json e))
      end

let events = function
  | Memory buf -> List.rev !buf
  | Null | File _ -> []

let close = function
  | Null | Memory _ -> ()
  | File f ->
      if not f.closed then begin
        f.closed <- true;
        output_string f.oc "],\"displayTimeUnit\":\"ms\"}\n";
        close_out f.oc
      end

let current = ref Sink.null

let set_sink s = current := s

let swap_sink s =
  let old = !current in
  current := s;
  old

let sink () = !current

let enabled () = not (Sink.is_null !current)

let nesting = ref 0

let depth () = !nesting

(* Timestamps are microseconds since process start: small enough to keep
   full precision through JSON rendering, and Perfetto only cares about
   relative time anyway. *)
let epoch = Unix.gettimeofday ()

let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6

let with_ ?(cat = "refill") ?(attrs = []) ~name f =
  let s = !current in
  if Sink.is_null s then f ()
  else begin
    let t0 = now_us () in
    incr nesting;
    Fun.protect
      ~finally:(fun () ->
        decr nesting;
        let t1 = now_us () in
        Sink.emit s
          {
            Sink.name;
            cat;
            ph = 'X';
            ts_us = t0;
            dur_us = t1 -. t0;
            tid = 1;
            args = attrs;
          })
      f
  end

let instant ?(cat = "refill") ?(attrs = []) name =
  let s = !current in
  if not (Sink.is_null s) then
    Sink.emit s
      {
        Sink.name;
        cat;
        ph = 'i';
        ts_us = now_us ();
        dur_us = 0.;
        tid = 1;
        args = attrs;
      }

(** Terminal renderings of the paper's figures.

    The bench harness regenerates every figure of the paper as text: scatter
    plots (Figs. 4, 5, 8), stacked/grouped bars (Figs. 6, 9) and simple bar
    charts.  Output is plain ASCII so it diffs cleanly and needs no display. *)

type scatter_series = {
  label : string;
  marker : char;
  points : (float * float) list;  (** (x, y) pairs. *)
}

val scatter :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  scatter_series list ->
  string
(** Render overlaid scatter series on one canvas. Later series overwrite
    earlier ones where they collide. Returns a multi-line string including a
    legend and axis ranges. Empty input renders an empty canvas. *)

val bar :
  ?width:int ->
  title:string ->
  (string * float) list ->
  string
(** Horizontal bar chart; bar lengths scaled to the maximum value. *)

val stacked_bars :
  ?width:int ->
  title:string ->
  series_labels:string list ->
  (string * float list) list ->
  string
(** [stacked_bars ~series_labels rows] renders one horizontal stacked bar per
    row; each row's floats are shares drawn with a per-series fill character.
    Shares are normalised per row. Rows whose values sum to 0 render empty. *)

val sparkline : float array -> string
(** One-line braille-free sparkline using the classic eight block glyphs. *)

type scatter_series = {
  label : string;
  marker : char;
  points : (float * float) list;
}

let buf_add_lines buf lines = List.iter (fun l -> Buffer.add_string buf l; Buffer.add_char buf '\n') lines

let bounds series =
  let xs = List.concat_map (fun s -> List.map fst s.points) series in
  let ys = List.concat_map (fun s -> List.map snd s.points) series in
  match (xs, ys) with
  | [], _ | _, [] -> (0., 1., 0., 1.)
  | _ ->
      let fold f init l = List.fold_left f init l in
      let x_lo = fold min infinity xs and x_hi = fold max neg_infinity xs in
      let y_lo = fold min infinity ys and y_hi = fold max neg_infinity ys in
      let pad lo hi = if hi > lo then (lo, hi) else (lo -. 0.5, hi +. 0.5) in
      let x_lo, x_hi = pad x_lo x_hi and y_lo, y_hi = pad y_lo y_hi in
      (x_lo, x_hi, y_lo, y_hi)

let scatter ?(width = 72) ?(height = 20) ?(x_label = "x") ?(y_label = "y")
    ~title series =
  let x_lo, x_hi, y_lo, y_hi = bounds series in
  let canvas = Array.make_matrix height width ' ' in
  let plot s =
    List.iter
      (fun (x, y) ->
        let cx =
          int_of_float ((x -. x_lo) /. (x_hi -. x_lo) *. float_of_int (width - 1))
        in
        let cy =
          int_of_float ((y -. y_lo) /. (y_hi -. y_lo) *. float_of_int (height - 1))
        in
        let cx = max 0 (min (width - 1) cx) in
        let cy = max 0 (min (height - 1) cy) in
        (* Row 0 of the canvas is the top of the chart. *)
        canvas.(height - 1 - cy).(cx) <- s.marker)
      s.points
  in
  List.iter plot series;
  let buf = Buffer.create ((width + 8) * (height + 6)) in
  buf_add_lines buf [ "== " ^ title ^ " ==" ];
  Buffer.add_string buf
    (Printf.sprintf "%s: [%.2f .. %.2f]   %s: [%.2f .. %.2f]\n" x_label x_lo
       x_hi y_label y_lo y_hi);
  Array.iter
    (fun row ->
      Buffer.add_string buf "|";
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_string buf "|\n")
    canvas;
  Buffer.add_string buf "+";
  Buffer.add_string buf (String.make width '-');
  Buffer.add_string buf "+\n";
  let legend =
    series
    |> List.map (fun s -> Printf.sprintf "%c=%s" s.marker s.label)
    |> String.concat "  "
  in
  Buffer.add_string buf ("legend: " ^ legend ^ "\n");
  Buffer.contents buf

let bar ?(width = 50) ~title rows =
  let max_v = List.fold_left (fun acc (_, v) -> max acc v) 0. rows in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let buf = Buffer.create 1024 in
  buf_add_lines buf [ "== " ^ title ^ " ==" ];
  List.iter
    (fun (label, v) ->
      let n =
        if max_v <= 0. then 0
        else int_of_float (v /. max_v *. float_of_int width)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s | %s %.2f\n" label_w label (String.make n '#') v))
    rows;
  Buffer.contents buf

let fill_chars = [| '#'; '='; '+'; '.'; 'o'; '%'; '~'; '*'; ':'; '@' |]

let stacked_bars ?(width = 60) ~title ~series_labels rows =
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let buf = Buffer.create 1024 in
  buf_add_lines buf [ "== " ^ title ^ " ==" ];
  let legend =
    List.mapi
      (fun i l -> Printf.sprintf "%c=%s" fill_chars.(i mod Array.length fill_chars) l)
      series_labels
    |> String.concat "  "
  in
  Buffer.add_string buf ("legend: " ^ legend ^ "\n");
  List.iter
    (fun (label, values) ->
      let total = List.fold_left ( +. ) 0. values in
      Buffer.add_string buf (Printf.sprintf "%-*s |" label_w label);
      if total > 0. then
        List.iteri
          (fun i v ->
            let n = int_of_float (v /. total *. float_of_int width +. 0.5) in
            Buffer.add_string buf
              (String.make n fill_chars.(i mod Array.length fill_chars)))
          values;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let spark_glyphs = [| '_'; '.'; '-'; '='; '+'; '*'; '#'; '@' |]

let sparkline a =
  if Array.length a = 0 then ""
  else begin
    let lo, hi = Stats.min_max a in
    let range = if hi > lo then hi -. lo else 1. in
    let buf = Buffer.create (Array.length a) in
    Array.iter
      (fun v ->
        let i = int_of_float ((v -. lo) /. range *. 7.9) in
        let i = max 0 (min 7 i) in
        Buffer.add_char buf spark_glyphs.(i))
      a;
    Buffer.contents buf
  end

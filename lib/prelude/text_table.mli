(** Aligned plain-text tables for experiment output. *)

val render : header:string list -> string list list -> string
(** [render ~header rows] lays out the header and rows with columns padded to
    the widest cell, separated by two spaces, with a dashed rule under the
    header. Rows shorter than the header are padded with empty cells. *)

val render_floats :
  header:string list -> ?precision:int -> (string * float list) list -> string
(** Convenience: first column is a row label, remaining cells are floats
    printed with [precision] (default 2) decimals. *)

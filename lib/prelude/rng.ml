type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function: advance by the golden gamma, then mix. *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = int64 t in
  (* Mix once more so that parent and child streams do not share prefixes. *)
  let child = { state = Int64.logxor seed 0xA5A5A5A5A5A5A5A5L } in
  ignore (int64 child : int64);
  child

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits avoids modulo bias. *)
  let mask = max_int in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (int64 t) (Int64.of_int mask)) in
    let v = r mod bound in
    if r - v > mask - bound + 1 then draw () else v
  in
  draw ()

let unit_float t =
  (* 53 random mantissa bits. *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t ~p =
  if p <= 0. then false
  else if p >= 1. then true
  else unit_float t < p

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = unit_float t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float t in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let geometric t ~p =
  let p = if p <= 0. then 1e-12 else if p > 1. then 1. else p in
  if p = 1. then 0
  else
    let u = 1.0 -. unit_float t in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t ~k ~n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  (* Floyd's algorithm, then sort. *)
  let module IS = Set.Make (Int) in
  let set = ref IS.empty in
  for j = n - k to n - 1 do
    let v = int t (j + 1) in
    set := if IS.mem v !set then IS.add j !set else IS.add v !set
  done;
  IS.elements !set

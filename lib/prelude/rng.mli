(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    simulation and experiment is reproducible from a single 64-bit seed.  The
    generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): fast, small
    state, and splittable, which lets independent subsystems draw from
    statistically independent streams derived from one master seed. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean.
    @raise Invalid_argument if [mean <= 0]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed sample (Box–Muller). *)

val geometric : t -> p:float -> int
(** Number of Bernoulli(p) failures before the first success; [p] clamped to
    (0, 1]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniform element. @raise Invalid_argument on empty array. *)

val sample_without_replacement : t -> k:int -> n:int -> int list
(** [sample_without_replacement t ~k ~n] draws [k] distinct indices from
    [\[0, n)] in increasing order. @raise Invalid_argument if [k > n]. *)

type 'a entry = { priority : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 16) () =
  { data = [||]; size = 0; next_seq = capacity * 0 }

let length t = t.size

let is_empty t = t.size = 0

(* [before a b] decides heap order: smaller priority first, then FIFO. *)
let before a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && before t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t entry =
  let capacity = max 16 (2 * Array.length t.data) in
  let data = Array.make capacity entry in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let push_entry t entry =
  if t.size = Array.length t.data then grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let push t ~priority value =
  let entry = { priority; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  push_entry t entry

let push_tie t ~priority ~tie value = push_entry t { priority; seq = tie; value }

let peek t =
  if t.size = 0 then None
  else
    let e = t.data.(0) in
    Some (e.priority, e.value)

let pop t =
  if t.size = 0 then None
  else begin
    let e = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (e.priority, e.value)
  end

let clear t =
  t.size <- 0;
  t.data <- [||]

let to_sorted_list t =
  let copy =
    { data = Array.sub t.data 0 t.size; size = t.size; next_seq = t.next_seq }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []

let mean a =
  let n = Array.length a in
  if n = 0 then 0.
  else begin
    let sum = ref 0. in
    Array.iter (fun x -> sum := !sum +. x) a;
    !sum /. float_of_int n
  end

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let acc = ref 0. in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      a;
    !acc /. float_of_int n
  end

let stddev a = sqrt (variance a)

let min_max a =
  if Array.length a = 0 then invalid_arg "Stats.min_max: empty";
  let lo = ref a.(0) and hi = ref a.(0) in
  Array.iter
    (fun x ->
      if x < !lo then lo := x;
      if x > !hi then hi := x)
    a;
  (!lo, !hi)

let percentile a ~p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. w)) +. (sorted.(hi) *. w)
  end

let median a = percentile a ~p:50.

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  p50 : float;
  p75 : float;
  p95 : float;
  max : float;
}

let summarize a =
  if Array.length a = 0 then invalid_arg "Stats.summarize: empty";
  let min, max = min_max a in
  {
    n = Array.length a;
    mean = mean a;
    stddev = stddev a;
    min;
    p25 = percentile a ~p:25.;
    p50 = percentile a ~p:50.;
    p75 = percentile a ~p:75.;
    p95 = percentile a ~p:95.;
    max;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p25=%.3f p50=%.3f p75=%.3f p95=%.3f max=%.3f"
    s.n s.mean s.stddev s.min s.p25 s.p50 s.p75 s.p95 s.max

type histogram = { bins : int array; lo : float; hi : float; width : float }

let histogram a ~bins =
  if Array.length a = 0 then invalid_arg "Stats.histogram: empty";
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  let lo, hi = min_max a in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = if i >= bins then bins - 1 else if i < 0 then 0 else i in
      counts.(i) <- counts.(i) + 1)
    a;
  { bins = counts; lo; hi; width }

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

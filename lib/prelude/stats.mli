(** Descriptive statistics over float samples.

    Small, allocation-light helpers used by the analysis layer and the
    benchmark harness to summarise distributions (loss counts, delays,
    reconstruction accuracy). *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Population variance; 0 for arrays of length < 2. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** @raise Invalid_argument on empty input. *)

val percentile : float array -> p:float -> float
(** [percentile a ~p] with [p] in [\[0, 100\]], linear interpolation between
    closest ranks. The input is not modified.
    @raise Invalid_argument on empty input or [p] out of range. *)

val median : float array -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  p50 : float;
  p75 : float;
  p95 : float;
  max : float;
}

val summarize : float array -> summary
(** @raise Invalid_argument on empty input. *)

val pp_summary : Format.formatter -> summary -> unit

type histogram = { bins : int array; lo : float; hi : float; width : float }

val histogram : float array -> bins:int -> histogram
(** Equal-width histogram spanning [min, max] of the data; samples equal to
    the maximum land in the last bin.
    @raise Invalid_argument on empty input or [bins <= 0]. *)

val ratio : int -> int -> float
(** [ratio num den] is [num/den] as a percentage-friendly float, 0 when
    [den = 0]. *)

let render ~header rows =
  let ncols = List.length header in
  let pad_row r =
    let len = List.length r in
    if len >= ncols then r else r @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let widths = Array.make ncols 0 in
  let measure r =
    List.iteri
      (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      r
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let emit r =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      r;
    Buffer.add_char buf '\n'
  in
  emit header;
  let rule_len = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make rule_len '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let render_floats ~header ?(precision = 2) rows =
  let rows =
    List.map
      (fun (label, values) ->
        label :: List.map (fun v -> Printf.sprintf "%.*f" precision v) values)
      rows
  in
  render ~header rows

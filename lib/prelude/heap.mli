(** Binary min-heap keyed by a float priority.

    Used as the pending-event queue of the discrete-event simulator.  Ties are
    broken by insertion order (FIFO among equal priorities) so simulation
    results are independent of heap internals. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty heap. [capacity] is an initial size hint. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit
(** Insert an element. *)

val push_tie : 'a t -> priority:float -> tie:int -> 'a -> unit
(** Like {!push}, but equal priorities pop in ascending [tie] order instead
    of insertion order — a lexicographic [(priority, tie)] key.  A heap
    should use either {!push} or {!push_tie} exclusively: mixing the two
    makes the tie-break between an auto-sequenced and an explicitly-tied
    entry meaningless. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the element with the smallest priority; [None] when
    empty. Equal priorities pop in insertion order. *)

val peek : 'a t -> (float * 'a) option
(** Smallest element without removing it. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Drain a copy of the heap in priority order (the heap is unchanged). *)

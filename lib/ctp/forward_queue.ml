type 'a t = { capacity : int; queue : 'a Queue.t }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Forward_queue.create: capacity";
  { capacity; queue = Queue.create () }

let length t = Queue.length t.queue

let capacity t = t.capacity

let is_empty t = Queue.is_empty t.queue

let is_full t = Queue.length t.queue >= t.capacity

let push t p =
  if is_full t then `Overflow
  else begin
    Queue.add p t.queue;
    `Enqueued
  end

let pop t = Queue.take_opt t.queue

let peek t = Queue.peek_opt t.queue

(** Duplicate-packet cache.

    Each node remembers the [(origin, seq)] pairs of packets it has recently
    accepted; a packet whose signature is already cached is a duplicate
    (Table I: usually the footprint of a routing loop, or of a link-layer
    retransmission that slipped past DSN filtering) and is dropped with a
    [dup] event.  Bounded FIFO eviction models the sensor node's small
    RAM. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val seen : t -> origin:Net.Packet.node_id -> seq:int -> bool
(** Membership test; does not modify the cache. *)

val remember : t -> origin:Net.Packet.node_id -> seq:int -> unit
(** Insert a signature, evicting the oldest entry when full. Re-inserting an
    existing signature refreshes nothing (FIFO order is by first insert). *)

val check_and_remember : t -> origin:Net.Packet.node_id -> seq:int -> bool
(** [true] iff the signature was already present; always leaves the
    signature cached. *)

val clear : t -> unit
(** Forget every signature (RAM lost on reboot). *)

val length : t -> int

val capacity : t -> int

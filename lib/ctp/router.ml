type neighbor = {
  estimator : Estimator.t;
  mutable advertised_etx : float;
}

type t = {
  self : Net.Packet.node_id;
  is_sink : bool;
  hysteresis : float;
  estimator_alpha : float;
  table : (Net.Packet.node_id, neighbor) Hashtbl.t;
  mutable parent : Net.Packet.node_id option;
}

let create ~self ~is_sink ?(hysteresis = 0.75) ?(estimator_alpha = 0.9) () =
  {
    self;
    is_sink;
    hysteresis;
    estimator_alpha;
    table = Hashtbl.create 16;
    parent = None;
  }

let self t = t.self

let is_sink t = t.is_sink

let parent t = if t.is_sink then None else t.parent

let cost_via neighbor =
  neighbor.advertised_etx +. Estimator.etx neighbor.estimator

let path_etx t =
  if t.is_sink then 0.
  else
    match t.parent with
    | None -> infinity
    | Some p -> (
        match Hashtbl.find_opt t.table p with
        | None -> infinity
        | Some nb -> cost_via nb)

let has_route t = t.is_sink || t.parent <> None

let best_candidate t =
  Hashtbl.fold
    (fun id nb best ->
      (* A neighbor with no usable advertised cost cannot be a parent. *)
      if nb.advertised_etx = infinity then best
      else begin
        let c = cost_via nb in
        match best with
        | Some (_, best_c) when best_c <= c -> best
        | _ -> Some (id, c)
      end)
    t.table None

let reselect_parent t =
  if not t.is_sink then begin
    match best_candidate t with
    | None -> t.parent <- None
    | Some (best, best_cost) -> (
        match t.parent with
        | None -> t.parent <- Some best
        | Some current when current = best -> ()
        | Some current -> (
            match Hashtbl.find_opt t.table current with
            | None -> t.parent <- Some best
            | Some nb ->
                let current_cost = cost_via nb in
                if
                  current_cost = infinity
                  || best_cost +. t.hysteresis < current_cost
                then t.parent <- Some best))
  end

let find_or_add t from =
  match Hashtbl.find_opt t.table from with
  | Some nb -> nb
  | None ->
      let nb =
        {
          estimator = Estimator.create ~alpha:t.estimator_alpha ();
          advertised_etx = infinity;
        }
      in
      Hashtbl.add t.table from nb;
      nb

let on_beacon_received t ~from ~advertised_etx =
  if from <> t.self then begin
    let nb = find_or_add t from in
    Estimator.observe nb.estimator ~received:true;
    nb.advertised_etx <- advertised_etx;
    reselect_parent t
  end

let on_beacon_missed t ~from =
  match Hashtbl.find_opt t.table from with
  | None -> ()
  | Some nb ->
      Estimator.observe nb.estimator ~received:false;
      reselect_parent t

let on_data_tx_outcome t ~to_ ~acked =
  match Hashtbl.find_opt t.table to_ with
  | None -> ()
  | Some nb ->
      Estimator.observe nb.estimator ~received:acked;
      reselect_parent t

let neighbor_count t = Hashtbl.length t.table

let neighbors t =
  Hashtbl.fold
    (fun id nb acc -> (id, Estimator.etx nb.estimator, nb.advertised_etx) :: acc)
    t.table []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

let link_etx t id =
  Option.map (fun nb -> Estimator.etx nb.estimator) (Hashtbl.find_opt t.table id)

let reset t =
  Hashtbl.reset t.table;
  t.parent <- None

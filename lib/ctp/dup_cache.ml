type key = int * int (* origin, seq *)

type t = {
  capacity : int;
  entries : (key, unit) Hashtbl.t;
  order : key Queue.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Dup_cache.create: capacity";
  { capacity; entries = Hashtbl.create capacity; order = Queue.create () }

let seen t ~origin ~seq = Hashtbl.mem t.entries (origin, seq)

let remember t ~origin ~seq =
  let key = (origin, seq) in
  if not (Hashtbl.mem t.entries key) then begin
    if Hashtbl.length t.entries >= t.capacity then begin
      let oldest = Queue.pop t.order in
      Hashtbl.remove t.entries oldest
    end;
    Hashtbl.add t.entries key ();
    Queue.add key t.order
  end

let check_and_remember t ~origin ~seq =
  let already = seen t ~origin ~seq in
  if not already then remember t ~origin ~seq;
  already

let clear t =
  Hashtbl.reset t.entries;
  Queue.clear t.order

let length t = Hashtbl.length t.entries

let capacity t = t.capacity

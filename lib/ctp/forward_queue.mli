(** Bounded FIFO forwarding queue.

    Sensor nodes buffer outgoing traffic (data packets, and log chunks when
    in-band log collection is enabled) in a small queue; a data packet
    arriving at a full queue is an [overflow] event (Table I) and the
    element is discarded.  The paper's network sees few overflows because
    traffic is light — the bound still matters under bursts. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val length : 'a t -> int

val capacity : 'a t -> int

val is_empty : 'a t -> bool

val is_full : 'a t -> bool

val push : 'a t -> 'a -> [ `Enqueued | `Overflow ]
(** Append unless full. On [`Overflow] the queue is unchanged. *)

val pop : 'a t -> 'a option
(** Remove the head. *)

val peek : 'a t -> 'a option

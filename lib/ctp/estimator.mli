(** EWMA link-quality estimator (the ETX building block, [1]/[4] in the
    paper).

    Each node estimates, per neighbor, the probability that a broadcast
    beacon from that neighbor is received.  Beacons are periodic, so every
    expected beacon window contributes a success or a miss; the estimate is
    an exponentially weighted moving average of those outcomes.  Link ETX is
    the reciprocal of the estimated quality. *)

type t

val create : ?alpha:float -> ?initial:float -> unit -> t
(** [alpha] (default 0.9) is the history weight: [q' = alpha*q +
    (1-alpha)*sample]. [initial] (default 0.5) seeds the estimate before the
    first sample.
    @raise Invalid_argument if [alpha] outside [\[0,1\]] or [initial]
    outside (0, 1]. *)

val observe : t -> received:bool -> unit
(** Fold one beacon window outcome into the estimate. *)

val quality : t -> float
(** Current estimated reception probability, in (0, 1]. *)

val etx : t -> float
(** [1. /. quality t], capped at [max_etx]. *)

val max_etx : float
(** Cap applied to [etx] so a dead link has a large but finite cost. *)

val samples : t -> int
(** Number of observations folded in so far. *)

(** CTP routing engine for one node.

    Implements the tree construction of §V.A.3: every node advertises its
    path ETX in periodic beacons; on hearing a beacon from [n1], node [n2]
    adopts [n1] as parent iff
    [pathETX(n2) > pathETX(n1) + linkETX(n1, n2)] (with a small hysteresis to
    damp parent thrashing).  The sink advertises path ETX 0; all others start
    at infinity.  Stale advertised costs under lossy beacons are what create
    the transient routing loops the paper observes (duplicate losses). *)

type t

val create :
  self:Net.Packet.node_id ->
  is_sink:bool ->
  ?hysteresis:float ->
  ?estimator_alpha:float ->
  unit ->
  t
(** [hysteresis] (default 0.75 ETX) is the minimum improvement required to
    switch away from the current parent. *)

val self : t -> Net.Packet.node_id

val is_sink : t -> bool

val parent : t -> Net.Packet.node_id option
(** Current parent; [None] until a route is known (or always for the sink). *)

val path_etx : t -> float
(** Advertised path ETX: 0 for the sink, parent's advertised cost plus link
    ETX otherwise; [infinity] with no route. *)

val has_route : t -> bool

val on_beacon_received :
  t -> from:Net.Packet.node_id -> advertised_etx:float -> unit
(** Process a received routing beacon: refresh the neighbor's link estimator
    with a success, record its advertised cost, and re-run parent
    selection. *)

val on_beacon_missed : t -> from:Net.Packet.node_id -> unit
(** A beacon window from a known neighbor elapsed without reception: fold a
    miss into its estimator and re-run parent selection (the link looks
    worse now). Unknown neighbors are ignored. *)

val on_data_tx_outcome :
  t -> to_:Net.Packet.node_id -> acked:bool -> unit
(** Data-plane feedback: fold unicast (non-)ACK outcomes into the link
    estimator of the parent used, like CTP's four-bit link estimation. *)

val neighbor_count : t -> int

val neighbors : t -> (Net.Packet.node_id * float * float) list
(** [(neighbor, link_etx, advertised_path_etx)] rows of the routing table
    (diagnostics and tests). *)

val link_etx : t -> Net.Packet.node_id -> float option

val reset : t -> unit
(** Forget everything (neighbor table, parent) — the node rebooted and its
    RAM routing state is gone. The sink stays a sink. *)

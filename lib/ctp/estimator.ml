type t = {
  alpha : float;
  mutable quality : float;
  mutable samples : int;
}

let max_etx = 100.

(* Quality floor keeps ETX finite even after a long run of misses. *)
let quality_floor = 1. /. max_etx

let create ?(alpha = 0.9) ?(initial = 0.5) () =
  if alpha < 0. || alpha > 1. then invalid_arg "Estimator.create: alpha";
  if initial <= 0. || initial > 1. then invalid_arg "Estimator.create: initial";
  { alpha; quality = initial; samples = 0 }

let observe t ~received =
  let sample = if received then 1. else 0. in
  t.quality <- (t.alpha *. t.quality) +. ((1. -. t.alpha) *. sample);
  if t.quality < quality_floor then t.quality <- quality_floor;
  t.samples <- t.samples + 1

let quality t = t.quality

let etx t = Float.min max_etx (1. /. t.quality)

let samples t = t.samples

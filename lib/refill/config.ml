type t = {
  use_intra : bool;
  use_inter : bool;
  jobs : int option;
  watermark : int;
  chunk_events : int;
  provenance : bool;
}

let default =
  {
    use_intra = true;
    use_inter = true;
    jobs = None;
    watermark = 50_000;
    chunk_events = 4096;
    provenance = false;
  }

let validate t =
  if t.watermark <= 0 then
    Error (Error.Invalid_config "watermark must be positive")
  else if t.chunk_events <= 0 then
    Error (Error.Invalid_config "chunk-events must be positive")
  else
    match t.jobs with
    | Some j when j <= 0 -> Error (Error.Invalid_config "jobs must be positive")
    | Some _ | None -> Ok t

type t = {
  use_intra : bool;
  use_inter : bool;
  jobs : int option;
  watermark : int;
  chunk_events : int;
  provenance : bool;
  shards : int;
  late_retention : int option;
}

let default =
  {
    use_intra = true;
    use_inter = true;
    jobs = None;
    watermark = 50_000;
    chunk_events = 4096;
    provenance = false;
    shards = 1;
    late_retention = None;
  }

(* The default retention window: long enough that a straggler arriving a
   few eviction lifetimes late is still recognized, short enough that the
   evicted-key table stays a small multiple of the live frontier.  Guards
   against overflow for the "effectively infinite" watermarks tests use. *)
let resolved_retention t =
  match t.late_retention with
  | Some r -> r
  | None -> if t.watermark >= max_int / 4 then max_int else 4 * t.watermark

(* Builder surface: every knob gets a [with_] combinator over [default],
   so call sites name only what they change and survive record growth. *)
let with_intra use_intra t = { t with use_intra }
let with_inter use_inter t = { t with use_inter }
let with_jobs jobs t = { t with jobs }
let with_watermark watermark t = { t with watermark }
let with_chunk_events chunk_events t = { t with chunk_events }
let with_provenance provenance t = { t with provenance }
let with_shards shards t = { t with shards }
let with_late_retention late_retention t = { t with late_retention }

let validate t =
  if t.watermark <= 0 then
    Error (Error.Invalid_config "watermark must be positive")
  else if t.chunk_events <= 0 then
    Error (Error.Invalid_config "chunk-events must be positive")
  else if t.shards <= 0 then
    Error (Error.Invalid_config "shards must be positive")
  else
    match (t.jobs, t.late_retention) with
    | Some j, _ when j <= 0 ->
        Error (Error.Invalid_config "jobs must be positive")
    | _, Some r when r < 0 ->
        Error (Error.Invalid_config "late-retention must be non-negative")
    | _ -> Ok t

(* The one option parser behind every CLI entry point (`reconstruct`,
   `analyze`, `serve`): optional arguments mirror the flags, unnamed knobs
   keep their defaults, and the result is already validated — so flag
   plumbing cannot drift between subcommands. *)
let of_options ?use_intra ?use_inter ?jobs ?watermark ?chunk_events
    ?provenance ?shards ?late_retention () =
  let opt v d = Option.value v ~default:d in
  validate
    {
      use_intra = opt use_intra default.use_intra;
      use_inter = opt use_inter default.use_inter;
      jobs = (match jobs with Some j -> j | None -> default.jobs);
      watermark = opt watermark default.watermark;
      chunk_events = opt chunk_events default.chunk_events;
      provenance = opt provenance default.provenance;
      shards = opt shards default.shards;
      late_retention =
        (match late_retention with
        | Some r -> r
        | None -> default.late_retention);
    }

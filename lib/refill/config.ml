type t = {
  use_intra : bool;
  use_inter : bool;
  jobs : int option;
  watermark : int;
  chunk_events : int;
  provenance : bool;
  shards : int;
  late_retention : int option;
}

let default =
  {
    use_intra = true;
    use_inter = true;
    jobs = None;
    watermark = 50_000;
    chunk_events = 4096;
    provenance = false;
    shards = 1;
    late_retention = None;
  }

(* The default retention window: long enough that a straggler arriving a
   few eviction lifetimes late is still recognized, short enough that the
   evicted-key table stays a small multiple of the live frontier.  Guards
   against overflow for the "effectively infinite" watermarks tests use. *)
let resolved_retention t =
  match t.late_retention with
  | Some r -> r
  | None -> if t.watermark >= max_int / 4 then max_int else 4 * t.watermark

let validate t =
  if t.watermark <= 0 then
    Error (Error.Invalid_config "watermark must be positive")
  else if t.chunk_events <= 0 then
    Error (Error.Invalid_config "chunk-events must be positive")
  else if t.shards <= 0 then
    Error (Error.Invalid_config "shards must be positive")
  else
    match (t.jobs, t.late_retention) with
    | Some j, _ when j <= 0 ->
        Error (Error.Invalid_config "jobs must be positive")
    | _, Some r when r < 0 ->
        Error (Error.Invalid_config "late-retention must be non-negative")
    | _ -> Ok t

module Obs = Refill_obs

(* The engine's own event stream: run-local [stats] are counted locally
   and flushed into these process-wide counters in one batch when the run
   completes, so the same numbers flow to `--metrics` dumps and to callers
   — and runs on worker domains stay exact (the flush holds
   [Par.with_obs_lock]). *)
let c_logged =
  Obs.Metrics.Counter.v "refill_logged_events_total"
    ~help:"Input log events fired by the inference engines."

let c_inferred =
  Obs.Metrics.Counter.v "refill_inferred_events_total"
    ~help:"Lost events reconstructed by the inference engines."

let c_skipped =
  Obs.Metrics.Counter.v "refill_skipped_events_total"
    ~help:"Input log events with no available transition."

let c_cascades =
  Obs.Metrics.Counter.v "refill_prereq_cascades_total"
    ~help:"Prerequisite engine drives started (inter-node cascades)."

(* Counted here, not in Fsm.infer_intra: consume_helps probes the same
   derivation speculatively while deciding whether a pending record helps a
   drive, and those probes must not inflate the metric — only intra
   transitions the engine actually takes count. *)
let c_intra =
  Obs.Metrics.Counter.v "refill_intra_inferences_total"
    ~help:"Intra-node transitions taken (lost-path bridges actually emitted)."

let h_drive_depth =
  Obs.Metrics.Histogram.v "refill_drive_depth"
    ~help:"Recursion depth of prerequisite drives."
    ~buckets:(Obs.Metrics.Histogram.log_buckets ~lo:1. ~hi:1024. ~factor:2.)

(* Engine-side provenance mechanisms, flushed (only on provenance-enabled
   runs) in the same locked batch as the tallies above.  The engine knows
   each emission's mechanism statically, so these cost nothing per event —
   no decoding pass over the side-car.  Merge-time mechanisms
   (stall-recovery, anchor-carry) are counted by Global_flow, which
   decides them. *)
let c_prov_mech mech =
  Obs.Metrics.Counter.v "refill_provenance_events_total"
    ~help:"Events emitted per provenance mechanism (provenance-enabled runs)."
    ~labels:[ ("mechanism", Provenance.mechanism_name mech) ]

let c_prov_logged = c_prov_mech Provenance.Logged

let c_prov_intra = c_prov_mech Provenance.Intra_inference

let c_prov_inter = c_prov_mech Provenance.Inter_inference

type ('label, 'payload) item = {
  node : int;
  label : 'label;
  payload : 'payload option;
  inferred : bool;
  entered : Fsm_state.t;
}

type ('label, 'payload) config = {
  fsm_of : int -> 'label Fsm.t;
  prerequisites :
    node:int ->
    label:'label ->
    payload:'payload option ->
    (int * Fsm_state.t) list;
  infer_payload : node:int -> label:'label -> 'payload option;
}

type stats = {
  emitted_logged : int;
  emitted_inferred : int;
  skipped : int;
}

type ('label, 'payload) input =
  | Events of (int * 'label * 'payload option) array
  | Packed of {
      nodes : int array;
      labels : 'label array;
      ids : int array;
      payloads : 'payload option array;
      pre_nodes : int array;
      pre_states : Fsm_state.t array;
      srcs : int array;
    }

(* [visited] is a plain bool array indexed by state, and [pending] a list
   of ascending indices into the event array: per-packet instances are
   created and torn down a million times per CitySee run, so the per-event
   bookkeeping must not hash or allocate. *)
type ('label, 'payload) instance = {
  fsm : 'label Fsm.t;
  mutable state : Fsm_state.t;
  visited : bool array;
  driving : bool array;
      (* cycle guard: target states this instance is currently being
         driven toward (the recursion can only cycle through in-range
         states, so a per-instance flag array suffices) *)
  mutable pending : int list;  (* indices into the event array, local order *)
  mutable last_rec : int;
      (* provenance: source index of the last input event fired on this
         instance (-1 = none yet) — the local record bracketing any gap
         bridged on this node *)
}

(* One mutable context per run, threaded explicitly through top-level
   functions: the engine runs once per packet — a million times per
   CitySee reconstruction — and a closure group capturing a dozen refs
   costs hundreds of words per packet where this record costs one
   allocation. *)
type ('label, 'payload) ctx = {
  cfg : ('label, 'payload) config;
  use_intra : bool;
  labels : 'label array;
  payloads : 'payload option array;
  ids : int array;  (* per event: its label's dense id in its node's FSM *)
  (* Per-event inter-node prerequisite, resolved by the caller (packed
     input): peer node (-1 = none) and the state it must have visited.
     Empty arrays = not resolved; fall back to [cfg.prerequisites]. *)
  pre_nodes : int array;
  pre_states : Fsm_state.t array;
  consumed : bool array;
  (* Output sink: the engine emits each item in flow order the moment it
     fires, so batch callers collect (Reconstruct keeps a presized
     growable buffer) and streaming callers forward downstream without
     materializing the flow. *)
  emit_item : ('label, 'payload) item -> unit;
  (* Provenance side-car, recorded in lockstep with [emit_item] (one
     entry per emission, same order) into an engine-owned flat buffer.
     [Provenance.t] is a private int, so with [prov_on] the per-emission
     cost is bit packing plus one int-array store (no write barrier, no
     allocation); off, it is one branch. *)
  prov_on : bool;
  mutable provs : Provenance.t array;
  mutable n_provs : int;
  (* Per event: the index consumers know it by — for packed input, the
     packet's node-scan-order record index the packer permuted it from
     ([||] = identity, the event array position itself). *)
  srcs : int array;
  (* Source index of the input event currently firing (prerequisite
     cascades it starts cite it as evidence); -1 outside any fire. *)
  mutable cur_ev : int;
  (* Run-local tallies; flushed to the process-wide metrics in one locked
     batch at the end so parallel runs neither race nor interleave. *)
  mutable n_logged : int;
  mutable n_inferred : int;
  mutable n_skipped : int;
  mutable n_cascades : int;
  mutable n_intra : int;
  (* Inferred emissions produced by intra-node bridges; the remainder of
     [n_inferred] came from inter-node drives.  Together with [n_logged]
     this is the full engine-side mechanism split, tallied at the emit
     sites (where the mechanism is static) so provenance-enabled runs
     never decode the side-car to count. *)
  mutable n_intra_ev : int;
  (* Drive-depth tally: depth_counts.(d) = cascades observed at depth d.
     Depths are tiny (bounded by prerequisite chain length), so a small
     growable array replaces a per-cascade list and the flush becomes one
     bulk histogram update per distinct depth. *)
  mutable depth_counts : int array;
  mutable drive_depth : int;
  (* Per-packet node sets are tiny (a handful of hops), so a linear scan
     over parallel arrays beats any hash table. *)
  mutable inst_nodes : int array;
  mutable inst_vals : ('label, 'payload) instance array;
  mutable inst_n : int;
}

let note_depth ctx d =
  let counts = ctx.depth_counts in
  let counts =
    if d < Array.length counts then counts
    else begin
      let counts' = Array.make (max (d + 1) (2 * Array.length counts)) 0 in
      Array.blit counts 0 counts' 0 (Array.length counts);
      ctx.depth_counts <- counts';
      counts'
    end
  in
  counts.(d) <- counts.(d) + 1

let new_instance ctx node =
  let fsm = ctx.cfg.fsm_of node in
  let n_states = Fsm.n_states fsm in
  let visited = Array.make n_states false in
  let inst =
    {
      fsm;
      state = Fsm.initial fsm;
      visited;
      driving = Array.make n_states false;
      pending = [];
      last_rec = -1;
    }
  in
  visited.(inst.state) <- true;
  if ctx.inst_n = Array.length ctx.inst_nodes then begin
    let cap = max 8 (2 * ctx.inst_n) in
    let nodes' = Array.make cap (-1) in
    Array.blit ctx.inst_nodes 0 nodes' 0 ctx.inst_n;
    ctx.inst_nodes <- nodes';
    let vals' = Array.make cap inst in
    Array.blit ctx.inst_vals 0 vals' 0 ctx.inst_n;
    ctx.inst_vals <- vals'
  end;
  ctx.inst_nodes.(ctx.inst_n) <- node;
  ctx.inst_vals.(ctx.inst_n) <- inst;
  ctx.inst_n <- ctx.inst_n + 1;
  inst

let instance ctx node =
  let nodes = ctx.inst_nodes in
  let rec find i =
    if i >= ctx.inst_n then new_instance ctx node
    else if Array.unsafe_get nodes i = node then Array.unsafe_get ctx.inst_vals i
    else find (i + 1)
  in
  find 0

let rec next_pending ctx inst =
  (* Drop already-consumed heads, then peek; -1 = exhausted. *)
  match inst.pending with
  | [] -> -1
  | idx :: rest ->
      if ctx.consumed.(idx) then begin
        inst.pending <- rest;
        next_pending ctx inst
      end
      else idx

(* The source index consumers know event [idx] by (packed inputs permute
   the packet's records; [srcs] maps back). *)
let orig ctx idx =
  if Array.length ctx.srcs = 0 then idx else Array.unsafe_get ctx.srcs idx

let emit ctx node label payload ~inferred ~src ~entered ~mech ~ev1 ~ev2 =
  ctx.emit_item { node; label; payload; inferred; entered };
  if ctx.prov_on then begin
    let pv = Provenance.make2 mech ~src ~dst:entered ~e1:ev1 ~e2:ev2 in
    let k = ctx.n_provs in
    if k = Array.length ctx.provs then begin
      let grown = Array.make (max 64 (2 * k)) pv in
      Array.blit ctx.provs 0 grown 0 k;
      ctx.provs <- grown
    end;
    Array.unsafe_set ctx.provs k pv;
    ctx.n_provs <- k + 1
  end;
  if inferred then ctx.n_inferred <- ctx.n_inferred + 1
  else ctx.n_logged <- ctx.n_logged + 1

let enter inst dst =
  inst.state <- dst;
  inst.visited.(dst) <- true

let visited inst target =
  target >= 0 && target < Array.length inst.visited && inst.visited.(target)

let rec fire ctx idx node id label payload ~inferred =
  (* Scope [cur_ev] to this event: cascades it starts (directly or through
     the intra bridge below) cite it as their evidence; the caller's event
     is restored on the way out. *)
  let saved = ctx.cur_ev in
  ctx.cur_ev <- orig ctx idx;
  let fired = fire_event ctx idx node id label payload ~inferred in
  ctx.cur_ev <- saved;
  fired

and fire_event ctx idx node id label payload ~inferred =
  let inst = instance ctx node in
  let ev = orig ctx idx in
  match Fsm.step_id inst.fsm ~from:inst.state id with
  | -1 ->
      if not ctx.use_intra then false
      else begin
        match Fsm.infer_intra_id inst.fsm ~from:inst.state id with
        | None -> false
        | Some (lost_path, _jc) ->
            ctx.n_intra <- ctx.n_intra + 1;
            (* Evidence for the bridge: the node's last fired record (the
               gap's left bracket) and the record about to fire (right
               bracket). *)
            let bracket = inst.last_rec in
            List.iter
              (fun (_, d, l) ->
                let p = ctx.cfg.infer_payload ~node ~label:l in
                satisfy_prerequisites ctx node l p;
                let src = inst.state in
                enter inst d;
                ctx.n_intra_ev <- ctx.n_intra_ev + 1;
                emit ctx node l p ~inferred:true ~src ~entered:d
                  ~mech:Provenance.Intra_inference ~ev1:bracket ~ev2:ev)
              lost_path;
            (match Fsm.step_id inst.fsm ~from:inst.state id with
            | -1 ->
                (* infer_intra's path ends at a source of a normal
                   [label]-edge, so this branch is unreachable. *)
                assert false
            | dst ->
                satisfy_event_prereqs ctx idx node label payload;
                let src = inst.state in
                enter inst dst;
                emit ctx node label payload ~inferred ~src ~entered:dst
                  ~mech:Provenance.Logged ~ev1:ev ~ev2:(-1);
                inst.last_rec <- ev;
                true)
      end
  | dst ->
      satisfy_event_prereqs ctx idx node label payload;
      let src = inst.state in
      enter inst dst;
      emit ctx node label payload ~inferred ~src ~entered:dst
        ~mech:Provenance.Logged ~ev1:ev ~ev2:(-1);
      inst.last_rec <- ev;
      true

(* Prerequisite of an *input* event: packed callers resolved it into the
   per-event arrays; otherwise ask the config.  Inferred emissions always
   go through [satisfy_prerequisites] — they have no input slot. *)
and satisfy_event_prereqs ctx idx node label payload =
  if Array.length ctx.pre_nodes > 0 then begin
    let pn = Array.unsafe_get ctx.pre_nodes idx in
    if pn >= 0 then drive ctx pn ctx.pre_states.(idx)
  end
  else satisfy_prerequisites ctx node label payload

and satisfy_prerequisites ctx node label payload =
  match ctx.cfg.prerequisites ~node ~label ~payload with
  | [] -> ()
  | prereqs ->
      List.iter (fun (rnode, rstate) -> drive ctx rnode rstate) prereqs

and drive ctx rnode target =
  let inst = instance ctx rnode in
  (* A cycle re-enters drive for the same (instance, target), and only
     in-range targets can recurse (an out-of-range target fires nothing,
     so its drive terminates immediately); out-of-range targets skip the
     guard. *)
  let guarded = target >= 0 && target < Array.length inst.driving in
  if visited inst target then ()
  else if guarded && inst.driving.(target) then ()
  else begin
    if guarded then inst.driving.(target) <- true;
    ctx.drive_depth <- ctx.drive_depth + 1;
    ctx.n_cascades <- ctx.n_cascades + 1;
    note_depth ctx ctx.drive_depth;
    (try drive_loop ctx inst rnode target
     with e ->
       ctx.drive_depth <- ctx.drive_depth - 1;
       if guarded then inst.driving.(target) <- false;
       raise e);
    ctx.drive_depth <- ctx.drive_depth - 1;
    if guarded then inst.driving.(target) <- false
  end

and drive_loop ctx inst rnode target =
  if not (visited inst target) then begin
    let consumed_one =
      match next_pending ctx inst with
      | -1 -> false
      | idx ->
          if consume_helps ctx inst ctx.ids.(idx) target then begin
            ctx.consumed.(idx) <- true;
            if
              not
                (fire ctx idx rnode ctx.ids.(idx) ctx.labels.(idx)
                   ctx.payloads.(idx) ~inferred:false)
            then ctx.n_skipped <- ctx.n_skipped + 1;
            true
          end
          else false
    in
    if consumed_one then drive_loop ctx inst rnode target
    else infer_path_to ctx inst rnode target
  end

(* Would firing the node's next logged event visit [target] or keep it
   reachable? If not, consuming it here would overshoot; leave it for the
   main loop and bridge the gap by inference instead. *)
and consume_helps ctx inst id target =
  match Fsm.step_id inst.fsm ~from:inst.state id with
  | -1 ->
      ctx.use_intra
      && (match Fsm.infer_intra_id inst.fsm ~from:inst.state id with
         | None -> false
         | Some (lost_path, jc) ->
             jc = target
             || Fsm.reachable inst.fsm ~from:jc target
             || List.exists (fun (_, d, _) -> d = target) lost_path)
  | dst -> dst = target || Fsm.reachable inst.fsm ~from:dst target

and infer_path_to ctx inst rnode target =
  match Fsm.shortest_path inst.fsm ~from:inst.state ~to_:target with
  | None -> ()  (* unsatisfiable prerequisite: give up silently *)
  | Some path ->
      (* Evidence for the drive: the remote record that demanded this node's
         progress ([cur_ev]) and this node's own last fired record. *)
      let driver = ctx.cur_ev and local = inst.last_rec in
      List.iter
        (fun (_, d, l) ->
          let p = ctx.cfg.infer_payload ~node:rnode ~label:l in
          satisfy_prerequisites ctx rnode l p;
          let src = inst.state in
          enter inst d;
          emit ctx rnode l p ~inferred:true ~src ~entered:d
            ~mech:Provenance.Inter_inference ~ev1:driver ~ev2:local)
        path

let prov_dummy =
  Provenance.make2 Provenance.Logged ~src:(-1) ~dst:(-1) ~e1:(-1) ~e2:(-1)

(* Per-domain reusable side-car scratch: the engine runs once per packet,
   and allocating (then copying out of) a fresh buffer every run is the
   largest fixed cost of provenance-enabled runs on small packets.  The
   scratch lives for the domain's lifetime and grows to the largest packet
   seen; [prov_out] callees copy out the prefix they need. *)
let prov_scratch_key : Provenance.t array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [||])

let prov_scratch n =
  let scratch = Domain.DLS.get prov_scratch_key in
  let need = max 8 (n + (n / 8) + 8) in
  if Array.length scratch >= need then scratch
  else begin
    let scratch = Array.make need prov_dummy in
    Domain.DLS.set prov_scratch_key scratch;
    scratch
  end

let make_ctx config ~use_intra ~labels ~payloads ~ids ~pre_nodes ~pre_states
    ~emit_item ~prov_on ~srcs ~n =
  {
    cfg = config;
    use_intra;
    labels;
    payloads;
    ids;
    pre_nodes;
    pre_states;
    consumed = Array.make n false;
    emit_item;
    prov_on;
    (* Presized to the input event count plus a few percent: the output is
       the inputs plus the inferred events. *)
    provs =
      (if prov_on then prov_scratch n else [||]);
    n_provs = 0;
    srcs;
    cur_ev = -1;
    n_logged = 0;
    n_inferred = 0;
    n_skipped = 0;
    n_cascades = 0;
    n_intra = 0;
    n_intra_ev = 0;
    depth_counts = Array.make 16 0;
    drive_depth = 0;
    inst_nodes = [||];
    inst_vals = [||];
    inst_n = 0;
  }

let sweep ctx nodes =
  let n = Array.length nodes in
  for idx = 0 to n - 1 do
    if not ctx.consumed.(idx) then begin
      ctx.consumed.(idx) <- true;
      if
        not
          (fire ctx idx nodes.(idx) ctx.ids.(idx) ctx.labels.(idx)
             ctx.payloads.(idx) ~inferred:false)
      then ctx.n_skipped <- ctx.n_skipped + 1
    end
  done;
  Par.with_obs_lock (fun () ->
      Obs.Metrics.Counter.add c_logged ctx.n_logged;
      Obs.Metrics.Counter.add c_inferred ctx.n_inferred;
      Obs.Metrics.Counter.add c_skipped ctx.n_skipped;
      Obs.Metrics.Counter.add c_cascades ctx.n_cascades;
      Obs.Metrics.Counter.add c_intra ctx.n_intra;
      if ctx.prov_on then begin
        Obs.Metrics.Counter.add c_prov_logged ctx.n_logged;
        Obs.Metrics.Counter.add c_prov_intra ctx.n_intra_ev;
        Obs.Metrics.Counter.add c_prov_inter
          (ctx.n_inferred - ctx.n_intra_ev)
      end;
      Array.iteri
        (fun d times -> Obs.Metrics.Histogram.observe_int_n h_drive_depth d times)
        ctx.depth_counts);
  {
    emitted_logged = ctx.n_logged;
    emitted_inferred = ctx.n_inferred;
    skipped = ctx.n_skipped;
  }

let finish ?prov_out ctx nodes =
  let stats = sweep ctx nodes in
  (match prov_out with
  | None -> ()
  | Some f ->
      f ctx.provs ctx.n_provs;
      (* Persist any growth [emit] did, so the next run on this domain
         starts with the larger scratch. *)
      Domain.DLS.set prov_scratch_key ctx.provs);
  stats

let process ?(use_intra = true) ?prov_out config input ~emit:emit_item =
  let prov_on = prov_out <> None in
  match input with
  | Packed { nodes; labels; ids; payloads; pre_nodes; pre_states; srcs } ->
      let n = Array.length nodes in
      let ctx =
        make_ctx config ~use_intra ~labels ~payloads ~ids ~pre_nodes
          ~pre_states ~emit_item ~prov_on ~srcs ~n
      in
      for idx = n - 1 downto 0 do
        let inst = instance ctx nodes.(idx) in
        inst.pending <- idx :: inst.pending
      done;
      finish ?prov_out ctx nodes
  | Events arr ->
      let n = Array.length arr in
      if n = 0 then
        finish ?prov_out
          (make_ctx config ~use_intra ~labels:[||] ~payloads:[||] ~ids:[||]
             ~pre_nodes:[||] ~pre_states:[||] ~emit_item ~prov_on ~srcs:[||]
             ~n:0)
          [||]
      else begin
        let _, l0, p0 = arr.(0) in
        let nodes = Array.make n 0 in
        let labels = Array.make n l0 in
        let payloads = Array.make n p0 in
        let ids = Array.make n (-1) in
        let ctx =
          make_ctx config ~use_intra ~labels ~payloads ~ids ~pre_nodes:[||]
            ~pre_states:[||] ~emit_item ~prov_on ~srcs:[||] ~n
        in
        (* Per-node pending queues in merged (= local) order, and each
           event's label resolved to its instance FSM's dense id exactly
           once.  Reverse iteration builds the ascending pending lists
           directly. *)
        for idx = n - 1 downto 0 do
          let node, label, payload = arr.(idx) in
          nodes.(idx) <- node;
          labels.(idx) <- label;
          payloads.(idx) <- payload;
          let inst = instance ctx node in
          inst.pending <- idx :: inst.pending;
          ids.(idx) <- Fsm.label_id inst.fsm label
        done;
        finish ?prov_out ctx nodes
      end


module Obs = Refill_obs

(* The engine's own event stream: run-local [stats] are deltas of these
   process-wide counters, so the same numbers flow to `--metrics` dumps and
   to callers without parallel plumbing. *)
let c_logged =
  Obs.Metrics.Counter.v "refill_logged_events_total"
    ~help:"Input log events fired by the inference engines."

let c_inferred =
  Obs.Metrics.Counter.v "refill_inferred_events_total"
    ~help:"Lost events reconstructed by the inference engines."

let c_skipped =
  Obs.Metrics.Counter.v "refill_skipped_events_total"
    ~help:"Input log events with no available transition."

let c_cascades =
  Obs.Metrics.Counter.v "refill_prereq_cascades_total"
    ~help:"Prerequisite engine drives started (inter-node cascades)."

let h_drive_depth =
  Obs.Metrics.Histogram.v "refill_drive_depth"
    ~help:"Recursion depth of prerequisite drives."
    ~buckets:(Obs.Metrics.Histogram.log_buckets ~lo:1. ~hi:1024. ~factor:2.)

type ('label, 'payload) item = {
  node : int;
  label : 'label;
  payload : 'payload option;
  inferred : bool;
  entered : Fsm_state.t;
}

type ('label, 'payload) config = {
  fsm_of : int -> 'label Fsm.t;
  prerequisites :
    node:int ->
    label:'label ->
    payload:'payload option ->
    (int * Fsm_state.t) list;
  infer_payload : node:int -> label:'label -> 'payload option;
}

type stats = {
  emitted_logged : int;
  emitted_inferred : int;
  skipped : int;
}

type ('label, 'payload) instance = {
  fsm : 'label Fsm.t;
  mutable state : Fsm_state.t;
  visited : (Fsm_state.t, unit) Hashtbl.t;
  queue : int Queue.t;  (* indices into the event array, local order *)
}

let run ?(use_intra = true) config ~events =
  let arr = Array.of_list events in
  let n = Array.length arr in
  let consumed = Array.make n false in
  let out = ref [] in
  let base_logged = Obs.Metrics.Counter.value c_logged
  and base_inferred = Obs.Metrics.Counter.value c_inferred
  and base_skipped = Obs.Metrics.Counter.value c_skipped in
  let skip () = Obs.Metrics.Counter.inc c_skipped in
  let instances : (int, ('label, 'payload) instance) Hashtbl.t =
    Hashtbl.create 16
  in
  let instance node =
    match Hashtbl.find_opt instances node with
    | Some inst -> inst
    | None ->
        let fsm = config.fsm_of node in
        let inst =
          {
            fsm;
            state = Fsm.initial fsm;
            visited = Hashtbl.create 8;
            queue = Queue.create ();
          }
        in
        Hashtbl.replace inst.visited inst.state ();
        Hashtbl.add instances node inst;
        inst
  in
  (* Per-node pending queues in merged (= local) order. *)
  Array.iteri
    (fun idx (node, _, _) -> Queue.add idx (instance node).queue)
    arr;
  let next_pending inst =
    (* Drop already-consumed heads, then peek. *)
    let rec loop () =
      match Queue.peek_opt inst.queue with
      | Some idx when consumed.(idx) ->
          ignore (Queue.pop inst.queue : int);
          loop ()
      | other -> other
    in
    loop ()
  in
  let emit node label payload ~inferred ~entered =
    out := { node; label; payload; inferred; entered } :: !out;
    Obs.Metrics.Counter.inc (if inferred then c_inferred else c_logged)
  in
  let enter inst dst =
    inst.state <- dst;
    Hashtbl.replace inst.visited dst ()
  in
  (* Guard against prerequisite cycles: (node, target) pairs being driven. *)
  let driving = Hashtbl.create 8 in
  let drive_depth = ref 0 in
  let rec fire node label payload ~inferred =
    let inst = instance node in
    match Fsm.normal_next inst.fsm ~from:inst.state label with
    | Some dst ->
        satisfy_prerequisites node label payload;
        enter inst dst;
        emit node label payload ~inferred ~entered:dst;
        true
    | None when not use_intra -> false
    | None -> (
        match Fsm.infer_intra inst.fsm ~from:inst.state label with
        | None -> false
        | Some (lost_path, _jc) ->
            List.iter
              (fun (_, d, l) ->
                let p = config.infer_payload ~node ~label:l in
                satisfy_prerequisites node l p;
                enter inst d;
                emit node l p ~inferred:true ~entered:d)
              lost_path;
            (match Fsm.normal_next inst.fsm ~from:inst.state label with
            | Some dst ->
                satisfy_prerequisites node label payload;
                enter inst dst;
                emit node label payload ~inferred ~entered:dst;
                true
            | None ->
                (* infer_intra's path ends at a source of a normal
                   [label]-edge, so this branch is unreachable. *)
                assert false))

  and satisfy_prerequisites node label payload =
    List.iter
      (fun (rnode, rstate) -> drive rnode rstate)
      (config.prerequisites ~node ~label ~payload)

  and drive rnode target =
    let inst = instance rnode in
    if Hashtbl.mem inst.visited target then ()
    else if Hashtbl.mem driving (rnode, target) then ()
    else begin
      Hashtbl.add driving (rnode, target) ();
      incr drive_depth;
      Obs.Metrics.Counter.inc c_cascades;
      Obs.Metrics.Histogram.observe_int h_drive_depth !drive_depth;
      Fun.protect
        ~finally:(fun () ->
          decr drive_depth;
          Hashtbl.remove driving (rnode, target))
        (fun () -> drive_loop inst rnode target)
    end

  and drive_loop inst rnode target =
    if not (Hashtbl.mem inst.visited target) then begin
      let consumed_one =
        match next_pending inst with
        | None -> false
        | Some idx ->
            let _, label, payload = arr.(idx) in
            if consume_helps inst label target then begin
              consumed.(idx) <- true;
              if not (fire rnode label payload ~inferred:false) then skip ();
              true
            end
            else false
      in
      if consumed_one then drive_loop inst rnode target
      else infer_path_to inst rnode target
    end

  (* Would firing the node's next logged event visit [target] or keep it
     reachable? If not, consuming it here would overshoot; leave it for the
     main loop and bridge the gap by inference instead. *)
  and consume_helps inst label target =
    match Fsm.normal_next inst.fsm ~from:inst.state label with
    | Some dst -> dst = target || Fsm.reachable inst.fsm ~from:dst target
    | None when not use_intra -> false
    | None -> (
        match Fsm.infer_intra inst.fsm ~from:inst.state label with
        | None -> false
        | Some (lost_path, jc) ->
            jc = target
            || Fsm.reachable inst.fsm ~from:jc target
            || List.exists (fun (_, d, _) -> d = target) lost_path)

  and infer_path_to inst rnode target =
    match Fsm.shortest_path inst.fsm ~from:inst.state ~to_:target with
    | None -> ()  (* unsatisfiable prerequisite: give up silently *)
    | Some path ->
        List.iter
          (fun (_, d, l) ->
            let p = config.infer_payload ~node:rnode ~label:l in
            satisfy_prerequisites rnode l p;
            enter inst d;
            emit rnode l p ~inferred:true ~entered:d)
          path
  in
  Array.iteri
    (fun idx (node, label, payload) ->
      if not consumed.(idx) then begin
        consumed.(idx) <- true;
        if not (fire node label payload ~inferred:false) then skip ()
      end)
    arr;
  ( List.rev !out,
    {
      emitted_logged = Obs.Metrics.Counter.value c_logged - base_logged;
      emitted_inferred = Obs.Metrics.Counter.value c_inferred - base_inferred;
      skipped = Obs.Metrics.Counter.value c_skipped - base_skipped;
    } )

type t = int

let pp ppf s = Format.fprintf ppf "s%d" s

let equal = Int.equal

let compare = Int.compare

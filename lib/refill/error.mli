(** Stable pipeline errors for CLI-reachable paths.

    The reconstruction pipeline historically raised ad-hoc [Failure _] for
    every failure mode, leaving callers (the CLI, library embedders) to
    pattern-match on message strings.  This module gives the CLI-reachable
    failures stable constructors and a fixed exit-code mapping, so tools
    scripting `refill` can rely on the codes and library users can match on
    the variants instead of strings. *)

type t =
  | Io of { path : string; message : string }
      (** The OS refused a file operation (open/read/write). *)
  | Malformed of { source : string; message : string }
      (** A log dump or segment stream failed to parse.  [source] names the
          input (a path, or ["<stdin>"]). *)
  | Bad_checkpoint of { source : string; message : string }
      (** A stream checkpoint failed to parse or is internally
          inconsistent. *)
  | Invalid_config of string
      (** A configuration value is out of range or the requested option
          combination is unsupported. *)

val message : t -> string
(** Human-readable one-liner (no trailing newline). *)

val exit_code : t -> int
(** The CLI exit-code mapping: [Io]/[Malformed]/[Bad_checkpoint] are
    runtime failures (1); [Invalid_config] is a usage error (2, matching
    the `check` subcommand's exit code for unknown models). *)

val guard : source:string -> (unit -> 'a) -> ('a, t) result
(** Run [f], converting the exceptions the lower layers raise into errors:
    [Sys_error] becomes {!Io} and [Failure] becomes {!Malformed}
    (attributed to [source]).  Other exceptions propagate. *)

(** FSM states are dense integer indices. *)

type t = int

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val compare : t -> t -> int

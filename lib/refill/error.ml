type t =
  | Io of { path : string; message : string }
  | Malformed of { source : string; message : string }
  | Bad_checkpoint of { source : string; message : string }
  | Invalid_config of string

let message = function
  | Io { path; message } -> Printf.sprintf "%s: %s" path message
  | Malformed { source; message } ->
      Printf.sprintf "%s: malformed input: %s" source message
  | Bad_checkpoint { source; message } ->
      Printf.sprintf "%s: bad checkpoint: %s" source message
  | Invalid_config msg -> Printf.sprintf "invalid configuration: %s" msg

let exit_code = function
  | Io _ | Malformed _ | Bad_checkpoint _ -> 1
  | Invalid_config _ -> 2

let guard ~source f =
  match f () with
  | v -> Ok v
  | exception Sys_error msg -> Error (Io { path = source; message = msg })
  | exception Failure msg -> Error (Malformed { source; message = msg })

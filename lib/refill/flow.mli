(** Reconstructed per-packet event flows.

    A flow is the ordered list of events REFILL proved happened to one
    packet — logged events interleaved with inferred lost events, rendered
    in the paper's notation with inferred events in square brackets, e.g.
    ["1-2 trans, [1-2 recv], [2-3 trans], 2-3 recv"] (§IV.C case 1). *)

type item = (Protocol.label, Logsys.Record.t) Engine.item

type t = {
  origin : int;
  seq : int;
  items : item list;
  stats : Engine.stats;
  prov : Provenance.t array;
      (** Per-item provenance when the run collected it
          ({!Config.t.provenance}): [prov.(k)] explains the [k]-th element
          of [items].  [[||]] when provenance was off. *)
}

val packet_key : t -> int * int

val logged_items : t -> item list

val inferred_items : t -> item list

val length : t -> int

val item_to_string : item -> string
(** ["1-2 recv"] style; inferred items are bracketed: ["[1-2 recv]"];
    an unknown peer renders as [?]. *)

val to_string : t -> string
(** Comma-separated items. *)

val pp : Format.formatter -> t -> unit

val last_item : t -> item option

val nodes_visited : t -> int list
(** Nodes in order of first {!Protocol.holding} entry (the packet's hop
    path as reconstructed, origin first). *)

val to_sequence_diagram : t -> string
(** ASCII sequence diagram of the flow: one column per participating node
    (in hop order), one row per event; link events draw an arrow between
    the endpoints, inferred events are bracketed. *)

(* Domain fan-out for the per-packet reconstruction loop.

   Packets are independent, so Reconstruct.run shards them over a small
   pool of domains pulling indices from a shared atomic counter.  The only
   shared mutable state in a worker's path is the observability registry;
   workers batch their metric updates and flush under [with_obs_lock], so
   process-wide totals stay exact regardless of the fan-out. *)

let obs_mutex = Mutex.create ()

let with_obs_lock f =
  Mutex.lock obs_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock obs_mutex) f

let default_jobs () = Domain.recommended_domain_count ()

(* Below this many items a domain spawn costs more than it saves; callers
   use it to keep small workloads (unit tests, single packets) serial. *)
let min_parallel_items = 256

let map_array ~jobs f arr =
  let n = Array.length arr in
  let jobs = min jobs n in
  if n = 0 then [||]
  else if jobs <= 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* First worker exception, with its backtrace.  Workers trap instead of
       letting the exception escape the domain: an escaped exception would
       reach [Domain.join] (wrapped beyond recognition), leave its slots
       [None], and crash the collector below.  Once set, the remaining
       workers drain without calling [f] again. *)
    let error = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get error = None then begin
          (match f arr.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore
                (Atomic.compare_and_set error None (Some (e, bt)) : bool));
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

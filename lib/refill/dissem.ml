type label = L_adv | L_rx_adv | L_req | L_rx_req | L_data | L_rx_data | L_done

let label_name = function
  | L_adv -> "adv"
  | L_rx_adv -> "rx_adv"
  | L_req -> "req"
  | L_rx_req -> "rx_req"
  | L_data -> "data"
  | L_rx_data -> "rx_data"
  | L_done -> "done"

type event = { node : int; label : label; peer : int option }

let pp_event ppf e =
  match e.peer with
  | Some p -> Format.fprintf ppf "%s@%d(peer=%d)" (label_name e.label) e.node p
  | None -> Format.fprintf ppf "%s@%d" (label_name e.label) e.node

(* Receiver chain: init -rx_adv-> heard -req-> requested -rx_data-> received
   -done-> done. *)
let r_init = 0
let r_heard = 1
let r_requested = 2
let r_received = 3
let r_done = 4

let receiver_fsm =
  let f = Fsm.create ~n_states:5 ~initial:r_init in
  Fsm.add_transition f ~src:r_init ~dst:r_heard L_rx_adv;
  Fsm.add_transition f ~src:r_heard ~dst:r_requested L_req;
  Fsm.add_transition f ~src:r_requested ~dst:r_received L_rx_data;
  Fsm.add_transition f ~src:r_received ~dst:r_done L_done;
  (* Retries and re-advertisements are self-loops: the protocol repeats
     messages until progress is made. *)
  Fsm.add_transition f ~src:r_heard ~dst:r_heard L_rx_adv;
  Fsm.add_transition f ~src:r_requested ~dst:r_requested L_rx_adv;
  Fsm.add_transition f ~src:r_requested ~dst:r_requested L_req;
  Fsm.add_transition f ~src:r_received ~dst:r_received L_rx_adv;
  Fsm.add_transition f ~src:r_done ~dst:r_done L_rx_adv;
  f

let receiver_state_name = function
  | 0 -> "init"
  | 1 -> "heard"
  | 2 -> "requested"
  | 3 -> "received"
  | 4 -> "done"
  | s -> "state-" ^ string_of_int s

(* Broadcaster chain (per receiver): init -adv-> advertised -rx_req->
   got-request -data-> data-sent. *)
let b_init = 0
let b_advertised = 1
let b_got_request = 2
let b_data_sent = 3

let broadcaster_fsm =
  let f = Fsm.create ~n_states:4 ~initial:b_init in
  Fsm.add_transition f ~src:b_init ~dst:b_advertised L_adv;
  Fsm.add_transition f ~src:b_advertised ~dst:b_got_request L_rx_req;
  Fsm.add_transition f ~src:b_got_request ~dst:b_data_sent L_data;
  (* Periodic re-advertisement and request/data retries. *)
  Fsm.add_transition f ~src:b_advertised ~dst:b_advertised L_adv;
  Fsm.add_transition f ~src:b_got_request ~dst:b_got_request L_adv;
  Fsm.add_transition f ~src:b_got_request ~dst:b_got_request L_rx_req;
  Fsm.add_transition f ~src:b_data_sent ~dst:b_data_sent L_adv;
  Fsm.add_transition f ~src:b_data_sent ~dst:b_got_request L_rx_req;
  f

let broadcaster_state_name = function
  | 0 -> "init"
  | 1 -> "advertised"
  | 2 -> "got-request"
  | 3 -> "data-sent"
  | s -> "state-" ^ string_of_int s

let make_config ~broadcaster ~receiver : (label, event) Engine.config =
  {
    fsm_of =
      (fun node -> if node = broadcaster then broadcaster_fsm else receiver_fsm);
    prerequisites =
      (fun ~node:_ ~label ~payload:_ ->
        (* Each reception implies the corresponding transmission reached the
           required point on the other engine. *)
        match label with
        | L_rx_adv -> [ (broadcaster, b_advertised) ]
        | L_rx_req -> [ (receiver, r_requested) ]
        | L_rx_data -> [ (broadcaster, b_data_sent) ]
        | L_adv | L_req | L_data | L_done -> []);
    infer_payload =
      (fun ~node ~label ->
        let peer =
          match label with
          | L_adv | L_done -> None
          | L_rx_adv | L_req | L_rx_data -> Some broadcaster
          | L_rx_req | L_data -> Some receiver
        in
        Some { node; label; peer });
  }

let pair_events ~broadcaster ~receiver events =
  List.filter
    (fun e ->
      if e.node = receiver then true
      else if e.node = broadcaster then
        match e.peer with None -> true | Some p -> p = receiver
      else false)
    events

let reconstruct ~broadcaster ~receiver ~events =
  let events = pair_events ~broadcaster ~receiver events in
  let engine_events =
    Array.of_list (List.map (fun e -> (e.node, e.label, Some e)) events)
  in
  let acc = ref [] in
  let stats =
    Engine.process
      (make_config ~broadcaster ~receiver)
      (Engine.Events engine_events)
      ~emit:(fun it -> acc := it :: !acc)
  in
  (List.rev !acc, stats)

let receiver_progress ~receiver items =
  List.fold_left
    (fun best (i : (label, event) Engine.item) ->
      if i.node = receiver && i.entered > best then i.entered else best)
    r_init items

let analyze_round ~broadcaster ~events =
  let receivers =
    List.filter_map
      (fun e -> if e.node <> broadcaster then Some e.node else None)
      events
    |> List.sort_uniq Int.compare
  in
  List.map
    (fun receiver ->
      let items, _ = reconstruct ~broadcaster ~receiver ~events in
      (receiver, receiver_progress ~receiver items))
    receivers

let analyze_epidemic ~seed ~events =
  (* Receivers: every node with receiver-side records. *)
  let receiver_side (e : event) =
    match e.label with
    | L_rx_adv | L_req | L_rx_data | L_done -> true
    | L_adv | L_rx_req | L_data -> false
  in
  let receivers =
    List.filter_map
      (fun e -> if receiver_side e && e.node <> seed then Some e.node else None)
      events
    |> List.sort_uniq Int.compare
  in
  (* Candidate sources of [r]: peers of r's own records, plus any node whose
     broadcaster-side records name r. *)
  let sources_of r =
    let from_own =
      List.filter_map
        (fun e -> if e.node = r && receiver_side e then e.peer else None)
        events
    in
    let from_servers =
      List.filter_map
        (fun e ->
          match e.label with
          | (L_rx_req | L_data) when e.peer = Some r -> Some e.node
          | _ -> None)
        events
    in
    List.sort_uniq Int.compare (from_own @ from_servers)
    |> List.filter (fun s -> s <> r)
  in
  List.map
    (fun r ->
      let progress =
        List.fold_left
          (fun best s ->
            let items, _ = reconstruct ~broadcaster:s ~receiver:r ~events in
            max best (receiver_progress ~receiver:r items))
          r_init (sources_of r)
      in
      (r, progress))
    receivers

(* -- Synthetic workload ---------------------------------------------------- *)

type outcome = { events : event list; completed : (int * bool) list }

let generate rng ~broadcaster ~receivers ~message_loss ~record_loss =
  (* The broadcaster writes one adv record for the round; each receiver's
     exchange then proceeds message by message, truncating at the first
     lost message. *)
  let lost () = Prelude.Rng.bernoulli rng ~p:message_loss in
  let b_log = ref [ { node = broadcaster; label = L_adv; peer = None } ] in
  let receiver_logs_and_fate =
    List.map
      (fun r ->
        let log = ref [] in
        let completed =
          if lost () then false (* advert never heard *)
          else begin
            log := { node = r; label = L_rx_adv; peer = Some broadcaster } :: !log;
            log := { node = r; label = L_req; peer = Some broadcaster } :: !log;
            if lost () then false (* request lost in the air *)
            else begin
              b_log :=
                { node = broadcaster; label = L_rx_req; peer = Some r }
                :: !b_log;
              b_log :=
                { node = broadcaster; label = L_data; peer = Some r } :: !b_log;
              if lost () then false (* data lost in the air *)
              else begin
                log :=
                  { node = r; label = L_rx_data; peer = Some broadcaster }
                  :: !log;
                log := { node = r; label = L_done; peer = None } :: !log;
                true
              end
            end
          end
        in
        (r, List.rev !log, completed))
      receivers
  in
  let all_written =
    List.rev !b_log
    @ List.concat_map (fun (_, log, _) -> log) receiver_logs_and_fate
  in
  let surviving =
    List.filter
      (fun _ -> not (Prelude.Rng.bernoulli rng ~p:record_loss))
      all_written
  in
  {
    events = surviving;
    completed = List.map (fun (r, _, c) -> (r, c)) receiver_logs_and_fate;
  }

(* The FSM graph plus a memoized query layer.

   Role FSMs are built once and shared across every packet's engine
   instance, while the hot path (Engine.consume_helps / fire) probes
   [normal_next], [reachable], and [infer_intra] once per pending record
   per drive step.  Recomputing a BFS per probe made a full CitySee run
   O(records^2 * states); the cache below makes every steady-state query a
   table lookup, computed lazily per source state / per (state, label)
   pair and invalidated wholesale by [add_transition].

   The mutable base representation ([transitions_rev], [by_src_rev],
   [edge_set]) is the single source of truth; everything in ['label cache]
   is derived.  [build_cache] asserts the base structures agree so a
   mutation that bypassed [add_transition] (and hence [invalidate]) trips
   in debug builds instead of serving stale answers. *)

type 'label bfs_tree = {
  seen : bool array;
  (* parent.(v) = Some (u, label) on a shortest-path tree rooted at the
     source; edges explored in insertion order for determinism. *)
  parent : (Fsm_state.t * 'label) option array;
}

(* Lazily filled memo slot.  [Value] payloads are physically shared with
   every subsequent query answer, which is what makes the warm query paths
   allocation-free. *)
type 'a memo = Unevaluated | Value of 'a

type 'label cache = {
  edges_fwd : (Fsm_state.t * 'label) list array;  (* insertion order *)
  labels_fwd : 'label list;  (* distinct, insertion order *)
  n_labels : int;
  label_ids : ('label, int) Hashtbl.t;  (* dense ids, insertion order *)
  label_arr : 'label array;  (* id -> label *)
  step_arr : int array;
      (* (src * n_labels + label id) -> dst + 1; 0 = no normal edge.
         First-added wins: the normal_next contract, now one array read. *)
  step_all : (Fsm_state.t * 'label, Fsm_state.t list) Hashtbl.t;
  label_targets : ('label, Fsm_state.t list) Hashtbl.t;
      (* distinct normal targets per label, insertion order *)
  label_sources : ('label * Fsm_state.t, Fsm_state.t list) Hashtbl.t;
      (* sources of [label]-edges into a target, insertion order *)
  bfs : 'label bfs_tree option array;  (* per source, filled lazily *)
  intra :
    ((Fsm_state.t * Fsm_state.t * 'label) list * Fsm_state.t) option memo
    array;
      (* (src * n_labels + label id) -> memoized infer_intra, including
         negative results *)
  spath : (Fsm_state.t * Fsm_state.t * 'label) list option memo array;
      (* (from * n_states + to_) -> memoized shortest_path *)
}

type 'label t = {
  n_states : int;
  initial : Fsm_state.t;
  mutable transitions_rev : (Fsm_state.t * Fsm_state.t * 'label) list;
  mutable n_transitions : int;
  by_src_rev : (Fsm_state.t * 'label) list array;  (* newest first *)
  edge_set : (Fsm_state.t * Fsm_state.t * 'label, unit) Hashtbl.t;
  mutable cache : 'label cache option;
}

let create ~n_states ~initial =
  if n_states <= 0 then invalid_arg "Fsm.create: n_states";
  if initial < 0 || initial >= n_states then invalid_arg "Fsm.create: initial";
  {
    n_states;
    initial;
    transitions_rev = [];
    n_transitions = 0;
    by_src_rev = Array.make n_states [];
    edge_set = Hashtbl.create 32;
    cache = None;
  }

let n_states t = t.n_states

let initial t = t.initial

let in_range t s = s >= 0 && s < t.n_states

let transitions t = List.rev t.transitions_rev

let check_state t s name =
  if s < 0 || s >= t.n_states then invalid_arg ("Fsm.add_transition: " ^ name)

let invalidate t = t.cache <- None

let add_transition t ~src ~dst label =
  check_state t src "src";
  check_state t dst "dst";
  if not (Hashtbl.mem t.edge_set (src, dst, label)) then begin
    Hashtbl.add t.edge_set (src, dst, label) ();
    t.transitions_rev <- (src, dst, label) :: t.transitions_rev;
    t.by_src_rev.(src) <- (dst, label) :: t.by_src_rev.(src);
    t.n_transitions <- t.n_transitions + 1;
    invalidate t
  end

(* The three base structures must describe the same edge multiset (each
   edge exactly once).  Runs on every cache (re)build, which only happens
   after construction or mutation — never on the query hot path. *)
let base_consistent t =
  let by_src_total =
    Array.fold_left (fun acc l -> acc + List.length l) 0 t.by_src_rev
  in
  t.n_transitions = List.length t.transitions_rev
  && t.n_transitions = by_src_total
  && t.n_transitions = Hashtbl.length t.edge_set
  && List.for_all (fun e -> Hashtbl.mem t.edge_set e) t.transitions_rev

(* Build every label/step index in one pass over the transitions in
   insertion order; lists accumulate reversed and are flipped at the end. *)
let build_cache t =
  assert (base_consistent t);
  let step_all = Hashtbl.create 32 in
  let label_targets = Hashtbl.create 16 in
  let label_sources = Hashtbl.create 32 in
  let label_ids = Hashtbl.create 16 in
  let labels_acc = ref [] in
  let push tbl key v =
    Hashtbl.replace tbl key
      (v :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
  in
  List.iter
    (fun (src, dst, l) ->
      push step_all (src, l) dst;
      (match Hashtbl.find_opt label_targets l with
      | None ->
          Hashtbl.add label_ids l (Hashtbl.length label_ids);
          labels_acc := l :: !labels_acc;
          Hashtbl.add label_targets l [ dst ]
      | Some targets ->
          if not (List.mem dst targets) then
            Hashtbl.replace label_targets l (dst :: targets));
      push label_sources (l, dst) src)
    (transitions t);
  let rev_values tbl = Hashtbl.iter (fun k v -> Hashtbl.replace tbl k (List.rev v)) tbl in
  rev_values step_all;
  rev_values label_targets;
  rev_values label_sources;
  let labels_fwd = List.rev !labels_acc in
  let n_labels = List.length labels_fwd in
  let step_arr = Array.make (t.n_states * n_labels) 0 in
  List.iter
    (fun (src, dst, l) ->
      let slot = (src * n_labels) + Hashtbl.find label_ids l in
      if step_arr.(slot) = 0 then step_arr.(slot) <- dst + 1)
    (transitions t);
  {
    edges_fwd = Array.map List.rev t.by_src_rev;
    labels_fwd;
    n_labels;
    label_ids;
    label_arr = Array.of_list labels_fwd;
    step_arr;
    step_all;
    label_targets;
    label_sources;
    bfs = Array.make t.n_states None;
    intra = Array.make (t.n_states * n_labels) Unevaluated;
    spath = Array.make (t.n_states * t.n_states) Unevaluated;
  }

let cache t =
  match t.cache with
  | Some c -> c
  | None ->
      let c = build_cache t in
      t.cache <- Some c;
      c

let labels t = (cache t).labels_fwd

(* -- Integer fast path. --------------------------------------------------
   The engine resolves each event's label to a dense id once, then every
   per-event probe is an array read: no tuple keys, no polymorphic
   hashing, no option allocation on the warm path. *)

let label_id t label =
  let c = cache t in
  try Hashtbl.find c.label_ids label with Not_found -> -1

let step_id t ~from id =
  if id < 0 then -1
  else
    let c = cache t in
    c.step_arr.((from * c.n_labels) + id) - 1

let normal_next t ~from label =
  if not (in_range t from) then None
  else
    match step_id t ~from (label_id t label) with
    | -1 -> None
    | dst -> Some dst

let normal_next_all t ~from label =
  Option.value ~default:[] (Hashtbl.find_opt (cache t).step_all (from, label))

let edges_from t src =
  if not (in_range t src) then [] else (cache t).edges_fwd.(src)

let targets_of_label t label =
  Option.value ~default:[] (Hashtbl.find_opt (cache t).label_targets label)

let edges_of_label t label =
  List.filter_map
    (fun (src, dst, l) -> if l = label then Some (src, dst) else None)
    (transitions t)

let bfs_tree t ~from =
  let c = cache t in
  match c.bfs.(from) with
  | Some tree -> tree
  | None ->
      let seen = Array.make t.n_states false in
      let parent = Array.make t.n_states None in
      seen.(from) <- true;
      let queue = Queue.create () in
      Queue.add from queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun (v, l) ->
            if not seen.(v) then begin
              seen.(v) <- true;
              parent.(v) <- Some (u, l);
              Queue.add v queue
            end)
          c.edges_fwd.(u)
      done;
      let tree = { seen; parent } in
      c.bfs.(from) <- Some tree;
      tree

let reachable t ~from target =
  if not (in_range t from && in_range t target) then false
  else from = target || (bfs_tree t ~from).seen.(target)

(* Lossy-observation projection step: which states can an observer be in
   after seeing label [l] from state [from], given that any number of
   records may have been lost before [l]?  Exactly the targets of [l]-edges
   whose source is reachable from [from]. *)
let obs_targets t ~from label =
  if not (in_range t from) then []
  else
    List.filter
      (fun jc ->
        let sources =
          Option.value ~default:[]
            (Hashtbl.find_opt (cache t).label_sources (label, jc))
        in
        List.exists (fun ic -> reachable t ~from ic) sources)
      (targets_of_label t label)

let compute_shortest_path t ~from ~to_ =
  if from = to_ then Some []
  else begin
    let { seen; parent } = bfs_tree t ~from in
    if not seen.(to_) then None
    else begin
      let rec build v acc =
        match parent.(v) with
        | None -> acc
        | Some (u, l) -> build u ((u, v, l) :: acc)
      in
      Some (build to_ [])
    end
  end

(* Memoized: the returned path list is physically shared between calls
   (treat it as immutable, which the type already enforces). *)
let shortest_path t ~from ~to_ =
  if not (in_range t from && in_range t to_) then None
  else
    let c = cache t in
    let slot = (from * t.n_states) + to_ in
    match c.spath.(slot) with
    | Value r -> r
    | Unevaluated ->
        let r = compute_shortest_path t ~from ~to_ in
        c.spath.(slot) <- Value r;
        r

let intra_target t ~from label =
  if not (in_range t from) then None
  else
    let reachable_targets =
      targets_of_label t label
      |> List.filter (fun jc -> reachable t ~from jc)
    in
    match reachable_targets with [ jc ] -> Some jc | [] | _ :: _ :: _ -> None

let compute_infer_intra t ~from label =
  match intra_target t ~from label with
  | None -> None
  | Some jc ->
      (* Among normal [label]-edges into [jc], pick the one whose source is
         closest to [from]; the lost events are the path to that source.
         Ties resolve to the earliest-added source. *)
      let sources =
        Option.value ~default:[]
          (Hashtbl.find_opt (cache t).label_sources (label, jc))
      in
      let best =
        List.fold_left
          (fun best ic ->
            match shortest_path t ~from ~to_:ic with
            | None -> best
            | Some path -> (
                match best with
                | Some (_, best_path)
                  when List.length best_path <= List.length path ->
                    best
                | _ -> Some (ic, path)))
          None sources
      in
      Option.map (fun (_, path) -> (path, jc)) best

(* A label unknown to the FSM has id -1 and can never derive an intra
   transition; returning None without a memo write keeps a [precompute]d
   FSM write-free under probes with foreign labels (domain safety). *)
let infer_intra_id t ~from id =
  if id < 0 || not (in_range t from) then None
  else
    let c = cache t in
    let slot = (from * c.n_labels) + id in
    match c.intra.(slot) with
    | Value r -> r
    | Unevaluated ->
        let r = compute_infer_intra t ~from c.label_arr.(id) in
        c.intra.(slot) <- Value r;
        r

let infer_intra t ~from label = infer_intra_id t ~from (label_id t label)

let precompute t =
  let c = cache t in
  for s = 0 to t.n_states - 1 do
    ignore (bfs_tree t ~from:s : _ bfs_tree);
    for d = 0 to t.n_states - 1 do
      ignore (shortest_path t ~from:s ~to_:d)
    done;
    for id = 0 to c.n_labels - 1 do
      ignore (infer_intra_id t ~from:s id)
    done
  done

let derived_intra_edges t =
  let out = ref [] in
  for src = t.n_states - 1 downto 0 do
    List.iter
      (fun label ->
        match normal_next t ~from:src label with
        | Some _ -> ()  (* the engine prefers the normal edge *)
        | None -> (
            match intra_target t ~from:src label with
            | Some jc when jc <> src -> out := (src, jc, label) :: !out
            | Some _ | None -> ()))
      (labels t)
  done;
  !out

let to_dot ?(name = "fsm") ?(intra = false) ~label_name ~state_name t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=LR;\n";
  Buffer.add_string buf
    (Printf.sprintf "  %S [shape=doublecircle];\n" (state_name t.initial));
  List.iter
    (fun (src, dst, l) ->
      Buffer.add_string buf
        (Printf.sprintf "  %S -> %S [label=%S];\n" (state_name src)
           (state_name dst) (label_name l)))
    (transitions t);
  if intra then
    List.iter
      (fun (src, dst, l) ->
        Buffer.add_string buf
          (Printf.sprintf "  %S -> %S [label=%S, style=dashed];\n"
             (state_name src) (state_name dst) (label_name l)))
      (derived_intra_edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

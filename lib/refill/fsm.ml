let c_intra =
  Refill_obs.Metrics.Counter.v "refill_intra_inferences_total"
    ~help:"Successful intra-node transition derivations (lost-path bridges)."

type 'label t = {
  n_states : int;
  initial : Fsm_state.t;
  (* Normal transitions in insertion order, also indexed by source state. *)
  mutable transitions_rev : (Fsm_state.t * Fsm_state.t * 'label) list;
  by_src : (Fsm_state.t * 'label) list array;  (* (dst, label), insertion order *)
}

let create ~n_states ~initial =
  if n_states <= 0 then invalid_arg "Fsm.create: n_states";
  if initial < 0 || initial >= n_states then invalid_arg "Fsm.create: initial";
  { n_states; initial; transitions_rev = []; by_src = Array.make n_states [] }

let n_states t = t.n_states

let initial t = t.initial

let check_state t s name =
  if s < 0 || s >= t.n_states then invalid_arg ("Fsm.add_transition: " ^ name)

let add_transition t ~src ~dst label =
  check_state t src "src";
  check_state t dst "dst";
  let exists =
    List.exists (fun (d, l) -> d = dst && l = label) t.by_src.(src)
  in
  if not exists then begin
    t.transitions_rev <- (src, dst, label) :: t.transitions_rev;
    t.by_src.(src) <- t.by_src.(src) @ [ (dst, label) ]
  end

let transitions t = List.rev t.transitions_rev

let labels t =
  List.fold_left
    (fun acc (_, _, l) -> if List.mem l acc then acc else acc @ [ l ])
    [] (transitions t)

let normal_next t ~from label =
  let rec find = function
    | [] -> None
    | (dst, l) :: rest -> if l = label then Some dst else find rest
  in
  find t.by_src.(from)

let normal_next_all t ~from label =
  List.filter_map
    (fun (dst, l) -> if l = label then Some dst else None)
    t.by_src.(from)

let edges_from t src =
  if src < 0 || src >= t.n_states then [] else t.by_src.(src)

let bfs_parents t ~from =
  (* parent.(v) = Some (u, label) on a shortest path tree rooted at [from];
     edges explored in insertion order for determinism. *)
  let parent = Array.make t.n_states None in
  let seen = Array.make t.n_states false in
  seen.(from) <- true;
  let queue = Queue.create () in
  Queue.add from queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun (v, l) ->
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- Some (u, l);
          Queue.add v queue
        end)
      t.by_src.(u)
  done;
  (seen, parent)

let in_range t s = s >= 0 && s < t.n_states

let reachable t ~from target =
  if not (in_range t from && in_range t target) then false
  else if from = target then true
  else begin
    let seen, _ = bfs_parents t ~from in
    seen.(target)
  end

let shortest_path t ~from ~to_ =
  if not (in_range t from && in_range t to_) then None
  else if from = to_ then Some []
  else begin
    let seen, parent = bfs_parents t ~from in
    if not seen.(to_) then None
    else begin
      let rec build v acc =
        match parent.(v) with
        | None -> acc
        | Some (u, l) -> build u ((u, v, l) :: acc)
      in
      Some (build to_ [])
    end
  end

(* Distinct normal targets of [label]. *)
let targets_of_label t label =
  List.fold_left
    (fun acc (_, dst, l) ->
      if l = label && not (List.mem dst acc) then acc @ [ dst ] else acc)
    [] (transitions t)

let intra_target t ~from label =
  let reachable_targets =
    targets_of_label t label |> List.filter (fun jc -> reachable t ~from jc)
  in
  match reachable_targets with [ jc ] -> Some jc | [] | _ :: _ :: _ -> None

let infer_intra t ~from label =
  match intra_target t ~from label with
  | None -> None
  | Some jc ->
      (* Among normal [label]-edges into [jc], pick the one whose source is
         closest to [from]; the lost events are the path to that source. *)
      let sources =
        transitions t
        |> List.filter_map (fun (src, dst, l) ->
               if l = label && dst = jc then Some src else None)
      in
      let best =
        List.fold_left
          (fun best ic ->
            match shortest_path t ~from ~to_:ic with
            | None -> best
            | Some path -> (
                match best with
                | Some (_, best_path)
                  when List.length best_path <= List.length path ->
                    best
                | _ -> Some (ic, path)))
          None sources
      in
      (match best with
      | Some _ -> Refill_obs.Metrics.Counter.inc c_intra
      | None -> ());
      Option.map (fun (_, path) -> (path, jc)) best

let derived_intra_edges t =
  let out = ref [] in
  for src = t.n_states - 1 downto 0 do
    List.iter
      (fun label ->
        match normal_next t ~from:src label with
        | Some _ -> ()  (* the engine prefers the normal edge *)
        | None -> (
            match intra_target t ~from:src label with
            | Some jc when jc <> src -> out := (src, jc, label) :: !out
            | Some _ | None -> ()))
      (labels t)
  done;
  !out

let to_dot ?(name = "fsm") ?(intra = false) ~label_name ~state_name t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=LR;\n";
  Buffer.add_string buf
    (Printf.sprintf "  %S [shape=doublecircle];\n" (state_name t.initial));
  List.iter
    (fun (src, dst, l) ->
      Buffer.add_string buf
        (Printf.sprintf "  %S -> %S [label=%S];\n" (state_name src)
           (state_name dst) (label_name l)))
    (transitions t);
  if intra then
    List.iter
      (fun (src, dst, l) ->
        Buffer.add_string buf
          (Printf.sprintf "  %S -> %S [label=%S, style=dashed];\n"
             (state_name src) (state_name dst) (label_name l)))
      (derived_intra_edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

module Obs = Refill_obs

let h_latency =
  Obs.Metrics.Histogram.v "refill_packet_latency_seconds"
    ~help:"Wall time to reconstruct one packet's event flow."

let c_packets =
  Obs.Metrics.Counter.v "refill_packets_reconstructed_total"
    ~help:"Packets run through the reconstruction engines."

(* Growable item buffer for collecting one packet's emissions: presized to
   the input event count plus a few percent (output is the inputs plus the
   inferred events), so the common packet pays one array allocation and no
   cons garbage on the hot path. *)
type 'a buf = { mutable data : 'a array; mutable len : int; hint : int }

let buf_create hint = { data = [||]; len = 0; hint }

let buf_push b it =
  if b.len = Array.length b.data then begin
    let cap = max (max 8 b.hint) (2 * b.len) in
    let grown = Array.make cap it in
    Array.blit b.data 0 grown 0 b.len;
    b.data <- grown
  end;
  Array.unsafe_set b.data b.len it;
  b.len <- b.len + 1

let buf_to_list b =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) (Array.unsafe_get b.data i :: acc)
  in
  go (b.len - 1) []

let of_records ?(use_intra = true) ?(use_inter = true) ?(provenance = false)
    records ~origin ~seq ~sink =
  let t0 = Obs.Span.now_us () in
  let p = Protocol.pack_events records ~origin ~sink in
  let config = Protocol.make_config_of_records ~records ~origin ~seq ~sink in
  let config =
    if use_inter then config
    else { config with prerequisites = (fun ~node:_ ~label:_ ~payload:_ -> []) }
  in
  let pre_nodes, pre_states =
    (* [use_inter:false] must suppress the packed prerequisites too — empty
       arrays route every event through the (nulled) closure. *)
    if use_inter then (p.Protocol.p_pre_nodes, p.Protocol.p_pre_states)
    else ([||], [||])
  in
  let n = Array.length p.Protocol.p_nodes in
  let items = buf_create (n + (n / 8) + 8) in
  let prov = ref [||] in
  let prov_out =
    if provenance then Some (fun buf len -> prov := Array.sub buf 0 len)
    else None
  in
  let stats =
    Engine.process ~use_intra ?prov_out config
      (Engine.Packed
         {
           nodes = p.Protocol.p_nodes;
           labels = p.Protocol.p_labels;
           ids = p.Protocol.p_ids;
           payloads = p.Protocol.p_payloads;
           pre_nodes;
           pre_states;
           srcs = p.Protocol.p_srcs;
         })
      ~emit:(buf_push items)
  in
  let prov = !prov in
  Par.with_obs_lock (fun () ->
      Obs.Metrics.Counter.inc c_packets;
      Obs.Metrics.Histogram.observe h_latency
        ((Obs.Span.now_us () -. t0) /. 1e6));
  { Flow.origin; seq; items = buf_to_list items; stats; prov }

let of_arena ?(use_intra = true) ?(use_inter = true) ?(provenance = false)
    arena ~rows ~origin ~seq ~sink =
  let t0 = Obs.Span.now_us () in
  let p = Protocol.pack_arena arena rows ~origin ~sink in
  let config = Protocol.make_config_of_arena ~arena ~rows ~origin ~seq ~sink in
  let config =
    if use_inter then config
    else { config with prerequisites = (fun ~node:_ ~label:_ ~payload:_ -> []) }
  in
  let pre_nodes, pre_states =
    if use_inter then (p.Protocol.p_pre_nodes, p.Protocol.p_pre_states)
    else ([||], [||])
  in
  let n = Array.length p.Protocol.p_nodes in
  let items = buf_create (n + (n / 8) + 8) in
  let prov = ref [||] in
  let prov_out =
    if provenance then Some (fun buf len -> prov := Array.sub buf 0 len)
    else None
  in
  let stats =
    Engine.process ~use_intra ?prov_out config
      (Engine.Packed
         {
           nodes = p.Protocol.p_nodes;
           labels = p.Protocol.p_labels;
           ids = p.Protocol.p_ids;
           payloads = p.Protocol.p_payloads;
           pre_nodes;
           pre_states;
           srcs = p.Protocol.p_srcs;
         })
      ~emit:(buf_push items)
  in
  let prov = !prov in
  Par.with_obs_lock (fun () ->
      Obs.Metrics.Counter.inc c_packets;
      Obs.Metrics.Histogram.observe h_latency
        ((Obs.Span.now_us () -. t0) /. 1e6));
  { Flow.origin; seq; items = buf_to_list items; stats; prov }

let packet_untraced ?use_intra ?use_inter ?provenance collected ~origin ~seq
    ~sink =
  let records = Logsys.Collected.packet_records collected ~origin ~seq in
  of_records ?use_intra ?use_inter ?provenance records ~origin ~seq ~sink

let packet ?use_intra ?use_inter ?provenance collected ~origin ~seq ~sink =
  if Obs.Span.enabled () then
    Obs.Span.with_ ~name:"refill.packet"
      ~attrs:[ ("origin", string_of_int origin); ("seq", string_of_int seq) ]
      (fun () ->
        packet_untraced ?use_intra ?use_inter ?provenance collected ~origin
          ~seq ~sink)
  else
    packet_untraced ?use_intra ?use_inter ?provenance collected ~origin ~seq
      ~sink

let run ?(config = Config.default) collected ~sink ~emit =
  Obs.Span.with_ ~name:"refill.reconstruct_all" (fun () ->
      (* packet_keys also builds the per-packet record index, so by the
         time workers run, the collected snapshot is read-only. *)
      let keys = Array.of_list (Logsys.Collected.packet_keys collected) in
      let use_intra = config.Config.use_intra in
      let use_inter = config.Config.use_inter in
      let provenance = config.Config.provenance in
      let jobs =
        match config.Config.jobs with
        | Some j -> max 1 j
        | None -> Par.default_jobs ()
      in
      let jobs =
        (* Tracing writes span events through a shared sink; keep those
           runs serial.  Small workloads aren't worth a domain spawn. *)
        if Obs.Span.enabled () || Array.length keys < Par.min_parallel_items
        then 1
        else jobs
      in
      if jobs <= 1 then
        Array.iter
          (fun (origin, seq) ->
            emit
              (packet ~use_intra ~use_inter ~provenance collected ~origin ~seq
                 ~sink))
          keys
      else begin
        Protocol.precompute_fsms ();
        let flows =
          Par.map_array ~jobs
            (fun (origin, seq) ->
              packet_untraced ~use_intra ~use_inter ~provenance collected
                ~origin ~seq ~sink)
            keys
        in
        Array.iter emit flows
      end)

(* [run] over an arena-indexed packet index: same key order, same
   parallelization policy, same spans and metrics — flows are
   structurally identical to the record path's (payloads materialized
   through [Arena.get] are [Record.equal] to the originals). *)
let run_arena ?(config = Config.default) packets ~sink ~emit =
  Obs.Span.with_ ~name:"refill.reconstruct_all" (fun () ->
      let arena = Logsys.Arena.Packets.arena packets in
      let keys = Array.of_list (Logsys.Arena.Packets.keys packets) in
      let use_intra = config.Config.use_intra in
      let use_inter = config.Config.use_inter in
      let provenance = config.Config.provenance in
      let jobs =
        match config.Config.jobs with
        | Some j -> max 1 j
        | None -> Par.default_jobs ()
      in
      let jobs =
        if Obs.Span.enabled () || Array.length keys < Par.min_parallel_items
        then 1
        else jobs
      in
      let packet_of ~origin ~seq =
        let rows = Logsys.Arena.Packets.packet_rows packets ~origin ~seq in
        of_arena ~use_intra ~use_inter ~provenance arena ~rows ~origin ~seq
          ~sink
      in
      if jobs <= 1 then
        Array.iter
          (fun (origin, seq) ->
            emit
              (if Obs.Span.enabled () then
                 Obs.Span.with_ ~name:"refill.packet"
                   ~attrs:
                     [
                       ("origin", string_of_int origin);
                       ("seq", string_of_int seq);
                     ]
                   (fun () -> packet_of ~origin ~seq)
               else packet_of ~origin ~seq))
          keys
      else begin
        Protocol.precompute_fsms ();
        let flows =
          Par.map_array ~jobs
            (fun (origin, seq) -> packet_of ~origin ~seq)
            keys
        in
        Array.iter emit flows
      end)

type summary = {
  packets : int;
  logged_events : int;
  inferred_events : int;
  skipped_events : int;
}

let empty_summary =
  { packets = 0; logged_events = 0; inferred_events = 0; skipped_events = 0 }

let summary_add acc (f : Flow.t) =
  {
    packets = acc.packets + 1;
    logged_events = acc.logged_events + f.stats.emitted_logged;
    inferred_events = acc.inferred_events + f.stats.emitted_inferred;
    skipped_events = acc.skipped_events + f.stats.skipped;
  }

let summarize flows = List.fold_left summary_add empty_summary flows

let summarize_array flows = Array.fold_left summary_add empty_summary flows

let pp_summary ppf s =
  Format.fprintf ppf
    "packets=%d logged=%d inferred=%d skipped=%d" s.packets s.logged_events
    s.inferred_events s.skipped_events


module Obs = Refill_obs

let h_latency =
  Obs.Metrics.Histogram.v "refill_packet_latency_seconds"
    ~help:"Wall time to reconstruct one packet's event flow."

let c_packets =
  Obs.Metrics.Counter.v "refill_packets_reconstructed_total"
    ~help:"Packets run through the reconstruction engines."

let merged_records collected ~origin ~seq =
  let groups = Logsys.Collected.events_of_packet collected ~origin ~seq in
  (* Start processing at the origin: its [gen] grounds the cascades. *)
  let origin_group, others =
    List.partition (fun (node, _) -> node = origin) groups
  in
  List.concat_map snd (origin_group @ others)

let packet_untraced ?(use_intra = true) ?(use_inter = true) collected ~origin
    ~seq ~sink =
  let t0 = Obs.Span.now_us () in
  let records = merged_records collected ~origin ~seq in
  let config = Protocol.make_config ~records ~origin ~seq ~sink in
  let config =
    if use_inter then config
    else { config with prerequisites = (fun ~node:_ ~label:_ ~payload:_ -> []) }
  in
  let events = Protocol.events_of_records records in
  let items, stats = Engine.run ~use_intra config ~events in
  Obs.Metrics.Counter.inc c_packets;
  Obs.Metrics.Histogram.observe h_latency ((Obs.Span.now_us () -. t0) /. 1e6);
  { Flow.origin; seq; items; stats }

let packet ?use_intra ?use_inter collected ~origin ~seq ~sink =
  if Obs.Span.enabled () then
    Obs.Span.with_ ~name:"refill.packet"
      ~attrs:[ ("origin", string_of_int origin); ("seq", string_of_int seq) ]
      (fun () ->
        packet_untraced ?use_intra ?use_inter collected ~origin ~seq ~sink)
  else packet_untraced ?use_intra ?use_inter collected ~origin ~seq ~sink

let all ?use_intra ?use_inter collected ~sink =
  Obs.Span.with_ ~name:"refill.reconstruct_all" (fun () ->
      Logsys.Collected.packet_keys collected
      |> List.map (fun (origin, seq) ->
             packet ?use_intra ?use_inter collected ~origin ~seq ~sink))

type summary = {
  packets : int;
  logged_events : int;
  inferred_events : int;
  skipped_events : int;
}

let summarize flows =
  List.fold_left
    (fun acc (f : Flow.t) ->
      {
        packets = acc.packets + 1;
        logged_events = acc.logged_events + f.stats.emitted_logged;
        inferred_events = acc.inferred_events + f.stats.emitted_inferred;
        skipped_events = acc.skipped_events + f.stats.skipped;
      })
    { packets = 0; logged_events = 0; inferred_events = 0; skipped_events = 0 }
    flows

let pp_summary ppf s =
  Format.fprintf ppf
    "packets=%d logged=%d inferred=%d skipped=%d" s.packets s.logged_events
    s.inferred_events s.skipped_events

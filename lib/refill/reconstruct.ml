let merged_records collected ~origin ~seq =
  let groups = Logsys.Collected.events_of_packet collected ~origin ~seq in
  (* Start processing at the origin: its [gen] grounds the cascades. *)
  let origin_group, others =
    List.partition (fun (node, _) -> node = origin) groups
  in
  List.concat_map snd (origin_group @ others)

let packet ?(use_intra = true) ?(use_inter = true) collected ~origin ~seq
    ~sink =
  let records = merged_records collected ~origin ~seq in
  let config = Protocol.make_config ~records ~origin ~seq ~sink in
  let config =
    if use_inter then config
    else { config with prerequisites = (fun ~node:_ ~label:_ ~payload:_ -> []) }
  in
  let events = Protocol.events_of_records records in
  let items, stats = Engine.run ~use_intra config ~events in
  { Flow.origin; seq; items; stats }

let all ?(use_intra = true) ?(use_inter = true) collected ~sink =
  Logsys.Collected.packet_keys collected
  |> List.map (fun (origin, seq) ->
         packet ~use_intra ~use_inter collected ~origin ~seq ~sink)

type summary = {
  packets : int;
  logged_events : int;
  inferred_events : int;
  skipped_events : int;
}

let summarize flows =
  List.fold_left
    (fun acc (f : Flow.t) ->
      {
        packets = acc.packets + 1;
        logged_events = acc.logged_events + f.stats.emitted_logged;
        inferred_events = acc.inferred_events + f.stats.emitted_inferred;
        skipped_events = acc.skipped_events + f.stats.skipped;
      })
    { packets = 0; logged_events = 0; inferred_events = 0; skipped_events = 0 }
    flows

let pp_summary ppf s =
  Format.fprintf ppf
    "packets=%d logged=%d inferred=%d skipped=%d" s.packets s.logged_events
    s.inferred_events s.skipped_events

module Obs = Refill_obs

let h_latency =
  Obs.Metrics.Histogram.v "refill_packet_latency_seconds"
    ~help:"Wall time to reconstruct one packet's event flow."

let c_packets =
  Obs.Metrics.Counter.v "refill_packets_reconstructed_total"
    ~help:"Packets run through the reconstruction engines."

let packet_untraced ?(use_intra = true) ?(use_inter = true) collected ~origin
    ~seq ~sink =
  let t0 = Obs.Span.now_us () in
  let records = Logsys.Collected.packet_records collected ~origin ~seq in
  let p = Protocol.pack_events records ~origin ~sink in
  let config = Protocol.make_config_of_records ~records ~origin ~seq ~sink in
  let config =
    if use_inter then config
    else { config with prerequisites = (fun ~node:_ ~label:_ ~payload:_ -> []) }
  in
  let pre_nodes, pre_states =
    (* [use_inter:false] must suppress the packed prerequisites too — empty
       arrays route every event through the (nulled) closure. *)
    if use_inter then (p.Protocol.p_pre_nodes, p.Protocol.p_pre_states)
    else ([||], [||])
  in
  let items, stats =
    Engine.run_packed ~use_intra config ~nodes:p.Protocol.p_nodes
      ~labels:p.Protocol.p_labels ~ids:p.Protocol.p_ids
      ~payloads:p.Protocol.p_payloads ~pre_nodes ~pre_states
  in
  Par.with_obs_lock (fun () ->
      Obs.Metrics.Counter.inc c_packets;
      Obs.Metrics.Histogram.observe h_latency
        ((Obs.Span.now_us () -. t0) /. 1e6));
  { Flow.origin; seq; items; stats }

let packet ?use_intra ?use_inter collected ~origin ~seq ~sink =
  if Obs.Span.enabled () then
    Obs.Span.with_ ~name:"refill.packet"
      ~attrs:[ ("origin", string_of_int origin); ("seq", string_of_int seq) ]
      (fun () ->
        packet_untraced ?use_intra ?use_inter collected ~origin ~seq ~sink)
  else packet_untraced ?use_intra ?use_inter collected ~origin ~seq ~sink

let all_array ?use_intra ?use_inter ?jobs collected ~sink =
  Obs.Span.with_ ~name:"refill.reconstruct_all" (fun () ->
      (* packet_keys also builds the per-packet record index, so by the
         time workers run, the collected snapshot is read-only. *)
      let keys = Array.of_list (Logsys.Collected.packet_keys collected) in
      let jobs =
        match jobs with Some j -> max 1 j | None -> Par.default_jobs ()
      in
      let jobs =
        (* Tracing writes span events through a shared sink; keep those
           runs serial.  Small workloads aren't worth a domain spawn. *)
        if Obs.Span.enabled () || Array.length keys < Par.min_parallel_items
        then 1
        else jobs
      in
      if jobs <= 1 then
        Array.map
          (fun (origin, seq) ->
            packet ?use_intra ?use_inter collected ~origin ~seq ~sink)
          keys
      else begin
        Protocol.precompute_fsms ();
        Par.map_array ~jobs
          (fun (origin, seq) ->
            packet_untraced ?use_intra ?use_inter collected ~origin ~seq
              ~sink)
          keys
      end)

let all ?use_intra ?use_inter ?jobs collected ~sink =
  Array.to_list (all_array ?use_intra ?use_inter ?jobs collected ~sink)

type summary = {
  packets : int;
  logged_events : int;
  inferred_events : int;
  skipped_events : int;
}

let summarize flows =
  List.fold_left
    (fun acc (f : Flow.t) ->
      {
        packets = acc.packets + 1;
        logged_events = acc.logged_events + f.stats.emitted_logged;
        inferred_events = acc.inferred_events + f.stats.emitted_inferred;
        skipped_events = acc.skipped_events + f.stats.skipped;
      })
    { packets = 0; logged_events = 0; inferred_events = 0; skipped_events = 0 }
    flows

let pp_summary ppf s =
  Format.fprintf ppf
    "packets=%d logged=%d inferred=%d skipped=%d" s.packets s.logged_events
    s.inferred_events s.skipped_events

module Obs = Refill_obs

let c_events =
  Obs.Metrics.Counter.v "refill_stream_events_total"
    ~help:"Records consumed by streaming reconstruction."

let c_segments =
  Obs.Metrics.Counter.v "refill_stream_segments_total"
    ~help:"Segments fed to streaming reconstruction."

let c_flows =
  Obs.Metrics.Counter.v "refill_stream_flows_total"
    ~help:"Flows emitted by streaming reconstruction."

let c_evictions =
  Obs.Metrics.Counter.v "refill_stream_evictions_total"
    ~help:"Packets evicted from the frontier by the watermark."

let c_incomplete =
  Obs.Metrics.Counter.v "refill_stream_incomplete_flows_total"
    ~help:"Flows emitted with the Incomplete outcome."

let c_forgotten =
  Obs.Metrics.Counter.v "refill_stream_forgotten_keys_total"
    ~help:"Evicted packet keys forgotten after the late-fragment retention window."

let g_frontier =
  Obs.Metrics.Gauge.v "refill_stream_frontier_events"
    ~help:"Records currently buffered in the streaming frontier."

let g_peak =
  Obs.Metrics.Gauge.v "refill_stream_peak_frontier_events"
    ~help:"High-water mark of buffered records in the streaming frontier."

type outcome = Complete | Incomplete

type emitted = { flow : Flow.t; outcome : outcome }

type summary = {
  events : int;
  segments : int;
  flows : int;
  complete : int;
  incomplete : int;
  evictions : int;
  late_fragments : int;
  forgotten_keys : int;
  frontier_events : int;
  peak_frontier_events : int;
}

(* One open packet.  [records_rev] is arrival order, reversed; [last_seen]
   is the global stream position of the newest record — the only deadline
   queue entry for this buffer that is still meaningful. *)
type buffer = {
  b_origin : int;
  b_seq : int;
  mutable records_rev : Logsys.Record.t list;
  mutable count : int;
  mutable last_seen : int;
  b_late : bool;
  mutable live : bool;
}

let compare_key (ao, as_) (bo, bs) =
  match Int.compare ao bo with 0 -> Int.compare as_ bs | c -> c

(* Evicted-table entries, ordered by eviction trigger then key. *)
let compare_evicted (ka, ta) (kb, tb) =
  match Int.compare ta tb with 0 -> compare_key ka kb | c -> c

type t = {
  sink : int;
  use_intra : bool;
  use_inter : bool;
  provenance : bool;
  watermark : int;
  retention : int;
  publish_gauges : bool;
  emit : final:bool -> last_seen:int -> key:int * int -> emitted -> unit;
  frontier : (int * int, buffer) Hashtbl.t;
  (* key -> eviction trigger (the global position [last_seen + watermark]
     at which the key was evicted).  Bounded: a key is forgotten once the
     clock passes [trigger + retention]. *)
  evicted : (int * int, int) Hashtbl.t;
  (* (arrival position, buffer) in arrival order; entries are invalidated
     lazily — one is acted on only if it is still the buffer's newest. *)
  deadlines : (int * buffer) Queue.t;
  (* (trigger, key) in eviction order (ascending trigger); stale entries
     (key re-evicted with a newer trigger, or already forgotten lazily)
     are skipped when popped. *)
  prune : (int * (int * int)) Queue.t;
  (* Global stream position this stream has observed.  Equal to
     [processed] on the single-domain path; ahead of it on a shard worker,
     which only ingests its own keys but hears every position tick. *)
  mutable clock : int;
  mutable processed : int;
  mutable segments : int;
  mutable flows : int;
  mutable complete : int;
  mutable incomplete : int;
  mutable evictions : int;
  mutable late_fragments : int;
  mutable forgotten : int;
  mutable frontier_events : int;
  mutable peak_frontier_events : int;
  mutable finished : bool;
}

let summary t =
  {
    events = t.processed;
    segments = t.segments;
    flows = t.flows;
    complete = t.complete;
    incomplete = t.incomplete;
    evictions = t.evictions;
    late_fragments = t.late_fragments;
    forgotten_keys = t.forgotten;
    frontier_events = t.frontier_events;
    peak_frontier_events = t.peak_frontier_events;
  }

let processed t = t.processed

let make ~use_intra ~use_inter ~provenance ~watermark ~retention
    ~publish_gauges ~sink ~emit () =
  {
    sink;
    use_intra;
    use_inter;
    provenance;
    watermark;
    retention;
    publish_gauges;
    emit;
    frontier = Hashtbl.create 256;
    evicted = Hashtbl.create 1024;
    deadlines = Queue.create ();
    prune = Queue.create ();
    clock = 0;
    processed = 0;
    segments = 0;
    flows = 0;
    complete = 0;
    incomplete = 0;
    evictions = 0;
    late_fragments = 0;
    forgotten = 0;
    frontier_events = 0;
    peak_frontier_events = 0;
    finished = false;
  }

let wrap_emit emit ~final:_ ~last_seen:_ ~key:_ e = emit e

let create ?(config = Config.default) ~sink ~emit () =
  make ~use_intra:config.Config.use_intra ~use_inter:config.Config.use_inter
    ~provenance:config.Config.provenance ~watermark:config.Config.watermark
    ~retention:(Config.resolved_retention config) ~publish_gauges:true ~sink
    ~emit:(wrap_emit emit) ()

(* Batched per feed/finish call, like the engine does per run: counter
   deltas sum correctly across shard workers, but the frontier gauges are
   only published by single-domain streams — [Sharded] publishes the
   aggregate itself. *)
let flush_metrics t (before : summary) =
  let after = summary t in
  Par.with_obs_lock (fun () ->
      let d get = get after - get before in
      let inc c by = if by > 0 then Obs.Metrics.Counter.inc ~by c in
      inc c_events (d (fun s -> s.events));
      inc c_segments (d (fun s -> s.segments));
      inc c_flows (d (fun s -> s.flows));
      inc c_evictions (d (fun s -> s.evictions));
      inc c_incomplete (d (fun s -> s.incomplete));
      inc c_forgotten (d (fun s -> s.forgotten_keys));
      if t.publish_gauges then begin
        Obs.Metrics.Gauge.set g_frontier (float_of_int after.frontier_events);
        Obs.Metrics.Gauge.set g_peak
          (float_of_int after.peak_frontier_events)
      end)

let evict t ~final buf =
  buf.live <- false;
  Hashtbl.remove t.frontier (buf.b_origin, buf.b_seq);
  if not final then begin
    (* The trigger is the canonical eviction position — a function of the
       buffer alone, not of how far this stream's clock had jumped when
       drain caught it, so forgetting behaves identically at any shard
       count.  [last_seen + watermark <= clock] here, so no overflow. *)
    let trigger = buf.last_seen + t.watermark in
    Hashtbl.replace t.evicted (buf.b_origin, buf.b_seq) trigger;
    Queue.push (trigger, (buf.b_origin, buf.b_seq)) t.prune;
    t.evictions <- t.evictions + 1
  end;
  t.frontier_events <- t.frontier_events - buf.count;
  (* Restore the batch index's node-scan order: stable sort by node over
     arrival order keeps each node's local write order. *)
  let records =
    Array.of_list
      (List.stable_sort
         (fun (a : Logsys.Record.t) (b : Logsys.Record.t) ->
           Int.compare a.node b.node)
         (List.rev buf.records_rev))
  in
  let flow =
    Reconstruct.of_records ~use_intra:t.use_intra ~use_inter:t.use_inter
      ~provenance:t.provenance records ~origin:buf.b_origin ~seq:buf.b_seq
      ~sink:t.sink
  in
  let outcome =
    if buf.b_late then Incomplete
    else if final then Complete
    else if (Classify.classify flow).cause <> Logsys.Cause.Unknown then
      Complete
    else Incomplete
  in
  t.flows <- t.flows + 1;
  (match outcome with
  | Complete -> t.complete <- t.complete + 1
  | Incomplete -> t.incomplete <- t.incomplete + 1);
  t.emit ~final ~last_seen:buf.last_seen
    ~key:(buf.b_origin, buf.b_seq)
    { flow; outcome }

let drain t =
  let limit = t.clock - t.watermark in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.deadlines with
    | Some (pos, buf) when pos <= limit ->
        ignore (Queue.pop t.deadlines);
        if buf.live && buf.last_seen = pos then evict t ~final:false buf
    | _ -> continue := false
  done;
  (* Forget evicted keys whose retention window has passed; stale queue
     entries (superseded trigger, or removed lazily on re-arrival) are
     skipped. *)
  let flimit = t.clock - t.retention in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.prune with
    | Some (trigger, key) when trigger <= flimit ->
        ignore (Queue.pop t.prune);
        (match Hashtbl.find_opt t.evicted key with
        | Some tr when tr = trigger ->
            Hashtbl.remove t.evicted key;
            t.forgotten <- t.forgotten + 1
        | _ -> ())
    | _ -> continue := false
  done

(* Ingest one record at global stream position [pos].  The frontier must
   first be drained to [pos - 1] — the state a single-domain stream would
   be in when this record arrives — so that a shard worker whose clock
   jumps over positions owned by other shards still makes the same
   join-or-late decision for the key. *)
let push t ~pos (r : Logsys.Record.t) =
  if pos - 1 > t.clock then begin
    t.clock <- pos - 1;
    drain t
  end;
  t.processed <- t.processed + 1;
  if pos > t.clock then t.clock <- pos;
  let key = (r.origin, r.pkt_seq) in
  let buf =
    match Hashtbl.find_opt t.frontier key with
    | Some b -> b
    | None ->
        let late =
          match Hashtbl.find_opt t.evicted key with
          | None -> false
          | Some trigger ->
              if trigger <= t.clock - t.retention then begin
                Hashtbl.remove t.evicted key;
                t.forgotten <- t.forgotten + 1;
                false
              end
              else true
        in
        if late then t.late_fragments <- t.late_fragments + 1;
        let b =
          {
            b_origin = r.origin;
            b_seq = r.pkt_seq;
            records_rev = [];
            count = 0;
            last_seen = 0;
            b_late = late;
            live = true;
          }
        in
        Hashtbl.replace t.frontier key b;
        b
  in
  buf.records_rev <- r :: buf.records_rev;
  buf.count <- buf.count + 1;
  buf.last_seen <- pos;
  Queue.push (pos, buf) t.deadlines;
  t.frontier_events <- t.frontier_events + 1;
  if t.frontier_events > t.peak_frontier_events then
    t.peak_frontier_events <- t.frontier_events;
  drain t

(* Advance the clock without ingesting — how a shard worker hears about
   positions routed to its siblings. *)
let advance t c =
  if c > t.clock then begin
    t.clock <- c;
    drain t
  end

let feed t segment =
  if t.finished then invalid_arg "Stream.feed: stream already finished";
  let before = summary t in
  t.segments <- t.segments + 1;
  Array.iter
    (fun (r : Logsys.Record.t) ->
      if r.node >= 0 then push t ~pos:(t.clock + 1) r)
    segment;
  flush_metrics t before

(* [feed] over an arena slice: the node filter reads the column, and only
   surviving records materialize (the frontier stores [Record.t]s, so
   eviction, checkpointing and emission are unchanged — output is
   byte-identical to feeding the materialized slice). *)
let feed_arena t (s : Logsys.Arena.slice) =
  if t.finished then invalid_arg "Stream.feed: stream already finished";
  let before = summary t in
  t.segments <- t.segments + 1;
  let a = s.Logsys.Arena.sl_base in
  for i = s.Logsys.Arena.sl_off to s.Logsys.Arena.sl_off + s.Logsys.Arena.sl_len - 1 do
    if Logsys.Arena.node a i >= 0 then
      push t ~pos:(t.clock + 1) (Logsys.Arena.get a i)
  done;
  flush_metrics t before

let finish t =
  if not t.finished then begin
    t.finished <- true;
    let before = summary t in
    let bufs = Hashtbl.fold (fun _ b acc -> b :: acc) t.frontier [] in
    let bufs =
      List.sort
        (fun a b -> compare_key (a.b_origin, a.b_seq) (b.b_origin, b.b_seq))
        bufs
    in
    List.iter (fun b -> if b.live then evict t ~final:true b) bufs;
    Queue.clear t.deadlines;
    flush_metrics t before
  end;
  summary t

(* -- Checkpointing --------------------------------------------------------- *)

let ckpt_magic_v1 = "# refill-stream-ckpt v1"
let ckpt_magic_v2 = "# refill-stream-ckpt v2"

let write_checkpoint oc ~use_intra ~use_inter ~provenance ~watermark
    ~retention ~segments ~clock streams =
  Printf.fprintf oc "%s\n" ckpt_magic_v2;
  Printf.fprintf oc "# shards %d\n" (Array.length streams);
  let b v = if v then 1 else 0 in
  Printf.fprintf oc "# use-intra %d\n" (b use_intra);
  Printf.fprintf oc "# use-inter %d\n" (b use_inter);
  Printf.fprintf oc "# provenance %d\n" (b provenance);
  Printf.fprintf oc "# watermark %d\n" watermark;
  Printf.fprintf oc "# retention %d\n" retention;
  Printf.fprintf oc "# segments %d\n" segments;
  Printf.fprintf oc "# clock %d\n" clock;
  Array.iteri
    (fun i st ->
      Printf.fprintf oc "# shard %d\n" i;
      Printf.fprintf oc "# processed %d\n" st.processed;
      Printf.fprintf oc "# flows %d\n" st.flows;
      Printf.fprintf oc "# complete %d\n" st.complete;
      Printf.fprintf oc "# incomplete %d\n" st.incomplete;
      Printf.fprintf oc "# evictions %d\n" st.evictions;
      Printf.fprintf oc "# late-fragments %d\n" st.late_fragments;
      Printf.fprintf oc "# forgotten %d\n" st.forgotten;
      Printf.fprintf oc "# peak-frontier %d\n" st.peak_frontier_events;
      let ev = Hashtbl.fold (fun k tr acc -> (k, tr) :: acc) st.evicted [] in
      let ev = List.sort compare_evicted ev in
      List.iter
        (fun ((origin, seq), trigger) ->
          Printf.fprintf oc "e %d %d %d\n" origin seq trigger)
        ev;
      (* Buffers ascending by last_seen: resume pushes one deadline entry
         per buffer in this order, which reproduces the live queue's
         effective contents (all superseded entries are no-ops anyway). *)
      let bufs = Hashtbl.fold (fun _ b acc -> b :: acc) st.frontier [] in
      let bufs =
        List.sort (fun a b -> Int.compare a.last_seen b.last_seen) bufs
      in
      List.iter
        (fun b ->
          Printf.fprintf oc "b %d %d %d %d %d\n" b.b_origin b.b_seq
            b.last_seen
            (if b.b_late then 1 else 0)
            b.count;
          List.iter
            (fun r ->
              output_string oc (Logsys.Log_io.record_to_line_exact r ^ "\n"))
            (List.rev b.records_rev))
        bufs)
    streams

let checkpoint t oc =
  write_checkpoint oc ~use_intra:t.use_intra ~use_inter:t.use_inter
    ~provenance:t.provenance ~watermark:t.watermark ~retention:t.retention
    ~segments:t.segments ~clock:t.clock [| t |]

let checkpoint_file t path =
  match open_out path with
  | exception Sys_error message -> Error (Error.Io { path; message })
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> checkpoint t oc);
      Ok ()

(* -- Checkpoint parsing ---------------------------------------------------- *)

type rshard = {
  mutable rs_processed : int;
  mutable rs_flows : int;
  mutable rs_complete : int;
  mutable rs_incomplete : int;
  mutable rs_evictions : int;
  mutable rs_late : int;
  mutable rs_forgotten : int;
  mutable rs_peak : int;
  mutable rs_evicted : ((int * int) * int) list;
  mutable rs_buffers : buffer list;
}

type restored = {
  r_flags : (bool * bool * bool) option;  (* None for v1 checkpoints *)
  r_watermark : int;
  r_retention : int option;  (* None for v1 checkpoints *)
  r_segments : int;
  r_clock : int;
  r_shards : rshard array;
}

let fresh_rshard () =
  {
    rs_processed = 0;
    rs_flows = 0;
    rs_complete = 0;
    rs_incomplete = 0;
    rs_evictions = 0;
    rs_late = 0;
    rs_forgotten = 0;
    rs_peak = 0;
    rs_evicted = [];
    rs_buffers = [];
  }

let int_field line key =
  match String.split_on_char ' ' line with
  | [ "#"; k; v ] when k = key -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> failwith (Printf.sprintf "Stream: bad %s value %S" key v))
  | _ -> failwith (Printf.sprintf "Stream: expected '# %s N', got %S" key line)

let flag_field line key =
  match int_field line key with
  | 0 -> false
  | 1 -> true
  | n -> failwith (Printf.sprintf "Stream: bad %s flag %d" key n)

(* Evicted/buffer lines of one shard section, until EOF or the next
   [# shard] header.  [v1_trigger = Some p] selects the v1 two-field
   evicted-line shape, restoring every key with trigger [p]. *)
let parse_shard_body rs ~v1_trigger next_line peek_line =
  let is_shard_header line =
    String.length line >= 7 && String.sub line 0 7 = "# shard"
  in
  let continue = ref true in
  while !continue do
    match peek_line () with
    | None -> continue := false
    | Some line when is_shard_header line -> continue := false
    | Some _ -> (
        let line = next_line () in
        if String.length line = 0 then ()
        else
          match line.[0] with
          | 'e' -> (
              match (String.split_on_char ' ' line, v1_trigger) with
              | [ "e"; origin; seq; trigger ], None ->
                  rs.rs_evicted <-
                    ( (int_of_string origin, int_of_string seq),
                      int_of_string trigger )
                    :: rs.rs_evicted
              | [ "e"; origin; seq ], Some trigger ->
                  rs.rs_evicted <-
                    ((int_of_string origin, int_of_string seq), trigger)
                    :: rs.rs_evicted
              | _ ->
                  failwith
                    (Printf.sprintf "Stream: malformed evicted line %S" line))
          | 'b' -> (
              match String.split_on_char ' ' line with
              | [ "b"; origin; seq; last_seen; late; count ] ->
                  let origin = int_of_string origin
                  and seq = int_of_string seq
                  and last_seen = int_of_string last_seen
                  and count = int_of_string count in
                  if count <= 0 then failwith "Stream: empty checkpoint buffer";
                  let late =
                    match late with
                    | "0" -> false
                    | "1" -> true
                    | _ ->
                        failwith
                          (Printf.sprintf "Stream: bad late flag %S" late)
                  in
                  let records_rev = ref [] in
                  for _ = 1 to count do
                    records_rev :=
                      Logsys.Log_io.record_of_line (next_line ())
                      :: !records_rev
                  done;
                  rs.rs_buffers <-
                    {
                      b_origin = origin;
                      b_seq = seq;
                      records_rev = !records_rev;
                      count;
                      last_seen;
                      b_late = late;
                      live = true;
                    }
                    :: rs.rs_buffers
              | _ ->
                  failwith
                    (Printf.sprintf "Stream: malformed buffer line %S" line))
          | _ -> failwith (Printf.sprintf "Stream: malformed line %S" line))
  done

let parse_checkpoint ic =
  let peeked = ref None in
  let next_line () =
    match !peeked with
    | Some l ->
        peeked := None;
        l
    | None -> input_line ic
  in
  let peek_line () =
    match !peeked with
    | Some l -> Some l
    | None -> (
        match input_line ic with
        | exception End_of_file -> None
        | l ->
            peeked := Some l;
            Some l)
  in
  let magic = next_line () in
  if magic = ckpt_magic_v1 then begin
    let rs = fresh_rshard () in
    rs.rs_processed <- int_field (next_line ()) "processed";
    let watermark = int_field (next_line ()) "watermark" in
    let segments = int_field (next_line ()) "segments" in
    rs.rs_flows <- int_field (next_line ()) "flows";
    rs.rs_complete <- int_field (next_line ()) "complete";
    rs.rs_incomplete <- int_field (next_line ()) "incomplete";
    rs.rs_evictions <- int_field (next_line ()) "evictions";
    rs.rs_late <- int_field (next_line ()) "late-fragments";
    rs.rs_peak <- int_field (next_line ()) "peak-frontier";
    parse_shard_body rs ~v1_trigger:(Some rs.rs_processed) next_line
      peek_line;
    {
      r_flags = None;
      r_watermark = watermark;
      r_retention = None;
      r_segments = segments;
      r_clock = rs.rs_processed;
      r_shards = [| rs |];
    }
  end
  else if magic = ckpt_magic_v2 then begin
    let shards = int_field (next_line ()) "shards" in
    if shards < 1 || shards > 65536 then
      failwith (Printf.sprintf "Stream: implausible shard count %d" shards);
    let use_intra = flag_field (next_line ()) "use-intra" in
    let use_inter = flag_field (next_line ()) "use-inter" in
    let provenance = flag_field (next_line ()) "provenance" in
    let watermark = int_field (next_line ()) "watermark" in
    let retention = int_field (next_line ()) "retention" in
    let segments = int_field (next_line ()) "segments" in
    let clock = int_field (next_line ()) "clock" in
    let r_shards = Array.init shards (fun _ -> fresh_rshard ()) in
    for i = 0 to shards - 1 do
      let hdr = next_line () in
      (match String.split_on_char ' ' hdr with
      | [ "#"; "shard"; k ] when int_of_string_opt k = Some i -> ()
      | _ ->
          failwith
            (Printf.sprintf "Stream: expected '# shard %d', got %S" i hdr));
      let rs = r_shards.(i) in
      rs.rs_processed <- int_field (next_line ()) "processed";
      rs.rs_flows <- int_field (next_line ()) "flows";
      rs.rs_complete <- int_field (next_line ()) "complete";
      rs.rs_incomplete <- int_field (next_line ()) "incomplete";
      rs.rs_evictions <- int_field (next_line ()) "evictions";
      rs.rs_late <- int_field (next_line ()) "late-fragments";
      rs.rs_forgotten <- int_field (next_line ()) "forgotten";
      rs.rs_peak <- int_field (next_line ()) "peak-frontier";
      parse_shard_body rs ~v1_trigger:None next_line peek_line
    done;
    (match peek_line () with
    | None -> ()
    | Some l -> failwith (Printf.sprintf "Stream: trailing line %S" l));
    {
      r_flags = Some (use_intra, use_inter, provenance);
      r_watermark = watermark;
      r_retention = Some retention;
      r_segments = segments;
      r_clock = clock;
      r_shards;
    }
  end
  else failwith (Printf.sprintf "Stream: bad checkpoint header %S" magic)

(* Reject nonsensical headers before building anything: a stream restored
   from garbage would run with a garbage drain limit. *)
let validate_restored r =
  let fail msg = failwith ("Stream: bad checkpoint: " ^ msg) in
  if r.r_watermark <= 0 then fail "non-positive watermark";
  (match r.r_retention with
  | Some ret when ret < 0 -> fail "negative retention"
  | _ -> ());
  if r.r_segments < 0 then fail "negative segments";
  if r.r_clock < 0 then fail "negative clock";
  let total = ref 0 in
  Array.iter
    (fun rs ->
      if rs.rs_processed < 0 then fail "negative processed";
      total := !total + rs.rs_processed;
      if rs.rs_flows < 0 || rs.rs_complete < 0 || rs.rs_incomplete < 0 then
        fail "negative flow counter";
      if rs.rs_flows <> rs.rs_complete + rs.rs_incomplete then
        fail "flows disagree with complete + incomplete";
      if rs.rs_evictions < 0 || rs.rs_late < 0 || rs.rs_forgotten < 0 then
        fail "negative counter";
      let events =
        List.fold_left (fun acc b -> acc + b.count) 0 rs.rs_buffers
      in
      if rs.rs_peak < events then fail "peak-frontier below restored frontier";
      List.iter
        (fun (_, trigger) ->
          if trigger < 1 || trigger > r.r_clock then
            fail "evicted trigger out of range")
        rs.rs_evicted;
      List.iter
        (fun b ->
          if b.last_seen < 1 || b.last_seen > r.r_clock then
            fail "buffer last-seen out of range")
        rs.rs_buffers)
    r.r_shards;
  if !total <> r.r_clock then fail "shard record totals disagree with clock"

(* The semantic flags a resumed stream runs under: the checkpoint's when
   it has them (v2) and no config was passed; the config's for a v1
   checkpoint; an explicit config conflicting with a v2 checkpoint is an
   error — resuming under different semantics silently changes what the
   reconstruction means. *)
let resolve_flags ~ckpt ~config =
  match (ckpt, config) with
  | Some f, None -> f
  | Some ((ui, ue, pv) as f), Some (c : Config.t) ->
      if
        c.Config.use_intra <> ui
        || c.Config.use_inter <> ue
        || c.Config.provenance <> pv
      then
        failwith
          (Printf.sprintf
             "Stream: config conflicts with checkpoint semantics \
              (checkpoint: use-intra=%b use-inter=%b provenance=%b)"
             ui ue pv)
      else f
  | None, Some (c : Config.t) ->
      (c.Config.use_intra, c.Config.use_inter, c.Config.provenance)
  | None, None ->
      Config.
        (default.use_intra, default.use_inter, default.provenance)

let restored_retention r ~config =
  match r.r_retention with
  | Some ret -> ret
  | None ->
      let cfg = Option.value config ~default:Config.default in
      Config.resolved_retention { cfg with Config.watermark = r.r_watermark }

(* Install evicted keys and buffers into a freshly [make]d stream.  Both
   lists must be given in canonical order: evicted ascending by (trigger,
   key), buffers ascending by last_seen. *)
let install t ~ev ~bufs =
  List.iter
    (fun (key, trigger) ->
      Hashtbl.replace t.evicted key trigger;
      Queue.push (trigger, key) t.prune)
    ev;
  List.iter
    (fun b ->
      Hashtbl.replace t.frontier (b.b_origin, b.b_seq) b;
      Queue.push (b.last_seen, b) t.deadlines;
      t.frontier_events <- t.frontier_events + b.count)
    bufs

let sorted_evicted rss =
  List.sort compare_evicted
    (List.concat_map (fun rs -> rs.rs_evicted) rss)

let sorted_buffers rss =
  List.sort
    (fun a b -> Int.compare a.last_seen b.last_seen)
    (List.concat_map (fun rs -> rs.rs_buffers) rss)

let as_bad_checkpoint f =
  match f () with
  | t -> Ok t
  | exception Failure message ->
      Error (Error.Bad_checkpoint { source = "checkpoint"; message })
  | exception End_of_file ->
      Error
        (Error.Bad_checkpoint
           { source = "checkpoint"; message = "truncated checkpoint" })
  | exception Sys_error message ->
      Error (Error.Io { path = "checkpoint"; message })

(* Resume into a single-domain stream: all shards of the checkpoint merge
   into one frontier (v2 multi-shard checkpoints are the sharded layer's;
   any shard count resumes into any other, including one). *)
let resume ?config ic ~sink ~emit =
  as_bad_checkpoint (fun () ->
      let r = parse_checkpoint ic in
      validate_restored r;
      let ui, ue, pv = resolve_flags ~ckpt:r.r_flags ~config in
      let retention = restored_retention r ~config in
      let t =
        make ~use_intra:ui ~use_inter:ue ~provenance:pv
          ~watermark:r.r_watermark ~retention ~publish_gauges:true ~sink
          ~emit:(wrap_emit emit) ()
      in
      t.clock <- r.r_clock;
      t.processed <- r.r_clock;
      t.segments <- r.r_segments;
      let peak = ref 0 in
      Array.iter
        (fun rs ->
          t.flows <- t.flows + rs.rs_flows;
          t.complete <- t.complete + rs.rs_complete;
          t.incomplete <- t.incomplete + rs.rs_incomplete;
          t.evictions <- t.evictions + rs.rs_evictions;
          t.late_fragments <- t.late_fragments + rs.rs_late;
          t.forgotten <- t.forgotten + rs.rs_forgotten;
          peak := !peak + rs.rs_peak)
        r.r_shards;
      let rss = Array.to_list r.r_shards in
      install t ~ev:(sorted_evicted rss) ~bufs:(sorted_buffers rss);
      t.peak_frontier_events <- max !peak t.frontier_events;
      t)

let resume_file ?config path ~sink ~emit =
  match open_in path with
  | exception Sys_error message -> Error (Error.Io { path; message })
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> resume ?config ic ~sink ~emit)

(* -- Sharded streaming ----------------------------------------------------- *)

module Sharded = struct
  (* Bounded SPSC channel: the feeder blocks when a worker falls behind
     (backpressure, bounded memory), the worker blocks when idle.  On a
     machine with fewer cores than shards this degrades to cooperative
     scheduling, not spinning. *)
  module Chan = struct
    type 'a chan = {
      q : 'a Queue.t;
      cap : int;
      mu : Mutex.t;
      not_empty : Condition.t;
      not_full : Condition.t;
    }

    let create cap =
      {
        q = Queue.create ();
        cap;
        mu = Mutex.create ();
        not_empty = Condition.create ();
        not_full = Condition.create ();
      }

    let push c x =
      Mutex.lock c.mu;
      while Queue.length c.q >= c.cap do
        Condition.wait c.not_full c.mu
      done;
      Queue.push x c.q;
      Condition.signal c.not_empty;
      Mutex.unlock c.mu

    let pop c =
      Mutex.lock c.mu;
      while Queue.is_empty c.q do
        Condition.wait c.not_empty c.mu
      done;
      let x = Queue.pop c.q in
      Condition.signal c.not_full;
      Mutex.unlock c.mu;
      x
  end

  type msg =
    | Records of (int * Logsys.Record.t) array
        (** (global position, record), positions ascending. *)
    | Tick of int  (** advance the worker clock to this position *)
    | Stop of int  (** final clock; the worker exits its loop *)

  type pending = {
    p_last_seen : int;
    p_final : bool;
    p_key : int * int;
    p_emitted : emitted;
  }

  type worker = {
    w_stream : t;
    w_chan : msg Chan.chan;
    w_mu : Mutex.t;
    w_cond : Condition.t;
    w_outbox : pending list ref;  (* newest first; under [w_mu] *)
    mutable w_clock : int;  (* published position; under [w_mu] *)
    mutable w_error : exn option;  (* under [w_mu] *)
    mutable w_domain : unit Domain.t option;
  }

  type state = Live | Done of summary | Failed of exn

  type nonrec t = {
    sh_watermark : int;
    sh_emit : emitted -> unit;
    sh_workers : worker array;
    mutable sh_clock : int;  (* global records routed so far *)
    mutable sh_segments : int;
    mutable sh_pending : pending list;
    mutable sh_state : state;
  }

  let shard_of (origin, seq) n =
    if n = 1 then 0
    else ((origin * 0x9E3779B1) lxor (seq * 0x85EBCA6B)) land max_int mod n

  let worker_loop w =
    let running = ref true in
    while !running do
      let msg = Chan.pop w.w_chan in
      let target =
        match msg with
        | Records items ->
            if Array.length items = 0 then w.w_stream.clock
            else fst items.(Array.length items - 1)
        | Tick c | Stop c -> c
      in
      (match msg with Stop _ -> running := false | _ -> ());
      Mutex.lock w.w_mu;
      let errored = w.w_error <> None in
      Mutex.unlock w.w_mu;
      (* After an error the worker keeps draining (and discarding) so the
         feeder never blocks on a full queue; the clock still advances so
         quiesce terminates. *)
      if not errored then begin
        try
          let st = w.w_stream in
          let before = summary st in
          (match msg with
          | Records items -> Array.iter (fun (pos, r) -> push st ~pos r) items
          | Tick c | Stop c -> advance st c);
          flush_metrics st before
        with e ->
          Mutex.lock w.w_mu;
          w.w_error <- Some e;
          Mutex.unlock w.w_mu
      end;
      Mutex.lock w.w_mu;
      if target > w.w_clock then w.w_clock <- target;
      Condition.broadcast w.w_cond;
      Mutex.unlock w.w_mu
    done

  (* [init] populates the worker's stream (resume restores shard state)
     before the domain starts — no synchronization needed. *)
  let spawn_worker ~flags:(ui, ue, pv) ~watermark ~retention ~sink ~init =
    let mu = Mutex.create () in
    let outbox = ref [] in
    let emit ~final ~last_seen ~key e =
      Mutex.lock mu;
      outbox :=
        { p_last_seen = last_seen; p_final = final; p_key = key; p_emitted = e }
        :: !outbox;
      Mutex.unlock mu
    in
    let st =
      make ~use_intra:ui ~use_inter:ue ~provenance:pv ~watermark ~retention
        ~publish_gauges:false ~sink ~emit ()
    in
    init st;
    let w =
      {
        w_stream = st;
        w_chan = Chan.create 8;
        w_mu = mu;
        w_cond = Condition.create ();
        w_outbox = outbox;
        w_clock = st.clock;
        w_error = None;
        w_domain = None;
      }
    in
    w.w_domain <- Some (Domain.spawn (fun () -> worker_loop w));
    w

  let read_clock w =
    Mutex.lock w.w_mu;
    let c = w.w_clock in
    Mutex.unlock w.w_mu;
    c

  let shutdown sh =
    Array.iter (fun w -> Chan.push w.w_chan (Stop sh.sh_clock)) sh.sh_workers;
    Array.iter
      (fun w ->
        match w.w_domain with
        | Some d ->
            Domain.join d;
            w.w_domain <- None
        | None -> ())
      sh.sh_workers

  let first_error sh =
    Array.fold_left
      (fun acc w ->
        match acc with
        | Some _ -> acc
        | None ->
            Mutex.lock w.w_mu;
            let e = w.w_error in
            Mutex.unlock w.w_mu;
            e)
      None sh.sh_workers

  let check_workers sh =
    match first_error sh with
    | None -> ()
    | Some e ->
        sh.sh_state <- Failed e;
        shutdown sh;
        raise e

  (* Release every pending mid-stream eviction that can no longer be
     preceded by anything: clocks are read BEFORE outboxes, so a worker's
     future emissions all have last_seen > safe - watermark — anything at
     or below that line is already in an outbox we are about to take.
     Released ascending by last_seen, which is exactly the single-domain
     emission order (positions are unique, and eviction triggers are
     monotone in last_seen). *)
  let combine sh =
    let safe =
      Array.fold_left
        (fun acc w -> min acc (read_clock w))
        max_int sh.sh_workers
    in
    Array.iter
      (fun w ->
        Mutex.lock w.w_mu;
        let out = !(w.w_outbox) in
        w.w_outbox := [];
        Mutex.unlock w.w_mu;
        sh.sh_pending <- List.rev_append out sh.sh_pending)
      sh.sh_workers;
    let limit = safe - sh.sh_watermark in
    let ready, rest =
      List.partition
        (fun p -> (not p.p_final) && p.p_last_seen <= limit)
        sh.sh_pending
    in
    sh.sh_pending <- rest;
    let ready =
      List.sort (fun a b -> Int.compare a.p_last_seen b.p_last_seen) ready
    in
    List.iter (fun p -> sh.sh_emit p.p_emitted) ready

  (* Wait until every worker has processed up to the feeder's clock; after
     this the feeder may read worker stream state directly (the workers
     are parked in [Chan.pop], and the [w_mu] handshake ordered their
     writes before our reads). *)
  let quiesce sh =
    Array.iter
      (fun w ->
        Mutex.lock w.w_mu;
        while w.w_clock < sh.sh_clock && w.w_error = None do
          Condition.wait w.w_cond w.w_mu
        done;
        Mutex.unlock w.w_mu)
      sh.sh_workers;
    check_workers sh

  let aggregate sh =
    Array.fold_left
      (fun acc w ->
        let s = summary w.w_stream in
        {
          events = acc.events + s.events;
          segments = acc.segments;
          flows = acc.flows + s.flows;
          complete = acc.complete + s.complete;
          incomplete = acc.incomplete + s.incomplete;
          evictions = acc.evictions + s.evictions;
          late_fragments = acc.late_fragments + s.late_fragments;
          forgotten_keys = acc.forgotten_keys + s.forgotten_keys;
          frontier_events = acc.frontier_events + s.frontier_events;
          peak_frontier_events =
            acc.peak_frontier_events + s.peak_frontier_events;
        })
      {
        events = 0;
        segments = sh.sh_segments;
        flows = 0;
        complete = 0;
        incomplete = 0;
        evictions = 0;
        late_fragments = 0;
        forgotten_keys = 0;
        frontier_events = 0;
        peak_frontier_events = 0;
      }
      sh.sh_workers

  let publish_aggregate_gauges (s : summary) =
    Par.with_obs_lock (fun () ->
        Obs.Metrics.Gauge.set g_frontier (float_of_int s.frontier_events);
        Obs.Metrics.Gauge.set g_peak (float_of_int s.peak_frontier_events))

  let create ?(config = Config.default) ~sink ~emit () =
    let n = max 1 config.Config.shards in
    let flags =
      (config.Config.use_intra, config.Config.use_inter,
       config.Config.provenance)
    in
    let retention = Config.resolved_retention config in
    let workers =
      Array.init n (fun _ ->
          spawn_worker ~flags ~watermark:config.Config.watermark ~retention
            ~sink ~init:ignore)
    in
    {
      sh_watermark = config.Config.watermark;
      sh_emit = emit;
      sh_workers = workers;
      sh_clock = 0;
      sh_segments = 0;
      sh_pending = [];
      sh_state = Live;
    }

  let shards sh = Array.length sh.sh_workers
  let processed sh = sh.sh_clock

  let feed sh segment =
    (match sh.sh_state with
    | Live -> ()
    | Done _ -> invalid_arg "Stream.Sharded.feed: stream already finished"
    | Failed e -> raise e);
    check_workers sh;
    sh.sh_segments <- sh.sh_segments + 1;
    let n = Array.length sh.sh_workers in
    let parts = Array.make n [] in
    Array.iter
      (fun (r : Logsys.Record.t) ->
        if r.node >= 0 then begin
          sh.sh_clock <- sh.sh_clock + 1;
          let s = shard_of (r.origin, r.pkt_seq) n in
          parts.(s) <- (sh.sh_clock, r) :: parts.(s)
        end)
      segment;
    Array.iteri
      (fun i items ->
        match items with
        | [] -> ()
        | _ ->
            Chan.push sh.sh_workers.(i).w_chan
              (Records (Array.of_list (List.rev items))))
      parts;
    Array.iter (fun w -> Chan.push w.w_chan (Tick sh.sh_clock)) sh.sh_workers;
    combine sh

  let summary sh =
    match sh.sh_state with
    | Done s -> s
    | Failed e -> raise e
    | Live ->
        quiesce sh;
        combine sh;
        let s = aggregate sh in
        publish_aggregate_gauges s;
        s

  let finish sh =
    match sh.sh_state with
    | Done s -> s
    | Failed e -> raise e
    | Live ->
        shutdown sh;
        (match first_error sh with
        | Some e ->
            sh.sh_state <- Failed e;
            raise e
        | None -> ());
        (* All mid-stream evictions first (safe = final clock releases
           everything), then flush the per-shard frontiers and emit the
           finals in ascending key order — the single-domain finish
           order. *)
        combine sh;
        Array.iter (fun w -> ignore (finish w.w_stream)) sh.sh_workers;
        let finals = ref [] in
        Array.iter
          (fun w ->
            finals := List.rev_append !(w.w_outbox) !finals;
            w.w_outbox := [])
          sh.sh_workers;
        let finals =
          List.sort (fun a b -> compare_key a.p_key b.p_key) !finals
        in
        List.iter (fun p -> sh.sh_emit p.p_emitted) finals;
        sh.sh_pending <- [];
        let s = aggregate sh in
        publish_aggregate_gauges s;
        sh.sh_state <- Done s;
        s

  let checkpoint sh oc =
    (match sh.sh_state with
    | Live -> ()
    | Done _ -> invalid_arg "Stream.Sharded.checkpoint: stream finished"
    | Failed e -> raise e);
    quiesce sh;
    combine sh;
    let w0 = sh.sh_workers.(0).w_stream in
    write_checkpoint oc ~use_intra:w0.use_intra ~use_inter:w0.use_inter
      ~provenance:w0.provenance ~watermark:sh.sh_watermark
      ~retention:w0.retention ~segments:sh.sh_segments ~clock:sh.sh_clock
      (Array.map (fun w -> w.w_stream) sh.sh_workers)

  let checkpoint_file sh path =
    match open_out path with
    | exception Sys_error message -> Error (Error.Io { path; message })
    | oc ->
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> checkpoint sh oc);
        Ok ()

  (* Resume re-hashes the checkpoint's shards (any count, v1 included)
     into [config.shards] fresh workers.  Aggregate counters land on
     shard 0; every worker starts at the restored clock. *)
  let resume ?config ic ~sink ~emit =
    as_bad_checkpoint (fun () ->
        let r = parse_checkpoint ic in
        validate_restored r;
        let flags = resolve_flags ~ckpt:r.r_flags ~config in
        let retention = restored_retention r ~config in
        let cfg = Option.value config ~default:Config.default in
        let n = max 1 cfg.Config.shards in
        let rss = Array.to_list r.r_shards in
        let ev = Array.make n [] and bufs = Array.make n [] in
        List.iter
          (fun ((key, _) as e) ->
            let i = shard_of key n in
            ev.(i) <- e :: ev.(i))
          (List.rev (sorted_evicted rss));
        List.iter
          (fun b ->
            let i = shard_of (b.b_origin, b.b_seq) n in
            bufs.(i) <- b :: bufs.(i))
          (List.rev (sorted_buffers rss));
        let total_peak =
          Array.fold_left (fun acc rs -> acc + rs.rs_peak) 0 r.r_shards
        in
        let init_shard i st =
          st.clock <- r.r_clock;
          install st ~ev:ev.(i) ~bufs:bufs.(i);
          if i = 0 then begin
            st.processed <- r.r_clock;
            Array.iter
              (fun rs ->
                st.flows <- st.flows + rs.rs_flows;
                st.complete <- st.complete + rs.rs_complete;
                st.incomplete <- st.incomplete + rs.rs_incomplete;
                st.evictions <- st.evictions + rs.rs_evictions;
                st.late_fragments <- st.late_fragments + rs.rs_late;
                st.forgotten <- st.forgotten + rs.rs_forgotten)
              r.r_shards;
            st.peak_frontier_events <- max total_peak st.frontier_events
          end
          else st.peak_frontier_events <- st.frontier_events
        in
        let workers =
          Array.init n (fun i ->
              spawn_worker ~flags ~watermark:r.r_watermark ~retention ~sink
                ~init:(init_shard i))
        in
        {
          sh_watermark = r.r_watermark;
          sh_emit = emit;
          sh_workers = workers;
          sh_clock = r.r_clock;
          sh_segments = r.r_segments;
          sh_pending = [];
          sh_state = Live;
        })

  let resume_file ?config path ~sink ~emit =
    match open_in path with
    | exception Sys_error message -> Error (Error.Io { path; message })
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> resume ?config ic ~sink ~emit)
end

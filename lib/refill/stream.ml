module Obs = Refill_obs

let c_events =
  Obs.Metrics.Counter.v "refill_stream_events_total"
    ~help:"Records consumed by streaming reconstruction."

let c_segments =
  Obs.Metrics.Counter.v "refill_stream_segments_total"
    ~help:"Segments fed to streaming reconstruction."

let c_flows =
  Obs.Metrics.Counter.v "refill_stream_flows_total"
    ~help:"Flows emitted by streaming reconstruction."

let c_evictions =
  Obs.Metrics.Counter.v "refill_stream_evictions_total"
    ~help:"Packets evicted from the frontier by the watermark."

let c_incomplete =
  Obs.Metrics.Counter.v "refill_stream_incomplete_flows_total"
    ~help:"Flows emitted with the Incomplete outcome."

let g_frontier =
  Obs.Metrics.Gauge.v "refill_stream_frontier_events"
    ~help:"Records currently buffered in the streaming frontier."

let g_peak =
  Obs.Metrics.Gauge.v "refill_stream_peak_frontier_events"
    ~help:"High-water mark of buffered records in the streaming frontier."

type outcome = Complete | Incomplete

type emitted = { flow : Flow.t; outcome : outcome }

type summary = {
  events : int;
  segments : int;
  flows : int;
  complete : int;
  incomplete : int;
  evictions : int;
  late_fragments : int;
  frontier_events : int;
  peak_frontier_events : int;
}

(* One open packet.  [records_rev] is arrival order, reversed; [last_seen]
   is the processed-count position of the newest record — the only deadline
   queue entry for this buffer that is still meaningful. *)
type buffer = {
  b_origin : int;
  b_seq : int;
  mutable records_rev : Logsys.Record.t list;
  mutable count : int;
  mutable last_seen : int;
  b_late : bool;
  mutable live : bool;
}

type t = {
  sink : int;
  use_intra : bool;
  use_inter : bool;
  provenance : bool;
  watermark : int;
  emit : emitted -> unit;
  frontier : (int * int, buffer) Hashtbl.t;
  evicted : (int * int, unit) Hashtbl.t;
  (* (arrival position, buffer) in arrival order; entries are invalidated
     lazily — one is acted on only if it is still the buffer's newest. *)
  deadlines : (int * buffer) Queue.t;
  mutable processed : int;
  mutable segments : int;
  mutable flows : int;
  mutable complete : int;
  mutable incomplete : int;
  mutable evictions : int;
  mutable late_fragments : int;
  mutable frontier_events : int;
  mutable peak_frontier_events : int;
  mutable finished : bool;
}

let summary t =
  {
    events = t.processed;
    segments = t.segments;
    flows = t.flows;
    complete = t.complete;
    incomplete = t.incomplete;
    evictions = t.evictions;
    late_fragments = t.late_fragments;
    frontier_events = t.frontier_events;
    peak_frontier_events = t.peak_frontier_events;
  }

let processed t = t.processed

let create ?(config = Config.default) ~sink ~emit () =
  {
    sink;
    use_intra = config.Config.use_intra;
    use_inter = config.Config.use_inter;
    provenance = config.Config.provenance;
    watermark = config.Config.watermark;
    emit;
    frontier = Hashtbl.create 256;
    evicted = Hashtbl.create 1024;
    deadlines = Queue.create ();
    processed = 0;
    segments = 0;
    flows = 0;
    complete = 0;
    incomplete = 0;
    evictions = 0;
    late_fragments = 0;
    frontier_events = 0;
    peak_frontier_events = 0;
    finished = false;
  }

(* Batched per feed/finish call, like the engine does per run: streams are
   single-threaded but may coexist with worker domains. *)
let flush_metrics t (before : summary) =
  let after = summary t in
  Par.with_obs_lock (fun () ->
      let d get = get after - get before in
      let inc c by = if by > 0 then Obs.Metrics.Counter.inc ~by c in
      inc c_events (d (fun s -> s.events));
      inc c_segments (d (fun s -> s.segments));
      inc c_flows (d (fun s -> s.flows));
      inc c_evictions (d (fun s -> s.evictions));
      inc c_incomplete (d (fun s -> s.incomplete));
      Obs.Metrics.Gauge.set g_frontier (float_of_int after.frontier_events);
      Obs.Metrics.Gauge.set g_peak
        (float_of_int after.peak_frontier_events))

let evict t ~final buf =
  buf.live <- false;
  Hashtbl.remove t.frontier (buf.b_origin, buf.b_seq);
  Hashtbl.replace t.evicted (buf.b_origin, buf.b_seq) ();
  t.frontier_events <- t.frontier_events - buf.count;
  (* Restore the batch index's node-scan order: stable sort by node over
     arrival order keeps each node's local write order. *)
  let records =
    Array.of_list
      (List.stable_sort
         (fun (a : Logsys.Record.t) (b : Logsys.Record.t) ->
           Int.compare a.node b.node)
         (List.rev buf.records_rev))
  in
  let flow =
    Reconstruct.of_records ~use_intra:t.use_intra ~use_inter:t.use_inter
      ~provenance:t.provenance records ~origin:buf.b_origin ~seq:buf.b_seq
      ~sink:t.sink
  in
  let outcome =
    if buf.b_late then Incomplete
    else if final then Complete
    else if (Classify.classify flow).cause <> Logsys.Cause.Unknown then
      Complete
    else Incomplete
  in
  if not final then t.evictions <- t.evictions + 1;
  t.flows <- t.flows + 1;
  (match outcome with
  | Complete -> t.complete <- t.complete + 1
  | Incomplete -> t.incomplete <- t.incomplete + 1);
  t.emit { flow; outcome }

let drain t =
  let limit = t.processed - t.watermark in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.deadlines with
    | Some (pos, buf) when pos <= limit ->
        ignore (Queue.pop t.deadlines);
        if buf.live && buf.last_seen = pos then evict t ~final:false buf
    | _ -> continue := false
  done

let feed t segment =
  if t.finished then invalid_arg "Stream.feed: stream already finished";
  let before = summary t in
  t.segments <- t.segments + 1;
  Array.iter
    (fun (r : Logsys.Record.t) ->
      if r.node >= 0 then begin
        t.processed <- t.processed + 1;
        let key = (r.origin, r.pkt_seq) in
        let buf =
          match Hashtbl.find_opt t.frontier key with
          | Some b -> b
          | None ->
              let late = Hashtbl.mem t.evicted key in
              if late then t.late_fragments <- t.late_fragments + 1;
              let b =
                {
                  b_origin = r.origin;
                  b_seq = r.pkt_seq;
                  records_rev = [];
                  count = 0;
                  last_seen = 0;
                  b_late = late;
                  live = true;
                }
              in
              Hashtbl.replace t.frontier key b;
              b
        in
        buf.records_rev <- r :: buf.records_rev;
        buf.count <- buf.count + 1;
        buf.last_seen <- t.processed;
        Queue.push (t.processed, buf) t.deadlines;
        t.frontier_events <- t.frontier_events + 1;
        if t.frontier_events > t.peak_frontier_events then
          t.peak_frontier_events <- t.frontier_events;
        drain t
      end)
    segment;
  flush_metrics t before

let finish t =
  if not t.finished then begin
    t.finished <- true;
    let before = summary t in
    let bufs = Hashtbl.fold (fun _ b acc -> b :: acc) t.frontier [] in
    let bufs =
      List.sort
        (fun a b ->
          compare (a.b_origin, a.b_seq) (b.b_origin, b.b_seq))
        bufs
    in
    List.iter (fun b -> if b.live then evict t ~final:true b) bufs;
    Queue.clear t.deadlines;
    flush_metrics t before
  end;
  summary t

(* -- Checkpointing --------------------------------------------------------- *)

let ckpt_magic = "# refill-stream-ckpt v1"

let checkpoint t oc =
  Printf.fprintf oc "%s\n" ckpt_magic;
  Printf.fprintf oc "# processed %d\n" t.processed;
  Printf.fprintf oc "# watermark %d\n" t.watermark;
  Printf.fprintf oc "# segments %d\n" t.segments;
  Printf.fprintf oc "# flows %d\n" t.flows;
  Printf.fprintf oc "# complete %d\n" t.complete;
  Printf.fprintf oc "# incomplete %d\n" t.incomplete;
  Printf.fprintf oc "# evictions %d\n" t.evictions;
  Printf.fprintf oc "# late-fragments %d\n" t.late_fragments;
  Printf.fprintf oc "# peak-frontier %d\n" t.peak_frontier_events;
  let evicted_keys =
    Hashtbl.fold (fun k () acc -> k :: acc) t.evicted [] |> List.sort compare
  in
  List.iter
    (fun (origin, seq) -> Printf.fprintf oc "e %d %d\n" origin seq)
    evicted_keys;
  (* Buffers ascending by last_seen: resume pushes one deadline entry per
     buffer in this order, which reproduces the live queue's effective
     contents (all superseded entries are no-ops anyway). *)
  let bufs = Hashtbl.fold (fun _ b acc -> b :: acc) t.frontier [] in
  let bufs = List.sort (fun a b -> Int.compare a.last_seen b.last_seen) bufs in
  List.iter
    (fun b ->
      Printf.fprintf oc "b %d %d %d %d %d\n" b.b_origin b.b_seq b.last_seen
        (if b.b_late then 1 else 0)
        b.count;
      List.iter
        (fun r ->
          output_string oc (Logsys.Log_io.record_to_line_exact r ^ "\n"))
        (List.rev b.records_rev))
    bufs

let checkpoint_file t path =
  match open_out path with
  | exception Sys_error message -> Error (Error.Io { path; message })
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> checkpoint t oc);
      Ok ()

let int_field line key =
  match String.split_on_char ' ' line with
  | [ "#"; k; v ] when k = key -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> failwith (Printf.sprintf "Stream: bad %s value %S" key v))
  | _ -> failwith (Printf.sprintf "Stream: expected '# %s N', got %S" key line)

let resume ?(config = Config.default) ic ~sink ~emit =
  let parse () =
    let first = input_line ic in
    if first <> ckpt_magic then
      failwith (Printf.sprintf "Stream: bad checkpoint header %S" first);
    let processed = int_field (input_line ic) "processed" in
    let watermark = int_field (input_line ic) "watermark" in
    let segments = int_field (input_line ic) "segments" in
    let flows = int_field (input_line ic) "flows" in
    let complete = int_field (input_line ic) "complete" in
    let incomplete = int_field (input_line ic) "incomplete" in
    let evictions = int_field (input_line ic) "evictions" in
    let late_fragments = int_field (input_line ic) "late-fragments" in
    let peak = int_field (input_line ic) "peak-frontier" in
    let t =
      {
        (create ~config ~sink ~emit ()) with
        watermark;
        processed;
        segments;
        flows;
        complete;
        incomplete;
        evictions;
        late_fragments;
      }
    in
    (try
       while true do
         let line = input_line ic in
         if String.length line = 0 then ()
         else
           match line.[0] with
           | 'e' -> (
               match String.split_on_char ' ' line with
               | [ "e"; origin; seq ] ->
                   Hashtbl.replace t.evicted
                     (int_of_string origin, int_of_string seq)
                     ()
               | _ ->
                   failwith
                     (Printf.sprintf "Stream: malformed evicted line %S" line))
           | 'b' -> (
               match String.split_on_char ' ' line with
               | [ "b"; origin; seq; last_seen; late; count ] ->
                   let origin = int_of_string origin
                   and seq = int_of_string seq
                   and last_seen = int_of_string last_seen
                   and count = int_of_string count in
                   if count <= 0 then
                     failwith "Stream: empty checkpoint buffer";
                   let records_rev = ref [] in
                   for _ = 1 to count do
                     records_rev :=
                       Logsys.Log_io.record_of_line (input_line ic)
                       :: !records_rev
                   done;
                   let buf =
                     {
                       b_origin = origin;
                       b_seq = seq;
                       records_rev = !records_rev;
                       count;
                       last_seen;
                       b_late = late = "1";
                       live = true;
                     }
                   in
                   Hashtbl.replace t.frontier (origin, seq) buf;
                   Queue.push (last_seen, buf) t.deadlines;
                   t.frontier_events <- t.frontier_events + count
               | _ ->
                   failwith
                     (Printf.sprintf "Stream: malformed buffer line %S" line))
           | _ -> failwith (Printf.sprintf "Stream: malformed line %S" line)
       done
     with End_of_file -> ());
    t.peak_frontier_events <- max peak t.frontier_events;
    t
  in
  match parse () with
  | t -> Ok t
  | exception Failure message ->
      Error (Error.Bad_checkpoint { source = "checkpoint"; message })
  | exception End_of_file ->
      Error
        (Error.Bad_checkpoint
           { source = "checkpoint"; message = "truncated checkpoint" })
  | exception Sys_error message ->
      Error (Error.Io { path = "checkpoint"; message })

let resume_file ?config path ~sink ~emit =
  match open_in path with
  | exception Sys_error message -> Error (Error.Io { path; message })
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> resume ?config ic ~sink ~emit)

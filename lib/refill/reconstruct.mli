(** The REFILL pipeline: collected logs → per-packet event flows.

    For each packet key appearing in the collected logs, its surviving
    records are gathered per node (local order preserved), merged with the
    origin's records first (the natural processing start; the connected
    engines are insensitive to the cross-node merge order), and run through
    the connected inference engines. *)

val packet :
  ?use_intra:bool ->
  ?use_inter:bool ->
  ?provenance:bool ->
  Logsys.Collected.t ->
  origin:int ->
  seq:int ->
  sink:int ->
  Flow.t
(** Reconstruct one packet's event flow.  A packet with no surviving
    records yields an empty flow.  [use_intra]/[use_inter] (default [true])
    are the ablation knobs: they disable the intra-node shortcut
    transitions and the inter-node prerequisite connections respectively.
    [provenance] (default [false]) collects the per-item {!Provenance.t}
    side-car into {!Flow.t.prov} and bumps the
    [refill_provenance_events_total] counters. *)

val of_records :
  ?use_intra:bool ->
  ?use_inter:bool ->
  ?provenance:bool ->
  Logsys.Record.t array ->
  origin:int ->
  seq:int ->
  sink:int ->
  Flow.t
(** [of_records records ~origin ~seq ~sink] is {!packet} from an explicit
    record array instead of a {!Logsys.Collected} snapshot — the entry the
    streaming frontier ({!Stream}) uses when it evicts a packet.  The
    records must be in node-scan order (nodes ascending, each node's
    records in local write order), exactly as
    {!Logsys.Collected.packet_records} returns them; the engine takes
    ownership of the array. *)

val of_arena :
  ?use_intra:bool ->
  ?use_inter:bool ->
  ?provenance:bool ->
  Logsys.Arena.t ->
  rows:int array ->
  origin:int ->
  seq:int ->
  sink:int ->
  Flow.t
(** {!of_records} over arena rows — the zero-copy ingest path.  [rows]
    must be the packet's node-scan-order row indices
    ({!Logsys.Arena.Packets.packet_rows}).  The flow is structurally
    identical to {!of_records} over the materialized rows: event packing
    and peer recovery read columns, payloads materialize once per emitted
    slot. *)

val run :
  ?config:Config.t ->
  Logsys.Collected.t ->
  sink:int ->
  emit:(Flow.t -> unit) ->
  unit
(** Reconstruct every packet found in the logs and hand each flow to
    [emit], in packet-key order.  This is the single batch entry point; the
    old [all]/[all_array] signatures below are thin collecting aliases over
    it.

    Packets are independent, so large workloads are sharded over
    [config.jobs] worker domains (default
    [Domain.recommended_domain_count ()]); the emission sequence is
    identical to the serial run — order preserved, per-flow stats exact,
    and process-wide metric totals exact (flushes are batched per run under
    a lock).  Runs stay serial when [jobs <= 1], when tracing spans are
    enabled, or when the workload is too small to amortize a domain spawn;
    on the parallel path flows are buffered and [emit] is called after the
    join, still in key order. *)

val run_arena :
  ?config:Config.t ->
  Logsys.Arena.Packets.t ->
  sink:int ->
  emit:(Flow.t -> unit) ->
  unit
(** {!run} over an arena-indexed packet index: same key order,
    parallelization policy, spans and metrics; flows are structurally
    identical to the record path's.  The index (and its arena) must be
    fully built — it is shared read-only across worker domains. *)

type summary = {
  packets : int;
  logged_events : int;
  inferred_events : int;
  skipped_events : int;
}

val empty_summary : summary

val summary_add : summary -> Flow.t -> summary
(** Fold one flow into a running summary — what streaming consumers use to
    summarize without materializing the flow sequence. *)

val summarize : Flow.t list -> summary

val summarize_array : Flow.t array -> summary
(** {!summarize} over the array shape the batch and bench paths carry,
    without a list round-trip. *)

val pp_summary : Format.formatter -> summary -> unit

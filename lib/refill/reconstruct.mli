(** The REFILL pipeline: collected logs → per-packet event flows.

    For each packet key appearing in the collected logs, its surviving
    records are gathered per node (local order preserved), merged with the
    origin's records first (the natural processing start; the connected
    engines are insensitive to the cross-node merge order), and run through
    the connected inference engines. *)

val packet :
  ?use_intra:bool ->
  ?use_inter:bool ->
  Logsys.Collected.t ->
  origin:int ->
  seq:int ->
  sink:int ->
  Flow.t
(** Reconstruct one packet's event flow.  A packet with no surviving
    records yields an empty flow.  [use_intra]/[use_inter] (default [true])
    are the ablation knobs: they disable the intra-node shortcut
    transitions and the inter-node prerequisite connections respectively. *)

val all :
  ?use_intra:bool ->
  ?use_inter:bool ->
  ?jobs:int ->
  Logsys.Collected.t ->
  sink:int ->
  Flow.t list
(** Reconstruct every packet found in the logs, sorted by packet key.

    Packets are independent, so large workloads are sharded over [jobs]
    worker domains (default [Domain.recommended_domain_count ()]); the
    result is identical to the serial run — order preserved, per-flow
    stats exact, and process-wide metric totals exact (flushes are
    batched per run under a lock).  Runs stay serial when [jobs <= 1],
    when tracing spans are enabled, or when the workload is too small to
    amortize a domain spawn. *)

val all_array :
  ?use_intra:bool ->
  ?use_inter:bool ->
  ?jobs:int ->
  Logsys.Collected.t ->
  sink:int ->
  Flow.t array
(** {!all} as the flat array the workers fill — what
    {!Global_flow.build_array} consumes directly, skipping the list
    round-trip. *)

type summary = {
  packets : int;
  logged_events : int;
  inferred_events : int;
  skipped_events : int;
}

val summarize : Flow.t list -> summary

val pp_summary : Format.formatter -> summary -> unit

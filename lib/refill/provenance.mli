(** Per-event reconstruction provenance: the auditable answer to "why does
    REFILL believe this event happened?".

    Every emitted event — logged or inferred — can carry one compact
    provenance value recording which mechanism produced it, the FSM
    transition taken, the input records it was derived from, and a coarse
    confidence class.  Provenance is collected behind {!Config.t}'s
    [provenance] flag and side-cars the event stream (see {!Flow.t});
    nothing about {!Logsys.Record.t} or the item shape changes, and with
    the flag off the pipeline pays nothing.

    Evidence indices index the packet's own record array in *node-scan
    order* — nodes ascending, each node's records in local write order,
    exactly as {!Logsys.Collected.packet_records} returns them and as
    {!Reconstruct.of_records} consumes them.  The streaming frontier
    restores the same order before reconstructing, so batch and streaming
    runs produce identical provenance for the same input. *)

(** How the event came to be in the reconstruction. *)
type mechanism =
  | Logged  (** The event is an input record that fired a normal transition. *)
  | Intra_inference
      (** A lost event bridged by an intra-node shortcut transition
          (§IV.B): a later record of the same node proves it happened. *)
  | Inter_inference
      (** A lost event inferred to satisfy an inter-node prerequisite: a
          record of *another* node proves this node must have progressed. *)
  | Stall_recovery
      (** Global merge only: the event was released by breaking a
          soft-constraint cycle ({!Global_flow}), so its global position is
          a forced choice, not evidence. *)
  | Anchor_carry
      (** Global merge only: a logged event whose record could not be
          aligned with its node's log, so its global position was carried
          from a neighbouring event's anchor. *)

(** Coarse trust classes, ordered from most to least trustworthy.  Each
    mechanism maps to one class ({!confidence_of}); consumers that rank
    hypotheses should treat the class, not the mechanism, as the score. *)
type confidence = Certain | High | Medium | Low

type t = private int
(** One provenance value.  The representation is a single immediate int
    (mechanism, confidence, the FSM transition, and up to two evidence
    indices bit-packed), so a [t array] side-car is unboxed and recording
    provenance never allocates — use the accessors below.  Structural
    equality behaves as for a record of the fields, except that the two
    evidence slots are stored in construction order: values built with the
    same evidence in a different order compare unequal even though
    {!evidence} presents both sorted.

    Field limits from the packing: FSM states up to 125 (protocol FSMs
    have a handful), evidence indices up to ~2 million (a packet's record
    count); out-of-range values saturate instead of corrupting. *)

val mechanism : t -> mechanism

val confidence : t -> confidence

val src : t -> Fsm_state.t
(** FSM state the node's engine left ([-1] if unknown). *)

val dst : t -> Fsm_state.t
(** FSM state the transition entered. *)

val evidence : t -> int array
(** Indices of the input records this event was derived from, in the
    packet's node-scan-order record array, as a fresh array of length 0-2,
    sorted ascending.  A [Logged] event's single evidence index is its own
    record; inferred events carry the records that forced the inference.
    Always non-empty for events produced by the engine; may be empty only
    for synthesized defaults (see {!Global_flow.merge}). *)

val mechanism_name : mechanism -> string
(** ["logged"], ["intra-inference"], ["inter-inference"],
    ["stall-recovery"], ["anchor-carry"] — the stable strings used in
    metrics labels, JSON, and [refill explain]. *)

val confidence_name : confidence -> string

val confidence_of : mechanism -> confidence
(** The default class per mechanism: [Logged] is [Certain],
    [Intra_inference] is [High] (local evidence), [Inter_inference] and
    [Anchor_carry] are [Medium] (remote or positional evidence),
    [Stall_recovery] is [Low]. *)

val make : mechanism -> src:Fsm_state.t -> dst:Fsm_state.t -> evidence:int array -> t
(** Provenance with {!confidence_of} applied.  At most the first two
    evidence indices are kept (no engine mechanism produces more). *)

val make2 :
  mechanism -> src:Fsm_state.t -> dst:Fsm_state.t -> e1:int -> e2:int -> t
(** Allocation-free constructor for the engine hot path: evidence as up to
    two indices with [-1] meaning absent, stored verbatim ({!evidence}
    sorts and dedups on read, off the hot path). *)

val with_mechanism : mechanism -> t -> t
(** Reclassify an event (the merge does this for stall recovery and anchor
    carry); confidence is re-derived with {!confidence_of}. *)

val with_confidence : confidence -> t -> t
(** Override the confidence class, keeping everything else. *)

val to_string : ?state_name:(Fsm_state.t -> string) -> t -> string
(** One line, e.g.
    ["intra-inference holding->sent (high) evidence=[2;5]"].
    [state_name] defaults to printing the raw state int. *)

(** Domain fan-out for embarrassingly parallel per-packet work.

    [map_array ~jobs f arr] preserves order: slot [i] of the result is
    [f arr.(i)] whichever domain computed it.  [f] must not touch shared
    mutable state except under {!with_obs_lock} (and must only query
    {!Fsm.precompute}d FSMs).  If [f] raises, the first exception (in
    completion order) is re-raised with its backtrace after every helper
    domain has been joined; the remaining items are not mapped. *)

val map_array : jobs:int -> ('a -> 'b) -> 'a array -> 'b array

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val min_parallel_items : int
(** Workloads smaller than this are not worth a domain spawn; callers fall
    back to the serial path below it. *)

val with_obs_lock : (unit -> 'a) -> 'a
(** Serialize updates to the process-wide metrics registry across
    domains.  Cheap when uncontended; every metrics flush from code that
    can run inside {!map_array} must go through it. *)

(** Connected inference engines and the transition algorithm (§IV.B–C).

    One FSM instance per node, connected by *inter-node prerequisite
    transitions*: before an event fires on one engine, every prerequisite
    state on other engines must have been reached — if a prerequisite node's
    logged events get it there they are consumed (in their local order), and
    any gap is bridged by inferring the lost events along the shortest
    normal path, recursively satisfying their own prerequisites (the
    cascading examples of Fig. 3).

    Prerequisites are *historical*: a prerequisite is satisfied if the
    remote instance has ever visited the required state, matching the
    paper's "t2 can occur only after t1 has occurred".

    The algorithm implements the four steps of §IV.B "Processing Events":
    1. fire normal transitions (driving prerequisite engines first);
    2. otherwise fire the intra-node transition, emitting its lost
       prerequisite events as inferred;
    3. events with no available transition are skipped;
    4. processing ends when all events are consumed. *)

type ('label, 'payload) item = {
  node : int;
  label : 'label;
  payload : 'payload option;  (** [None] possible for inferred events. *)
  inferred : bool;
      (** True for events *not* present in the input — the bracketed lost
          events of §IV.C. *)
  entered : Fsm_state.t;
      (** State the node's engine entered when this event fired — the hook
          the loss-cause classifier keys on. *)
}

type ('label, 'payload) config = {
  fsm_of : int -> 'label Fsm.t;
      (** The FSM modelling each node (may differ per node role); instances
          are created lazily at a node's first event. *)
  prerequisites :
    node:int ->
    label:'label ->
    payload:'payload option ->
    (int * Fsm_state.t) list;
      (** Inter-node prerequisite states that must have been visited before
          this event fires. *)
  infer_payload : node:int -> label:'label -> 'payload option;
      (** Synthesize related information for inferred events. *)
}

type stats = {
  emitted_logged : int;  (** Input events that fired. *)
  emitted_inferred : int;  (** Lost events reconstructed. *)
  skipped : int;  (** Input events with no available transition. *)
}

(** One packet's merged events, in either of the engine's two input
    shapes.  Per-node order must be preserved in both; the cross-node
    interleaving is arbitrary. *)
type ('label, 'payload) input =
  | Events of (int * 'label * 'payload option) array
      (** [(node, label, payload)] per event. *)
  | Packed of {
      nodes : int array;
      labels : 'label array;
      ids : int array;
      payloads : 'payload option array;
      pre_nodes : int array;
      pre_states : Fsm_state.t array;
      srcs : int array;
    }
      (** Pre-resolved parallel arrays — the zero-overhead shape the
          reconstruction hot path builds ({!Protocol.pack_events}).  All
          arrays have one slot per event: [ids.(i)] must equal
          [Fsm.label_id (config.fsm_of nodes.(i)) labels.(i)], and
          [pre_nodes]/[pre_states] carry each event's single inter-node
          prerequisite ([-1] = none) with exactly the semantics
          [config.prerequisites] would return (the closure is then only
          consulted for inferred emissions).  Pass [pre_nodes = [||]] to
          fall back to the closure for every event.

          [srcs.(i)] maps event slot [i] back to the index consumers know
          the underlying record by (packers may permute the caller's
          records); provenance evidence cites these indices.  [[||]] means
          identity — the slot index itself. *)

val process :
  ?use_intra:bool ->
  ?prov_out:(Provenance.t array -> int -> unit) ->
  ('label, 'payload) config ->
  ('label, 'payload) input ->
  emit:(('label, 'payload) item -> unit) ->
  stats
(** [process config input ~emit] runs the transition algorithm over the
    merged events and calls [emit] once per reconstructed event, in flow
    order.  Logged events appear exactly once each (fired or skipped);
    inferred events are interleaved where the engine proved they must have
    occurred.  The engine takes ownership of the input arrays (read, never
    written).

    [prov_out buf len], when given, is called once, before [process]
    returns, with the provenance side-car: [buf.(k)] for [k < len]
    explains the [k]-th [emit]ted item.  [buf] is an engine-owned,
    per-domain reused scratch buffer — it is only valid during the
    callback (copy the prefix out to keep it), and entries at and beyond
    [len] are meaningless.  Recording costs bit packing and one int store
    per emission; evidence indices are source indices ([srcs]-mapped for
    packed input).  When omitted the engine allocates nothing for
    provenance.

    This is the single entry point: batch callers collect the emissions
    (see {!Reconstruct}), streaming callers forward them downstream without
    materializing the flow.

    [use_intra] (default [true]) enables the intra-node shortcut
    transitions; disabling it (events fire on normal transitions only, and
    prerequisite gaps are still bridged) is the ablation knob for measuring
    what §IV.B's intra-node derivation contributes.  Inter-node reasoning
    is ablated by supplying a [prerequisites] that returns [].

    The pre-streaming list-returning entry points ([run], [run_array],
    [run_packed]) are gone; see README.md "API migration". *)

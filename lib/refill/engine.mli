(** Connected inference engines and the transition algorithm (§IV.B–C).

    One FSM instance per node, connected by *inter-node prerequisite
    transitions*: before an event fires on one engine, every prerequisite
    state on other engines must have been reached — if a prerequisite node's
    logged events get it there they are consumed (in their local order), and
    any gap is bridged by inferring the lost events along the shortest
    normal path, recursively satisfying their own prerequisites (the
    cascading examples of Fig. 3).

    Prerequisites are *historical*: a prerequisite is satisfied if the
    remote instance has ever visited the required state, matching the
    paper's "t2 can occur only after t1 has occurred".

    The algorithm implements the four steps of §IV.B "Processing Events":
    1. fire normal transitions (driving prerequisite engines first);
    2. otherwise fire the intra-node transition, emitting its lost
       prerequisite events as inferred;
    3. events with no available transition are skipped;
    4. processing ends when all events are consumed. *)

type ('label, 'payload) item = {
  node : int;
  label : 'label;
  payload : 'payload option;  (** [None] possible for inferred events. *)
  inferred : bool;
      (** True for events *not* present in the input — the bracketed lost
          events of §IV.C. *)
  entered : Fsm_state.t;
      (** State the node's engine entered when this event fired — the hook
          the loss-cause classifier keys on. *)
}

type ('label, 'payload) config = {
  fsm_of : int -> 'label Fsm.t;
      (** The FSM modelling each node (may differ per node role); instances
          are created lazily at a node's first event. *)
  prerequisites :
    node:int ->
    label:'label ->
    payload:'payload option ->
    (int * Fsm_state.t) list;
      (** Inter-node prerequisite states that must have been visited before
          this event fires. *)
  infer_payload : node:int -> label:'label -> 'payload option;
      (** Synthesize related information for inferred events. *)
}

type stats = {
  emitted_logged : int;  (** Input events that fired. *)
  emitted_inferred : int;  (** Lost events reconstructed. *)
  skipped : int;  (** Input events with no available transition. *)
}

val run_array :
  ?use_intra:bool ->
  ('label, 'payload) config ->
  events:(int * 'label * 'payload option) array ->
  ('label, 'payload) item list * stats
(** {!run} over an event array.  The engine takes ownership of the array
    (it is read, never written); callers on the hot path build it directly
    and skip the intermediate list. *)

val run_packed :
  ?use_intra:bool ->
  ('label, 'payload) config ->
  nodes:int array ->
  labels:'label array ->
  ids:int array ->
  payloads:'payload option array ->
  pre_nodes:int array ->
  pre_states:Fsm_state.t array ->
  ('label, 'payload) item list * stats
(** {!run_array} over pre-resolved parallel arrays — the zero-overhead
    entry the reconstruction hot path uses.  All arrays have one slot per
    event: [ids.(i)] must equal [Fsm.label_id (config.fsm_of nodes.(i))
    labels.(i)], and [pre_nodes]/[pre_states] carry each event's single
    inter-node prerequisite ([-1] = none) with exactly the semantics
    [config.prerequisites] would return (the closure is then only
    consulted for inferred emissions).  Pass [pre_nodes = [||]] to fall
    back to the closure for every event.  The engine takes ownership of
    the arrays (read, never written). *)

val run :
  ?use_intra:bool ->
  ('label, 'payload) config ->
  events:(int * 'label * 'payload option) list ->
  ('label, 'payload) item list * stats
(** [run config ~events] processes the merged event list (per-node order
    must be preserved in it, cross-node order is arbitrary) and returns the
    reconstructed event flow.  Logged events appear exactly once each
    (fired or skipped); inferred events are interleaved where the engine
    proved they must have occurred.

    [use_intra] (default [true]) enables the intra-node shortcut
    transitions; disabling it (events fire on normal transitions only, and
    prerequisite gaps are still bridged) is the ablation knob for measuring
    what §IV.B's intra-node derivation contributes. Inter-node reasoning is
    ablated by supplying a [prerequisites] that returns []. *)

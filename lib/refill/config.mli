(** One record for the pipeline options that used to be threaded as
    scattered optional arguments ([?use_intra], [?use_inter], [?jobs]) plus
    the streaming knobs, so every entry point — batch {!Reconstruct.run},
    streaming {!Stream}, and the CLI — speaks the same configuration
    language. *)

type t = {
  use_intra : bool;
      (** Enable the intra-node shortcut transitions (§IV.B ablation
          knob). *)
  use_inter : bool;
      (** Enable the inter-node prerequisite connections. *)
  jobs : int option;
      (** Domain fan-out cap for parallel stages; [None] =
          {!Par.default_jobs}. *)
  watermark : int;
      (** Streaming only: a frontier packet is evicted once this many
          records have been processed since its last record arrived. *)
  chunk_events : int;
      (** Streaming only: segment size (records per {!Stream.feed} call)
          used by readers that chunk an input stream. *)
  provenance : bool;
      (** Collect per-event {!Provenance.t} side-car arrays
          ({!Flow.t.prov}).  Off by default: the pipeline then allocates
          nothing for provenance. *)
  shards : int;
      (** Streaming only: worker domains for {!Stream.Sharded}; [1] keeps
          the single-domain {!Stream} path. *)
  late_retention : int option;
      (** Streaming only: how many records past a packet's eviction
          trigger a returning fragment is still recognized as a late
          fragment of that packet.  Older evicted keys are forgotten (and
          counted), which bounds the evicted-key table.  [None] =
          [4 * watermark]. *)
}

val default : t
(** [use_intra = true], [use_inter = true], [jobs = None],
    [watermark = 50_000], [chunk_events = 4096], [provenance = false],
    [shards = 1], [late_retention = None]. *)

(** {2 Builders}

    [default |> with_watermark 1000 |> with_shards 4] style: each
    combinator replaces one knob, so call sites name only what they change
    and keep compiling when the record grows. *)

val with_intra : bool -> t -> t
val with_inter : bool -> t -> t
val with_jobs : int option -> t -> t
val with_watermark : int -> t -> t
val with_chunk_events : int -> t -> t
val with_provenance : bool -> t -> t
val with_shards : int -> t -> t
val with_late_retention : int option -> t -> t

val of_options :
  ?use_intra:bool ->
  ?use_inter:bool ->
  ?jobs:int option ->
  ?watermark:int ->
  ?chunk_events:int ->
  ?provenance:bool ->
  ?shards:int ->
  ?late_retention:int option ->
  unit ->
  (t, Error.t) result
(** The single CLI-facing parser: every omitted argument keeps its
    {!default}, the result passes {!validate}.  [reconstruct], [analyze],
    and [serve] all build their configuration through this, so an
    out-of-range value maps onto the same {!Error.Invalid_config} exit
    code everywhere. *)

val resolved_retention : t -> int
(** The effective late-fragment retention window: [late_retention] when
    set, otherwise [4 * watermark] (saturating). *)

val validate : t -> (t, Error.t) result
(** [Error (Invalid_config _)] when [watermark <= 0], [chunk_events <= 0],
    [shards <= 0], [jobs = Some j] with [j <= 0], or
    [late_retention = Some r] with [r < 0]. *)

(** One record for the pipeline options that used to be threaded as
    scattered optional arguments ([?use_intra], [?use_inter], [?jobs]) plus
    the streaming knobs, so every entry point — batch {!Reconstruct.run},
    streaming {!Stream}, and the CLI — speaks the same configuration
    language. *)

type t = {
  use_intra : bool;
      (** Enable the intra-node shortcut transitions (§IV.B ablation
          knob). *)
  use_inter : bool;
      (** Enable the inter-node prerequisite connections. *)
  jobs : int option;
      (** Domain fan-out cap for parallel stages; [None] =
          {!Par.default_jobs}. *)
  watermark : int;
      (** Streaming only: a frontier packet is evicted once this many
          records have been processed since its last record arrived. *)
  chunk_events : int;
      (** Streaming only: segment size (records per {!Stream.feed} call)
          used by readers that chunk an input stream. *)
  provenance : bool;
      (** Collect per-event {!Provenance.t} side-car arrays
          ({!Flow.t.prov}).  Off by default: the pipeline then allocates
          nothing for provenance. *)
}

val default : t
(** [use_intra = true], [use_inter = true], [jobs = None],
    [watermark = 50_000], [chunk_events = 4096], [provenance = false]. *)

val validate : t -> (t, Error.t) result
(** [Error (Invalid_config _)] when [watermark <= 0], [chunk_events <= 0],
    or [jobs = Some j] with [j <= 0]. *)

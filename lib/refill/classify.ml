type verdict = {
  cause : Logsys.Cause.t;
  loss_node : int option;
  next_hop : int option;
}

let no_loss cause = { cause; loss_node = None; next_hop = None }

let at cause node = { cause; loss_node = Some node; next_hop = None }

let peer_of (i : Flow.item) =
  match i.payload with
  | Some r -> (
      match Logsys.Record.peer r with
      | Some p when p <> Protocol.unknown_node -> Some p
      | Some _ | None -> None)
  | None -> None

let find_entered items state =
  List.find_opt (fun (i : Flow.item) -> i.entered = state) items

(* Index and item of the flow's last [holding] entry: the packet's final
   holder. *)
let last_holder items =
  List.fold_left
    (fun (idx, best) (i : Flow.item) ->
      let idx = idx + 1 in
      if i.entered = Protocol.holding then (idx, Some (idx, i))
      else (idx, best))
    (-1, None) items
  |> snd

(* The holder's state progression after it (re-)took the packet. *)
let final_state_of items ~node ~from_idx =
  List.fold_left
    (fun (idx, state, last) (i : Flow.item) ->
      let idx = idx + 1 in
      if idx >= from_idx && i.node = node then (idx, i.entered, Some i)
      else (idx, state, last))
    (-1, Protocol.holding, None)
    items
  |> fun (_, state, last) -> (state, last)

let classify (flow : Flow.t) =
  let items = flow.items in
  match find_entered items Protocol.delivered with
  | Some _ -> no_loss Logsys.Cause.Delivered
  | None -> (
      match find_entered items Protocol.dup_dropped with
      | Some i -> at Logsys.Cause.Duplicate_loss i.node
      | None -> (
          match find_entered items Protocol.overflow_dropped with
          | Some i -> at Logsys.Cause.Overflow_loss i.node
          | None -> (
              match last_holder items with
              | None -> no_loss Logsys.Cause.Unknown
              | Some (idx, holder_item) -> (
                  let node = holder_item.node in
                  let state, last = final_state_of items ~node ~from_idx:idx in
                  if state = Protocol.holding then
                    if holder_item.label = Protocol.L_gen then
                      no_loss Logsys.Cause.Unknown
                    else if holder_item.inferred then
                      at Logsys.Cause.Acked_loss node
                    else at Logsys.Cause.Received_loss node
                  else if state = Protocol.sent || state = Protocol.timed_out
                  then
                    {
                      cause = Logsys.Cause.Timeout_loss;
                      loss_node = Some node;
                      next_hop = Option.bind last peer_of;
                    }
                  else if state = Protocol.acked then
                    (* The ACK was logged but the receiver could not even be
                       identified; blame the peer when known. *)
                    match Option.bind last peer_of with
                    | Some p -> at Logsys.Cause.Acked_loss p
                    | None -> at Logsys.Cause.Acked_loss node
                  else no_loss Logsys.Cause.Unknown))))

let is_delivered flow = (classify flow).cause = Logsys.Cause.Delivered

let loss_position flow = (classify flow).loss_node

type mechanism =
  | Logged
  | Intra_inference
  | Inter_inference
  | Stall_recovery
  | Anchor_carry

type confidence = Certain | High | Medium | Low

(* A provenance value is one immediate int — bit layout from the LSB:

     mechanism   3 bits   [0..2]
     confidence  2 bits   [3..4]
     src + 1     7 bits   [5..11]   (0 encodes "no state", i.e. -1)
     dst + 1     7 bits   [12..18]
     e1 + 1     21 bits   [19..39]  (0 encodes "no evidence")
     e2 + 1     21 bits   [40..60]

   61 bits total, comfortably inside OCaml's 63-bit native int.  The
   payoff: a [t array] side-car is an unboxed int array, and the engine
   hot path records provenance without allocating a single block, which
   is what keeps the provenance-on overhead in the noise.

   The compiler has no flambda here, so [make2] and the accessors are
   written as straight-line code — helper calls on the per-event path
   would cost more than the bit twiddling they'd tidy up. *)
type t = int

let max_state = 125

let max_evidence = 0x1FFFFF - 2

let mechanism t : mechanism =
  match t land 0x7 with
  | 0 -> Logged
  | 1 -> Intra_inference
  | 2 -> Inter_inference
  | 3 -> Stall_recovery
  | _ -> Anchor_carry

let confidence t : confidence =
  match (t lsr 3) land 0x3 with
  | 0 -> Certain
  | 1 -> High
  | 2 -> Medium
  | _ -> Low

let src t = ((t lsr 5) land 0x7F) - 1

let dst t = ((t lsr 12) land 0x7F) - 1

let mechanism_name = function
  | Logged -> "logged"
  | Intra_inference -> "intra-inference"
  | Inter_inference -> "inter-inference"
  | Stall_recovery -> "stall-recovery"
  | Anchor_carry -> "anchor-carry"

let confidence_name = function
  | Certain -> "certain"
  | High -> "high"
  | Medium -> "medium"
  | Low -> "low"

let confidence_of = function
  | Logged -> Certain
  | Intra_inference -> High
  | Inter_inference -> Medium
  | Anchor_carry -> Medium
  | Stall_recovery -> Low

(* The evidence pair is stored verbatim (the {!evidence} accessor sorts
   and dedups on read — a cold path — so the per-event constructor stays
   minimal); out-of-range values saturate to "absent" (evidence) or the
   field max (states) rather than corrupting neighbouring fields. *)
let make2 mech ~src ~dst ~e1:a ~e2:b =
  (* mech_code lor (conf_code lsl 3): both depend only on [mech]. *)
  (match mech with
  | Logged -> 0
  | Intra_inference -> 1 lor (1 lsl 3)
  | Inter_inference -> 2 lor (2 lsl 3)
  | Stall_recovery -> 3 lor (3 lsl 3)
  | Anchor_carry -> 4 lor (2 lsl 3))
  lor ((if src < -1 then 0 else if src > max_state then max_state + 1 else src + 1)
      lsl 5)
  lor ((if dst < -1 then 0 else if dst > max_state then max_state + 1 else dst + 1)
      lsl 12)
  lor ((if a < 0 || a > max_evidence then 0 else a + 1) lsl 19)
  lor ((if b < 0 || b > max_evidence then 0 else b + 1) lsl 40)

let make mech ~src ~dst ~evidence =
  let get i = if i < Array.length evidence then evidence.(i) else -1 in
  make2 mech ~src ~dst ~e1:(get 0) ~e2:(get 1)

let with_mechanism mech t =
  t land lnot 0x1F
  lor
  match mech with
  | Logged -> 0
  | Intra_inference -> 1 lor (1 lsl 3)
  | Inter_inference -> 2 lor (2 lsl 3)
  | Stall_recovery -> 3 lor (3 lsl 3)
  | Anchor_carry -> 4 lor (2 lsl 3)

let with_confidence conf t =
  t land lnot 0x18
  lor ((match conf with Certain -> 0 | High -> 1 | Medium -> 2 | Low -> 3)
      lsl 3)

let e1 t = ((t lsr 19) land 0x1FFFFF) - 1

let e2 t = ((t lsr 40) land 0x1FFFFF) - 1

let evidence t =
  let a = e1 t and b = e2 t in
  if a < 0 then (if b < 0 then [||] else [| b |])
  else if b < 0 || b = a then [| a |]
  else if a < b then [| a; b |]
  else [| b; a |]

let to_string ?(state_name = string_of_int) t =
  Printf.sprintf "%s %s->%s (%s) evidence=[%s]"
    (mechanism_name (mechanism t))
    (state_name (src t))
    (state_name (dst t))
    (confidence_name (confidence t))
    (String.concat ";"
       (Array.to_list (Array.map string_of_int (evidence t))))

(** Streaming reconstruction with bounded memory.

    The batch pipeline ({!Reconstruct.run}) needs the whole collected
    snapshot before the first flow comes out.  A stream instead consumes
    the collection feed segment by segment, keeps only the {e frontier} —
    packets whose records are still arriving — and emits each packet's
    reconstructed flow as soon as the packet goes quiet.

    {2 Frontier and watermark}

    Records are buffered per packet key [(origin, seq)].  A packet is
    considered finished when no record for it has appeared in the last
    [watermark] records processed (a count-based low-watermark, so the
    stream needs no clock).  At that point its buffered records — restored
    to the node-scan order the batch index would produce — are run through
    the ordinary per-packet engines and the flow is emitted.

    On a feed ordered like the real collection stream (arrival order), the
    frontier stays small: the acceptance bench holds its peak under 10% of
    the trace.  Feeding a node-major dump works but keeps almost every
    packet open; use [Log_io.save ~time_order:true] for stream dumps.

    {2 Outcomes}

    Eviction is a wager that the packet is done.  When a record for an
    already-evicted key shows up later, the stream reconstructs the late
    fragment as a second flow for the same key, flagged {!Incomplete} — it
    never rewrites history.  A flow evicted mid-stream is {!Complete} only
    if classification reaches a verdict on it; the end-of-input flush
    emits remaining packets as {!Complete} (nothing more can arrive).
    Hence on lossless input with eviction by final flush only, streaming
    output equals batch output; under mid-stream eviction any flow that
    differs from its batch counterpart is traceable to an [Incomplete]
    sibling.

    Evicted keys are remembered for [Config.late_retention] further
    records (default [4 * watermark]) and then forgotten, which bounds
    the evicted-key table on unbounded streams; forgotten keys are
    counted ({!summary.forgotten_keys},
    [refill_stream_forgotten_keys_total]) so late-fragment accounting
    degrades visibly, not silently.

    {2 Checkpoints}

    The live state — counters, evicted-key table, and the frontier
    buffers with their arrival order — serializes to a text checkpoint
    ([# refill-stream-ckpt v2], one section per shard, with the semantic
    flags in the header).  v1 checkpoints are still readable.  Resuming
    and feeding the remaining records yields byte-identical flows to an
    uninterrupted run; a checkpoint written at any shard count resumes at
    any other (including the single-domain stream).

    {2 Sharding}

    {!Sharded} runs N single-domain streams as worker domains, routing
    each record by a hash of its packet key over bounded SPSC queues, and
    re-serializes their emissions into exactly the single-domain emission
    order — output is byte-identical at any shard count and chunking. *)

type outcome =
  | Complete  (** The stream believes it saw this packet whole. *)
  | Incomplete
      (** Evicted without a classifiable ending, or a late fragment of a
          key already emitted. *)

type emitted = { flow : Flow.t; outcome : outcome }

type summary = {
  events : int;  (** Records processed (excludes skipped negatives). *)
  segments : int;  (** [feed] calls. *)
  flows : int;  (** Flows emitted, including late fragments. *)
  complete : int;
  incomplete : int;
  evictions : int;  (** Mid-stream evictions (not end-of-input flushes). *)
  late_fragments : int;
  forgotten_keys : int;
      (** Evicted keys dropped after the retention window: a fragment of
          one of these arriving even later would not be flagged late. *)
  frontier_events : int;  (** Records currently buffered. *)
  peak_frontier_events : int;
}

type t

val create : ?config:Config.t -> sink:int -> emit:(emitted -> unit) -> unit -> t
(** A fresh stream.  [config] supplies the ablation knobs,
    [config.watermark] and [config.late_retention]; [emit] is called
    synchronously from [feed] / [finish], in eviction order
    (deterministic for a given feed). *)

val feed : t -> Logsys.Record.t array -> unit
(** Process one segment of records, in arrival order.  Records with a
    negative node id are ignored.  Emission depends only on the
    concatenation of segments, not on how they are chunked.
    @raise Invalid_argument after {!finish}. *)

val feed_arena : t -> Logsys.Arena.slice -> unit
(** {!feed} over an arena slice (one slice = one segment): the node
    filter reads the column and only surviving records materialize.
    Output is byte-identical to feeding the materialized slice. *)

val finish : t -> summary
(** Flush every still-open packet (ascending key order) and return the
    final summary.  Idempotent; the stream accepts no further [feed]. *)

val summary : t -> summary
(** Counters so far, without finishing. *)

val processed : t -> int
(** Records processed so far — what {!Logsys.Log_io.Seg.skip} needs to
    fast-forward a reopened input to the checkpoint position. *)

val checkpoint : t -> out_channel -> unit
(** Serialize the live state (v2, single shard).  Only meaningful before
    {!finish}. *)

val checkpoint_file : t -> string -> (unit, Error.t) result

val resume :
  ?config:Config.t ->
  in_channel ->
  sink:int ->
  emit:(emitted -> unit) ->
  (t, Error.t) result
(** Rebuild a single-domain stream from a checkpoint (v1 or v2; a
    multi-shard v2 checkpoint is merged into one frontier).  The
    checkpoint's watermark and retention always win.  The semantic flags
    ([use_intra]/[use_inter]/[provenance]) come from the checkpoint when
    it records them (v2); passing [?config] whose flags disagree with a
    v2 checkpoint is an [Error.Bad_checkpoint] — resuming under different
    semantics would silently change what the reconstruction means.  For
    v1 checkpoints (no recorded flags) the caller's config is trusted.
    All restored header fields are validated; nonsensical values
    (negative counters, [peak-frontier] below the restored frontier,
    shard totals that disagree with the clock) are rejected with
    [Error.Bad_checkpoint]. *)

val resume_file :
  ?config:Config.t ->
  string ->
  sink:int ->
  emit:(emitted -> unit) ->
  (t, Error.t) result

(** Multi-domain sharded streaming with single-domain output semantics.

    [create ~config] spawns [config.shards] worker domains, each running
    an ordinary stream over the subset of packet keys that hash to it.
    Records are annotated with their global stream position and routed
    over bounded SPSC queues; every segment boundary broadcasts a clock
    tick so each worker evicts exactly where the single-domain stream
    would.  Emissions are buffered and released in global order —
    mid-stream evictions ascending by the evicted packet's last-seen
    position once every worker's clock has passed the point where an
    earlier eviction could still appear, end-of-stream flushes ascending
    by key — so the emitted flow sequence is byte-identical to
    single-domain {!Stream} for any shard count and any chunking.

    [emit] fires from {!Sharded.feed}, {!Sharded.finish} and the other
    combining calls, possibly several segments after the records that
    produced a flow (the release lags the slowest worker by up to one
    watermark).  [summary] totals are sums over workers;
    [peak_frontier_events] sums per-worker peaks, an upper bound on the
    single-domain peak; [segments] counts {!Sharded.feed} calls.  A
    worker failure is re-raised from the next call into the shard layer
    after all domains are joined. *)
module Sharded : sig
  type nonrec t

  val create :
    ?config:Config.t -> sink:int -> emit:(emitted -> unit) -> unit -> t

  val shards : t -> int

  val feed : t -> Logsys.Record.t array -> unit
  (** Route one segment to the workers and release every emission that is
      already globally ordered.  @raise Invalid_argument after
      {!finish}. *)

  val finish : t -> summary
  (** Stop and join all workers, flush every frontier, release all
      remaining emissions, and return the aggregate summary.
      Idempotent. *)

  val summary : t -> summary
  (** Quiesce the workers (blocking until they catch up with the feeder)
      and return aggregate counters; also releases pending emissions. *)

  val processed : t -> int
  (** Global records routed so far — the {!Logsys.Log_io.Seg.skip} count
      for resuming. *)

  val checkpoint : t -> out_channel -> unit
  (** Quiesce, then serialize all shards as one v2 checkpoint.  Only
      meaningful before {!finish}. *)

  val checkpoint_file : t -> string -> (unit, Error.t) result

  val resume :
    ?config:Config.t ->
    in_channel ->
    sink:int ->
    emit:(emitted -> unit) ->
    (t, Error.t) result
  (** Resume from a v1 or v2 checkpoint into [config.shards] workers,
      re-hashing the restored frontier and evicted keys; the shard count
      need not match the checkpoint's.  Same validation and
      flag-conflict rules as {!Stream.resume}. *)

  val resume_file :
    ?config:Config.t ->
    string ->
    sink:int ->
    emit:(emitted -> unit) ->
    (t, Error.t) result
end

(** Streaming reconstruction with bounded memory.

    The batch pipeline ({!Reconstruct.run}) needs the whole collected
    snapshot before the first flow comes out.  A stream instead consumes
    the collection feed segment by segment, keeps only the {e frontier} —
    packets whose records are still arriving — and emits each packet's
    reconstructed flow as soon as the packet goes quiet.

    {2 Frontier and watermark}

    Records are buffered per packet key [(origin, seq)].  A packet is
    considered finished when no record for it has appeared in the last
    [watermark] records processed (a count-based low-watermark, so the
    stream needs no clock).  At that point its buffered records — restored
    to the node-scan order the batch index would produce — are run through
    the ordinary per-packet engines and the flow is emitted.

    On a feed ordered like the real collection stream (arrival order), the
    frontier stays small: the acceptance bench holds its peak under 10% of
    the trace.  Feeding a node-major dump works but keeps almost every
    packet open; use [Log_io.save ~time_order:true] for stream dumps.

    {2 Outcomes}

    Eviction is a wager that the packet is done.  When a record for an
    already-evicted key shows up later, the stream reconstructs the late
    fragment as a second flow for the same key, flagged {!Incomplete} — it
    never rewrites history.  A flow evicted mid-stream is {!Complete} only
    if classification reaches a verdict on it; the end-of-input flush
    emits remaining packets as {!Complete} (nothing more can arrive).
    Hence on lossless input with eviction by final flush only, streaming
    output equals batch output; under mid-stream eviction any flow that
    differs from its batch counterpart is traceable to an [Incomplete]
    sibling.

    {2 Checkpoints}

    The live state — counters, evicted-key set, and the frontier buffers
    with their arrival order — serializes to a text checkpoint
    ([# refill-stream-ckpt v1]).  Resuming and feeding the remaining
    records yields byte-identical flows to an uninterrupted run. *)

type outcome =
  | Complete  (** The stream believes it saw this packet whole. *)
  | Incomplete
      (** Evicted without a classifiable ending, or a late fragment of a
          key already emitted. *)

type emitted = { flow : Flow.t; outcome : outcome }

type summary = {
  events : int;  (** Records processed (excludes skipped negatives). *)
  segments : int;  (** [feed] calls. *)
  flows : int;  (** Flows emitted, including late fragments. *)
  complete : int;
  incomplete : int;
  evictions : int;  (** Mid-stream evictions (not end-of-input flushes). *)
  late_fragments : int;
  frontier_events : int;  (** Records currently buffered. *)
  peak_frontier_events : int;
}

type t

val create : ?config:Config.t -> sink:int -> emit:(emitted -> unit) -> unit -> t
(** A fresh stream.  [config] supplies the ablation knobs and
    [config.watermark]; [emit] is called synchronously from [feed] /
    [finish], in eviction order (deterministic for a given feed). *)

val feed : t -> Logsys.Record.t array -> unit
(** Process one segment of records, in arrival order.  Records with a
    negative node id are ignored.  Emission depends only on the
    concatenation of segments, not on how they are chunked.
    @raise Invalid_argument after {!finish}. *)

val finish : t -> summary
(** Flush every still-open packet (ascending key order) and return the
    final summary.  Idempotent; the stream accepts no further [feed]. *)

val summary : t -> summary
(** Counters so far, without finishing. *)

val processed : t -> int
(** Records processed so far — what {!Logsys.Log_io.Seg.skip} needs to
    fast-forward a reopened input to the checkpoint position. *)

val checkpoint : t -> out_channel -> unit
(** Serialize the live state.  Only meaningful before {!finish}. *)

val checkpoint_file : t -> string -> (unit, Error.t) result

val resume :
  ?config:Config.t ->
  in_channel ->
  sink:int ->
  emit:(emitted -> unit) ->
  (t, Error.t) result
(** Rebuild a stream from a checkpoint.  The checkpoint's watermark
    overrides [config.watermark]; the ablation knobs still come from
    [config]. *)

val resume_file :
  ?config:Config.t ->
  string ->
  sink:int ->
  emit:(emitted -> unit) ->
  (t, Error.t) result

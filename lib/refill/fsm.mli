(** Finite state machines for the inference engine (§IV.A–B).

    An FSM is the directed graph [G = (S, T, E)] of the paper: integer
    states, directed edges, one event label per edge.  Multiple edges may
    carry the same label, and one label may appear on edges with different
    sources — exactly the generality §IV.A allows.

    The module also implements the *intra-node transition* derivation of
    §IV.B: for a label [l] whose normal edges target states [{j1..jm}], and
    a state [x] from which exactly one [jc] of those targets is reachable,
    an intra edge [x --l--> jc] is added.  Taking it implies the events on
    the normal path [x ≻ jc] were lost; [infer_intra] returns that path so
    the engine can emit the lost events.

    Labels are compared with polymorphic equality: use simple variant or
    string labels.

    {b Query caching.}  Every query below ([normal_next], [reachable],
    [shortest_path], [intra_target], [infer_intra], [labels],
    [targets_of_label], ...) is backed by a derived index — label/step
    tables built on the first query after a mutation, per-source BFS trees
    and per-[(state, label)] intra-inference results filled lazily and
    memoized.  [add_transition] invalidates the whole derived layer, so
    interleaving mutation and queries is safe (but rebuilds the index);
    the intended pattern is build-once, query-forever, which makes every
    steady-state query O(1) amortized.  Results are identical to a fresh
    recomputation — the cache is invisible except for speed. *)

type 'label t

val create : n_states:int -> initial:Fsm_state.t -> 'label t
(** @raise Invalid_argument if [n_states <= 0] or [initial] out of range. *)

val precompute : 'label t -> unit
(** Force the whole derived layer: the label/step indexes, every
    per-source BFS tree, and the full [(state, label)] intra-inference
    table.  Afterwards — until the next [add_transition] — all queries are
    pure reads, so a precomputed FSM may be shared read-only across
    domains (the engine precomputes the role FSMs before parallel
    reconstruction). *)

val n_states : _ t -> int

val initial : _ t -> Fsm_state.t

val add_transition :
  'label t -> src:Fsm_state.t -> dst:Fsm_state.t -> 'label -> unit
(** Add a normal transition. Duplicate (src, dst, label) triples are
    ignored.
    @raise Invalid_argument on out-of-range states. *)

val labels : 'label t -> 'label list
(** Distinct labels in insertion order. *)

val transitions : 'label t -> (Fsm_state.t * Fsm_state.t * 'label) list
(** All normal transitions in insertion order. *)

val normal_next : 'label t -> from:Fsm_state.t -> 'label -> Fsm_state.t option
(** Destination of the normal transition from [from] labeled [l]; when
    several exist (nondeterministic FSM), the first added wins.

    The first-added-wins rule is *load-bearing*: the engine's event firing,
    [infer_intra]'s path replay, and the checker's audit all resolve a
    nondeterministic [(src, label)] pair the same way because they all go
    through this function.  Protocol authors who rely on a different
    resolution must disambiguate the FSM itself; {!normal_next_all} exposes
    every candidate so tools (e.g. [Refill_check]) can detect and report the
    ambiguity instead of silently diverging. *)

(** {2 Integer fast path}

    The engine's per-event probes run millions of times per CitySee
    reconstruction; these variants avoid the tuple keys, polymorphic
    hashing, and option allocation of the label-typed API.  Resolve a
    label to its dense id once with {!label_id}, then probe with the
    [_id] functions.  Results are identical to the label-typed API. *)

val label_id : 'label t -> 'label -> int
(** Dense id of a label (labels are numbered in insertion order), or [-1]
    for a label on no transition.  Ids are only meaningful for the FSM
    that produced them and are invalidated by [add_transition]. *)

val step_id : 'label t -> from:Fsm_state.t -> int -> Fsm_state.t
(** [step_id t ~from id] is {!normal_next} as an array read: the
    destination state, or [-1] when there is no normal edge (or [id] is
    [-1]).  [from] must be a valid state of [t]. *)

val infer_intra_id :
  'label t ->
  from:Fsm_state.t ->
  int ->
  ((Fsm_state.t * Fsm_state.t * 'label) list * Fsm_state.t) option
(** {!infer_intra} keyed by label id.  The returned option (and path list)
    is physically shared between calls — treat it as immutable. *)

val normal_next_all :
  'label t -> from:Fsm_state.t -> 'label -> Fsm_state.t list
(** Every destination of a normal transition from [from] labeled [l], in
    insertion order.  [normal_next] is [List.nth_opt (normal_next_all ...) 0];
    a result of two or more states is an ambiguous (nondeterministic) pair. *)

val edges_from : 'label t -> Fsm_state.t -> (Fsm_state.t * 'label) list
(** Outgoing normal transitions of a state as [(dst, label)] pairs in
    insertion order; [] for out-of-range states (no exception). *)

val targets_of_label : 'label t -> 'label -> Fsm_state.t list
(** Distinct destination states of the normal transitions labeled [l], in
    insertion order — the candidate set [{j1..jm}] of §IV.B's intra
    derivation. *)

val edges_of_label :
  'label t -> 'label -> (Fsm_state.t * Fsm_state.t) list
(** All [(src, dst)] pairs of normal transitions labeled [l], in insertion
    order.  The per-label edge view the checker's product automaton is
    built from. *)

val obs_targets :
  'label t -> from:Fsm_state.t -> 'label -> Fsm_state.t list
(** The lossy-observation projection step: the distinct states an observer
    may believe the node is in after seeing a record labeled [l] from
    believed state [from], when any number of records may have been lost
    in between.  Concretely, the targets of [l]-edges whose source is
    reachable from [from].  A result of two or more states is a lossy
    ambiguity; [Refill_check]'s product-automaton passes enumerate exactly
    these.  [] for out-of-range states (no exception). *)

val reachable : 'label t -> from:Fsm_state.t -> Fsm_state.t -> bool
(** Graph reachability over normal transitions; every state reaches
    itself. States outside the graph are never reachable (no exception). *)

val shortest_path :
  'label t ->
  from:Fsm_state.t ->
  to_:Fsm_state.t ->
  (Fsm_state.t * Fsm_state.t * 'label) list option
(** BFS shortest path over normal transitions, deterministic (edges
    explored in insertion order); [Some \[\]] when [from = to_].
    Memoized: the returned list is physically shared between calls. *)

val intra_target : 'label t -> from:Fsm_state.t -> 'label -> Fsm_state.t option
(** The derived intra-node transition target: [Some jc] iff exactly one
    normal target of label [l] is reachable from [from]. Note this includes
    the case where a normal transition exists (the engine prefers the normal
    edge; the intra edge is its degenerate form). *)

val derived_intra_edges :
  'label t -> (Fsm_state.t * Fsm_state.t * 'label) list
(** Every intra-node transition the §IV.B derivation defines and the engine
    could actually take: [(x, jc, l)] such that [x] has no normal [l]-edge
    and [intra_target ~from:x l = Some jc].  Self-loops ([jc = x]) are
    omitted — taking one infers no lost events.  Ordered by source state. *)

val to_dot :
  ?name:string ->
  ?intra:bool ->
  label_name:('label -> string) ->
  state_name:(Fsm_state.t -> string) ->
  'label t ->
  string
(** Graphviz rendering of the normal transitions (for documentation and
    debugging).  With [~intra:true] the {!derived_intra_edges} are drawn
    too, dashed, so checker findings can be eyeballed. *)

val infer_intra :
  'label t ->
  from:Fsm_state.t ->
  'label ->
  ((Fsm_state.t * Fsm_state.t * 'label) list * Fsm_state.t) option
(** [infer_intra t ~from l] = [Some (lost_path, jc)] when the intra
    transition from [from] on [l] is defined and [lost_path] is the
    shortest normal path from [from] to the source [ic] of the cheapest
    normal [l]-edge into [jc] — the prerequisite events that must have been
    lost.  The final [l]-edge [(ic, jc, l)] is NOT included in
    [lost_path].  Returns [None] when no intra transition is defined.

    Pure: safe to call as a speculative probe.  Callers that {e act} on
    the result (the engine's intra branch) are responsible for counting
    the inference in [refill_intra_inferences_total]. *)

(** A second protocol model: one-round data dissemination.

    §IV.B maps the 1-to-many and mixed inter-node transition patterns of
    Fig. 3(b)/(d) to dissemination and negotiation: a broadcaster advertises
    data, receivers request it, the broadcaster answers each request.  This
    module instantiates the generic inference engine for that exchange —
    demonstrating that {!Engine}/{!Fsm} are not tied to the collection
    protocol of {!Protocol}.

    The exchange, per (broadcaster [b], receiver [r]) pair:

    {v
    b: adv ──► r: rx_adv ──► r: req ──► b: rx_req ──► b: data ──► r: rx_data ──► r: done
    v}

    Each arrow is an inter-node prerequisite; every message can be lost (the
    receiver then never completes) and every log record can be lost (REFILL
    infers it back). *)

type label =
  | L_adv  (** Broadcast advertisement sent (on the broadcaster). *)
  | L_rx_adv  (** Advertisement heard (on a receiver). *)
  | L_req  (** Request sent (on a receiver). *)
  | L_rx_req  (** Request received (on the broadcaster). *)
  | L_data  (** Data unicast sent (on the broadcaster). *)
  | L_rx_data  (** Data received (on a receiver). *)
  | L_done  (** Receiver installed the data. *)

val label_name : label -> string

type event = { node : int; label : label; peer : int option }
(** A dissemination log record: where it was written, what it says, and the
    other endpoint when the operation names one. *)

val pp_event : Format.formatter -> event -> unit

(** {2 FSMs}

    States of the receiver chain: [0] init, [1] heard, [2] requested,
    [3] received, [4] done.  Broadcaster (tracked per receiver): [0] init,
    [1] advertised, [2] got-request, [3] data-sent. *)

val receiver_fsm : label Fsm.t

val broadcaster_fsm : label Fsm.t

val r_init : Fsm_state.t
val r_heard : Fsm_state.t
val r_requested : Fsm_state.t
val r_received : Fsm_state.t
val r_done : Fsm_state.t

val b_init : Fsm_state.t
val b_advertised : Fsm_state.t
val b_got_request : Fsm_state.t
val b_data_sent : Fsm_state.t

val receiver_state_name : Fsm_state.t -> string

val broadcaster_state_name : Fsm_state.t -> string

val reconstruct :
  broadcaster:int ->
  receiver:int ->
  events:event list ->
  (label, event) Engine.item list * Engine.stats
(** Run the connected engines over one (broadcaster, receiver) pair's
    surviving records: [events] is the whole round's merged log (per-node
    order preserved); records belonging to other receivers are ignored.
    Inferred events appear with synthesized payloads. *)

val receiver_progress :
  receiver:int -> (label, event) Engine.item list -> Fsm_state.t
(** Furthest receiver-chain state the reconstruction proved (0 = nothing,
    4 = done). *)

val analyze_round :
  broadcaster:int -> events:event list -> (int * Fsm_state.t) list
(** Reconstruct every receiver appearing in the round and report each one's
    proven progress, sorted by receiver id. *)

val analyze_epidemic :
  seed:int -> events:event list -> (int * Fsm_state.t) list
(** Multi-hop variant: nodes acquire the data from *any* holder, so each
    receiver is reconstructed against every candidate source its records
    (or the sources' records) point at, keeping the best proven progress.
    [seed] is the initial holder (never reported as a receiver). *)

(** {2 Synthetic workload} *)

type outcome = {
  events : event list;  (** Surviving log records, per-node order. *)
  completed : (int * bool) list;  (** Ground truth per receiver. *)
}

val generate :
  Prelude.Rng.t ->
  broadcaster:int ->
  receivers:int list ->
  message_loss:float ->
  record_loss:float ->
  outcome
(** One dissemination round: each protocol message is lost with probability
    [message_loss] (truncating that receiver's exchange), then each written
    record is independently lost with probability [record_loss]. *)

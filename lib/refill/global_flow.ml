type stats = { events : int; logged : int; inferred : int; relaxed : int }

type tagged = {
  item : Flow.item;
  packet : int * int;
  pos : int;  (* position within the packet's flow *)
  mutable anchor : float;
      (* node-log position fraction: a timestamp-free progress proxy used
         to order otherwise-unconstrained events *)
}

let build collected ~flows =
  let all = ref [] in
  List.iter
    (fun (f : Flow.t) ->
      List.iteri
        (fun pos item ->
          all :=
            { item; packet = (f.origin, f.seq); pos; anchor = Float.nan }
            :: !all)
        f.items)
    flows;
  let arr = Array.of_list (List.rev !all) in
  let n = Array.length arr in
  (* Hard edges (per-packet flow order) are inviolable; soft edges
     (cross-packet node-log order) may be relaxed to break cycles. *)
  let hard_successors = Array.make n [] in
  let soft_successors = Array.make n [] in
  let hard_in = Array.make n 0 in
  let soft_in = Array.make n 0 in
  let add_hard a b =
    if a <> b then begin
      hard_successors.(a) <- b :: hard_successors.(a);
      hard_in.(b) <- hard_in.(b) + 1
    end
  in
  let add_soft a b =
    if a <> b then begin
      soft_successors.(a) <- b :: soft_successors.(a);
      soft_in.(b) <- soft_in.(b) + 1
    end
  in
  (* Hard constraints: each packet's flow order (consecutive chain — ids
     were assigned in flow order). *)
  let last_of_packet = Hashtbl.create 256 in
  Array.iteri
    (fun id k ->
      (match Hashtbl.find_opt last_of_packet k.packet with
      | Some prev -> add_hard prev id
      | None -> ());
      Hashtbl.replace last_of_packet k.packet id)
    arr;
  (* Soft constraints: per-node log order across packets.  Flow items hold
     the exact log records, so each node's log can be aligned with the
     items per (packet, node) in order; engine-skipped records are passed
     over. *)
  let queues : (int * int * int, int Queue.t) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun id k ->
      if not k.item.inferred then begin
        match k.item.payload with
        | None -> ()
        | Some r ->
            let origin, seq = Logsys.Record.packet_key r in
            let key = (origin, seq, k.item.node) in
            let q =
              match Hashtbl.find_opt queues key with
              | Some q -> q
              | None ->
                  let q = Queue.create () in
                  Hashtbl.add queues key q;
                  q
            in
            Queue.add id q
      end)
    arr;
  let soft_edges = ref [] in
  for node = 0 to Logsys.Collected.n_nodes collected - 1 do
    let log = Logsys.Collected.node_log collected node in
    let len = float_of_int (max 1 (Array.length log)) in
    let last = ref None in
    Array.iteri
      (fun log_idx (r : Logsys.Record.t) ->
        let origin, seq = Logsys.Record.packet_key r in
        match Hashtbl.find_opt queues (origin, seq, node) with
        | None -> ()
        | Some q -> (
            match Queue.peek_opt q with
            | Some id
              when (match arr.(id).item.payload with
                   | Some r' -> compare r r' = 0
                   | None -> false) ->
                ignore (Queue.pop q : int);
                arr.(id).anchor <- float_of_int log_idx /. len;
                (match !last with
                | Some prev -> soft_edges := (prev, id) :: !soft_edges
                | None -> ());
                last := Some id
            | Some _ | None -> ()))
      log
  done;
  (* Drop soft edges that oppose a hard (same-packet) path — those pairs
     are concurrent in the causal order and the flow linearization simply
     chose the other interleaving.  Reachability over hard edges is cheap
     here because hard edges only run within a packet: (a, b) conflicts
     iff same packet and b precedes a in the flow. *)
  let relaxed = ref 0 in
  List.iter
    (fun (a, b) ->
      if arr.(a).packet = arr.(b).packet && arr.(b).pos <= arr.(a).pos then
        incr relaxed
      else add_soft a b)
    !soft_edges;
  (* Inferred items inherit the anchor of the nearest logged neighbour in
     their flow (following first, then preceding). *)
  let fill_anchors () =
    (* Backward pass per packet (ids are flow-ordered, so [downto] walks
       each flow tail-to-head): an unanchored item inherits the anchor of
       the *following* logged item in its flow. *)
    let carry = Hashtbl.create 64 in
    for id = n - 1 downto 0 do
      let k = arr.(id) in
      if Float.is_nan k.anchor then begin
        match Hashtbl.find_opt carry k.packet with
        | Some a -> k.anchor <- a
        | None -> ()
      end
      else Hashtbl.replace carry k.packet k.anchor
    done;
    Hashtbl.reset carry;
    (* Forward pass: anything still unanchored (nothing logged after it in
       its flow) falls back to the *preceding* logged anchor, else 0. *)
    for id = 0 to n - 1 do
      let k = arr.(id) in
      if Float.is_nan k.anchor then begin
        match Hashtbl.find_opt carry k.packet with
        | Some a -> k.anchor <- a
        | None -> k.anchor <- 0.
      end
      else Hashtbl.replace carry k.packet k.anchor
    done
  in
  fill_anchors ();
  (* Deterministic Kahn's algorithm, ready events ordered by anchor. *)
  let module Pq = Prelude.Heap in
  let heap = Pq.create () in
  let ready id = hard_in.(id) = 0 && soft_in.(id) = 0 in
  Array.iteri
    (fun id k -> if ready id then Pq.push heap ~priority:k.anchor id)
    arr;
  let out = ref [] in
  let emitted = Array.make n false in
  let emitted_count = ref 0 in
  let emit id =
    emitted.(id) <- true;
    incr emitted_count;
    out := arr.(id).item :: !out;
    List.iter
      (fun succ ->
        hard_in.(succ) <- hard_in.(succ) - 1;
        if ready succ && not emitted.(succ) then
          Pq.push heap ~priority:arr.(succ).anchor succ)
      hard_successors.(id);
    List.iter
      (fun succ ->
        soft_in.(succ) <- soft_in.(succ) - 1;
        if ready succ && not emitted.(succ) then
          Pq.push heap ~priority:arr.(succ).anchor succ)
      soft_successors.(id)
  in
  while !emitted_count < n do
    match Pq.pop heap with
    | Some (_, id) -> if not emitted.(id) then emit id
    | None ->
        (* A cycle through soft edges: release the smallest-anchor event
           whose HARD prerequisites are met by dropping its remaining soft
           in-edges.  Hard edges are per-packet chains (acyclic), so such
           an event always exists. *)
        let best = ref (-1) in
        Array.iteri
          (fun id k ->
            if
              (not emitted.(id))
              && hard_in.(id) = 0
              && (!best < 0 || k.anchor < arr.(!best).anchor)
            then best := id)
          arr;
        relaxed := !relaxed + soft_in.(!best);
        soft_in.(!best) <- 0;
        emit !best
  done;
  let items = List.rev !out in
  let logged =
    List.length (List.filter (fun (i : Flow.item) -> not i.inferred) items)
  in
  (items, { events = n; logged; inferred = n - logged; relaxed = !relaxed })

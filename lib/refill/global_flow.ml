(* The network-wide merge is the pipeline stage that sees every event at
   once (~1.4M items on the 30-day CitySee rung), so its data layout is
   flat and index-based throughout:

   - items live in one array filled by two counted passes over the flows
     (no per-flow cons lists, no [Array.of_list]);
   - packet identities are interned to dense ints ([pid]s) via int-packed
     [(origin, seq)] keys, so the hot lookups hash machine ints instead of
     tuples;
   - hard edges (per-packet flow order) are consecutive chains, stored as
     a single-successor array; soft edges (cross-packet node-log order)
     are a CSR adjacency built in two counted passes;
   - the per-node log alignment that discovers soft edges touches disjoint
     state per node, so it fans out across domains via {!Par};
   - stall recovery pops a secondary min-heap of hard-ready events keyed
     lexicographically by [(anchor, id)] — O(log n) per relaxation where
     the previous implementation rescanned all n items per soft cycle
     (O(n^2) worst case).

   The emission order is bit-identical to the straightforward
   list-and-hashtable implementation this replaced (the test suite keeps a
   copy of it as an oracle): the main Kahn heap receives the same pushes
   in the same sequence, and the stall heap's [(anchor, id)] key
   reproduces the old linear scan's smallest-anchor-then-smallest-id
   choice. *)

module Obs = Refill_obs

type stats = { events : int; logged : int; inferred : int; relaxed : int }

let h_seconds =
  Obs.Metrics.Histogram.v "refill_global_flow_seconds"
    ~help:"Wall time to merge all per-packet flows into the global flow."

let c_events =
  Obs.Metrics.Counter.v "refill_global_flow_events_total"
    ~help:"Events merged into network-wide flows."

let c_relaxed =
  Obs.Metrics.Counter.v "refill_global_flow_relaxed_total"
    ~help:
      "Cross-packet node-log constraints dropped during merges (concurrency, \
       not error)."

let c_stalls =
  Obs.Metrics.Counter.v "refill_global_flow_stall_recoveries_total"
    ~help:"Soft-cycle stalls broken by releasing a hard-ready event."

(* Merge-side provenance mechanisms; the engine-side ones (logged, intra,
   inter) are counted by Reconstruct under the same metric name. *)
let c_prov_stall =
  Obs.Metrics.Counter.v "refill_provenance_events_total"
    ~help:"Events emitted per provenance mechanism (provenance-enabled runs)."
    ~labels:[ ("mechanism", Provenance.mechanism_name Provenance.Stall_recovery) ]

let c_prov_carry =
  Obs.Metrics.Counter.v "refill_provenance_events_total"
    ~help:"Events emitted per provenance mechanism (provenance-enabled runs)."
    ~labels:[ ("mechanism", Provenance.mechanism_name Provenance.Anchor_carry) ]

(* Packet interning.  Origins and seqs are small nonnegative ints for
   every logger-produced record (the same observation Collected's index
   relies on), so the common case packs them into one int key; anything
   exotic (hand-built logs) falls back to a tuple-keyed table. *)
let dense_limit = 1 lsl 28

type interner = {
  dense : (int, int) Hashtbl.t;
  exotic : (int * int, int) Hashtbl.t;
  mutable n_pids : int;
}

let interner_create n_hint =
  {
    dense = Hashtbl.create (max 64 n_hint);
    exotic = Hashtbl.create 8;
    n_pids = 0;
  }

let pid_intern t ~origin ~seq =
  let fresh tbl key =
    match Hashtbl.find_opt tbl key with
    | Some pid -> pid
    | None ->
        let pid = t.n_pids in
        t.n_pids <- pid + 1;
        Hashtbl.add tbl key pid;
        pid
  in
  if origin >= 0 && origin < dense_limit && seq >= 0 && seq < dense_limit then
    fresh t.dense ((origin lsl 28) lor seq)
  else fresh t.exotic (origin, seq)

(* Lookup without interning — absent keys mean "no constraint", exactly as
   a missing queue did in the hashtable implementation. *)
let pid_find t ~origin ~seq =
  if origin >= 0 && origin < dense_limit && seq >= 0 && seq < dense_limit then
    Hashtbl.find_opt t.dense ((origin lsl 28) lor seq)
  else Hashtbl.find_opt t.exotic (origin, seq)

(* A tiny growable int buffer for the per-node edge lists (edges are
   appended as flattened [src; dst] pairs). *)
type ibuf = { mutable data : int array; mutable len : int }

let ibuf_create () = { data = Array.make 64 0; len = 0 }

let ibuf_push2 b x y =
  if b.len + 2 > Array.length b.data then begin
    let grown = Array.make (2 * Array.length b.data) 0 in
    Array.blit b.data 0 grown 0 b.len;
    b.data <- grown
  end;
  b.data.(b.len) <- x;
  b.data.(b.len + 1) <- y;
  b.len <- b.len + 2

(* Where the merge reads per-node logs from: a record snapshot, or an
   arena-indexed packet index (columns; the alignment never materializes
   a record). *)
type log_source =
  | Snapshot of Logsys.Collected.t
  | Arena_index of Logsys.Arena.Packets.t

let merge_untimed ?jobs ?emit_prov source ~(flows : Flow.t array)
    ~emit:emit_item =
  (* ---- Pass 1: count items and intern every flow's packet. ---- *)
  let n_flows = Array.length flows in
  let interner = interner_create n_flows in
  let flow_pid = Array.make n_flows 0 in
  let n = ref 0 in
  Array.iteri
    (fun fi (f : Flow.t) ->
      flow_pid.(fi) <- pid_intern interner ~origin:f.origin ~seq:f.seq;
      n := !n + List.length f.items)
    flows;
  let n = !n in
  if n = 0 then { events = 0; logged = 0; inferred = 0; relaxed = 0 }
  else begin
    let dummy =
      match Array.find_opt (fun (f : Flow.t) -> f.items <> []) flows with
      | Some f -> List.hd f.items
      | None -> assert false
    in
    (* ---- Pass 2: flat fill.  Ids are assigned in flow order, so each
       packet's hard chain is a run of consecutive ids; [last_of_pid]
       extends the chain across flows that share a packet key, mirroring
       the per-packet linearization exactly. ---- *)
    let items = Array.make n dummy in
    let packet_of = Array.make n 0 in
    let pos_of = Array.make n 0 in
    let anchors = Array.make n Float.nan in
    let hard_succ = Array.make n (-1) in
    let hard_in = Array.make n 0 in
    let logged = ref 0 in
    let last_of_pid = Array.make interner.n_pids (-1) in
    (* Provenance side-cars, allocated only when the caller listens.  Each
       item's base provenance comes from its flow's side-car when the flows
       were reconstructed with provenance on; otherwise it is synthesized
       from the item alone (no evidence, lowest confidence for inferred). *)
    let want_prov = emit_prov <> None in
    let synth_prov (item : _ Engine.item) =
      if item.Engine.inferred then
        Provenance.with_confidence Provenance.Low
          (Provenance.make2 Provenance.Intra_inference
             ~src:item.Engine.entered ~dst:item.Engine.entered ~e1:(-1)
             ~e2:(-1))
      else
        Provenance.make2 Provenance.Logged ~src:item.Engine.entered
          ~dst:item.Engine.entered ~e1:(-1) ~e2:(-1)
    in
    let prov_of =
      if want_prov then Array.make n (synth_prov dummy) else [||]
    in
    let aligned = if want_prov then Array.make n false else [||] in
    let cursor = ref 0 in
    Array.iteri
      (fun fi (f : Flow.t) ->
        let pid = flow_pid.(fi) in
        let fprov = f.prov in
        let n_fprov = Array.length fprov in
        List.iteri
          (fun pos item ->
            let id = !cursor in
            incr cursor;
            items.(id) <- item;
            packet_of.(id) <- pid;
            pos_of.(id) <- pos;
            if want_prov then
              prov_of.(id) <-
                (if pos < n_fprov then fprov.(pos) else synth_prov item);
            if not item.Engine.inferred then incr logged;
            let prev = last_of_pid.(pid) in
            if prev >= 0 && prev <> id then begin
              hard_succ.(prev) <- id;
              hard_in.(id) <- hard_in.(id) + 1
            end;
            last_of_pid.(pid) <- id)
          f.items)
      flows;
    (* ---- Soft-constraint candidates: for each (packet, node), the
       logged items whose payloads can be aligned with that node's log, in
       flow order.  CSR over dense slots, two counted passes; the node
       component of the slot key partitions slots across nodes, which is
       what lets the alignment below run per-node in parallel. ---- *)
    let n_nodes =
      match source with
      | Snapshot c -> Logsys.Collected.n_nodes c
      | Arena_index p -> Logsys.Arena.Packets.n_nodes p
    in
    let slot_tbl : (int, int) Hashtbl.t = Hashtbl.create (max 64 n_flows) in
    let n_slots = ref 0 in
    let q_count = Array.make n 0 in
    let eligible = ref 0 in
    let slot_key id (r : Logsys.Record.t) =
      let item = items.(id) in
      if item.Engine.inferred || item.Engine.node < 0
         || item.Engine.node >= n_nodes
      then None
      else
        match pid_find interner ~origin:r.origin ~seq:r.pkt_seq with
        | None -> None
        | Some qpid -> Some ((qpid * n_nodes) + item.Engine.node)
    in
    for id = 0 to n - 1 do
      match items.(id).Engine.payload with
      | None -> ()
      | Some r -> (
          (* Payload packets are interned too: a payload key that never
             appeared as a flow key still forms its own queue. *)
          let item = items.(id) in
          if
            (not item.Engine.inferred)
            && item.Engine.node >= 0
            && item.Engine.node < n_nodes
          then begin
            let qpid = pid_intern interner ~origin:r.origin ~seq:r.pkt_seq in
            let key = (qpid * n_nodes) + item.Engine.node in
            let slot =
              match Hashtbl.find_opt slot_tbl key with
              | Some s -> s
              | None ->
                  let s = !n_slots in
                  incr n_slots;
                  Hashtbl.add slot_tbl key s;
                  s
            in
            q_count.(slot) <- q_count.(slot) + 1;
            incr eligible
          end)
    done;
    let n_slots = !n_slots in
    let q_off = Array.make (n_slots + 1) 0 in
    for s = 0 to n_slots - 1 do
      q_off.(s + 1) <- q_off.(s) + q_count.(s)
    done;
    let q_ids = Array.make (max 1 !eligible) 0 in
    let q_fill = Array.make (max 1 n_slots) 0 in
    for id = 0 to n - 1 do
      match items.(id).Engine.payload with
      | None -> ()
      | Some r -> (
          match slot_key id r with
          | None -> ()
          | Some key ->
              let slot = Hashtbl.find slot_tbl key in
              q_ids.(q_off.(slot) + q_fill.(slot)) <- id;
              q_fill.(slot) <- q_fill.(slot) + 1)
    done;
    (* ---- Per-node alignment: walk each node's log, matching records
       against the head of their (packet, node) candidate run; a match
       fixes the item's anchor (its log-position fraction) and chains a
       soft edge from the previously matched item on that node.  Each
       worker touches only its node's slots, cursors and matched item ids,
       so nodes fan out across domains; interner reads are lookups into
       tables no longer being written. ---- *)
    let q_cursor = Array.make (max 1 n_slots) 0 in
    (* One alignment body per source shape (both monomorphic hot loops):
       identical slot/cursor/anchor logic, differing only in how a log
       entry's key is read and how it is compared against a payload —
       record fields vs column reads ([Arena.equal_record] never
       materializes). *)
    let align_snapshot collected node =
      let log = Logsys.Collected.node_log collected node in
      let len = float_of_int (max 1 (Array.length log)) in
      let edges = ibuf_create () in
      let last = ref (-1) in
      Array.iteri
        (fun log_idx (r : Logsys.Record.t) ->
          match pid_find interner ~origin:r.origin ~seq:r.pkt_seq with
          | None -> ()
          | Some qpid -> (
              match Hashtbl.find_opt slot_tbl ((qpid * n_nodes) + node) with
              | None -> ()
              | Some slot ->
                  let cur = q_cursor.(slot) in
                  if cur < q_off.(slot + 1) - q_off.(slot) then begin
                    let id = q_ids.(q_off.(slot) + cur) in
                    match items.(id).Engine.payload with
                    | Some r' when Logsys.Record.equal r r' ->
                        q_cursor.(slot) <- cur + 1;
                        anchors.(id) <- float_of_int log_idx /. len;
                        (* Distinct ids per node: safe to write from the
                           per-node workers, like [anchors] above. *)
                        if want_prov then aligned.(id) <- true;
                        if !last >= 0 then ibuf_push2 edges !last id;
                        last := id
                    | Some _ | None -> ()
                  end))
        log;
      Array.sub edges.data 0 edges.len
    in
    let align_arena packets arena node =
      let rows = Logsys.Arena.Packets.node_rows packets node in
      let len = float_of_int (max 1 (Array.length rows)) in
      let edges = ibuf_create () in
      let last = ref (-1) in
      Array.iteri
        (fun log_idx row ->
          let origin = Logsys.Arena.origin arena row
          and seq = Logsys.Arena.pkt_seq arena row in
          match pid_find interner ~origin ~seq with
          | None -> ()
          | Some qpid -> (
              match Hashtbl.find_opt slot_tbl ((qpid * n_nodes) + node) with
              | None -> ()
              | Some slot ->
                  let cur = q_cursor.(slot) in
                  if cur < q_off.(slot + 1) - q_off.(slot) then begin
                    let id = q_ids.(q_off.(slot) + cur) in
                    match items.(id).Engine.payload with
                    | Some r' when Logsys.Arena.equal_record arena row r' ->
                        q_cursor.(slot) <- cur + 1;
                        anchors.(id) <- float_of_int log_idx /. len;
                        if want_prov then aligned.(id) <- true;
                        if !last >= 0 then ibuf_push2 edges !last id;
                        last := id
                    | Some _ | None -> ()
                  end))
        rows;
      Array.sub edges.data 0 edges.len
    in
    let align =
      match source with
      | Snapshot c -> align_snapshot c
      | Arena_index p -> align_arena p (Logsys.Arena.Packets.arena p)
    in
    let jobs =
      match jobs with Some j -> max 1 j | None -> Par.default_jobs ()
    in
    let jobs = if n < Par.min_parallel_items then 1 else jobs in
    let node_edges =
      Par.map_array ~jobs align (Array.init n_nodes (fun i -> i))
    in
    (* ---- Soft CSR.  A soft edge opposing a hard (same-packet) path is a
       concurrent pair whose linearization chose the other interleaving:
       dropped and counted, not an error.  Surviving edges are laid out in
       discovery order (nodes ascending, log order within a node), which
       is the successor order emission traverses. ---- *)
    let relaxed = ref 0 in
    let soft_in = Array.make n 0 in
    let soft_out = Array.make n 0 in
    let n_soft = ref 0 in
    let iter_edges f =
      Array.iter
        (fun (edges : int array) ->
          let m = Array.length edges in
          let k = ref 0 in
          while !k < m do
            f edges.(!k) edges.(!k + 1);
            k := !k + 2
          done)
        node_edges
    in
    iter_edges (fun a b ->
        if a <> b then
          if packet_of.(a) = packet_of.(b) && pos_of.(b) <= pos_of.(a) then
            incr relaxed
          else begin
            soft_out.(a) <- soft_out.(a) + 1;
            soft_in.(b) <- soft_in.(b) + 1;
            incr n_soft
          end);
    let soft_off = Array.make (n + 1) 0 in
    for id = 0 to n - 1 do
      soft_off.(id + 1) <- soft_off.(id) + soft_out.(id)
    done;
    let soft_adj = Array.make (max 1 !n_soft) 0 in
    let soft_fill = Array.make n 0 in
    iter_edges (fun a b ->
        if
          a <> b
          && not (packet_of.(a) = packet_of.(b) && pos_of.(b) <= pos_of.(a))
        then begin
          soft_adj.(soft_off.(a) + soft_fill.(a)) <- b;
          soft_fill.(a) <- soft_fill.(a) + 1
        end);
    (* ---- Anchor inheritance for unmatched items: nearest logged
       neighbour in their flow, following first (backward pass), then
       preceding (forward pass), else 0. ---- *)
    let carry = Array.make interner.n_pids Float.nan in
    for id = n - 1 downto 0 do
      let pid = packet_of.(id) in
      if Float.is_nan anchors.(id) then begin
        if not (Float.is_nan carry.(pid)) then anchors.(id) <- carry.(pid)
      end
      else carry.(pid) <- anchors.(id)
    done;
    Array.fill carry 0 (Array.length carry) Float.nan;
    for id = 0 to n - 1 do
      let pid = packet_of.(id) in
      if Float.is_nan anchors.(id) then
        anchors.(id) <-
          (if Float.is_nan carry.(pid) then 0. else carry.(pid))
      else carry.(pid) <- anchors.(id)
    done;
    (* ---- Deterministic Kahn's algorithm.  The main heap orders ready
       events by anchor (FIFO among equals); the stall heap indexes every
       event whose HARD prerequisites are met, keyed (anchor, id), so
       breaking a soft cycle is a pop instead of a full rescan.  Entries
       go stale when their event is emitted through the main heap — pops
       skip those lazily. ---- *)
    let module Pq = Prelude.Heap in
    let main = Pq.create ~capacity:(max 16 (n / 4)) () in
    let stall = Pq.create ~capacity:(max 16 (n / 4)) () in
    let emitted = Array.make n false in
    let emitted_count = ref 0 in
    let stalls = ref 0 in
    for id = 0 to n - 1 do
      if hard_in.(id) = 0 then begin
        Pq.push_tie stall ~priority:anchors.(id) ~tie:id id;
        if soft_in.(id) = 0 then Pq.push main ~priority:anchors.(id) id
      end
    done;
    let n_stall_prov = ref 0 in
    let n_carry_prov = ref 0 in
    let emit ?(stalled = false) id =
      emitted.(id) <- true;
      emit_item items.(id);
      (match emit_prov with
      | None -> ()
      | Some f ->
          let base = prov_of.(id) in
          let pv =
            if stalled then begin
              incr n_stall_prov;
              Provenance.with_mechanism Provenance.Stall_recovery base
            end
            else if
              (not items.(id).Engine.inferred) && not aligned.(id)
            then begin
              (* A logged event whose record never aligned with its node's
                 log: its global position was carried from a neighbour's
                 anchor, not evidenced by the log itself. *)
              incr n_carry_prov;
              Provenance.with_mechanism Provenance.Anchor_carry base
            end
            else base
          in
          f pv);
      incr emitted_count;
      (match hard_succ.(id) with
      | -1 -> ()
      | succ ->
          hard_in.(succ) <- hard_in.(succ) - 1;
          if hard_in.(succ) = 0 then begin
            Pq.push_tie stall ~priority:anchors.(succ) ~tie:succ succ;
            if soft_in.(succ) = 0 && not emitted.(succ) then
              Pq.push main ~priority:anchors.(succ) succ
          end);
      for k = soft_off.(id) to soft_off.(id + 1) - 1 do
        let succ = soft_adj.(k) in
        soft_in.(succ) <- soft_in.(succ) - 1;
        if hard_in.(succ) = 0 && soft_in.(succ) = 0 && not emitted.(succ)
        then Pq.push main ~priority:anchors.(succ) succ
      done
    in
    while !emitted_count < n do
      match Pq.pop main with
      | Some (_, id) -> if not emitted.(id) then emit id
      | None ->
          (* A cycle through soft edges: release the (anchor, id)-smallest
             event whose hard prerequisites are met by dropping its
             remaining soft in-edges.  Hard edges are per-packet chains
             (acyclic), so the stall heap always holds a live entry. *)
          let rec release () =
            match Pq.pop stall with
            | None -> assert false
            | Some (_, id) when emitted.(id) -> release ()
            | Some (_, id) ->
                relaxed := !relaxed + soft_in.(id);
                soft_in.(id) <- 0;
                incr stalls;
                emit ~stalled:true id
          in
          release ()
    done;
    let stats =
      {
        events = n;
        logged = !logged;
        inferred = n - !logged;
        relaxed = !relaxed;
      }
    in
    Par.with_obs_lock (fun () ->
        Obs.Metrics.Counter.inc ~by:n c_events;
        Obs.Metrics.Counter.inc ~by:!relaxed c_relaxed;
        Obs.Metrics.Counter.inc ~by:!stalls c_stalls;
        if !n_stall_prov > 0 then
          Obs.Metrics.Counter.inc ~by:!n_stall_prov c_prov_stall;
        if !n_carry_prov > 0 then
          Obs.Metrics.Counter.inc ~by:!n_carry_prov c_prov_carry);
    stats
  end

let merge_from ?jobs ?emit_prov source ~flows ~emit =
  let run () =
    let t0 = Obs.Span.now_us () in
    let stats = merge_untimed ?jobs ?emit_prov source ~flows ~emit in
    Par.with_obs_lock (fun () ->
        Obs.Metrics.Histogram.observe h_seconds
          ((Obs.Span.now_us () -. t0) /. 1e6));
    stats
  in
  if Obs.Span.enabled () then
    Obs.Span.with_ ~name:"refill.global_flow"
      ~attrs:[ ("flows", string_of_int (Array.length flows)) ]
      run
  else run ()

let merge ?jobs ?emit_prov collected ~flows ~emit =
  merge_from ?jobs ?emit_prov (Snapshot collected) ~flows ~emit

(* -- Incremental merge mode ------------------------------------------------ *)

(* The streaming pipeline never holds a [Collected] snapshot: records
   arrive in segments and flows are emitted at eviction time, in eviction
   order.  The accumulator rebuilds both batch inputs — per-node logs in
   arrival order (= each node's write order, since any valid stream merge
   preserves it) and the flow array re-sorted to packet-key order (the
   order {!Reconstruct.run} emits) — so [finish] reproduces the batch
   merge exactly: same interner ids, same anchors, same heap tie-breaks. *)
module Incremental = struct
  type t = {
    mutable logs_rev : Logsys.Record.t list array;  (* per node, newest first *)
    mutable flows_rev : Flow.t list;
    mutable n_flows : int;
  }

  let create ?(n_nodes = 0) () =
    { logs_rev = Array.make (max 1 n_nodes) []; flows_rev = []; n_flows = 0 }

  let ensure_node t node =
    if node >= Array.length t.logs_rev then begin
      let grown =
        Array.make (max (node + 1) (2 * Array.length t.logs_rev)) []
      in
      Array.blit t.logs_rev 0 grown 0 (Array.length t.logs_rev);
      t.logs_rev <- grown
    end

  let add_records t records =
    Array.iter
      (fun (r : Logsys.Record.t) ->
        if r.node >= 0 then begin
          ensure_node t r.node;
          t.logs_rev.(r.node) <- r :: t.logs_rev.(r.node)
        end)
      records

  let add_arena t (s : Logsys.Arena.slice) =
    let a = s.Logsys.Arena.sl_base in
    for i = s.Logsys.Arena.sl_off to s.Logsys.Arena.sl_off + s.Logsys.Arena.sl_len - 1
    do
      let node = Logsys.Arena.node a i in
      if node >= 0 then begin
        ensure_node t node;
        t.logs_rev.(node) <- Logsys.Arena.get a i :: t.logs_rev.(node)
      end
    done

  let add_flow t flow =
    t.flows_rev <- flow :: t.flows_rev;
    t.n_flows <- t.n_flows + 1

  let finish ?jobs ?emit_prov t ~emit =
    let node_logs =
      Array.map (fun l -> Array.of_list (List.rev l)) t.logs_rev
    in
    let collected = Logsys.Collected.of_node_logs node_logs in
    (* Stable sort restores the batch emission order (key-ascending);
       duplicate keys — an evicted packet's late fragments — keep their
       eviction order, which is also their arrival order. *)
    let flows =
      Array.of_list
        (List.stable_sort
           (fun (a : Flow.t) (b : Flow.t) ->
             compare (a.origin, a.seq) (b.origin, b.seq))
           (List.rev t.flows_rev))
    in
    merge ?jobs ?emit_prov collected ~flows ~emit
end


(** The network-wide event flow (§II, Eq. 1).

    The paper defines the event flow over *all* events in the network, not
    per packet.  Cross-packet ordering information comes from exactly one
    place in unsynchronized logs: two events logged by the *same node* are
    ordered by that node's log.  This module merges the per-packet
    reconstructed flows into one global flow that

    - preserves every per-packet flow order exactly (REFILL's canonical
      causal linearization of each packet), and
    - honours as many cross-packet per-node log constraints as possible.

    The two families can disagree on *concurrent* events (a flow may
    linearize two causally unrelated events opposite to their log
    positions); such node-log constraints are relaxed and counted — they
    indicate concurrency, not errors.  Events unrelated by any remaining
    constraint are ordered by their position within their recording node's
    log (a cheap, timestamp-free progress proxy). *)

type stats = {
  events : int;
  logged : int;
  inferred : int;
  relaxed : int;
      (** Cross-packet node-log constraints dropped because they opposed a
          per-packet linearization (concurrency, not error). *)
}

val build :
  ?jobs:int ->
  Logsys.Collected.t ->
  flows:Flow.t list ->
  Flow.item list * stats
(** [build collected ~flows] returns the global flow.  [collected] must be
    the same snapshot the flows were reconstructed from (its per-node logs
    provide the cross-packet constraints).  Every flow's items appear in
    their original relative order.

    [jobs] caps the domain fan-out of the per-node log alignment (default
    {!Par.default_jobs}; small inputs stay serial).  The result is
    independent of [jobs]. *)

val build_array :
  ?jobs:int ->
  Logsys.Collected.t ->
  flows:Flow.t array ->
  Flow.item list * stats
(** {!build} over the array {!Reconstruct.all_array} produces, merging
    straight from the reconstruction output without an intermediate
    per-flow list. *)

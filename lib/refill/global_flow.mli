(** The network-wide event flow (§II, Eq. 1).

    The paper defines the event flow over *all* events in the network, not
    per packet.  Cross-packet ordering information comes from exactly one
    place in unsynchronized logs: two events logged by the *same node* are
    ordered by that node's log.  This module merges the per-packet
    reconstructed flows into one global flow that

    - preserves every per-packet flow order exactly (REFILL's canonical
      causal linearization of each packet), and
    - honours as many cross-packet per-node log constraints as possible.

    The two families can disagree on *concurrent* events (a flow may
    linearize two causally unrelated events opposite to their log
    positions); such node-log constraints are relaxed and counted — they
    indicate concurrency, not errors.  Events unrelated by any remaining
    constraint are ordered by their position within their recording node's
    log (a cheap, timestamp-free progress proxy). *)

type stats = {
  events : int;
  logged : int;
  inferred : int;
  relaxed : int;
      (** Cross-packet node-log constraints dropped because they opposed a
          per-packet linearization (concurrency, not error). *)
}

(** Where the merge reads per-node logs from: a record snapshot, or an
    arena-indexed packet index, whose alignment pass reads columns and
    never materializes a record.  Over the same records (and the same
    node count) both sources yield identical emission sequences. *)
type log_source =
  | Snapshot of Logsys.Collected.t
  | Arena_index of Logsys.Arena.Packets.t

val merge :
  ?jobs:int ->
  ?emit_prov:(Provenance.t -> unit) ->
  Logsys.Collected.t ->
  flows:Flow.t array ->
  emit:(Flow.item -> unit) ->
  stats
(** [merge collected ~flows ~emit] computes the global flow and hands each
    item to [emit], in global-flow order.  [collected] must be the same
    snapshot the flows were reconstructed from (its per-node logs provide
    the cross-packet constraints).  Every flow's items appear in their
    original relative order.  This is the single entry point; the old
    [build]/[build_array] signatures below are thin collecting aliases.

    [jobs] caps the domain fan-out of the per-node log alignment (default
    {!Par.default_jobs}; small inputs stay serial).  The emission sequence
    is independent of [jobs].

    [emit_prov], when given, is called in lockstep with [emit] with each
    item's merge-refined provenance: the flow's own entry
    ({!Flow.t.prov}, synthesized when the flows carry none), except that
    an event released by stall recovery becomes
    {!Provenance.Stall_recovery} and a logged event whose record never
    aligned with its node's log becomes {!Provenance.Anchor_carry}.
    Evidence indices stay in their packet's own record-index space. *)

val merge_from :
  ?jobs:int ->
  ?emit_prov:(Provenance.t -> unit) ->
  log_source ->
  flows:Flow.t array ->
  emit:(Flow.item -> unit) ->
  stats
(** {!merge} generalized over the log source; [merge c] =
    [merge_from (Snapshot c)].  With [Arena_index], the source must index
    the same records the flows were reconstructed from
    ({!Reconstruct.run_arena} over the same index). *)

(** Incremental merge mode for the streaming pipeline: accumulate record
    segments and evicted flows as they arrive, then run the batch merge
    machinery once at the end of the stream.  On the same inputs the
    emission sequence is identical to {!merge} over the batch
    reconstruction — the accumulator rebuilds per-node logs in arrival
    order (each node's write order) and re-sorts flows to packet-key
    order, so interner ids, anchors and heap tie-breaks all coincide. *)
module Incremental : sig
  type t

  val create : ?n_nodes:int -> unit -> t
  (** [n_nodes] presizes the per-node accumulators (they grow on demand). *)

  val add_records : t -> Logsys.Record.t array -> unit
  (** Append a stream segment.  Segments must preserve each node's local
      record order across calls; records with a negative node id are
      ignored. *)

  val add_arena : t -> Logsys.Arena.slice -> unit
  (** {!add_records} over an arena slice; rows materialize only as they
      are appended to their node's accumulator. *)

  val add_flow : t -> Flow.t -> unit
  (** Register one evicted flow (in eviction order). *)

  val finish :
    ?jobs:int ->
    ?emit_prov:(Provenance.t -> unit) ->
    t ->
    emit:(Flow.item -> unit) ->
    stats
  (** Merge everything accumulated.  The accumulator must not be reused
      afterwards.  [emit_prov] as in {!merge}. *)
end

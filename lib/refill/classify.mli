(** Loss-cause classification from reconstructed event flows (§V.B).

    The verdict is derived from where the packet's *frontier* ended:

    - a {!Protocol.delivered} entry → delivered to the backbone (the
      server-outage split is applied later, from the operations log, as the
      paper did);
    - a {!Protocol.dup_dropped} / {!Protocol.overflow_dropped} entry →
      duplicate / overflow loss at that node;
    - otherwise the *last holder* (latest [holding] entry in the flow)
      decides: still holding with a logged [recv] → received loss; still
      holding with an *inferred* [recv] (only the sender's ACK proves
      reception) → acked loss; progressed to [sent]/[timed-out] → timeout
      loss on that node's outgoing link (the paper's "lost while
      transmitting", Table II case 3);
    - a flow with no information (e.g. bare [gen]) → unknown. *)

type verdict = {
  cause : Logsys.Cause.t;
  loss_node : int option;
      (** Loss position: the node where the packet died ([None] when
          delivered or unknown). *)
  next_hop : int option;
      (** For timeout losses: the intended receiver of the failed link. *)
}

val classify : Flow.t -> verdict
(** Delivered flows report [cause = Delivered]. *)

val is_delivered : Flow.t -> bool

val loss_position : Flow.t -> int option
(** Shorthand for [(classify flow).loss_node]. *)

(** The per-packet protocol model for the collection network.

    Instantiates the generic inference engine for CitySee's CTP data plane:
    each node handling a packet is modelled by a small FSM whose shape
    depends on the node's *role* for that packet (origin / forwarder /
    sink), and inter-node prerequisites encode the protocol semantics of
    §III–IV:

    - [recv]/[dup]/[overflow] from [a] on [b] requires [a] to have reached
      {!sent} (a reception implies the corresponding transmission);
    - [ack recvd] toward [b] on [a] requires [b] to have reached {!holding}
      (the hardware ACK implies the receiver radio accepted the packet).

    Cycles ({!acked} [--recv-->] {!holding}) model loop re-receptions, so
    Table II's case 3/4 retransmission-after-ack patterns reconstruct
    correctly.

    Payloads are {!Logsys.Record.t}; inferred events carry synthesized
    records ([true_time = nan], [gseq = -1]) whose peer field is recovered
    by searching the packet's surviving records (e.g. an inferred [recv] on
    [n] takes its sender from any logged [trans]/[ack]/[timeout] pointing at
    [n]); an unrecoverable peer is {!unknown_node}. *)

type label =
  | L_gen
  | L_recv
  | L_dup
  | L_overflow
  | L_trans
  | L_ack
  | L_timeout
  | L_deliver

val label_name : label -> string

val label_of_kind : Logsys.Record.kind -> label

(** {2 States} *)

val init : Fsm_state.t  (** 0 — nothing known. *)

val holding : Fsm_state.t  (** 1 — node has the packet (gen or recv). *)

val sent : Fsm_state.t  (** 2 — handed to the MAC (trans). *)

val acked : Fsm_state.t  (** 3 — hardware ACK received. *)

val timed_out : Fsm_state.t  (** 4 — retransmissions exhausted. *)

val dup_dropped : Fsm_state.t  (** 5 — dropped by the duplicate cache. *)

val overflow_dropped : Fsm_state.t  (** 6 — dropped at a full queue. *)

val delivered : Fsm_state.t  (** 7 — sink pushed it to the backbone. *)

val n_states : int

val state_name : Fsm_state.t -> string

type role = Origin | Forwarder | Sink

val role_of : origin:int -> sink:int -> int -> role

val fsm_of_role : role -> label Fsm.t
(** The FSMs are built once per role and shared (they are immutable after
    construction). *)

val unknown_node : int
(** [-1]: placeholder peer when synthesis cannot recover the other
    endpoint. *)

val make_config :
  records:Logsys.Record.t list ->
  origin:int ->
  seq:int ->
  sink:int ->
  (label, Logsys.Record.t) Engine.config
(** Engine configuration for reconstructing one packet.  [records] are the
    packet's surviving records network-wide (the synthesis search pool). *)

val events_of_records :
  Logsys.Record.t list -> (int * label * Logsys.Record.t option) list
(** Map records to engine input events (node, label, payload). *)

(** The per-packet protocol model for the collection network.

    Instantiates the generic inference engine for CitySee's CTP data plane:
    each node handling a packet is modelled by a small FSM whose shape
    depends on the node's *role* for that packet (origin / forwarder /
    sink), and inter-node prerequisites encode the protocol semantics of
    §III–IV:

    - [recv]/[dup]/[overflow] from [a] on [b] requires [a] to have reached
      {!sent} (a reception implies the corresponding transmission);
    - [ack recvd] toward [b] on [a] requires [b] to have reached {!holding}
      (the hardware ACK implies the receiver radio accepted the packet).

    Cycles ({!acked} [--recv-->] {!holding}) model loop re-receptions, so
    Table II's case 3/4 retransmission-after-ack patterns reconstruct
    correctly.

    Payloads are {!Logsys.Record.t}; inferred events carry synthesized
    records ([true_time = nan], [gseq = -1]) whose peer field is recovered
    by searching the packet's surviving records (e.g. an inferred [recv] on
    [n] takes its sender from any logged [trans]/[ack]/[timeout] pointing at
    [n]); an unrecoverable peer is {!unknown_node}. *)

type label =
  | L_gen
  | L_recv
  | L_dup
  | L_overflow
  | L_trans
  | L_ack
  | L_timeout
  | L_deliver

val label_name : label -> string

val label_of_kind : Logsys.Record.kind -> label

(** {2 States} *)

val init : Fsm_state.t  (** 0 — nothing known. *)

val holding : Fsm_state.t  (** 1 — node has the packet (gen or recv). *)

val sent : Fsm_state.t  (** 2 — handed to the MAC (trans). *)

val acked : Fsm_state.t  (** 3 — hardware ACK received. *)

val timed_out : Fsm_state.t  (** 4 — retransmissions exhausted. *)

val dup_dropped : Fsm_state.t  (** 5 — dropped by the duplicate cache. *)

val overflow_dropped : Fsm_state.t  (** 6 — dropped at a full queue. *)

val delivered : Fsm_state.t  (** 7 — sink pushed it to the backbone. *)

val n_states : int

val state_name : Fsm_state.t -> string

type role = Origin | Forwarder | Sink

val role_of : origin:int -> sink:int -> int -> role

val fsm_of_role : role -> label Fsm.t
(** The FSMs are built once per role and shared (they are immutable after
    construction), so their memoized query caches amortize across every
    packet ever reconstructed. *)

val precompute_fsms : unit -> unit
(** {!Fsm.precompute} all three role FSMs, making their caches complete
    and therefore safe to share read-only across worker domains.  Called
    by [Reconstruct.run] before going parallel; idempotent. *)

val unknown_node : int
(** [-1]: placeholder peer when synthesis cannot recover the other
    endpoint. *)

(** Peer recovery index over one packet's surviving records.

    Built in a single pass and queried per inferred event, replacing the
    per-synthesis linear rescan of the record list.  First-write-wins
    preserves the original first-match semantics: the answer for each node
    is taken from the earliest matching record in list order. *)
module Peer_index : sig
  type t

  val build : Logsys.Record.t list -> t

  val sender_toward : t -> int -> int option
  (** Who transmitted toward this node? First sender-side record
      ([trans]/[ack recvd]/[retx timeout]) pointing at it. *)

  val receiver_from : t -> int -> int option
  (** Whom did this node transmit to? Its own first sender-side record,
      else the first receiver-side record naming it as the sender. *)
end

val make_config :
  records:Logsys.Record.t list ->
  origin:int ->
  seq:int ->
  sink:int ->
  (label, Logsys.Record.t) Engine.config
(** Engine configuration for reconstructing one packet.  [records] are the
    packet's surviving records network-wide (the synthesis search pool). *)

val make_config_of_events :
  events:(int * label * Logsys.Record.t option) array ->
  origin:int ->
  seq:int ->
  sink:int ->
  (label, Logsys.Record.t) Engine.config
(** {!make_config} drawing the synthesis search pool from an already-built
    event array (every [Some] payload), sparing the hot path its record
    list.  Same first-match peer-recovery semantics. *)

val events_of_records :
  Logsys.Record.t list -> (int * label * Logsys.Record.t option) list
(** Map records to engine input events (node, label, payload). *)

val event_array_of_records :
  Logsys.Record.t list -> (int * label * Logsys.Record.t option) array
(** [events_of_records] built directly as the array {!Engine.process}'s
    [Events] input consumes — one pass, no intermediate list. *)

val make_config_of_records :
  records:Logsys.Record.t array ->
  origin:int ->
  seq:int ->
  sink:int ->
  (label, Logsys.Record.t) Engine.config
(** {!make_config} drawing the synthesis search pool from the packet's
    flat record array ({!Logsys.Collected.packet_records}), lazily. *)

(** Packed engine input: one packet's merged events as parallel arrays —
    node, label, dense FSM label id, payload, and inter-node prerequisite
    per event, all resolved in one pass.  The representation
    {!Engine.process}'s [Packed] input consumes; built by
    {!pack_events}. *)
type packed = {
  p_nodes : int array;
  p_labels : label array;
  p_ids : int array;
  p_payloads : Logsys.Record.t option array;
  p_pre_nodes : int array;  (** prerequisite peer node, [-1] = none *)
  p_pre_states : Fsm_state.t array;
  p_srcs : int array;
      (** Output slot -> index in the caller's node-scan-order record array
          (the causal merge permutes records; provenance evidence cites the
          original indices). *)
}

val pack_events : Logsys.Record.t array -> origin:int -> sink:int -> packed
(** Build the packed engine input from one packet's flat record array (in
    node-scan order, as {!Logsys.Collected.packet_records} returns it).
    Applies the same causal chain-merge as {!event_array_of_groups} and
    resolves each event's label, dense id ({!Fsm.label_id} via a per-role
    table) and prerequisite ({!Engine.config.prerequisites} semantics)
    inline. *)

val pack_arena :
  Logsys.Arena.t -> int array -> origin:int -> sink:int -> packed
(** {!pack_events} reading arena columns through a row-index array
    ([Logsys.Arena.Packets.packet_rows], node-scan order) instead of
    record pointers.  Payloads materialize once per emitted slot via
    [Arena.get]; the chain walk, hop split and prerequisite resolution
    are pure column reads.  Produces slot-for-slot the same packed input
    (payloads [Record.equal]) as {!pack_events} over the materialized
    rows. *)

val make_config_of_arena :
  arena:Logsys.Arena.t ->
  rows:int array ->
  origin:int ->
  seq:int ->
  sink:int ->
  (label, Logsys.Record.t) Engine.config
(** {!make_config_of_records} over arena rows: the lazy peer-recovery
    index scans columns with the same first-match semantics. *)

val event_array_of_groups :
  (int * Logsys.Record.t list) list ->
  origin:int ->
  (int * label * Logsys.Record.t option) array
(** The engine input for one packet straight from its per-node record
    groups (as {!Logsys.Collected.events_of_packet} returns them).  Groups
    are merged along the forwarding chain the records reveal — origin
    first, then each next hop — with stragglers after in node order.
    Each node's local record order is preserved, so the reconstruction is
    unchanged (the engine is insensitive to the cross-node interleaving);
    the causal order just means prerequisites are almost always already
    satisfied, so drives rarely cascade. *)

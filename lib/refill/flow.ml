type item = (Protocol.label, Logsys.Record.t) Engine.item

type t = {
  origin : int;
  seq : int;
  items : item list;
  stats : Engine.stats;
  prov : Provenance.t array;
}

let packet_key t = (t.origin, t.seq)

let logged_items t = List.filter (fun (i : item) -> not i.inferred) t.items

let inferred_items t = List.filter (fun (i : item) -> i.inferred) t.items

let length t = List.length t.items

let node_str n = if n = Protocol.unknown_node then "?" else string_of_int n

let item_to_string (i : item) =
  let base =
    match i.payload with
    | Some r -> (
        match Logsys.Record.link r with
        | Some (s, d) ->
            Printf.sprintf "%s-%s %s" (node_str s) (node_str d)
              (Protocol.label_name i.label)
        | None ->
            Printf.sprintf "%s@%s" (Protocol.label_name i.label)
              (node_str i.node))
    | None ->
        Printf.sprintf "%s@%s" (Protocol.label_name i.label) (node_str i.node)
  in
  if i.inferred then "[" ^ base ^ "]" else base

let to_string t = String.concat ", " (List.map item_to_string t.items)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let last_item t =
  match List.rev t.items with [] -> None | last :: _ -> Some last

let participants t =
  (* Hop order first, then any remaining nodes that only appear in events. *)
  let in_order = ref [] in
  let add n =
    if n >= 0 && not (List.mem n !in_order) then in_order := n :: !in_order
  in
  List.iter
    (fun (i : item) ->
      if i.entered = Protocol.holding then add i.node)
    t.items;
  List.iter
    (fun (i : item) ->
      add i.node;
      match i.payload with
      | Some r -> (
          match Logsys.Record.peer r with Some p -> add p | None -> ())
      | None -> ())
    t.items;
  List.rev !in_order

let to_sequence_diagram t =
  let nodes = participants t in
  if nodes = [] then "(empty flow)\n"
  else begin
    let col_width = 12 in
    let col n =
      match List.find_index (Int.equal n) nodes with
      | Some i -> i * col_width
      | None -> 0
    in
    let width = (List.length nodes * col_width) + 2 in
    let buf = Buffer.create 2048 in
    (* Header: node labels over their lifelines. *)
    let header = Bytes.make width ' ' in
    List.iter
      (fun n ->
        let label = Printf.sprintf "n%d" n in
        Bytes.blit_string label 0 header (col n)
          (min (String.length label) (width - col n)))
      nodes;
    Buffer.add_string buf (Bytes.to_string header);
    Buffer.add_char buf '\n';
    let lifeline line =
      List.iter
        (fun n -> if Bytes.get line (col n) = ' ' then Bytes.set line (col n) '|')
        nodes
    in
    List.iter
      (fun (i : item) ->
        let line = Bytes.make width ' ' in
        let annotate text at =
          Bytes.blit_string text 0 line at
            (min (String.length text) (width - at))
        in
        let name = Protocol.label_name i.label in
        let name = if i.inferred then "[" ^ name ^ "]" else name in
        (match Option.bind i.payload Logsys.Record.link with
        | Some (src, dst) when src >= 0 && dst >= 0 && src <> dst ->
            (* The ACK frame travels receiver -> sender; draw it that way. *)
            let a, b =
              if i.label = Protocol.L_ack then (col dst, col src)
              else (col src, col dst)
            in
            let lo = min a b and hi = max a b in
            for x = lo + 1 to hi - 1 do
              Bytes.set line x '-'
            done;
            Bytes.set line (if a < b then hi else lo)
              (if a < b then '>' else '<');
            lifeline line;
            annotate name (hi + 2)
        | Some _ | None ->
            lifeline line;
            annotate ("* " ^ name) (col i.node + 1));
        Buffer.add_string buf (Bytes.to_string line);
        Buffer.add_char buf '\n')
      t.items;
    Buffer.contents buf
  end

let nodes_visited t =
  List.fold_left
    (fun acc (i : item) ->
      if i.entered = Protocol.holding && not (List.mem i.node acc) then
        i.node :: acc
      else acc)
    [] t.items
  |> List.rev

type label =
  | L_gen
  | L_recv
  | L_dup
  | L_overflow
  | L_trans
  | L_ack
  | L_timeout
  | L_deliver

let label_name = function
  | L_gen -> "gen"
  | L_recv -> "recv"
  | L_dup -> "dup"
  | L_overflow -> "overflow"
  | L_trans -> "trans"
  | L_ack -> "ack"
  | L_timeout -> "timeout"
  | L_deliver -> "deliver"

let label_of_kind : Logsys.Record.kind -> label = function
  | Gen -> L_gen
  | Recv _ -> L_recv
  | Dup _ -> L_dup
  | Overflow _ -> L_overflow
  | Trans _ -> L_trans
  | Ack_recvd _ -> L_ack
  | Retx_timeout _ -> L_timeout
  | Deliver -> L_deliver

let init = 0
let holding = 1
let sent = 2
let acked = 3
let timed_out = 4
let dup_dropped = 5
let overflow_dropped = 6
let delivered = 7
let n_states = 8

let state_name s =
  match s with
  | 0 -> "init"
  | 1 -> "holding"
  | 2 -> "sent"
  | 3 -> "acked"
  | 4 -> "timed-out"
  | 5 -> "dup-dropped"
  | 6 -> "overflow-dropped"
  | 7 -> "delivered"
  | _ -> "state-" ^ string_of_int s

type role = Origin | Forwarder | Sink

let role_of ~origin ~sink node =
  if node = sink then Sink else if node = origin then Origin else Forwarder

(* Transitions shared by every node that forwards packets: send, outcome,
   and loop re-entry. *)
let add_forwarding_core fsm =
  Fsm.add_transition fsm ~src:holding ~dst:sent L_trans;
  Fsm.add_transition fsm ~src:sent ~dst:acked L_ack;
  Fsm.add_transition fsm ~src:sent ~dst:timed_out L_timeout;
  (* A looped-back copy can arrive while the node is still retrying (its
     ACK was lost but the next hop accepted), or after the exchange. *)
  Fsm.add_transition fsm ~src:sent ~dst:dup_dropped L_dup;
  Fsm.add_transition fsm ~src:acked ~dst:dup_dropped L_dup;
  Fsm.add_transition fsm ~src:timed_out ~dst:dup_dropped L_dup;
  (* Re-reception after cache eviction: the node holds the packet again
     (Table II cases 3–4). *)
  Fsm.add_transition fsm ~src:acked ~dst:holding L_recv;
  Fsm.add_transition fsm ~src:timed_out ~dst:holding L_recv

let origin_fsm =
  let fsm = Fsm.create ~n_states ~initial:init in
  Fsm.add_transition fsm ~src:init ~dst:holding L_gen;
  (* The origin's own queue can be full when the application posts. *)
  Fsm.add_transition fsm ~src:holding ~dst:overflow_dropped L_overflow;
  add_forwarding_core fsm;
  fsm

let forwarder_fsm =
  let fsm = Fsm.create ~n_states ~initial:init in
  Fsm.add_transition fsm ~src:init ~dst:holding L_recv;
  Fsm.add_transition fsm ~src:init ~dst:overflow_dropped L_overflow;
  add_forwarding_core fsm;
  fsm

let sink_fsm =
  let fsm = Fsm.create ~n_states ~initial:init in
  Fsm.add_transition fsm ~src:init ~dst:holding L_recv;
  Fsm.add_transition fsm ~src:holding ~dst:delivered L_deliver;
  fsm

let fsm_of_role = function
  | Origin -> origin_fsm
  | Forwarder -> forwarder_fsm
  | Sink -> sink_fsm

let unknown_node = -1

(* -- Payload synthesis for inferred events. ------------------------------ *)

(* Who transmitted toward [node]? Any sender-side record pointing at it. *)
let find_sender_toward records node =
  List.find_map
    (fun (r : Logsys.Record.t) ->
      match r.kind with
      | Trans { to_ } | Ack_recvd { to_ } | Retx_timeout { to_ }
        when to_ = node ->
          Some r.node
      | _ -> None)
    records

(* Whom did [node] transmit to? Its own sender-side records first, then any
   receiver-side record naming it as the sender. *)
let find_receiver_from records node =
  let own =
    List.find_map
      (fun (r : Logsys.Record.t) ->
        if r.node <> node then None
        else
          match r.kind with
          | Trans { to_ } | Ack_recvd { to_ } | Retx_timeout { to_ } ->
              Some to_
          | _ -> None)
      records
  in
  match own with
  | Some _ -> own
  | None ->
      List.find_map
        (fun (r : Logsys.Record.t) ->
          match r.kind with
          | Recv { from } | Dup { from } | Overflow { from } when from = node
            ->
              Some r.node
          | _ -> None)
        records

let synthesize ~records ~origin ~seq ~node label : Logsys.Record.t option =
  let make kind : Logsys.Record.t =
    { node; kind; origin; pkt_seq = seq; true_time = Float.nan; gseq = -1 }
  in
  let peer_from () =
    Option.value ~default:unknown_node (find_sender_toward records node)
  in
  let peer_to () =
    Option.value ~default:unknown_node (find_receiver_from records node)
  in
  match label with
  | L_gen -> Some (make Gen)
  | L_deliver -> Some (make Deliver)
  | L_recv -> Some (make (Recv { from = peer_from () }))
  | L_dup -> Some (make (Dup { from = peer_from () }))
  | L_overflow -> Some (make (Overflow { from = peer_from () }))
  | L_trans -> Some (make (Trans { to_ = peer_to () }))
  | L_ack -> Some (make (Ack_recvd { to_ = peer_to () }))
  | L_timeout -> Some (make (Retx_timeout { to_ = peer_to () }))

(* -- Inter-node prerequisites. ------------------------------------------- *)

let prerequisites ~node ~label:_ ~payload =
  match (payload : Logsys.Record.t option) with
  | None -> []
  | Some r -> (
      match r.kind with
      | Recv { from } | Dup { from } | Overflow { from } ->
          if from <> node && from <> unknown_node then [ (from, sent) ]
          else []
      | Ack_recvd { to_ } ->
          if to_ <> node && to_ <> unknown_node then [ (to_, holding) ]
          else []
      | Gen | Trans _ | Retx_timeout _ | Deliver -> [])

let make_config ~records ~origin ~seq ~sink : (label, Logsys.Record.t) Engine.config
    =
  {
    fsm_of = (fun node -> fsm_of_role (role_of ~origin ~sink node));
    prerequisites;
    infer_payload =
      (fun ~node ~label -> synthesize ~records ~origin ~seq ~node label);
  }

let events_of_records records =
  List.map
    (fun (r : Logsys.Record.t) -> (r.node, label_of_kind r.kind, Some r))
    records

type label =
  | L_gen
  | L_recv
  | L_dup
  | L_overflow
  | L_trans
  | L_ack
  | L_timeout
  | L_deliver

let label_name = function
  | L_gen -> "gen"
  | L_recv -> "recv"
  | L_dup -> "dup"
  | L_overflow -> "overflow"
  | L_trans -> "trans"
  | L_ack -> "ack"
  | L_timeout -> "timeout"
  | L_deliver -> "deliver"

let label_of_kind : Logsys.Record.kind -> label = function
  | Gen -> L_gen
  | Recv _ -> L_recv
  | Dup _ -> L_dup
  | Overflow _ -> L_overflow
  | Trans _ -> L_trans
  | Ack_recvd _ -> L_ack
  | Retx_timeout _ -> L_timeout
  | Deliver -> L_deliver

let init = 0
let holding = 1
let sent = 2
let acked = 3
let timed_out = 4
let dup_dropped = 5
let overflow_dropped = 6
let delivered = 7
let n_states = 8

let state_name s =
  match s with
  | 0 -> "init"
  | 1 -> "holding"
  | 2 -> "sent"
  | 3 -> "acked"
  | 4 -> "timed-out"
  | 5 -> "dup-dropped"
  | 6 -> "overflow-dropped"
  | 7 -> "delivered"
  | _ -> "state-" ^ string_of_int s

type role = Origin | Forwarder | Sink

let role_of ~origin ~sink node =
  if node = sink then Sink else if node = origin then Origin else Forwarder

(* Transitions shared by every node that forwards packets: send, outcome,
   and loop re-entry. *)
let add_forwarding_core fsm =
  Fsm.add_transition fsm ~src:holding ~dst:sent L_trans;
  Fsm.add_transition fsm ~src:sent ~dst:acked L_ack;
  Fsm.add_transition fsm ~src:sent ~dst:timed_out L_timeout;
  (* A looped-back copy can arrive while the node is still retrying (its
     ACK was lost but the next hop accepted), or after the exchange. *)
  Fsm.add_transition fsm ~src:sent ~dst:dup_dropped L_dup;
  Fsm.add_transition fsm ~src:acked ~dst:dup_dropped L_dup;
  Fsm.add_transition fsm ~src:timed_out ~dst:dup_dropped L_dup;
  (* Re-reception after cache eviction: the node holds the packet again
     (Table II cases 3–4). *)
  Fsm.add_transition fsm ~src:acked ~dst:holding L_recv;
  Fsm.add_transition fsm ~src:timed_out ~dst:holding L_recv

let origin_fsm =
  let fsm = Fsm.create ~n_states ~initial:init in
  Fsm.add_transition fsm ~src:init ~dst:holding L_gen;
  (* The origin's own queue can be full when the application posts. *)
  Fsm.add_transition fsm ~src:holding ~dst:overflow_dropped L_overflow;
  add_forwarding_core fsm;
  fsm

let forwarder_fsm =
  let fsm = Fsm.create ~n_states ~initial:init in
  Fsm.add_transition fsm ~src:init ~dst:holding L_recv;
  Fsm.add_transition fsm ~src:init ~dst:overflow_dropped L_overflow;
  add_forwarding_core fsm;
  fsm

let sink_fsm =
  let fsm = Fsm.create ~n_states ~initial:init in
  Fsm.add_transition fsm ~src:init ~dst:holding L_recv;
  Fsm.add_transition fsm ~src:holding ~dst:delivered L_deliver;
  fsm

let fsm_of_role = function
  | Origin -> origin_fsm
  | Forwarder -> forwarder_fsm
  | Sink -> sink_fsm

let unknown_node = -1

(* -- Payload synthesis for inferred events. ------------------------------ *)

(* Peer recovery used to rescan the packet's record list once per inferred
   event; [Peer_index.build] extracts the same first-match answers in one
   pass so each synthesis is a hashtable lookup.  First-write-wins mirrors
   the original List.find_map semantics exactly. *)
module Peer_index = struct
  type t = {
    sender_toward : (int, int) Hashtbl.t;
        (* receiver -> first sender-side record pointing at it *)
    own_target : (int, int) Hashtbl.t;
        (* sender -> target of its first own sender-side record *)
    named_receiver : (int, int) Hashtbl.t;
        (* sender -> first receiver-side record naming it as the source *)
  }

  let create () =
    {
      sender_toward = Hashtbl.create 16;
      own_target = Hashtbl.create 16;
      named_receiver = Hashtbl.create 16;
    }

  let put tbl key v = if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key v

  let scan t (r : Logsys.Record.t) =
    match r.kind with
    | Trans { to_ } | Ack_recvd { to_ } | Retx_timeout { to_ } ->
        put t.sender_toward to_ r.node;
        put t.own_target r.node to_
    | Recv { from } | Dup { from } | Overflow { from } ->
        put t.named_receiver from r.node
    | Gen | Deliver -> ()

  let build (records : Logsys.Record.t list) =
    let t = create () in
    List.iter (scan t) records;
    t

  let build_of_events events =
    let t = create () in
    Array.iter
      (fun (_, _, payload) ->
        match payload with Some r -> scan t r | None -> ())
      events;
    t

  (* Who transmitted toward [node]? Any sender-side record pointing at it. *)
  let sender_toward t node = Hashtbl.find_opt t.sender_toward node

  (* Whom did [node] transmit to? Its own sender-side records first, then
     any receiver-side record naming it as the sender. *)
  let receiver_from t node =
    match Hashtbl.find_opt t.own_target node with
    | Some _ as own -> own
    | None -> Hashtbl.find_opt t.named_receiver node
end

let synthesize ~index ~origin ~seq ~node label : Logsys.Record.t option =
  let make kind : Logsys.Record.t =
    { node; kind; origin; pkt_seq = seq; true_time = Float.nan; gseq = -1 }
  in
  let peer_from () =
    Option.value ~default:unknown_node (Peer_index.sender_toward index node)
  in
  let peer_to () =
    Option.value ~default:unknown_node (Peer_index.receiver_from index node)
  in
  match label with
  | L_gen -> Some (make Gen)
  | L_deliver -> Some (make Deliver)
  | L_recv -> Some (make (Recv { from = peer_from () }))
  | L_dup -> Some (make (Dup { from = peer_from () }))
  | L_overflow -> Some (make (Overflow { from = peer_from () }))
  | L_trans -> Some (make (Trans { to_ = peer_to () }))
  | L_ack -> Some (make (Ack_recvd { to_ = peer_to () }))
  | L_timeout -> Some (make (Retx_timeout { to_ = peer_to () }))

(* -- Inter-node prerequisites. ------------------------------------------- *)

let prerequisites ~node ~label:_ ~payload =
  match (payload : Logsys.Record.t option) with
  | None -> []
  | Some r -> (
      match r.kind with
      | Recv { from } | Dup { from } | Overflow { from } ->
          if from <> node && from <> unknown_node then [ (from, sent) ]
          else []
      | Ack_recvd { to_ } ->
          if to_ <> node && to_ <> unknown_node then [ (to_, holding) ]
          else []
      | Gen | Trans _ | Retx_timeout _ | Deliver -> [])

let config_with_index ~index ~origin ~seq ~sink :
    (label, Logsys.Record.t) Engine.config =
  {
    fsm_of = (fun node -> fsm_of_role (role_of ~origin ~sink node));
    prerequisites;
    infer_payload =
      (fun ~node ~label ->
        synthesize ~index:(Lazy.force index) ~origin ~seq ~node label);
  }

let make_config ~records ~origin ~seq ~sink =
  (* One pass over the packet's records — and only for packets that infer
     at all (lazily): every inferred event's peer recovery is then a
     lookup instead of a rescan of [records]. *)
  config_with_index ~index:(lazy (Peer_index.build records)) ~origin ~seq ~sink

let make_config_of_events ~events ~origin ~seq ~sink =
  config_with_index
    ~index:(lazy (Peer_index.build_of_events events))
    ~origin ~seq ~sink

let events_of_records records =
  List.map
    (fun (r : Logsys.Record.t) -> (r.node, label_of_kind r.kind, Some r))
    records

let event_array_of_records records =
  match records with
  | [] -> [||]
  | (first : Logsys.Record.t) :: _ ->
      let n = List.length records in
      let arr = Array.make n (first.node, label_of_kind first.kind, Some first) in
      let i = ref 0 in
      List.iter
        (fun (r : Logsys.Record.t) ->
          arr.(!i) <- (r.node, label_of_kind r.kind, Some r);
          incr i)
        records;
      arr

(* First node this group's records show it transmitting toward, or -1. *)
let rec group_next_hop (rs : Logsys.Record.t list) =
  match rs with
  | [] -> -1
  | { kind = Trans { to_ } | Ack_recvd { to_ } | Retx_timeout { to_ }; _ } :: _
    ->
      to_
  | _ :: rest -> group_next_hop rest

(* Split a group's records into the three real-time segments of one hop:
   [head] — reception-side processing before the node's first [Trans]
   (recv/dup/overflow, the sink's deliver); [mid] — first through last
   [Trans], the transmission exchanges including interleaved timeouts;
   [post] — the trailing ACK/timeout outcome of the final exchange, which
   in real time lands after the *next* hop has received and processed the
   packet. *)
let split_hop_segments (rs : Logsys.Record.t list) =
  let rec before_first_trans = function
    | ({ kind = Trans _; _ } : Logsys.Record.t) :: _ as tl -> ([], tl)
    | x :: tl ->
        let h, t = before_first_trans tl in
        (x :: h, t)
    | [] -> ([], [])
  in
  let head, tail = before_first_trans rs in
  let rec last_trans i best = function
    | [] -> best
    | ({ kind = Trans _; _ } : Logsys.Record.t) :: tl -> last_trans (i + 1) i tl
    | _ :: tl -> last_trans (i + 1) best tl
  in
  match last_trans 0 (-1) tail with
  | -1 -> (head, [], tail)
  | k ->
      let rec split i = function
        | x :: tl when i <= k ->
            let mid, post = split (i + 1) tl in
            (x :: mid, post)
        | tl -> ([], tl)
      in
      let mid, post = split 0 tail in
      (head, mid, post)

let event_array_of_groups groups ~origin =
  let n = List.fold_left (fun acc (_, rs) -> acc + List.length rs) 0 groups in
  if n = 0 then [||]
  else begin
    let rec first_record = function
      | (_, (r : Logsys.Record.t) :: _) :: _ -> r
      | (_, []) :: rest -> first_record rest
      | [] -> assert false  (* n > 0 *)
    in
    let f = first_record groups in
    let arr = Array.make n (f.node, label_of_kind f.kind, Some f) in
    let i = ref 0 in
    let put (r : Logsys.Record.t) =
      arr.(!i) <- (r.node, label_of_kind r.kind, Some r);
      incr i
    in
    (* Merge the groups along the forwarding chains the records themselves
       reveal: start at the origin, follow each group's next hop, and
       restart from any group loss disconnected from its upstream.  Each
       node's local record order is preserved, so the reconstruction is
       unchanged, but a causal merge means prerequisites are almost always
       already satisfied and the drive machinery rarely cascades. *)
    let garr = Array.of_list groups in
    let used = Array.make (Array.length garr) false in
    let find node =
      let rec f gi =
        if gi >= Array.length garr then -1
        else if (not used.(gi)) && fst garr.(gi) = node then gi
        else f (gi + 1)
      in
      f 0
    in
    let rec walk node hops acc =
      (* hop bound: a forwarding loop revisits a used group and stops, but
         guard against pathological chains anyway *)
      if hops >= 256 then List.rev acc
      else
        match find node with
        | -1 -> List.rev acc
        | gi ->
            used.(gi) <- true;
            let rs = snd garr.(gi) in
            let next = group_next_hop rs in
            if next >= 0 && next <> node then walk next (hops + 1) (rs :: acc)
            else List.rev (rs :: acc)
    in
    (* Within a chain, interleave the way the radio exchange actually
       happens: a hop's records through its last [Trans], then the next
       hop's reception-side processing, then the previous hop's trailing
       ACK/timeout, then the next hop's own transmissions — matching the
       true chronological order gen, trans, recv, [deliver,] ack, ... *)
    let emit_chain chain =
      let rec go prev_post = function
        | [] -> List.iter put prev_post
        | rs :: rest ->
            let head, mid, post = split_hop_segments rs in
            List.iter put head;
            List.iter put prev_post;
            List.iter put mid;
            go post rest
      in
      go [] chain
    in
    emit_chain (walk origin 0 []);
    Array.iteri
      (fun gi (node, _) -> if not used.(gi) then emit_chain (walk node 0 []))
      garr;
    arr
  end

(* -- Packed events: the zero-copy hot path. ------------------------------ *)

(* A dense rank for each label, independent of any FSM's internal label
   numbering, so per-role id tables are plain array lookups. *)
let label_rank = function
  | L_gen -> 0
  | L_recv -> 1
  | L_dup -> 2
  | L_overflow -> 3
  | L_trans -> 4
  | L_ack -> 5
  | L_timeout -> 6
  | L_deliver -> 7

let all_labels =
  [| L_gen; L_recv; L_dup; L_overflow; L_trans; L_ack; L_timeout; L_deliver |]

(* rank -> dense label id in the role's FSM (-1 when the role's FSM never
   uses the label), replacing a per-event hashtable lookup with an array
   read.  Built once per role; the FSMs are static. *)
let role_id_table fsm = Array.map (fun l -> Fsm.label_id fsm l) all_labels

let origin_ids = lazy (role_id_table origin_fsm)
let forwarder_ids = lazy (role_id_table forwarder_fsm)
let sink_ids = lazy (role_id_table sink_fsm)

let ids_for_role = function
  | Origin -> Lazy.force origin_ids
  | Forwarder -> Lazy.force forwarder_ids
  | Sink -> Lazy.force sink_ids

let precompute_fsms () =
  Fsm.precompute origin_fsm;
  Fsm.precompute forwarder_fsm;
  Fsm.precompute sink_fsm;
  (* Also force the per-role id tables so worker domains only ever read
     them. *)
  ignore (ids_for_role Origin : int array);
  ignore (ids_for_role Forwarder : int array);
  ignore (ids_for_role Sink : int array)

type packed = {
  p_nodes : int array;
  p_labels : label array;
  p_ids : int array;  (* dense label id in the event's node's FSM *)
  p_payloads : Logsys.Record.t option array;
  p_pre_nodes : int array;  (* prerequisite peer node, -1 = none *)
  p_pre_states : Fsm_state.t array;  (* state the peer must have visited *)
  p_srcs : int array;
      (* output slot -> node-scan-order record index (the causal merge
         permutes the records; provenance evidence cites the originals) *)
}

(* [pack_events records ~origin ~sink] builds the engine's packed input
   straight from one packet's flat record array (node-scan order, as
   {!Logsys.Collected.packet_records} returns it): the same causal
   chain-merge as {!event_array_of_groups}, but emitting into parallel
   arrays with labels, dense FSM ids, and inter-node prerequisites all
   resolved per event in this single pass — no tuples, no hashing, no
   per-event closure calls downstream. *)
let pack_events (records : Logsys.Record.t array) ~origin ~sink =
  let n = Array.length records in
  let p =
    {
      p_nodes = Array.make n 0;
      p_labels = Array.make n L_gen;
      p_ids = Array.make n (-1);
      p_payloads = Array.make n None;
      p_pre_nodes = Array.make n (-1);
      p_pre_states = Array.make n (-1);
      p_srcs = Array.make n (-1);
    }
  in
  if n = 0 then p
  else begin
    (* Segment discovery, fused into one pass over the records: boundaries
       of maximal same-node runs, each segment's next hop (first
       sender-side record's peer) and its first/last [Trans] indices —
       everything the chain walk and the three-way split need, so neither
       rescans the records.  Segment arrays are sized by the worst case
       (every record its own segment); per-packet counts are tiny. *)
    let seg_start = Array.make (n + 1) n in
    let seg_node = Array.make n (-1) in
    let seg_next = Array.make n (-1) in
    let seg_ft = Array.make n (-1) in
    let seg_lt = Array.make n (-1) in
    let n_segs = ref 0 in
    let last = ref (-1) in
    for i = 0 to n - 1 do
      let r = records.(i) in
      let node = r.Logsys.Record.node in
      if node <> !last then begin
        seg_start.(!n_segs) <- i;
        seg_node.(!n_segs) <- node;
        incr n_segs;
        last := node
      end;
      let s = !n_segs - 1 in
      match r.Logsys.Record.kind with
      | Trans { to_ } ->
          if seg_ft.(s) < 0 then seg_ft.(s) <- i;
          seg_lt.(s) <- i;
          if seg_next.(s) < 0 then seg_next.(s) <- to_
      | Ack_recvd { to_ } | Retx_timeout { to_ } ->
          if seg_next.(s) < 0 then seg_next.(s) <- to_
      | _ -> ()
    done;
    seg_start.(!n_segs) <- n;
    let used = Array.make !n_segs false in
    let find node =
      let rec f s =
        if s >= !n_segs then -1
        else if (not used.(s)) && seg_node.(s) = node then s
        else f (s + 1)
      in
      f 0
    in
    let next_hop s = seg_next.(s) in
    let origin_tbl = ids_for_role Origin
    and forwarder_tbl = ids_for_role Forwarder
    and sink_tbl = ids_for_role Sink in
    let out = ref 0 in
    let put src =
      let r = records.(src) in
      let i = !out in
      let node = r.node in
      let lab = label_of_kind r.kind in
      let tbl =
        if node = sink then sink_tbl
        else if node = origin then origin_tbl
        else forwarder_tbl
      in
      p.p_nodes.(i) <- node;
      p.p_labels.(i) <- lab;
      p.p_ids.(i) <- tbl.(label_rank lab);
      p.p_payloads.(i) <- Some r;
      (match r.kind with
      | Recv { from } | Dup { from } | Overflow { from } ->
          if from <> node && from <> unknown_node then begin
            p.p_pre_nodes.(i) <- from;
            p.p_pre_states.(i) <- sent
          end
      | Ack_recvd { to_ } ->
          if to_ <> node && to_ <> unknown_node then begin
            p.p_pre_nodes.(i) <- to_;
            p.p_pre_states.(i) <- holding
          end
      | Gen | Trans _ | Retx_timeout _ | Deliver -> ());
      p.p_srcs.(i) <- src;
      out := i + 1
    in
    let put_range lo hi = for i = lo to hi - 1 do put i done in
    (* Same causal interleave as [event_array_of_groups]: emit a hop
       through its last [Trans], then the next hop's reception-side
       processing, then the previous hop's trailing ACK/timeout.  The
       three-way split is [lo, ft) head, [ft, lt] mid, (lt, hi) post,
       with ft/lt the segment's first/last [Trans] from discovery. *)
    let rec emit_chain prev_post_lo prev_post_hi = function
      | [] -> put_range prev_post_lo prev_post_hi
      | s :: rest ->
          let lo = seg_start.(s) and hi = seg_start.(s + 1) in
          let ft = seg_ft.(s) and lt = seg_lt.(s) in
          if ft < 0 then begin
            put_range lo hi;
            put_range prev_post_lo prev_post_hi;
            emit_chain 0 0 rest
          end
          else begin
            put_range lo ft;
            put_range prev_post_lo prev_post_hi;
            put_range ft (lt + 1);
            emit_chain (lt + 1) hi rest
          end
    in
    let rec walk node hops acc =
      if hops >= 256 then List.rev acc
      else
        match find node with
        | -1 -> List.rev acc
        | s ->
            used.(s) <- true;
            let next = next_hop s in
            if next >= 0 && next <> node then walk next (hops + 1) (s :: acc)
            else List.rev (s :: acc)
    in
    emit_chain 0 0 (walk origin 0 []);
    for s = 0 to !n_segs - 1 do
      if not used.(s) then emit_chain 0 0 (walk seg_node.(s) 0 [])
    done;
    p
  end

let make_config_of_records ~records ~origin ~seq ~sink =
  config_with_index
    ~index:
      (lazy
        (let t = Peer_index.create () in
         Array.iter (Peer_index.scan t) records;
         t))
    ~origin ~seq ~sink

(* -- Arena-packed events: columns straight into the engine. -------------- *)

(* Codec kind tags (0–7) coincide with [label_rank]: tag -> label is
   [all_labels.(tag)] and tag -> dense FSM id is a per-role table read.
   Pinned at module init so a renumbering on either side cannot silently
   desynchronize arena packing. *)
let () =
  List.iter
    (fun (k : Logsys.Record.kind) ->
      assert (all_labels.(Logsys.Codec.tag_of_kind k) == label_of_kind k))
    [
      Gen;
      Recv { from = 0 };
      Dup { from = 0 };
      Overflow { from = 0 };
      Trans { to_ = 0 };
      Ack_recvd { to_ = 0 };
      Retx_timeout { to_ = 0 };
      Deliver;
    ]

(* [pack_events], reading arena columns through a row-index array instead
   of chasing record pointers.  [rows] is the packet's node-scan-order
   row list ({!Logsys.Arena.Packets.packet_rows}); payloads materialize
   once per emitted slot (the engine's emissions carry records), but the
   chain walk, the three-way hop split and prerequisite resolution are
   pure column reads. *)
let pack_arena (a : Logsys.Arena.t) (rows : int array) ~origin ~sink =
  let n = Array.length rows in
  let p =
    {
      p_nodes = Array.make n 0;
      p_labels = Array.make n L_gen;
      p_ids = Array.make n (-1);
      p_payloads = Array.make n None;
      p_pre_nodes = Array.make n (-1);
      p_pre_states = Array.make n (-1);
      p_srcs = Array.make n (-1);
    }
  in
  if n = 0 then p
  else begin
    let seg_start = Array.make (n + 1) n in
    let seg_node = Array.make n (-1) in
    let seg_next = Array.make n (-1) in
    let seg_ft = Array.make n (-1) in
    let seg_lt = Array.make n (-1) in
    let n_segs = ref 0 in
    let last = ref (-1) in
    for i = 0 to n - 1 do
      let row = rows.(i) in
      let node = Logsys.Arena.node a row in
      if node <> !last then begin
        seg_start.(!n_segs) <- i;
        seg_node.(!n_segs) <- node;
        incr n_segs;
        last := node
      end;
      let s = !n_segs - 1 in
      let tag = Logsys.Arena.tag a row in
      if tag = 4 then begin
        (* Trans *)
        if seg_ft.(s) < 0 then seg_ft.(s) <- i;
        seg_lt.(s) <- i;
        if seg_next.(s) < 0 then seg_next.(s) <- Logsys.Arena.peer a row
      end
      else if tag = 5 || tag = 6 then begin
        (* Ack_recvd / Retx_timeout *)
        if seg_next.(s) < 0 then seg_next.(s) <- Logsys.Arena.peer a row
      end
    done;
    seg_start.(!n_segs) <- n;
    let used = Array.make !n_segs false in
    let find node =
      let rec f s =
        if s >= !n_segs then -1
        else if (not used.(s)) && seg_node.(s) = node then s
        else f (s + 1)
      in
      f 0
    in
    let origin_tbl = ids_for_role Origin
    and forwarder_tbl = ids_for_role Forwarder
    and sink_tbl = ids_for_role Sink in
    let out = ref 0 in
    let put src =
      let row = rows.(src) in
      let i = !out in
      let node = Logsys.Arena.node a row in
      let tag = Logsys.Arena.tag a row in
      let tbl =
        if node = sink then sink_tbl
        else if node = origin then origin_tbl
        else forwarder_tbl
      in
      p.p_nodes.(i) <- node;
      p.p_labels.(i) <- all_labels.(tag);
      p.p_ids.(i) <- tbl.(tag);
      p.p_payloads.(i) <- Some (Logsys.Arena.get a row);
      (if tag >= 1 && tag <= 3 then begin
         (* Recv/Dup/Overflow: the sender must have visited [sent]. *)
         let from = Logsys.Arena.peer a row in
         if from <> node && from <> unknown_node then begin
           p.p_pre_nodes.(i) <- from;
           p.p_pre_states.(i) <- sent
         end
       end
       else if tag = 5 then begin
         (* Ack_recvd: the next hop must have visited [holding]. *)
         let to_ = Logsys.Arena.peer a row in
         if to_ <> node && to_ <> unknown_node then begin
           p.p_pre_nodes.(i) <- to_;
           p.p_pre_states.(i) <- holding
         end
       end);
      p.p_srcs.(i) <- src;
      out := i + 1
    in
    let put_range lo hi = for i = lo to hi - 1 do put i done in
    let rec emit_chain prev_post_lo prev_post_hi = function
      | [] -> put_range prev_post_lo prev_post_hi
      | s :: rest ->
          let lo = seg_start.(s) and hi = seg_start.(s + 1) in
          let ft = seg_ft.(s) and lt = seg_lt.(s) in
          if ft < 0 then begin
            put_range lo hi;
            put_range prev_post_lo prev_post_hi;
            emit_chain 0 0 rest
          end
          else begin
            put_range lo ft;
            put_range prev_post_lo prev_post_hi;
            put_range ft (lt + 1);
            emit_chain (lt + 1) hi rest
          end
    in
    let rec walk node hops acc =
      if hops >= 256 then List.rev acc
      else
        match find node with
        | -1 -> List.rev acc
        | s ->
            used.(s) <- true;
            let next = seg_next.(s) in
            if next >= 0 && next <> node then walk next (hops + 1) (s :: acc)
            else List.rev (s :: acc)
    in
    emit_chain 0 0 (walk origin 0 []);
    for s = 0 to !n_segs - 1 do
      if not used.(s) then emit_chain 0 0 (walk seg_node.(s) 0 [])
    done;
    p
  end

let make_config_of_arena ~arena ~rows ~origin ~seq ~sink =
  config_with_index
    ~index:
      (lazy
        (let t = Peer_index.create () in
         (* Same first-write-wins scan as [Peer_index.scan], over columns:
            rows arrive in node-scan order, like the record array. *)
         Array.iter
           (fun row ->
             let tag = Logsys.Arena.tag arena row in
             if tag >= 4 && tag <= 6 then begin
               let node = Logsys.Arena.node arena row in
               let to_ = Logsys.Arena.peer arena row in
               Peer_index.put t.Peer_index.sender_toward to_ node;
               Peer_index.put t.Peer_index.own_target node to_
             end
             else if tag >= 1 && tag <= 3 then
               Peer_index.put t.Peer_index.named_receiver
                 (Logsys.Arena.peer arena row)
                 (Logsys.Arena.node arena row))
           rows;
         t))
    ~origin ~seq ~sink

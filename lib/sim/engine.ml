module Obs = Refill_obs

let c_events =
  Obs.Metrics.Counter.v "sim_events_total"
    ~help:"Simulator callbacks executed."

let c_cancelled =
  Obs.Metrics.Counter.v "sim_cancelled_events_total"
    ~help:"Scheduled entries popped after cancellation."

let g_clock =
  Obs.Metrics.Gauge.v "sim_clock_seconds"
    ~help:"Virtual clock at the end of the last run."

type t = { mutable clock : float; queue : entry Prelude.Heap.t }

and entry = { mutable cancelled : bool; callback : t -> unit }

type handle = entry

let create () = { clock = 0.; queue = Prelude.Heap.create () }

let now t = t.clock

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  let entry = { cancelled = false; callback = f } in
  Prelude.Heap.push t.queue ~priority:time entry;
  entry

let schedule t ~delay f =
  let delay = if delay < 0. then 0. else delay in
  schedule_at t ~time:(t.clock +. delay) f

let cancel h = h.cancelled <- true

let is_pending h = not h.cancelled

let pending_count t = Prelude.Heap.length t.queue

let step t =
  match Prelude.Heap.pop t.queue with
  | None -> false
  | Some (time, entry) ->
      t.clock <- time;
      if entry.cancelled then Obs.Metrics.Counter.inc c_cancelled
      else begin
        Obs.Metrics.Counter.inc c_events;
        entry.callback t
      end;
      true

let run ?until t =
  Obs.Span.with_ ~cat:"sim" ~name:"sim.run" (fun () ->
      (match until with
      | None -> while step t do () done
      | Some horizon ->
          let continue = ref true in
          while !continue do
            match Prelude.Heap.peek t.queue with
            | Some (time, _) when time <= horizon -> ignore (step t : bool)
            | Some _ | None ->
                t.clock <- max t.clock horizon;
                continue := false
          done);
      Obs.Metrics.Gauge.set g_clock t.clock)

let run_for t ~duration = run ~until:(t.clock +. duration) t

type t = { mutable clock : float; queue : entry Prelude.Heap.t }

and entry = { mutable cancelled : bool; callback : t -> unit }

type handle = entry

let create () = { clock = 0.; queue = Prelude.Heap.create () }

let now t = t.clock

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  let entry = { cancelled = false; callback = f } in
  Prelude.Heap.push t.queue ~priority:time entry;
  entry

let schedule t ~delay f =
  let delay = if delay < 0. then 0. else delay in
  schedule_at t ~time:(t.clock +. delay) f

let cancel h = h.cancelled <- true

let is_pending h = not h.cancelled

let pending_count t = Prelude.Heap.length t.queue

let step t =
  match Prelude.Heap.pop t.queue with
  | None -> false
  | Some (time, entry) ->
      t.clock <- time;
      if not entry.cancelled then entry.callback t;
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue do
        match Prelude.Heap.peek t.queue with
        | Some (time, _) when time <= horizon -> ignore (step t : bool)
        | Some _ | None ->
            t.clock <- max t.clock horizon;
            continue := false
      done

let run_for t ~duration = run ~until:(t.clock +. duration) t

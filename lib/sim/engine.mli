(** Discrete-event simulation core.

    A single virtual clock and a pending-event queue.  Everything in the WSN
    substrate (radio transmissions, MAC backoffs, CTP beacons, application
    timers, weather changes, server outages) is a callback scheduled here.
    Time is in seconds of simulated time; callbacks run in nondecreasing time
    order, FIFO among equal timestamps. *)

type t

type handle
(** A scheduled callback that can be cancelled before it fires. *)

val create : unit -> t
(** A fresh engine with the clock at 0. *)

val now : t -> float
(** Current virtual time. *)

val schedule : t -> delay:float -> (t -> unit) -> handle
(** [schedule t ~delay f] runs [f t] at [now t +. delay].  Negative delays
    are clamped to 0 (the callback runs at the current time, after already
    queued callbacks with the same timestamp). *)

val schedule_at : t -> time:float -> (t -> unit) -> handle
(** Absolute-time variant; times in the past are clamped to [now]. *)

val cancel : handle -> unit
(** Cancel a pending callback; cancelling a fired or already-cancelled handle
    is a no-op. *)

val is_pending : handle -> bool

val pending_count : t -> int
(** Number of callbacks still queued (including cancelled-but-unreaped
    entries; intended for tests and diagnostics). *)

val step : t -> bool
(** Run the single earliest pending callback. Returns [false] when the queue
    is empty. *)

val run : ?until:float -> t -> unit
(** Run callbacks until the queue is empty or the clock would pass [until].
    When [until] is given the clock is left at [until] if the queue drained
    earlier events only. *)

val run_for : t -> duration:float -> unit
(** [run_for t ~duration] = [run ~until:(now t +. duration) t]. *)

type params = {
  seed : int64;
  n_nodes : int;
  days : int;
  day_length : float;
  data_interval : float;
  snow_days : (int * int) option;
  snow_quality : float;
  sink_fix_day : int option;
  serial_bad_rate : float;
  serial_good_rate : float;
  serial_prelog_fraction : float;
  upstack_drop : float;
  upstack_prelog_fraction : float;
  server_outages : int;
  server_outage_mean : float;
  bursts_per_day : int;
  burst_severity : float;
  burst_duration : float;
  burst_radius : float;
  mac : Net.Mac.config;
  warmup : float;
  in_band_logs : bool;
  ack_mode : Node.Network.ack_mode;
  reboot_mtbf : float option;
}

let default =
  {
    seed = 2015L;
    n_nodes = 100;
    days = 30;
    day_length = 1200.;
    data_interval = 60.;
    snow_days = Some (9, 10);
    snow_quality = 0.35;
    sink_fix_day = Some 23;
    serial_bad_rate = 0.085;
    serial_good_rate = 0.002;
    serial_prelog_fraction = 0.65;
    upstack_drop = 0.002;
    upstack_prelog_fraction = 0.06;
    server_outages = 4;
    server_outage_mean = 240.;
    bursts_per_day = 2;
    burst_severity = 0.88;
    burst_duration = 45.;
    burst_radius = 0.18;
    mac =
      (* MAC timing is compressed like the day itself: fast attempts keep
         relative relay load comparable to the real deployment. *)
      { Net.Mac.default_config with attempt_interval = 0.15; attempt_jitter = 0.05 };
    warmup = 1000.;
    in_band_logs = false;
    ack_mode = Node.Network.Hardware;
    reboot_mtbf = None;
  }

let two_day =
  {
    default with
    days = 2;
    snow_days = None;
    sink_fix_day = None;
    server_outages = 1;
    bursts_per_day = 3;
  }

let tiny =
  {
    default with
    n_nodes = 16;
    days = 1;
    day_length = 600.;
    data_interval = 40.;
    snow_days = None;
    sink_fix_day = None;
    server_outages = 0;
    bursts_per_day = 0;
    warmup = 250.;
  }

let full_scale =
  {
    default with
    n_nodes = 1225;
    days = 1;
    (* At full scale the real reporting period (~10 min) applies: the
       sink's neighborhood carries the whole network's traffic. *)
    data_interval = 600.;
    snow_days = None;
    sink_fix_day = None;
    server_outages = 1;
    (* Route propagation needs ~diameter beacon rounds before data. *)
    warmup = 2500.;
  }

type t = {
  params : params;
  network : Node.Network.t;
  sink : Net.Packet.node_id;
  duration : float;
}

let grid_side n =
  let s = int_of_float (Float.round (sqrt (float_of_int n))) in
  max 2 s

(* Regenerate the layout (bumping a seed offset) until the neighbor graph is
   connected, so every node has a potential route to the sink. *)
let make_topology rng n =
  let side = grid_side n in
  let spacing = 10. and jitter = 4. and range = 16. in
  let rec attempt k =
    if k > 50 then
      failwith "Citysee.make_topology: could not generate a connected layout";
    let topo =
      Net.Topology.jittered_grid rng ~nx:side ~ny:side ~spacing ~jitter ~range
    in
    if Net.Topology.is_connected topo ~from:0 then topo else attempt (k + 1)
  in
  attempt 0

let build params =
  let rng = Prelude.Rng.create ~seed:params.seed in
  let topo_rng = Prelude.Rng.split rng in
  let env_rng = Prelude.Rng.split rng in
  let topo = make_topology topo_rng params.n_nodes in
  let sink = Net.Topology.nearest_to topo (0., 0.) in
  let duration = float_of_int params.days *. params.day_length in
  let horizon = params.warmup +. duration in
  let day_start d = params.warmup +. (float_of_int d *. params.day_length) in
  (* Serial link: unstable until the fix day. *)
  let serial =
    let fix_time =
      match params.sink_fix_day with
      | Some d -> day_start d
      | None -> infinity
    in
    if params.serial_bad_rate = 0. && params.serial_good_rate = 0. then
      Node.Serial_link.stable
    else
      Node.Serial_link.unstable_until ~fix_time ~bad_rate:params.serial_bad_rate
        ~good_rate:params.serial_good_rate
        ~prelog_fraction:params.serial_prelog_fraction
  in
  let upstack =
    if params.upstack_drop = 0. then Node.Upstack.reliable
    else
      Node.Upstack.create ~drop_probability:params.upstack_drop
        ~prelog_fraction:params.upstack_prelog_fraction
  in
  (* Server outages at random times across the run. *)
  let server =
    let outages =
      List.init params.server_outages (fun _ ->
          let start =
            params.warmup +. Prelude.Rng.float env_rng duration
          in
          let d =
            Prelude.Rng.exponential env_rng ~mean:params.server_outage_mean
          in
          (start, Float.min d (horizon -. start)))
    in
    Node.Server.create ~outages
  in
  let config =
    {
      Node.Network.default_config with
      seed = Prelude.Rng.int64 rng;
      ack_mode = params.ack_mode;
      reboot_mtbf = params.reboot_mtbf;
      mac = params.mac;
      data_interval = params.data_interval;
      (* The compressed day squeezes CitySee's ~10-minute reporting period
         into [data_interval] seconds, multiplying instantaneous relay load;
         a deeper forwarding queue compensates so overflow stays the rare
         burst-driven event the paper observed. *)
      queue_capacity = 8;
      upstack;
      serial;
      server;
      log_transport =
        (if params.in_band_logs then Some Node.Network.default_log_transport
         else None);
    }
  in
  let network = Node.Network.create config topo ~sink in
  (* Weather: snow degrades every link during the snow days. *)
  let link = Node.Network.link_model network in
  (match params.snow_days with
  | None -> ()
  | Some (d0, d1) ->
      let snow_start = day_start d0 and snow_end = day_start (d1 + 1) in
      Net.Link_model.set_weather link (fun now ->
          if now >= snow_start && now < snow_end then params.snow_quality
          else 1.));
  (* Interference bursts: localized deep fades, a few per day. *)
  let side_len = float_of_int (grid_side params.n_nodes) *. 10. in
  for d = 0 to params.days - 1 do
    for _ = 1 to params.bursts_per_day do
      let start = day_start d +. Prelude.Rng.float env_rng params.day_length in
      Net.Link_model.add_burst link
        {
          start;
          duration = params.burst_duration;
          severity = params.burst_severity;
          center =
            ( Prelude.Rng.float env_rng side_len,
              Prelude.Rng.float env_rng side_len );
          radius = params.burst_radius *. side_len;
        }
    done
  done;
  { params; network; sink; duration }

let run params =
  let t = build params in
  Node.Network.start t.network ~warmup:t.params.warmup ~duration:t.duration;
  t

let day_of t time =
  let d =
    int_of_float ((time -. t.params.warmup) /. t.params.day_length)
  in
  max 0 (min (t.params.days - 1) d)

let day_bounds t d =
  let start = t.params.warmup +. (float_of_int d *. t.params.day_length) in
  (start, start +. t.params.day_length)

let collected t = Logsys.Collected.of_logger (Node.Network.logger t.network)

let collected_lossy t loss =
  let rng = Prelude.Rng.create ~seed:(Int64.add t.params.seed 0x10551L) in
  Logsys.Collected.lossify loss rng (collected t)

let collected_in_band t = Node.Network.collected_in_band t.network

let server t = Node.Network.server t.network

let position t id = Net.Topology.position (Node.Network.topology t.network) id

(** The CitySee-like deployment scenario (§V).

    Reproduces the evaluation environment at configurable scale: an urban
    jittered-grid layout with the sink near a corner, periodic per-node
    data reports collected over CTP, and the environmental storyline of the
    paper's 30-day study —

    - snow on days 9–10 degrading every link (Fig. 6),
    - the unstable sink RS232 connection replaced on day 23 (Figs. 5–8),
    - backbone server outages (22.6 % of losses, §V.C),
    - localized interference bursts making timeout/duplicate losses bursty
      (Fig. 5's ellipses).

    A "day" is compressed virtual time ([day_length] seconds) so a
    month-scale experiment runs in seconds; all rates are relative to the
    day length, which preserves the figures' shapes. *)

type params = {
  seed : int64;
  n_nodes : int;  (** Approximate; realized as the nearest grid. *)
  days : int;
  day_length : float;  (** Simulated seconds per day. *)
  data_interval : float;  (** Mean seconds between reports per node. *)
  snow_days : (int * int) option;  (** Inclusive day range of snowfall. *)
  snow_quality : float;  (** Link-quality multiplier while snowing. *)
  sink_fix_day : int option;
      (** Day the serial connection is replaced; [None] = never. *)
  serial_bad_rate : float;  (** Serial drop probability before the fix. *)
  serial_good_rate : float;  (** ... and after. *)
  serial_prelog_fraction : float;
  upstack_drop : float;  (** In-node drop probability at ordinary nodes. *)
  upstack_prelog_fraction : float;
  server_outages : int;  (** Number of outage windows over the run. *)
  server_outage_mean : float;  (** Mean outage duration in seconds. *)
  bursts_per_day : int;  (** Interference bursts per day. *)
  burst_severity : float;
  burst_duration : float;
  burst_radius : float;  (** As a fraction of the deployment side. *)
  mac : Net.Mac.config;
  warmup : float;  (** Routing warmup before day 0 begins. *)
  in_band_logs : bool;
      (** Ship event logs to the base station over CTP (the paper's §V
          collection method); the collected log is then an emergent result
          of the same lossy network. Default [false]. *)
  ack_mode : Node.Network.ack_mode;
      (** Hardware (the deployment) or software (§V.D.5's alternative)
          acknowledgements. Default [Hardware]. *)
  reboot_mtbf : float option;
      (** Mean time between node reboots (failure injection); [None]
          (default) = nodes never reboot. *)
}

val default : params
(** 100 nodes, 30 days of 1200 s, snow on days 9–10, sink fixed on day 23 —
    the full Fig. 6 storyline. *)

val two_day : params
(** The Fig. 4/5 slice: 2 days, no snow, sink not yet fixed. *)

val tiny : params
(** 16 nodes, 1 short day — for unit tests. *)

val full_scale : params
(** The deployment's real size: ~1225 nodes with CitySee's actual ten-minute
    reporting period, one day — the scale demonstration. *)

type t = {
  params : params;
  network : Node.Network.t;
  sink : Net.Packet.node_id;
  duration : float;  (** [days × day_length]. *)
}

val build : params -> t
(** Construct topology (re-seeded until connected), network, weather,
    bursts, outages. Does not run. *)

val run : params -> t
(** [build] then simulate to completion. *)

val day_of : t -> float -> int
(** Map a simulation timestamp to its day index (clamped to
    [0 .. days-1]); warmup maps to day 0. *)

val day_bounds : t -> int -> float * float
(** Simulation-time interval of a day. *)

val collected : t -> Logsys.Collected.t
(** Lossless snapshot of all node logs. *)

val collected_lossy : t -> Logsys.Loss_model.config -> Logsys.Collected.t
(** Lossified snapshot, deterministic in [params.seed]. *)

val collected_in_band : t -> Logsys.Collected.t option
(** The logs that reached the base station over the in-band transport;
    [None] unless [in_band_logs] was set. *)

val server : t -> Node.Server.t

val position : t -> Net.Packet.node_id -> float * float

type kind =
  | Gen
  | Recv of { from : Net.Packet.node_id }
  | Dup of { from : Net.Packet.node_id }
  | Overflow of { from : Net.Packet.node_id }
  | Trans of { to_ : Net.Packet.node_id }
  | Ack_recvd of { to_ : Net.Packet.node_id }
  | Retx_timeout of { to_ : Net.Packet.node_id }
  | Deliver

type t = {
  node : Net.Packet.node_id;
  kind : kind;
  origin : Net.Packet.node_id;
  pkt_seq : int;
  true_time : float;
  gseq : int;
}

let kind_name = function
  | Gen -> "gen"
  | Recv _ -> "recv"
  | Dup _ -> "dup"
  | Overflow _ -> "overflow"
  | Trans _ -> "trans"
  | Ack_recvd _ -> "ack"
  | Retx_timeout _ -> "timeout"
  | Deliver -> "deliver"

let peer t =
  match t.kind with
  | Gen | Deliver -> None
  | Recv { from } | Dup { from } | Overflow { from } -> Some from
  | Trans { to_ } | Ack_recvd { to_ } | Retx_timeout { to_ } -> Some to_

let link t =
  match t.kind with
  | Gen | Deliver -> None
  | Recv { from } | Dup { from } | Overflow { from } -> Some (from, t.node)
  | Trans { to_ } | Ack_recvd { to_ } | Retx_timeout { to_ } ->
      Some (t.node, to_)

let packet_key t = (t.origin, t.pkt_seq)

let kind_equal (a : kind) (b : kind) =
  match (a, b) with
  | Gen, Gen | Deliver, Deliver -> true
  | Recv { from = x }, Recv { from = y }
  | Dup { from = x }, Dup { from = y }
  | Overflow { from = x }, Overflow { from = y }
  | Trans { to_ = x }, Trans { to_ = y }
  | Ack_recvd { to_ = x }, Ack_recvd { to_ = y }
  | Retx_timeout { to_ = x }, Retx_timeout { to_ = y } -> x = y
  | ( ( Gen | Recv _ | Dup _ | Overflow _ | Trans _ | Ack_recvd _
      | Retx_timeout _ | Deliver ),
      _ ) ->
      false

let equal a b =
  a == b
  || a.node = b.node && a.origin = b.origin && a.pkt_seq = b.pkt_seq
     && a.gseq = b.gseq
     (* NaN (a decoded record's missing ground truth) must equal NaN, so a
        straight [=] on [true_time] would be wrong. *)
     && (a.true_time = b.true_time
        || (Float.is_nan a.true_time && Float.is_nan b.true_time))
     && kind_equal a.kind b.kind

let is_sender_side t =
  match t.kind with
  | Trans _ | Ack_recvd _ | Retx_timeout _ | Gen | Deliver -> true
  | Recv _ | Dup _ | Overflow _ -> false

let pp ppf t =
  match link t with
  | Some (s, r) ->
      Format.fprintf ppf "%d-%d %s@%d" s r (kind_name t.kind) t.node
  | None -> Format.fprintf ppf "%s@%d" (kind_name t.kind) t.node

let to_string t = Format.asprintf "%a" pp t

let compare_by_time a b =
  match Float.compare a.true_time b.true_time with
  | 0 -> Int.compare a.gseq b.gseq
  | c -> c

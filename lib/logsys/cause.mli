(** Packet outcomes and loss causes (the taxonomy of §V.B–V.C).

    The simulator records the ground-truth outcome of every packet; REFILL
    and the baselines each infer an outcome from logs.  Comparing the two is
    how we measure reconstruction quality — something the paper could not do
    on the live deployment. *)

type t =
  | Delivered  (** Reached the base-station server. *)
  | Timeout_loss
      (** Sender exhausted retransmissions (low link quality). *)
  | Duplicate_loss  (** Dropped by a duplicate cache (routing loop). *)
  | Overflow_loss  (** Dropped at a full forwarding queue. *)
  | Received_loss
      (** Received by a node (recv logged) and then lost inside it —
          up-stack failure, or the sink's serial link after logging. *)
  | Acked_loss
      (** Hardware-ACKed but never seen by the receiver's upper layers —
          the flow ends at the sender's [ack recvd]. *)
  | Server_outage_loss
      (** Delivered by the sink while the backbone server was down. *)
  | Unknown  (** An analyzer's "cannot determine" verdict. *)

val all : t list
(** Every constructor, in a stable display order. *)

val loss_causes : t list
(** [all] minus [Delivered] and [Unknown]. *)

val name : t -> string

val of_name : string -> t option

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val compare : t -> t -> int

val is_loss : t -> bool
(** True for every constructor except [Delivered] and [Unknown]. *)

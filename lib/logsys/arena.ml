(* Flat column store for event records — the zero-copy ingest layer.

   A record here is a row index into seven parallel columns (six
   Bigarray int columns plus one float64 column for the ground-truth
   timestamp) instead of a heap-allocated [Record.t] with a boxed kind
   variant and a boxed float field.  Bulk decoding appends straight into
   the columns, so ingesting a log allocates nothing per record; the
   existing record API survives as a materializing view ([get]), which
   reconstructs a [Record.equal]-identical [Record.t] on demand.

   Column invariants:
   - [tags] holds the Codec kind tag (0–7); tag order equals
     [Protocol.label_rank], so downstream consumers map tag -> label /
     dense FSM id with one array read.
   - [peers] is meaningful only for tags 1–6 (the link kinds); peer may
     legitimately be -1 (the unknown-node sentinel).  No-peer rows store
     [no_peer] as poison.
   - [times]/[gseqs] carry ground truth when rows come from text dumps
     and [nan]/[-1] when rows come from the binary codec, exactly like
     the record decoders. *)

type icol = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type fcol = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable nodes : icol;
  mutable tags : icol;
  mutable peers : icol;
  mutable origins : icol;
  mutable seqs : icol;
  mutable gseqs : icol;
  mutable times : fcol;
  mutable len : int;
}

type arena = t

type slice = { sl_base : t; sl_off : int; sl_len : int }

let no_peer = min_int

let c_decoded_rows =
  Refill_obs.Metrics.Counter.v "logsys_arena_decoded_rows_total"
    ~help:"Records bulk-decoded directly into arena columns."

let make_icol n : icol = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let make_fcol n : fcol =
  Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let create ?(capacity = 1024) () =
  let capacity = max 16 capacity in
  {
    nodes = make_icol capacity;
    tags = make_icol capacity;
    peers = make_icol capacity;
    origins = make_icol capacity;
    seqs = make_icol capacity;
    gseqs = make_icol capacity;
    times = make_fcol capacity;
    len = 0;
  }

let length t = t.len

let capacity t = Bigarray.Array1.dim t.nodes

let clear t = t.len <- 0

let grow_icol (c : icol) cap len =
  let g = make_icol cap in
  Bigarray.Array1.blit (Bigarray.Array1.sub c 0 len) (Bigarray.Array1.sub g 0 len);
  g

let grow_fcol (c : fcol) cap len =
  let g = make_fcol cap in
  Bigarray.Array1.blit (Bigarray.Array1.sub c 0 len) (Bigarray.Array1.sub g 0 len);
  g

let reserve t extra =
  let need = t.len + extra in
  let cap = capacity t in
  if need > cap then begin
    let cap' = max need (2 * cap) in
    t.nodes <- grow_icol t.nodes cap' t.len;
    t.tags <- grow_icol t.tags cap' t.len;
    t.peers <- grow_icol t.peers cap' t.len;
    t.origins <- grow_icol t.origins cap' t.len;
    t.seqs <- grow_icol t.seqs cap' t.len;
    t.gseqs <- grow_icol t.gseqs cap' t.len;
    t.times <- grow_fcol t.times cap' t.len
  end

(* -- Row accessors (bounds are the caller's contract on the hot path). --- *)

let node t i = Bigarray.Array1.get t.nodes i
let tag t i = Bigarray.Array1.get t.tags i
let peer t i = Bigarray.Array1.get t.peers i
let origin t i = Bigarray.Array1.get t.origins i
let pkt_seq t i = Bigarray.Array1.get t.seqs i
let gseq t i = Bigarray.Array1.get t.gseqs i
let true_time t i = Bigarray.Array1.get t.times i

let push_row t ~node ~tag ~peer ~origin ~pkt_seq ~true_time ~gseq =
  reserve t 1;
  let i = t.len in
  Bigarray.Array1.unsafe_set t.nodes i node;
  Bigarray.Array1.unsafe_set t.tags i tag;
  Bigarray.Array1.unsafe_set t.peers i peer;
  Bigarray.Array1.unsafe_set t.origins i origin;
  Bigarray.Array1.unsafe_set t.seqs i pkt_seq;
  Bigarray.Array1.unsafe_set t.gseqs i gseq;
  Bigarray.Array1.unsafe_set t.times i true_time;
  t.len <- i + 1

let push t (r : Record.t) =
  let tag = Codec.tag_of_kind r.kind in
  let peer =
    match Codec.peer_of_kind r.kind with Some p -> p | None -> no_peer
  in
  push_row t ~node:r.node ~tag ~peer ~origin:r.origin ~pkt_seq:r.pkt_seq
    ~true_time:r.true_time ~gseq:r.gseq

(* -- Materializing view. ------------------------------------------------- *)

let get t i : Record.t =
  if i < 0 || i >= t.len then invalid_arg "Arena.get: row out of bounds";
  let tag = Bigarray.Array1.unsafe_get t.tags i in
  let peer =
    if tag >= 1 && tag <= 6 then Some (Bigarray.Array1.unsafe_get t.peers i)
    else None
  in
  {
    node = Bigarray.Array1.unsafe_get t.nodes i;
    kind = Codec.kind_of_tag tag peer;
    origin = Bigarray.Array1.unsafe_get t.origins i;
    pkt_seq = Bigarray.Array1.unsafe_get t.seqs i;
    true_time = Bigarray.Array1.unsafe_get t.times i;
    gseq = Bigarray.Array1.unsafe_get t.gseqs i;
  }

(* Column-indexed [Record.equal] — no materialization.  Mirrors
   [Record.equal] field by field, including NaN = NaN on [true_time]. *)
let equal_record t i (r : Record.t) =
  Bigarray.Array1.get t.nodes i = r.node
  && Bigarray.Array1.unsafe_get t.origins i = r.origin
  && Bigarray.Array1.unsafe_get t.seqs i = r.pkt_seq
  && Bigarray.Array1.unsafe_get t.gseqs i = r.gseq
  && (let ta = Bigarray.Array1.unsafe_get t.times i in
      ta = r.true_time || (Float.is_nan ta && Float.is_nan r.true_time))
  && Bigarray.Array1.unsafe_get t.tags i = Codec.tag_of_kind r.kind
  &&
  let tg = Bigarray.Array1.unsafe_get t.tags i in
  tg < 1 || tg > 6
  || Some (Bigarray.Array1.unsafe_get t.peers i) = Codec.peer_of_kind r.kind

let of_records records =
  let t = create ~capacity:(max 16 (Array.length records)) () in
  Array.iter (push t) records;
  t

let to_records t = Array.init t.len (get t)

let slice t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then
    invalid_arg "Arena.slice: out of bounds";
  { sl_base = t; sl_off = off; sl_len = len }

let slice_all t = { sl_base = t; sl_off = 0; sl_len = t.len }

let slice_records s =
  Array.init s.sl_len (fun i -> get s.sl_base (s.sl_off + i))

(* -- Bulk decoding: the codec's wire formats straight into columns. ------ *)

(* The varint loop is inlined here (rather than calling
   [Codec.read_varint]) so the per-record path allocates nothing — no
   (value, pos) tuples, no records.  Guard semantics match the codec's:
   >63-bit varints and truncation fail, never wrap. *)

let decode_log_into t ~node b =
  let blen = Bytes.length b in
  reserve t (blen / 3);
  let pos = ref 0 in
  let n0 = t.len in
  let read_varint () =
    let shift = ref 0 and acc = ref 0 and cont = ref true in
    while !cont do
      if !shift > 56 then failwith "Arena: varint overflow (>63 bits)";
      if !pos >= blen then failwith "Arena: truncated varint";
      let byte = Char.code (Bytes.unsafe_get b !pos) in
      incr pos;
      acc := !acc lor ((byte land 0x7f) lsl !shift);
      if byte land 0x80 = 0 then cont := false else shift := !shift + 7
    done;
    !acc
  in
  while !pos < blen do
    let tag = Char.code (Bytes.unsafe_get b !pos) in
    incr pos;
    let peer =
      if tag >= 1 && tag <= 6 then Codec.unzigzag (read_varint ())
      else if tag = 0 || tag = 7 then no_peer
      else failwith (Printf.sprintf "Arena: unknown kind tag %d" tag)
    in
    let origin = Codec.unzigzag (read_varint ()) in
    let seq = Codec.unzigzag (read_varint ()) in
    push_row t ~node ~tag ~peer ~origin ~pkt_seq:seq ~true_time:Float.nan
      ~gseq:(-1)
  done;
  let decoded = t.len - n0 in
  Refill_obs.Metrics.Counter.inc ~by:decoded c_decoded_rows;
  decoded

let decode_segment_into t b =
  let blen = Bytes.length b in
  let pos = ref 0 in
  let read_varint () =
    let shift = ref 0 and acc = ref 0 and cont = ref true in
    while !cont do
      if !shift > 56 then failwith "Arena: varint overflow (>63 bits)";
      if !pos >= blen then failwith "Arena: truncated varint";
      let byte = Char.code (Bytes.unsafe_get b !pos) in
      incr pos;
      acc := !acc lor ((byte land 0x7f) lsl !shift);
      if byte land 0x80 = 0 then cont := false else shift := !shift + 7
    done;
    !acc
  in
  let count = read_varint () in
  if count < 0 || count > blen then
    failwith "Arena: implausible segment count";
  reserve t count;
  for _ = 1 to count do
    let node = Codec.unzigzag (read_varint ()) in
    if !pos >= blen then failwith "Arena: truncated record";
    let tag = Char.code (Bytes.unsafe_get b !pos) in
    incr pos;
    let peer =
      if tag >= 1 && tag <= 6 then Codec.unzigzag (read_varint ())
      else if tag = 0 || tag = 7 then no_peer
      else failwith (Printf.sprintf "Arena: unknown kind tag %d" tag)
    in
    let origin = Codec.unzigzag (read_varint ()) in
    let seq = Codec.unzigzag (read_varint ()) in
    push_row t ~node ~tag ~peer ~origin ~pkt_seq:seq ~true_time:Float.nan
      ~gseq:(-1)
  done;
  if !pos <> blen then failwith "Arena: trailing bytes in segment";
  Refill_obs.Metrics.Counter.inc ~by:count c_decoded_rows;
  count

(* -- Per-packet index over rows (the column analogue of Collected). ------ *)

module Packets = struct
  (* Same dense-2D-plus-fallback shape as Collected's index, but the
     buckets hold arena row indices instead of record pointers, and the
     node grouping ([node_rows]) replaces [Collected.node_log]. *)
  type 'a rows = { mutable by_origin : 'a array array }

  type t = {
    p_arena : arena;
    p_n_nodes : int;
    p_keys : (int * int) list;
    p_rows : int array rows;
    p_fallback : (int * int, int array) Hashtbl.t;
    p_node_rows : int array array;
  }

  let sparse_limit = 1 lsl 28

  let dense ~origin ~seq =
    origin >= 0 && origin < sparse_limit && seq >= 0 && seq < sparse_limit

  let row_get (rows : 'a rows) ~absent origin seq =
    let by_origin = rows.by_origin in
    if origin >= Array.length by_origin then absent
    else
      let row = by_origin.(origin) in
      if seq >= Array.length row then absent else row.(seq)

  let row_set (rows : 'a rows) ~absent origin seq v =
    let by_origin = rows.by_origin in
    let by_origin =
      if origin < Array.length by_origin then by_origin
      else begin
        let grown =
          Array.make (max (origin + 1) (2 * Array.length by_origin)) [||]
        in
        Array.blit by_origin 0 grown 0 (Array.length by_origin);
        rows.by_origin <- grown;
        grown
      end
    in
    let row = by_origin.(origin) in
    let row =
      if seq < Array.length row then row
      else begin
        let grown =
          Array.make (max (seq + 1) (max 64 (2 * Array.length row))) absent
        in
        Array.blit row 0 grown 0 (Array.length row);
        by_origin.(origin) <- grown;
        grown
      end
    in
    row.(seq) <- v

  let build (a : arena) ~n_nodes =
    if n_nodes <= 0 then invalid_arg "Arena.Packets.build: n_nodes <= 0";
    let n = a.len in
    (* Node grouping: rows of each node in arena (= file/write) order,
       exactly the per-node log order [Collected.node_log] exposes. *)
    let node_count = Array.make n_nodes 0 in
    for i = 0 to n - 1 do
      let nd = Bigarray.Array1.unsafe_get a.nodes i in
      if nd < 0 || nd >= n_nodes then
        failwith "Arena: record node out of range";
      node_count.(nd) <- node_count.(nd) + 1
    done;
    let node_rows = Array.map (fun c -> Array.make c 0) node_count in
    let node_fill = Array.make n_nodes 0 in
    for i = 0 to n - 1 do
      let nd = Bigarray.Array1.unsafe_get a.nodes i in
      node_rows.(nd).(node_fill.(nd)) <- i;
      node_fill.(nd) <- node_fill.(nd) + 1
    done;
    (* Packet buckets, filled in node-scan order (nodes ascending, each
       node's rows in order) — the order [Collected.packet_records]
       guarantees and the reconstruction depends on.  Two counted passes,
       the counts doubling as fill cursors. *)
    let counts : int rows = { by_origin = [||] } in
    let fb_counts : (int * int, int ref) Hashtbl.t = Hashtbl.create 8 in
    let scan f = Array.iter (fun rows -> Array.iter f rows) node_rows in
    scan (fun i ->
        let origin = Bigarray.Array1.unsafe_get a.origins i
        and seq = Bigarray.Array1.unsafe_get a.seqs i in
        if dense ~origin ~seq then
          row_set counts ~absent:0 origin seq
            (row_get counts ~absent:0 origin seq + 1)
        else
          match Hashtbl.find_opt fb_counts (origin, seq) with
          | Some c -> incr c
          | None -> Hashtbl.add fb_counts (origin, seq) (ref 1));
    let buckets : int array rows = { by_origin = [||] } in
    let fallback = Hashtbl.create (max 8 (Hashtbl.length fb_counts)) in
    scan (fun i ->
        let origin = Bigarray.Array1.unsafe_get a.origins i
        and seq = Bigarray.Array1.unsafe_get a.seqs i in
        if dense ~origin ~seq then begin
          let arr =
            match row_get buckets ~absent:[||] origin seq with
            | [||] ->
                let c = row_get counts ~absent:0 origin seq in
                let arr = Array.make c 0 in
                row_set buckets ~absent:[||] origin seq arr;
                row_set counts ~absent:0 origin seq 0;
                arr
            | arr -> arr
          in
          let fill = row_get counts ~absent:0 origin seq in
          arr.(fill) <- i;
          row_set counts ~absent:0 origin seq (fill + 1)
        end
        else begin
          let cr = Hashtbl.find fb_counts (origin, seq) in
          let arr =
            match Hashtbl.find_opt fallback (origin, seq) with
            | Some arr -> arr
            | None ->
                let arr = Array.make !cr 0 in
                Hashtbl.add fallback (origin, seq) arr;
                cr := 0;
                arr
          in
          arr.(!cr) <- i;
          incr cr
        end);
    let keys_rev = ref [] in
    Array.iteri
      (fun origin row ->
        Array.iteri
          (fun seq (arr : int array) ->
            if Array.length arr > 0 then keys_rev := (origin, seq) :: !keys_rev)
          row)
      buckets.by_origin;
    let fallback_keys =
      Hashtbl.fold (fun key _ acc -> key :: acc) fallback []
    in
    let keys =
      match fallback_keys with
      | [] -> List.rev !keys_rev
      | fk -> List.merge compare (List.rev !keys_rev) (List.sort compare fk)
    in
    {
      p_arena = a;
      p_n_nodes = n_nodes;
      p_keys = keys;
      p_rows = buckets;
      p_fallback = fallback;
      p_node_rows = node_rows;
    }

  let arena p = p.p_arena

  let n_nodes p = p.p_n_nodes

  let keys p = p.p_keys

  let node_rows p node = p.p_node_rows.(node)

  let packet_rows p ~origin ~seq =
    if dense ~origin ~seq then row_get p.p_rows ~absent:[||] origin seq
    else
      match Hashtbl.find_opt p.p_fallback (origin, seq) with
      | Some arr -> arr
      | None -> [||]
end

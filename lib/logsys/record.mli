(** Event records — the concrete instantiation of the paper's
    [E = (V, L, I)] tuples for the collection network.

    [kind] is the event type [V] together with its related information [I]
    (the peer node of the link operation); the recording node is the
    location [L].  Records carry the packet identity [(origin, pkt_seq)]
    because that is what CitySee logs key on and what lets REFILL group
    events per packet.  [true_time] is simulator ground truth: it never
    reaches REFILL (logs are unsynchronized), it only serves evaluation. *)

type kind =
  | Gen  (** Application layer generated the packet (recorded at origin). *)
  | Recv of { from : Net.Packet.node_id }
      (** Packet accepted and passed up the stack; recorded on the
          receiver. *)
  | Dup of { from : Net.Packet.node_id }
      (** Duplicate detected and discarded; recorded on the receiver. *)
  | Overflow of { from : Net.Packet.node_id }
      (** Forwarding queue full, packet discarded; recorded on the
          receiver. *)
  | Trans of { to_ : Net.Packet.node_id }
      (** Unicast transmission handed to the MAC; recorded on the sender.
          Logged once per MAC exchange, not per retransmission attempt. *)
  | Ack_recvd of { to_ : Net.Packet.node_id }
      (** Hardware ACK received; recorded on the sender. *)
  | Retx_timeout of { to_ : Net.Packet.node_id }
      (** Retransmission budget exhausted, packet dropped; recorded on the
          sender. *)
  | Deliver
      (** Sink pushed the packet over the serial link to the base station
          successfully; recorded on the sink. *)

type t = {
  node : Net.Packet.node_id;  (** Where the record was written (L). *)
  kind : kind;
  origin : Net.Packet.node_id;
  pkt_seq : int;
  true_time : float;  (** Ground truth; hidden from reconstruction. *)
  gseq : int;
      (** Ground-truth global write sequence — breaks timestamp ties in the
          reference flow. Hidden from reconstruction like [true_time]. *)
}

val kind_name : kind -> string
(** Short stable name: ["gen"], ["recv"], ["dup"], ["overflow"], ["trans"],
    ["ack"], ["timeout"], ["deliver"]. *)

val peer : t -> Net.Packet.node_id option
(** The other endpoint of a link event; [None] for [Gen]/[Deliver]. *)

val link : t -> (Net.Packet.node_id * Net.Packet.node_id) option
(** [(sender, receiver)] of the underlying link operation, regardless of
    which side recorded it; [None] for [Gen]/[Deliver]. *)

val packet_key : t -> Net.Packet.node_id * int
(** [(origin, pkt_seq)] — the per-packet grouping key. *)

val kind_equal : kind -> kind -> bool

val equal : t -> t -> bool
(** Field-wise structural equality, with a physical-equality fast path for
    the common case of comparing a record against itself flowing back out
    of the pipeline.  The ground-truth fields participate: [gseq] by [=]
    and [true_time] with [nan] equal to [nan] (decoded records carry
    [true_time = nan]), so [equal] agrees with polymorphic [compare _ _ = 0]
    on every record the system produces. *)

val is_sender_side : t -> bool
(** Whether the record was written by the sending side of a link operation
    ([Trans]/[Ack_recvd]/[Retx_timeout]); [Gen] and [Deliver] count as
    sender-side bookkeeping of the local node. *)

val pp : Format.formatter -> t -> unit
(** Paper-style rendering, e.g. ["1-2 trans@1"] for a [Trans] from node 1 to
    node 2 recorded on node 1. *)

val to_string : t -> string

val compare_by_time : t -> t -> int
(** Ground-truth chronological order: [true_time], ties by [gseq]. *)

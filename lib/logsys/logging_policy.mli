(** Logging policies: which event types do nodes record at all?

    The paper's future work asks for "more efficient and effective logging
    methods" — log statements cost flash, radio (when collected in-band)
    and energy, so a deployment might drop some of them.  A policy selects
    the event kinds that are logged; applying it to a collected snapshot
    simulates a deployment that never compiled the other log statements in.
    The logging-policy experiment measures what each event type contributes
    to reconstruction quality. *)

type t

val all : t
(** Log every event kind (the paper's deployment). *)

val only : string list -> t
(** Keep only the kinds named (names as {!Record.kind_name}: "gen", "recv",
    "dup", "overflow", "trans", "ack", "timeout", "deliver").
    @raise Invalid_argument on an unknown name. *)

val without : string list -> t
(** Log everything except the kinds named.
    @raise Invalid_argument on an unknown name. *)

val kind_names : string list
(** All valid kind names. *)

val logs : t -> Record.kind -> bool

val records_kind : t -> string -> bool
(** @raise Invalid_argument on an unknown name. *)

val apply : t -> Collected.t -> Collected.t
(** Filtered copy of the snapshot: records of unlogged kinds vanish from
    every node's log, order otherwise preserved. *)

val describe : t -> string
(** Human-readable summary, e.g. ["all"] or ["without ack, timeout"]. *)

(** Plain-text serialization of collected logs and ground truth.

    A dump holds one collected-log snapshot (per-node logs, write order) and
    optionally the simulator's ground-truth packet fates, in a line-oriented
    format that diffs and greps well:

    {v
    # refill-log v1
    # nodes 100
    # sink 0
    r <node> <kind> <peer|-> <origin> <seq> <time> <gseq>
    ...
    t <origin> <seq> <cause> <loss-node|-> <generated> <resolved> <path,csv>
    v}

    Used by the CLI to hand logs between `simulate` and `analyze` runs. *)

type dump = {
  n_nodes : int;
  sink : Net.Packet.node_id;
  collected : Collected.t;
  truth : Truth.t option;
}

val save :
  out_channel ->
  sink:Net.Packet.node_id ->
  ?truth:Truth.t ->
  Collected.t ->
  unit

val save_file :
  string -> sink:Net.Packet.node_id -> ?truth:Truth.t -> Collected.t -> unit

val load : in_channel -> dump
(** @raise Failure on a malformed dump (bad header, unknown kind/cause,
    wrong field count). *)

val load_file : string -> dump

val record_to_line : Record.t -> string
(** The [r ...] line for one record (without trailing newline). *)

val record_of_line : string -> Record.t
(** @raise Failure on malformed input. *)

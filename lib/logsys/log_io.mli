(** Plain-text serialization of collected logs and ground truth.

    A dump holds one collected-log snapshot (per-node logs, write order) and
    optionally the simulator's ground-truth packet fates, in a line-oriented
    format that diffs and greps well:

    {v
    # refill-log v1
    # nodes 100
    # sink 0
    r <node> <kind> <peer|-> <origin> <seq> <time> <gseq>
    ...
    t <origin> <seq> <cause> <loss-node|-> <generated> <resolved> <path,csv>
    v}

    Used by the CLI to hand logs between `simulate` and `analyze` runs. *)

type dump = {
  n_nodes : int;
  sink : Net.Packet.node_id;
  collected : Collected.t;
  truth : Truth.t option;
}

val save :
  out_channel ->
  sink:Net.Packet.node_id ->
  ?truth:Truth.t ->
  ?time_order:bool ->
  Collected.t ->
  unit
(** Write a dump.  Records go node-major by default; [~time_order:true]
    emits them in true-time arrival order ({!Collected.merged_by_time})
    instead — the shape streaming readers ({!Seg}) want, since node-major
    order would make nearly every packet look still-in-flight. *)

val save_file :
  string ->
  sink:Net.Packet.node_id ->
  ?truth:Truth.t ->
  ?time_order:bool ->
  Collected.t ->
  unit

val load : in_channel -> dump
(** @raise Failure on a malformed dump (bad header, unknown kind/cause,
    wrong field count). *)

val load_file : string -> dump

val record_to_line : Record.t -> string
(** The [r ...] line for one record (without trailing newline). *)

val record_of_line : string -> Record.t
(** @raise Failure on malformed input. *)

val record_to_line_exact : Record.t -> string
(** Like {!record_to_line} but with the time field in hexadecimal float
    notation ([%h]), so {!record_of_line} recovers the record bit-exactly
    (including [nan] times).  Checkpoints use this; ordinary dumps keep the
    human-readable [%.6f] form. *)

(** Segmented (incremental) reading of a dump: the same on-disk format as
    {!load}, consumed chunk-by-chunk so a streaming pipeline never holds
    the whole trace.  Truth ([t ...]) and comment lines are skipped. *)
module Seg : sig
  type reader

  val of_channel : in_channel -> reader
  (** Parse the three header lines and position the reader at the first
      record.  The channel stays owned by the caller.
      @raise Failure on a malformed header. *)

  val n_nodes : reader -> int

  val sink : reader -> Net.Packet.node_id

  val read : reader -> int
  (** Records returned (or skipped) so far — the stream position of the
      reader, matching what a streaming consumer counts as processed. *)

  val next : reader -> max_records:int -> Record.t array option
  (** Up to [max_records] further records, in file order; [None] at end of
      input.  @raise Failure on a malformed line, [Invalid_argument] if
      [max_records <= 0]. *)

  val skip : reader -> int -> int
  (** [skip r n] discards up to [n] records and returns how many were
      actually skipped (fewer only at end of input) — how a resumed
      streaming run fast-forwards past already-processed records. *)
end

(** Mmap-backed segmented reading: the same dump format and chunked
    contract as {!Seg}, but the file is memory-mapped and record lines
    decode in place straight into {!Arena} columns — no channel
    buffering, no per-line strings, no per-record allocation (except the
    time token, parsed by [float_of_string] so times load bit-identically
    to {!record_of_line}).  This is the [--mmap] ingest path. *)
module Mseg : sig
  type reader

  val open_file : string -> reader
  (** Map the file and parse the three header lines.  The file descriptor
      is closed before returning (the mapping persists until the reader
      is collected).
      @raise Failure on a malformed header; [Unix.Unix_error] when the
      file cannot be opened. *)

  val n_nodes : reader -> int

  val sink : reader -> Net.Packet.node_id

  val read : reader -> int
  (** Records decoded (or skipped) so far, like {!Seg.read}. *)

  val next_into : reader -> Arena.t -> max_records:int -> int
  (** Decode up to [max_records] further records into the arena (appended
      as rows); returns how many were appended — [0] only at end of
      input.  Truth and comment lines are skipped.
      @raise Failure on a malformed or out-of-node-range record line,
      [Invalid_argument] if [max_records <= 0]. *)

  val skip : reader -> int -> int
  (** [skip r n] fast-forwards past up to [n] record lines without
      decoding them (they are not validated beyond line classification)
      and returns how many were skipped — how a resumed [--mmap] run
      fast-forwards, mirroring {!Seg.skip}. *)
end

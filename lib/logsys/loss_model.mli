(** Log lossiness injection.

    The paper's central premise is that local logs are incomplete: records
    are lost to write failures, node reboots wipe buffers, the bounded ring
    keeps only recent history, and log *collection* over the lossy network
    drops whole chunks.  This module applies those four mechanisms to a
    node's log, deterministically under a supplied RNG.  Only removal ever
    happens — order and content of surviving records are untouched. *)

type config = {
  write_loss : float;  (** iid probability each record failed to be written. *)
  node_wipe : float;
      (** Probability the node's entire log is lost (node failure before
          collection). *)
  tail_wipe : float;
      (** Probability a node rebooted and lost a random suffix of its log
          (uncommitted RAM buffer). *)
  chunk_size : int;
      (** Records per collection chunk (one log packet's worth). *)
  chunk_loss : float;
      (** iid probability each chunk was lost during collection over CTP. *)
  ring_capacity : int option;
      (** When [Some k], only the last [k] written records survive. *)
}

val none : config
(** Lossless configuration. *)

val default : config
(** Moderate lossiness: 2 % write loss, 1 % node wipe, 5 % tail wipe,
    chunks of 8 with 5 % chunk loss, no ring bound. *)

val uniform : float -> config
(** [uniform p] drops each record independently with probability [p] and
    nothing else — the knob used by the accuracy-sweep experiment. *)

val validate : config -> unit
(** @raise Invalid_argument if any probability is outside [\[0,1\]] or
    [chunk_size <= 0]. *)

val apply : config -> Prelude.Rng.t -> Record.t array -> Record.t array
(** Lossified copy of one node's log (order preserved). *)

val apply_all :
  config -> Prelude.Rng.t -> Record.t array array -> Record.t array array
(** Apply per node; node [i] uses a stream split from the master RNG so the
    outcome does not depend on array traversal internals. *)

(** Collected logs — the input REFILL actually sees.

    A snapshot of every node's (possibly lossified) log.  Provides the
    per-packet view the inference engines consume: for one packet, each
    node's surviving records in local write order.  No global timestamps
    are exposed. *)

type t

val of_node_logs : Record.t array array -> t
(** Index = node id. The arrays are not copied; callers hand over
    ownership. *)

val of_logger : Logger.t -> t
(** Lossless snapshot of a live log store. *)

val lossify : Loss_model.config -> Prelude.Rng.t -> t -> t
(** Apply a loss model to every node's log; the input is unchanged. *)

val n_nodes : t -> int

val node_log : t -> Net.Packet.node_id -> Record.t array

val total : t -> int

val packet_keys : t -> (Net.Packet.node_id * int) list
(** Distinct [(origin, seq)] packet keys appearing anywhere, sorted.
    Backed by a per-packet index built once per snapshot. *)

val packet_records : t -> origin:Net.Packet.node_id -> seq:int -> Record.t array
(** One packet's surviving records, flat, in node-scan order: nodes
    ascending, each node's records contiguous in local write order.  The
    array is shared with the index — callers must not mutate it.  [[||]]
    for unknown packets.  This is the zero-copy view the reconstruction
    hot path consumes; {!events_of_packet} derives the grouped view from
    it. *)

val events_of_packet :
  t ->
  origin:Net.Packet.node_id ->
  seq:int ->
  (Net.Packet.node_id * Record.t list) list
(** Per-node surviving records of one packet, each list in local log order;
    nodes with no records for the packet are omitted. Sorted by node id. *)

val merged_concat : t -> Record.t list
(** All records, node 0's log then node 1's, etc. — a valid merge (per-node
    order preserved) with no cross-node information, the adversarial input
    of the paper's step 1. *)

val merged_by_time : t -> Record.t array
(** All records in true-time order ([Record.compare_by_time]; stable, so
    ties keep node-scan order).  This is the arrival-order view a streaming
    consumer would see — the order {!Log_io.save} emits under
    [~time_order:true] so the {!Refill.Stream} frontier stays small.  Uses
    ground-truth timestamps, so it is a simulator-side convenience, not
    something the reconstruction may consume. *)

val merged_round_robin : t -> Record.t list
(** Interleave one record per node per round — another valid merge used to
    check order-insensitivity of the reconstruction. *)

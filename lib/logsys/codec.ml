let c_encoded_bytes =
  Refill_obs.Metrics.Counter.v "logsys_codec_encoded_bytes_total"
    ~help:"Bytes produced when encoding node logs for transport."

let c_decoded_records =
  Refill_obs.Metrics.Counter.v "logsys_codec_decoded_records_total"
    ~help:"Records recovered when decoding transported logs."

(* Kind tags: stable on-disk values. *)
let tag_of_kind (kind : Record.kind) =
  match kind with
  | Gen -> 0
  | Recv _ -> 1
  | Dup _ -> 2
  | Overflow _ -> 3
  | Trans _ -> 4
  | Ack_recvd _ -> 5
  | Retx_timeout _ -> 6
  | Deliver -> 7

let peer_of_kind (kind : Record.kind) =
  match kind with
  | Gen | Deliver -> None
  | Recv { from } | Dup { from } | Overflow { from } -> Some from
  | Trans { to_ } | Ack_recvd { to_ } | Retx_timeout { to_ } -> Some to_

let kind_of_tag tag peer : Record.kind =
  let need_peer name =
    match peer with
    | Some p -> p
    | None -> failwith ("Codec: missing peer for " ^ name)
  in
  match tag with
  | 0 -> Gen
  | 1 -> Recv { from = need_peer "recv" }
  | 2 -> Dup { from = need_peer "dup" }
  | 3 -> Overflow { from = need_peer "overflow" }
  | 4 -> Trans { to_ = need_peer "trans" }
  | 5 -> Ack_recvd { to_ = need_peer "ack" }
  | 6 -> Retx_timeout { to_ = need_peer "timeout" }
  | 7 -> Deliver
  | t -> failwith (Printf.sprintf "Codec: unknown kind tag %d" t)

(* LEB128 unsigned varints. Negative values (the unknown-peer -1) are
   zig-zag mapped first.  The mapping doubles its argument, so only ints
   in [-max_int/2 - 1, max_int/2] survive the round trip; anything larger
   would silently wrap and corrupt the stream, so encoders reject it —
   the encode-side mirror of [read_varint]'s >63-bit guard. *)
let zigzag n =
  if n > max_int / 2 || n < -(max_int / 2) - 1 then
    failwith (Printf.sprintf "Codec: zigzag value out of range: %d" n);
  if n >= 0 then 2 * n else (-2 * n) - 1

(* [-(z / 2) - 1], not [-((z + 1) / 2)]: for [z = max_int] the latter's
   increment wraps to [min_int] and flips the sign of the result. *)
let unzigzag z = if z land 1 = 0 then z / 2 else -(z / 2) - 1

let rec write_varint_loop buf v =
  if v < 0x80 then Buffer.add_char buf (Char.chr v)
  else begin
    Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
    write_varint_loop buf (v lsr 7)
  end

let write_varint buf v =
  (* A negative input would otherwise die many iterations deep with
     [Char.chr]'s [Invalid_argument]; fail fast with a Codec error. *)
  if v < 0 then
    failwith (Printf.sprintf "Codec: varint of negative value: %d" v);
  write_varint_loop buf v

let read_varint b pos =
  let len = Bytes.length b in
  let rec go pos shift acc =
    (* An OCaml int holds 63 bits, i.e. at most 9 payload groups (shifts
       0..56).  A continuation byte at shift 63 would silently discard
       bits, so malformed/hostile input is rejected instead. *)
    if shift > 56 then failwith "Codec: varint overflow (>63 bits)";
    if pos >= len then failwith "Codec: truncated varint";
    let byte = Char.code (Bytes.get b pos) in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

let varint_size v =
  let rec go v n = if v < 0x80 then n else go (v lsr 7) (n + 1) in
  go (max v 0) 1

let encode_record buf (r : Record.t) =
  Buffer.add_char buf (Char.chr (tag_of_kind r.kind));
  (match peer_of_kind r.kind with
  | Some p -> write_varint buf (zigzag p)
  | None -> ());
  write_varint buf (zigzag r.origin);
  write_varint buf (zigzag r.pkt_seq)

let decode_record ~node b ~pos =
  if pos >= Bytes.length b then failwith "Codec: truncated record";
  let tag = Char.code (Bytes.get b pos) in
  let pos = pos + 1 in
  let peer, pos =
    (* Tags 1–6 carry a peer. *)
    if tag >= 1 && tag <= 6 then begin
      let z, pos = read_varint b pos in
      (Some (unzigzag z), pos)
    end
    else (None, pos)
  in
  let zorigin, pos = read_varint b pos in
  let zseq, pos = read_varint b pos in
  let record : Record.t =
    {
      node;
      kind = kind_of_tag tag peer;
      origin = unzigzag zorigin;
      pkt_seq = unzigzag zseq;
      true_time = Float.nan;
      gseq = -1;
    }
  in
  (record, pos)

let encode_log log =
  let buf = Buffer.create (8 * Array.length log) in
  Array.iter (encode_record buf) log;
  let b = Buffer.to_bytes buf in
  Refill_obs.Metrics.Counter.inc ~by:(Bytes.length b) c_encoded_bytes;
  b

let decode_log ~node b =
  let len = Bytes.length b in
  if len = 0 then [||]
  else begin
    (* Every record costs at least 3 bytes (tag + origin + seq varints), so
       [len / 3 + 1] slots always suffice — preallocate once and trim,
       instead of cons-ing a list only to copy it into an array. *)
    let first, pos = decode_record ~node b ~pos:0 in
    let out = Array.make ((len / 3) + 1) first in
    let count = ref 1 in
    let pos = ref pos in
    while !pos < len do
      let r, next = decode_record ~node b ~pos:!pos in
      out.(!count) <- r;
      incr count;
      pos := next
    done;
    let records = if !count = Array.length out then out else Array.sub out 0 !count in
    Refill_obs.Metrics.Counter.inc ~by:!count c_decoded_records;
    records
  end

(* Segments are cross-node slices of the collection stream, so unlike
   [encode_log] each record must carry its recording node. *)
let encode_segment records =
  let buf = Buffer.create (8 * Array.length records + 4) in
  write_varint buf (Array.length records);
  Array.iter
    (fun (r : Record.t) ->
      write_varint buf (zigzag r.node);
      encode_record buf r)
    records;
  let b = Buffer.to_bytes buf in
  Refill_obs.Metrics.Counter.inc ~by:(Bytes.length b) c_encoded_bytes;
  b

(* Frame receivers peek the count before committing to a full decode: a
   frame whose header promises more records than its bytes could possibly
   hold is rejected without touching the rest of the payload. *)
let segment_record_count b =
  let count, _ = read_varint b 0 in
  if count < 0 || count > Bytes.length b then
    failwith "Codec: implausible segment count";
  count

let decode_segment b =
  let count, pos = read_varint b 0 in
  if count < 0 || count > Bytes.length b then
    failwith "Codec: implausible segment count";
  let pos = ref pos in
  let out =
    Array.init count (fun _ ->
        let znode, p = read_varint b !pos in
        let r, p = decode_record ~node:(unzigzag znode) b ~pos:p in
        pos := p;
        r)
  in
  if !pos <> Bytes.length b then failwith "Codec: trailing bytes in segment";
  Refill_obs.Metrics.Counter.inc ~by:count c_decoded_records;
  out

let encoded_size (r : Record.t) =
  1
  + (match peer_of_kind r.kind with
    | Some p -> varint_size (zigzag p)
    | None -> 0)
  + varint_size (zigzag r.origin)
  + varint_size (zigzag r.pkt_seq)

let log_size log = Array.fold_left (fun acc r -> acc + encoded_size r) 0 log

(* One drop counter per loss mechanism, so a metrics dump shows where
   records went missing. *)
let dropped stage =
  Refill_obs.Metrics.Counter.v "logsys_records_dropped_total"
    ~help:"Log records destroyed by the loss model, by mechanism."
    ~labels:[ ("stage", stage) ]

let c_node_wipe = dropped "node_wipe"

let c_ring = dropped "ring_overflow"

let c_tail = dropped "tail_wipe"

let c_chunk = dropped "chunk_loss"

let c_write = dropped "write_loss"

type config = {
  write_loss : float;
  node_wipe : float;
  tail_wipe : float;
  chunk_size : int;
  chunk_loss : float;
  ring_capacity : int option;
}

let none =
  {
    write_loss = 0.;
    node_wipe = 0.;
    tail_wipe = 0.;
    chunk_size = 8;
    chunk_loss = 0.;
    ring_capacity = None;
  }

let default =
  {
    write_loss = 0.02;
    node_wipe = 0.01;
    tail_wipe = 0.05;
    chunk_size = 8;
    chunk_loss = 0.05;
    ring_capacity = None;
  }

let uniform p = { none with write_loss = p }

let check_p label p =
  if p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Loss_model: %s out of [0,1]" label)

let validate c =
  check_p "write_loss" c.write_loss;
  check_p "node_wipe" c.node_wipe;
  check_p "tail_wipe" c.tail_wipe;
  check_p "chunk_loss" c.chunk_loss;
  if c.chunk_size <= 0 then invalid_arg "Loss_model: chunk_size <= 0";
  match c.ring_capacity with
  | Some k when k <= 0 -> invalid_arg "Loss_model: ring_capacity <= 0"
  | _ -> ()

let apply config rng log =
  validate config;
  let count_drop counter before after =
    if before > after then
      Refill_obs.Metrics.Counter.inc ~by:(before - after) counter
  in
  if Prelude.Rng.bernoulli rng ~p:config.node_wipe then begin
    count_drop c_node_wipe (Array.length log) 0;
    [||]
  end
  else begin
    (* Ring bound: only the newest [k] records were still in the buffer. *)
    let log =
      match config.ring_capacity with
      | Some k when Array.length log > k ->
          count_drop c_ring (Array.length log) k;
          Array.sub log (Array.length log - k) k
      | _ -> log
    in
    (* Reboot: a random suffix never made it to stable storage. *)
    let log =
      if
        Array.length log > 0
        && Prelude.Rng.bernoulli rng ~p:config.tail_wipe
      then begin
        let keep = Prelude.Rng.int rng (Array.length log + 1) in
        count_drop c_tail (Array.length log) keep;
        Array.sub log 0 keep
      end
      else log
    in
    (* Collection: whole chunks lost in transit. *)
    let log =
      if config.chunk_loss > 0. then begin
        let kept = ref [] in
        let n = Array.length log in
        let i = ref 0 in
        while !i < n do
          let len = min config.chunk_size (n - !i) in
          if not (Prelude.Rng.bernoulli rng ~p:config.chunk_loss) then
            for j = !i to !i + len - 1 do
              kept := log.(j) :: !kept
            done;
          i := !i + len
        done;
        let survivors = Array.of_list (List.rev !kept) in
        count_drop c_chunk n (Array.length survivors);
        survivors
      end
      else log
    in
    (* Write failures: iid per record. *)
    if config.write_loss > 0. then begin
      let survivors =
        Array.of_list
          (Array.to_list log
          |> List.filter (fun _ ->
                 not (Prelude.Rng.bernoulli rng ~p:config.write_loss)))
      in
      count_drop c_write (Array.length log) (Array.length survivors);
      survivors
    end
    else log
  end

let apply_all config rng logs =
  Array.map
    (fun log ->
      let stream = Prelude.Rng.split rng in
      apply config stream log)
    logs

(** Flat column store for event records — the zero-copy ingest layer.

    Records live as packed int fields in parallel Bigarray columns (node,
    kind tag, peer, origin, seq, gseq) plus a float64 column for the
    ground-truth timestamp, instead of per-record heap allocations.  Bulk
    decoders append an encoded log or segment straight into the columns
    with no intermediate [Record.t]; the record API survives as a
    materializing view ({!get}), which yields a [Record.equal]-identical
    record for any row, so record-based and arena-based pipelines produce
    byte-identical output.

    API rule of thumb: hot loops index columns ({!node}, {!tag}, …, or
    {!equal_record}); anything that stores or prints an event
    materializes it once via {!get}.  Kind tags are the stable
    {!Codec.tag_of_kind} values, whose order equals
    [Refill.Protocol.label_rank] — consumers map tag → label / dense FSM
    id with one array read. *)

type t

type arena = t

type slice = { sl_base : t; sl_off : int; sl_len : int }
(** A contiguous row range [sl_off, sl_off + sl_len) of an arena — what
    streaming consumers feed chunk by chunk. *)

val create : ?capacity:int -> unit -> t
(** An empty arena; columns grow geometrically as rows are pushed. *)

val length : t -> int

val capacity : t -> int

val clear : t -> unit
(** Reset to zero rows, keeping the column storage for reuse (how a
    chunked reader avoids re-allocating per segment). *)

(** {2 Row accessors}

    Plain column reads; meaningful for rows [0 .. length - 1].  {!peer}
    is only meaningful for tags 1–6 (link kinds) and may legitimately be
    [-1] (the unknown-node sentinel); no-peer rows hold an unspecified
    poison value. *)

val node : t -> int -> int
val tag : t -> int -> int
val peer : t -> int -> int
val origin : t -> int -> int
val pkt_seq : t -> int -> int
val gseq : t -> int -> int
val true_time : t -> int -> float

val get : t -> int -> Record.t
(** Materialize row [i] as a record — [Record.equal]-identical to the
    record the row was built from.  @raise Invalid_argument out of
    bounds. *)

val equal_record : t -> int -> Record.t -> bool
(** [equal_record t i r] = [Record.equal (get t i) r], without
    materializing (NaN times compare equal, like [Record.equal]). *)

val push : t -> Record.t -> unit

val push_row :
  t ->
  node:int ->
  tag:int ->
  peer:int ->
  origin:int ->
  pkt_seq:int ->
  true_time:float ->
  gseq:int ->
  unit
(** Raw column append; [tag] must be a valid kind tag (0–7) and [peer]
    is ignored semantically for tags 0 and 7. *)

val of_records : Record.t array -> t

val to_records : t -> Record.t array

val slice : t -> off:int -> len:int -> slice
(** @raise Invalid_argument when the range exceeds [length]. *)

val slice_all : t -> slice

val slice_records : slice -> Record.t array
(** Materialize every row of a slice (convenience for record-based
    consumers like the incremental merge accumulator). *)

(** {2 Bulk decoding}

    The codec's wire formats decoded straight into columns — the
    zero-allocation ingest path.  Same failure semantics as
    {!Codec.decode_log}/{!Codec.decode_segment}: truncated input,
    >63-bit varints, unknown tags and trailing bytes all raise
    [Failure].  Decoded rows carry [true_time = nan], [gseq = -1], like
    the record decoders. *)

val decode_log_into : t -> node:int -> Bytes.t -> int
(** Append one node's encoded log ({!Codec.encode_log}); returns the
    number of rows appended. *)

val decode_segment_into : t -> Bytes.t -> int
(** Append a cross-node segment ({!Codec.encode_segment}); returns the
    number of rows appended. *)

(** {2 Per-packet index}

    The column analogue of {!Collected}: packet buckets hold arena row
    indices in node-scan order (nodes ascending, each node's rows in
    arena order), and {!node_rows} replaces [Collected.node_log].  Built
    once, read-only afterwards — safe to share across domains. *)
module Packets : sig
  type t

  val build : arena -> n_nodes:int -> t
  (** @raise Failure when a row's node is outside [0, n_nodes);
      [Invalid_argument] when [n_nodes <= 0]. *)

  val arena : t -> arena

  val n_nodes : t -> int

  val keys : t -> (int * int) list
  (** Distinct [(origin, seq)] keys, sorted — same contents and order as
      [Collected.packet_keys] over the same records. *)

  val node_rows : t -> int -> int array
  (** One node's rows in arena order — its log, as row indices. *)

  val packet_rows : t -> origin:int -> seq:int -> int array
  (** One packet's rows, node-scan order; [[||]] for unknown keys.
      Shared with the index — do not mutate. *)
end

(** Ground-truth packet fates recorded by the simulator.

    For every generated packet: its final outcome, the node where it died
    (if it died), its true hop path, and timing.  Reconstruction quality is
    scored against this table. *)

type fate = {
  cause : Cause.t;
  loss_node : Net.Packet.node_id option;
      (** Node at which the packet was lost; [None] when delivered. *)
  path : Net.Packet.node_id list;
      (** Nodes that accepted the packet, origin first, in true order. *)
  generated_at : float;
  resolved_at : float;  (** Delivery or loss time. *)
}

type t

val create : unit -> t

val record :
  t -> origin:Net.Packet.node_id -> seq:int -> fate -> unit
(** Register the final fate of a packet. Re-recording replaces (the last
    word wins — the simulator finalises each packet exactly once). *)

val find : t -> origin:Net.Packet.node_id -> seq:int -> fate option

val count : t -> int

val iter : t -> (Net.Packet.node_id * int -> fate -> unit) -> unit

val fold : t -> init:'a -> f:('a -> Net.Packet.node_id * int -> fate -> 'a) -> 'a

val cause_counts : t -> (Cause.t * int) list
(** Count per cause over all packets, in [Cause.all] order, zeros included. *)

val loss_count : t -> int

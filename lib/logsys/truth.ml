type fate = {
  cause : Cause.t;
  loss_node : Net.Packet.node_id option;
  path : Net.Packet.node_id list;
  generated_at : float;
  resolved_at : float;
}

type t = { table : (int * int, fate) Hashtbl.t }

let create () = { table = Hashtbl.create 1024 }

let record t ~origin ~seq fate = Hashtbl.replace t.table (origin, seq) fate

let find t ~origin ~seq = Hashtbl.find_opt t.table (origin, seq)

let count t = Hashtbl.length t.table

let iter t f = Hashtbl.iter (fun k v -> f k v) t.table

let fold t ~init ~f = Hashtbl.fold (fun k v acc -> f acc k v) t.table init

let cause_counts t =
  let counts = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ fate ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts fate.cause) in
      Hashtbl.replace counts fate.cause (c + 1))
    t.table;
  List.map
    (fun cause ->
      (cause, Option.value ~default:0 (Hashtbl.find_opt counts cause)))
    Cause.all

let loss_count t =
  Hashtbl.fold
    (fun _ fate acc -> if Cause.is_loss fate.cause then acc + 1 else acc)
    t.table 0

type t =
  | Delivered
  | Timeout_loss
  | Duplicate_loss
  | Overflow_loss
  | Received_loss
  | Acked_loss
  | Server_outage_loss
  | Unknown

let all =
  [
    Delivered;
    Timeout_loss;
    Duplicate_loss;
    Overflow_loss;
    Received_loss;
    Acked_loss;
    Server_outage_loss;
    Unknown;
  ]

let name = function
  | Delivered -> "delivered"
  | Timeout_loss -> "timeout"
  | Duplicate_loss -> "duplicate"
  | Overflow_loss -> "overflow"
  | Received_loss -> "received"
  | Acked_loss -> "acked"
  | Server_outage_loss -> "server-outage"
  | Unknown -> "unknown"

let of_name s = List.find_opt (fun c -> name c = s) all

let loss_causes =
  List.filter (function Delivered | Unknown -> false | _ -> true) all

let pp ppf t = Format.pp_print_string ppf (name t)

let equal a b = a = b

let compare a b = Stdlib.compare a b

let is_loss = function Delivered | Unknown -> false | _ -> true

(** Whole-network log store fed by the simulator.

    One append-only log per node (the node's local flash/RAM log) plus the
    complete ground-truth event trace.  Per-node order is exactly write
    order — the only ordering guarantee real logs give, and the only one
    REFILL assumes. *)

type t

val create : n_nodes:int -> t
(** @raise Invalid_argument if [n_nodes <= 0]. *)

val n_nodes : t -> int

val log : t -> Record.t -> unit
(** Append to the log of [record.node].
    @raise Invalid_argument if the node id is out of range. *)

val node_log : t -> Net.Packet.node_id -> Record.t array
(** Snapshot of one node's log, in write order. *)

val ground_truth : t -> Record.t list
(** Every record network-wide in true chronological order — the reference
    event flow the reconstruction is scored against. *)

val total : t -> int
(** Total records written. *)

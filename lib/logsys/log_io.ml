type dump = {
  n_nodes : int;
  sink : Net.Packet.node_id;
  collected : Collected.t;
  truth : Truth.t option;
}

let kind_fields (kind : Record.kind) =
  match kind with
  | Gen -> ("gen", None)
  | Recv { from } -> ("recv", Some from)
  | Dup { from } -> ("dup", Some from)
  | Overflow { from } -> ("overflow", Some from)
  | Trans { to_ } -> ("trans", Some to_)
  | Ack_recvd { to_ } -> ("ack", Some to_)
  | Retx_timeout { to_ } -> ("timeout", Some to_)
  | Deliver -> ("deliver", None)

let kind_of_fields name peer : Record.kind =
  match (name, peer) with
  | "gen", None -> Gen
  | "recv", Some from -> Recv { from }
  | "dup", Some from -> Dup { from }
  | "overflow", Some from -> Overflow { from }
  | "trans", Some to_ -> Trans { to_ }
  | "ack", Some to_ -> Ack_recvd { to_ }
  | "timeout", Some to_ -> Retx_timeout { to_ }
  | "deliver", None -> Deliver
  | _ -> failwith (Printf.sprintf "Log_io: malformed kind %S" name)

let peer_str = function None -> "-" | Some p -> string_of_int p

let peer_of_str = function "-" -> None | s -> Some (int_of_string s)

let record_to_line (r : Record.t) =
  let kind, peer = kind_fields r.kind in
  Printf.sprintf "r %d %s %s %d %d %.6f %d" r.node kind (peer_str peer)
    r.origin r.pkt_seq r.true_time r.gseq

(* Hex-float time field: %.6f loses bits, and a streaming checkpoint must
   round-trip records byte-exactly.  [float_of_string] in [record_of_line]
   accepts both forms (and "nan"), so exact lines load like ordinary
   ones. *)
let record_to_line_exact (r : Record.t) =
  let kind, peer = kind_fields r.kind in
  Printf.sprintf "r %d %s %s %d %d %h %d" r.node kind (peer_str peer) r.origin
    r.pkt_seq r.true_time r.gseq

let record_of_line line =
  match String.split_on_char ' ' line with
  | [ "r"; node; kind; peer; origin; seq; time; gseq ] ->
      ({
         node = int_of_string node;
         kind = kind_of_fields kind (peer_of_str peer);
         origin = int_of_string origin;
         pkt_seq = int_of_string seq;
         true_time = float_of_string time;
         gseq = int_of_string gseq;
       }
        : Record.t)
  | _ -> failwith (Printf.sprintf "Log_io: malformed record line %S" line)

let fate_to_line origin seq (fate : Truth.fate) =
  Printf.sprintf "t %d %d %s %s %.6f %.6f %s" origin seq
    (Cause.name fate.cause)
    (peer_str fate.loss_node)
    fate.generated_at fate.resolved_at
    (String.concat "," (List.map string_of_int fate.path))

let fate_of_line line =
  match String.split_on_char ' ' line with
  | [ "t"; origin; seq; cause; loss_node; generated; resolved; path ] ->
      let cause =
        match Cause.of_name cause with
        | Some c -> c
        | None -> failwith (Printf.sprintf "Log_io: unknown cause %S" cause)
      in
      let path =
        if path = "" then []
        else String.split_on_char ',' path |> List.map int_of_string
      in
      ( int_of_string origin,
        int_of_string seq,
        ({
           cause;
           loss_node = peer_of_str loss_node;
           path;
           generated_at = float_of_string generated;
           resolved_at = float_of_string resolved;
         }
          : Truth.fate) )
  | _ -> failwith (Printf.sprintf "Log_io: malformed truth line %S" line)

let save oc ~sink ?truth ?(time_order = false) collected =
  Printf.fprintf oc "# refill-log v1\n";
  Printf.fprintf oc "# nodes %d\n" (Collected.n_nodes collected);
  Printf.fprintf oc "# sink %d\n" sink;
  if time_order then
    (* Arrival-order dump: what a sink collecting in real time would see.
       Streaming readers want this order — node-major order forces the
       frontier to hold nearly the whole trace. *)
    Array.iter
      (fun r -> output_string oc (record_to_line r ^ "\n"))
      (Collected.merged_by_time collected)
  else
    for node = 0 to Collected.n_nodes collected - 1 do
      Array.iter
        (fun r -> output_string oc (record_to_line r ^ "\n"))
        (Collected.node_log collected node)
    done;
  match truth with
  | None -> ()
  | Some t ->
      Truth.iter t (fun (origin, seq) fate ->
          output_string oc (fate_to_line origin seq fate ^ "\n"))

let save_file path ~sink ?truth ?time_order collected =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> save oc ~sink ?truth ?time_order collected)

let header_value line prefix =
  match String.split_on_char ' ' line with
  | [ h; key; v ] when h = "#" && key = prefix -> Some (int_of_string v)
  | _ -> None

let load ic =
  let first = input_line ic in
  if first <> "# refill-log v1" then
    failwith (Printf.sprintf "Log_io: bad header %S" first);
  let n_nodes =
    match header_value (input_line ic) "nodes" with
    | Some n when n > 0 -> n
    | _ -> failwith "Log_io: missing nodes header"
  in
  let sink =
    match header_value (input_line ic) "sink" with
    | Some s -> s
    | None -> failwith "Log_io: missing sink header"
  in
  let logs_rev = Array.make n_nodes [] in
  let truth = Truth.create () in
  let has_truth = ref false in
  (try
     while true do
       let line = input_line ic in
       if String.length line = 0 then ()
       else if line.[0] = 'r' then begin
         let r = record_of_line line in
         if r.node < 0 || r.node >= n_nodes then
           failwith "Log_io: record node out of range";
         logs_rev.(r.node) <- r :: logs_rev.(r.node)
       end
       else if line.[0] = 't' then begin
         let origin, seq, fate = fate_of_line line in
         has_truth := true;
         Truth.record truth ~origin ~seq fate
       end
       else if line.[0] = '#' then ()
       else failwith (Printf.sprintf "Log_io: malformed line %S" line)
     done
   with End_of_file -> ());
  let node_logs =
    Array.map (fun l -> Array.of_list (List.rev l)) logs_rev
  in
  {
    n_nodes;
    sink;
    collected = Collected.of_node_logs node_logs;
    truth = (if !has_truth then Some truth else None);
  }

let load_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> load ic)

module Seg = struct
  type reader = {
    ic : in_channel;
    seg_n_nodes : int;
    seg_sink : int;
    mutable eof : bool;
    mutable seg_read : int;
  }

  let of_channel ic =
    let first = input_line ic in
    if first <> "# refill-log v1" then
      failwith (Printf.sprintf "Log_io: bad header %S" first);
    let seg_n_nodes =
      match header_value (input_line ic) "nodes" with
      | Some n when n > 0 -> n
      | _ -> failwith "Log_io: missing nodes header"
    in
    let seg_sink =
      match header_value (input_line ic) "sink" with
      | Some s -> s
      | None -> failwith "Log_io: missing sink header"
    in
    { ic; seg_n_nodes; seg_sink; eof = false; seg_read = 0 }

  let n_nodes r = r.seg_n_nodes

  let sink r = r.seg_sink

  let read r = r.seg_read

  (* Next record line, skipping comments, blanks and truth lines — a
     streaming consumer has no use for ground-truth fates. *)
  let rec next_record r =
    if r.eof then None
    else
      match input_line r.ic with
      | exception End_of_file ->
          r.eof <- true;
          None
      | line ->
          if String.length line = 0 then next_record r
          else if line.[0] = 'r' then begin
            let rec_ = record_of_line line in
            if rec_.node < 0 || rec_.node >= r.seg_n_nodes then
              failwith "Log_io: record node out of range";
            r.seg_read <- r.seg_read + 1;
            Some rec_
          end
          else if line.[0] = 't' || line.[0] = '#' then next_record r
          else failwith (Printf.sprintf "Log_io: malformed line %S" line)

  let next r ~max_records =
    if max_records <= 0 then invalid_arg "Log_io.Seg.next: max_records <= 0";
    match next_record r with
    | None -> None
    | Some first ->
        let out = Array.make max_records first in
        let count = ref 1 in
        while
          !count < max_records
          &&
          match next_record r with
          | Some rec_ ->
              out.(!count) <- rec_;
              incr count;
              true
          | None -> false
        do
          ()
        done;
        Some (if !count = max_records then out else Array.sub out 0 !count)

  let skip r n =
    let skipped = ref 0 in
    while !skipped < n && next_record r <> None do
      incr skipped
    done;
    !skipped
end

(* -- Mmap-backed segment reader ------------------------------------------ *)

(* Same on-disk format and chunked consumption contract as {!Seg}, but the
   file is memory-mapped ([Unix.map_file]) and record lines are parsed
   in place, decoding straight into arena columns: no input-channel
   buffering, no per-line strings, no per-record allocation except the
   time token (handed to [float_of_string] so the parse is bit-identical
   to {!record_of_line}'s). *)
module Mseg = struct
  type map = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  type reader = {
    map : map;
    mlen : int;
    mutable pos : int;
    mm_n_nodes : int;
    mm_sink : int;
    mutable mm_read : int;
  }

  let geti (m : map) i = Bigarray.Array1.unsafe_get m i

  let line_end m mlen pos =
    let i = ref pos in
    while !i < mlen && geti m !i <> '\n' do
      incr i
    done;
    !i

  let substring m a b = String.init (b - a) (fun i -> geti m (a + i))

  let malformed_line m a b =
    failwith (Printf.sprintf "Log_io: malformed line %S" (substring m a b))

  let open_file path =
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    let map, mlen =
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let size = (Unix.fstat fd).Unix.st_size in
          if size = 0 then failwith "Log_io: bad header \"\"";
          ( Bigarray.array1_of_genarray
              (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |]),
            size ))
    in
    (* The three header lines are parsed as strings — they are the only
       lines that ever materialize. *)
    let pos = ref 0 in
    let next_line () =
      let e = line_end map mlen !pos in
      let s = substring map !pos e in
      pos := e + 1;
      s
    in
    let first = next_line () in
    if first <> "# refill-log v1" then
      failwith (Printf.sprintf "Log_io: bad header %S" first);
    let mm_n_nodes =
      match header_value (next_line ()) "nodes" with
      | Some n when n > 0 -> n
      | _ -> failwith "Log_io: missing nodes header"
    in
    let mm_sink =
      match header_value (next_line ()) "sink" with
      | Some s -> s
      | None -> failwith "Log_io: missing sink header"
    in
    { map; mlen; pos = !pos; mm_n_nodes; mm_sink; mm_read = 0 }

  let n_nodes r = r.mm_n_nodes

  let sink r = r.mm_sink

  let read r = r.mm_read

  (* Decode one [r ...] line spanning [a, eol) into [arena].  Cursor-based
     field parsing; any shape violation reports the whole line, like
     {!record_of_line}. *)
  let parse_record_line r arena a eol =
    let m = r.map in
    let p = ref (a + 1) in
    let fail () = malformed_line m a eol in
    let expect_space () =
      if !p >= eol || geti m !p <> ' ' then fail ();
      incr p
    in
    let parse_int () =
      let neg = !p < eol && geti m !p = '-' in
      if neg then incr p;
      if !p >= eol then fail ();
      (match geti m !p with '0' .. '9' -> () | _ -> fail ());
      let v = ref 0 in
      let continue = ref true in
      while !continue && !p < eol do
        match geti m !p with
        | '0' .. '9' as c ->
            v := (!v * 10) + (Char.code c - Char.code '0');
            incr p
        | _ -> continue := false
      done;
      if neg then - !v else !v
    in
    let token_end () =
      let e = ref !p in
      while !e < eol && geti m !e <> ' ' do
        incr e
      done;
      !e
    in
    let tok_eq a b s =
      b - a = String.length s
      &&
      let rec go i = i >= String.length s || (geti m (a + i) = s.[i] && go (i + 1)) in
      go 0
    in
    expect_space ();
    let node = parse_int () in
    expect_space ();
    let ka = !p in
    let kb = token_end () in
    let tag =
      if tok_eq ka kb "gen" then 0
      else if tok_eq ka kb "recv" then 1
      else if tok_eq ka kb "dup" then 2
      else if tok_eq ka kb "overflow" then 3
      else if tok_eq ka kb "trans" then 4
      else if tok_eq ka kb "ack" then 5
      else if tok_eq ka kb "timeout" then 6
      else if tok_eq ka kb "deliver" then 7
      else fail ()
    in
    p := kb;
    expect_space ();
    (* Peer: "-" alone means none; "-3" is a negative peer. *)
    let no_peer =
      !p < eol && geti m !p = '-' && (!p + 1 >= eol || geti m (!p + 1) = ' ')
    in
    let peer =
      if no_peer then begin
        incr p;
        min_int
      end
      else parse_int ()
    in
    (* Kind/peer consistency, as [kind_of_fields] enforces. *)
    if tag = 0 || tag = 7 then begin
      if not no_peer then fail ()
    end
    else if no_peer then fail ();
    expect_space ();
    let origin = parse_int () in
    expect_space ();
    let seq = parse_int () in
    expect_space ();
    let ta = !p in
    let tb = token_end () in
    if tb = ta then fail ();
    let time =
      match float_of_string_opt (substring m ta tb) with
      | Some f -> f
      | None -> fail ()
    in
    p := tb;
    expect_space ();
    let gseq = parse_int () in
    if !p <> eol then fail ();
    if node < 0 || node >= r.mm_n_nodes then
      failwith "Log_io: record node out of range";
    Arena.push_row arena ~node ~tag ~peer ~origin ~pkt_seq:seq ~true_time:time
      ~gseq

  let next_into r arena ~max_records =
    if max_records <= 0 then
      invalid_arg "Log_io.Mseg.next_into: max_records <= 0";
    let count = ref 0 in
    while !count < max_records && r.pos < r.mlen do
      let a = r.pos in
      let eol = line_end r.map r.mlen a in
      (if eol > a then
         match geti r.map a with
         | 'r' ->
             parse_record_line r arena a eol;
             r.mm_read <- r.mm_read + 1;
             incr count
         | 't' | '#' -> ()
         | _ -> malformed_line r.map a eol);
      r.pos <- eol + 1
    done;
    !count

  (* Fast-forward without decoding: classify lines and count the record
     ones.  Skipped lines are not validated beyond their leading byte —
     a resumed run already processed them. *)
  let skip r n =
    let skipped = ref 0 in
    while !skipped < n && r.pos < r.mlen do
      let a = r.pos in
      let eol = line_end r.map r.mlen a in
      (if eol > a then
         match geti r.map a with
         | 'r' ->
             r.mm_read <- r.mm_read + 1;
             incr skipped
         | 't' | '#' -> ()
         | _ -> malformed_line r.map a eol);
      r.pos <- eol + 1
    done;
    !skipped
end

let c_written =
  Refill_obs.Metrics.Counter.v "logsys_records_written_total"
    ~help:"Log records written by nodes (pre-loss ground truth)."

type t = { logs : Record.t list ref array }

let create ~n_nodes =
  if n_nodes <= 0 then invalid_arg "Logger.create: n_nodes";
  { logs = Array.init n_nodes (fun _ -> ref []) }

let n_nodes t = Array.length t.logs

let log t (record : Record.t) =
  if record.node < 0 || record.node >= Array.length t.logs then
    invalid_arg "Logger.log: node id out of range";
  let cell = t.logs.(record.node) in
  Refill_obs.Metrics.Counter.inc c_written;
  cell := record :: !cell

let node_log t node =
  let l = !(t.logs.(node)) in
  let a = Array.of_list l in
  (* The list is newest-first; reverse into write order. *)
  let n = Array.length a in
  Array.init n (fun i -> a.(n - 1 - i))

let ground_truth t =
  Array.to_list t.logs
  |> List.concat_map (fun cell -> !cell)
  |> List.sort Record.compare_by_time

let total t = Array.fold_left (fun acc cell -> acc + List.length !cell) 0 t.logs

(* Origins are node ids and seqs are dense per-origin counters, so the
   per-packet index is a 2D array — origin-major, grown on demand — rather
   than a hash table: at CitySee scale the build loop runs millions of
   times and two dependent array reads beat any hashing.  Keys with a
   negative or absurdly large component (never produced by the loggers,
   but possible in hand-built logs) fall back to a side table. *)
type 'a rows = { mutable by_origin : 'a array array }

type index = {
  records : Record.t array rows;
      (* origin -> seq -> the packet's records, node-scan order: nodes
         ascending, each node's records contiguous in write order *)
  fallback : (int * int, Record.t array) Hashtbl.t;
  keys : (int * int) list;  (* every packet key, sorted *)
}

type t = {
  node_logs : Record.t array array;
  (* Lazily built per-packet index, finalized (keys sorted) on first
     use. *)
  mutable index : index option;
}

let of_node_logs node_logs = { node_logs; index = None }

(* Dense-index eligibility: loggers emit small nonnegative origins and
   dense seqs; anything else is exotic enough for the fallback table. *)
let sparse_limit = 1 lsl 28

let dense ~origin ~seq =
  origin >= 0 && origin < sparse_limit && seq >= 0 && seq < sparse_limit

let row_get (rows : 'a rows) ~absent origin seq =
  let by_origin = rows.by_origin in
  if origin >= Array.length by_origin then absent
  else
    let row = by_origin.(origin) in
    if seq >= Array.length row then absent else row.(seq)

let row_set (rows : 'a rows) ~absent origin seq v =
  let by_origin = rows.by_origin in
  let by_origin =
    if origin < Array.length by_origin then by_origin
    else begin
      let grown =
        Array.make (max (origin + 1) (2 * Array.length by_origin)) [||]
      in
      Array.blit by_origin 0 grown 0 (Array.length by_origin);
      rows.by_origin <- grown;
      grown
    end
  in
  let row = by_origin.(origin) in
  let row =
    if seq < Array.length row then row
    else begin
      let grown =
        Array.make (max (seq + 1) (max 64 (2 * Array.length row))) absent
      in
      Array.blit row 0 grown 0 (Array.length row);
      by_origin.(origin) <- grown;
      grown
    end
  in
  row.(seq) <- v

(* Two passes, both allocation-lean: count each packet's records, then
   fill exact-sized arrays.  The counts rows double as fill cursors in the
   second pass and are rebuilt (cheaply, from the array lengths) for the
   finalized index. *)
let build_index t =
  match t.index with
  | Some idx -> idx
  | None ->
      let counts : int rows = { by_origin = [||] } in
      let fb_counts : (int * int, int ref) Hashtbl.t = Hashtbl.create 8 in
      Array.iter
        (fun log ->
          Array.iter
            (fun (r : Record.t) ->
              let origin = r.origin and seq = r.pkt_seq in
              if dense ~origin ~seq then
                row_set counts ~absent:0 origin seq
                  (row_get counts ~absent:0 origin seq + 1)
              else
                match Hashtbl.find fb_counts (origin, seq) with
                | c -> incr c
                | exception Not_found ->
                    Hashtbl.add fb_counts (origin, seq) (ref 1))
            log)
        t.node_logs;
      let records : Record.t array rows = { by_origin = [||] } in
      let fallback = Hashtbl.create (max 8 (Hashtbl.length fb_counts)) in
      (* Second pass: counts.(origin).(seq) becomes the fill cursor —
         records are appended in node-scan order, which is exactly the
         node-ascending, write-ordered grouping every consumer expects. *)
      Array.iter
        (fun log ->
          Array.iter
            (fun (r : Record.t) ->
              let origin = r.origin and seq = r.pkt_seq in
              if dense ~origin ~seq then begin
                let arr =
                  match row_get records ~absent:[||] origin seq with
                  | [||] ->
                      let n = row_get counts ~absent:0 origin seq in
                      let arr = Array.make n r in
                      row_set records ~absent:[||] origin seq arr;
                      row_set counts ~absent:0 origin seq 0;
                      arr
                  | arr -> arr
                in
                let fill = row_get counts ~absent:0 origin seq in
                arr.(fill) <- r;
                row_set counts ~absent:0 origin seq (fill + 1)
              end
              else begin
                let arr =
                  match Hashtbl.find fallback (origin, seq) with
                  | arr -> arr
                  | exception Not_found ->
                      let n = !(Hashtbl.find fb_counts (origin, seq)) in
                      let arr = Array.make n r in
                      Hashtbl.add fallback (origin, seq) arr;
                      (Hashtbl.find fb_counts (origin, seq)) := 0;
                      arr
                in
                let fill = !(Hashtbl.find fb_counts (origin, seq)) in
                arr.(fill) <- r;
                (Hashtbl.find fb_counts (origin, seq)) := fill + 1
              end)
            log)
        t.node_logs;
      (* Origin-major ascending sweep yields the sorted key list for
         free. *)
      let keys_rev = ref [] in
      Array.iteri
        (fun origin row ->
          Array.iteri
            (fun seq (arr : Record.t array) ->
              if Array.length arr > 0 then
                keys_rev := (origin, seq) :: !keys_rev)
            row)
        records.by_origin;
      let fallback_keys =
        Hashtbl.fold (fun key _ acc -> key :: acc) fallback []
      in
      let keys =
        match fallback_keys with
        | [] -> List.rev !keys_rev
        | fk -> List.merge compare (List.rev !keys_rev) (List.sort compare fk)
      in
      let idx = { records; fallback; keys } in
      t.index <- Some idx;
      idx

let of_logger logger =
  of_node_logs
    (Array.init (Logger.n_nodes logger) (fun i -> Logger.node_log logger i))

let lossify config rng t =
  of_node_logs (Loss_model.apply_all config rng t.node_logs)

let n_nodes t = Array.length t.node_logs

let node_log t i = t.node_logs.(i)

let total t = Array.fold_left (fun acc l -> acc + Array.length l) 0 t.node_logs

let packet_keys t = (build_index t).keys

let packet_records t ~origin ~seq =
  let idx = build_index t in
  if dense ~origin ~seq then row_get idx.records ~absent:[||] origin seq
  else
    match Hashtbl.find idx.fallback (origin, seq) with
    | arr -> arr
    | exception Not_found -> [||]

let events_of_packet t ~origin ~seq =
  (* Derive the per-node groups from the flat record array: records are in
     node-scan order, so groups are the maximal same-node runs. *)
  let arr = packet_records t ~origin ~seq in
  let n = Array.length arr in
  let rec groups_from i =
    if i >= n then []
    else begin
      let node = arr.(i).Record.node in
      let j = ref i in
      while !j < n && arr.(!j).Record.node = node do incr j done;
      let rec run k = if k >= !j then [] else arr.(k) :: run (k + 1) in
      (node, run i) :: groups_from !j
    end
  in
  groups_from 0

let merged_concat t =
  Array.to_list t.node_logs |> List.concat_map Array.to_list

let merged_by_time t =
  let out = Array.concat (Array.to_list t.node_logs) in
  (* Stable sort: records with equal (true_time, gseq) keys keep node-scan
     order, so each node's local write order survives the merge. *)
  Array.stable_sort Record.compare_by_time out;
  out

let merged_round_robin t =
  let positions = Array.map (fun _ -> ref 0) t.node_logs in
  let out = ref [] in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    Array.iteri
      (fun i log ->
        let pos = positions.(i) in
        if !pos < Array.length log then begin
          out := log.(!pos) :: !out;
          incr pos;
          progressed := true
        end)
      t.node_logs
  done;
  List.rev !out

type t = {
  node_logs : Record.t array array;
  (* Lazily built per-packet index: key -> per-node record lists (rev order
     while building, node ids descending), finalized on first use. *)
  mutable index : (int * int, (int * Record.t list) list) Hashtbl.t option;
}

let of_node_logs node_logs = { node_logs; index = None }

let build_index t =
  match t.index with
  | Some idx -> idx
  | None ->
      let idx = Hashtbl.create 4096 in
      Array.iteri
        (fun node log ->
          (* Per-node grouping for this node's records, preserving order. *)
          let local = Hashtbl.create 64 in
          Array.iter
            (fun (r : Record.t) ->
              let key = Record.packet_key r in
              let l = Option.value ~default:[] (Hashtbl.find_opt local key) in
              Hashtbl.replace local key (r :: l))
            log;
          Hashtbl.iter
            (fun key records_rev ->
              let groups =
                Option.value ~default:[] (Hashtbl.find_opt idx key)
              in
              Hashtbl.replace idx key
                ((node, List.rev records_rev) :: groups))
            local)
        t.node_logs;
      (* Node groups accumulated in arbitrary hash order per key; sort. *)
      let sorted = Hashtbl.create (Hashtbl.length idx) in
      Hashtbl.iter
        (fun key groups ->
          Hashtbl.replace sorted key
            (List.sort (fun (a, _) (b, _) -> Int.compare a b) groups))
        idx;
      t.index <- Some sorted;
      sorted

let of_logger logger =
  of_node_logs
    (Array.init (Logger.n_nodes logger) (fun i -> Logger.node_log logger i))

let lossify config rng t =
  of_node_logs (Loss_model.apply_all config rng t.node_logs)

let n_nodes t = Array.length t.node_logs

let node_log t i = t.node_logs.(i)

let total t = Array.fold_left (fun acc l -> acc + Array.length l) 0 t.node_logs

let packet_keys t =
  let idx = build_index t in
  Hashtbl.fold (fun key _ acc -> key :: acc) idx []
  |> List.sort compare

let events_of_packet t ~origin ~seq =
  let idx = build_index t in
  Option.value ~default:[] (Hashtbl.find_opt idx (origin, seq))

let merged_concat t =
  Array.to_list t.node_logs |> List.concat_map Array.to_list

let merged_round_robin t =
  let positions = Array.map (fun _ -> ref 0) t.node_logs in
  let out = ref [] in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    Array.iteri
      (fun i log ->
        let pos = positions.(i) in
        if !pos < Array.length log then begin
          out := log.(!pos) :: !out;
          incr pos;
          progressed := true
        end)
      t.node_logs
  done;
  List.rev !out

type t = { dropped : string list }

let kind_names =
  [ "gen"; "recv"; "dup"; "overflow"; "trans"; "ack"; "timeout"; "deliver" ]

let check name =
  if not (List.mem name kind_names) then
    invalid_arg (Printf.sprintf "Logging_policy: unknown event kind %S" name)

let all = { dropped = [] }

let without names =
  List.iter check names;
  { dropped = List.sort_uniq String.compare names }

let only names =
  List.iter check names;
  {
    dropped =
      List.filter (fun k -> not (List.mem k names)) kind_names;
  }

let records_kind t name =
  check name;
  not (List.mem name t.dropped)

let logs t kind = not (List.mem (Record.kind_name kind) t.dropped)

let apply t collected =
  if t.dropped = [] then collected
  else begin
    let n = Collected.n_nodes collected in
    let node_logs =
      Array.init n (fun node ->
          Collected.node_log collected node
          |> Array.to_list
          |> List.filter (fun (r : Record.t) -> logs t r.kind)
          |> Array.of_list)
    in
    Collected.of_node_logs node_logs
  end

let describe t =
  match t.dropped with
  | [] -> "all"
  | dropped -> "without " ^ String.concat ", " dropped

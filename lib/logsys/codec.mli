(** Compact binary encoding of event records — what a sensor node would
    actually keep in flash and ship over the radio.

    Layout per record: one tag byte (event kind, 3 bits) followed by
    LEB128 varints for the fields the kind needs — peer (link events
    only), origin, and per-origin sequence number.  The recording node id
    is *not* stored (a node's log is self-describing), and the
    ground-truth fields ([true_time], [gseq]) are never encoded: a decoded
    record carries [true_time = nan], [gseq = -1].

    Typical cost is 3–5 bytes per record, which is what makes in-band log
    collection affordable (§V's 16–24-record chunks fit one 802.15.4
    frame's payload budget within small factors). *)

val tag_of_kind : Record.kind -> int
(** The stable on-disk tag (0–7) of a kind.  Tag order matches
    [Refill.Protocol.label_rank], which is what lets column-oriented
    consumers ({!Arena}) map tags to labels with a plain array read. *)

val peer_of_kind : Record.kind -> int option
(** The kind's peer field ([None] for [Gen]/[Deliver]). *)

val kind_of_tag : int -> int option -> Record.kind
(** Inverse of {!tag_of_kind}/{!peer_of_kind}.
    @raise Failure on an unknown tag or a missing peer for tags 1–6. *)

val zigzag : int -> int
(** Zig-zag map a signed int onto a nonnegative one for varint encoding.
    @raise Failure for [n > max_int/2] or [n < -max_int/2 - 1] — values
    the doubling would silently wrap. *)

val unzigzag : int -> int
(** Inverse of {!zigzag} (total — any nonnegative int maps back). *)

val encode_record : Buffer.t -> Record.t -> unit
(** Append one record's encoding (without its node id).
    @raise Failure when a field is outside {!zigzag} range. *)

val decode_record :
  node:Net.Packet.node_id -> Bytes.t -> pos:int -> Record.t * int
(** [decode_record ~node b ~pos] reads one record starting at [pos] and
    returns it (attributed to [node]) with the position after it.
    @raise Failure on truncated or malformed input, including varints that
    would not fit a 63-bit OCaml int (more than 9 continuation groups). *)

val encode_log : Record.t array -> Bytes.t
(** Encode one node's log (records in order). *)

val decode_log : node:Net.Packet.node_id -> Bytes.t -> Record.t array
(** Inverse of {!encode_log}.
    @raise Failure on malformed input. *)

val encode_segment : Record.t array -> Bytes.t
(** Encode a cross-node slice of the collection stream: a record count
    varint, then each record as a node-id varint followed by its
    {!encode_record} body.  This is the frame shape streaming ingestion
    ({!Refill.Stream}) consumes — unlike {!encode_log}, records may come
    from any mix of nodes. *)

val segment_record_count : Bytes.t -> int
(** Peek a segment's record count (the leading varint) without decoding
    the records — what a frame receiver uses to account for in-flight
    records before committing to the decode.
    @raise Failure on an empty/truncated header or a count that could not
    possibly fit the segment's byte length. *)

val decode_segment : Bytes.t -> Record.t array
(** Inverse of {!encode_segment}.  Decoded records carry [true_time = nan]
    and [gseq = -1], like {!decode_log}.
    @raise Failure on malformed input, including trailing bytes. *)

val encoded_size : Record.t -> int
(** Bytes {!encode_record} would emit for this record. *)

val log_size : Record.t array -> int
(** Total encoded bytes of a log. *)

(* Streaming reconstruction: frontier/watermark semantics, equivalence with
   the batch pipeline, chunk-size invariance, checkpoint/resume, the
   segmented reader, and the incremental global-flow merge. *)

let scenario = lazy (Scenario.Citysee.run Scenario.Citysee.tiny)

let lossless = lazy (Scenario.Citysee.collected (Lazy.force scenario))

let sink () = (Lazy.force scenario).sink

let lossy_collected p seed =
  let rng = Prelude.Rng.create ~seed:(Int64.of_int seed) in
  Logsys.Collected.lossify (Logsys.Loss_model.uniform p) rng
    (Lazy.force lossless)

(* A flow's observable identity: nan-safe (Flow.to_string prints items;
   stats are plain ints), unlike polymorphic equality on the payload
   records. *)
let flow_sig (f : Refill.Flow.t) =
  (f.origin, f.seq, Refill.Flow.to_string f, f.stats)

let batch_flows collected =
  let acc = ref [] in
  Refill.Reconstruct.run collected ~sink:(sink ()) ~emit:(fun f ->
      acc := f :: !acc);
  List.rev !acc

(* Stream [collected]'s arrival-order trace in [chunk]-sized segments. *)
let stream_all ?(watermark = max_int / 2) ~chunk collected =
  let ordered = Logsys.Collected.merged_by_time collected in
  let acc = ref [] in
  let config = { Refill.Config.default with watermark } in
  let t =
    Refill.Stream.create ~config ~sink:(sink ()) ~emit:(fun e ->
        acc := e :: !acc)
      ()
  in
  let n = Array.length ordered in
  let i = ref 0 in
  while !i < n do
    let len = min chunk (n - !i) in
    Refill.Stream.feed t (Array.sub ordered !i len);
    i := !i + len
  done;
  let s = Refill.Stream.finish t in
  (List.rev !acc, s)

let emission_sigs es =
  List.map
    (fun (e : Refill.Stream.emitted) -> (flow_sig e.flow, e.outcome))
    es

let sort_by_key l =
  List.stable_sort
    (fun ((o1, s1, _, _), _) ((o2, s2, _, _), _) -> compare (o1, s1) (o2, s2))
    l

(* -- Pinned acceptance: lossless tiny rung ------------------------------- *)

let lossless_stream_equals_batch () =
  let collected = Lazy.force lossless in
  let total = Logsys.Collected.total collected in
  let watermark = max 1 (total / 20) in
  let emitted, s = stream_all ~watermark ~chunk:512 collected in
  Alcotest.(check int) "every record consumed" total s.events;
  Alcotest.(check int) "no late fragments on lossless input" 0
    s.late_fragments;
  Alcotest.(check int) "all flows complete" s.flows s.complete;
  Alcotest.(check bool)
    (Printf.sprintf "peak frontier %d < 10%% of %d records"
       s.peak_frontier_events total)
    true
    (s.peak_frontier_events * 10 < total);
  let batch = List.map flow_sig (batch_flows collected) in
  let streamed =
    List.map fst (sort_by_key (emission_sigs emitted))
  in
  Alcotest.(check int) "one flow per packet" (List.length batch)
    (List.length streamed);
  List.iter2
    (fun (bo, bs, bstr, bstats) (so, ss, sstr, sstats) ->
      Alcotest.(check (pair int int)) "key" (bo, bs) (so, ss);
      Alcotest.(check string) "flow" bstr sstr;
      Alcotest.(check bool) "stats" true (bstats = sstats))
    batch streamed

(* -- Chunk-size invariance ------------------------------------------------ *)

let chunk_invariance =
  QCheck.Test.make ~name:"stream emissions independent of chunk size"
    ~count:15
    QCheck.(int_range 1 777)
    (fun chunk ->
      let collected = Lazy.force lossless in
      let watermark = max 1 (Logsys.Collected.total collected / 10) in
      let reference, _ = stream_all ~watermark ~chunk:256 collected in
      let got, _ = stream_all ~watermark ~chunk collected in
      emission_sigs got = emission_sigs reference)

(* -- Lossy inputs --------------------------------------------------------- *)

(* Under loss and an aggressive watermark a packet may be split across
   evictions.  The one-directional guarantee: any key whose streamed flows
   differ from its batch flow has an Incomplete flow among them, and no
   record is dropped on the floor. *)
let lossy_divergence_is_flagged =
  QCheck.Test.make ~name:"lossy streaming divergence is flagged Incomplete"
    ~count:10
    QCheck.(pair (int_range 0 1000) (int_range 1 10_000))
    (fun (loss_milli, seed) ->
      let p = float_of_int loss_milli /. 2000. in
      let collected = lossy_collected p seed in
      let total = Logsys.Collected.total collected in
      let emitted, s = stream_all ~watermark:150 ~chunk:97 collected in
      let consumed =
        List.fold_left
          (fun acc (e : Refill.Stream.emitted) ->
            acc + e.flow.stats.emitted_logged + e.flow.stats.skipped)
          0 emitted
      in
      if consumed <> total then
        QCheck.Test.fail_reportf "record conservation: %d fed, %d consumed"
          total consumed;
      if s.events <> total then QCheck.Test.fail_report "events <> total";
      let by_key = Hashtbl.create 64 in
      List.iter
        (fun (e : Refill.Stream.emitted) ->
          let k = (e.flow.origin, e.flow.seq) in
          Hashtbl.replace by_key k
            (e :: Option.value ~default:[] (Hashtbl.find_opt by_key k)))
        emitted;
      List.for_all
        (fun (b : Refill.Flow.t) ->
          let streamed =
            List.rev
              (Option.value ~default:[]
                 (Hashtbl.find_opt by_key (b.origin, b.seq)))
          in
          match streamed with
          | [ one ] when flow_sig one.flow = flow_sig b -> true
          | parts ->
              (* Divergence from batch: must carry an Incomplete flag. *)
              List.exists
                (fun (e : Refill.Stream.emitted) ->
                  e.outcome = Refill.Stream.Incomplete)
                parts)
        (batch_flows collected))

(* -- Checkpoint / resume -------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "refill-stream" ".ckpt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let checkpoint_resume_identical () =
  let collected = lossy_collected 0.25 42 in
  let ordered = Logsys.Collected.merged_by_time collected in
  let n = Array.length ordered in
  let config = { Refill.Config.default with watermark = 150 } in
  let run_split cut =
    with_temp_file @@ fun path ->
    let acc = ref [] in
    let t1 =
      Refill.Stream.create ~config ~sink:(sink ()) ~emit:(fun e ->
          acc := e :: !acc)
        ()
    in
    Refill.Stream.feed t1 (Array.sub ordered 0 cut);
    (match Refill.Stream.checkpoint_file t1 path with
    | Ok () -> ()
    | Error e -> Alcotest.failf "checkpoint: %s" (Refill.Error.message e));
    (* The abandoned first stream must not influence the resumed one. *)
    let t2 =
      match
        Refill.Stream.resume_file ~config path ~sink:(sink ())
          ~emit:(fun e -> acc := e :: !acc)
      with
      | Ok t -> t
      | Error e -> Alcotest.failf "resume: %s" (Refill.Error.message e)
    in
    Alcotest.(check int) "resume position" cut (Refill.Stream.processed t2);
    Refill.Stream.feed t2 (Array.sub ordered cut (n - cut));
    let s = Refill.Stream.finish t2 in
    (List.rev !acc, s)
  in
  let direct, sd = stream_all ~watermark:150 ~chunk:max_int collected in
  List.iter
    (fun cut ->
      let resumed, sr = run_split cut in
      Alcotest.(check bool)
        (Printf.sprintf "emissions at cut %d" cut)
        true
        (emission_sigs resumed = emission_sigs direct);
      Alcotest.(check bool)
        (Printf.sprintf "summary at cut %d" cut)
        true
        ({ sr with segments = sd.segments } = sd))
    [ 1; n / 3; n / 2; n - 1 ]

let resume_rejects_garbage () =
  with_temp_file @@ fun path ->
  let oc = open_out path in
  output_string oc "not a checkpoint\n";
  close_out oc;
  match
    Refill.Stream.resume_file path ~sink:(sink ()) ~emit:(fun _ -> ())
  with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error (Refill.Error.Bad_checkpoint _ as e) ->
      Alcotest.(check int) "exit code" 1 (Refill.Error.exit_code e)
  | Error e -> Alcotest.failf "wrong error: %s" (Refill.Error.message e)

let feed_after_finish_raises () =
  let t = Refill.Stream.create ~sink:0 ~emit:(fun _ -> ()) () in
  ignore (Refill.Stream.finish t);
  Alcotest.check_raises "feed after finish"
    (Invalid_argument "Stream.feed: stream already finished") (fun () ->
      Refill.Stream.feed t [||])

(* -- Segmented reader ----------------------------------------------------- *)

(* Ordinary dump lines carry %.6f times, so reloaded records match the
   originals only up to that precision (exact lines are covered
   separately). *)
let record_close (a : Logsys.Record.t) (b : Logsys.Record.t) =
  a.node = b.node
  && Logsys.Record.kind_equal a.kind b.kind
  && a.origin = b.origin && a.pkt_seq = b.pkt_seq && a.gseq = b.gseq
  && ((Float.is_nan a.true_time && Float.is_nan b.true_time)
     || Float.abs (a.true_time -. b.true_time) < 1e-5)

let seg_reader_roundtrip () =
  let collected = Lazy.force lossless in
  let ordered = Logsys.Collected.merged_by_time collected in
  with_temp_file @@ fun path ->
  Logsys.Log_io.save_file path ~sink:(sink ()) ~time_order:true collected;
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let r = Logsys.Log_io.Seg.of_channel ic in
  Alcotest.(check int) "n_nodes"
    (Logsys.Collected.n_nodes collected)
    (Logsys.Log_io.Seg.n_nodes r);
  Alcotest.(check int) "sink" (sink ()) (Logsys.Log_io.Seg.sink r);
  let acc = ref [] in
  let rec loop () =
    match Logsys.Log_io.Seg.next r ~max_records:61 with
    | None -> ()
    | Some seg ->
        Alcotest.(check bool) "non-empty segment" true (Array.length seg > 0);
        acc := seg :: !acc;
        loop ()
  in
  loop ();
  let got = Array.concat (List.rev !acc) in
  Alcotest.(check int) "record count" (Array.length ordered)
    (Array.length got);
  Array.iteri
    (fun i r ->
      if not (record_close ordered.(i) r) then
        Alcotest.failf "record %d differs: %s vs %s" i
          (Logsys.Record.to_string ordered.(i))
          (Logsys.Record.to_string r))
    got

let seg_skip_fast_forwards () =
  let collected = Lazy.force lossless in
  let ordered = Logsys.Collected.merged_by_time collected in
  with_temp_file @@ fun path ->
  Logsys.Log_io.save_file path ~sink:(sink ()) ~time_order:true collected;
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let r = Logsys.Log_io.Seg.of_channel ic in
  Alcotest.(check int) "skipped" 100 (Logsys.Log_io.Seg.skip r 100);
  (match Logsys.Log_io.Seg.next r ~max_records:1 with
  | Some [| rec_ |] ->
      Alcotest.(check bool) "positioned at record 100" true
        (record_close ordered.(100) rec_)
  | _ -> Alcotest.fail "no record after skip");
  let n = Array.length ordered in
  Alcotest.(check int) "skip clamps at EOF" (n - 101)
    (Logsys.Log_io.Seg.skip r (n + 500))

let exact_record_line_roundtrip () =
  let records = Logsys.Collected.merged_by_time (Lazy.force lossless) in
  let some = [ records.(0); records.(Array.length records / 2) ] in
  let nan_rec = { (List.hd some) with Logsys.Record.true_time = Float.nan } in
  List.iter
    (fun r ->
      let back =
        Logsys.Log_io.record_of_line (Logsys.Log_io.record_to_line_exact r)
      in
      Alcotest.(check bool)
        ("round-trip " ^ Logsys.Record.to_string r)
        true
        (Logsys.Record.equal r back && back.true_time = r.true_time
        || (Float.is_nan back.true_time && Float.is_nan r.true_time)))
    (nan_rec :: some)

let codec_segment_roundtrip () =
  let collected = Lazy.force lossless in
  let ordered = Logsys.Collected.merged_by_time collected in
  let seg = Array.sub ordered 0 (min 500 (Array.length ordered)) in
  let decoded = Logsys.Codec.decode_segment (Logsys.Codec.encode_segment seg) in
  Alcotest.(check int) "count" (Array.length seg) (Array.length decoded);
  Array.iteri
    (fun i (r : Logsys.Record.t) ->
      let d = decoded.(i) in
      Alcotest.(check int) "node" r.node d.node;
      Alcotest.(check bool) "kind" true (Logsys.Record.kind_equal r.kind d.kind);
      Alcotest.(check (pair int int)) "key" (r.origin, r.pkt_seq)
        (d.origin, d.pkt_seq);
      Alcotest.(check bool) "truth stripped" true
        (Float.is_nan d.true_time && d.gseq = -1))
    seg;
  Alcotest.check_raises "trailing bytes rejected"
    (Failure "Codec: trailing bytes in segment") (fun () ->
      ignore
        (Logsys.Codec.decode_segment
           (Bytes.cat (Logsys.Codec.encode_segment seg) (Bytes.make 1 'x'))))

(* -- Incremental global flow ---------------------------------------------- *)

let incremental_merge_equals_batch () =
  let collected = lossy_collected 0.2 7 in
  let flows = Array.of_list (batch_flows collected) in
  let batch_items = ref [] in
  let batch_stats =
    Refill.Global_flow.merge collected ~flows ~emit:(fun it ->
        batch_items := Refill.Flow.item_to_string it :: !batch_items)
  in
  let inc =
    Refill.Global_flow.Incremental.create
      ~n_nodes:(Logsys.Collected.n_nodes collected)
      ()
  in
  (* Records arrive in stream order and chunked; flows in eviction (not
     key) order — finish must not care. *)
  let ordered = Logsys.Collected.merged_by_time collected in
  let n = Array.length ordered in
  let i = ref 0 in
  while !i < n do
    let len = min 333 (n - !i) in
    Refill.Global_flow.Incremental.add_records inc (Array.sub ordered !i len);
    i := !i + len
  done;
  let shuffled = Array.copy flows in
  let rng = Prelude.Rng.create ~seed:99L in
  for i = Array.length shuffled - 1 downto 1 do
    let j = Prelude.Rng.int rng (i + 1) in
    let tmp = shuffled.(i) in
    shuffled.(i) <- shuffled.(j);
    shuffled.(j) <- tmp
  done;
  Array.iter (Refill.Global_flow.Incremental.add_flow inc) shuffled;
  let inc_items = ref [] in
  let inc_stats =
    Refill.Global_flow.Incremental.finish inc ~emit:(fun it ->
        inc_items := Refill.Flow.item_to_string it :: !inc_items)
  in
  Alcotest.(check bool) "stats" true (batch_stats = inc_stats);
  Alcotest.(check (list string)) "items"
    (List.rev !batch_items) (List.rev !inc_items)

(* -- Summaries and config -------------------------------------------------- *)

let summarize_array_matches_list () =
  let flows = batch_flows (Lazy.force lossless) in
  Alcotest.(check bool) "array summary = list summary" true
    (Refill.Reconstruct.summarize flows
    = Refill.Reconstruct.summarize_array (Array.of_list flows))

let config_validation () =
  (match Refill.Config.validate Refill.Config.default with
  | Ok c -> Alcotest.(check bool) "default valid" true (c = Refill.Config.default)
  | Error e -> Alcotest.failf "default invalid: %s" (Refill.Error.message e));
  List.iter
    (fun bad ->
      match Refill.Config.validate bad with
      | Ok _ -> Alcotest.fail "invalid config accepted"
      | Error e -> Alcotest.(check int) "exit 2" 2 (Refill.Error.exit_code e))
    [
      { Refill.Config.default with watermark = 0 };
      { Refill.Config.default with chunk_events = -3 };
      { Refill.Config.default with jobs = Some 0 };
    ]

let () =
  Alcotest.run "stream"
    [
      ( "equivalence",
        [
          Alcotest.test_case "lossless stream equals batch" `Quick
            lossless_stream_equals_batch;
          QCheck_alcotest.to_alcotest chunk_invariance;
          QCheck_alcotest.to_alcotest lossy_divergence_is_flagged;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "resume is byte-identical" `Quick
            checkpoint_resume_identical;
          Alcotest.test_case "garbage rejected" `Quick resume_rejects_garbage;
          Alcotest.test_case "feed after finish" `Quick
            feed_after_finish_raises;
        ] );
      ( "segments",
        [
          Alcotest.test_case "seg reader round-trip" `Quick
            seg_reader_roundtrip;
          Alcotest.test_case "seg skip" `Quick seg_skip_fast_forwards;
          Alcotest.test_case "exact record lines" `Quick
            exact_record_line_roundtrip;
          Alcotest.test_case "codec segment round-trip" `Quick
            codec_segment_roundtrip;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "incremental merge equals batch" `Quick
            incremental_merge_equals_batch;
        ] );
      ( "api",
        [
          Alcotest.test_case "summarize_array" `Quick
            summarize_array_matches_list;
          Alcotest.test_case "config validation" `Quick config_validation;
        ] );
    ]

(* Streaming reconstruction: frontier/watermark semantics, equivalence with
   the batch pipeline, chunk-size invariance, checkpoint/resume, the
   segmented reader, and the incremental global-flow merge. *)

let scenario = lazy (Scenario.Citysee.run Scenario.Citysee.tiny)

let lossless = lazy (Scenario.Citysee.collected (Lazy.force scenario))

let sink () = (Lazy.force scenario).sink

let lossy_collected p seed =
  let rng = Prelude.Rng.create ~seed:(Int64.of_int seed) in
  Logsys.Collected.lossify (Logsys.Loss_model.uniform p) rng
    (Lazy.force lossless)

(* A flow's observable identity: nan-safe (Flow.to_string prints items;
   stats are plain ints), unlike polymorphic equality on the payload
   records. *)
let flow_sig (f : Refill.Flow.t) =
  (f.origin, f.seq, Refill.Flow.to_string f, f.stats)

let batch_flows collected =
  let acc = ref [] in
  Refill.Reconstruct.run collected ~sink:(sink ()) ~emit:(fun f ->
      acc := f :: !acc);
  List.rev !acc

(* The equivalence properties run with an unbounded late-fragment
   retention (the pre-sharding semantics); bounded retention has its own
   regression tests below. *)
let test_config ?(watermark = max_int / 2) ?(shards = 1) () =
  {
    Refill.Config.default with
    watermark;
    shards;
    late_retention = Some max_int;
  }

(* Stream [collected]'s arrival-order trace in [chunk]-sized segments.
   [chunk] is clamped to >= 1: qcheck shrinkers can step outside the
   declared range, and a zero chunk would never advance the feed loop. *)
let stream_all ?watermark ~chunk collected =
  let chunk = max 1 chunk in
  let ordered = Logsys.Collected.merged_by_time collected in
  let acc = ref [] in
  let config = test_config ?watermark () in
  let t =
    Refill.Stream.create ~config ~sink:(sink ()) ~emit:(fun e ->
        acc := e :: !acc)
      ()
  in
  let n = Array.length ordered in
  let i = ref 0 in
  while !i < n do
    let len = min chunk (n - !i) in
    Refill.Stream.feed t (Array.sub ordered !i len);
    i := !i + len
  done;
  let s = Refill.Stream.finish t in
  (List.rev !acc, s)

(* Same, through the sharded layer. *)
let sharded_stream_all ?watermark ~shards ~chunk collected =
  let chunk = max 1 chunk in
  let shards = max 1 shards in
  let ordered = Logsys.Collected.merged_by_time collected in
  let acc = ref [] in
  let config = test_config ?watermark ~shards () in
  let t =
    Refill.Stream.Sharded.create ~config ~sink:(sink ()) ~emit:(fun e ->
        acc := e :: !acc)
      ()
  in
  let n = Array.length ordered in
  let i = ref 0 in
  while !i < n do
    let len = min chunk (n - !i) in
    Refill.Stream.Sharded.feed t (Array.sub ordered !i len);
    i := !i + len
  done;
  let s = Refill.Stream.Sharded.finish t in
  (List.rev !acc, s)

let emission_sigs es =
  List.map
    (fun (e : Refill.Stream.emitted) -> (flow_sig e.flow, e.outcome))
    es

let sort_by_key l =
  List.stable_sort
    (fun ((o1, s1, _, _), _) ((o2, s2, _, _), _) -> compare (o1, s1) (o2, s2))
    l

(* -- Pinned acceptance: lossless tiny rung ------------------------------- *)

let lossless_stream_equals_batch () =
  let collected = Lazy.force lossless in
  let total = Logsys.Collected.total collected in
  let watermark = max 1 (total / 20) in
  let emitted, s = stream_all ~watermark ~chunk:512 collected in
  Alcotest.(check int) "every record consumed" total s.events;
  Alcotest.(check int) "no late fragments on lossless input" 0
    s.late_fragments;
  Alcotest.(check int) "all flows complete" s.flows s.complete;
  Alcotest.(check bool)
    (Printf.sprintf "peak frontier %d < 10%% of %d records"
       s.peak_frontier_events total)
    true
    (s.peak_frontier_events * 10 < total);
  let batch = List.map flow_sig (batch_flows collected) in
  let streamed =
    List.map fst (sort_by_key (emission_sigs emitted))
  in
  Alcotest.(check int) "one flow per packet" (List.length batch)
    (List.length streamed);
  List.iter2
    (fun (bo, bs, bstr, bstats) (so, ss, sstr, sstats) ->
      Alcotest.(check (pair int int)) "key" (bo, bs) (so, ss);
      Alcotest.(check string) "flow" bstr sstr;
      Alcotest.(check bool) "stats" true (bstats = sstats))
    batch streamed

(* -- Chunk-size invariance ------------------------------------------------ *)

let chunk_invariance =
  QCheck.Test.make ~name:"stream emissions independent of chunk size"
    ~count:15
    QCheck.(int_range 1 777)
    (fun chunk ->
      let collected = Lazy.force lossless in
      let watermark = max 1 (Logsys.Collected.total collected / 10) in
      let reference, _ = stream_all ~watermark ~chunk:256 collected in
      let got, _ = stream_all ~watermark ~chunk collected in
      emission_sigs got = emission_sigs reference)

(* -- Sharded equivalence --------------------------------------------------- *)

(* The tentpole pin: at any shard count and chunking, the sharded layer's
   emitted flow sequence is byte-identical to the single-domain stream —
   same flows, same outcomes, same order — and the summary matches up to
   peak_frontier_events (a sum of per-shard peaks, an upper bound) and
   segments (a feed-call count, which differs when the chunking does). *)
let summary_matches (ss : Refill.Stream.summary) (sd : Refill.Stream.summary)
    =
  {
    ss with
    peak_frontier_events = sd.peak_frontier_events;
    segments = sd.segments;
  }
  = sd

let sharded_identical_lossless =
  QCheck.Test.make
    ~name:"sharded stream byte-identical to single-domain (lossless)"
    ~count:6
    QCheck.(pair (int_range 2 5) (int_range 1 777))
    (fun (shards, chunk) ->
      let collected = Lazy.force lossless in
      let watermark = max 1 (Logsys.Collected.total collected / 10) in
      let single, sd = stream_all ~watermark ~chunk:256 collected in
      let sharded, ss = sharded_stream_all ~watermark ~shards ~chunk collected in
      emission_sigs sharded = emission_sigs single && summary_matches ss sd)

let sharded_identical_lossy =
  QCheck.Test.make
    ~name:"sharded stream byte-identical to single-domain (lossy)" ~count:6
    QCheck.(triple (int_range 2 5) (int_range 0 1000) (int_range 1 10_000))
    (fun (shards, loss_milli, seed) ->
      let p = float_of_int loss_milli /. 2000. in
      let collected = lossy_collected p seed in
      let single, sd = stream_all ~watermark:150 ~chunk:97 collected in
      let sharded, ss =
        sharded_stream_all ~watermark:150 ~shards ~chunk:131 collected
      in
      emission_sigs sharded = emission_sigs single && summary_matches ss sd)

(* -- Lossy inputs --------------------------------------------------------- *)

(* Under loss and an aggressive watermark a packet may be split across
   evictions.  The one-directional guarantee: any key whose streamed flows
   differ from its batch flow has an Incomplete flow among them, and no
   record is dropped on the floor. *)
let lossy_divergence_is_flagged =
  QCheck.Test.make ~name:"lossy streaming divergence is flagged Incomplete"
    ~count:10
    QCheck.(pair (int_range 0 1000) (int_range 1 10_000))
    (fun (loss_milli, seed) ->
      let p = float_of_int loss_milli /. 2000. in
      let collected = lossy_collected p seed in
      let total = Logsys.Collected.total collected in
      let emitted, s = stream_all ~watermark:150 ~chunk:97 collected in
      let consumed =
        List.fold_left
          (fun acc (e : Refill.Stream.emitted) ->
            acc + e.flow.stats.emitted_logged + e.flow.stats.skipped)
          0 emitted
      in
      if consumed <> total then
        QCheck.Test.fail_reportf "record conservation: %d fed, %d consumed"
          total consumed;
      if s.events <> total then QCheck.Test.fail_report "events <> total";
      let by_key = Hashtbl.create 64 in
      List.iter
        (fun (e : Refill.Stream.emitted) ->
          let k = (e.flow.origin, e.flow.seq) in
          Hashtbl.replace by_key k
            (e :: Option.value ~default:[] (Hashtbl.find_opt by_key k)))
        emitted;
      List.for_all
        (fun (b : Refill.Flow.t) ->
          let streamed =
            List.rev
              (Option.value ~default:[]
                 (Hashtbl.find_opt by_key (b.origin, b.seq)))
          in
          match streamed with
          | [ one ] when flow_sig one.flow = flow_sig b -> true
          | parts ->
              (* Divergence from batch: must carry an Incomplete flag. *)
              List.exists
                (fun (e : Refill.Stream.emitted) ->
                  e.outcome = Refill.Stream.Incomplete)
                parts)
        (batch_flows collected))

(* -- Checkpoint / resume -------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "refill-stream" ".ckpt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let checkpoint_resume_identical () =
  let collected = lossy_collected 0.25 42 in
  let ordered = Logsys.Collected.merged_by_time collected in
  let n = Array.length ordered in
  let config = test_config ~watermark:150 () in
  let run_split cut =
    with_temp_file @@ fun path ->
    let acc = ref [] in
    let t1 =
      Refill.Stream.create ~config ~sink:(sink ()) ~emit:(fun e ->
          acc := e :: !acc)
        ()
    in
    Refill.Stream.feed t1 (Array.sub ordered 0 cut);
    (match Refill.Stream.checkpoint_file t1 path with
    | Ok () -> ()
    | Error e -> Alcotest.failf "checkpoint: %s" (Refill.Error.message e));
    (* The abandoned first stream must not influence the resumed one. *)
    let t2 =
      match
        Refill.Stream.resume_file ~config path ~sink:(sink ())
          ~emit:(fun e -> acc := e :: !acc)
      with
      | Ok t -> t
      | Error e -> Alcotest.failf "resume: %s" (Refill.Error.message e)
    in
    Alcotest.(check int) "resume position" cut (Refill.Stream.processed t2);
    Refill.Stream.feed t2 (Array.sub ordered cut (n - cut));
    let s = Refill.Stream.finish t2 in
    (List.rev !acc, s)
  in
  let direct, sd = stream_all ~watermark:150 ~chunk:max_int collected in
  List.iter
    (fun cut ->
      let resumed, sr = run_split cut in
      Alcotest.(check bool)
        (Printf.sprintf "emissions at cut %d" cut)
        true
        (emission_sigs resumed = emission_sigs direct);
      Alcotest.(check bool)
        (Printf.sprintf "summary at cut %d" cut)
        true
        ({ sr with segments = sd.segments } = sd))
    [ 1; n / 3; n / 2; n - 1 ]

(* v2 checkpoints cut anywhere — including mid-segment — resume into any
   shard count (sharded -> sharded, sharded -> single, single -> sharded)
   with byte-identical emissions. *)
let sharded_checkpoint_resume_identical () =
  let collected = lossy_collected 0.25 42 in
  let ordered = Logsys.Collected.merged_by_time collected in
  let n = Array.length ordered in
  let direct, _ = stream_all ~watermark:150 ~chunk:97 collected in
  let feed_chunked feed t lo hi =
    let i = ref lo in
    while !i < hi do
      let len = min 97 (hi - !i) in
      feed t (Array.sub ordered !i len);
      i := !i + len
    done
  in
  let run_split ~cut ~shards_before ~shards_after =
    with_temp_file @@ fun path ->
    let acc = ref [] in
    let emit e = acc := e :: !acc in
    let sink = sink () in
    (if shards_before = 1 then begin
       let t =
         Refill.Stream.create ~config:(test_config ~watermark:150 ()) ~sink
           ~emit ()
       in
       feed_chunked Refill.Stream.feed t 0 cut;
       match Refill.Stream.checkpoint_file t path with
       | Ok () -> ()
       | Error e -> Alcotest.failf "checkpoint: %s" (Refill.Error.message e)
     end
     else begin
       let t =
         Refill.Stream.Sharded.create
           ~config:(test_config ~watermark:150 ~shards:shards_before ())
           ~sink ~emit ()
       in
       feed_chunked Refill.Stream.Sharded.feed t 0 cut;
       match Refill.Stream.Sharded.checkpoint_file t path with
       | Ok () -> ()
       | Error e -> Alcotest.failf "checkpoint: %s" (Refill.Error.message e)
     end);
    (* Only emissions from the resumed stream from here on: the abandoned
       first stream's frontier must not leak. *)
    (if shards_after = 1 then begin
       match
         Refill.Stream.resume_file
           ~config:(test_config ~watermark:150 ())
           path ~sink ~emit
       with
       | Error e -> Alcotest.failf "resume: %s" (Refill.Error.message e)
       | Ok t ->
           Alcotest.(check int)
             "resume position" cut
             (Refill.Stream.processed t);
           feed_chunked Refill.Stream.feed t cut n;
           ignore (Refill.Stream.finish t)
     end
     else begin
       match
         Refill.Stream.Sharded.resume_file
           ~config:(test_config ~watermark:150 ~shards:shards_after ())
           path ~sink ~emit
       with
       | Error e -> Alcotest.failf "resume: %s" (Refill.Error.message e)
       | Ok t ->
           Alcotest.(check int)
             "resume position" cut
             (Refill.Stream.Sharded.processed t);
           feed_chunked Refill.Stream.Sharded.feed t cut n;
           ignore (Refill.Stream.Sharded.finish t)
     end);
    List.rev !acc
  in
  List.iter
    (fun (cut, shards_before, shards_after) ->
      let resumed = run_split ~cut ~shards_before ~shards_after in
      Alcotest.(check bool)
        (Printf.sprintf "emissions at cut %d (%d -> %d shards)" cut
           shards_before shards_after)
        true
        (emission_sigs resumed = emission_sigs direct))
    [
      (* n/2 - 13 and n - 40 land mid-segment for the 97-record chunks *)
      (1, 3, 3);
      (n / 3, 3, 1);
      ((n / 2) - 13, 1, 4);
      ((n / 2) - 13, 4, 2);
      (n - 40, 2, 5);
    ]

(* Regression (config-conflict resume): before the fix, resume took the
   semantic flags from the caller's config, so a checkpoint written with
   different ablation knobs silently reconstructed under new semantics. *)
let resume_config_conflict_rejected () =
  with_temp_file @@ fun path ->
  let config = { (test_config ~watermark:150 ()) with use_inter = false } in
  let collected = lossy_collected 0.25 42 in
  let ordered = Logsys.Collected.merged_by_time collected in
  let t = Refill.Stream.create ~config ~sink:(sink ()) ~emit:ignore () in
  Refill.Stream.feed t (Array.sub ordered 0 500);
  (match Refill.Stream.checkpoint_file t path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "checkpoint: %s" (Refill.Error.message e));
  (* Conflicting explicit config: rejected. *)
  (match
     Refill.Stream.resume_file
       ~config:(test_config ~watermark:150 ())
       path ~sink:(sink ()) ~emit:ignore
   with
  | Error (Refill.Error.Bad_checkpoint _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Refill.Error.message e)
  | Ok _ -> Alcotest.fail "conflicting config accepted");
  (* Matching explicit config, and no config at all: both fine; the
     checkpoint's flags win when none is passed. *)
  (match Refill.Stream.resume_file ~config path ~sink:(sink ()) ~emit:ignore with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "matching config rejected: %s" (Refill.Error.message e));
  (match Refill.Stream.resume_file path ~sink:(sink ()) ~emit:ignore with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "absent config rejected: %s" (Refill.Error.message e));
  (* Sharded resume enforces the same rule. *)
  match
    Refill.Stream.Sharded.resume_file
      ~config:(test_config ~watermark:150 ~shards:3 ())
      path ~sink:(sink ()) ~emit:ignore
  with
  | Error (Refill.Error.Bad_checkpoint _) -> ()
  | Error e -> Alcotest.failf "wrong sharded error: %s" (Refill.Error.message e)
  | Ok _ -> Alcotest.fail "sharded conflicting config accepted"

(* Regression (malformed headers): before the fix, resume accepted
   negative counters and a peak-frontier below the restored frontier,
   building a stream whose drain limit was garbage. *)
let resume_rejects_nonsense_headers () =
  let record_line =
    let ordered =
      Logsys.Collected.merged_by_time (Lazy.force lossless)
    in
    Logsys.Log_io.record_to_line_exact ordered.(0)
  in
  let v1 ~processed ~watermark ~peak ~body =
    Printf.sprintf
      "# refill-stream-ckpt v1\n\
       # processed %d\n\
       # watermark %d\n\
       # segments 1\n\
       # flows 0\n\
       # complete 0\n\
       # incomplete 0\n\
       # evictions 0\n\
       # late-fragments 0\n\
       # peak-frontier %d\n\
       %s"
      processed watermark peak body
  in
  let v2_header =
    "# refill-stream-ckpt v2\n\
     # shards 1\n\
     # use-intra 1\n\
     # use-inter 1\n\
     # provenance 0\n\
     # watermark 100\n\
     # retention 400\n\
     # segments 1\n"
  in
  let cases =
    [
      ("negative processed", v1 ~processed:(-5) ~watermark:100 ~peak:0 ~body:"");
      ("negative watermark", v1 ~processed:10 ~watermark:(-1) ~peak:0 ~body:"");
      ("zero watermark", v1 ~processed:10 ~watermark:0 ~peak:0 ~body:"");
      ( "peak below restored frontier",
        v1 ~processed:10 ~watermark:100 ~peak:0
          ~body:(Printf.sprintf "b 3 7 5 0 1\n%s\n" record_line) );
      ( "negative clock",
        v2_header ^ "# clock -3\n# shard 0\n# processed -3\n# flows 0\n\
                     # complete 0\n# incomplete 0\n# evictions 0\n\
                     # late-fragments 0\n# forgotten 0\n# peak-frontier 0\n" );
      ( "flows disagree with outcomes",
        v2_header ^ "# clock 10\n# shard 0\n# processed 10\n# flows 3\n\
                     # complete 1\n# incomplete 1\n# evictions 0\n\
                     # late-fragments 0\n# forgotten 0\n# peak-frontier 0\n" );
      ( "evicted trigger out of range",
        v2_header ^ "# clock 10\n# shard 0\n# processed 10\n# flows 0\n\
                     # complete 0\n# incomplete 0\n# evictions 0\n\
                     # late-fragments 0\n# forgotten 0\n# peak-frontier 0\n\
                     e 3 7 99\n" );
      ( "shard totals disagree with clock",
        v2_header ^ "# clock 10\n# shard 0\n# processed 7\n# flows 0\n\
                     # complete 0\n# incomplete 0\n# evictions 0\n\
                     # late-fragments 0\n# forgotten 0\n# peak-frontier 0\n" );
    ]
  in
  List.iter
    (fun (name, text) ->
      with_temp_file @@ fun path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      match
        Refill.Stream.resume_file path ~sink:(sink ()) ~emit:ignore
      with
      | Ok _ -> Alcotest.failf "%s accepted" name
      | Error (Refill.Error.Bad_checkpoint _) -> ()
      | Error e ->
          Alcotest.failf "%s: wrong error: %s" name (Refill.Error.message e))
    cases

(* A well-formed v1 checkpoint still resumes (flags come from the caller's
   config; evicted keys restore with trigger = processed). *)
let v1_checkpoint_still_readable () =
  with_temp_file @@ fun path ->
  let oc = open_out path in
  output_string oc
    "# refill-stream-ckpt v1\n\
     # processed 10\n\
     # watermark 100\n\
     # segments 2\n\
     # flows 1\n\
     # complete 1\n\
     # incomplete 0\n\
     # evictions 1\n\
     # late-fragments 0\n\
     # peak-frontier 4\n\
     e 3 7\n";
  close_out oc;
  match Refill.Stream.resume_file path ~sink:(sink ()) ~emit:ignore with
  | Error e -> Alcotest.failf "v1 rejected: %s" (Refill.Error.message e)
  | Ok t ->
      Alcotest.(check int) "position" 10 (Refill.Stream.processed t);
      let s = Refill.Stream.summary t in
      Alcotest.(check int) "flows" 1 s.flows;
      Alcotest.(check int) "evictions" 1 s.evictions;
      Alcotest.(check int) "forgotten" 0 s.forgotten_keys

(* Regression (bounded evicted table): before the fix, every evicted key
   was remembered for the life of the stream.  Now a key is forgotten once
   the clock passes its eviction trigger by [late_retention] records —
   counted in [forgotten_keys] — after which a straggler is NOT flagged as
   a late fragment.  The forgetting rule is a function of global positions
   only, so the sharded layer counts identically. *)
let evicted_table_is_bounded () =
  let base = (Logsys.Collected.merged_by_time (Lazy.force lossless)).(0) in
  let rec_ ~origin ~seq =
    { base with Logsys.Record.kind = Gen; node = origin; origin; pkt_seq = seq }
  in
  (* Key (1,1) at position 1; unique filler keys push the clock.  With
     watermark 10 / retention 30: (1,1) evicts at trigger 11; its return
     at position 30 is within 11 + 30 -> a late fragment (re-evicted at
     trigger 40); its return at position 151 is far past 40 + 30 -> the
     key has been forgotten, so this is a fresh packet, not a late
     fragment.  Pre-fix, the table never forgot and late_fragments would
     read 2. *)
  let filler = Array.init 200 (fun i -> rec_ ~origin:2 ~seq:(1000 + i)) in
  let run feed finish t =
    feed t [| rec_ ~origin:1 ~seq:1 |];
    feed t (Array.sub filler 0 28);
    feed t [| rec_ ~origin:1 ~seq:1 |];
    feed t (Array.sub filler 28 120);
    feed t [| rec_ ~origin:1 ~seq:1 |];
    feed t (Array.sub filler 148 52);
    finish t
  in
  let config =
    { (test_config ~watermark:10 ()) with late_retention = Some 30 }
  in
  let record_emissions acc (e : Refill.Stream.emitted) =
    acc :=
      (e.flow.origin, e.flow.seq, e.outcome = Refill.Stream.Incomplete)
      :: !acc
  in
  let single_acc = ref [] in
  let ss =
    run Refill.Stream.feed Refill.Stream.finish
      (Refill.Stream.create ~config ~sink:(sink ())
         ~emit:(record_emissions single_acc) ())
  in
  Alcotest.(check int) "single: one late fragment" 1 ss.late_fragments;
  Alcotest.(check bool) "single: forgotten keys counted" true
    (ss.forgotten_keys >= 1);
  let sharded_acc = ref [] in
  let sh =
    run Refill.Stream.Sharded.feed Refill.Stream.Sharded.finish
      (Refill.Stream.Sharded.create
         ~config:{ config with shards = 3 }
         ~sink:(sink ())
         ~emit:(record_emissions sharded_acc) ())
  in
  (* Forgetting is a function of global positions only: the sharded layer
     sees the same late fragments, the same forgotten count, and the same
     emission sequence. *)
  Alcotest.(check int) "sharded: late fragments agree" ss.late_fragments
    sh.late_fragments;
  Alcotest.(check int) "sharded: forgotten counts agree" ss.forgotten_keys
    sh.forgotten_keys;
  Alcotest.(check (list (triple int int bool))) "emission sequences agree"
    (List.rev !single_acc) (List.rev !sharded_acc)

let resume_rejects_garbage () =
  with_temp_file @@ fun path ->
  let oc = open_out path in
  output_string oc "not a checkpoint\n";
  close_out oc;
  match
    Refill.Stream.resume_file path ~sink:(sink ()) ~emit:(fun _ -> ())
  with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error (Refill.Error.Bad_checkpoint _ as e) ->
      Alcotest.(check int) "exit code" 1 (Refill.Error.exit_code e)
  | Error e -> Alcotest.failf "wrong error: %s" (Refill.Error.message e)

let feed_after_finish_raises () =
  let t = Refill.Stream.create ~sink:0 ~emit:(fun _ -> ()) () in
  ignore (Refill.Stream.finish t);
  Alcotest.check_raises "feed after finish"
    (Invalid_argument "Stream.feed: stream already finished") (fun () ->
      Refill.Stream.feed t [||])

(* -- Segmented reader ----------------------------------------------------- *)

(* Ordinary dump lines carry %.6f times, so reloaded records match the
   originals only up to that precision (exact lines are covered
   separately). *)
let record_close (a : Logsys.Record.t) (b : Logsys.Record.t) =
  a.node = b.node
  && Logsys.Record.kind_equal a.kind b.kind
  && a.origin = b.origin && a.pkt_seq = b.pkt_seq && a.gseq = b.gseq
  && ((Float.is_nan a.true_time && Float.is_nan b.true_time)
     || Float.abs (a.true_time -. b.true_time) < 1e-5)

let seg_reader_roundtrip () =
  let collected = Lazy.force lossless in
  let ordered = Logsys.Collected.merged_by_time collected in
  with_temp_file @@ fun path ->
  Logsys.Log_io.save_file path ~sink:(sink ()) ~time_order:true collected;
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let r = Logsys.Log_io.Seg.of_channel ic in
  Alcotest.(check int) "n_nodes"
    (Logsys.Collected.n_nodes collected)
    (Logsys.Log_io.Seg.n_nodes r);
  Alcotest.(check int) "sink" (sink ()) (Logsys.Log_io.Seg.sink r);
  let acc = ref [] in
  let rec loop () =
    match Logsys.Log_io.Seg.next r ~max_records:61 with
    | None -> ()
    | Some seg ->
        Alcotest.(check bool) "non-empty segment" true (Array.length seg > 0);
        acc := seg :: !acc;
        loop ()
  in
  loop ();
  let got = Array.concat (List.rev !acc) in
  Alcotest.(check int) "record count" (Array.length ordered)
    (Array.length got);
  Array.iteri
    (fun i r ->
      if not (record_close ordered.(i) r) then
        Alcotest.failf "record %d differs: %s vs %s" i
          (Logsys.Record.to_string ordered.(i))
          (Logsys.Record.to_string r))
    got

let seg_skip_fast_forwards () =
  let collected = Lazy.force lossless in
  let ordered = Logsys.Collected.merged_by_time collected in
  with_temp_file @@ fun path ->
  Logsys.Log_io.save_file path ~sink:(sink ()) ~time_order:true collected;
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let r = Logsys.Log_io.Seg.of_channel ic in
  Alcotest.(check int) "read starts at 0" 0 (Logsys.Log_io.Seg.read r);
  Alcotest.(check int) "skipped" 100 (Logsys.Log_io.Seg.skip r 100);
  Alcotest.(check int) "read counts skipped records" 100
    (Logsys.Log_io.Seg.read r);
  (match Logsys.Log_io.Seg.next r ~max_records:1 with
  | Some [| rec_ |] ->
      Alcotest.(check bool) "positioned at record 100" true
        (record_close ordered.(100) rec_)
  | _ -> Alcotest.fail "no record after skip");
  Alcotest.(check int) "read counts returned records" 101
    (Logsys.Log_io.Seg.read r);
  let n = Array.length ordered in
  Alcotest.(check int) "skip clamps at EOF" (n - 101)
    (Logsys.Log_io.Seg.skip r (n + 500));
  Alcotest.(check int) "read is the stream position" n
    (Logsys.Log_io.Seg.read r)

let exact_record_line_roundtrip () =
  let records = Logsys.Collected.merged_by_time (Lazy.force lossless) in
  let some = [ records.(0); records.(Array.length records / 2) ] in
  let nan_rec = { (List.hd some) with Logsys.Record.true_time = Float.nan } in
  List.iter
    (fun r ->
      let back =
        Logsys.Log_io.record_of_line (Logsys.Log_io.record_to_line_exact r)
      in
      Alcotest.(check bool)
        ("round-trip " ^ Logsys.Record.to_string r)
        true
        (Logsys.Record.equal r back && back.true_time = r.true_time
        || (Float.is_nan back.true_time && Float.is_nan r.true_time)))
    (nan_rec :: some)

let codec_segment_roundtrip () =
  let collected = Lazy.force lossless in
  let ordered = Logsys.Collected.merged_by_time collected in
  let seg = Array.sub ordered 0 (min 500 (Array.length ordered)) in
  let decoded = Logsys.Codec.decode_segment (Logsys.Codec.encode_segment seg) in
  Alcotest.(check int) "count" (Array.length seg) (Array.length decoded);
  Array.iteri
    (fun i (r : Logsys.Record.t) ->
      let d = decoded.(i) in
      Alcotest.(check int) "node" r.node d.node;
      Alcotest.(check bool) "kind" true (Logsys.Record.kind_equal r.kind d.kind);
      Alcotest.(check (pair int int)) "key" (r.origin, r.pkt_seq)
        (d.origin, d.pkt_seq);
      Alcotest.(check bool) "truth stripped" true
        (Float.is_nan d.true_time && d.gseq = -1))
    seg;
  Alcotest.check_raises "trailing bytes rejected"
    (Failure "Codec: trailing bytes in segment") (fun () ->
      ignore
        (Logsys.Codec.decode_segment
           (Bytes.cat (Logsys.Codec.encode_segment seg) (Bytes.make 1 'x'))))

(* -- Incremental global flow ---------------------------------------------- *)

let incremental_merge_equals_batch () =
  let collected = lossy_collected 0.2 7 in
  let flows = Array.of_list (batch_flows collected) in
  let batch_items = ref [] in
  let batch_stats =
    Refill.Global_flow.merge collected ~flows ~emit:(fun it ->
        batch_items := Refill.Flow.item_to_string it :: !batch_items)
  in
  let inc =
    Refill.Global_flow.Incremental.create
      ~n_nodes:(Logsys.Collected.n_nodes collected)
      ()
  in
  (* Records arrive in stream order and chunked; flows in eviction (not
     key) order — finish must not care. *)
  let ordered = Logsys.Collected.merged_by_time collected in
  let n = Array.length ordered in
  let i = ref 0 in
  while !i < n do
    let len = min 333 (n - !i) in
    Refill.Global_flow.Incremental.add_records inc (Array.sub ordered !i len);
    i := !i + len
  done;
  let shuffled = Array.copy flows in
  let rng = Prelude.Rng.create ~seed:99L in
  for i = Array.length shuffled - 1 downto 1 do
    let j = Prelude.Rng.int rng (i + 1) in
    let tmp = shuffled.(i) in
    shuffled.(i) <- shuffled.(j);
    shuffled.(j) <- tmp
  done;
  Array.iter (Refill.Global_flow.Incremental.add_flow inc) shuffled;
  let inc_items = ref [] in
  let inc_stats =
    Refill.Global_flow.Incremental.finish inc ~emit:(fun it ->
        inc_items := Refill.Flow.item_to_string it :: !inc_items)
  in
  Alcotest.(check bool) "stats" true (batch_stats = inc_stats);
  Alcotest.(check (list string)) "items"
    (List.rev !batch_items) (List.rev !inc_items)

(* -- Summaries and config -------------------------------------------------- *)

let summarize_array_matches_list () =
  let flows = batch_flows (Lazy.force lossless) in
  Alcotest.(check bool) "array summary = list summary" true
    (Refill.Reconstruct.summarize flows
    = Refill.Reconstruct.summarize_array (Array.of_list flows))

let config_validation () =
  (match Refill.Config.validate Refill.Config.default with
  | Ok c -> Alcotest.(check bool) "default valid" true (c = Refill.Config.default)
  | Error e -> Alcotest.failf "default invalid: %s" (Refill.Error.message e));
  List.iter
    (fun bad ->
      match Refill.Config.validate bad with
      | Ok _ -> Alcotest.fail "invalid config accepted"
      | Error e -> Alcotest.(check int) "exit 2" 2 (Refill.Error.exit_code e))
    [
      { Refill.Config.default with watermark = 0 };
      { Refill.Config.default with chunk_events = -3 };
      { Refill.Config.default with jobs = Some 0 };
      { Refill.Config.default with shards = 0 };
      { Refill.Config.default with late_retention = Some (-1) };
    ]

let () =
  Alcotest.run "stream"
    [
      ( "equivalence",
        [
          Alcotest.test_case "lossless stream equals batch" `Quick
            lossless_stream_equals_batch;
          QCheck_alcotest.to_alcotest chunk_invariance;
          QCheck_alcotest.to_alcotest lossy_divergence_is_flagged;
          QCheck_alcotest.to_alcotest sharded_identical_lossless;
          QCheck_alcotest.to_alcotest sharded_identical_lossy;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "resume is byte-identical" `Quick
            checkpoint_resume_identical;
          Alcotest.test_case "sharded cut/resume is byte-identical" `Quick
            sharded_checkpoint_resume_identical;
          Alcotest.test_case "config conflict on resume rejected" `Quick
            resume_config_conflict_rejected;
          Alcotest.test_case "nonsense headers rejected" `Quick
            resume_rejects_nonsense_headers;
          Alcotest.test_case "v1 checkpoint still readable" `Quick
            v1_checkpoint_still_readable;
          Alcotest.test_case "evicted table is bounded" `Quick
            evicted_table_is_bounded;
          Alcotest.test_case "garbage rejected" `Quick resume_rejects_garbage;
          Alcotest.test_case "feed after finish" `Quick
            feed_after_finish_raises;
        ] );
      ( "segments",
        [
          Alcotest.test_case "seg reader round-trip" `Quick
            seg_reader_roundtrip;
          Alcotest.test_case "seg skip" `Quick seg_skip_fast_forwards;
          Alcotest.test_case "exact record lines" `Quick
            exact_record_line_roundtrip;
          Alcotest.test_case "codec segment round-trip" `Quick
            codec_segment_roundtrip;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "incremental merge equals batch" `Quick
            incremental_merge_equals_batch;
        ] );
      ( "api",
        [
          Alcotest.test_case "summarize_array" `Quick
            summarize_array_matches_list;
          Alcotest.test_case "config validation" `Quick config_validation;
        ] );
    ]

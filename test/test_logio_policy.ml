(* Tests for log serialization (Log_io), logging policies, and the in-band
   log transport. *)

let record node kind ~origin ~seq ~time ~gseq : Logsys.Record.t =
  { node; kind; origin; pkt_seq = seq; true_time = time; gseq }

(* -- Log_io ----------------------------------------------------------------- *)

let roundtrip_records () =
  let records : Logsys.Record.t list =
    [
      record 1 Gen ~origin:1 ~seq:0 ~time:0.5 ~gseq:0;
      record 1 (Trans { to_ = 2 }) ~origin:1 ~seq:0 ~time:1.25 ~gseq:1;
      record 2 (Recv { from = 1 }) ~origin:1 ~seq:0 ~time:1.5 ~gseq:2;
      record 2 (Dup { from = 1 }) ~origin:1 ~seq:0 ~time:2. ~gseq:3;
      record 2 (Overflow { from = 1 }) ~origin:1 ~seq:0 ~time:2.5 ~gseq:4;
      record 1 (Ack_recvd { to_ = 2 }) ~origin:1 ~seq:0 ~time:3. ~gseq:5;
      record 1 (Retx_timeout { to_ = 2 }) ~origin:1 ~seq:0 ~time:4. ~gseq:6;
      record 0 Deliver ~origin:1 ~seq:0 ~time:5. ~gseq:7;
    ]
  in
  List.iter
    (fun r ->
      let line = Logsys.Log_io.record_to_line r in
      let back = Logsys.Log_io.record_of_line line in
      Alcotest.(check string) "kind survives"
        (Logsys.Record.kind_name r.kind)
        (Logsys.Record.kind_name back.kind);
      Alcotest.(check bool) "record roundtrips" true (back = r))
    records

let record_of_line_rejects_garbage () =
  Alcotest.(check bool) "bad line raises" true
    (match Logsys.Log_io.record_of_line "nonsense" with
    | exception Failure _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad kind raises" true
    (match Logsys.Log_io.record_of_line "r 1 teleport - 1 0 0.0 0" with
    | exception Failure _ -> true
    | _ -> false)

let roundtrip_dump () =
  let logger = Logsys.Logger.create ~n_nodes:3 in
  Logsys.Logger.log logger (record 1 Gen ~origin:1 ~seq:0 ~time:0. ~gseq:0);
  Logsys.Logger.log logger
    (record 1 (Trans { to_ = 0 }) ~origin:1 ~seq:0 ~time:1. ~gseq:1);
  Logsys.Logger.log logger
    (record 0 (Recv { from = 1 }) ~origin:1 ~seq:0 ~time:2. ~gseq:2);
  let collected = Logsys.Collected.of_logger logger in
  let truth = Logsys.Truth.create () in
  Logsys.Truth.record truth ~origin:1 ~seq:0
    {
      cause = Logsys.Cause.Received_loss;
      loss_node = Some 0;
      path = [ 1; 0 ];
      generated_at = 0.;
      resolved_at = 2.;
    };
  let path = Filename.temp_file "refill" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Logsys.Log_io.save_file path ~sink:0 ~truth collected;
      let dump = Logsys.Log_io.load_file path in
      Alcotest.(check int) "nodes" 3 dump.n_nodes;
      Alcotest.(check int) "sink" 0 dump.sink;
      Alcotest.(check int) "records" 3 (Logsys.Collected.total dump.collected);
      (* Per-node order preserved. *)
      let n1 = Logsys.Collected.node_log dump.collected 1 in
      Alcotest.(check (list string)) "node 1 order" [ "gen"; "trans" ]
        (Array.to_list n1
        |> List.map (fun (r : Logsys.Record.t) ->
               Logsys.Record.kind_name r.kind));
      match dump.truth with
      | None -> Alcotest.fail "truth expected"
      | Some t -> (
          Alcotest.(check int) "one fate" 1 (Logsys.Truth.count t);
          match Logsys.Truth.find t ~origin:1 ~seq:0 with
          | Some fate ->
              Alcotest.(check string) "cause" "received"
                (Logsys.Cause.name fate.cause);
              Alcotest.(check (option int)) "loss node" (Some 0) fate.loss_node;
              Alcotest.(check (list int)) "path" [ 1; 0 ] fate.path
          | None -> Alcotest.fail "fate missing"))

let dump_without_truth () =
  let logger = Logsys.Logger.create ~n_nodes:2 in
  Logsys.Logger.log logger (record 1 Gen ~origin:1 ~seq:0 ~time:0. ~gseq:0);
  let path = Filename.temp_file "refill" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Logsys.Log_io.save_file path ~sink:0 (Logsys.Collected.of_logger logger);
      let dump = Logsys.Log_io.load_file path in
      Alcotest.(check bool) "no truth" true (dump.truth = None))

let load_rejects_bad_header () =
  let path = Filename.temp_file "refill" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a dump\n";
      close_out oc;
      Alcotest.(check bool) "raises" true
        (match Logsys.Log_io.load_file path with
        | exception Failure _ -> true
        | _ -> false))

let full_pipeline_through_file () =
  (* simulate → save → load → reconstruct gives identical verdicts. *)
  let scenario = Scenario.Citysee.run Scenario.Citysee.tiny in
  let collected = Scenario.Citysee.collected scenario in
  let verdicts c =
    (let acc = ref [] in
     Refill.Reconstruct.run c ~sink:scenario.sink ~emit:(fun f ->
         acc := f :: !acc);
     List.rev !acc)
    |> List.map (fun (f : Refill.Flow.t) ->
           ((f.origin, f.seq), (Refill.Classify.classify f).cause))
  in
  let path = Filename.temp_file "refill" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Logsys.Log_io.save_file path ~sink:scenario.sink collected;
      let dump = Logsys.Log_io.load_file path in
      Alcotest.(check bool) "verdicts identical" true
        (verdicts collected = verdicts dump.collected))

(* -- Codec ------------------------------------------------------------------ *)

let codec_roundtrip_all_kinds () =
  let records : Logsys.Record.t list =
    [
      record 3 Gen ~origin:3 ~seq:0 ~time:0. ~gseq:0;
      record 3 (Trans { to_ = 12 }) ~origin:3 ~seq:0 ~time:0. ~gseq:0;
      record 12 (Recv { from = 3 }) ~origin:3 ~seq:0 ~time:0. ~gseq:0;
      record 12 (Dup { from = 3 }) ~origin:3 ~seq:0 ~time:0. ~gseq:0;
      record 12 (Overflow { from = 3 }) ~origin:3 ~seq:0 ~time:0. ~gseq:0;
      record 3 (Ack_recvd { to_ = 12 }) ~origin:3 ~seq:0 ~time:0. ~gseq:0;
      record 3 (Retx_timeout { to_ = 12 }) ~origin:3 ~seq:0 ~time:0. ~gseq:0;
      record 0 Deliver ~origin:3 ~seq:0 ~time:0. ~gseq:0;
      (* The unknown-peer sentinel must survive (zig-zag). *)
      record 5 (Recv { from = -1 }) ~origin:5 ~seq:9 ~time:0. ~gseq:0;
    ]
  in
  List.iter
    (fun (r : Logsys.Record.t) ->
      let b = Logsys.Codec.encode_log [| r |] in
      let back = Logsys.Codec.decode_log ~node:r.node b in
      Alcotest.(check int) "one record" 1 (Array.length back);
      Alcotest.(check string) "kind" (Logsys.Record.kind_name r.kind)
        (Logsys.Record.kind_name back.(0).kind);
      Alcotest.(check (option int)) "peer" (Logsys.Record.peer r)
        (Logsys.Record.peer back.(0));
      Alcotest.(check (pair int int)) "packet key"
        (Logsys.Record.packet_key r)
        (Logsys.Record.packet_key back.(0)))
    records

let codec_sizes_small () =
  let r = record 3 (Trans { to_ = 12 }) ~origin:3 ~seq:7 ~time:0. ~gseq:0 in
  let size = Logsys.Codec.encoded_size r in
  Alcotest.(check bool) "4 bytes for a small record" true (size <= 4);
  let b = Logsys.Codec.encode_log [| r |] in
  Alcotest.(check int) "size matches encoding" size (Bytes.length b);
  (* Large sequence numbers grow gracefully. *)
  let big = record 3 (Trans { to_ = 12 }) ~origin:3 ~seq:100_000 ~time:0. ~gseq:0 in
  Alcotest.(check bool) "varint growth" true
    (Logsys.Codec.encoded_size big <= 7)

let codec_rejects_garbage () =
  Alcotest.(check bool) "truncated" true
    (match Logsys.Codec.decode_log ~node:0 (Bytes.of_string "\x04") with
    | exception Failure _ -> true
    | _ -> false)

let codec_log_roundtrip_property =
  QCheck.Test.make ~name:"codec roundtrips whole logs" ~count:100
    QCheck.(
      small_list
        (quad (int_range 0 7) (int_range 0 1000) (int_range 0 1000)
           (int_range 0 100000)))
    (fun raw ->
      let log =
        raw
        |> List.map (fun (tag, peer, origin, seq) ->
               let kind : Logsys.Record.kind =
                 match tag with
                 | 0 -> Gen
                 | 1 -> Recv { from = peer }
                 | 2 -> Dup { from = peer }
                 | 3 -> Overflow { from = peer }
                 | 4 -> Trans { to_ = peer }
                 | 5 -> Ack_recvd { to_ = peer }
                 | 6 -> Retx_timeout { to_ = peer }
                 | _ -> Deliver
               in
               record 9 kind ~origin ~seq ~time:0. ~gseq:0)
        |> Array.of_list
      in
      let back = Logsys.Codec.decode_log ~node:9 (Logsys.Codec.encode_log log) in
      Array.length back = Array.length log
      && Array.for_all2
           (fun (a : Logsys.Record.t) (b : Logsys.Record.t) ->
             a.kind = b.kind && a.origin = b.origin && a.pkt_seq = b.pkt_seq)
           log back)

let codec_truncation_property =
  (* Cutting an encoded log at any byte boundary must either fail cleanly
     or decode to an exact prefix of the original — never garbage records
     or a crash other than [Failure]. *)
  QCheck.Test.make ~name:"codec truncation yields prefix or Failure" ~count:200
    QCheck.(
      pair
        (small_list
           (quad (int_range 0 7) (int_range 0 1000) (int_range 0 1000)
              (int_range 0 100000)))
        small_nat)
    (fun (raw, cut) ->
      let log =
        raw
        |> List.map (fun (tag, peer, origin, seq) ->
               let kind : Logsys.Record.kind =
                 match tag with
                 | 0 -> Gen
                 | 1 -> Recv { from = peer }
                 | 2 -> Dup { from = peer }
                 | 3 -> Overflow { from = peer }
                 | 4 -> Trans { to_ = peer }
                 | 5 -> Ack_recvd { to_ = peer }
                 | 6 -> Retx_timeout { to_ = peer }
                 | _ -> Deliver
               in
               record 9 kind ~origin ~seq ~time:0. ~gseq:0)
        |> Array.of_list
      in
      let b = Logsys.Codec.encode_log log in
      let cut = min cut (Bytes.length b) in
      match Logsys.Codec.decode_log ~node:9 (Bytes.sub b 0 cut) with
      | exception Failure _ -> true
      | back ->
          Array.length back <= Array.length log
          && Array.for_all2
               (fun (a : Logsys.Record.t) (b : Logsys.Record.t) ->
                 a.kind = b.kind && a.origin = b.origin
                 && a.pkt_seq = b.pkt_seq)
               (Array.sub log 0 (Array.length back))
               back)

let codec_rejects_oversized_varint () =
  (* Tag 0 (gen) followed by a varint with ten continuation groups — more
     than a 63-bit int can hold.  Must fail, not silently wrap. *)
  let b = Bytes.of_string "\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01" in
  Alcotest.(check bool) "overflow rejected" true
    (match Logsys.Codec.decode_log ~node:0 b with
    | exception Failure _ -> true
    | _ -> false);
  (* Nine groups (shift 56) still fit and must decode. *)
  let buf = Buffer.create 16 in
  let r = record 3 Gen ~origin:0 ~seq:(1 lsl 60) ~time:0. ~gseq:0 in
  Logsys.Codec.encode_record buf r;
  let back =
    Logsys.Codec.decode_log ~node:3 (Bytes.of_string (Buffer.contents buf))
  in
  Alcotest.(check int) "large seq survives" (1 lsl 60) back.(0).pkt_seq

let codec_real_logs_compact () =
  let scenario = Scenario.Citysee.run Scenario.Citysee.tiny in
  let logger = Node.Network.logger scenario.network in
  let total_records = Logsys.Logger.total logger in
  let total_bytes = ref 0 in
  for node = 0 to Logsys.Logger.n_nodes logger - 1 do
    total_bytes := !total_bytes + Logsys.Codec.log_size (Logsys.Logger.node_log logger node)
  done;
  let per_record = float_of_int !total_bytes /. float_of_int total_records in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f bytes/record <= 5" per_record)
    true (per_record <= 5.)

(* -- Logging policy ------------------------------------------------------------ *)

let policy_all_is_identity () =
  let scenario = Scenario.Citysee.run Scenario.Citysee.tiny in
  let collected = Scenario.Citysee.collected scenario in
  let filtered = Logsys.Logging_policy.apply Logsys.Logging_policy.all collected in
  Alcotest.(check int) "same size" (Logsys.Collected.total collected)
    (Logsys.Collected.total filtered)

let policy_without_removes_kind () =
  let logger = Logsys.Logger.create ~n_nodes:2 in
  Logsys.Logger.log logger (record 1 Gen ~origin:1 ~seq:0 ~time:0. ~gseq:0);
  Logsys.Logger.log logger
    (record 1 (Trans { to_ = 0 }) ~origin:1 ~seq:0 ~time:1. ~gseq:1);
  Logsys.Logger.log logger
    (record 1 (Ack_recvd { to_ = 0 }) ~origin:1 ~seq:0 ~time:2. ~gseq:2);
  let collected = Logsys.Collected.of_logger logger in
  let filtered =
    Logsys.Logging_policy.apply
      (Logsys.Logging_policy.without [ "ack" ])
      collected
  in
  Alcotest.(check int) "ack gone" 2 (Logsys.Collected.total filtered);
  let filtered_only =
    Logsys.Logging_policy.apply
      (Logsys.Logging_policy.only [ "gen" ])
      collected
  in
  Alcotest.(check int) "only gen" 1 (Logsys.Collected.total filtered_only)

let policy_validation () =
  Alcotest.(check bool) "unknown kind rejected" true
    (match Logsys.Logging_policy.without [ "warp" ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "records_kind" true
    (Logsys.Logging_policy.records_kind Logsys.Logging_policy.all "recv");
  Alcotest.(check bool) "describe all" true
    (Logsys.Logging_policy.describe Logsys.Logging_policy.all = "all");
  Alcotest.(check string) "describe without" "without ack, recv"
    (Logsys.Logging_policy.describe
       (Logsys.Logging_policy.without [ "recv"; "ack" ]));
  Alcotest.(check int) "8 kinds" 8
    (List.length Logsys.Logging_policy.kind_names)

let policy_logs_predicate () =
  let p = Logsys.Logging_policy.without [ "trans" ] in
  Alcotest.(check bool) "trans dropped" false
    (Logsys.Logging_policy.logs p (Logsys.Record.Trans { to_ = 1 }));
  Alcotest.(check bool) "recv kept" true
    (Logsys.Logging_policy.logs p (Logsys.Record.Recv { from = 1 }))

(* -- In-band transport ----------------------------------------------------------- *)

let in_band_scenario =
  lazy
    (Scenario.Citysee.run
       { Scenario.Citysee.tiny with in_band_logs = true })

let in_band_collects_subset () =
  let scenario = Lazy.force in_band_scenario in
  match Scenario.Citysee.collected_in_band scenario with
  | None -> Alcotest.fail "transport enabled but no collection"
  | Some collected ->
      let written =
        Logsys.Logger.total (Node.Network.logger scenario.network)
      in
      let got = Logsys.Collected.total collected in
      Alcotest.(check bool) "nonempty" true (got > 0);
      Alcotest.(check bool) "subset of written" true (got <= written);
      (* Every collected record was genuinely written (match by gseq). *)
      let gt =
        Logsys.Logger.ground_truth (Node.Network.logger scenario.network)
      in
      let written_gseqs = Hashtbl.create 1024 in
      List.iter
        (fun (r : Logsys.Record.t) -> Hashtbl.replace written_gseqs r.gseq r)
        gt;
      for node = 0 to Logsys.Collected.n_nodes collected - 1 do
        Array.iter
          (fun (r : Logsys.Record.t) ->
            match Hashtbl.find_opt written_gseqs r.gseq with
            | Some original ->
                Alcotest.(check bool) "identical to written" true (r = original)
            | None -> Alcotest.fail "collected a record never written")
          (Logsys.Collected.node_log collected node)
      done

let in_band_preserves_local_order () =
  let scenario = Lazy.force in_band_scenario in
  match Scenario.Citysee.collected_in_band scenario with
  | None -> Alcotest.fail "no collection"
  | Some collected ->
      for node = 0 to Logsys.Collected.n_nodes collected - 1 do
        let last = ref (-1) in
        Array.iter
          (fun (r : Logsys.Record.t) ->
            Alcotest.(check bool) "gseq increasing" true (r.gseq > !last);
            last := r.gseq)
          (Logsys.Collected.node_log collected node)
      done

let in_band_stats_consistent () =
  let scenario = Lazy.force in_band_scenario in
  match Node.Network.in_band_stats scenario.network with
  | None -> Alcotest.fail "stats expected"
  | Some (written, dropped, collected) ->
      Alcotest.(check bool) "collected <= written" true (collected <= written);
      Alcotest.(check bool) "counters nonnegative" true
        (written >= 0 && dropped >= 0 && collected >= 0);
      Alcotest.(check int) "written matches logger" written
        (Logsys.Logger.total (Node.Network.logger scenario.network));
      (* Healthy tiny network: most of the log arrives. *)
      Alcotest.(check bool) "reasonable yield" true
        (float_of_int collected /. float_of_int written > 0.5)

let no_transport_means_none () =
  let scenario = Scenario.Citysee.run Scenario.Citysee.tiny in
  Alcotest.(check bool) "no collection" true
    (Scenario.Citysee.collected_in_band scenario = None);
  Alcotest.(check bool) "no stats" true
    (Node.Network.in_band_stats scenario.network = None)

let in_band_reconstruction_works () =
  let scenario = Lazy.force in_band_scenario in
  match Scenario.Citysee.collected_in_band scenario with
  | None -> Alcotest.fail "no collection"
  | Some collected ->
      let truth = Node.Network.truth scenario.network in
      let flows_rev = ref [] in
      Refill.Reconstruct.run collected ~sink:scenario.sink ~emit:(fun f ->
          flows_rev := f :: !flows_rev);
      let flows = List.rev !flows_rev in
      let confusion =
        Analysis.Metrics.confusion ~truth
          ~verdicts:
            (List.map
               (fun (f : Refill.Flow.t) ->
                 ((f.origin, f.seq), (Refill.Classify.classify f).cause))
               flows)
      in
      Alcotest.(check bool) "covers most packets" true
        (confusion.total
        > Logsys.Truth.count truth / 2);
      Alcotest.(check bool)
        (Printf.sprintf "useful accuracy (%.2f)"
           (Analysis.Metrics.accuracy confusion))
        true
        (Analysis.Metrics.accuracy confusion > 0.6)

let () =
  Alcotest.run "logio-policy-inband"
    [
      ( "log_io",
        [
          Alcotest.test_case "record roundtrip" `Quick roundtrip_records;
          Alcotest.test_case "rejects garbage" `Quick
            record_of_line_rejects_garbage;
          Alcotest.test_case "dump roundtrip" `Quick roundtrip_dump;
          Alcotest.test_case "dump without truth" `Quick dump_without_truth;
          Alcotest.test_case "bad header" `Quick load_rejects_bad_header;
          Alcotest.test_case "pipeline through file" `Quick
            full_pipeline_through_file;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip all kinds" `Quick
            codec_roundtrip_all_kinds;
          Alcotest.test_case "sizes" `Quick codec_sizes_small;
          Alcotest.test_case "rejects garbage" `Quick codec_rejects_garbage;
          Alcotest.test_case "rejects oversized varint" `Quick
            codec_rejects_oversized_varint;
          Alcotest.test_case "real logs compact" `Quick codec_real_logs_compact;
          QCheck_alcotest.to_alcotest codec_log_roundtrip_property;
          QCheck_alcotest.to_alcotest codec_truncation_property;
        ] );
      ( "logging_policy",
        [
          Alcotest.test_case "all is identity" `Quick policy_all_is_identity;
          Alcotest.test_case "without/only" `Quick policy_without_removes_kind;
          Alcotest.test_case "validation" `Quick policy_validation;
          Alcotest.test_case "logs predicate" `Quick policy_logs_predicate;
        ] );
      ( "in_band",
        [
          Alcotest.test_case "collects subset" `Quick in_band_collects_subset;
          Alcotest.test_case "local order" `Quick in_band_preserves_local_order;
          Alcotest.test_case "stats consistent" `Quick in_band_stats_consistent;
          Alcotest.test_case "disabled is none" `Quick no_transport_means_none;
          Alcotest.test_case "reconstruction works" `Quick
            in_band_reconstruction_works;
        ] );
    ]

(* Tests for the comparison baselines: naive per-node semantics, the
   sink-view method, time-correlation, and Wit-style merging. *)

let record node kind ~origin : Logsys.Record.t =
  { node; kind; origin; pkt_seq = 0; true_time = 0.; gseq = 0 }

let collected_of records ~n_nodes =
  let logger = Logsys.Logger.create ~n_nodes in
  List.iteri
    (fun i (r : Logsys.Record.t) ->
      Logsys.Logger.log logger { r with gseq = i; true_time = float_of_int i })
    records;
  Logsys.Collected.of_logger logger

(* -- Naive ----------------------------------------------------------------------- *)

let naive_delivered_chain () =
  let c =
    collected_of ~n_nodes:4
      [
        record 1 Gen ~origin:1;
        record 1 (Trans { to_ = 2 }) ~origin:1;
        record 1 (Ack_recvd { to_ = 2 }) ~origin:1;
        record 2 (Recv { from = 1 }) ~origin:1;
        record 2 (Trans { to_ = 0 }) ~origin:1;
        record 2 (Ack_recvd { to_ = 0 }) ~origin:1;
        record 0 (Recv { from = 2 }) ~origin:1;
        record 0 Deliver ~origin:1;
      ]
  in
  let v = Baseline.Naive.classify c ~origin:1 ~seq:0 ~sink:0 in
  Alcotest.(check string) "delivered" "delivered" (Logsys.Cause.name v.cause)

let naive_trans_without_ack () =
  let c =
    collected_of ~n_nodes:4
      [ record 1 Gen ~origin:1; record 1 (Trans { to_ = 2 }) ~origin:1 ]
  in
  let v = Baseline.Naive.classify c ~origin:1 ~seq:0 ~sink:0 in
  Alcotest.(check string) "timeout verdict" "timeout" (Logsys.Cause.name v.cause);
  Alcotest.(check (option int)) "at sender" (Some 1) v.loss_node

let naive_fooled_by_ack_ordering () =
  (* Table II case 3: ack then trans. Naive sees trans+ack and walks on,
     reaching node 2 which has no records → Unknown; REFILL instead
     diagnoses the re-transmission loss. This test pins the baseline's
     documented blindness. *)
  let c =
    collected_of ~n_nodes:4
      [
        record 1 (Ack_recvd { to_ = 2 }) ~origin:1;
        record 1 (Trans { to_ = 2 }) ~origin:1;
      ]
  in
  let v = Baseline.Naive.classify c ~origin:1 ~seq:0 ~sink:0 in
  Alcotest.(check string) "unknown (blind to ordering)" "unknown"
    (Logsys.Cause.name v.cause)

let naive_fooled_by_sink_serial_loss () =
  (* Packet acked into the sink, sink logged nothing (serial interrupt
     drop): naive optimistically declares Delivered — the pre-REFILL
     blindness to the CitySee sink problem. *)
  let c =
    collected_of ~n_nodes:4
      [
        record 1 Gen ~origin:1;
        record 1 (Trans { to_ = 0 }) ~origin:1;
        record 1 (Ack_recvd { to_ = 0 }) ~origin:1;
      ]
  in
  let v = Baseline.Naive.classify c ~origin:1 ~seq:0 ~sink:0 in
  Alcotest.(check string) "wrongly delivered" "delivered"
    (Logsys.Cause.name v.cause)

let naive_sees_explicit_drops () =
  let c =
    collected_of ~n_nodes:4
      [
        record 1 Gen ~origin:1;
        record 1 (Trans { to_ = 2 }) ~origin:1;
        record 1 (Ack_recvd { to_ = 2 }) ~origin:1;
        record 2 (Dup { from = 1 }) ~origin:1;
      ]
  in
  let v = Baseline.Naive.classify c ~origin:1 ~seq:0 ~sink:0 in
  Alcotest.(check string) "dup" "duplicate" (Logsys.Cause.name v.cause);
  Alcotest.(check (option int)) "position" (Some 2) v.loss_node

let naive_received_loss () =
  let c =
    collected_of ~n_nodes:4
      [
        record 1 Gen ~origin:1;
        record 1 (Trans { to_ = 2 }) ~origin:1;
        record 1 (Ack_recvd { to_ = 2 }) ~origin:1;
        record 2 (Recv { from = 1 }) ~origin:1;
      ]
  in
  let v = Baseline.Naive.classify c ~origin:1 ~seq:0 ~sink:0 in
  Alcotest.(check string) "received" "received" (Logsys.Cause.name v.cause);
  Alcotest.(check (option int)) "at node 2" (Some 2) v.loss_node

let naive_classify_all_covers_packets () =
  let c =
    collected_of ~n_nodes:4
      [ record 1 Gen ~origin:1; record 2 Gen ~origin:2 ]
  in
  let all = Baseline.Naive.classify_all c ~sink:0 in
  Alcotest.(check int) "two packets" 2 (List.length all)

(* -- Sink view -------------------------------------------------------------------- *)

let sink_view_finds_losses () =
  let delivered = [ (1, 0, 100.); (1, 2, 220.); (2, 0, 100.) ] in
  let expected = [ (1, 0); (1, 1); (1, 2); (2, 0); (2, 1) ] in
  let lost =
    Baseline.Sink_view.analyze ~delivered ~expected ~data_interval:60.
  in
  Alcotest.(check int) "two lost" 2 (List.length lost);
  let l1 =
    List.find (fun (l : Baseline.Sink_view.lost_packet) -> l.origin = 1) lost
  in
  (* (1,1): preceding delivery (1,0) at t=100, gap 1 → estimate 160. *)
  Alcotest.(check int) "seq" 1 l1.seq;
  Alcotest.(check (float 1e-9)) "gap interpolation" 160. l1.estimated_time;
  let l2 =
    List.find (fun (l : Baseline.Sink_view.lost_packet) -> l.origin = 2) lost
  in
  Alcotest.(check (float 1e-9)) "after last delivery" 160. l2.estimated_time

let sink_view_no_preceding () =
  (* Lost seq 0 with a later delivery at seq 1: counted backwards. *)
  let lost =
    Baseline.Sink_view.analyze
      ~delivered:[ (3, 1, 500.) ]
      ~expected:[ (3, 0); (3, 1) ]
      ~data_interval:60.
  in
  match lost with
  | [ l ] -> Alcotest.(check (float 1e-9)) "backwards" 440. l.estimated_time
  | _ -> Alcotest.fail "one loss expected"

let sink_view_counts_by_origin () =
  let lost =
    Baseline.Sink_view.analyze ~delivered:[]
      ~expected:[ (1, 0); (1, 1); (5, 0) ]
      ~data_interval:60.
  in
  Alcotest.(check (list (pair int int))) "counts" [ (1, 2); (5, 1) ]
    (Baseline.Sink_view.loss_count_by_origin lost)

(* -- Time correlation --------------------------------------------------------------- *)

let time_corr_window_profiles () =
  let records =
    [
      { (record 1 (Retx_timeout { to_ = 2 }) ~origin:1) with true_time = 5. };
      { (record 1 (Retx_timeout { to_ = 2 }) ~origin:1) with true_time = 8. };
      { (record 2 (Dup { from = 1 }) ~origin:1) with true_time = 15. };
    ]
  in
  let profiles = Baseline.Time_corr.profile_windows ~records ~window_size:10. in
  Alcotest.(check int) "two windows" 2 (List.length profiles);
  let w0 = List.find (fun (p : Baseline.Time_corr.window_profile) -> p.window = 0) profiles in
  Alcotest.(check int) "timeouts in w0" 2 w0.timeouts

let time_corr_dominant_cause () =
  let records =
    [
      { (record 1 (Retx_timeout { to_ = 2 }) ~origin:1) with true_time = 5. };
      { (record 2 (Dup { from = 1 }) ~origin:1) with true_time = 6. };
      { (record 1 (Retx_timeout { to_ = 2 }) ~origin:1) with true_time = 7. };
    ]
  in
  let profiles = Baseline.Time_corr.profile_windows ~records ~window_size:10. in
  (* The window has 2 timeouts and 1 dup: every loss in it becomes timeout —
     the paper's coexisting-causes criticism. *)
  Alcotest.(check string) "dominant wins" "timeout"
    (Logsys.Cause.name
       (Baseline.Time_corr.classify ~profiles ~window_size:10. ~loss_time:6.));
  Alcotest.(check string) "quiet window falls back" "received"
    (Logsys.Cause.name
       (Baseline.Time_corr.classify ~profiles ~window_size:10. ~loss_time:95.))

let time_corr_classify_all () =
  let verdicts =
    Baseline.Time_corr.classify_all ~records:[] ~window_size:10.
      ~losses:[ ((1, 0), 5.); ((1, 1), 15.) ]
  in
  Alcotest.(check int) "all classified" 2 (List.length verdicts)

(* -- Wit-style merge ----------------------------------------------------------------- *)

let wit_complete_chain () =
  let c =
    collected_of ~n_nodes:4
      [
        record 1 Gen ~origin:1;
        record 1 (Trans { to_ = 2 }) ~origin:1;
        record 2 (Recv { from = 1 }) ~origin:1;
        record 2 (Trans { to_ = 0 }) ~origin:1;
        record 0 (Recv { from = 2 }) ~origin:1;
        record 0 Deliver ~origin:1;
      ]
  in
  let m = Baseline.Wit_merge.merge c ~origin:1 ~seq:0 ~sink:0 in
  Alcotest.(check bool) "complete" true m.complete;
  Alcotest.(check (list (pair int int))) "chain" [ (1, 2); (2, 0) ] m.chain

let wit_breaks_on_missing_side () =
  (* Node 2's log lost: the (1→2) hop has no receiver-side record, so there
     is no common event to join on — the merge breaks at node 1. *)
  let c =
    collected_of ~n_nodes:4
      [
        record 1 Gen ~origin:1;
        record 1 (Trans { to_ = 2 }) ~origin:1;
        record 0 (Recv { from = 2 }) ~origin:1;
        record 0 Deliver ~origin:1;
      ]
  in
  let m = Baseline.Wit_merge.merge c ~origin:1 ~seq:0 ~sink:0 in
  Alcotest.(check bool) "broken" false m.complete;
  Alcotest.(check (option int)) "at node 1" (Some 1) m.broken_at;
  Alcotest.(check (list (pair int int))) "no hops joined" [] m.chain

let wit_terminal_drop_is_complete () =
  let c =
    collected_of ~n_nodes:4
      [
        record 1 Gen ~origin:1;
        record 1 (Trans { to_ = 2 }) ~origin:1;
        record 2 (Overflow { from = 1 }) ~origin:1;
      ]
  in
  let m = Baseline.Wit_merge.merge c ~origin:1 ~seq:0 ~sink:0 in
  (* Wait: the overflow is on node 2 but the walk starts at node 1, which
     has a trans and node 2 has no recv — but node 1 itself has no terminal
     record. The hop cannot be joined (no recv on 2), so the chain breaks. *)
  Alcotest.(check bool) "broken at sender" false m.complete

let wit_mergeable_fraction () =
  Alcotest.(check (float 1e-9)) "empty" 0.
    (Baseline.Wit_merge.mergeable_fraction []);
  let fake_complete = { Baseline.Wit_merge.chain = []; complete = true; broken_at = None } in
  let fake_broken = { fake_complete with complete = false } in
  Alcotest.(check (float 1e-9)) "half" 0.5
    (Baseline.Wit_merge.mergeable_fraction
       [ ((0, 0), fake_complete); ((0, 1), fake_broken) ])

(* -- PathZip ---------------------------------------------------------------------- *)

let pathzip_recovers_line_path () =
  let topo =
    Net.Topology.create
      ~positions:(Array.init 5 (fun i -> (float_of_int i *. 5., 0.)))
      ~range:8.
  in
  let path = [ 4; 3; 2; 1; 0 ] in
  let r =
    Baseline.Pathzip.recover topo ~origin:4 ~sink:0
      ~hash:(Baseline.Pathzip.hash_path path) ~max_hops:8 ~budget:10_000
  in
  Alcotest.(check (option (list int))) "exact path" (Some path) r.path;
  Alcotest.(check bool) "bounded work" true (r.expanded < 100)

let pathzip_wrong_hash_fails () =
  let topo =
    Net.Topology.create
      ~positions:(Array.init 4 (fun i -> (float_of_int i *. 5., 0.)))
      ~range:8.
  in
  let r =
    Baseline.Pathzip.recover topo ~origin:3 ~sink:0 ~hash:42 ~max_hops:8
      ~budget:10_000
  in
  Alcotest.(check (option (list int))) "no match" None r.path

let pathzip_budget_respected () =
  (* A dense topology with a tiny budget: the search must stop. *)
  let rng = Prelude.Rng.create ~seed:2L in
  let topo = Net.Topology.random_geometric rng ~n:30 ~side:30. ~range:20. in
  let r =
    Baseline.Pathzip.recover topo ~origin:29 ~sink:0 ~hash:1 ~max_hops:10
      ~budget:50
  in
  Alcotest.(check bool) "stopped at budget" true (r.expanded <= 50);
  Alcotest.(check (option (list int))) "gave up" None r.path

let pathzip_hash_order_sensitive () =
  Alcotest.(check bool) "order matters" true
    (Baseline.Pathzip.hash_path [ 1; 2; 3 ]
    <> Baseline.Pathzip.hash_path [ 3; 2; 1 ])

let pathzip_on_simulated_truth () =
  let scenario = Scenario.Citysee.run Scenario.Citysee.tiny in
  let stats =
    Baseline.Pathzip.recover_delivered
      (Node.Network.topology scenario.network)
      ~truth:(Node.Network.truth scenario.network)
      ~sink:scenario.sink ~max_hops:12 ~budget:200_000
  in
  Alcotest.(check bool) "attempted deliveries" true (stats.packets > 100);
  Alcotest.(check bool)
    (Printf.sprintf "recovers most delivered paths (%d/%d)" stats.recovered
       stats.packets)
    true
    (Prelude.Stats.ratio stats.recovered stats.packets > 0.9)

let () =
  Alcotest.run "baseline"
    [
      ( "naive",
        [
          Alcotest.test_case "delivered chain" `Quick naive_delivered_chain;
          Alcotest.test_case "trans without ack" `Quick naive_trans_without_ack;
          Alcotest.test_case "blind to ordering" `Quick
            naive_fooled_by_ack_ordering;
          Alcotest.test_case "blind to sink serial" `Quick
            naive_fooled_by_sink_serial_loss;
          Alcotest.test_case "explicit drops" `Quick naive_sees_explicit_drops;
          Alcotest.test_case "received loss" `Quick naive_received_loss;
          Alcotest.test_case "classify_all" `Quick
            naive_classify_all_covers_packets;
        ] );
      ( "sink_view",
        [
          Alcotest.test_case "finds losses" `Quick sink_view_finds_losses;
          Alcotest.test_case "no preceding delivery" `Quick
            sink_view_no_preceding;
          Alcotest.test_case "counts by origin" `Quick sink_view_counts_by_origin;
        ] );
      ( "time_corr",
        [
          Alcotest.test_case "window profiles" `Quick time_corr_window_profiles;
          Alcotest.test_case "dominant cause" `Quick time_corr_dominant_cause;
          Alcotest.test_case "classify_all" `Quick time_corr_classify_all;
        ] );
      ( "pathzip",
        [
          Alcotest.test_case "line path" `Quick pathzip_recovers_line_path;
          Alcotest.test_case "wrong hash" `Quick pathzip_wrong_hash_fails;
          Alcotest.test_case "budget" `Quick pathzip_budget_respected;
          Alcotest.test_case "order-sensitive hash" `Quick
            pathzip_hash_order_sensitive;
          Alcotest.test_case "simulated truth" `Quick pathzip_on_simulated_truth;
        ] );
      ( "wit_merge",
        [
          Alcotest.test_case "complete chain" `Quick wit_complete_chain;
          Alcotest.test_case "breaks on loss" `Quick wit_breaks_on_missing_side;
          Alcotest.test_case "terminal drop" `Quick wit_terminal_drop_is_complete;
          Alcotest.test_case "mergeable fraction" `Quick wit_mergeable_fraction;
        ] );
    ]

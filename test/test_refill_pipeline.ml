(* Integration tests: simulator → logs → REFILL → verdicts, scored against
   ground truth. These are the repository's core end-to-end guarantees. *)

let run_tiny () =
  Scenario.Citysee.run Scenario.Citysee.tiny

let tiny = lazy (run_tiny ())

let collected () = Scenario.Citysee.collected (Lazy.force tiny)

let truth () = Node.Network.truth (Lazy.force tiny).network

let sink () = (Lazy.force tiny).sink

(* Collect [Reconstruct.run]'s emissions into the list shape these tests
   score. *)
let reconstruct_flows ?jobs collected ~sink =
  let config = { Refill.Config.default with jobs } in
  let acc = ref [] in
  Refill.Reconstruct.run ~config collected ~sink ~emit:(fun f ->
      acc := f :: !acc);
  List.rev !acc

let verdict_causes flows =
  List.map
    (fun (f : Refill.Flow.t) ->
      ((f.origin, f.seq), (Refill.Classify.classify f).cause))
    flows

let lossless_cause_accuracy () =
  let flows = reconstruct_flows (collected ()) ~sink:(sink ()) in
  let confusion =
    Analysis.Metrics.confusion ~truth:(truth ()) ~verdicts:(verdict_causes flows)
  in
  Alcotest.(check bool) "some packets" true (confusion.total > 100);
  Alcotest.(check (float 1e-9)) "perfect on complete logs" 1.0
    (Analysis.Metrics.accuracy confusion)

let lossless_position_accuracy () =
  let flows = reconstruct_flows (collected ()) ~sink:(sink ()) in
  let positions =
    List.map
      (fun (f : Refill.Flow.t) ->
        ((f.origin, f.seq), (Refill.Classify.classify f).loss_node))
      flows
  in
  Alcotest.(check (float 1e-9)) "loss positions exact" 1.0
    (Analysis.Metrics.position_accuracy ~truth:(truth ()) ~positions)

let lossless_delivered_flows_have_no_inference () =
  let flows = reconstruct_flows (collected ()) ~sink:(sink ()) in
  List.iter
    (fun (f : Refill.Flow.t) ->
      match Logsys.Truth.find (truth ()) ~origin:f.origin ~seq:f.seq with
      | Some { cause = Logsys.Cause.Delivered; _ } ->
          Alcotest.(check int) "no inferred events for delivered packets" 0
            f.stats.emitted_inferred
      | Some _ | None -> ())
    flows

let flows_preserve_local_log_order () =
  let collected = collected () in
  let flows = reconstruct_flows collected ~sink:(sink ()) in
  List.iter
    (fun (f : Refill.Flow.t) ->
      (* For each node, the logged (non-inferred) items must appear in the
         same relative order as in that node's log. *)
      let groups =
        Logsys.Collected.events_of_packet collected ~origin:f.origin
          ~seq:f.seq
      in
      List.iter
        (fun (node, records) ->
          let logged_kinds =
            List.filter_map
              (fun (i : Refill.Flow.item) ->
                if i.node = node && not i.inferred then
                  Option.map
                    (fun (r : Logsys.Record.t) -> r.gseq)
                    i.payload
                else None)
              f.items
          in
          let expected =
            List.map (fun (r : Logsys.Record.t) -> r.gseq) records
          in
          (* Flow may omit skipped events; must be a subsequence. *)
          let rec subsequence xs ys =
            match (xs, ys) with
            | [], _ -> true
            | _, [] -> false
            | x :: xt, y :: yt ->
                if x = y then subsequence xt yt else subsequence xs yt
          in
          Alcotest.(check bool)
            (Printf.sprintf "node %d order for packet (%d,%d)" node f.origin
               f.seq)
            true
            (subsequence logged_kinds expected))
        groups)
    flows

let merge_order_does_not_change_verdicts () =
  (* Reconstruction consumes per-packet groups; Collected offers two whole-log
     merges — verify the per-packet engine yields identical verdicts when we
     reverse the cross-node group order by reconstructing from a reversed-id
     relabelling of the same logs. Cheaper equivalent: verdicts must be a
     pure function of the collected snapshot. *)
  let flows1 = reconstruct_flows (collected ()) ~sink:(sink ()) in
  let flows2 = reconstruct_flows (collected ()) ~sink:(sink ()) in
  Alcotest.(check bool) "deterministic"
    true
    (verdict_causes flows1 = verdict_causes flows2)

let lossy_accuracy_degrades_gracefully () =
  let scenario = Lazy.force tiny in
  let delivered_db =
    Logsys.Truth.fold (truth ()) ~init:[] ~f:(fun acc key fate ->
        if Logsys.Cause.equal fate.cause Logsys.Cause.Delivered then
          (key, fate.resolved_at) :: acc
        else acc)
  in
  let accuracy_at p =
    let rng = Prelude.Rng.create ~seed:99L in
    let lossy =
      Logsys.Collected.lossify (Logsys.Loss_model.uniform p) rng (collected ())
    in
    let flows = reconstruct_flows lossy ~sink:scenario.sink in
    let raw =
      List.map
        (fun (f : Refill.Flow.t) ->
          ((f.origin, f.seq), Refill.Classify.classify f))
        flows
    in
    let acc verdicts =
      Analysis.Metrics.accuracy
        (Analysis.Metrics.confusion ~truth:(truth ())
           ~verdicts:
             (List.map
                (fun (k, (v : Refill.Classify.verdict)) -> (k, v.cause))
                verdicts))
    in
    (acc raw, acc (Analysis.Pipeline.refine_with_server ~delivered_db raw))
  in
  let raw0, refined0 = accuracy_at 0.0 in
  let raw2, refined2 = accuracy_at 0.2 in
  let raw5, refined5 = accuracy_at 0.5 in
  Alcotest.(check (float 1e-9)) "lossless perfect (raw)" 1.0 raw0;
  Alcotest.(check (float 1e-9)) "lossless perfect (refined)" 1.0 refined0;
  (* Raw WSN-log verdicts degrade smoothly... *)
  Alcotest.(check bool) "raw still useful at 20%" true (raw2 > 0.7);
  Alcotest.(check bool) "raw monotone" true (raw0 >= raw2 && raw2 >= raw5);
  (* ... and reconciling with the server DB (the paper's §V methodology)
     keeps verdicts strong even under heavy log loss. *)
  Alcotest.(check bool) "refined strong at 20%" true (refined2 > 0.9);
  Alcotest.(check bool) "refined strong at 50%" true (refined5 > 0.9)

let refill_beats_naive_under_loss () =
  let scenario = Lazy.force tiny in
  let rng = Prelude.Rng.create ~seed:7L in
  let lossy =
    Logsys.Collected.lossify (Logsys.Loss_model.uniform 0.25) rng (collected ())
  in
  let refill_acc =
    let flows = reconstruct_flows lossy ~sink:scenario.sink in
    Analysis.Metrics.accuracy
      (Analysis.Metrics.confusion ~truth:(truth ())
         ~verdicts:(verdict_causes flows))
  in
  let naive_acc =
    let verdicts =
      Baseline.Naive.classify_all lossy ~sink:scenario.sink
      |> List.map (fun (key, (v : Baseline.Naive.verdict)) -> (key, v.cause))
    in
    Analysis.Metrics.accuracy
      (Analysis.Metrics.confusion ~truth:(truth ()) ~verdicts)
  in
  Alcotest.(check bool)
    (Printf.sprintf "refill (%.2f) > naive (%.2f)" refill_acc naive_acc)
    true (refill_acc > naive_acc)

let event_recall_high_under_loss () =
  let scenario = Lazy.force tiny in
  let rng = Prelude.Rng.create ~seed:13L in
  let lossy =
    Logsys.Collected.lossify (Logsys.Loss_model.uniform 0.3) rng (collected ())
  in
  let flows = reconstruct_flows lossy ~sink:scenario.sink in
  let gt = Logsys.Logger.ground_truth (Node.Network.logger scenario.network) in
  let q = Analysis.Metrics.flow_quality ~ground_truth:gt ~flows in
  Alcotest.(check bool)
    (Printf.sprintf "recall %.2f > 0.75 (30%% of records destroyed)"
       q.event_recall)
    true (q.event_recall > 0.75);
  Alcotest.(check bool)
    (Printf.sprintf "precision %.2f > 0.9" q.event_precision)
    true (q.event_precision > 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "order agreement %.2f > 0.9" q.order_agreement)
    true (q.order_agreement > 0.9)

let reconstruction_inference_only_under_loss =
  QCheck.Test.make ~name:"inferred events appear only when logs are lossy"
    ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      (* Delivered packets on complete logs never need inference; with the
         uniform loss model applied, inference may appear but logged events
         never exceed the surviving record count. *)
      let scenario = Lazy.force tiny in
      let rng = Prelude.Rng.create ~seed:(Int64.of_int seed) in
      let lossy =
        Logsys.Collected.lossify (Logsys.Loss_model.uniform 0.2) rng
          (collected ())
      in
      let flows = reconstruct_flows lossy ~sink:scenario.sink in
      let summary = Refill.Reconstruct.summarize flows in
      summary.logged_events + summary.skipped_events
      = Logsys.Collected.total lossy)

let summary_totals () =
  let flows = reconstruct_flows (collected ()) ~sink:(sink ()) in
  let s = Refill.Reconstruct.summarize flows in
  Alcotest.(check int) "packet count" (List.length flows) s.packets;
  Alcotest.(check bool) "processed everything" true
    (s.logged_events + s.skipped_events = Logsys.Collected.total (collected ()))

let empty_packet_reconstruction () =
  let flow =
    Refill.Reconstruct.packet (collected ()) ~origin:9999 ~seq:0 ~sink:(sink ())
  in
  Alcotest.(check int) "empty" 0 (Refill.Flow.length flow)

let par_map_array_exception () =
  (* A worker exception must surface in the caller — with every helper
     domain joined first, so the pool is reusable afterwards. *)
  let input = Array.init 2048 Fun.id in
  Alcotest.check_raises "first worker exception re-raised" (Failure "boom")
    (fun () ->
      ignore
        (Refill.Par.map_array ~jobs:4
           (fun i -> if i = 1500 then failwith "boom" else i * i)
           input
          : int array));
  let out = Refill.Par.map_array ~jobs:4 (fun i -> i + 1) input in
  Alcotest.(check int) "later runs unaffected" 2048 (Array.length out);
  Alcotest.(check int) "order preserved" 2001 out.(2000)

let () =
  Alcotest.run "refill-pipeline"
    [
      ( "lossless",
        [
          Alcotest.test_case "cause accuracy 100%" `Quick
            lossless_cause_accuracy;
          Alcotest.test_case "position accuracy 100%" `Quick
            lossless_position_accuracy;
          Alcotest.test_case "no inference for delivered" `Quick
            lossless_delivered_flows_have_no_inference;
          Alcotest.test_case "local order preserved" `Quick
            flows_preserve_local_log_order;
          Alcotest.test_case "deterministic" `Quick
            merge_order_does_not_change_verdicts;
        ] );
      ( "lossy",
        [
          Alcotest.test_case "graceful degradation" `Quick
            lossy_accuracy_degrades_gracefully;
          Alcotest.test_case "beats naive baseline" `Quick
            refill_beats_naive_under_loss;
          Alcotest.test_case "event recall/precision/order" `Quick
            event_recall_high_under_loss;
          QCheck_alcotest.to_alcotest reconstruction_inference_only_under_loss;
        ] );
      ( "bookkeeping",
        [
          Alcotest.test_case "summary totals" `Quick summary_totals;
          Alcotest.test_case "missing packet" `Quick
            empty_packet_reconstruction;
        ] );
      ( "par",
        [
          Alcotest.test_case "worker exception propagates" `Quick
            par_map_array_exception;
        ] );
    ]

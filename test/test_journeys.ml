(* Property tests on randomly generated packet journeys.

   A journey generator builds a random multihop packet fate (delivered, or
   lost at a random hop with a random cause) and emits exactly the records
   the protocol's logging semantics produce for it.  On complete logs,
   REFILL's classification must recover the cause and position exactly —
   for every journey shape, not just the simulator's mix.  Under record
   loss, verdict positions must still point at nodes the packet really
   visited. *)

open Refill

type terminal =
  | T_delivered
  | T_timeout  (** Last hop's frames never accepted. *)
  | T_received of bool
      (** Died inside the receiving node after recv was logged; [true] =
          at the sink. *)
  | T_acked of bool
      (** Died inside the receiving node before recv was logged (sender
          has the ACK); [true] = at the sink. *)
  | T_overflow  (** Dropped at a full queue on arrival. *)
  | T_dup  (** Looped back to an earlier hop and was dup-dropped. *)

let gen_terminal =
  QCheck.Gen.oneofl
    [
      T_delivered;
      T_timeout;
      T_received false;
      T_received true;
      T_acked false;
      T_acked true;
      T_overflow;
      T_dup;
    ]

(* Nodes: origin = 1, forwarders 2..n, sink = 0. *)
type journey = { hops : int; terminal : terminal }

let gen_journey =
  QCheck.Gen.map2
    (fun hops terminal -> { hops; terminal })
    QCheck.Gen.(int_range 1 5)
    gen_terminal

let record node kind ~gseq : Logsys.Record.t =
  {
    node;
    kind;
    origin = 1;
    pkt_seq = 0;
    true_time = float_of_int gseq;
    gseq;
  }

(* Emit the exact record sequence of a journey, in true order, plus the
   expected verdict (cause, loss position).

   Chain: origin 1 forwards through relays 2..hops (hops-1 clean full
   hops), then the terminal hop happens at sender [hops]: into the sink
   (node 0) for delivered / sink-side terminals, into a further relay
   [hops+1] for in-network terminals, or back to the origin for the dup
   loop. *)
let records_of_journey j =
  let buf = ref [] in
  let gseq = ref 0 in
  let emit node kind =
    buf := record node kind ~gseq:!gseq :: !buf;
    incr gseq
  in
  emit 1 Logsys.Record.Gen;
  let hop sender receiver =
    emit sender (Logsys.Record.Trans { to_ = receiver });
    emit receiver (Logsys.Record.Recv { from = sender });
    emit sender (Logsys.Record.Ack_recvd { to_ = receiver })
  in
  for i = 1 to j.hops - 1 do
    hop i (i + 1)
  done;
  let sender = j.hops in
  let expected =
    match j.terminal with
    | T_delivered ->
        hop sender 0;
        emit 0 Logsys.Record.Deliver;
        (Logsys.Cause.Delivered, None)
    | T_timeout ->
        emit sender (Logsys.Record.Trans { to_ = j.hops + 1 });
        emit sender (Logsys.Record.Retx_timeout { to_ = j.hops + 1 });
        (Logsys.Cause.Timeout_loss, Some sender)
    | T_overflow ->
        let receiver = j.hops + 1 in
        emit sender (Logsys.Record.Trans { to_ = receiver });
        emit receiver (Logsys.Record.Overflow { from = sender });
        emit sender (Logsys.Record.Ack_recvd { to_ = receiver });
        (Logsys.Cause.Overflow_loss, Some receiver)
    | T_received at_sink ->
        let receiver = if at_sink then 0 else j.hops + 1 in
        emit sender (Logsys.Record.Trans { to_ = receiver });
        emit receiver (Logsys.Record.Recv { from = sender });
        emit sender (Logsys.Record.Ack_recvd { to_ = receiver });
        (Logsys.Cause.Received_loss, Some receiver)
    | T_acked at_sink ->
        let receiver = if at_sink then 0 else j.hops + 1 in
        emit sender (Logsys.Record.Trans { to_ = receiver });
        emit sender (Logsys.Record.Ack_recvd { to_ = receiver });
        (Logsys.Cause.Acked_loss, Some receiver)
    | T_dup ->
        (* The last relay forwards BACK to the origin, which dup-drops. *)
        emit sender (Logsys.Record.Trans { to_ = 1 });
        emit 1 (Logsys.Record.Dup { from = sender });
        emit sender (Logsys.Record.Ack_recvd { to_ = 1 });
        (Logsys.Cause.Duplicate_loss, Some 1)
  in
  (List.rev !buf, expected)

(* The dup journey loops back to node 1, which needs at least one real
   forwarder so sender <> 1. *)
let valid j = match j.terminal with T_dup -> j.hops >= 2 | _ -> true

let classify_records records =
  let config = Protocol.make_config ~records ~origin:1 ~seq:0 ~sink:0 in
  let events = Protocol.events_of_records records in
  let acc = ref [] in
  let stats =
    Engine.process config
      (Engine.Events (Array.of_list events))
      ~emit:(fun it -> acc := it :: !acc)
  in
  let items = List.rev !acc in
  let flow = { Flow.origin = 1; seq = 0; items; stats; prov = [||] } in
  (flow, Classify.classify flow)

let journey_arbitrary =
  QCheck.make gen_journey ~print:(fun j ->
      Printf.sprintf "{hops=%d; terminal=%s}" j.hops
        (match j.terminal with
        | T_delivered -> "delivered"
        | T_timeout -> "timeout"
        | T_received true -> "received@sink"
        | T_received false -> "received"
        | T_acked true -> "acked@sink"
        | T_acked false -> "acked"
        | T_overflow -> "overflow"
        | T_dup -> "dup"))

let complete_logs_classify_exactly =
  QCheck.Test.make ~name:"complete logs: cause and position recovered exactly"
    ~count:500 journey_arbitrary (fun j ->
      QCheck.assume (valid j);
      let records, (expected_cause, expected_node) = records_of_journey j in
      let _, verdict = classify_records records in
      Logsys.Cause.equal verdict.cause expected_cause
      && verdict.loss_node = expected_node)

let complete_logs_no_inference_when_delivered =
  QCheck.Test.make ~name:"complete delivered journeys need no inference"
    ~count:200 journey_arbitrary (fun j ->
      QCheck.assume (j.terminal = T_delivered);
      let records, _ = records_of_journey j in
      let flow, _ = classify_records records in
      flow.stats.emitted_inferred = 0 && flow.stats.skipped = 0)

let complete_logs_paths_exact =
  QCheck.Test.make ~name:"complete logs: reconstructed path = visited nodes"
    ~count:300 journey_arbitrary (fun j ->
      QCheck.assume (valid j);
      let records, _ = records_of_journey j in
      let flow, _ = classify_records records in
      (* Nodes that logged gen/recv, in order of first occurrence. *)
      let expected =
        List.fold_left
          (fun acc (r : Logsys.Record.t) ->
            match r.kind with
            | Logsys.Record.Gen | Logsys.Record.Recv _ ->
                if List.mem r.node acc then acc else r.node :: acc
            | _ -> acc)
          [] records
        |> List.rev
      in
      (* Acked terminals extend the path by the inferred receiver: only
         the sender's ACK proves that hop. *)
      let expected =
        match j.terminal with
        | T_acked at_sink ->
            expected @ [ (if at_sink then 0 else j.hops + 1) ]
        | _ -> expected
      in
      Flow.nodes_visited flow = expected)

let lossy_positions_stay_on_route =
  QCheck.Test.make
    ~name:"under record loss, verdict positions lie on the true route"
    ~count:300
    QCheck.(pair journey_arbitrary (pair int64 (float_bound_inclusive 0.6)))
    (fun (j, (seed, loss)) ->
      QCheck.assume (valid j);
      let records, _ = records_of_journey j in
      let rng = Prelude.Rng.create ~seed in
      let surviving =
        List.filter
          (fun _ -> not (Prelude.Rng.bernoulli rng ~p:loss))
          records
      in
      match classify_records surviving with
      | exception _ -> false
      | _, verdict -> (
          match verdict.loss_node with
          | None -> true
          | Some n ->
              (* Any node the journey could have touched: the chain, the
                 terminal relay, the sink, and the dup loop-back target. *)
              n = 0 || (n >= 1 && n <= j.hops + 1)))

let single_surviving_record_never_crashes =
  QCheck.Test.make ~name:"any single surviving record reconstructs cleanly"
    ~count:300
    QCheck.(pair journey_arbitrary small_nat)
    (fun (j, idx) ->
      QCheck.assume (valid j);
      let records, _ = records_of_journey j in
      let n = List.length records in
      let keep = idx mod n in
      let surviving = [ List.nth records keep ] in
      match classify_records surviving with
      | exception _ -> false
      | flow, _ -> Refill.Flow.length flow >= 1)

let () =
  Alcotest.run "journeys"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest complete_logs_classify_exactly;
          QCheck_alcotest.to_alcotest complete_logs_no_inference_when_delivered;
          QCheck_alcotest.to_alcotest complete_logs_paths_exact;
          QCheck_alcotest.to_alcotest lossy_positions_stay_on_route;
          QCheck_alcotest.to_alcotest single_surviving_record_never_crashes;
        ] );
    ]

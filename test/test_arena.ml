(* The flat-column arena (zero-copy ingest): the materializing view must be
   Record.equal-exact for every kind and boundary value, the bulk decoders
   must agree with the record-path codec byte for byte, and every pipeline
   entry grown an arena variant (Reconstruct.run_arena, Stream.feed_arena,
   Global_flow.merge_from, Log_io.Mseg) must reproduce the record path's
   output exactly, lossless and lossy. *)

let scenario = lazy (Scenario.Citysee.run Scenario.Citysee.tiny)

let lossless = lazy (Scenario.Citysee.collected (Lazy.force scenario))

let sink () = (Lazy.force scenario).sink

let lossy_collected p seed =
  let rng = Prelude.Rng.create ~seed:(Int64.of_int seed) in
  Logsys.Collected.lossify (Logsys.Loss_model.uniform p) rng
    (Lazy.force lossless)

(* Nan-safe observable identity of a flow (see test_stream.ml). *)
let flow_sig (f : Refill.Flow.t) =
  (f.origin, f.seq, Refill.Flow.to_string f, f.stats)

(* Nan-safe observable identity of a global-flow item: the payload is
   rendered with the bit-exact line writer, so NaN times compare equal. *)
let item_sig (i : Refill.Flow.item) =
  ( i.node,
    Refill.Protocol.label_name i.label,
    i.inferred,
    Option.map Logsys.Log_io.record_to_line_exact i.payload )

let batch_flows collected =
  let acc = ref [] in
  Refill.Reconstruct.run collected ~sink:(sink ()) ~emit:(fun f ->
      acc := f :: !acc);
  List.rev !acc

(* An arena holding exactly [collected]'s records, node-major — the same
   node-scan order Collected's packet index uses. *)
let arena_of_collected c =
  let a = Logsys.Arena.create () in
  for node = 0 to Logsys.Collected.n_nodes c - 1 do
    Array.iter (Logsys.Arena.push a) (Logsys.Collected.node_log c node)
  done;
  a

let packets_of_collected c =
  Logsys.Arena.Packets.build (arena_of_collected c)
    ~n_nodes:(Logsys.Collected.n_nodes c)

let arena_flows c =
  let acc = ref [] in
  Refill.Reconstruct.run_arena (packets_of_collected c) ~sink:(sink ())
    ~emit:(fun f -> acc := f :: !acc);
  List.rev !acc

(* -- Record generators ----------------------------------------------------- *)

(* Ints the packed columns must hold exactly, including min_int-adjacent
   values (Bigarray int columns carry full 63-bit OCaml ints). *)
let boundary_ints =
  [
    0;
    1;
    -1;
    7;
    1000;
    max_int;
    max_int - 1;
    min_int;
    min_int + 1;
    max_int / 2;
    -(max_int / 2) - 1;
  ]

let gen_any_int =
  QCheck.Gen.(oneof [ oneofl boundary_ints; small_signed_int; int ])

let gen_time =
  QCheck.Gen.(
    oneof
      [
        float;
        return Float.nan;
        return Float.infinity;
        return Float.neg_infinity;
        return 0.;
      ])

(* A record of any kind with unconstrained column values: what push/get
   must round-trip.  Peer is [-1] (unknown node) one time in four, the
   case the no-peer poison must never be confused with. *)
let gen_record =
  QCheck.Gen.(
    let* tag = int_range 0 7 in
    let* peer = frequency [ (1, return (-1)); (3, gen_any_int) ] in
    let kind =
      Logsys.Codec.kind_of_tag tag
        (if tag >= 1 && tag <= 6 then Some peer else None)
    in
    let* node = gen_any_int in
    let* origin = gen_any_int in
    let* pkt_seq = gen_any_int in
    let* gseq = gen_any_int in
    let+ true_time = gen_time in
    ({ node; kind; origin; pkt_seq; true_time; gseq } : Logsys.Record.t))

(* A record the codec can encode: zigzag-rangeable fields, node ids a
   segment header can carry. *)
let gen_codec_int =
  QCheck.Gen.(
    oneof
      [
        oneofl [ 0; 1; -1; 7; 1000; 1 lsl 60; max_int / 2; -(max_int / 2) - 1 ];
        small_signed_int;
      ])

let gen_codec_record =
  QCheck.Gen.(
    let* tag = int_range 0 7 in
    let* peer = frequency [ (1, return (-1)); (3, gen_codec_int) ] in
    let kind =
      Logsys.Codec.kind_of_tag tag
        (if tag >= 1 && tag <= 6 then Some peer else None)
    in
    let* node = gen_codec_int in
    let* origin = gen_codec_int in
    let+ pkt_seq = gen_codec_int in
    ({ node; kind; origin; pkt_seq; true_time = Float.nan; gseq = -1 }
      : Logsys.Record.t))

let arbitrary_records =
  QCheck.make
    QCheck.Gen.(array_size (int_range 0 64) gen_record)
    ~print:(fun arr ->
      Array.to_list arr
      |> List.map Logsys.Log_io.record_to_line_exact
      |> String.concat "\n")

let arbitrary_codec_records =
  QCheck.make
    QCheck.Gen.(array_size (int_range 0 64) gen_codec_record)
    ~print:(fun arr ->
      Array.to_list arr
      |> List.map Logsys.Log_io.record_to_line_exact
      |> String.concat "\n")

(* -- View exactness -------------------------------------------------------- *)

let view_roundtrip_property =
  QCheck.Test.make ~name:"Arena.get is Record.equal-exact for any record"
    ~count:500 arbitrary_records (fun records ->
      let a = Logsys.Arena.of_records records in
      if Logsys.Arena.length a <> Array.length records then
        QCheck.Test.fail_reportf "length %d <> %d" (Logsys.Arena.length a)
          (Array.length records);
      Array.iteri
        (fun i r ->
          if not (Logsys.Record.equal (Logsys.Arena.get a i) r) then
            QCheck.Test.fail_reportf "get %d: %s <> %s" i
              (Logsys.Log_io.record_to_line_exact (Logsys.Arena.get a i))
              (Logsys.Log_io.record_to_line_exact r);
          if not (Logsys.Arena.equal_record a i r) then
            QCheck.Test.fail_reportf "equal_record %d disagrees with get" i)
        records;
      true)

let view_pinned_kinds () =
  (* One record of each kind, with the peer cases that matter pinned. *)
  let mk node kind : Logsys.Record.t =
    { node; kind; origin = 3; pkt_seq = 9; true_time = Float.nan; gseq = -1 }
  in
  let records =
    [|
      mk 1 Gen;
      mk 2 (Recv { from = -1 });
      mk 2 (Dup { from = 1 });
      mk 2 (Overflow { from = 1 });
      mk 1 (Trans { to_ = 2 });
      mk 1 (Ack_recvd { to_ = -1 });
      mk 1 (Retx_timeout { to_ = 2 });
      mk 0 Deliver;
    |]
  in
  let a = Logsys.Arena.of_records records in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "kind %d round-trips" i)
        true
        (Logsys.Record.equal (Logsys.Arena.get a i) r))
    records;
  (* to_records materializes the lot. *)
  let back = Logsys.Arena.to_records a in
  Alcotest.(check int) "to_records length" 8 (Array.length back);
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) "to_records equal" true
        (Logsys.Record.equal back.(i) r))
    records

let clear_reuses_storage () =
  let a = Logsys.Arena.create ~capacity:4 () in
  for i = 0 to 99 do
    Logsys.Arena.push_row a ~node:i ~tag:0 ~peer:0 ~origin:i ~pkt_seq:i
      ~true_time:0. ~gseq:i
  done;
  Alcotest.(check int) "grown" 100 (Logsys.Arena.length a);
  let cap = Logsys.Arena.capacity a in
  Logsys.Arena.clear a;
  Alcotest.(check int) "cleared" 0 (Logsys.Arena.length a);
  Alcotest.(check int) "storage kept" cap (Logsys.Arena.capacity a)

(* -- Bulk decode parity ---------------------------------------------------- *)

let decode_log_parity =
  QCheck.Test.make
    ~name:"decode_log_into == decode_log on random encoded logs" ~count:300
    arbitrary_codec_records (fun records ->
      let b = Logsys.Codec.encode_log records in
      let via_records = Logsys.Codec.decode_log ~node:5 b in
      let a = Logsys.Arena.create () in
      let n = Logsys.Arena.decode_log_into a ~node:5 b in
      if n <> Array.length via_records then
        QCheck.Test.fail_reportf "row count %d <> %d" n
          (Array.length via_records);
      Array.iteri
        (fun i r ->
          if not (Logsys.Arena.equal_record a i r) then
            QCheck.Test.fail_reportf "row %d: %s <> %s" i
              (Logsys.Log_io.record_to_line_exact (Logsys.Arena.get a i))
              (Logsys.Log_io.record_to_line_exact r))
        via_records;
      true)

let decode_segment_parity =
  QCheck.Test.make
    ~name:"decode_segment_into == decode_segment on random segments"
    ~count:300 arbitrary_codec_records (fun records ->
      let b = Logsys.Codec.encode_segment records in
      let via_records = Logsys.Codec.decode_segment b in
      let a = Logsys.Arena.create () in
      let n = Logsys.Arena.decode_segment_into a b in
      if n <> Array.length via_records then
        QCheck.Test.fail_reportf "row count %d <> %d" n
          (Array.length via_records);
      Array.iteri
        (fun i r ->
          if not (Logsys.Arena.equal_record a i r) then
            QCheck.Test.fail_reportf "row %d differs" i)
        via_records;
      true)

let decode_rejects_garbage () =
  let a = Logsys.Arena.create () in
  let raises f =
    match f () with exception Failure _ -> true | _ -> false
  in
  Alcotest.(check bool) "truncated log raises" true
    (raises (fun () ->
         Logsys.Arena.decode_log_into a ~node:0 (Bytes.of_string "\x01")));
  Alcotest.(check bool) "unknown tag raises" true
    (raises (fun () ->
         Logsys.Arena.decode_log_into a ~node:0 (Bytes.of_string "\xff")));
  Alcotest.(check bool) "oversized varint raises" true
    (raises (fun () ->
         Logsys.Arena.decode_log_into a ~node:0
           (Bytes.of_string "\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\x7f")));
  Alcotest.(check bool) "trailing segment bytes raise" true
    (raises (fun () ->
         Logsys.Arena.decode_segment_into a (Bytes.of_string "\x00\x00")))

(* -- Codec guards (satellite) ----------------------------------------------- *)

let zigzag_guards () =
  let raises f =
    match f () with exception Failure _ -> true | _ -> false
  in
  (* The extremes of the representable range still map. *)
  Alcotest.(check int) "max boundary round-trips" (max_int / 2)
    (Logsys.Codec.unzigzag (Logsys.Codec.zigzag (max_int / 2)));
  Alcotest.(check int) "min boundary round-trips"
    (-(max_int / 2) - 1)
    (Logsys.Codec.unzigzag (Logsys.Codec.zigzag (-(max_int / 2) - 1)));
  (* One past either end would silently wrap; both must raise. *)
  Alcotest.(check bool) "max_int/2 + 1 raises" true
    (raises (fun () -> Logsys.Codec.zigzag ((max_int / 2) + 1)));
  Alcotest.(check bool) "min_int raises" true
    (raises (fun () -> Logsys.Codec.zigzag min_int));
  Alcotest.(check bool) "max_int raises" true
    (raises (fun () -> Logsys.Codec.zigzag max_int));
  (* encode_record surfaces the guard for out-of-range fields. *)
  let r : Logsys.Record.t =
    {
      node = 0;
      kind = Gen;
      origin = max_int;
      pkt_seq = 0;
      true_time = Float.nan;
      gseq = -1;
    }
  in
  let buf = Buffer.create 8 in
  Alcotest.(check bool) "encode_record rejects out-of-range origin" true
    (raises (fun () -> Logsys.Codec.encode_record buf r))

(* -- Pipeline equivalence --------------------------------------------------- *)

let run_arena_equals_run_lossless () =
  let c = Lazy.force lossless in
  let a = List.map flow_sig (batch_flows c) in
  let b = List.map flow_sig (arena_flows c) in
  Alcotest.(check int) "flow count" (List.length a) (List.length b);
  List.iter2
    (fun (ao, as_, astr, ast) (bo, bs, bstr, bst) ->
      Alcotest.(check (pair int int)) "key" (ao, as_) (bo, bs);
      Alcotest.(check string) "flow" astr bstr;
      Alcotest.(check bool) "stats" true (ast = bst))
    a b

let run_arena_equals_run_lossy =
  QCheck.Test.make ~name:"run_arena == run under random log loss" ~count:20
    QCheck.(pair (int_range 0 90) (int_range 1 10_000))
    (fun (pct, seed) ->
      let c = lossy_collected (float_of_int pct /. 100.) seed in
      let a = List.map flow_sig (batch_flows c) in
      let b = List.map flow_sig (arena_flows c) in
      a = b)

let packets_index_matches_collected () =
  let c = Lazy.force lossless in
  let p = packets_of_collected c in
  let a = Logsys.Arena.Packets.arena p in
  Alcotest.(check (list (pair int int)))
    "same packet keys"
    (Logsys.Collected.packet_keys c)
    (Logsys.Arena.Packets.keys p);
  List.iter
    (fun (origin, seq) ->
      let rows = Logsys.Arena.Packets.packet_rows p ~origin ~seq in
      let records = Logsys.Collected.packet_records c ~origin ~seq in
      Alcotest.(check int)
        (Printf.sprintf "packet (%d,%d) size" origin seq)
        (Array.length records) (Array.length rows);
      Array.iteri
        (fun i row ->
          Alcotest.(check bool) "node-scan order matches" true
            (Logsys.Arena.equal_record a row records.(i)))
        rows)
    (Logsys.Collected.packet_keys c)

let packets_build_rejects_bad_node () =
  let a = Logsys.Arena.create () in
  Logsys.Arena.push_row a ~node:7 ~tag:0 ~peer:0 ~origin:0 ~pkt_seq:0
    ~true_time:0. ~gseq:0;
  Alcotest.(check bool) "node out of range raises" true
    (match Logsys.Arena.Packets.build a ~n_nodes:7 with
    | exception Failure _ -> true
    | _ -> false)

let feed_arena_equals_feed =
  QCheck.Test.make ~name:"Stream.feed_arena == Stream.feed" ~count:15
    QCheck.(triple (int_range 0 60) (int_range 1 10_000) (int_range 1 999))
    (fun (pct, seed, chunk) ->
      let c = lossy_collected (float_of_int pct /. 100.) seed in
      let ordered = Logsys.Collected.merged_by_time c in
      let n = Array.length ordered in
      let watermark = max 1 (n / 10) in
      let config = { Refill.Config.default with watermark } in
      let run feed_chunk =
        let acc = ref [] in
        let t =
          Refill.Stream.create ~config ~sink:(sink ())
            ~emit:(fun (e : Refill.Stream.emitted) ->
              acc := (flow_sig e.flow, e.outcome) :: !acc)
            ()
        in
        let i = ref 0 in
        while !i < n do
          let len = min chunk (n - !i) in
          feed_chunk t !i len;
          i := !i + len
        done;
        let s = Refill.Stream.finish t in
        (List.rev !acc, s)
      in
      let via_records =
        run (fun t i len -> Refill.Stream.feed t (Array.sub ordered i len))
      in
      let arena = Logsys.Arena.of_records ordered in
      let via_arena =
        run (fun t i len ->
            Refill.Stream.feed_arena t
              (Logsys.Arena.slice arena ~off:i ~len))
      in
      via_records = via_arena)

let merge_from_arena_equals_merge () =
  let check_on label c =
    let flows = Array.of_list (batch_flows c) in
    let run source =
      let acc = ref [] in
      let stats =
        Refill.Global_flow.merge_from source ~flows ~emit:(fun it ->
            acc := item_sig it :: !acc)
      in
      (List.rev !acc, stats)
    in
    let items_a, stats_a = run (Refill.Global_flow.Snapshot c) in
    let items_b, stats_b =
      run (Refill.Global_flow.Arena_index (packets_of_collected c))
    in
    Alcotest.(check int) (label ^ ": events") stats_a.events stats_b.events;
    Alcotest.(check int) (label ^ ": logged") stats_a.logged stats_b.logged;
    Alcotest.(check int)
      (label ^ ": inferred")
      stats_a.inferred stats_b.inferred;
    Alcotest.(check int) (label ^ ": relaxed") stats_a.relaxed stats_b.relaxed;
    Alcotest.(check bool)
      (label ^ ": identical item sequence")
      true (items_a = items_b)
  in
  check_on "lossless" (Lazy.force lossless);
  check_on "lossy" (lossy_collected 0.3 4242)

(* -- Mmap reader (Mseg) ------------------------------------------------------ *)

let with_dump ?(time_order = false) ?truth c f =
  let path = Filename.temp_file "refill_arena" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Logsys.Log_io.save_file path ~sink:(sink ()) ?truth ~time_order c;
      f path)

let mseg_equals_seg () =
  let sc = Lazy.force scenario in
  let c = lossy_collected 0.2 77 in
  let truth = Node.Network.truth sc.network in
  with_dump ~time_order:true ~truth c (fun path ->
      (* Channel path. *)
      let ic = open_in path in
      let seg_records =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let r = Logsys.Log_io.Seg.of_channel ic in
            Alcotest.(check int) "seg nodes"
              (Logsys.Collected.n_nodes c)
              (Logsys.Log_io.Seg.n_nodes r);
            let acc = ref [] in
            let rec loop () =
              match Logsys.Log_io.Seg.next r ~max_records:777 with
              | None -> ()
              | Some seg ->
                  acc := seg :: !acc;
                  loop ()
            in
            loop ();
            Array.concat (List.rev !acc))
      in
      (* Mmap path. *)
      let r = Logsys.Log_io.Mseg.open_file path in
      Alcotest.(check int) "mseg nodes"
        (Logsys.Collected.n_nodes c)
        (Logsys.Log_io.Mseg.n_nodes r);
      Alcotest.(check int) "mseg sink" (sink ())
        (Logsys.Log_io.Mseg.sink r);
      let a = Logsys.Arena.create () in
      let total = ref 0 in
      let rec loop () =
        let n = Logsys.Log_io.Mseg.next_into r a ~max_records:777 in
        if n > 0 then begin
          total := !total + n;
          loop ()
        end
      in
      loop ();
      Alcotest.(check int) "same record count"
        (Array.length seg_records)
        !total;
      Alcotest.(check int) "read position" !total (Logsys.Log_io.Mseg.read r);
      Array.iteri
        (fun i rec_ ->
          if not (Logsys.Arena.equal_record a i rec_) then
            Alcotest.failf "record %d: %s <> %s" i
              (Logsys.Log_io.record_to_line_exact (Logsys.Arena.get a i))
              (Logsys.Log_io.record_to_line_exact rec_))
        seg_records)

let mseg_skip_parity () =
  let c = lossy_collected 0.1 123 in
  with_dump ~time_order:true c (fun path ->
      let total = Logsys.Collected.total c in
      let k = total / 3 in
      (* Channel path: skip k, then read the rest. *)
      let ic = open_in path in
      let seg_rest =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let r = Logsys.Log_io.Seg.of_channel ic in
            Alcotest.(check int) "seg skipped" k
              (Logsys.Log_io.Seg.skip r k);
            let acc = ref [] in
            let rec loop () =
              match Logsys.Log_io.Seg.next r ~max_records:500 with
              | None -> ()
              | Some seg ->
                  acc := seg :: !acc;
                  loop ()
            in
            loop ();
            Array.concat (List.rev !acc))
      in
      let r = Logsys.Log_io.Mseg.open_file path in
      Alcotest.(check int) "mseg skipped" k (Logsys.Log_io.Mseg.skip r k);
      let a = Logsys.Arena.create () in
      let rec loop () =
        if Logsys.Log_io.Mseg.next_into r a ~max_records:500 > 0 then loop ()
      in
      loop ();
      Alcotest.(check int) "rest count"
        (Array.length seg_rest)
        (Logsys.Arena.length a);
      Array.iteri
        (fun i rec_ ->
          Alcotest.(check bool) "rest equal" true
            (Logsys.Arena.equal_record a i rec_))
        seg_rest;
      (* Over-skip reports what was actually available. *)
      let r2 = Logsys.Log_io.Mseg.open_file path in
      Alcotest.(check int) "over-skip clamps" total
        (Logsys.Log_io.Mseg.skip r2 (total + 999)))

let mseg_rejects_malformed () =
  let write_file lines =
    let path = Filename.temp_file "refill_arena" ".log" in
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    path
  in
  let raises_failure path =
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        match
          let r = Logsys.Log_io.Mseg.open_file path in
          let a = Logsys.Arena.create () in
          ignore (Logsys.Log_io.Mseg.next_into r a ~max_records:10)
        with
        | exception Failure _ -> true
        | _ -> false)
  in
  Alcotest.(check bool) "bad header raises" true
    (raises_failure (write_file [ "not a dump" ]));
  Alcotest.(check bool) "malformed record raises" true
    (raises_failure
       (write_file
          [
            "# refill-log v1";
            "# nodes 3";
            "# sink 0";
            "r 1 teleport - 1 0 0.0 0";
          ]));
  Alcotest.(check bool) "node out of range raises" true
    (raises_failure
       (write_file
          [ "# refill-log v1"; "# nodes 3"; "# sink 0"; "r 9 gen - 9 0 0.5 1" ]));
  Alcotest.(check bool) "peer on gen raises" true
    (raises_failure
       (write_file
          [ "# refill-log v1"; "# nodes 3"; "# sink 0"; "r 1 gen 2 1 0 0.5 1" ]))

let () =
  Alcotest.run "arena"
    [
      ( "view",
        [
          QCheck_alcotest.to_alcotest view_roundtrip_property;
          Alcotest.test_case "pinned kinds" `Quick view_pinned_kinds;
          Alcotest.test_case "clear reuses storage" `Quick clear_reuses_storage;
        ] );
      ( "decode",
        [
          QCheck_alcotest.to_alcotest decode_log_parity;
          QCheck_alcotest.to_alcotest decode_segment_parity;
          Alcotest.test_case "rejects garbage" `Quick decode_rejects_garbage;
        ] );
      ( "codec_guards",
        [ Alcotest.test_case "zigzag range" `Quick zigzag_guards ] );
      ( "pipeline",
        [
          Alcotest.test_case "run_arena == run (lossless)" `Quick
            run_arena_equals_run_lossless;
          QCheck_alcotest.to_alcotest run_arena_equals_run_lossy;
          Alcotest.test_case "packet index matches Collected" `Quick
            packets_index_matches_collected;
          Alcotest.test_case "index rejects bad node" `Quick
            packets_build_rejects_bad_node;
          QCheck_alcotest.to_alcotest feed_arena_equals_feed;
          Alcotest.test_case "merge_from Arena_index == merge" `Quick
            merge_from_arena_equals_merge;
        ] );
      ( "mseg",
        [
          Alcotest.test_case "mseg == seg" `Quick mseg_equals_seg;
          Alcotest.test_case "skip parity" `Quick mseg_skip_parity;
          Alcotest.test_case "rejects malformed" `Quick mseg_rejects_malformed;
        ] );
    ]

(* Provenance side-car: lossless attribution, evidence-index integrity,
   batch/stream equivalence, and the merge's 1:1 provenance emission. *)

let scenario = lazy (Scenario.Citysee.run Scenario.Citysee.tiny)

let lossless = lazy (Scenario.Citysee.collected (Lazy.force scenario))

let sink () = (Lazy.force scenario).sink

let lossy_collected p seed =
  let rng = Prelude.Rng.create ~seed:(Int64.of_int seed) in
  Logsys.Collected.lossify (Logsys.Loss_model.uniform p) rng
    (Lazy.force lossless)

let flows_of ?(provenance = true) collected =
  let acc = ref [] in
  Refill.Reconstruct.run
    ~config:{ Refill.Config.default with provenance; jobs = Some 1 }
    collected ~sink:(sink ())
    ~emit:(fun f -> acc := f :: !acc);
  List.rev !acc

(* -- Lossless trace: everything is measurement, nothing is inference ------
   Scoped to *delivered* packets: packets still in flight (or with an
   acked final hop) when collection stopped legitimately end in inferred
   events even on a complete trace — see
   [lossless_delivered_flows_have_no_inference] in test_refill_pipeline. *)

let truth = lazy (Node.Network.truth (Lazy.force scenario).network)

let delivered (f : Refill.Flow.t) =
  match
    Logsys.Truth.find (Lazy.force truth) ~origin:f.origin ~seq:f.seq
  with
  | Some { cause = Logsys.Cause.Delivered; _ } -> true
  | Some _ | None -> false

let lossless_all_logged () =
  let collected = Lazy.force lossless in
  let flows = flows_of collected in
  let scored = ref 0 in
  List.iter
    (fun (f : Refill.Flow.t) ->
      Alcotest.(check int)
        (Printf.sprintf "packet (%d,%d): one provenance entry per item"
           f.origin f.seq)
        (List.length f.items)
        (Array.length f.prov);
      if delivered f then begin
        incr scored;
        Array.iter
          (fun pv ->
            Alcotest.(check string) "mechanism" "logged"
              (Refill.Provenance.mechanism_name
                 (Refill.Provenance.mechanism pv));
            Alcotest.(check string) "confidence" "certain"
              (Refill.Provenance.confidence_name
                 (Refill.Provenance.confidence pv)))
          f.prov
      end)
    flows;
  Alcotest.(check bool) "scored a real population" true (!scored > 100)

(* -- Evidence indices resolve into the packet's own record array ---------- *)

let check_evidence collected (f : Refill.Flow.t) =
  let records =
    Logsys.Collected.packet_records collected ~origin:f.origin ~seq:f.seq
  in
  let n = Array.length records in
  List.iteri
    (fun k (it : Refill.Flow.item) ->
      let pv = f.prov.(k) in
      let ev = Refill.Provenance.evidence pv in
      Array.iter
        (fun e ->
          Alcotest.(check bool)
            (Printf.sprintf "evidence %d within %d records" e n)
            true
            (e >= 0 && e < n))
        ev;
      if not it.inferred then begin
        (* A logged event's single evidence index is its own record. *)
        Alcotest.(check int) "logged evidence is a single record" 1
          (Array.length ev);
        match it.payload with
        | None -> Alcotest.fail "logged item without payload"
        | Some r ->
            Alcotest.(check bool) "evidence resolves to the item's record"
              true
              (r = records.(ev.(0)))
      end
      else
        Alcotest.(check bool) "inferred event cites evidence" true
          (Array.length ev >= 1))
    f.items

let lossy_evidence_in_bounds () =
  let collected = lossy_collected 0.25 11 in
  let flows = flows_of collected in
  let inferred =
    List.fold_left
      (fun acc (f : Refill.Flow.t) -> acc + f.stats.emitted_inferred)
      0 flows
  in
  Alcotest.(check bool) "the lossy run actually inferred something" true
    (inferred > 0);
  List.iter (check_evidence collected) flows

let provenance_off_is_empty () =
  let flows = flows_of ~provenance:false (lossy_collected 0.25 11) in
  List.iter
    (fun (f : Refill.Flow.t) ->
      Alcotest.(check int) "no side-car when off" 0 (Array.length f.prov))
    flows

(* -- Batch and streaming runs produce identical provenance ---------------- *)

let stream_flows collected =
  let ordered = Logsys.Collected.merged_by_time collected in
  let total = Array.length ordered in
  let acc = ref [] in
  let config =
    {
      Refill.Config.default with
      provenance = true;
      watermark = max 1 (total / 20);
    }
  in
  let t =
    Refill.Stream.create ~config ~sink:(sink ())
      ~emit:(fun (e : Refill.Stream.emitted) -> acc := e.flow :: !acc)
      ()
  in
  let chunk = 97 in
  let i = ref 0 in
  while !i < total do
    let len = min chunk (total - !i) in
    Refill.Stream.feed t (Array.sub ordered !i len);
    i := !i + len
  done;
  ignore (Refill.Stream.finish t);
  List.rev !acc

let sort_flows l =
  List.stable_sort
    (fun (a : Refill.Flow.t) (b : Refill.Flow.t) ->
      compare (a.origin, a.seq) (b.origin, b.seq))
    l

let prov_sig (f : Refill.Flow.t) =
  ( f.origin,
    f.seq,
    Array.to_list
      (Array.map (fun pv -> Refill.Provenance.to_string pv) f.prov) )

let batch_equals_stream_prov =
  QCheck.Test.make ~count:20 ~name:"batch and stream provenance identical"
    QCheck.(pair (float_range 0.0 0.4) small_int)
    (fun (p, seed) ->
      let collected = lossy_collected p seed in
      let batch = List.map prov_sig (sort_flows (flows_of collected)) in
      let streamed = List.map prov_sig (sort_flows (stream_flows collected)) in
      batch = streamed)

(* -- The merge emits provenance in lockstep with items -------------------- *)

let merge_prov_lockstep () =
  let collected = lossy_collected 0.25 11 in
  let flows = Array.of_list (flows_of collected) in
  let items = ref 0 and provs = ref 0 in
  ignore
    (Refill.Global_flow.merge collected ~flows
       ~emit_prov:(fun _ -> incr provs)
       ~emit:(fun _ -> incr items));
  Alcotest.(check bool) "merge emitted items" true (!items > 0);
  Alcotest.(check int) "one provenance per merged item" !items !provs

let merge_lossless_no_reclassification () =
  (* On a complete trace every record aligns with its node's log, so the
     merge must introduce no stall-recovery or anchor-carry entries. *)
  let collected = Lazy.force lossless in
  let flows = Array.of_list (flows_of collected) in
  let bad = ref 0 in
  ignore
    (Refill.Global_flow.merge collected ~flows
       ~emit_prov:(fun pv ->
         match Refill.Provenance.mechanism pv with
         | Refill.Provenance.Stall_recovery | Refill.Provenance.Anchor_carry
           ->
             incr bad
         | _ -> ())
       ~emit:ignore);
  Alcotest.(check int) "no stall/anchor on an aligned trace" 0 !bad

let () =
  Alcotest.run "refill-provenance"
    [
      ( "attribution",
        [
          Alcotest.test_case "lossless flows are 100% logged/certain" `Quick
            lossless_all_logged;
          Alcotest.test_case "lossy evidence indices resolve" `Quick
            lossy_evidence_in_bounds;
          Alcotest.test_case "provenance off keeps the side-car empty" `Quick
            provenance_off_is_empty;
        ] );
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest batch_equals_stream_prov ] );
      ( "merge",
        [
          Alcotest.test_case "emit_prov is 1:1 with emit" `Quick
            merge_prov_lockstep;
          Alcotest.test_case "lossless merge adds no stall/anchor" `Quick
            merge_lossless_no_reclassification;
        ] );
    ]

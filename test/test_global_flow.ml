(* Tests for the network-wide event flow (§II Eq. 1): the topological merge
   of per-packet flows under per-node log constraints. *)

let scenario = lazy (Scenario.Citysee.run Scenario.Citysee.tiny)

(* List-shaped wrappers over the sink-parameterized entry points: these
   tests predate them and score flows/items as lists. *)
let reconstruct_flows collected ~sink =
  let acc = ref [] in
  Refill.Reconstruct.run collected ~sink ~emit:(fun f -> acc := f :: !acc);
  List.rev !acc

let merge_flows ?jobs collected ~flows =
  let acc = ref [] in
  let stats =
    Refill.Global_flow.merge ?jobs collected ~flows:(Array.of_list flows)
      ~emit:(fun it -> acc := it :: !acc)
  in
  (List.rev !acc, stats)

let build_lossless () =
  let sc = Lazy.force scenario in
  let collected = Scenario.Citysee.collected sc in
  let flows = reconstruct_flows collected ~sink:sc.sink in
  (sc, collected, flows, merge_flows collected ~flows)

let counts_add_up () =
  let _, collected, flows, (items, stats) = build_lossless () in
  Alcotest.(check int) "events = sum of flows"
    (List.fold_left (fun acc (f : Refill.Flow.t) -> acc + Refill.Flow.length f) 0 flows)
    stats.events;
  Alcotest.(check int) "list matches stats" stats.events (List.length items);
  Alcotest.(check int) "logged events = consumed records"
    (Logsys.Collected.total collected)
    (stats.logged + 0);
  Alcotest.(check int) "partition" stats.events (stats.logged + stats.inferred)

let preserves_per_packet_flow_order () =
  let _, _, flows, (items, _) = build_lossless () in
  (* For each packet, the subsequence of its items in the global flow must
     equal its own flow. *)
  let global = Array.of_list items in
  let positions = Hashtbl.create 1024 in
  Array.iteri
    (fun idx (i : Refill.Flow.item) ->
      match i.payload with
      | Some r ->
          let key = Logsys.Record.packet_key r in
          Hashtbl.replace positions key
            (idx :: Option.value ~default:[] (Hashtbl.find_opt positions key))
      | None -> ())
    global;
  List.iter
    (fun (f : Refill.Flow.t) ->
      match Hashtbl.find_opt positions (f.origin, f.seq) with
      | None -> ()
      | Some idxs_rev ->
          let idxs = List.rev idxs_rev in
          let sub = List.map (fun i -> global.(i)) idxs in
          Alcotest.(check int)
            (Printf.sprintf "packet (%d,%d) intact" f.origin f.seq)
            (Refill.Flow.length f) (List.length sub);
          List.iter2
            (fun (a : Refill.Flow.item) (b : Refill.Flow.item) ->
              Alcotest.(check bool) "same order" true
                (a.label = b.label && a.node = b.node && a.inferred = b.inferred))
            f.items sub)
      flows

let wall_clock_agreement_high () =
  let sc, _, _, (items, stats) = build_lossless () in
  Alcotest.(check bool)
    (Printf.sprintf "few relaxations (%d)" stats.relaxed)
    true
    (stats.relaxed < stats.events / 20);
  (* Pairwise order agreement with ground-truth time over logged events. *)
  let gt = Logsys.Logger.ground_truth (Node.Network.logger sc.network) in
  let pos = Hashtbl.create 4096 in
  List.iteri (fun i (r : Logsys.Record.t) -> Hashtbl.replace pos r.gseq i) gt;
  let seq =
    List.filter_map
      (fun (i : Refill.Flow.item) ->
        if i.inferred then None
        else
          Option.bind i.payload (fun (r : Logsys.Record.t) ->
              Hashtbl.find_opt pos r.gseq))
      items
    |> Array.of_list
  in
  let rng = Prelude.Rng.create ~seed:3L in
  let total = ref 0 and good = ref 0 in
  for _ = 1 to 50_000 do
    let a = Prelude.Rng.int rng (Array.length seq) in
    let b = Prelude.Rng.int rng (Array.length seq) in
    if a < b then begin
      incr total;
      if seq.(a) < seq.(b) then incr good
    end
  done;
  let agreement = Prelude.Stats.ratio !good !total in
  Alcotest.(check bool)
    (Printf.sprintf "agreement %.3f > 0.9" agreement)
    true (agreement > 0.9)

let works_under_record_loss () =
  let sc = Lazy.force scenario in
  let rng = Prelude.Rng.create ~seed:17L in
  let lossy =
    Logsys.Collected.lossify (Logsys.Loss_model.uniform 0.3) rng
      (Scenario.Citysee.collected sc)
  in
  let flows = reconstruct_flows lossy ~sink:sc.sink in
  let items, stats = merge_flows lossy ~flows in
  Alcotest.(check int) "complete" stats.events (List.length items);
  Alcotest.(check bool) "has inferred events" true (stats.inferred > 0)

let hand_built_cross_packet_order () =
  (* Two packets share relay 2; node 2's log interleaves them — the global
     flow must keep P0's events on node 2 before P1's. *)
  let r ~node ~kind ~seq ~gseq : Logsys.Record.t =
    { node; kind; origin = 1; pkt_seq = seq; true_time = float_of_int gseq; gseq }
  in
  let logs =
    [|
      (* node 0 = sink *)
      [|
        r ~node:0 ~kind:(Recv { from = 2 }) ~seq:0 ~gseq:6;
        r ~node:0 ~kind:Deliver ~seq:0 ~gseq:7;
        r ~node:0 ~kind:(Recv { from = 2 }) ~seq:1 ~gseq:14;
        r ~node:0 ~kind:Deliver ~seq:1 ~gseq:15;
      |];
      (* node 1 = origin of both packets *)
      [|
        r ~node:1 ~kind:Gen ~seq:0 ~gseq:0;
        r ~node:1 ~kind:(Trans { to_ = 2 }) ~seq:0 ~gseq:1;
        r ~node:1 ~kind:(Ack_recvd { to_ = 2 }) ~seq:0 ~gseq:3;
        r ~node:1 ~kind:Gen ~seq:1 ~gseq:8;
        r ~node:1 ~kind:(Trans { to_ = 2 }) ~seq:1 ~gseq:9;
        r ~node:1 ~kind:(Ack_recvd { to_ = 2 }) ~seq:1 ~gseq:11;
      |];
      (* node 2 = shared relay; its log orders the two packets *)
      [|
        r ~node:2 ~kind:(Recv { from = 1 }) ~seq:0 ~gseq:2;
        r ~node:2 ~kind:(Trans { to_ = 0 }) ~seq:0 ~gseq:4;
        r ~node:2 ~kind:(Ack_recvd { to_ = 0 }) ~seq:0 ~gseq:5;
        r ~node:2 ~kind:(Recv { from = 1 }) ~seq:1 ~gseq:10;
        r ~node:2 ~kind:(Trans { to_ = 0 }) ~seq:1 ~gseq:12;
        r ~node:2 ~kind:(Ack_recvd { to_ = 0 }) ~seq:1 ~gseq:13;
      |];
    |]
  in
  let collected = Logsys.Collected.of_node_logs logs in
  let flows = reconstruct_flows collected ~sink:0 in
  let items, stats = merge_flows collected ~flows in
  Alcotest.(check int) "all 16 events" 16 stats.events;
  Alcotest.(check int) "nothing relaxed" 0 stats.relaxed;
  (* P0's recv on node 2 strictly precedes P1's recv on node 2. *)
  let idx_of seq kind =
    match
      List.find_index
        (fun (i : Refill.Flow.item) ->
          match i.payload with
          | Some (r : Logsys.Record.t) ->
              r.pkt_seq = seq && Logsys.Record.kind_name r.kind = kind
                && r.node = 2
          | None -> false)
        items
    with
    | Some i -> i
    | None -> Alcotest.failf "missing %s for packet %d" kind seq
  in
  Alcotest.(check bool) "relay order across packets" true
    (idx_of 0 "recv" < idx_of 1 "recv");
  Alcotest.(check bool) "P0 ack before P1 trans on relay" true
    (idx_of 0 "ack" < idx_of 1 "trans")

let inferred_anchor_inherits_following () =
  (* P0's relay reception is lost; the inferred stand-in has no log
     position, so [fill_anchors] must give it the anchor of the *following*
     logged item in its flow (the relay's late trans, anchor 0.75), not the
     preceding one (the origin's early trans, anchor 0.25).  P1's gen sits
     between the two (anchor 0.5) and is concurrent with the inferred item,
     so the heap order of that pair reveals which anchor was inherited. *)
  let r ~node ~origin ~kind ~seq ~gseq : Logsys.Record.t =
    { node; kind; origin; pkt_seq = seq; true_time = float_of_int gseq; gseq }
  in
  let logs =
    [|
      (* node 0 = sink: Q's delivery, then P0's *)
      [|
        r ~node:0 ~origin:2 ~kind:(Recv { from = 2 }) ~seq:0 ~gseq:4;
        r ~node:0 ~origin:2 ~kind:Deliver ~seq:0 ~gseq:5;
        r ~node:0 ~origin:1 ~kind:(Recv { from = 2 }) ~seq:0 ~gseq:10;
        r ~node:0 ~origin:1 ~kind:Deliver ~seq:0 ~gseq:11;
      |];
      (* node 1: P0's gen+trans, then P1's gen+trans *)
      [|
        r ~node:1 ~origin:1 ~kind:Gen ~seq:0 ~gseq:0;
        r ~node:1 ~origin:1 ~kind:(Trans { to_ = 2 }) ~seq:0 ~gseq:1;
        r ~node:1 ~origin:1 ~kind:Gen ~seq:1 ~gseq:7;
        r ~node:1 ~origin:1 ~kind:(Trans { to_ = 3 }) ~seq:1 ~gseq:8;
      |];
      (* node 2: its own packet Q first, then P0's (late) forward; P0's
         recv on this node was lost *)
      [|
        r ~node:2 ~origin:2 ~kind:Gen ~seq:0 ~gseq:2;
        r ~node:2 ~origin:2 ~kind:(Trans { to_ = 0 }) ~seq:0 ~gseq:3;
        r ~node:2 ~origin:2 ~kind:(Ack_recvd { to_ = 0 }) ~seq:0 ~gseq:6;
        r ~node:2 ~origin:1 ~kind:(Trans { to_ = 0 }) ~seq:0 ~gseq:9;
      |];
      (* node 3: P1's receiver; logged nothing *)
      [||];
    |]
  in
  let collected = Logsys.Collected.of_node_logs logs in
  let flows = reconstruct_flows collected ~sink:0 in
  let items, stats = merge_flows collected ~flows in
  Alcotest.(check int) "one inferred event" 1 stats.inferred;
  Alcotest.(check int) "nothing relaxed" 0 stats.relaxed;
  let idx_inferred =
    match
      List.find_index
        (fun (i : Refill.Flow.item) -> i.inferred && i.node = 2)
        items
    with
    | Some i -> i
    | None -> Alcotest.fail "inferred relay recv missing"
  in
  let idx_p1_gen =
    match
      List.find_index
        (fun (i : Refill.Flow.item) ->
          match i.payload with
          | Some ({ kind = Gen; pkt_seq = 1; _ } : Logsys.Record.t) -> true
          | _ -> false)
        items
    with
    | Some i -> i
    | None -> Alcotest.fail "P1 gen missing"
  in
  Alcotest.(check bool) "P1 gen precedes the inferred relay recv" true
    (idx_p1_gen < idx_inferred)

(* -- Reference oracle -------------------------------------------------------
   A direct copy of the pre-CSR list/Hashtbl implementation of the
   network-wide merge.  The production rewrite (flat arrays, interned
   packet ids, heap-based stall recovery) must be output-identical to this
   on every input; keeping the old code here pins that equivalence. *)

module Reference = struct
  type stats = Refill.Global_flow.stats = {
    events : int;
    logged : int;
    inferred : int;
    relaxed : int;
  }

  type tagged = {
    item : Refill.Flow.item;
    packet : int * int;
    pos : int;
    mutable anchor : float;
  }

  let build collected ~flows =
    let all = ref [] in
    List.iter
      (fun (f : Refill.Flow.t) ->
        List.iteri
          (fun pos item ->
            all :=
              { item; packet = (f.origin, f.seq); pos; anchor = Float.nan }
              :: !all)
          f.items)
      flows;
    let arr = Array.of_list (List.rev !all) in
    let n = Array.length arr in
    let hard_successors = Array.make n [] in
    let soft_successors = Array.make n [] in
    let hard_in = Array.make n 0 in
    let soft_in = Array.make n 0 in
    let add_hard a b =
      if a <> b then begin
        hard_successors.(a) <- b :: hard_successors.(a);
        hard_in.(b) <- hard_in.(b) + 1
      end
    in
    let add_soft a b =
      if a <> b then begin
        soft_successors.(a) <- b :: soft_successors.(a);
        soft_in.(b) <- soft_in.(b) + 1
      end
    in
    let last_of_packet = Hashtbl.create 256 in
    Array.iteri
      (fun id k ->
        (match Hashtbl.find_opt last_of_packet k.packet with
        | Some prev -> add_hard prev id
        | None -> ());
        Hashtbl.replace last_of_packet k.packet id)
      arr;
    let queues : (int * int * int, int Queue.t) Hashtbl.t =
      Hashtbl.create 256
    in
    Array.iteri
      (fun id k ->
        if not k.item.inferred then begin
          match k.item.payload with
          | None -> ()
          | Some r ->
              let origin, seq = Logsys.Record.packet_key r in
              let key = (origin, seq, k.item.node) in
              let q =
                match Hashtbl.find_opt queues key with
                | Some q -> q
                | None ->
                    let q = Queue.create () in
                    Hashtbl.add queues key q;
                    q
              in
              Queue.add id q
        end)
      arr;
    let soft_edges = ref [] in
    for node = 0 to Logsys.Collected.n_nodes collected - 1 do
      let log = Logsys.Collected.node_log collected node in
      let len = float_of_int (max 1 (Array.length log)) in
      let last = ref None in
      Array.iteri
        (fun log_idx (r : Logsys.Record.t) ->
          let origin, seq = Logsys.Record.packet_key r in
          match Hashtbl.find_opt queues (origin, seq, node) with
          | None -> ()
          | Some q -> (
              match Queue.peek_opt q with
              | Some id
                when (match arr.(id).item.payload with
                     | Some r' -> compare r r' = 0
                     | None -> false) ->
                  ignore (Queue.pop q : int);
                  arr.(id).anchor <- float_of_int log_idx /. len;
                  (match !last with
                  | Some prev -> soft_edges := (prev, id) :: !soft_edges
                  | None -> ());
                  last := Some id
              | Some _ | None -> ()))
        log
    done;
    let relaxed = ref 0 in
    List.iter
      (fun (a, b) ->
        if arr.(a).packet = arr.(b).packet && arr.(b).pos <= arr.(a).pos then
          incr relaxed
        else add_soft a b)
      !soft_edges;
    let fill_anchors () =
      let carry = Hashtbl.create 64 in
      for id = n - 1 downto 0 do
        let k = arr.(id) in
        if Float.is_nan k.anchor then begin
          match Hashtbl.find_opt carry k.packet with
          | Some a -> k.anchor <- a
          | None -> ()
        end
        else Hashtbl.replace carry k.packet k.anchor
      done;
      Hashtbl.reset carry;
      for id = 0 to n - 1 do
        let k = arr.(id) in
        if Float.is_nan k.anchor then begin
          match Hashtbl.find_opt carry k.packet with
          | Some a -> k.anchor <- a
          | None -> k.anchor <- 0.
        end
        else Hashtbl.replace carry k.packet k.anchor
      done
    in
    fill_anchors ();
    let module Pq = Prelude.Heap in
    let heap = Pq.create () in
    let ready id = hard_in.(id) = 0 && soft_in.(id) = 0 in
    Array.iteri
      (fun id k -> if ready id then Pq.push heap ~priority:k.anchor id)
      arr;
    let out = ref [] in
    let emitted = Array.make n false in
    let emitted_count = ref 0 in
    let emit id =
      emitted.(id) <- true;
      incr emitted_count;
      out := arr.(id).item :: !out;
      List.iter
        (fun succ ->
          hard_in.(succ) <- hard_in.(succ) - 1;
          if ready succ && not emitted.(succ) then
            Pq.push heap ~priority:arr.(succ).anchor succ)
        hard_successors.(id);
      List.iter
        (fun succ ->
          soft_in.(succ) <- soft_in.(succ) - 1;
          if ready succ && not emitted.(succ) then
            Pq.push heap ~priority:arr.(succ).anchor succ)
        soft_successors.(id)
    in
    while !emitted_count < n do
      match Pq.pop heap with
      | Some (_, id) -> if not emitted.(id) then emit id
      | None ->
          let best = ref (-1) in
          Array.iteri
            (fun id k ->
              if
                (not emitted.(id))
                && hard_in.(id) = 0
                && (!best < 0 || k.anchor < arr.(!best).anchor)
              then best := id)
            arr;
          relaxed := !relaxed + soft_in.(!best);
          soft_in.(!best) <- 0;
          emit !best
    done;
    let items = List.rev !out in
    let logged =
      List.length (List.filter (fun (i : Refill.Flow.item) -> not i.inferred) items)
    in
    (items, { events = n; logged; inferred = n - logged; relaxed = !relaxed })
end

let check_same_output label (ref_items, ref_stats) (items, stats) =
  Alcotest.(check int) (label ^ ": events") ref_stats.Reference.events
    stats.Refill.Global_flow.events;
  Alcotest.(check int) (label ^ ": logged") ref_stats.logged stats.logged;
  Alcotest.(check int) (label ^ ": inferred") ref_stats.inferred stats.inferred;
  Alcotest.(check int) (label ^ ": relaxed") ref_stats.relaxed stats.relaxed;
  Alcotest.(check int)
    (label ^ ": item count")
    (List.length ref_items) (List.length items);
  (* Both implementations emit the very item values the flows hold, so the
     sequences must agree physically, element by element. *)
  Alcotest.(check bool)
    (label ^ ": identical sequence")
    true
    (List.for_all2 (fun a b -> a == b) ref_items items)

let matches_reference_implementation () =
  let sc = Lazy.force scenario in
  let cases =
    [
      ("lossless", Scenario.Citysee.collected sc);
      ( "uniform 0.3",
        Logsys.Collected.lossify (Logsys.Loss_model.uniform 0.3)
          (Prelude.Rng.create ~seed:17L)
          (Scenario.Citysee.collected sc) );
      ( "uniform 0.6",
        Logsys.Collected.lossify (Logsys.Loss_model.uniform 0.6)
          (Prelude.Rng.create ~seed:99L)
          (Scenario.Citysee.collected sc) );
    ]
  in
  List.iter
    (fun (label, collected) ->
      let flows = reconstruct_flows collected ~sink:sc.sink in
      let reference = Reference.build collected ~flows in
      check_same_output label reference
        (merge_flows collected ~flows);
      (* The fan-out of the per-node alignment must not show in the output. *)
      check_same_output (label ^ " jobs=1") reference
        (merge_flows ~jobs:1 collected ~flows);
      check_same_output (label ^ " jobs=8") reference
        (merge_flows ~jobs:8 collected ~flows))
    cases

let soft_cycle_stall_recovery () =
  (* Two packets cross in opposite directions through relays 3 and 4:
     X travels 1→3→4→0, Y travels 2→4→3→0.  Node 3 logs Y's events before
     X's; node 4 logs X's before Y's.  The two cross-packet node-log
     constraints (Y-ack@3 before X-recv@3, X-ack@4 before Y-recv@4) plus
     the two hard flow chains form a cycle, so exactly one constraint must
     be dropped by stall recovery.  Both stalled candidates carry anchor
     3/6; the tie breaks on the lower event id, i.e. packet X (packet keys
     sort (1,0) < (2,0)), pinning which constraint survives. *)
  let r ~node ~origin ~kind ~gseq : Logsys.Record.t =
    { node; kind; origin; pkt_seq = 0; true_time = float_of_int gseq; gseq }
  in
  let logs =
    [|
      (* node 0 = sink *)
      [|
        r ~node:0 ~origin:1 ~kind:(Recv { from = 4 }) ~gseq:19;
        r ~node:0 ~origin:1 ~kind:Deliver ~gseq:20;
        r ~node:0 ~origin:2 ~kind:(Recv { from = 3 }) ~gseq:21;
        r ~node:0 ~origin:2 ~kind:Deliver ~gseq:22;
      |];
      (* node 1 = X's origin *)
      [|
        r ~node:1 ~origin:1 ~kind:Gen ~gseq:0;
        r ~node:1 ~origin:1 ~kind:(Trans { to_ = 3 }) ~gseq:1;
        r ~node:1 ~origin:1 ~kind:(Ack_recvd { to_ = 3 }) ~gseq:2;
      |];
      (* node 2 = Y's origin *)
      [|
        r ~node:2 ~origin:2 ~kind:Gen ~gseq:3;
        r ~node:2 ~origin:2 ~kind:(Trans { to_ = 4 }) ~gseq:4;
        r ~node:2 ~origin:2 ~kind:(Ack_recvd { to_ = 4 }) ~gseq:5;
      |];
      (* node 3: Y's events first, then X's *)
      [|
        r ~node:3 ~origin:2 ~kind:(Recv { from = 4 }) ~gseq:10;
        r ~node:3 ~origin:2 ~kind:(Trans { to_ = 0 }) ~gseq:11;
        r ~node:3 ~origin:2 ~kind:(Ack_recvd { to_ = 0 }) ~gseq:12;
        r ~node:3 ~origin:1 ~kind:(Recv { from = 1 }) ~gseq:13;
        r ~node:3 ~origin:1 ~kind:(Trans { to_ = 4 }) ~gseq:14;
        r ~node:3 ~origin:1 ~kind:(Ack_recvd { to_ = 4 }) ~gseq:15;
      |];
      (* node 4: X's events first, then Y's *)
      [|
        r ~node:4 ~origin:1 ~kind:(Recv { from = 3 }) ~gseq:6;
        r ~node:4 ~origin:1 ~kind:(Trans { to_ = 0 }) ~gseq:7;
        r ~node:4 ~origin:1 ~kind:(Ack_recvd { to_ = 0 }) ~gseq:8;
        r ~node:4 ~origin:2 ~kind:(Recv { from = 2 }) ~gseq:16;
        r ~node:4 ~origin:2 ~kind:(Trans { to_ = 3 }) ~gseq:17;
        r ~node:4 ~origin:2 ~kind:(Ack_recvd { to_ = 3 }) ~gseq:18;
      |];
    |]
  in
  let collected = Logsys.Collected.of_node_logs logs in
  let flows = reconstruct_flows collected ~sink:0 in
  let items, stats = merge_flows collected ~flows in
  check_same_output "soft cycle"
    (Reference.build collected ~flows)
    (items, stats);
  Alcotest.(check int) "all 22 events" 22 stats.events;
  Alcotest.(check int) "nothing inferred" 0 stats.inferred;
  Alcotest.(check int) "exactly one constraint relaxed" 1 stats.relaxed;
  let idx ~origin ~node kind =
    match
      List.find_index
        (fun (i : Refill.Flow.item) ->
          match i.payload with
          | Some (r : Logsys.Record.t) ->
              r.origin = origin && r.node = node
              && Logsys.Record.kind_name r.kind = kind
          | None -> false)
        items
    with
    | Some i -> i
    | None -> Alcotest.failf "missing %s@%d for origin %d" kind node origin
  in
  (* The dropped constraint is node 3's: X's recv jumps ahead of Y's ack. *)
  Alcotest.(check bool) "X released on node 3" true
    (idx ~origin:1 ~node:3 "recv" < idx ~origin:2 ~node:3 "ack");
  (* Node 4's constraint survives: Y waits for X's ack there. *)
  Alcotest.(check bool) "Y still waits on node 4" true
    (idx ~origin:1 ~node:4 "ack" < idx ~origin:2 ~node:4 "recv")

let order_preservation_property =
  (* Under arbitrary uniform loss, the merged flow must (a) keep every
     packet's own flow order exactly and (b) violate at most
     [stats.relaxed] of the matched cross-packet per-node log pairs. *)
  QCheck.Test.make ~name:"merge preserves packet and node-log order" ~count:5
    QCheck.(pair (int_range 0 8) small_nat)
    (fun (rate10, seed) ->
      let sc = Lazy.force scenario in
      let collected =
        let base = Scenario.Citysee.collected sc in
        if rate10 = 0 then base
        else
          Logsys.Collected.lossify
            (Logsys.Loss_model.uniform (float_of_int rate10 /. 10.))
            (Prelude.Rng.create ~seed:(Int64.of_int seed))
            base
      in
      let flows = reconstruct_flows collected ~sink:sc.sink in
      let items, stats = merge_flows collected ~flows in
      (* Position of every logged event, keyed by its unique gseq. *)
      let pos = Hashtbl.create 4096 in
      List.iteri
        (fun idx (i : Refill.Flow.item) ->
          if not i.inferred then
            match i.payload with
            | Some (r : Logsys.Record.t) -> Hashtbl.replace pos r.gseq idx
            | None -> ())
        items;
      (* (a) logged items of each flow appear at increasing positions. *)
      let packet_order_ok =
        List.for_all
          (fun (f : Refill.Flow.t) ->
            let last = ref (-1) in
            List.for_all
              (fun (i : Refill.Flow.item) ->
                if i.inferred then true
                else
                  match i.payload with
                  | None -> true
                  | Some r -> (
                      match Hashtbl.find_opt pos r.gseq with
                      | None -> false
                      | Some p ->
                          let ok = p > !last in
                          last := p;
                          ok))
              f.items)
          flows
      in
      (* (b) replicate the per-node log alignment to find the matched
         events, then count adjacent matched pairs emitted out of order. *)
      let queues : (int * int * int, Logsys.Record.t Queue.t) Hashtbl.t =
        Hashtbl.create 256
      in
      List.iter
        (fun (f : Refill.Flow.t) ->
          List.iter
            (fun (i : Refill.Flow.item) ->
              if not i.inferred then
                match i.payload with
                | Some (r : Logsys.Record.t) ->
                    let key = (r.origin, r.pkt_seq, i.node) in
                    let q =
                      match Hashtbl.find_opt queues key with
                      | Some q -> q
                      | None ->
                          let q = Queue.create () in
                          Hashtbl.add queues key q;
                          q
                    in
                    Queue.add r q
                | None -> ())
            f.items)
        flows;
      let violations = ref 0 in
      for node = 0 to Logsys.Collected.n_nodes collected - 1 do
        let last = ref None in
        Array.iter
          (fun (r : Logsys.Record.t) ->
            match Hashtbl.find_opt queues (r.origin, r.pkt_seq, node) with
            | None -> ()
            | Some q -> (
                match Queue.peek_opt q with
                | Some r' when Logsys.Record.equal r r' ->
                    ignore (Queue.pop q : Logsys.Record.t);
                    (match !last with
                    | Some prev_gseq ->
                        if Hashtbl.find pos prev_gseq > Hashtbl.find pos r.gseq
                        then incr violations
                    | None -> ());
                    last := Some r.gseq
                | Some _ | None -> ()))
          (Logsys.Collected.node_log collected node)
      done;
      packet_order_ok && !violations <= stats.relaxed)

let empty_inputs () =
  let empty = Logsys.Collected.of_node_logs [| [||]; [||] |] in
  let items, stats = merge_flows empty ~flows:[] in
  Alcotest.(check int) "no events" 0 (List.length items);
  Alcotest.(check int) "no relaxations" 0 stats.relaxed

let () =
  Alcotest.run "global-flow"
    [
      ( "merge",
        [
          Alcotest.test_case "counts" `Quick counts_add_up;
          Alcotest.test_case "per-packet order preserved" `Quick
            preserves_per_packet_flow_order;
          Alcotest.test_case "wall-clock agreement" `Quick
            wall_clock_agreement_high;
          Alcotest.test_case "under record loss" `Quick works_under_record_loss;
          Alcotest.test_case "cross-packet relay order" `Quick
            hand_built_cross_packet_order;
          Alcotest.test_case "inferred anchor inherits following" `Quick
            inferred_anchor_inherits_following;
          Alcotest.test_case "empty" `Quick empty_inputs;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "matches reference implementation" `Quick
            matches_reference_implementation;
          Alcotest.test_case "soft cycle stall recovery" `Quick
            soft_cycle_stall_recovery;
          QCheck_alcotest.to_alcotest order_preservation_property;
        ] );
    ]

(* Tests for the network-wide event flow (§II Eq. 1): the topological merge
   of per-packet flows under per-node log constraints. *)

let scenario = lazy (Scenario.Citysee.run Scenario.Citysee.tiny)

let build_lossless () =
  let sc = Lazy.force scenario in
  let collected = Scenario.Citysee.collected sc in
  let flows = Refill.Reconstruct.all collected ~sink:sc.sink in
  (sc, collected, flows, Refill.Global_flow.build collected ~flows)

let counts_add_up () =
  let _, collected, flows, (items, stats) = build_lossless () in
  Alcotest.(check int) "events = sum of flows"
    (List.fold_left (fun acc (f : Refill.Flow.t) -> acc + Refill.Flow.length f) 0 flows)
    stats.events;
  Alcotest.(check int) "list matches stats" stats.events (List.length items);
  Alcotest.(check int) "logged events = consumed records"
    (Logsys.Collected.total collected)
    (stats.logged + 0);
  Alcotest.(check int) "partition" stats.events (stats.logged + stats.inferred)

let preserves_per_packet_flow_order () =
  let _, _, flows, (items, _) = build_lossless () in
  (* For each packet, the subsequence of its items in the global flow must
     equal its own flow. *)
  let global = Array.of_list items in
  let positions = Hashtbl.create 1024 in
  Array.iteri
    (fun idx (i : Refill.Flow.item) ->
      match i.payload with
      | Some r ->
          let key = Logsys.Record.packet_key r in
          Hashtbl.replace positions key
            (idx :: Option.value ~default:[] (Hashtbl.find_opt positions key))
      | None -> ())
    global;
  List.iter
    (fun (f : Refill.Flow.t) ->
      match Hashtbl.find_opt positions (f.origin, f.seq) with
      | None -> ()
      | Some idxs_rev ->
          let idxs = List.rev idxs_rev in
          let sub = List.map (fun i -> global.(i)) idxs in
          Alcotest.(check int)
            (Printf.sprintf "packet (%d,%d) intact" f.origin f.seq)
            (Refill.Flow.length f) (List.length sub);
          List.iter2
            (fun (a : Refill.Flow.item) (b : Refill.Flow.item) ->
              Alcotest.(check bool) "same order" true
                (a.label = b.label && a.node = b.node && a.inferred = b.inferred))
            f.items sub)
      flows

let wall_clock_agreement_high () =
  let sc, _, _, (items, stats) = build_lossless () in
  Alcotest.(check bool)
    (Printf.sprintf "few relaxations (%d)" stats.relaxed)
    true
    (stats.relaxed < stats.events / 20);
  (* Pairwise order agreement with ground-truth time over logged events. *)
  let gt = Logsys.Logger.ground_truth (Node.Network.logger sc.network) in
  let pos = Hashtbl.create 4096 in
  List.iteri (fun i (r : Logsys.Record.t) -> Hashtbl.replace pos r.gseq i) gt;
  let seq =
    List.filter_map
      (fun (i : Refill.Flow.item) ->
        if i.inferred then None
        else
          Option.bind i.payload (fun (r : Logsys.Record.t) ->
              Hashtbl.find_opt pos r.gseq))
      items
    |> Array.of_list
  in
  let rng = Prelude.Rng.create ~seed:3L in
  let total = ref 0 and good = ref 0 in
  for _ = 1 to 50_000 do
    let a = Prelude.Rng.int rng (Array.length seq) in
    let b = Prelude.Rng.int rng (Array.length seq) in
    if a < b then begin
      incr total;
      if seq.(a) < seq.(b) then incr good
    end
  done;
  let agreement = Prelude.Stats.ratio !good !total in
  Alcotest.(check bool)
    (Printf.sprintf "agreement %.3f > 0.9" agreement)
    true (agreement > 0.9)

let works_under_record_loss () =
  let sc = Lazy.force scenario in
  let rng = Prelude.Rng.create ~seed:17L in
  let lossy =
    Logsys.Collected.lossify (Logsys.Loss_model.uniform 0.3) rng
      (Scenario.Citysee.collected sc)
  in
  let flows = Refill.Reconstruct.all lossy ~sink:sc.sink in
  let items, stats = Refill.Global_flow.build lossy ~flows in
  Alcotest.(check int) "complete" stats.events (List.length items);
  Alcotest.(check bool) "has inferred events" true (stats.inferred > 0)

let hand_built_cross_packet_order () =
  (* Two packets share relay 2; node 2's log interleaves them — the global
     flow must keep P0's events on node 2 before P1's. *)
  let r ~node ~kind ~seq ~gseq : Logsys.Record.t =
    { node; kind; origin = 1; pkt_seq = seq; true_time = float_of_int gseq; gseq }
  in
  let logs =
    [|
      (* node 0 = sink *)
      [|
        r ~node:0 ~kind:(Recv { from = 2 }) ~seq:0 ~gseq:6;
        r ~node:0 ~kind:Deliver ~seq:0 ~gseq:7;
        r ~node:0 ~kind:(Recv { from = 2 }) ~seq:1 ~gseq:14;
        r ~node:0 ~kind:Deliver ~seq:1 ~gseq:15;
      |];
      (* node 1 = origin of both packets *)
      [|
        r ~node:1 ~kind:Gen ~seq:0 ~gseq:0;
        r ~node:1 ~kind:(Trans { to_ = 2 }) ~seq:0 ~gseq:1;
        r ~node:1 ~kind:(Ack_recvd { to_ = 2 }) ~seq:0 ~gseq:3;
        r ~node:1 ~kind:Gen ~seq:1 ~gseq:8;
        r ~node:1 ~kind:(Trans { to_ = 2 }) ~seq:1 ~gseq:9;
        r ~node:1 ~kind:(Ack_recvd { to_ = 2 }) ~seq:1 ~gseq:11;
      |];
      (* node 2 = shared relay; its log orders the two packets *)
      [|
        r ~node:2 ~kind:(Recv { from = 1 }) ~seq:0 ~gseq:2;
        r ~node:2 ~kind:(Trans { to_ = 0 }) ~seq:0 ~gseq:4;
        r ~node:2 ~kind:(Ack_recvd { to_ = 0 }) ~seq:0 ~gseq:5;
        r ~node:2 ~kind:(Recv { from = 1 }) ~seq:1 ~gseq:10;
        r ~node:2 ~kind:(Trans { to_ = 0 }) ~seq:1 ~gseq:12;
        r ~node:2 ~kind:(Ack_recvd { to_ = 0 }) ~seq:1 ~gseq:13;
      |];
    |]
  in
  let collected = Logsys.Collected.of_node_logs logs in
  let flows = Refill.Reconstruct.all collected ~sink:0 in
  let items, stats = Refill.Global_flow.build collected ~flows in
  Alcotest.(check int) "all 16 events" 16 stats.events;
  Alcotest.(check int) "nothing relaxed" 0 stats.relaxed;
  (* P0's recv on node 2 strictly precedes P1's recv on node 2. *)
  let idx_of seq kind =
    match
      List.find_index
        (fun (i : Refill.Flow.item) ->
          match i.payload with
          | Some (r : Logsys.Record.t) ->
              r.pkt_seq = seq && Logsys.Record.kind_name r.kind = kind
                && r.node = 2
          | None -> false)
        items
    with
    | Some i -> i
    | None -> Alcotest.failf "missing %s for packet %d" kind seq
  in
  Alcotest.(check bool) "relay order across packets" true
    (idx_of 0 "recv" < idx_of 1 "recv");
  Alcotest.(check bool) "P0 ack before P1 trans on relay" true
    (idx_of 0 "ack" < idx_of 1 "trans")

let inferred_anchor_inherits_following () =
  (* P0's relay reception is lost; the inferred stand-in has no log
     position, so [fill_anchors] must give it the anchor of the *following*
     logged item in its flow (the relay's late trans, anchor 0.75), not the
     preceding one (the origin's early trans, anchor 0.25).  P1's gen sits
     between the two (anchor 0.5) and is concurrent with the inferred item,
     so the heap order of that pair reveals which anchor was inherited. *)
  let r ~node ~origin ~kind ~seq ~gseq : Logsys.Record.t =
    { node; kind; origin; pkt_seq = seq; true_time = float_of_int gseq; gseq }
  in
  let logs =
    [|
      (* node 0 = sink: Q's delivery, then P0's *)
      [|
        r ~node:0 ~origin:2 ~kind:(Recv { from = 2 }) ~seq:0 ~gseq:4;
        r ~node:0 ~origin:2 ~kind:Deliver ~seq:0 ~gseq:5;
        r ~node:0 ~origin:1 ~kind:(Recv { from = 2 }) ~seq:0 ~gseq:10;
        r ~node:0 ~origin:1 ~kind:Deliver ~seq:0 ~gseq:11;
      |];
      (* node 1: P0's gen+trans, then P1's gen+trans *)
      [|
        r ~node:1 ~origin:1 ~kind:Gen ~seq:0 ~gseq:0;
        r ~node:1 ~origin:1 ~kind:(Trans { to_ = 2 }) ~seq:0 ~gseq:1;
        r ~node:1 ~origin:1 ~kind:Gen ~seq:1 ~gseq:7;
        r ~node:1 ~origin:1 ~kind:(Trans { to_ = 3 }) ~seq:1 ~gseq:8;
      |];
      (* node 2: its own packet Q first, then P0's (late) forward; P0's
         recv on this node was lost *)
      [|
        r ~node:2 ~origin:2 ~kind:Gen ~seq:0 ~gseq:2;
        r ~node:2 ~origin:2 ~kind:(Trans { to_ = 0 }) ~seq:0 ~gseq:3;
        r ~node:2 ~origin:2 ~kind:(Ack_recvd { to_ = 0 }) ~seq:0 ~gseq:6;
        r ~node:2 ~origin:1 ~kind:(Trans { to_ = 0 }) ~seq:0 ~gseq:9;
      |];
      (* node 3: P1's receiver; logged nothing *)
      [||];
    |]
  in
  let collected = Logsys.Collected.of_node_logs logs in
  let flows = Refill.Reconstruct.all collected ~sink:0 in
  let items, stats = Refill.Global_flow.build collected ~flows in
  Alcotest.(check int) "one inferred event" 1 stats.inferred;
  Alcotest.(check int) "nothing relaxed" 0 stats.relaxed;
  let idx_inferred =
    match
      List.find_index
        (fun (i : Refill.Flow.item) -> i.inferred && i.node = 2)
        items
    with
    | Some i -> i
    | None -> Alcotest.fail "inferred relay recv missing"
  in
  let idx_p1_gen =
    match
      List.find_index
        (fun (i : Refill.Flow.item) ->
          match i.payload with
          | Some ({ kind = Gen; pkt_seq = 1; _ } : Logsys.Record.t) -> true
          | _ -> false)
        items
    with
    | Some i -> i
    | None -> Alcotest.fail "P1 gen missing"
  in
  Alcotest.(check bool) "P1 gen precedes the inferred relay recv" true
    (idx_p1_gen < idx_inferred)

let empty_inputs () =
  let empty = Logsys.Collected.of_node_logs [| [||]; [||] |] in
  let items, stats = Refill.Global_flow.build empty ~flows:[] in
  Alcotest.(check int) "no events" 0 (List.length items);
  Alcotest.(check int) "no relaxations" 0 stats.relaxed

let () =
  Alcotest.run "global-flow"
    [
      ( "merge",
        [
          Alcotest.test_case "counts" `Quick counts_add_up;
          Alcotest.test_case "per-packet order preserved" `Quick
            preserves_per_packet_flow_order;
          Alcotest.test_case "wall-clock agreement" `Quick
            wall_clock_agreement_high;
          Alcotest.test_case "under record loss" `Quick works_under_record_loss;
          Alcotest.test_case "cross-packet relay order" `Quick
            hand_built_cross_packet_order;
          Alcotest.test_case "inferred anchor inherits following" `Quick
            inferred_anchor_inherits_following;
          Alcotest.test_case "empty" `Quick empty_inputs;
        ] );
    ]

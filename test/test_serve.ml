(* The live ingestion server: wire framing, concurrent-feed byte-identity
   against the offline stream, malformed-frame containment, SIGTERM-style
   checkpoint/resume, read timeouts, and backpressure accounting.

   Every test runs a real in-process server on an ephemeral loopback port
   and talks to it over actual sockets — the same code paths `refill
   serve` and `refill feed` exercise, minus the process boundary. *)

module Serve = Refill_serve
module Obs = Refill_obs

let scenario = lazy (Scenario.Citysee.run Scenario.Citysee.tiny)

let sink () = (Lazy.force scenario).sink

let records =
  lazy
    (Logsys.Collected.merged_by_time
       (Scenario.Citysee.collected (Lazy.force scenario)))

(* Split the arrival-order trace into feed-sized chunks. *)
let chunks ~chunk =
  let all = Lazy.force records in
  let n = Array.length all in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let len = min chunk (n - i) in
      go (i + len) (Array.sub all i len :: acc)
  in
  go 0 []

let test_config =
  {
    Refill.Config.default with
    watermark = 2_000;
    shards = 2;
    late_retention = Some 8_000;
  }

(* Emit sink capturing lines in memory; [close] is a no-op so the
   buffer survives [Server.wait]. *)
let buffer_sink b =
  {
    Serve.Emit.write =
      (fun l ->
        Buffer.add_string b l;
        Buffer.add_char b '\n');
    close = ignore;
  }

(* The offline reference: the same Driver the CLI's `reconstruct
   --stream` uses, fed the same chunk sequence, emitting through the
   same line formatter. *)
let offline_emit ?(config = test_config) ?(finish = true) chunk_list =
  let b = Buffer.create 4096 in
  let s = buffer_sink b in
  let d =
    Serve.Driver.create ~config ~sink:(sink ())
      ~emit:(fun e -> Serve.Emit.emit_to s e)
      ()
  in
  List.iter d.feed chunk_list;
  if finish then ignore (d.finish ());
  (Buffer.contents b, d)

let start_server ?(config = test_config) ?checkpoint ?(queue_capacity = 64)
    ?(read_timeout = 5.0) ?(max_frame = Serve.Wire.default_max_frame)
    ?on_segment ?http_port ?emit buf =
  match
    Serve.Server.start
      {
        Serve.Server.default_config with
        stream = config;
        sink = sink ();
        emit = Option.value emit ~default:(buffer_sink buf);
        checkpoint;
        queue_capacity;
        read_timeout;
        max_frame;
        on_segment;
        http_port;
      }
  with
  | Ok srv -> srv
  | Error e -> Alcotest.failf "server start: %s" (Refill.Error.message e)

let counter_delta c f =
  let before = Obs.Metrics.Counter.value c in
  let r = f () in
  (r, Obs.Metrics.Counter.value c - before)

(* -- wire framing ------------------------------------------------------------ *)

let wire_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
  @@ fun () ->
  Serve.Wire.send_client_greeting a;
  Serve.Wire.expect_client_greeting b;
  Serve.Wire.send_server_greeting b ~max_frame:123_456;
  Alcotest.(check int) "negotiated" 123_456 (Serve.Wire.expect_server_greeting a);
  let payload = Bytes.of_string "hello frames" in
  Serve.Wire.write_frame a ~typ:Serve.Wire.frame_data payload;
  let typ, got = Serve.Wire.read_frame b ~max_payload:1024 in
  Alcotest.(check char) "type" Serve.Wire.frame_data typ;
  Alcotest.(check string) "payload" "hello frames" (Bytes.to_string got);
  Serve.Wire.write_ack b { Serve.Wire.frames = 7; records = 991 };
  let ack = Serve.Wire.read_ack a in
  Alcotest.(check int) "ack frames" 7 ack.Serve.Wire.frames;
  Alcotest.(check int) "ack records" 991 ack.Serve.Wire.records

let wire_rejects_oversize () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
  @@ fun () ->
  Serve.Wire.write_frame a ~typ:Serve.Wire.frame_data (Bytes.create 64);
  match Serve.Wire.read_frame b ~max_payload:16 with
  | _ -> Alcotest.fail "oversized frame accepted"
  | exception Serve.Wire.Protocol_error _ -> ()

(* -- concurrent feed byte-identity ------------------------------------------- *)

(* N connections, chunks dealt round-robin, lockstep acks: connection
   [j mod n] sends chunk [j] and waits for the ack before chunk [j+1]
   goes out on the next connection.  The ack certifies the global stream
   position, so the server must process exactly the offline chunk order —
   and its emit stream must match the offline driver's byte for byte. *)
let concurrent_feed_identical () =
  let chunk_list = chunks ~chunk:97 in
  let reference, refd = offline_emit chunk_list in
  let buf = Buffer.create 4096 in
  let srv = start_server buf in
  let n = 3 in
  let clients =
    Array.init n (fun _ ->
        Serve.Client.connect ~port:(Serve.Server.port srv) ())
  in
  List.iteri
    (fun j seg -> ignore (Serve.Client.send clients.(j mod n) seg))
    chunk_list;
  Array.iter (fun c -> ignore (Serve.Client.finish c)) clients;
  let summary = Serve.Server.stop srv in
  Alcotest.(check int)
    "records processed"
    (refd.Serve.Driver.summary ()).Refill.Stream.events
    summary.Refill.Stream.events;
  Alcotest.(check string) "emit byte-identical" reference (Buffer.contents buf)

(* -- malformed input containment --------------------------------------------- *)

let with_raw_conn srv f =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_loopback, Serve.Server.port srv));
  f fd

(* Reading until EOF proves the server closed the connection rather than
   hanging or crashing. *)
let read_to_eof fd =
  let b = Bytes.create 4096 in
  let rec go () = if Unix.read fd b 0 4096 > 0 then go () in
  try go () with Unix.Unix_error _ -> ()

let fuzz_survives () =
  let buf = Buffer.create 4096 in
  let srv = start_server ~read_timeout:1.0 buf in
  let port = Serve.Server.port srv in
  (* Bad magic. *)
  with_raw_conn srv (fun fd ->
      Serve.Wire.write_string fd "refill-wire v9\n";
      read_to_eof fd);
  (* Valid handshake, then an unknown frame type. *)
  with_raw_conn srv (fun fd ->
      Serve.Wire.send_client_greeting fd;
      ignore (Serve.Wire.expect_server_greeting fd);
      Serve.Wire.write_frame fd ~typ:'Z' (Bytes.create 4);
      read_to_eof fd);
  (* Length claiming more than max-frame. *)
  with_raw_conn srv (fun fd ->
      Serve.Wire.send_client_greeting fd;
      ignore (Serve.Wire.expect_server_greeting fd);
      let hdr = Bytes.create 5 in
      Bytes.set_int32_be hdr 0 0x7FFFFFFFl;
      Bytes.set hdr 4 Serve.Wire.frame_data;
      Serve.Wire.write_all fd hdr 0 5;
      read_to_eof fd);
  (* Garbage payload that is not a decodable segment. *)
  with_raw_conn srv (fun fd ->
      Serve.Wire.send_client_greeting fd;
      ignore (Serve.Wire.expect_server_greeting fd);
      Serve.Wire.write_frame fd ~typ:Serve.Wire.frame_data
        (Bytes.of_string "\xff\xff\xff\xff not a segment");
      read_to_eof fd);
  (* Truncated frame: header promises more bytes than ever arrive. *)
  with_raw_conn srv (fun fd ->
      Serve.Wire.send_client_greeting fd;
      ignore (Serve.Wire.expect_server_greeting fd);
      let hdr = Bytes.create 5 in
      Bytes.set_int32_be hdr 0 100l;
      Bytes.set hdr 4 Serve.Wire.frame_data;
      Serve.Wire.write_all fd hdr 0 5;
      Serve.Wire.write_all fd (Bytes.create 10) 0 10;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      read_to_eof fd);
  (* After all that, a well-behaved client still gets clean service. *)
  let chunk_list = chunks ~chunk:512 in
  let reference, refd = offline_emit chunk_list in
  let c = Serve.Client.connect ~port () in
  List.iter (fun seg -> ignore (Serve.Client.send c seg)) chunk_list;
  ignore (Serve.Client.finish c);
  let summary = Serve.Server.stop srv in
  Alcotest.(check int)
    "only the good client's records landed"
    (refd.Serve.Driver.summary ()).Refill.Stream.events
    summary.Refill.Stream.events;
  Alcotest.(check string) "emit unaffected" reference (Buffer.contents buf)

let read_timeout_kills_idle_conn () =
  let buf = Buffer.create 64 in
  let srv = start_server ~read_timeout:0.2 buf in
  with_raw_conn srv (fun fd ->
      Serve.Wire.send_client_greeting fd;
      ignore (Serve.Wire.expect_server_greeting fd);
      (* Send nothing; the server must hang up on us. *)
      let t0 = Unix.gettimeofday () in
      read_to_eof fd;
      Alcotest.(check bool)
        "hung up within ~5x the timeout"
        true
        (Unix.gettimeofday () -. t0 < 1.0));
  ignore (Serve.Server.stop srv)

(* -- checkpoint / resume ------------------------------------------------------ *)

let checkpoint_resume_identical () =
  let ckpt = Filename.temp_file "serve-test" ".ckpt" in
  Sys.remove ckpt;
  Fun.protect ~finally:(fun () -> if Sys.file_exists ckpt then Sys.remove ckpt)
  @@ fun () ->
  let chunk_list = chunks ~chunk:173 in
  let cut = List.length chunk_list / 2 in
  let first = List.filteri (fun i _ -> i < cut) chunk_list in
  let rest = List.filteri (fun i _ -> i >= cut) chunk_list in
  (* Reference: one offline driver over the whole sequence, frontier left
     open (serve-with-checkpoint never flushes) — what the two live runs
     must jointly equal. *)
  let reference, ref_driver = offline_emit ~finish:false chunk_list in
  (* Live run 1: feed the first half, stop (checkpoint-and-exit). *)
  let buf = Buffer.create 4096 in
  let srv = start_server ~checkpoint:ckpt buf in
  let c = Serve.Client.connect ~port:(Serve.Server.port srv) () in
  List.iter (fun seg -> ignore (Serve.Client.send c seg)) first;
  ignore (Serve.Client.finish c);
  ignore (Serve.Server.stop srv);
  let header ic =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input_line ic)
  in
  Alcotest.(check string)
    "v2 checkpoint written" "# refill-stream-ckpt v2"
    (header (open_in ckpt));
  (* Live run 2: resume from the checkpoint, feed the rest, stop. *)
  let srv = start_server ~checkpoint:ckpt buf in
  let c = Serve.Client.connect ~port:(Serve.Server.port srv) () in
  List.iter (fun seg -> ignore (Serve.Client.send c seg)) rest;
  ignore (Serve.Client.finish c);
  let summary = Serve.Server.stop srv in
  Alcotest.(check string)
    "emit across restart byte-identical" reference (Buffer.contents buf);
  (* Per-shard counter attribution is re-homed on resume (a checkpoint can
     resume into any shard count), so compare the totals, not the file. *)
  let totals (s : Refill.Stream.summary) =
    [ s.events; s.flows; s.complete; s.incomplete ]
  in
  Alcotest.(check (list int))
    "summary totals survive the restart"
    (totals (ref_driver.Serve.Driver.summary ()))
    (totals summary)

(* -- backpressure ------------------------------------------------------------- *)

let backpressure_bounds_inflight () =
  let buf = Buffer.create 4096 in
  (* A one-segment queue and a slow consumer: a pipelined client must
     stall the socket, and the stall counter must say so. *)
  let srv =
    start_server ~queue_capacity:1
      ~on_segment:(fun () -> Thread.delay 0.002)
      buf
  in
  let chunk_list = chunks ~chunk:97 in
  let _, refd = offline_emit chunk_list in
  let (), stalls =
    counter_delta Serve.Telemetry.backpressure_stalls_total (fun () ->
        let c = Serve.Client.connect ~port:(Serve.Server.port srv) () in
        List.iter (Serve.Client.send_nowait c) chunk_list;
        ignore (Serve.Client.finish c))
  in
  let summary = Serve.Server.stop srv in
  Alcotest.(check bool) "stalled at least once" true (stalls > 0);
  Alcotest.(check int)
    "every record still landed"
    (refd.Serve.Driver.summary ()).Refill.Stream.events
    summary.Refill.Stream.events

(* -- /metrics endpoint -------------------------------------------------------- *)

let http_get ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Serve.Wire.write_string fd
    (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path);
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let n = Unix.read fd chunk 0 4096 in
    if n > 0 then begin
      Buffer.add_subbytes b chunk 0 n;
      go ()
    end
  in
  (try go () with Unix.Unix_error _ -> ());
  Buffer.contents b

let metrics_endpoint_serves () =
  let buf = Buffer.create 4096 in
  let srv = start_server ~http_port:0 buf in
  let http_port =
    match Serve.Server.http_port srv with
    | Some p -> p
    | None -> Alcotest.fail "no http port"
  in
  let c = Serve.Client.connect ~port:(Serve.Server.port srv) () in
  ignore (Serve.Client.send c (Array.sub (Lazy.force records) 0 100));
  let body = http_get ~port:http_port "/metrics" in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "200" true (contains body "200 OK");
  Alcotest.(check bool)
    "counter exposed" true
    (contains body "refill_serve_frames_total");
  Alcotest.(check bool)
    "gauge exposed" true
    (contains body "refill_serve_connections{state=\"streaming\"} 1");
  Alcotest.(check bool)
    "404 on unknown path" true
    (contains (http_get ~port:http_port "/nope") "404");
  ignore (Serve.Client.finish c);
  ignore (Serve.Server.stop srv)

(* -- emit publisher ------------------------------------------------------------ *)

let emit_socket_streams_outcomes () =
  let chunk_list = chunks ~chunk:512 in
  let reference, _ = offline_emit chunk_list in
  (* [publish] has no bound-port accessor, so use a fixed high port. *)
  let port = 39_417 in
  let pub = Serve.Emit.publish ~port in
  let sub = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sub (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (* Give the accept thread a beat to register the subscriber. *)
  Thread.delay 0.1;
  let got = Buffer.create 4096 in
  let reader =
    Thread.create
      (fun () ->
        let b = Bytes.create 65536 in
        let rec go () =
          let n = try Unix.read sub b 0 65536 with Unix.Unix_error _ -> 0 in
          if n > 0 then begin
            Buffer.add_subbytes got b 0 n;
            go ()
          end
        in
        go ())
      ()
  in
  String.split_on_char '\n' reference
  |> List.iter (fun l -> if l <> "" then pub.Serve.Emit.write l);
  (* Close disconnects the subscriber, ending the reader. *)
  Thread.delay 0.2;
  pub.Serve.Emit.close ();
  Thread.join reader;
  (try Unix.close sub with Unix.Unix_error _ -> ());
  Alcotest.(check string)
    "subscriber got every line" reference (Buffer.contents got)

(* A subscriber that hangs up mid-run turns the publisher's next writes
   into EPIPE; with SIGPIPE left at its default disposition that is a
   process-killing signal, not a per-subscriber error.  The server (and
   this test binary) must survive and the durable emit stream must be
   unaffected. *)
let emit_subscriber_hangup_survives () =
  let chunk_list = chunks ~chunk:97 in
  let reference, refd = offline_emit chunk_list in
  let pub_port = 39_423 in
  let pub = Serve.Emit.publish ~port:pub_port in
  let buf = Buffer.create 4096 in
  let srv =
    start_server ~emit:(Serve.Emit.tee (buffer_sink buf) pub) buf
  in
  let sub = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sub (Unix.ADDR_INET (Unix.inet_addr_loopback, pub_port));
  (* Let the accept thread register the subscriber, then vanish. *)
  Thread.delay 0.1;
  Unix.close sub;
  let c = Serve.Client.connect ~port:(Serve.Server.port srv) () in
  List.iter (fun seg -> ignore (Serve.Client.send c seg)) chunk_list;
  ignore (Serve.Client.finish c);
  let summary = Serve.Server.stop srv in
  Alcotest.(check int)
    "every record still landed"
    (refd.Serve.Driver.summary ()).Refill.Stream.events
    summary.Refill.Stream.events;
  Alcotest.(check string)
    "durable emit unaffected by the hangup" reference (Buffer.contents buf)

(* -- startup failure ----------------------------------------------------------- *)

let http_port_busy_is_error () =
  let blocker = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      try Unix.close blocker with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.bind blocker (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen blocker 1;
  let busy =
    match Unix.getsockname blocker with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  match
    Serve.Server.start
      {
        Serve.Server.default_config with
        stream = test_config;
        sink = sink ();
        http_port = Some busy;
      }
  with
  | Ok srv ->
      ignore (Serve.Server.stop srv);
      Alcotest.fail "server started despite a busy --http-port"
  | Error (Refill.Error.Io _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Refill.Error.message e)

(* -- client-side frame limit --------------------------------------------------- *)

let oversized_record_fails_before_send () =
  let buf = Buffer.create 64 in
  (* A 4-byte frame limit: no record encoding can fit, but the empty
     end-of-stream frame still does. *)
  let srv = start_server ~max_frame:4 buf in
  let c = Serve.Client.connect ~port:(Serve.Server.port srv) () in
  Alcotest.(check int) "negotiated the tiny limit" 4 (Serve.Client.max_frame c);
  (match Serve.Client.send c (Array.sub (Lazy.force records) 0 1) with
  | _ -> Alcotest.fail "unsendable record was sent anyway"
  | exception Serve.Client.Record_too_large { encoded; max_frame } ->
      Alcotest.(check bool) "reported sizes coherent" true (encoded > max_frame));
  (* Nothing hit the wire, so the connection is still clean. *)
  let ack = Serve.Client.finish c in
  Alcotest.(check int) "no frames accepted" 0 ack.Serve.Wire.frames;
  ignore (Serve.Server.stop srv)

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          Alcotest.test_case "frame/greeting/ack roundtrip" `Quick
            wire_roundtrip;
          Alcotest.test_case "oversized frame rejected before read" `Quick
            wire_rejects_oversize;
        ] );
      ( "identity",
        [
          Alcotest.test_case "3 lockstep connections equal offline stream"
            `Quick concurrent_feed_identical;
          Alcotest.test_case "checkpoint/resume across restart" `Quick
            checkpoint_resume_identical;
        ] );
      ( "containment",
        [
          Alcotest.test_case "fuzzed frames kill the connection, not the \
                              server"
            `Quick fuzz_survives;
          Alcotest.test_case "idle connection times out" `Quick
            read_timeout_kills_idle_conn;
          Alcotest.test_case "emit subscriber hangup does not kill the \
                              server (SIGPIPE)"
            `Quick emit_subscriber_hangup_survives;
          Alcotest.test_case "busy --http-port is a clean Error" `Quick
            http_port_busy_is_error;
          Alcotest.test_case "oversized record fails client-side before \
                              sending"
            `Quick oversized_record_fails_before_send;
        ] );
      ( "flow-control",
        [
          Alcotest.test_case "full queue stalls the socket" `Quick
            backpressure_bounds_inflight;
        ] );
      ( "observability",
        [
          Alcotest.test_case "/metrics endpoint" `Quick metrics_endpoint_serves;
          Alcotest.test_case "emit publisher streams outcomes" `Quick
            emit_socket_streams_outcomes;
        ] );
    ]

(* Tests for the analysis layer: metrics, pipeline, distributions, figures. *)

let pipeline =
  lazy
    (let scenario = Scenario.Citysee.run Scenario.Citysee.tiny in
     Analysis.Pipeline.make ~log_loss:Logsys.Loss_model.none scenario)

(* -- Metrics ------------------------------------------------------------------ *)

let truth_with entries =
  let t = Logsys.Truth.create () in
  List.iteri
    (fun i (cause, loss_node) ->
      Logsys.Truth.record t ~origin:0 ~seq:i
        { cause; loss_node; path = []; generated_at = 0.; resolved_at = 0. })
    entries;
  t

let confusion_counts () =
  let truth =
    truth_with
      [
        (Logsys.Cause.Delivered, None);
        (Logsys.Cause.Timeout_loss, Some 3);
        (Logsys.Cause.Timeout_loss, Some 4);
      ]
  in
  let verdicts =
    [
      ((0, 0), Logsys.Cause.Delivered);
      ((0, 1), Logsys.Cause.Timeout_loss);
      ((0, 2), Logsys.Cause.Received_loss);
      ((9, 9), Logsys.Cause.Delivered) (* unknown packet ignored *);
    ]
  in
  let c = Analysis.Metrics.confusion ~truth ~verdicts in
  Alcotest.(check int) "total" 3 c.total;
  Alcotest.(check int) "agree" 2 c.agree;
  Alcotest.(check (float 1e-9)) "accuracy" (2. /. 3.)
    (Analysis.Metrics.accuracy c);
  let per = Analysis.Metrics.per_cause c in
  let _, precision, recall, support =
    List.find (fun (cause, _, _, _) -> cause = Logsys.Cause.Timeout_loss) per
  in
  Alcotest.(check int) "timeout support" 2 support;
  Alcotest.(check (float 1e-9)) "timeout precision" 1. precision;
  Alcotest.(check (float 1e-9)) "timeout recall" 0.5 recall

let position_accuracy_counts () =
  let truth =
    truth_with
      [
        (Logsys.Cause.Delivered, None);
        (Logsys.Cause.Timeout_loss, Some 3);
        (Logsys.Cause.Received_loss, Some 5);
      ]
  in
  let positions =
    [ ((0, 0), None); ((0, 1), Some 3); ((0, 2), Some 9) ]
  in
  Alcotest.(check (float 1e-9)) "half of losses placed" 0.5
    (Analysis.Metrics.position_accuracy ~truth ~positions)

let flow_quality_perfect_on_lossless () =
  let p = Lazy.force pipeline in
  let gt =
    Logsys.Logger.ground_truth (Node.Network.logger p.scenario.network)
  in
  let q = Analysis.Metrics.flow_quality ~ground_truth:gt ~flows:p.flows in
  Alcotest.(check bool)
    (Printf.sprintf "recall %.3f ≈ 1" q.event_recall)
    true (q.event_recall > 0.99);
  (* The reconstructed flow is a *causal* linearization: pairs with no
     causal constraint (a sender's ack vs. the receiver's onward trans) may
     legally deviate from wall-clock order, so agreement sits below 1 even
     on lossless logs. *)
  Alcotest.(check bool)
    (Printf.sprintf "order %.3f > 0.9" q.order_agreement)
    true (q.order_agreement > 0.9)

let path_quality_lossless () =
  let p = Lazy.force pipeline in
  let q = Analysis.Metrics.path_quality ~truth:p.truth ~flows:p.flows in
  Alcotest.(check bool)
    (Printf.sprintf "exact %.3f = 1 on lossless logs" q.exact)
    true (q.exact > 0.999);
  Alcotest.(check bool) "similarity ≈ 1" true (q.prefix_similarity > 0.99)

let path_quality_counts_acked_extension () =
  (* Truth path stops before the sink (acked loss at the sink: the receiver
     logged nothing); REFILL's inferred extra hop still counts as exact. *)
  let truth = Logsys.Truth.create () in
  Logsys.Truth.record truth ~origin:1 ~seq:0
    {
      cause = Logsys.Cause.Acked_loss;
      loss_node = Some 0;
      path = [ 1; 2 ];
      generated_at = 0.;
      resolved_at = 1.;
    };
  let record node kind : Logsys.Record.t =
    { node; kind; origin = 1; pkt_seq = 0; true_time = 0.; gseq = 0 }
  in
  let records =
    [
      record 1 Gen;
      record 1 (Trans { to_ = 2 });
      record 1 (Ack_recvd { to_ = 2 });
      record 2 (Recv { from = 1 });
      record 2 (Trans { to_ = 0 });
      record 2 (Ack_recvd { to_ = 0 });
    ]
  in
  let config = Refill.Protocol.make_config ~records ~origin:1 ~seq:0 ~sink:0 in
  let acc = ref [] in
  let stats =
    Refill.Engine.process config
      (Refill.Engine.Events
         (Array.of_list (Refill.Protocol.events_of_records records)))
      ~emit:(fun it -> acc := it :: !acc)
  in
  let items = List.rev !acc in
  let flow = { Refill.Flow.origin = 1; seq = 0; items; stats; prov = [||] } in
  let q = Analysis.Metrics.path_quality ~truth ~flows:[ flow ] in
  Alcotest.(check (list int)) "reconstructed path has the extra hop"
    [ 1; 2; 0 ] (Refill.Flow.nodes_visited flow);
  Alcotest.(check (float 1e-9)) "still exact" 1. q.exact

(* -- Pipeline ------------------------------------------------------------------- *)

let pipeline_verdicts_complete () =
  let p = Lazy.force pipeline in
  Alcotest.(check int) "verdict per packet"
    (Logsys.Truth.count p.truth)
    (List.length p.refill);
  Alcotest.(check int) "flows per packet"
    (Logsys.Truth.count p.truth)
    (List.length p.flows)

let pipeline_loss_times_cover_missing () =
  let p = Lazy.force pipeline in
  Alcotest.(check int) "losses = packets - delivered"
    (Logsys.Truth.count p.truth - List.length p.delivered_db)
    (List.length p.loss_times);
  List.iter
    (fun key ->
      Alcotest.(check bool) "lost packets not in db" true
        (not (List.mem_assoc key p.delivered_db)))
    (Analysis.Pipeline.lost_keys p)

let pipeline_refinement () =
  let db = [ ((1, 1), 10.) ] in
  let mk cause =
    { Refill.Classify.cause; loss_node = None; next_hop = None }
  in
  let refined =
    Analysis.Pipeline.refine_with_server ~delivered_db:db
      [
        ((1, 1), mk Logsys.Cause.Received_loss);
        ((1, 2), mk Logsys.Cause.Delivered);
        ((1, 3), mk Logsys.Cause.Timeout_loss);
      ]
  in
  let cause k =
    (List.assoc k refined).Refill.Classify.cause
  in
  Alcotest.(check string) "db wins" "delivered" (Logsys.Cause.name (cause (1, 1)));
  Alcotest.(check string) "missing delivered → outage" "server-outage"
    (Logsys.Cause.name (cause (1, 2)));
  Alcotest.(check string) "loss verdicts kept" "timeout"
    (Logsys.Cause.name (cause (1, 3)))

let pipeline_accessors () =
  let p = Lazy.force pipeline in
  match Analysis.Pipeline.lost_keys p with
  | [] -> () (* a lossless tiny run can in principle lose nothing *)
  | (origin, seq) :: _ ->
      Alcotest.(check bool) "verdict exists" true
        (Analysis.Pipeline.refill_cause p ~origin ~seq <> None);
      Alcotest.(check bool) "loss time exists" true
        (Analysis.Pipeline.estimated_loss_time p ~origin ~seq <> None)

(* -- Distributions ----------------------------------------------------------------- *)

let temporal_views () =
  let p = Lazy.force pipeline in
  let src = Analysis.Temporal.source_view p in
  let pos = Analysis.Temporal.position_view p in
  Alcotest.(check int) "one point per loss" (List.length p.loss_times)
    (List.length src);
  Alcotest.(check bool) "positions ⊆ losses" true
    (List.length pos <= List.length src);
  (* The paper's Fig. 4 vs 5 contrast. *)
  Alcotest.(check bool) "positions at most as spread as sources" true
    (Analysis.Temporal.distinct_nodes pos
    <= Analysis.Temporal.distinct_nodes src);
  let grouped = Analysis.Temporal.by_cause src in
  let total = List.fold_left (fun acc (_, l) -> acc + List.length l) 0 grouped in
  Alcotest.(check int) "grouping partitions" (List.length src) total

let temporal_concentration () =
  let points =
    [
      { Analysis.Temporal.time = 0.; node = 1; cause = Logsys.Cause.Received_loss };
      { Analysis.Temporal.time = 1.; node = 1; cause = Logsys.Cause.Received_loss };
      { Analysis.Temporal.time = 2.; node = 1; cause = Logsys.Cause.Received_loss };
      { Analysis.Temporal.time = 3.; node = 2; cause = Logsys.Cause.Received_loss };
    ]
  in
  Alcotest.(check int) "distinct" 2 (Analysis.Temporal.distinct_nodes points);
  Alcotest.(check (float 1e-9)) "top-1 share" 0.75
    (Analysis.Temporal.node_concentration points ~top:1)

let spatial_counts () =
  let p = Lazy.force pipeline in
  let losses = Analysis.Spatial.losses_by_position p ~cause:None in
  Alcotest.(check int) "row per node"
    (Net.Topology.n_nodes (Node.Network.topology p.scenario.network))
    (List.length losses);
  let counted =
    List.fold_left (fun acc (l : Analysis.Spatial.node_losses) -> acc + l.count) 0 losses
  in
  Alcotest.(check bool) "counts bounded by losses" true
    (counted <= List.length p.loss_times);
  let top = Analysis.Spatial.top_k losses ~k:3 in
  Alcotest.(check int) "top-3" 3 (List.length top);
  Alcotest.(check bool) "descending" true
    (match top with
    | a :: b :: _ -> a.count >= b.count
    | _ -> false)

let composition_rows () =
  let p = Lazy.force pipeline in
  let rows = Analysis.Composition.per_day p in
  Alcotest.(check int) "row per day" p.scenario.params.days
    (List.length rows);
  List.iter
    (fun (r : Analysis.Composition.day_row) ->
      let sum = List.fold_left (fun acc (_, s) -> acc +. s) 0. r.shares in
      if r.total_losses > 0 then
        Alcotest.(check (float 1e-6)) "shares sum to 1" 1. sum)
    rows

let breakdown_shares () =
  let p = Lazy.force pipeline in
  let b = Analysis.Breakdown.of_pipeline p in
  Alcotest.(check int) "loss totals" (List.length p.loss_times) b.total_losses;
  let sum =
    b.server_outage +. b.received_total +. b.acked_total +. b.duplicate
    +. b.timeout +. b.overflow +. b.unknown
  in
  if b.total_losses > 0 then
    Alcotest.(check (float 1e-6)) "shares partition" 1. sum;
  Alcotest.(check (float 1e-9)) "received split"
    b.received_total
    (b.received_sink +. b.received_other);
  (* Ground-truth variant agrees on totals. *)
  let bt = Analysis.Breakdown.of_truth p.truth ~sink:p.scenario.sink in
  Alcotest.(check int) "truth losses" (Logsys.Truth.loss_count p.truth)
    bt.total_losses

let breakdown_paper_reference () =
  let paper = Analysis.Breakdown.paper in
  Alcotest.(check (float 1e-9)) "server" 0.226 paper.server_outage;
  Alcotest.(check (float 1e-9)) "acked sink" 0.380 paper.acked_sink;
  Alcotest.(check int) "11 display rows" 11
    (List.length (Analysis.Breakdown.rows paper))

(* -- Latency ----------------------------------------------------------------------- *)

let latency_analytics () =
  let p = Lazy.force pipeline in
  (match Analysis.Latency.delay_summary p.truth with
  | None -> Alcotest.fail "tiny scenario delivers packets"
  | Some s ->
      Alcotest.(check bool) "positive delays" true (s.min >= 0.);
      Alcotest.(check bool) "bounded by the run" true (s.max < 2000.));
  let by_hops = Analysis.Latency.delay_by_hops p.truth in
  Alcotest.(check bool) "some hop groups" true (List.length by_hops >= 2);
  (* Delay grows with hop count (compare the extremes). *)
  (match (by_hops, List.rev by_hops) with
  | (h1, s1) :: _, (h2, s2) :: _ when h2 > h1 ->
      Alcotest.(check bool)
        (Printf.sprintf "monotone-ish: %d hops %.2fs <= %d hops %.2fs" h1
           s1.mean h2 s2.mean)
        true
        (s1.mean <= s2.mean)
  | _ -> ());
  let hist = Analysis.Latency.hop_histogram_of_flows p.flows in
  let counted = List.fold_left (fun acc (_, c) -> acc + c) 0 hist in
  Alcotest.(check int) "histogram covers flows" (List.length p.flows) counted;
  Alcotest.(check bool) "retransmission factor >= 1" true
    (Analysis.Latency.retransmission_factor p.scenario.network >= 1.)

let report_builds () =
  let p = Lazy.force pipeline in
  let r = Analysis.Report.build p in
  Alcotest.(check int) "packets" (Logsys.Truth.count p.truth) r.packets;
  Alcotest.(check bool) "delivery rate sane" true
    (r.delivery_rate > 0. && r.delivery_rate <= 1.);
  Alcotest.(check int) "daily array" p.scenario.params.days
    (Array.length r.daily_losses);
  let text = Analysis.Report.to_string r in
  Alcotest.(check bool) "nonempty text" true (String.length text > 200)

(* -- Figures ----------------------------------------------------------------------- *)

let figures_render () =
  let p = Lazy.force pipeline in
  let nonempty name s =
    Alcotest.(check bool) (name ^ " nonempty") true (String.length s > 100)
  in
  nonempty "table2" (Analysis.Figures.table2 ());
  nonempty "fig4" (Analysis.Figures.fig4 p);
  nonempty "fig5" (Analysis.Figures.fig5 p);
  nonempty "fig6" (Analysis.Figures.fig6 p);
  nonempty "fig8" (Analysis.Figures.fig8 p);
  nonempty "fig9" (Analysis.Figures.fig9 p)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let table2_text_matches_paper () =
  let s = Analysis.Figures.table2 () in
  (* The §IV.C case-1 reconstruction appears verbatim. *)
  Alcotest.(check bool) "case 1 flow" true
    (contains s "1-2 trans, [1-2 recv], [2-3 trans], 2-3 recv");
  Alcotest.(check bool) "case 2 flow" true
    (contains s "1-2 trans, [1-2 recv], 1-2 ack")

let csv_exports () =
  let p = Lazy.force pipeline in
  let check_csv name csv min_cols =
    let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
    Alcotest.(check bool) (name ^ " has header+rows") true (List.length lines >= 1);
    List.iter
      (fun line ->
        Alcotest.(check bool)
          (name ^ " column count")
          true
          (List.length (String.split_on_char ',' line) >= min_cols))
      lines
  in
  check_csv "fig4" (Analysis.Export.fig4_csv p) 3;
  check_csv "fig5" (Analysis.Export.fig5_csv p) 3;
  check_csv "fig6" (Analysis.Export.fig6_csv p) 4;
  check_csv "fig8" (Analysis.Export.fig8_csv p) 4;
  check_csv "fig9" (Analysis.Export.fig9_csv p) 4;
  (* fig6 has one data row per day. *)
  let fig6_lines =
    String.split_on_char '\n' (Analysis.Export.fig6_csv p)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "fig6 rows" (p.scenario.params.days + 1)
    (List.length fig6_lines);
  (* write_all creates the files. *)
  let dir = Filename.temp_file "refill" "" in
  Sys.remove dir;
  let written = Analysis.Export.write_all p ~dir in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove written;
      Sys.rmdir dir)
    (fun () ->
      Alcotest.(check int) "five files" 5 (List.length written);
      List.iter
        (fun path ->
          Alcotest.(check bool) (path ^ " exists") true (Sys.file_exists path))
        written)

let distinct_markers () =
  let markers = List.map Analysis.Figures.cause_marker Logsys.Cause.all in
  Alcotest.(check int) "all distinct" (List.length markers)
    (List.length (List.sort_uniq Char.compare markers))

let () =
  Alcotest.run "analysis"
    [
      ( "metrics",
        [
          Alcotest.test_case "confusion" `Quick confusion_counts;
          Alcotest.test_case "position accuracy" `Quick position_accuracy_counts;
          Alcotest.test_case "flow quality lossless" `Quick
            flow_quality_perfect_on_lossless;
          Alcotest.test_case "path quality lossless" `Quick
            path_quality_lossless;
          Alcotest.test_case "path quality acked extension" `Quick
            path_quality_counts_acked_extension;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "verdicts complete" `Quick pipeline_verdicts_complete;
          Alcotest.test_case "loss times" `Quick pipeline_loss_times_cover_missing;
          Alcotest.test_case "server refinement" `Quick pipeline_refinement;
          Alcotest.test_case "accessors" `Quick pipeline_accessors;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "temporal views" `Quick temporal_views;
          Alcotest.test_case "concentration" `Quick temporal_concentration;
          Alcotest.test_case "spatial" `Quick spatial_counts;
          Alcotest.test_case "composition" `Quick composition_rows;
          Alcotest.test_case "breakdown" `Quick breakdown_shares;
          Alcotest.test_case "paper reference" `Quick breakdown_paper_reference;
        ] );
      ( "latency",
        [ Alcotest.test_case "delay and hops" `Quick latency_analytics ] );
      ("report", [ Alcotest.test_case "builds" `Quick report_builds ]);
      ( "figures",
        [
          Alcotest.test_case "render" `Quick figures_render;
          Alcotest.test_case "table2 text" `Quick table2_text_matches_paper;
          Alcotest.test_case "csv exports" `Quick csv_exports;
          Alcotest.test_case "markers distinct" `Quick distinct_markers;
        ] );
    ]

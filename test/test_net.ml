(* Tests for packets, topology, link model and MAC sampler. *)

let rng () = Prelude.Rng.create ~seed:42L

(* -- Packet ---------------------------------------------------------------- *)

let packet_allocation () =
  let alloc = Net.Packet.allocator () in
  let p1 = Net.Packet.fresh alloc ~origin:3 ~now:1. in
  let p2 = Net.Packet.fresh alloc ~origin:3 ~now:2. in
  let p3 = Net.Packet.fresh alloc ~origin:5 ~now:3. in
  Alcotest.(check bool) "unique ids" true (p1.id <> p2.id && p2.id <> p3.id);
  Alcotest.(check int) "per-origin seq 0" 0 p1.seq;
  Alcotest.(check int) "per-origin seq 1" 1 p2.seq;
  Alcotest.(check int) "other origin restarts" 0 p3.seq;
  Alcotest.(check int) "count" 3 (Net.Packet.count alloc)

let packet_compare_equal () =
  let alloc = Net.Packet.allocator () in
  let p1 = Net.Packet.fresh alloc ~origin:0 ~now:0. in
  let p2 = Net.Packet.fresh alloc ~origin:0 ~now:0. in
  Alcotest.(check bool) "equal self" true (Net.Packet.equal p1 p1);
  Alcotest.(check bool) "distinct" false (Net.Packet.equal p1 p2);
  Alcotest.(check bool) "ordered" true (Net.Packet.compare p1 p2 < 0)

(* -- Topology -------------------------------------------------------------- *)

let topology_basic () =
  let positions = [| (0., 0.); (3., 4.); (100., 100.) |] in
  let t = Net.Topology.create ~positions ~range:6. in
  Alcotest.(check int) "n_nodes" 3 (Net.Topology.n_nodes t);
  Alcotest.(check (float 1e-9)) "distance" 5. (Net.Topology.distance t 0 1);
  Alcotest.(check bool) "in range" true (Net.Topology.in_range t 0 1);
  Alcotest.(check bool) "self not in range" false (Net.Topology.in_range t 0 0);
  Alcotest.(check bool) "far not in range" false (Net.Topology.in_range t 0 2);
  Alcotest.(check (list int)) "neighbors of 0" [ 1 ] (Net.Topology.neighbors t 0);
  Alcotest.(check (list int)) "neighbors of 2" [] (Net.Topology.neighbors t 2)

let topology_invalid () =
  Alcotest.check_raises "range <= 0"
    (Invalid_argument "Topology.create: range must be positive") (fun () ->
      ignore (Net.Topology.create ~positions:[| (0., 0.) |] ~range:0.));
  Alcotest.check_raises "no nodes"
    (Invalid_argument "Topology.create: no nodes") (fun () ->
      ignore (Net.Topology.create ~positions:[||] ~range:1.))

let topology_grid () =
  let t =
    Net.Topology.jittered_grid (rng ()) ~nx:4 ~ny:3 ~spacing:10. ~jitter:0.
      ~range:11.
  in
  Alcotest.(check int) "12 nodes" 12 (Net.Topology.n_nodes t);
  (* Without jitter, inner nodes have 4 neighbors at spacing 10 < range 11. *)
  let inner = 1 + 4 (* node (1,1) in row-major = 5 *) in
  Alcotest.(check int) "inner degree" 4
    (List.length (Net.Topology.neighbors t inner))

let topology_connectivity () =
  let t =
    Net.Topology.jittered_grid (rng ()) ~nx:4 ~ny:4 ~spacing:10. ~jitter:0.
      ~range:11.
  in
  Alcotest.(check bool) "grid connected" true (Net.Topology.is_connected t ~from:0);
  let disconnected =
    Net.Topology.create ~positions:[| (0., 0.); (100., 0.) |] ~range:5.
  in
  Alcotest.(check bool) "two islands" false
    (Net.Topology.is_connected disconnected ~from:0)

let topology_nearest () =
  let t =
    Net.Topology.create
      ~positions:[| (0., 0.); (10., 10.); (2., 2.) |]
      ~range:5.
  in
  Alcotest.(check int) "nearest to origin" 0 (Net.Topology.nearest_to t (0.5, 0.5));
  Alcotest.(check int) "nearest to middle" 2 (Net.Topology.nearest_to t (3., 3.))

let topology_random_geometric () =
  let t = Net.Topology.random_geometric (rng ()) ~n:50 ~side:100. ~range:25. in
  Alcotest.(check int) "n" 50 (Net.Topology.n_nodes t);
  for i = 0 to 49 do
    let x, y = Net.Topology.position t i in
    Alcotest.(check bool) "inside square" true
      (x >= 0. && x < 100. && y >= 0. && y < 100.)
  done

let neighbor_symmetry =
  QCheck.Test.make ~name:"neighbor relation is symmetric" ~count:50
    QCheck.(int_range 2 30)
    (fun n ->
      let r = Prelude.Rng.create ~seed:(Int64.of_int (n * 7)) in
      let t = Net.Topology.random_geometric r ~n ~side:50. ~range:20. in
      List.for_all
        (fun i ->
          List.for_all
            (fun j -> List.mem i (Net.Topology.neighbors t j))
            (Net.Topology.neighbors t i))
        (List.init n Fun.id))

(* -- Link model ------------------------------------------------------------ *)

let make_link () =
  let t =
    Net.Topology.jittered_grid (rng ()) ~nx:3 ~ny:3 ~spacing:10. ~jitter:0.
      ~range:15.
  in
  (t, Net.Link_model.create ~seed:7L ~topology:t ())

let link_prr_range () =
  let t, lm = make_link () in
  for src = 0 to Net.Topology.n_nodes t - 1 do
    for dst = 0 to Net.Topology.n_nodes t - 1 do
      if src <> dst then begin
        let p = Net.Link_model.prr lm ~now:0. ~src ~dst in
        Alcotest.(check bool) "in [0,1]" true (p >= 0. && p <= 1.)
      end
    done
  done

let link_out_of_range_zero () =
  let t =
    Net.Topology.create ~positions:[| (0., 0.); (100., 0.) |] ~range:10.
  in
  let lm = Net.Link_model.create ~seed:7L ~topology:t () in
  Alcotest.(check (float 1e-9)) "zero" 0. (Net.Link_model.prr lm ~now:0. ~src:0 ~dst:1)

let link_deterministic () =
  let _, lm1 = make_link () in
  let _, lm2 = make_link () in
  for now = 0 to 5 do
    let now = float_of_int now *. 100. in
    Alcotest.(check (float 1e-12)) "same prr"
      (Net.Link_model.prr lm1 ~now ~src:0 ~dst:1)
      (Net.Link_model.prr lm2 ~now ~src:0 ~dst:1)
  done

let link_distance_monotone () =
  let t =
    Net.Topology.create
      ~positions:[| (0., 0.); (4., 0.); (12., 0.) |]
      ~range:15.
  in
  let lm = Net.Link_model.create ~seed:7L ~topology:t () in
  let near = Net.Link_model.base_prr lm ~src:0 ~dst:1 in
  let far = Net.Link_model.base_prr lm ~src:0 ~dst:2 in
  Alcotest.(check bool) "nearer link is much better" true (near > far +. 0.2)

let link_weather_degrades () =
  let _, lm = make_link () in
  let before = Net.Link_model.prr lm ~now:50. ~src:0 ~dst:1 in
  Net.Link_model.set_weather lm (fun _ -> 0.5);
  let after = Net.Link_model.prr lm ~now:50. ~src:0 ~dst:1 in
  Alcotest.(check (float 1e-9)) "halved" (before *. 0.5) after

let link_burst_local_and_timed () =
  let _, reference = make_link () in
  let _, lm = make_link () in
  Net.Link_model.add_burst lm
    {
      start = 90.;
      duration = 20.;
      severity = 1.0;
      center = (5., 0.);
      radius = 8.;
    };
  (* Link 0-1 midpoint is (5, 0): inside the burst. *)
  Alcotest.(check (float 1e-9)) "killed during burst" 0.
    (Net.Link_model.prr lm ~now:100. ~src:0 ~dst:1);
  Alcotest.(check (float 1e-9)) "unaffected after burst"
    (Net.Link_model.prr reference ~now:200. ~src:0 ~dst:1)
    (Net.Link_model.prr lm ~now:200. ~src:0 ~dst:1);
  (* Link 2-5 midpoint is (20, 5): outside the burst radius. *)
  Alcotest.(check (float 1e-9)) "distant link unaffected"
    (Net.Link_model.prr reference ~now:100. ~src:2 ~dst:5)
    (Net.Link_model.prr lm ~now:100. ~src:2 ~dst:5)

(* -- MAC ------------------------------------------------------------------- *)

let mac_attempt_outcomes () =
  let t =
    Net.Topology.create ~positions:[| (0., 0.); (1., 0.) |] ~range:100.
  in
  let lm = Net.Link_model.create ~seed:7L ~topology:t () in
  let r = rng () in
  let acked = ref 0 and lost = ref 0 and ack_lost = ref 0 in
  for _ = 1 to 2000 do
    match
      Net.Mac.attempt Net.Mac.default_config lm r ~now:0. ~src:0 ~dst:1
    with
    | Net.Mac.Received_acked -> incr acked
    | Net.Mac.Frame_lost -> incr lost
    | Net.Mac.Received_ack_lost -> incr ack_lost
  done;
  (* A 1-meter link with range 100 is essentially perfect. *)
  Alcotest.(check bool) "mostly acked" true (!acked > 1900)

let mac_bad_link_mostly_lost () =
  let t =
    Net.Topology.create ~positions:[| (0., 0.); (95., 0.) |] ~range:100.
  in
  let lm = Net.Link_model.create ~seed:7L ~topology:t () in
  let r = rng () in
  let lost = ref 0 in
  for _ = 1 to 1000 do
    if
      Net.Mac.attempt Net.Mac.default_config lm r ~now:0. ~src:0 ~dst:1
      = Net.Mac.Frame_lost
    then incr lost
  done;
  Alcotest.(check bool) "mostly lost" true (!lost > 900)

let mac_attempt_delay_bounds () =
  let r = rng () in
  let c = Net.Mac.default_config in
  for _ = 1 to 100 do
    let d = Net.Mac.attempt_delay c r in
    Alcotest.(check bool) "within interval+jitter" true
      (d >= c.attempt_interval && d <= c.attempt_interval +. c.attempt_jitter)
  done

(* -- Energy ----------------------------------------------------------------- *)

let energy_accumulates () =
  let e = Net.Energy.create () in
  Net.Energy.charge_tx e 1.5;
  Net.Energy.charge_rx e 0.5;
  Net.Energy.charge_tx e 0.5;
  Alcotest.(check (float 1e-9)) "tx" 2.0 (Net.Energy.tx_time e);
  Alcotest.(check (float 1e-9)) "rx" 0.5 (Net.Energy.rx_time e);
  Alcotest.(check (float 1e-9)) "active" 2.5 (Net.Energy.active_time e)

let energy_mj_accounting () =
  let p = Net.Energy.default_params in
  let e = Net.Energy.create () in
  Net.Energy.charge_tx e 10.;
  let mj = Net.Energy.energy_mj p e ~duration:100. in
  (* 10 s tx + 90 s sleep. *)
  Alcotest.(check (float 1e-6)) "mj" ((10. *. p.tx_mw) +. (90. *. p.sleep_mw)) mj;
  Alcotest.(check (float 1e-9)) "duty" 0.1 (Net.Energy.duty_cycle e ~duration:100.);
  Alcotest.check_raises "too-short duration"
    (Invalid_argument "Energy.energy_mj: duration shorter than active time")
    (fun () -> ignore (Net.Energy.energy_mj p e ~duration:1.))

let energy_idle_node_sleeps () =
  let p = Net.Energy.default_params in
  let e = Net.Energy.create () in
  Alcotest.(check (float 1e-9)) "pure sleep" (100. *. p.sleep_mw)
    (Net.Energy.energy_mj p e ~duration:100.);
  Alcotest.(check (float 1e-9)) "zero duty over zero time" 0.
    (Net.Energy.duty_cycle e ~duration:0.)

let () =
  Alcotest.run "net"
    [
      ( "packet",
        [
          Alcotest.test_case "allocation" `Quick packet_allocation;
          Alcotest.test_case "compare/equal" `Quick packet_compare_equal;
        ] );
      ( "topology",
        [
          Alcotest.test_case "basic" `Quick topology_basic;
          Alcotest.test_case "invalid" `Quick topology_invalid;
          Alcotest.test_case "grid" `Quick topology_grid;
          Alcotest.test_case "connectivity" `Quick topology_connectivity;
          Alcotest.test_case "nearest" `Quick topology_nearest;
          Alcotest.test_case "random geometric" `Quick
            topology_random_geometric;
          QCheck_alcotest.to_alcotest neighbor_symmetry;
        ] );
      ( "link_model",
        [
          Alcotest.test_case "prr range" `Quick link_prr_range;
          Alcotest.test_case "out of range" `Quick link_out_of_range_zero;
          Alcotest.test_case "deterministic" `Quick link_deterministic;
          Alcotest.test_case "distance monotone" `Quick link_distance_monotone;
          Alcotest.test_case "weather" `Quick link_weather_degrades;
          Alcotest.test_case "bursts" `Quick link_burst_local_and_timed;
        ] );
      ( "mac",
        [
          Alcotest.test_case "good link acked" `Quick mac_attempt_outcomes;
          Alcotest.test_case "bad link lost" `Quick mac_bad_link_mostly_lost;
          Alcotest.test_case "attempt delay" `Quick mac_attempt_delay_bounds;
        ] );
      ( "energy",
        [
          Alcotest.test_case "accumulates" `Quick energy_accumulates;
          Alcotest.test_case "mj accounting" `Quick energy_mj_accounting;
          Alcotest.test_case "idle sleeps" `Quick energy_idle_node_sleeps;
        ] );
    ]

(* End-to-end tests driving the built `refill` binary: the metrics dump on
   error exits, and the `explain` worked example (text and JSON). *)

module J = Refill_obs.Json

let cli =
  (* Under `dune runtest` the cwd is the test directory inside _build, so
     the sibling bin/ path resolves; the env var and repo-root fallbacks
     cover manual invocation. *)
  let candidates =
    (match Sys.getenv_opt "REFILL_CLI" with Some p -> [ p ] | None -> [])
    @ [
        Filename.concat ".." (Filename.concat "bin" "refill_cli.exe");
        "_build/default/bin/refill_cli.exe";
      ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "refill_cli.exe not found (tried %d paths)"
              (List.length candidates)

let tmp suffix = Filename.temp_file "refill_cli_test" suffix

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run the CLI, capturing stdout and stderr; returns (exit code, stdout). *)
let run_cli args =
  let out = tmp ".out" and err = tmp ".err" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove out;
      Sys.remove err)
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s > %s 2> %s" (Filename.quote cli)
          (String.concat " " (List.map Filename.quote args))
          (Filename.quote out) (Filename.quote err)
      in
      let code = Sys.command cmd in
      (code, read_file out))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A small simulated dump shared by the explain tests. *)
let log_file =
  lazy
    (let path = tmp ".log" in
     let code, _ =
       run_cli
         [
           "simulate"; "--days"; "1"; "--nodes"; "25"; "--seed"; "7"; "-q";
           "-o"; path;
         ]
     in
     Alcotest.(check int) "simulate exits 0" 0 code;
     path)

(* -- Error paths keep their observability contract ------------------------- *)

let malformed_log_still_dumps_metrics () =
  let bad = tmp ".log" in
  let metrics = tmp ".prom" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove bad;
      if Sys.file_exists metrics then Sys.remove metrics)
    (fun () ->
      let oc = open_out bad in
      output_string oc "this is not a refill log\n";
      close_out oc;
      let code, _ =
        run_cli [ "reconstruct"; bad; "--metrics=" ^ metrics; "-q" ]
      in
      Alcotest.(check bool) "malformed input is a nonzero exit" true
        (code <> 0);
      Alcotest.(check bool) "metrics file written on the error path" true
        (Sys.file_exists metrics);
      let text = read_file metrics in
      Alcotest.(check bool) "dump is Prometheus text" true
        (contains text "# TYPE"))

let missing_file_still_dumps_metrics () =
  let metrics = tmp ".prom" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists metrics then Sys.remove metrics)
    (fun () ->
      let code, _ =
        run_cli
          [ "analyze"; "/nonexistent/refill.log"; "--metrics=" ^ metrics; "-q" ]
      in
      Alcotest.(check bool) "missing input is a nonzero exit" true (code <> 0);
      Alcotest.(check bool) "metrics survive the I/O error" true
        (Sys.file_exists metrics))

(* -- serve ------------------------------------------------------------------ *)

let serve_sigterm_flushes_metrics () =
  (* The signal path must go through the same with_metrics_flush exit as a
     normal return: SIGTERM → drain → exit 0 with the metrics file written
     and the emit file complete. *)
  let log = Lazy.force log_file in
  let metrics = tmp ".prom" in
  let emit = tmp ".txt" in
  let port = 39_613 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ metrics; emit ])
  @@ fun () ->
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process cli
      [|
        cli; "serve"; "--port"; string_of_int port; "--emit-file"; emit;
        "--metrics=" ^ metrics; "-q";
      |]
      Unix.stdin null null
  in
  Unix.close null;
  (* `feed` retries while the server is still binding, so no sleep. *)
  let code, out = run_cli [ "feed"; "--port"; string_of_int port; log ] in
  Alcotest.(check int) "feed exits 0" 0 code;
  Alcotest.(check bool) "feed reports server acks" true
    (contains out "server acked");
  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "serve exits 0 on SIGTERM" true
    (status = Unix.WEXITED 0);
  Alcotest.(check bool) "metrics flushed on the signal path" true
    (Sys.file_exists metrics);
  Alcotest.(check bool) "serve counters in the dump" true
    (contains (read_file metrics) "refill_serve_frames_total");
  Alcotest.(check bool) "flow outcomes written" true
    (String.length (read_file emit) > 0)

(* -- check ------------------------------------------------------------------ *)

let baseline_path =
  (* Copied next to the test binary by the dune deps clause; the repo-root
     fallback covers manual invocation. *)
  match
    List.find_opt Sys.file_exists
      [ "check_baseline.json"; "test/check_baseline.json" ]
  with
  | Some p -> p
  | None -> Alcotest.fail "check_baseline.json not found"

let check_matches_baseline () =
  (* The committed snapshot is the full deterministic report over every
     builtin model: any diagnostic that appears or vanishes shows up as a
     byte diff, so regressions can't slip through silently.  A legitimate
     change regenerates the file in the same commit. *)
  let code, out =
    run_cli [ "check"; "ctp"; "dissem"; "broken-demo"; "--json"; "-q" ]
  in
  Alcotest.(check int) "check exits 1 (known LOSS001/PRE001/CLS001 errors)" 1
    code;
  let baseline = read_file baseline_path in
  if out <> baseline then
    Alcotest.failf
      "check --json diverged from test/check_baseline.json (%d vs %d bytes); \
       if the change is deliberate, regenerate the snapshot"
      (String.length out) (String.length baseline)

let check_strict_exit_contract () =
  (* dissem carries warnings but no errors: exit 0 by default, and
     --strict must promote the warnings to a failing exit. *)
  let code, _ = run_cli [ "check"; "dissem"; "-q" ] in
  Alcotest.(check int) "dissem passes by default" 0 code;
  let strict_code, _ = run_cli [ "check"; "dissem"; "--strict"; "-q" ] in
  Alcotest.(check int) "--strict promotes dissem warnings" 1 strict_code

(* -- explain ---------------------------------------------------------------- *)

let explain_text_works () =
  let log = Lazy.force log_file in
  let code, out = run_cli [ "explain"; log; "-q" ] in
  Alcotest.(check int) "explain exits 0" 0 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "explain output mentions %S" needle)
        true (contains out needle))
    [ "packet"; "logged" ]

let explain_json_parses () =
  let log = Lazy.force log_file in
  let code, out = run_cli [ "explain"; log; "--json"; "-q" ] in
  Alcotest.(check int) "explain --json exits 0" 0 code;
  match J.parse out with
  | Error e -> Alcotest.failf "explain JSON did not parse: %s" e
  | Ok doc -> (
      (match J.member "schema" doc with
      | Some (J.Str "refill-explain-v1") -> ()
      | _ -> Alcotest.fail "missing refill-explain-v1 schema tag");
      match J.member "events" doc with
      | Some (J.Arr (_ :: _ as events)) ->
          List.iter
            (fun e ->
              match
                Option.bind (J.member "provenance" e) (J.member "mechanism")
              with
              | Some (J.Str _) -> ()
              | _ -> Alcotest.fail "event without a provenance mechanism")
            events
      | _ -> Alcotest.fail "no events array")

let () =
  Alcotest.run "refill-cli"
    [
      ( "error-paths",
        [
          Alcotest.test_case "malformed log writes metrics" `Quick
            malformed_log_still_dumps_metrics;
          Alcotest.test_case "missing file writes metrics" `Quick
            missing_file_still_dumps_metrics;
        ] );
      ( "serve",
        [
          Alcotest.test_case "SIGTERM exits 0 and flushes metrics" `Quick
            serve_sigterm_flushes_metrics;
        ] );
      ( "check",
        [
          Alcotest.test_case "json report matches committed baseline" `Quick
            check_matches_baseline;
          Alcotest.test_case "--strict exit contract" `Quick
            check_strict_exit_contract;
        ] );
      ( "explain",
        [
          Alcotest.test_case "text output" `Quick explain_text_works;
          Alcotest.test_case "json output" `Quick explain_json_parses;
        ] );
    ]
